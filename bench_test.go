// Benchmark harness: one benchmark (or benchmark pair) per paper artifact
// and per extended experiment in DESIGN.md §4. Run with
//
//	go test -bench=. -benchmem
//
// E1-E3 regenerate Table 1 / Figure 1 / Figure 2 statistics from the
// calibrated synthetic gazetteer; E4 replays the paper's worked Berlin
// scenario through the full Figure 3 pipeline; E5-E10 are the quantitative
// experiments the paper's research questions call for (see EXPERIMENTS.md
// for the accuracy numbers — these benches measure the cost side).
package neogeo

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/coordinator"
	"repro/internal/core"
	"repro/internal/disambig"
	"repro/internal/extract"
	"repro/internal/feedback"
	"repro/internal/gazetteer"
	"repro/internal/geo"
	"repro/internal/integrate"
	"repro/internal/kb"
	"repro/internal/ner"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/pxml"
	"repro/internal/shard"
	"repro/internal/tweetgen"
	"repro/internal/uncertain"
	"repro/internal/xmldb"
)

// ---------------------------------------------------------------------------
// Shared fixtures. Building the calibrated 20k-name gazetteer takes real
// time, so every benchmark shares one read-only copy.

var (
	benchOnce sync.Once
	benchGaz  *gazetteer.Gazetteer
	benchOnt  *ontology.Ontology
)

func benchFixtures(b *testing.B) (*gazetteer.Gazetteer, *ontology.Ontology) {
	b.Helper()
	benchOnce.Do(func() {
		g, err := gazetteer.Synthesize(gazetteer.Config{Names: 20000, Seed: 2011})
		if err != nil {
			panic(err)
		}
		o := ontology.New()
		o.LoadContainment(g)
		benchGaz, benchOnt = g, o
	})
	return benchGaz, benchOnt
}

// ---------------------------------------------------------------------------
// E1 — Table 1: the ten most ambiguous geographic names.

func BenchmarkTable1TopAmbiguous(b *testing.B) {
	g, _ := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := g.TopAmbiguous(10)
		if len(stats) != 10 {
			b.Fatalf("want 10 rows, got %d", len(stats))
		}
	}
}

// ---------------------------------------------------------------------------
// E2 — Figure 1: number of names per ambiguity degree (log-log series).

func BenchmarkFigure1AmbiguityHistogram(b *testing.B) {
	g, _ := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := g.AmbiguityHistogram()
		if len(h) == 0 {
			b.Fatal("empty histogram")
		}
	}
}

// ---------------------------------------------------------------------------
// E3 — Figure 2: share of names by reference count (54/12/5/29).

func BenchmarkFigure2ReferenceShares(b *testing.B) {
	g, _ := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := g.Shares()
		if s.One <= 0 {
			b.Fatal("degenerate shares")
		}
	}
}

// ---------------------------------------------------------------------------
// E4 — the paper's worked scenario: three Berlin hotel tweets ingested,
// one request answered. Each iteration runs the full Figure 3 workflow
// (MQ -> MC -> IE -> DI -> XMLDB -> QA).

var paperScenarioMessages = []string{
	"berlin has some nice hotels i just loved the hetero friendly love that word Axel Hotel in Berlin.",
	"Good morning Berlin. The sun is out!!!! Very impressed by the customer service at #movenpick hotel in berlin. Well done guys!",
	"In Berlin hotel room, nice enough, weather grim however",
}

const paperScenarioRequest = "Can anyone recommend a good, but not ridiculously expensive hotel right in the middle of Berlin?"

func BenchmarkScenarioPipeline(b *testing.B) {
	g, _ := benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := core.New(core.Config{Gazetteer: g})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for j, m := range paperScenarioMessages {
			if _, err := sys.Ingest(context.Background(), m, fmt.Sprintf("user%d", j)); err != nil {
				b.Fatal(err)
			}
		}
		answer, err := sys.Ask(context.Background(), paperScenarioRequest, "asker")
		if err != nil {
			b.Fatal(err)
		}
		if answer.Text == "" {
			b.Fatal("empty answer")
		}
		b.StopTimer()
		sys.Close()
		b.StartTimer()
	}
}

// ---------------------------------------------------------------------------
// E5 — NER on ill-behaved text: informal recogniser vs traditional
// capitalisation/POS baseline, at increasing noise. EXPERIMENTS.md reports
// the precision/recall collapse of the baseline; these measure cost.

func benchCorpus(b *testing.B, noise float64, n int) []tweetgen.Message {
	b.Helper()
	gen, err := tweetgen.New(tweetgen.Config{Seed: 2011, Noise: noise, Domain: tweetgen.DomainTourism, RequestRatio: 0})
	if err != nil {
		b.Fatal(err)
	}
	return gen.Generate(n)
}

func BenchmarkNERInformal(b *testing.B) {
	g, o := benchFixtures(b)
	x := ner.NewExtractor(g, o)
	for _, noise := range []float64{0, 0.5, 1.0} {
		b.Run(fmt.Sprintf("noise=%.1f", noise), func(b *testing.B) {
			msgs := benchCorpus(b, noise, 200)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = x.ExtractInformal(msgs[i%len(msgs)].Text)
			}
		})
	}
}

func BenchmarkNERTraditional(b *testing.B) {
	g, o := benchFixtures(b)
	x := ner.NewExtractor(g, o)
	for _, noise := range []float64{0, 0.5, 1.0} {
		b.Run(fmt.Sprintf("noise=%.1f", noise), func(b *testing.B) {
			msgs := benchCorpus(b, noise, 200)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = x.ExtractTraditional(msgs[i%len(msgs)].Text)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E6 — disambiguation: population-prior baseline vs full context-aware
// resolver over ambiguous names sampled from the gazetteer.

func ambiguousNames(g *gazetteer.Gazetteer, n int) []string {
	stats := g.TopAmbiguous(n)
	names := make([]string, 0, len(stats))
	for _, s := range stats {
		names = append(names, s.Name)
	}
	return names
}

func BenchmarkDisambiguationPriorOnly(b *testing.B) {
	g, o := benchFixtures(b)
	r := disambig.NewResolver(g, o)
	names := ambiguousNames(g, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.ResolvePriorOnly(names[i%len(names)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDisambiguationContext(b *testing.B) {
	g, o := benchFixtures(b)
	r := disambig.NewResolver(g, o)
	names := ambiguousNames(g, 100)
	// A co-toponym near the first reference of each name provides the
	// geographic coherence signal a real message carries.
	ctxs := make([]disambig.Context, len(names))
	for i, name := range names {
		refs := g.Lookup(name)
		if len(refs) == 0 {
			continue
		}
		near := g.Near(refs[0].Location, 200_000)
		if len(near) > 1 {
			ctxs[i] = disambig.Context{CoToponyms: [][]*gazetteer.Entry{near[:1]}}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(names)
		if _, err := r.Resolve(names[k], ctxs[k]); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E7 — integration: probabilistic conflict resolution vs naive overwrite.
// Each iteration integrates one pre-extracted template into a database
// seeded with conflicting facts about the same entities.

func benchTemplates(b *testing.B, g *gazetteer.Gazetteer, o *ontology.Ontology, n int) []extract.Template {
	b.Helper()
	k := kb.New()
	ie, err := extract.NewService(k, g, o)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := tweetgen.New(tweetgen.Config{Seed: 7, Noise: 0.3, Domain: tweetgen.DomainTourism, RequestRatio: 0})
	if err != nil {
		b.Fatal(err)
	}
	var tpls []extract.Template
	now := time.Unix(1_300_000_000, 0)
	for _, m := range gen.Generate(n * 3) {
		ex, err := ie.Extract(context.Background(), m.Text, m.Source, now)
		if err != nil {
			continue
		}
		tpls = append(tpls, ex.Templates...)
		if len(tpls) >= n {
			break
		}
	}
	if len(tpls) == 0 {
		b.Fatal("no templates extracted")
	}
	return tpls
}

func BenchmarkIntegrationProbabilistic(b *testing.B) {
	g, o := benchFixtures(b)
	tpls := benchTemplates(b, g, o, 64)
	db := xmldb.New()
	di, err := integrate.NewService(kb.New(), db)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := di.Integrate(tpls[i%len(tpls)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntegrationNaive(b *testing.B) {
	g, o := benchFixtures(b)
	tpls := benchTemplates(b, g, o, 64)
	db := xmldb.New()
	di, err := integrate.NewService(kb.New(), db)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := di.IntegrateNaive(tpls[i%len(tpls)]); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E8 — spatial index: R-tree vs linear scan, range and kNN, with the point
// count swept to expose the crossover, plus the fanout ablation (DESIGN §5).

func randomPoints(n int, seed int64) []geo.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point, n)
	for i := range pts {
		p, _ := geo.NewPoint(rng.Float64()*180-90, rng.Float64()*360-180)
		pts[i] = p
	}
	return pts
}

func BenchmarkRTreeRange(b *testing.B) {
	for _, n := range []int{100, 1000, 10000, 100000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			pts := randomPoints(n, 42)
			t := geo.NewRTree[int]()
			for i, p := range pts {
				if err := t.Insert(geo.BBoxOf(p), i); err != nil {
					b.Fatal(err)
				}
			}
			queries := randomPoints(64, 43)
			b.ResetTimer()
			var dst []int
			for i := 0; i < b.N; i++ {
				q := geo.BBoxAround(queries[i%len(queries)], 100_000)
				dst = t.Search(q, dst[:0])
			}
		})
	}
}

func BenchmarkLinearScanRange(b *testing.B) {
	for _, n := range []int{100, 1000, 10000, 100000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			pts := randomPoints(n, 42)
			queries := randomPoints(64, 43)
			b.ResetTimer()
			var hits int
			for i := 0; i < b.N; i++ {
				q := geo.BBoxAround(queries[i%len(queries)], 100_000)
				hits = 0
				for _, p := range pts {
					if q.Contains(p) {
						hits++
					}
				}
			}
			_ = hits
		})
	}
}

func BenchmarkRTreeKNN(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			pts := randomPoints(n, 42)
			t := geo.NewRTree[int]()
			for i, p := range pts {
				if err := t.Insert(geo.BBoxOf(p), i); err != nil {
					b.Fatal(err)
				}
			}
			queries := randomPoints(64, 43)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := t.Nearest(queries[i%len(queries)], 10); len(got) != 10 {
					b.Fatalf("want 10 neighbours, got %d", len(got))
				}
			}
		})
	}
}

func BenchmarkRTreeFanout(b *testing.B) {
	pts := randomPoints(20000, 42)
	queries := randomPoints(64, 43)
	for _, max := range []int{4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("max=%d", max), func(b *testing.B) {
			t, err := geo.NewRTreeWithFanout[int](max/2, max)
			if err != nil {
				b.Fatal(err)
			}
			for i, p := range pts {
				if err := t.Insert(geo.BBoxOf(p), i); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var dst []int
			for i := 0; i < b.N; i++ {
				q := geo.BBoxAround(queries[i%len(queries)], 100_000)
				dst = t.Search(q, dst[:0])
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E9 — end-to-end throughput of the coordinator pipeline over a mixed
// informative/request stream. ns/op here is "time per message".

func BenchmarkPipelineThroughput(b *testing.B) {
	g, _ := benchFixtures(b)
	gen, err := tweetgen.New(tweetgen.Config{Seed: 99, Noise: 0.4, Domain: tweetgen.DomainMixed, RequestRatio: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	msgs := gen.Generate(512)
	sys, err := core.New(core.Config{Gazetteer: g})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := msgs[i%len(msgs)]
		if _, err := sys.Ingest(context.Background(), m.Text, m.Source); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E9b — concurrent drain: the coordinator's worker-pool + batching
// pipeline versus the sequential drain, on a WAL-backed queue (the
// durable production configuration whose per-ack fsync the batching stage
// group-commits). The msgs/sec metric is the throughput headline; on a
// single-core machine the speedup comes from batching and I/O overlap,
// on multi-core additionally from parallel extraction.

func BenchmarkDrainParallel(b *testing.B) {
	g, _ := benchFixtures(b)
	gen, err := tweetgen.New(tweetgen.Config{Seed: 99, Noise: 0.4, Domain: tweetgen.DomainMixed, RequestRatio: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	msgs := gen.Generate(256)
	const perIter = 64

	configs := []struct {
		name       string
		workers    int
		concurrent bool
	}{
		{"sequential", 1, false},
		{"workers=1", 1, true},
		{"workers=4", 4, true},
		{"workers=8", 8, true},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			processed := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys, err := core.New(core.Config{
					Gazetteer: g,
					Workers:   cfg.workers,
					QueueWAL:  filepath.Join(b.TempDir(), "queue.wal"),
				})
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < perIter; j++ {
					m := msgs[(i*perIter+j)%len(msgs)]
					if _, err := sys.Submit(context.Background(), m.Text, m.Source); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				var outs []*coordinator.Outcome
				var errs []error
				if cfg.concurrent {
					outs, errs = sys.ProcessConcurrent(context.Background(), 0)
				} else {
					outs, errs = sys.MC.Drain(0)
				}
				b.StopTimer()
				if len(errs) != 0 {
					b.Fatalf("drain errors: %v", errs[0])
				}
				processed += len(outs)
				sys.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(processed)/b.Elapsed().Seconds(), "msgs/sec")
		})
	}
}

// ---------------------------------------------------------------------------
// E14 — observability cost: the same WAL-backed concurrent drain with the
// metrics registry recording versus disabled (one atomic load per
// instrument call and every observation skipped). The two msgs/sec
// figures bound what the whole instrumentation layer charges the hot
// path; the roadmap's acceptance bar is within 5%.

func BenchmarkDrainMetricsOverhead(b *testing.B) {
	g, _ := benchFixtures(b)
	gen, err := tweetgen.New(tweetgen.Config{Seed: 99, Noise: 0.4, Domain: tweetgen.DomainMixed, RequestRatio: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	msgs := gen.Generate(256)
	const perIter = 64

	for _, cfg := range []struct {
		name    string
		enabled bool
	}{
		{"metrics=on", true},
		{"metrics=off", false},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			obs.Default().SetEnabled(cfg.enabled)
			defer obs.Default().SetEnabled(true)
			processed := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys, err := core.New(core.Config{
					Gazetteer: g,
					Workers:   4,
					QueueWAL:  filepath.Join(b.TempDir(), "queue.wal"),
				})
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < perIter; j++ {
					m := msgs[(i*perIter+j)%len(msgs)]
					if _, err := sys.Submit(context.Background(), m.Text, m.Source); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				_, errs := sys.ProcessConcurrent(context.Background(), 0)
				b.StopTimer()
				if len(errs) != 0 {
					b.Fatalf("drain errors: %v", errs[0])
				}
				processed += perIter
				sys.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(processed)/b.Elapsed().Seconds(), "msgs/sec")
		})
	}
}

// BenchmarkDrainTracingOverhead prices the span layer the same way the
// metrics leg does: recorder=off is the default deployment (StartSpan
// degrades to a context lookup plus an atomic load and must sit within
// the drain benchmark's noise floor); recorder=on pays span allocation
// and the keep-policy decision per message.
func BenchmarkDrainTracingOverhead(b *testing.B) {
	g, _ := benchFixtures(b)
	gen, err := tweetgen.New(tweetgen.Config{Seed: 99, Noise: 0.4, Domain: tweetgen.DomainMixed, RequestRatio: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	msgs := gen.Generate(256)
	const perIter = 64

	for _, cfg := range []struct {
		name     string
		recorder *obs.Recorder
	}{
		{"recorder=on", obs.NewRecorder(obs.RecorderConfig{Capacity: 256, SampleN: 1})},
		{"recorder=off", nil},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			obs.SetDefaultRecorder(cfg.recorder)
			defer obs.SetDefaultRecorder(nil)
			processed := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys, err := core.New(core.Config{
					Gazetteer: g,
					Workers:   4,
					QueueWAL:  filepath.Join(b.TempDir(), "queue.wal"),
				})
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < perIter; j++ {
					m := msgs[(i*perIter+j)%len(msgs)]
					if _, err := sys.Submit(context.Background(), m.Text, m.Source); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				_, errs := sys.ProcessConcurrent(context.Background(), 0)
				b.StopTimer()
				if len(errs) != 0 {
					b.Fatalf("drain errors: %v", errs[0])
				}
				processed += perIter
				sys.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(processed)/b.Elapsed().Seconds(), "msgs/sec")
		})
	}
}

// ---------------------------------------------------------------------------
// E12 — durability cost: what checkpointing charges the pipeline. One
// benchmark prices a single checkpoint as the store grows; the other
// compares batch-drain throughput with a checkpoint after every batch
// (the worst-case cadence) against no checkpointing at all.

func BenchmarkCheckpoint(b *testing.B) {
	g, _ := benchFixtures(b)
	gen, err := tweetgen.New(tweetgen.Config{Seed: 99, Noise: 0.4, Domain: tweetgen.DomainMixed})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			sys, err := core.New(core.Config{
				Gazetteer: g,
				Workers:   4,
				DataDir:   b.TempDir(),
				// Retention keeps the directory bounded however many
				// iterations the harness runs.
				CheckpointRetain: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			for _, m := range gen.Generate(n) {
				if _, err := sys.Submit(context.Background(), m.Text, m.Source); err != nil {
					b.Fatal(err)
				}
			}
			if _, errs := sys.ProcessConcurrent(context.Background(), 0); len(errs) != 0 {
				b.Fatalf("drain errors: %v", errs[0])
			}
			var bytes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				info, err := sys.Checkpoint(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				bytes = info.Size
			}
			b.ReportMetric(float64(bytes), "ckpt-bytes")
		})
	}
}

func BenchmarkDrainWithCheckpointing(b *testing.B) {
	g, _ := benchFixtures(b)
	gen, err := tweetgen.New(tweetgen.Config{Seed: 99, Noise: 0.4, Domain: tweetgen.DomainMixed, RequestRatio: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	msgs := gen.Generate(256)
	const perIter = 64
	for _, checkpointing := range []bool{false, true} {
		name := "off"
		if checkpointing {
			name = "per-batch"
		}
		b.Run(name, func(b *testing.B) {
			processed := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := core.Config{
					Gazetteer: g,
					Workers:   4,
					QueueWAL:  filepath.Join(b.TempDir(), "queue.wal"),
				}
				if checkpointing {
					cfg.DataDir = filepath.Join(b.TempDir(), "data")
					cfg.CheckpointRetain = 2
				}
				sys, err := core.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < perIter; j++ {
					m := msgs[(i*perIter+j)%len(msgs)]
					if _, err := sys.Submit(context.Background(), m.Text, m.Source); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				outs, errs := sys.ProcessConcurrent(context.Background(), 0)
				if checkpointing {
					if _, err := sys.Checkpoint(context.Background()); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if len(errs) != 0 {
					b.Fatalf("drain errors: %v", errs[0])
				}
				processed += len(outs)
				sys.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(processed)/b.Elapsed().Seconds(), "msgs/sec")
		})
	}
}

// ---------------------------------------------------------------------------
// E15 — the hot read path: the shard-versioned answer cache. Both
// benchmarks serve the same rotating question set over the same drained
// store; the cached system answers every repeat from the cache (the
// store is quiescent, so no version moves and every ask after the warm
// pass is a hit) while the uncached one re-runs the full QA pipeline.
// The roadmap's acceptance bar is a >=5x lower hit latency.

var askBenchQuestions = []string{
	"can anyone recommend a good hotel in Berlin?",
	"any good hotels near Paris?",
	"is the road to the airport open?",
}

func benchAskSystem(b *testing.B, cache int) *core.System {
	b.Helper()
	g, _ := benchFixtures(b)
	gen, err := tweetgen.New(tweetgen.Config{Seed: 99, Noise: 0.4, Domain: tweetgen.DomainMixed})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.New(core.Config{Gazetteer: g, Workers: 4, Shards: 4, AnswerCache: cache})
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range gen.Generate(256) {
		if _, err := sys.Submit(context.Background(), m.Text, m.Source); err != nil {
			b.Fatal(err)
		}
	}
	if _, errs := sys.ProcessConcurrent(context.Background(), 0); len(errs) != 0 {
		b.Fatalf("drain errors: %v", errs[0])
	}
	// Warm pass: fills the cache when one is configured; for the uncached
	// system it just equalises any lazy one-time costs.
	for _, q := range askBenchQuestions {
		if _, err := sys.Ask(context.Background(), q, "asker"); err != nil {
			b.Fatal(err)
		}
	}
	return sys
}

func BenchmarkAskUncached(b *testing.B) {
	sys := benchAskSystem(b, 0)
	defer sys.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Ask(context.Background(), askBenchQuestions[i%len(askBenchQuestions)], "asker"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAskCached(b *testing.B) {
	sys := benchAskSystem(b, 64)
	defer sys.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Ask(context.Background(), askBenchQuestions[i%len(askBenchQuestions)], "asker"); err != nil {
			b.Fatal(err)
		}
	}
	if st := sys.Cache.Stats(); st.Hits == 0 {
		b.Fatalf("benchmark never hit the cache: %+v", st)
	}
}

// ---------------------------------------------------------------------------
// E10 — probabilistic XML query cost: marginal-probability evaluation vs
// explicit possible-world enumeration, as the number of distribution nodes
// (and thus worlds) grows.

func benchPXMLDoc(choices int) *pxml.Node {
	kids := make([]*pxml.Node, 0, choices+1)
	kids = append(kids, pxml.ElemText("Name", "Essex House Hotel"))
	for i := 0; i < choices; i++ {
		a := pxml.ElemText("City", fmt.Sprintf("City%d-A", i))
		a.Prob = 0.6
		bNode := pxml.ElemText("City", fmt.Sprintf("City%d-B", i))
		bNode.Prob = 0.4
		kids = append(kids, pxml.Mux(a, bNode))
	}
	return pxml.Elem("Hotel", kids...)
}

func BenchmarkPXMLMarginal(b *testing.B) {
	for _, choices := range []int{1, 4, 8, 12} {
		b.Run(fmt.Sprintf("mux=%d", choices), func(b *testing.B) {
			doc := benchPXMLDoc(choices)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if p := pxml.ValueProb(doc, "/Hotel/City", "City0-A"); p <= 0 {
					b.Fatalf("prob = %v", p)
				}
			}
		})
	}
}

func BenchmarkPXMLWorlds(b *testing.B) {
	for _, choices := range []int{1, 4, 8, 12} {
		b.Run(fmt.Sprintf("mux=%d", choices), func(b *testing.B) {
			doc := benchPXMLDoc(choices)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				worlds, err := pxml.EnumerateWorlds(doc, pxml.DefaultWorldLimit)
				if err != nil {
					b.Fatal(err)
				}
				if len(worlds) == 0 {
					b.Fatal("no worlds")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation (DESIGN §5): MYCIN certainty-factor combination vs Bayesian
// product fusion for evidence pooling.

func BenchmarkUncertainCombineMYCIN(b *testing.B) {
	cfs := make([]uncertain.CF, 16)
	for i := range cfs {
		cfs[i] = uncertain.CF(0.1 + 0.05*float64(i%10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = uncertain.CombineAll(cfs)
	}
}

func BenchmarkUncertainCombineBayes(b *testing.B) {
	ps := make([]float64, 16)
	for i := range ps {
		ps[i] = 0.5 + 0.03*float64(i%10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Odds-product fusion of independent evidence.
		odds := 1.0
		for _, p := range ps {
			odds *= p / (1 - p)
		}
		_ = odds / (1 + odds)
	}
}

// ---------------------------------------------------------------------------
// E11 — sharded store: per-shard integration lanes versus the single
// batching integrator. The workload is the integration stage in
// isolation (pre-extracted templates, location-less so duplicate
// detection must scan its shard's collection): sharding divides every
// scan by the shard count — a single-core win — and on multi-core
// hardware the lanes additionally commit in parallel. See EXPERIMENTS.md
// §E11 for reference runs and cmd/integbench -mode=parallel -shards for
// the end-to-end pipeline numbers.

// shardBenchGroups builds per-message template groups over `entities`
// distinct location-less hotels, pre-partitioned by the integrator's
// routing (one slice of batches per lane, batch size 16 as in the
// pipeline).
func shardBenchGroups(in *shard.Integrator, n, entities int) [][][][]extract.Template {
	d := uncertain.NewDist()
	_ = d.Add("Positive", 0.9)
	_ = d.Add("Negative", 0.1)
	now := time.Unix(1_300_000_000, 0)
	names := hotelBenchNames(entities)
	perLane := make([][][]extract.Template, in.Lanes())
	for i := 0; i < n; i++ {
		tpl := extract.Template{
			Domain:    "tourism",
			RecordTag: "Hotel",
			Fields: map[string]extract.FieldValue{
				"Hotel_Name":    {Kind: kb.FieldText, Text: names[i%entities], CF: 0.9},
				"User_Attitude": {Kind: kb.FieldAttitude, Dist: d.Clone(), CF: 0.8},
			},
			Certainty: 0.5,
			Source:    fmt.Sprintf("citizen%d", i%11),
			Extracted: now.Add(time.Duration(i) * time.Second),
		}
		group := []extract.Template{tpl}
		perLane[in.Route(group)] = append(perLane[in.Route(group)], group)
	}
	const batch = 16
	out := make([][][][]extract.Template, in.Lanes())
	for lane, groups := range perLane {
		for len(groups) > 0 {
			k := batch
			if k > len(groups) {
				k = len(groups)
			}
			out[lane] = append(out[lane], groups[:k])
			groups = groups[k:]
		}
	}
	return out
}

// hotelBenchNames builds mutually dissimilar entity names (see
// cmd/integbench) so the benchmark measures scan cost, not accidental
// merging.
func hotelBenchNames(n int) []string {
	first := []string{"Azure", "Bravado", "Crimson", "Dunmore", "Elysian", "Falcon",
		"Gilded", "Harbour", "Ivory", "Juniper", "Kestrel", "Lakeside",
		"Meridian", "Northgate", "Opal", "Paragon"}
	second := []string{"Palace", "Lodge", "Retreat", "Towers", "Courtyard", "Manor",
		"Pavilion", "Terrace", "Springs", "Villa", "Quarters", "Haven"}
	names := make([]string, 0, n)
	for i := 0; len(names) < n; i++ {
		names = append(names, fmt.Sprintf("%s %s %d",
			first[i%len(first)], second[(i/len(first)+i)%len(second)], i))
	}
	return names
}

func BenchmarkShardIntegrateLanes(b *testing.B) {
	const msgs, entities = 1024, 768
	for _, nShards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", nShards), func(b *testing.B) {
			processed := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				st, err := shard.New(nShards, nil)
				if err != nil {
					b.Fatal(err)
				}
				in, err := shard.NewIntegrator(kb.New(), st)
				if err != nil {
					b.Fatal(err)
				}
				laneBatches := shardBenchGroups(in, msgs, entities)
				b.StartTimer()
				var wg sync.WaitGroup
				for lane := 0; lane < in.Lanes(); lane++ {
					wg.Add(1)
					go func(lane int) {
						defer wg.Done()
						for _, batch := range laneBatches[lane] {
							for _, group := range in.IntegrateGroups(lane, batch) {
								for _, r := range group {
									if r.Err != nil {
										b.Error(r.Err)
									}
								}
							}
						}
					}(lane)
				}
				wg.Wait()
				processed += msgs
			}
			b.ReportMetric(float64(processed)/b.Elapsed().Seconds(), "msgs/sec")
		})
	}
}

// BenchmarkDrainSharded is the end-to-end variant: the full concurrent
// pipeline (workers=4) over a WAL-backed queue, with the store and the
// integration tail partitioned per configuration. On a single core the
// pipeline is extraction-bound and the lanes only shrink dedup scans; on
// multi-core hardware the lanes also integrate in parallel.
func BenchmarkDrainSharded(b *testing.B) {
	g, _ := benchFixtures(b)
	gen, err := tweetgen.New(tweetgen.Config{Seed: 99, Noise: 0.4, Domain: tweetgen.DomainMixed, RequestRatio: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	msgs := gen.Generate(256)
	const perIter = 64

	for _, nShards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", nShards), func(b *testing.B) {
			processed := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys, err := core.New(core.Config{
					Gazetteer: g,
					Workers:   4,
					Shards:    nShards,
					QueueWAL:  filepath.Join(b.TempDir(), "queue.wal"),
				})
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < perIter; j++ {
					m := msgs[(i*perIter+j)%len(msgs)]
					if _, err := sys.Submit(context.Background(), m.Text, m.Source); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				outs, errs := sys.ProcessConcurrent(context.Background(), 0)
				b.StopTimer()
				if len(errs) != 0 {
					b.Fatalf("drain errors: %v", errs[0])
				}
				processed += len(outs)
				sys.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(processed)/b.Elapsed().Seconds(), "msgs/sec")
		})
	}
}

// ---------------------------------------------------------------------------
// E13: the feedback loop. BenchmarkFeedbackApply prices the new write
// path that is not message integration — verdict validation, durable
// ledger sequencing and the per-shard batched apply (certainty + trust
// + reinforcement) — across shard layouts. BenchmarkMixedAskFeedback
// drains the mixed serving workload the loop creates in production:
// questions answered while verdicts about earlier answers apply.

// benchFeedbackSystem builds a drained store of n records and returns
// the system plus every record ID (feedback targets).
func benchFeedbackSystem(b *testing.B, shards, n int) (*core.System, []int64) {
	b.Helper()
	g, _ := benchFixtures(b)
	gen, err := tweetgen.New(tweetgen.Config{Seed: 99, Noise: 0.4, Domain: tweetgen.DomainMixed})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.New(core.Config{Gazetteer: g, Workers: 4, Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range gen.Generate(n) {
		if _, err := sys.Submit(context.Background(), m.Text, m.Source); err != nil {
			b.Fatal(err)
		}
	}
	if _, errs := sys.ProcessConcurrent(context.Background(), 0); len(errs) != 0 {
		b.Fatalf("drain errors: %v", errs[0])
	}
	var ids []int64
	for _, coll := range sys.Store.Collections() {
		sys.Store.Each(coll, func(rec *xmldb.Record) bool {
			ids = append(ids, rec.ID)
			return true
		})
	}
	if len(ids) == 0 {
		b.Fatal("no records to give feedback about")
	}
	return sys, ids
}

func BenchmarkFeedbackApply(b *testing.B) {
	kinds := []feedback.Kind{feedback.KindConfirm, feedback.KindConfirm, feedback.KindReject}
	for _, nShards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", nShards), func(b *testing.B) {
			sys, ids := benchFeedbackSystem(b, nShards, 256)
			defer sys.Close()
			b.ResetTimer()
			applied := 0
			for i := 0; i < b.N; i++ {
				if _, err := sys.SubmitFeedback(feedback.Verdict{
					RecordID: ids[i%len(ids)],
					Kind:     kinds[i%len(kinds)],
					Source:   fmt.Sprintf("judge%d", i%13),
				}); err != nil {
					b.Fatal(err)
				}
				applied++
				if i%64 == 63 {
					sys.FlushFeedback()
				}
			}
			sys.FlushFeedback()
			b.ReportMetric(float64(applied)/b.Elapsed().Seconds(), "verdicts/sec")
		})
	}
}

func BenchmarkMixedAskFeedbackDrain(b *testing.B) {
	questions := []string{
		"can anyone recommend a good hotel in Berlin?",
		"any good hotels near Paris?",
		"is the road to the airport open?",
	}
	sys, ids := benchFeedbackSystem(b, 4, 256)
	defer sys.Close()
	gen, err := tweetgen.New(tweetgen.Config{Seed: 7, Noise: 0.4, Domain: tweetgen.DomainMixed})
	if err != nil {
		b.Fatal(err)
	}
	stream := gen.Generate(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One serving beat: a fresh contribution drains, a question is
		// answered, a verdict arrives and the buffered batch applies.
		m := stream[i%len(stream)]
		if _, err := sys.Submit(context.Background(), m.Text, m.Source); err != nil {
			b.Fatal(err)
		}
		if _, errs := sys.ProcessConcurrent(context.Background(), 0); len(errs) != 0 {
			b.Fatalf("drain errors: %v", errs[0])
		}
		if _, err := sys.Ask(context.Background(), questions[i%len(questions)], "asker"); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.SubmitFeedback(feedback.Verdict{
			RecordID: ids[i%len(ids)],
			Kind:     feedback.KindConfirm,
			Source:   fmt.Sprintf("fan%d", i%7),
		}); err != nil {
			b.Fatal(err)
		}
		sys.FlushFeedback()
	}
}
