package readpath

import (
	"repro/internal/geo"
	"repro/internal/shard"
	"repro/internal/xmldb"
)

// TouchedShards computes an answer's blast radius: the sorted set of
// shards whose writes could change the answer produced by the given
// formulated query, or nil when it is the whole store.
//
// The only narrowing implemented is the one the QA service actually
// emits: a near($x, lat, lon, r) predicate in conjunctive position
// under a GridRouter. A record matching such a query must be located
// inside the circle, located records live on the shard of their
// location's grid cell, and GridRouter.CoverShards enumerates every
// cell the circle touches — so writes outside the cover cannot add,
// remove or rescore a match. Everything else (city equality, attitude
// filters, disjunctions) keys on field values the router never sees and
// stays whole-store.
//
// Narrowing additionally requires the store's placement-drift epoch to
// be zero: a location-moving merge or feedback correction can strand a
// record off its location's cell, breaking the cover argument (see
// shard.Store.Drift). Callers must still pin the epoch in the cache
// entry, because drift can begin after the plan is computed.
func TouchedShards(query string, st *shard.Store) []int {
	if st.NumShards() == 1 {
		return nil
	}
	gr, ok := st.Router().(*shard.GridRouter)
	if !ok {
		return nil
	}
	if st.Drift() != 0 {
		return nil
	}
	q, err := xmldb.Parse(query)
	if err != nil || q.Where == nil {
		return nil
	}
	near, ok := conjunctiveNear(q.Where)
	if !ok {
		return nil
	}
	center, err := geo.NewPoint(near.Lat, near.Lon)
	if err != nil {
		return nil
	}
	cover := gr.CoverShards(center, near.RadiusMeters)
	if len(cover) >= st.NumShards() {
		return nil
	}
	return cover
}

// conjunctiveNear finds a Near predicate that every match must satisfy:
// the expression itself, or a conjunct of a top-level And chain. Under
// Or or Not a record can match without being inside the circle, so the
// walk does not descend into them.
func conjunctiveNear(e xmldb.Expr) (xmldb.Near, bool) {
	switch v := e.(type) {
	case xmldb.Near:
		return v, true
	case xmldb.And:
		if n, ok := conjunctiveNear(v.L); ok {
			return n, ok
		}
		return conjunctiveNear(v.R)
	}
	return xmldb.Near{}, false
}
