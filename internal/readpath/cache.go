// Package readpath is the hot read side of the pipeline: a
// shard-versioned answer cache and a standing-query broadcaster that
// share one invalidation spine. Every store mutation — integration,
// feedback apply, certainty decay, restore — moves its shard's version
// counter (xmldb.DB.Version); the cache keys answers to the versions of
// the shards a query's plan touches, so a hit is provably as fresh as a
// recompute, and invalidation is precise (a write to an untouched shard
// never evicts). The broker rides the same per-shard routing: a write
// on one integration or feedback lane is tested against only that
// shard's subscriptions.
package readpath

import (
	"container/list"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/qa"
)

// Answer-cache counters. Hits and misses make the hit rate scrapeable;
// evictions separate capacity pressure (grow the cache) from
// invalidations (the store is changing under the questions).
var (
	mCacheHits = obs.Default().Counter("neogeo_cache_hits_total",
		"Answer-cache lookups served without re-running the QA path.").With()
	mCacheMisses = obs.Default().Counter("neogeo_cache_misses_total",
		"Answer-cache lookups that fell through to the full QA path.").With()
	mCacheEvictions = obs.Default().Counter("neogeo_cache_evictions_total",
		"Answer-cache entries dropped by LRU capacity pressure.").With()
	mCacheInvalidations = obs.Default().Counter("neogeo_cache_invalidations_total",
		"Answer-cache entries dropped because a touched shard's version moved.").With()
)

// Cache is a bounded LRU of Ask answers keyed by normalized question
// text, each entry pinned to the shard version vector observed BEFORE
// its answer was computed. That ordering is the coherence argument: if
// the versions of the entry's touched shards still equal the current
// ones, no touched shard has committed a mutation since before the
// query ran, so re-running it would read the same data. A write that
// races the original query only makes the entry invalid early — a
// wasted recompute, never a stale hit.
//
// All methods are safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // front = most recently used; values are *entry
	byKey map[string]*list.Element

	hits, misses, evictions, invalidations int64
}

// entry is one cached answer.
type entry struct {
	key string
	ans *qa.Answer
	// shards is the query plan's touched-shard set, sorted; nil means
	// the whole store (any shard's write invalidates).
	shards []int
	// versions is the full shard version vector read before the answer
	// was computed.
	versions []int64
	// drift pins the store's placement-drift epoch for narrowed plans:
	// shard narrowing assumes located records live where their location
	// routes, so any drift after the entry was cached voids the plan.
	drift int64
}

// NewCache returns an answer cache holding at most capacity entries
// (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:   capacity,
		lru:   list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

// NormalizeQuestion is the cache's key function: whitespace runs
// collapse to single spaces and the ends are trimmed. Nothing else —
// case is preserved, because classification and entity extraction may
// read capitalization, and an over-merging key could serve question A
// the answer to question B. Under-merging only costs a recompute.
func NormalizeQuestion(q string) string {
	return strings.Join(strings.Fields(q), " ")
}

// Get returns the cached answer for a question if one exists and is
// still coherent against the current shard version vector and drift
// epoch; a stale entry is removed on the way out. The returned answer
// is shared — callers must treat it as immutable (qa answers hold
// immutable record snapshots, so sharing is safe).
func (c *Cache) Get(question string, versions []int64, drift int64) (*qa.Answer, bool) {
	key := NormalizeQuestion(question)
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		mCacheMisses.Inc()
		return nil, false
	}
	e := el.Value.(*entry)
	if !e.fresh(versions, drift) {
		c.removeLocked(el)
		c.invalidations++
		c.misses++
		mCacheInvalidations.Inc()
		mCacheMisses.Inc()
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	mCacheHits.Inc()
	return e.ans, true
}

// fresh reports whether no touched shard's version has moved since the
// entry's vector was read.
func (e *entry) fresh(versions []int64, drift int64) bool {
	if len(versions) != len(e.versions) {
		return false
	}
	if e.shards == nil {
		for i, v := range versions {
			if v != e.versions[i] {
				return false
			}
		}
		return true
	}
	if drift != e.drift {
		return false
	}
	for _, s := range e.shards {
		if s < 0 || s >= len(versions) || versions[s] != e.versions[s] {
			return false
		}
	}
	return true
}

// Put caches an answer under its question. versions MUST be the vector
// read before the answer was computed (not after), and shards the
// touched-shard plan (nil = whole store); drift the placement-drift
// epoch read alongside. A nil answer is ignored.
func (c *Cache) Put(question string, ans *qa.Answer, shards []int, versions []int64, drift int64) {
	if ans == nil {
		return
	}
	key := NormalizeQuestion(question)
	e := &entry{key: key, ans: ans, shards: shards, versions: versions, drift: drift}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(e)
	for c.lru.Len() > c.cap {
		c.removeLocked(c.lru.Back())
		c.evictions++
		mCacheEvictions.Inc()
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	c.lru.Remove(el)
	delete(c.byKey, el.Value.(*entry).key)
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// CacheStats is the cache's counter snapshot.
type CacheStats struct {
	// Entries is the current entry count; Capacity the configured bound.
	Entries  int
	Capacity int
	// Hits and Misses count lookups; Misses includes Invalidations.
	Hits   int64
	Misses int64
	// Evictions counts entries dropped by LRU capacity pressure,
	// Invalidations entries dropped because a touched shard moved.
	Evictions     int64
	Invalidations int64
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:       c.lru.Len(),
		Capacity:      c.cap,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}
