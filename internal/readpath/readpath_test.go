package readpath

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/pxml"
	"repro/internal/qa"
	"repro/internal/shard"
	"repro/internal/xmldb"
)

func TestNormalizeQuestion(t *testing.T) {
	cases := map[string]string{
		"  any  good\thotel\n in Berlin? ": "any good hotel in Berlin?",
		"Any good hotel in Berlin?":        "Any good hotel in Berlin?", // case preserved
		"":                                 "",
	}
	for in, want := range cases {
		if got := NormalizeQuestion(in); got != want {
			t.Errorf("NormalizeQuestion(%q) = %q, want %q", in, got, want)
		}
	}
}

func ans(text string) *qa.Answer { return &qa.Answer{Text: text} }

func TestCacheWholeStoreInvalidation(t *testing.T) {
	c := NewCache(8)
	v1 := []int64{3, 7}
	c.Put("q", ans("a"), nil, v1, 0)

	if got, ok := c.Get("  q ", v1, 0); !ok || got.Text != "a" {
		t.Fatalf("Get = %v, %v; want hit via normalized key", got, ok)
	}
	// Any shard's version moving invalidates a whole-store entry.
	if _, ok := c.Get("q", []int64{3, 8}, 0); ok {
		t.Fatal("stale entry served after a shard moved")
	}
	if _, ok := c.Get("q", v1, 0); ok {
		t.Fatal("invalidated entry resurrected")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Invalidations != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheNarrowedPlanIgnoresUntouchedShards(t *testing.T) {
	c := NewCache(8)
	v1 := []int64{1, 1, 1, 1}
	c.Put("q", ans("a"), []int{2}, v1, 0)

	// A write on an untouched shard keeps the entry fresh.
	if _, ok := c.Get("q", []int64{9, 1, 1, 9}, 0); !ok {
		t.Fatal("write to untouched shard invalidated a narrowed entry")
	}
	// A write on the touched shard invalidates.
	if _, ok := c.Get("q", []int64{9, 1, 2, 9}, 0); ok {
		t.Fatal("write to touched shard did not invalidate")
	}
}

func TestCacheDriftPinsNarrowedPlans(t *testing.T) {
	c := NewCache(8)
	v := []int64{1, 1}
	c.Put("narrow", ans("n"), []int{0}, v, 0)
	c.Put("whole", ans("w"), nil, v, 0)

	// Placement drift voids narrowed plans even with versions unmoved...
	if _, ok := c.Get("narrow", v, 1); ok {
		t.Fatal("narrowed entry survived a drift-epoch change")
	}
	// ...but a whole-store entry's coherence never depended on placement.
	if _, ok := c.Get("whole", v, 1); !ok {
		t.Fatal("whole-store entry invalidated by drift")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	v := []int64{1}
	c.Put("a", ans("a"), nil, v, 0)
	c.Put("b", ans("b"), nil, v, 0)
	if _, ok := c.Get("a", v, 0); !ok { // a is now most recent
		t.Fatal("miss on a")
	}
	c.Put("c", ans("c"), nil, v, 0) // evicts b
	if _, ok := c.Get("b", v, 0); ok {
		t.Fatal("LRU kept the least recently used entry")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k, v, 0); !ok {
			t.Fatalf("%q evicted out of order", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// hotelRecord builds the record shape integration stores: the key field
// first, a located root.
func hotelRecord(id int64, name string, loc *geo.Point) *xmldb.Record {
	return &xmldb.Record{
		ID:        id,
		Doc:       pxml.Elem("Hotel", pxml.ElemText("Hotel_Name", name), pxml.ElemText("City", "Berlin")),
		Certainty: 0.6,
		Location:  loc,
	}
}

func newTestStore(t *testing.T, shards int) *shard.Store {
	t.Helper()
	st, err := shard.New(shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestBrokerKeySubscription(t *testing.T) {
	st := newTestStore(t, 1)
	b := NewBroker(st)
	id, err := b.Subscribe(Subscription{Collection: "Hotels", Key: "Axel Hotel"})
	if err != nil {
		t.Fatal(err)
	}
	events, release, err := b.Attach(id)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	at := time.Unix(1_300_000_000, 0)
	b.Publish(0, "inserted", "Hotels", hotelRecord(1, "axel hotel", nil), at) // key match is normalized
	b.Publish(0, "inserted", "Hotels", hotelRecord(2, "Movenpick Hotel", nil), at)
	b.Publish(0, "inserted", "Traffic", hotelRecord(3, "Axel Hotel", nil), at) // wrong collection

	select {
	case ev := <-events:
		if ev.RecordID != 1 || ev.Action != "inserted" || ev.Fields["Hotel_Name"] != "axel hotel" {
			t.Fatalf("wrong event: %+v", ev)
		}
	default:
		t.Fatal("matching publish not delivered")
	}
	select {
	case ev := <-events:
		t.Fatalf("non-matching publish delivered: %+v", ev)
	default:
	}
}

func TestBrokerGeofence(t *testing.T) {
	st := newTestStore(t, 1)
	b := NewBroker(st)
	center := geo.Point{Lat: 52.5, Lon: 13.4}
	id, err := b.Subscribe(Subscription{Center: &center, RadiusMeters: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	events, release, err := b.Attach(id)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	at := time.Unix(1_300_000_000, 0)
	inside := &geo.Point{Lat: 52.52, Lon: 13.41}
	outside := &geo.Point{Lat: 48.8, Lon: 2.3}
	b.Publish(0, "inserted", "Hotels", hotelRecord(1, "Near Hotel", inside), at)
	b.Publish(0, "inserted", "Hotels", hotelRecord(2, "Far Hotel", outside), at)
	b.Publish(0, "inserted", "Hotels", hotelRecord(3, "Unlocated Hotel", nil), at)

	select {
	case ev := <-events:
		if ev.RecordID != 1 || ev.Location == nil {
			t.Fatalf("wrong event: %+v", ev)
		}
	default:
		t.Fatal("inside-fence publish not delivered")
	}
	select {
	case ev := <-events:
		t.Fatalf("outside-fence publish delivered: %+v", ev)
	default:
	}
}

func TestBrokerValidation(t *testing.T) {
	b := NewBroker(newTestStore(t, 1))
	center := geo.Point{Lat: 52.5, Lon: 13.4}
	bad := []Subscription{
		{}, // neither axis
		{Key: "x", Center: &center, RadiusMeters: 5}, // both axes
		{Center: &center}, // no radius
		{Center: &center, RadiusMeters: -1},
		{Center: &geo.Point{Lat: 99, Lon: 0}, RadiusMeters: 5},
	}
	for i, spec := range bad {
		if _, err := b.Subscribe(spec); !errors.Is(err, ErrInvalidSubscription) {
			t.Errorf("spec %d: err = %v, want ErrInvalidSubscription", i, err)
		}
	}
}

func TestBrokerSingleConsumer(t *testing.T) {
	b := NewBroker(newTestStore(t, 1))
	id, err := b.Subscribe(Subscription{Key: "Axel Hotel"})
	if err != nil {
		t.Fatal(err)
	}
	_, release, err := b.Attach(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Attach(id); !errors.Is(err, ErrStreamBusy) {
		t.Fatalf("second attach err = %v, want ErrStreamBusy", err)
	}
	release()
	if _, release2, err := b.Attach(id); err != nil {
		t.Fatalf("attach after release: %v", err)
	} else {
		release2()
	}
	if _, _, err := b.Attach("nope"); !errors.Is(err, ErrUnknownSubscription) {
		t.Fatalf("unknown attach err = %v", err)
	}
	if err := b.Unsubscribe("nope"); !errors.Is(err, ErrUnknownSubscription) {
		t.Fatalf("unknown unsubscribe err = %v", err)
	}
}

func TestBrokerDropOldest(t *testing.T) {
	b := NewBroker(newTestStore(t, 1))
	id, err := b.Subscribe(Subscription{Key: "Axel Hotel"})
	if err != nil {
		t.Fatal(err)
	}
	at := time.Unix(1_300_000_000, 0)
	total := subBuffer + 10
	for i := 0; i < total; i++ {
		b.Publish(0, "merged", "Hotels", hotelRecord(int64(i+1), "Axel Hotel", nil), at)
	}
	info, err := b.Info(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Dropped != int64(total-subBuffer) {
		t.Fatalf("dropped = %d, want %d", info.Dropped, total-subBuffer)
	}
	events, release, err := b.Attach(id)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	// Drop-oldest means the buffer holds the most recent events.
	first := <-events
	if first.RecordID != int64(total-subBuffer+1) {
		t.Fatalf("oldest surviving event is record %d, want %d", first.RecordID, total-subBuffer+1)
	}
	// Every publish was buffered (delivered) — overflow displaced the
	// OLDEST buffered event rather than refusing the new one.
	st := b.Stats()
	if st.Delivered != int64(total) || st.Dropped != int64(total-subBuffer) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBrokerShardRegistration(t *testing.T) {
	st := newTestStore(t, 4)
	b := NewBroker(st)

	// Spatial router + key subscription: the entity's records can be on
	// any shard, so the subscription listens everywhere.
	keyID, err := b.Subscribe(Subscription{Key: "Axel Hotel"})
	if err != nil {
		t.Fatal(err)
	}
	keyInfo, _ := b.Info(keyID)
	if len(keyInfo.Shards) != 4 {
		t.Fatalf("key subscription under GridRouter on %v, want all 4 shards", keyInfo.Shards)
	}

	// A small geofence narrows to the covering shards.
	fenceID, err := b.Subscribe(Subscription{Center: &geo.Point{Lat: 52.5, Lon: 13.4}, RadiusMeters: 5000})
	if err != nil {
		t.Fatal(err)
	}
	fenceInfo, _ := b.Info(fenceID)
	if len(fenceInfo.Shards) == 0 || len(fenceInfo.Shards) > 4 {
		t.Fatalf("fence shards = %v", fenceInfo.Shards)
	}
	for _, s := range fenceInfo.Shards {
		if !b.ActiveOn(s) {
			t.Fatalf("ActiveOn(%d) = false for a registered shard", s)
		}
	}
}

func TestBrokerClose(t *testing.T) {
	b := NewBroker(newTestStore(t, 1))
	id, err := b.Subscribe(Subscription{Key: "Axel Hotel"})
	if err != nil {
		t.Fatal(err)
	}
	events, release, err := b.Attach(id)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	b.Close()
	if _, ok := <-events; ok {
		t.Fatal("stream still open after broker close")
	}
	if _, err := b.Subscribe(Subscription{Key: "x"}); !errors.Is(err, ErrBrokerClosed) {
		t.Fatalf("subscribe after close err = %v", err)
	}
	b.Close() // idempotent
}

func TestTouchedShards(t *testing.T) {
	single := newTestStore(t, 1)
	four := newTestStore(t, 4)

	nearQ := "for $x in //Hotels where near($x, 52.5, 13.4, 50000) return $x"
	conjQ := `topk(3, for $x in //Hotels where near($x, 52.5, 13.4, 50000) and $x/User_Attitude == "Positive" orderby score($x) return $x)`
	orQ := `for $x in //Hotels where near($x, 52.5, 13.4, 50000) or $x/City == "Berlin" return $x`
	cityQ := `for $x in //Hotels where $x/City == "Berlin" return $x`

	if got := TouchedShards(nearQ, single); got != nil {
		t.Fatalf("single-shard plan = %v, want nil", got)
	}
	narrowed := TouchedShards(nearQ, four)
	if len(narrowed) == 0 || len(narrowed) >= 4 {
		t.Fatalf("near plan = %v, want a strict subset of 4 shards", narrowed)
	}
	conj := TouchedShards(conjQ, four)
	if fmt.Sprint(conj) != fmt.Sprint(narrowed) {
		t.Fatalf("conjunctive near plan %v differs from bare near plan %v", conj, narrowed)
	}
	if got := TouchedShards(orQ, four); got != nil {
		t.Fatalf("disjunctive near narrowed to %v; Or can match outside the circle", got)
	}
	if got := TouchedShards(cityQ, four); got != nil {
		t.Fatalf("city plan = %v, want nil (field values are invisible to the router)", got)
	}
	if got := TouchedShards("not a query", four); got != nil {
		t.Fatalf("unparseable query plan = %v, want nil", got)
	}

	// Planet-sized circles cover everything and stay whole-store.
	if got := TouchedShards("for $x in //Hotels where near($x, 0, 0, 20015000) return $x", four); got != nil {
		t.Fatalf("planet-sized near = %v, want nil", got)
	}
}

func TestCoverShardsContainsCircleRecords(t *testing.T) {
	st := newTestStore(t, 8)
	gr, ok := st.Router().(*shard.GridRouter)
	if !ok {
		t.Fatal("default multi-shard router is not a GridRouter")
	}
	center := geo.Point{Lat: 52.5, Lon: 13.4}
	const radius = 100_000
	cover := gr.CoverShards(center, radius)
	inCover := make(map[int]bool, len(cover))
	for _, s := range cover {
		inCover[s] = true
	}
	// Every point inside the circle must route into the cover: sample a
	// dense grid over the bounding box.
	for dlat := -1.0; dlat <= 1.0; dlat += 0.05 {
		for dlon := -1.6; dlon <= 1.6; dlon += 0.05 {
			p := geo.Point{Lat: center.Lat + dlat, Lon: center.Lon + dlon}
			if p.DistanceMeters(center) > radius {
				continue
			}
			if home := gr.Route(&p, ""); !inCover[home] {
				t.Fatalf("point %v inside the circle routes to shard %d outside cover %v", p, home, cover)
			}
		}
	}
}
