package readpath

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/extract"
	"repro/internal/geo"
	"repro/internal/integrate"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/text"
	"repro/internal/xmldb"
)

// Broker errors callers branch on.
var (
	// ErrUnknownSubscription reports an ID that was never issued or was
	// already cancelled.
	ErrUnknownSubscription = errors.New("readpath: unknown subscription")
	// ErrStreamBusy reports an Attach on a subscription that already has
	// a consumer — each subscription streams to exactly one.
	ErrStreamBusy = errors.New("readpath: subscription stream already attached")
	// ErrBrokerClosed reports operations on a closed broker.
	ErrBrokerClosed = errors.New("readpath: broker closed")
	// ErrInvalidSubscription reports a malformed subscription spec.
	ErrInvalidSubscription = errors.New("readpath: invalid subscription")
)

var (
	mSubEvents = obs.Default().Counter("neogeo_subscription_events_total",
		"Standing-query events fanned out to subscription buffers, by outcome.", "outcome")
	subDelivered = mSubEvents.With("delivered")
	subDropped   = mSubEvents.With("dropped")
	mSubTested   = obs.Default().Counter("neogeo_subscription_matches_tested_total",
		"Subscription predicates evaluated against published writes.").With()
)

// subBuffer bounds each subscription's event buffer. A consumer slower
// than its matching write rate loses the OLDEST buffered events first
// (counted, and reported on the subscription), so the stream always
// converges to recent state instead of stalling the write path.
const subBuffer = 64

// Subscription is a standing query: a continuous predicate over the
// records that integration and feedback commit. Exactly one of Key or
// Center selects the matching axis; Collection optionally restricts to
// one record type.
type Subscription struct {
	// Collection restricts matches to one collection, e.g. "Hotels"
	// (empty: any).
	Collection string
	// Key subscribes to one entity by routing key (e.g. a hotel name),
	// matched against the record's key field under the same
	// normalization the router uses.
	Key string
	// Center and RadiusMeters geofence the subscription: located records
	// within the circle match. RadiusMeters must be positive when Center
	// is set.
	Center       *geo.Point
	RadiusMeters float64
}

// Event is one matching write, projected for delivery: certainty and
// the most likely value per field, never raw documents (the source
// trace stays inside the feedback machinery, exactly as on the answer
// path).
type Event struct {
	// Seq orders events broker-wide; consumers see gaps where other
	// subscriptions matched or their own buffer dropped.
	Seq int64
	// Action is what the write did: "inserted", "merged", "confirmed",
	// "rejected", "corrected", or "deleted".
	Action string
	// Collection and RecordID identify the record.
	Collection string
	RecordID   int64
	// Certainty is the record's certainty after the write (0 for
	// deletes).
	Certainty float64
	// Location is the record's resolved position after the write, nil
	// when none.
	Location *geo.Point
	// Fields maps top-level fields to their most likely value.
	Fields map[string]string
	// At is the write's timestamp.
	At time.Time
}

// sub is one registered subscription.
type sub struct {
	id   string
	spec Subscription
	// normKey is the pre-normalized entity key ("" for geofences).
	normKey string
	// shards is where the subscription is registered (sorted).
	shards []int
	ch     chan Event
	// attached guards the single-consumer rule.
	attached bool
	dropped  int64
}

// Broker is the standing-query broadcaster: the single fan-out point
// between the write lanes and subscribers. One broker exists per
// system — the integration and feedback lanes publish every committed
// write into it, and all subscription state lives in it (the
// single-broadcaster invariant, docs/INVARIANTS.md). Registration is
// per shard: a write on lane i is tested against only byShard[i], so
// the per-write cost tracks the shard's subscriber count, not the
// system's.
//
// Delivery is best-effort push with exact predicates: a matching write
// is either in the subscription's buffer or counted as dropped; it is
// never silently lost. Geofenced subscriptions narrow to the covering
// shards only while the store's placement-drift epoch is zero at
// registration time (see shard.Store.Drift); drift afterwards can in
// principle strand a moved record's writes on an untested shard, which
// stays within best-effort semantics.
type Broker struct {
	store *shard.Store

	mu      sync.RWMutex
	closed  bool
	subs    map[string]*sub
	byShard []map[string]*sub
	// perShard[i] mirrors len(byShard[i]) so the write lanes can skip
	// publishing with one atomic load instead of taking the lock.
	perShard []atomic.Int64

	seq       atomic.Int64
	delivered atomic.Int64
	dropped   atomic.Int64
}

// NewBroker returns a broker over the store's shard layout.
func NewBroker(st *shard.Store) *Broker {
	b := &Broker{
		store:    st,
		subs:     make(map[string]*sub),
		byShard:  make([]map[string]*sub, st.NumShards()),
		perShard: make([]atomic.Int64, st.NumShards()),
	}
	for i := range b.byShard {
		b.byShard[i] = make(map[string]*sub)
	}
	return b
}

// Subscribe registers a standing query and returns its ID.
func (b *Broker) Subscribe(spec Subscription) (string, error) {
	hasKey := spec.Key != ""
	hasFence := spec.Center != nil
	if hasKey == hasFence {
		return "", fmt.Errorf("%w: needs exactly one of key or center, got key=%v center=%v", ErrInvalidSubscription, hasKey, hasFence)
	}
	if hasFence {
		if err := spec.Center.Validate(); err != nil {
			return "", fmt.Errorf("%w: center: %v", ErrInvalidSubscription, err)
		}
		if spec.RadiusMeters <= 0 {
			return "", fmt.Errorf("%w: radius must be positive, got %v", ErrInvalidSubscription, spec.RadiusMeters)
		}
	}

	s := &sub{
		spec:   spec,
		shards: b.shardsFor(spec),
		ch:     make(chan Event, subBuffer),
	}
	if hasKey {
		s.normKey = text.NormalizeName(spec.Key)
	}

	idBytes := make([]byte, 8)
	if _, err := rand.Read(idBytes); err != nil {
		return "", fmt.Errorf("readpath: minting subscription id: %w", err)
	}
	s.id = hex.EncodeToString(idBytes)

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return "", ErrBrokerClosed
	}
	b.subs[s.id] = s
	for _, i := range s.shards {
		b.byShard[i][s.id] = s
		b.perShard[i].Add(1)
	}
	return s.id, nil
}

// shardsFor picks the shards whose writes can match a subscription.
func (b *Broker) shardsFor(spec Subscription) []int {
	n := b.store.NumShards()
	if n == 1 {
		return []int{0}
	}
	router := b.store.Router()
	if spec.Key != "" {
		// Key-only routers co-locate all of an entity's records on the
		// key's shard; spatial routers place located records by cell, so
		// an entity's records can be anywhere.
		if ko, ok := router.(interface{ RoutesByKeyAlone() bool }); ok && ko.RoutesByKeyAlone() {
			return []int{router.Route(nil, spec.Key)}
		}
		return allShards(n)
	}
	if gr, ok := router.(*shard.GridRouter); ok && b.store.Drift() == 0 {
		return gr.CoverShards(*spec.Center, spec.RadiusMeters)
	}
	return allShards(n)
}

func allShards(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Unsubscribe cancels a subscription and closes its stream.
func (b *Broker) Unsubscribe(id string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.subs[id]
	if !ok {
		return ErrUnknownSubscription
	}
	b.removeLocked(s)
	return nil
}

// removeLocked needs the exclusive lock: publishers send under the read
// lock, so closing here cannot race a send.
func (b *Broker) removeLocked(s *sub) {
	delete(b.subs, s.id)
	for _, i := range s.shards {
		delete(b.byShard[i], s.id)
		b.perShard[i].Add(-1)
	}
	close(s.ch)
}

// Attach claims a subscription's event stream. Each subscription
// streams to exactly one consumer at a time; a second Attach fails with
// ErrStreamBusy until release is called. The channel closes when the
// subscription is cancelled or the broker shuts down; release after
// that is a no-op.
func (b *Broker) Attach(id string) (events <-chan Event, release func(), err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.subs[id]
	if !ok {
		return nil, nil, ErrUnknownSubscription
	}
	if s.attached {
		return nil, nil, ErrStreamBusy
	}
	s.attached = true
	return s.ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		s.attached = false
	}, nil
}

// Publish fans one committed write out to the shard's subscriptions.
// The write lanes call it after their batch commits, with the record's
// post-write state (nil rec for deletes is not supported — deletes
// publish the last known state with action "deleted"). Matching runs
// under a read lock and is O(subscriptions on this shard); the event
// payload is projected at most once per publish.
func (b *Broker) Publish(shardIdx int, action, collection string, rec *xmldb.Record, at time.Time) {
	if rec == nil || shardIdx < 0 || shardIdx >= len(b.byShard) {
		return
	}
	if b.perShard[shardIdx].Load() == 0 {
		return
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	var ev *Event
	for _, s := range b.byShard[shardIdx] {
		mSubTested.Inc()
		if !s.matches(collection, rec) {
			continue
		}
		if ev == nil {
			ev = b.project(action, collection, rec, at)
		}
		b.deliver(s, *ev)
	}
}

// matches evaluates the standing query's predicate against one record.
func (s *sub) matches(collection string, rec *xmldb.Record) bool {
	if s.spec.Collection != "" && s.spec.Collection != collection {
		return false
	}
	if s.normKey != "" {
		return text.NormalizeName(shard.DocKey(rec.Doc)) == s.normKey
	}
	return rec.Location != nil &&
		rec.Location.DistanceMeters(*s.spec.Center) <= s.spec.RadiusMeters
}

// deliver is a non-blocking send with drop-oldest overflow, so a stuck
// SSE consumer can never stall an integration or feedback lane.
func (s *sub) deliverInto(ev Event) bool {
	select {
	case s.ch <- ev:
		return true
	default:
	}
	select {
	case <-s.ch:
		atomic.AddInt64(&s.dropped, 1)
	default:
	}
	select {
	case s.ch <- ev:
		return true
	default:
		atomic.AddInt64(&s.dropped, 1)
		return false
	}
}

func (b *Broker) deliver(s *sub, ev Event) {
	before := atomic.LoadInt64(&s.dropped)
	if s.deliverInto(ev) {
		b.delivered.Add(1)
		subDelivered.Inc()
	}
	if d := atomic.LoadInt64(&s.dropped) - before; d > 0 {
		b.dropped.Add(d)
		subDropped.Add(float64(d))
	}
}

// project flattens a record into an event payload, mirroring the answer
// path's projection: the most likely value per field, provenance
// stripped.
func (b *Broker) project(action, collection string, rec *xmldb.Record, at time.Time) *Event {
	ev := &Event{
		Seq:        b.seq.Add(1),
		Action:     action,
		Collection: collection,
		RecordID:   rec.ID,
		Certainty:  float64(rec.Certainty),
		Fields:     make(map[string]string),
		At:         at,
	}
	if rec.Location != nil {
		p := *rec.Location
		ev.Location = &p
	}
	for _, c := range rec.Doc.Children {
		if c.Tag == "" || c.Tag == integrate.SourceTraceField {
			continue
		}
		v := c.TextContent()
		if top, ok := extract.MuxToDist(c).Top(); ok {
			v = top.Name
		}
		if v != "" {
			ev.Fields[c.Tag] = v
		}
	}
	return ev
}

// SubscriptionInfo describes one registered subscription.
type SubscriptionInfo struct {
	ID string
	// Spec is the registered predicate.
	Spec Subscription
	// Shards is where the subscription listens.
	Shards []int
	// Dropped counts events lost to this subscription's buffer bound.
	Dropped int64
	// Attached says whether a consumer currently holds the stream.
	Attached bool
}

// Info returns a subscription's registration state.
func (b *Broker) Info(id string) (SubscriptionInfo, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	s, ok := b.subs[id]
	if !ok {
		return SubscriptionInfo{}, ErrUnknownSubscription
	}
	return SubscriptionInfo{
		ID:       s.id,
		Spec:     s.spec,
		Shards:   append([]int(nil), s.shards...),
		Dropped:  atomic.LoadInt64(&s.dropped),
		Attached: s.attached,
	}, nil
}

// BrokerStats is the broadcaster's counter snapshot.
type BrokerStats struct {
	// Active is the current subscription count.
	Active int
	// Delivered and Dropped count events buffered for consumers vs lost
	// to buffer bounds, across all subscriptions ever.
	Delivered int64
	Dropped   int64
}

// Stats returns a snapshot of the broker's counters.
func (b *Broker) Stats() BrokerStats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return BrokerStats{
		Active:    len(b.subs),
		Delivered: b.delivered.Load(),
		Dropped:   b.dropped.Load(),
	}
}

// ActiveOn reports whether any subscription listens on a shard — the
// write lanes' cheap pre-check before fetching records for publication.
func (b *Broker) ActiveOn(shardIdx int) bool {
	return shardIdx >= 0 && shardIdx < len(b.perShard) && b.perShard[shardIdx].Load() > 0
}

// IDs returns every active subscription ID, sorted (tests, debugging).
func (b *Broker) IDs() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.subs))
	for id := range b.subs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Close cancels every subscription and refuses further registrations;
// streams observe their channels closing.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, s := range b.subs {
		b.removeLocked(s)
	}
}
