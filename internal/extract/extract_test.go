package extract

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/gazetteer"
	"repro/internal/geo"
	"repro/internal/kb"
	"repro/internal/ontology"
	"repro/internal/pxml"
	"repro/internal/sentiment"
)

func testService(t *testing.T) *Service {
	t.Helper()
	g := gazetteer.New()
	add := func(name string, lat, lon float64, country string, pop int64) {
		t.Helper()
		if _, err := g.Add(gazetteer.Entry{
			Name: name, Location: geo.Point{Lat: lat, Lon: lon},
			Feature: gazetteer.FeatureCity, Country: country, Population: pop,
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("Berlin", 52.52, 13.405, "DE", 3_700_000)
	add("Berlin", 44.47, -71.18, "US", 10_000)
	add("Paris", 48.85, 2.35, "FR", 2_100_000)
	add("Cairo", 30.04, 31.23, "EG", 9_500_000)
	add("Nairobi", -1.29, 36.82, "KE", 4_400_000)
	o := ontology.New()
	o.LoadContainment(g)
	s, err := NewService(kb.New(), g, o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var scenarioTime = time.Date(2011, 4, 1, 9, 0, 0, 0, time.UTC)

func TestClassifyTypePaperMessages(t *testing.T) {
	s := testService(t)
	informatives := []string{
		"berlin has some nice hotels i just loved the hetero friendly love that word Axel Hotel in Berlin.",
		"Good morning Berlin. The sun is out!!!! Very impressed by the customer service at #movenpick hotel in berlin. Well done guys!",
		"In Berlin hotel room, nice enough, weather grim however",
	}
	for _, m := range informatives {
		if got, _ := s.ClassifyType(m); got != TypeInformative {
			t.Errorf("message %q classified %s", m, got)
		}
	}
	req := "Can anyone recommend a good, but not ridiculously expensive hotel right in the middle of Berlin?"
	if got, _ := s.ClassifyType(req); got != TypeRequest {
		t.Errorf("request classified as informative")
	}
}

func TestExtractTemplate1(t *testing.T) {
	s := testService(t)
	ex, err := s.Extract(context.Background(), "berlin has some nice hotels i just loved the hetero friendly love that word Axel Hotel in Berlin.", "user1", scenarioTime)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Type != TypeInformative {
		t.Fatalf("type = %s", ex.Type)
	}
	if ex.Domain != "tourism" {
		t.Fatalf("domain = %q", ex.Domain)
	}
	if len(ex.Templates) == 0 {
		t.Fatal("no templates")
	}
	tpl := ex.Templates[0]
	if got := tpl.Fields["Hotel_Name"].Text; !strings.Contains(strings.ToLower(got), "axel hotel") {
		t.Errorf("Hotel_Name = %q", got)
	}
	if got := tpl.Fields["Location"].Text; !strings.EqualFold(got, "Berlin") {
		t.Errorf("Location = %q", got)
	}
	// Country: P(Germany) > P(USA), per the paper's template table.
	country := tpl.Fields["Country"].Dist
	if country == nil {
		t.Fatal("no Country distribution")
	}
	if country.P("Germany") <= country.P("United States") {
		t.Errorf("country dist = %v", country.Normalized())
	}
	// User_Attitude: P(Positive) > P(Negative).
	att := tpl.Fields["User_Attitude"].Dist
	if att == nil {
		t.Fatal("no attitude")
	}
	if att.P(sentiment.Positive) <= att.P(sentiment.Negative) {
		t.Errorf("attitude = %v", att.Normalized())
	}
	if tpl.Certainty <= 0 {
		t.Errorf("certainty = %v", tpl.Certainty)
	}
	if tpl.Location == nil {
		t.Error("no resolved location")
	} else if tpl.Location.DistanceMeters(geo.Point{Lat: 52.52, Lon: 13.405}) > 1000 {
		t.Errorf("resolved to %v, want Berlin DE", tpl.Location)
	}
}

func TestExtractTemplate3NestedHotel(t *testing.T) {
	s := testService(t)
	ex, err := s.Extract(context.Background(), "In Berlin hotel room, nice enough, weather grim however", "user3", scenarioTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Templates) == 0 {
		t.Fatal("no templates")
	}
	tpl := ex.Templates[0]
	if got := strings.ToLower(tpl.Fields["Hotel_Name"].Text); got != "berlin hotel" {
		t.Errorf("Hotel_Name = %q", got)
	}
	if got := tpl.Fields["Location"].Text; !strings.EqualFold(got, "berlin") {
		t.Errorf("Location = %q", got)
	}
	att := tpl.Fields["User_Attitude"].Dist
	if att == nil || att.P(sentiment.Positive) <= att.P(sentiment.Negative) {
		t.Errorf("Template 3 attitude should be positive: %v", att)
	}
}

func TestExtractRequestNoTemplates(t *testing.T) {
	s := testService(t)
	ex, err := s.Extract(context.Background(), "Can anyone recommend a good, but not ridiculously expensive hotel right in the middle of Berlin?", "asker", scenarioTime)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Type != TypeRequest {
		t.Fatalf("type = %s", ex.Type)
	}
	if len(ex.Templates) != 0 {
		t.Errorf("request produced templates: %+v", ex.Templates)
	}
	// Keywords include the essentials the QA module needs: hotel, berlin,
	// good, expensive.
	joined := strings.Join(ex.Keywords, " ")
	for _, kw := range []string{"hotel", "berlin", "good", "expensive"} {
		if !strings.Contains(joined, kw) {
			t.Errorf("keywords missing %q: %v", kw, ex.Keywords)
		}
	}
}

func TestExtractPrice(t *testing.T) {
	s := testService(t)
	ex, err := s.Extract(context.Background(), "Essex House Hotel and Suites from $154 USD: Surrounded by clubs and designer", "pricebot", scenarioTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Templates) == 0 {
		t.Fatal("no templates")
	}
	price, ok := ex.Templates[0].Fields["Price"]
	if !ok {
		t.Fatal("no price field")
	}
	if price.Num != 154 {
		t.Errorf("price = %v", price.Num)
	}
}

func TestExtractTraffic(t *testing.T) {
	s := testService(t)
	ex, err := s.Extract(context.Background(), "huge traffic jam in Nairobi after the accident, road blocked", "driver7", scenarioTime)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Domain != "traffic" {
		t.Fatalf("domain = %q", ex.Domain)
	}
	if len(ex.Templates) != 1 {
		t.Fatalf("templates = %d", len(ex.Templates))
	}
	tpl := ex.Templates[0]
	if !strings.EqualFold(tpl.Fields["Place"].Text, "Nairobi") {
		t.Errorf("Place = %q", tpl.Fields["Place"].Text)
	}
	cond := tpl.Fields["Condition"].Dist
	if cond == nil {
		t.Fatal("no condition")
	}
	if cond.P("traffic") <= 0 {
		t.Errorf("condition dist = %v", cond.Normalized())
	}
	if tpl.Location == nil {
		t.Error("traffic report location unresolved")
	}
}

func TestExtractFarming(t *testing.T) {
	s := testService(t)
	ex, err := s.Extract(context.Background(), "locust swarm near Cairo moving south, maize fields at risk", "farmer2", scenarioTime)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Domain != "farming" {
		t.Fatalf("domain = %q", ex.Domain)
	}
	if len(ex.Templates) != 1 {
		t.Fatalf("templates = %d", len(ex.Templates))
	}
	tpl := ex.Templates[0]
	topic := tpl.Fields["Topic"].Dist
	if topic == nil || topic.P("pest") <= 0 {
		t.Errorf("topic = %v", topic)
	}
	if _, ok := tpl.Fields["Observation"]; !ok {
		t.Error("no observation")
	}
}

func TestExtractErrors(t *testing.T) {
	s := testService(t)
	if _, err := s.Extract(context.Background(), "", "x", scenarioTime); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := s.Extract(context.Background(), "   ", "x", scenarioTime); err == nil {
		t.Error("blank message accepted")
	}
	if _, err := NewService(nil, nil, nil); err == nil {
		t.Error("nil deps accepted")
	}
}

func TestExtractNoDomain(t *testing.T) {
	s := testService(t)
	ex, err := s.Extract(context.Background(), "just thinking about life today", "muser", scenarioTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Templates) != 0 {
		t.Errorf("templates from domainless message: %+v", ex.Templates)
	}
}

func TestTemplateToDoc(t *testing.T) {
	s := testService(t)
	ex, err := s.Extract(context.Background(), "Good morning Berlin. Very impressed by the customer service at #movenpick hotel in berlin.", "user2", scenarioTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Templates) == 0 {
		t.Fatal("no templates")
	}
	doc, err := ex.Templates[0].ToDoc()
	if err != nil {
		t.Fatal(err)
	}
	if doc.Tag != "Hotel" {
		t.Errorf("root tag = %q", doc.Tag)
	}
	// Country is a mux distribution; Germany most probable.
	p := pxml.ValueProb(doc, "Hotel/Country", "Germany")
	if p <= pxml.ValueProb(doc, "Hotel/Country", "United States") {
		t.Errorf("P(Germany)=%v not dominant", p)
	}
	// Attitude round-trips through MuxToDist.
	attField, _ := doc.FirstChild("User_Attitude")
	if attField == nil {
		t.Fatal("no attitude element")
	}
	dist := MuxToDist(attField)
	if dist.P(sentiment.Positive) <= dist.P(sentiment.Negative) {
		t.Errorf("round-trip attitude = %v", dist.Normalized())
	}
	// Serialises cleanly.
	if _, err := pxml.Marshal(doc); err != nil {
		t.Errorf("marshal: %v", err)
	}
	// Geo coordinates present.
	if p := pxml.PathProb(doc, "Hotel/Geo/Lat"); p != 1 {
		t.Errorf("no geo: %v", p)
	}
}

func TestToDocDeterministicOrder(t *testing.T) {
	s := testService(t)
	ex, err := s.Extract(context.Background(), "loved the Axel Hotel in Berlin", "u", scenarioTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Templates) == 0 {
		t.Fatal("no templates")
	}
	d1, err := ex.Templates[0].ToDoc()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := pxml.Marshal(d1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ex.Templates[0].ToDoc()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := pxml.Marshal(d2)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("ToDoc not deterministic")
	}
}

func TestDistToMuxErrors(t *testing.T) {
	if _, err := DistToMux(nil); err == nil {
		t.Error("nil dist accepted")
	}
}

// TestExtractTemporalObservation: a temporal expression in an event message
// dates the template's observation (the "when" of W4) instead of its
// arrival time.
func TestExtractTemporalObservation(t *testing.T) {
	s := testService(t)
	now := time.Date(2011, 4, 1, 14, 30, 0, 0, time.UTC)

	ex, err := s.Extract(context.Background(), "road near Nairobi flooded 2 hours ago, take the detour", "driver", now)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Templates) == 0 {
		t.Fatal("no template extracted")
	}
	tpl := ex.Templates[0]
	want := now.Add(-2 * time.Hour)
	if d := tpl.Extracted.Sub(want); d < -15*time.Minute || d > 15*time.Minute {
		t.Errorf("Extracted = %v, want ≈ %v", tpl.Extracted, want)
	}

	// Without a temporal expression, the observation time is the arrival.
	ex2, err := s.Extract(context.Background(), "road near Nairobi flooded, take the detour", "driver", now)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex2.Templates) == 0 {
		t.Fatal("no template extracted")
	}
	if !ex2.Templates[0].Extracted.Equal(now) {
		t.Errorf("Extracted = %v, want arrival time %v", ex2.Templates[0].Extracted, now)
	}
}
