package extract

import "repro/internal/obs"

// IE-internal stage timings: where the Ask path and the pipeline's
// extract stage spend their time — type classification, informal NER,
// and geographic disambiguation (the paper's hard problem).
var (
	mIEStageSeconds = obs.Default().Histogram("neogeo_extract_stage_seconds",
		"Information-extraction sub-stage wall time per call.", nil, "stage")
	ieClassify     = mIEStageSeconds.With("classify")
	ieNER          = mIEStageSeconds.With("ner")
	ieDisambiguate = mIEStageSeconds.With("disambiguate")
)
