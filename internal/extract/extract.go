// Package extract is the paper's Information Extraction (IE) service: "the
// key service of the system". It classifies each message as informative or
// request, and for informative messages fills domain templates — the W4 of
// who/where/when/what — with certainty factors attached to every extracted
// value, delegating entity recognition to ner, geographic resolution to
// disambig, and attitude scoring to sentiment.
package extract

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/disambig"
	"repro/internal/gazetteer"
	"repro/internal/geo"
	"repro/internal/kb"
	"repro/internal/ner"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/sentiment"
	"repro/internal/text"
	"repro/internal/uncertain"

	"repro/internal/classify"
)

// Span names of the IE stages (bounded constants — the metriclabels
// analyzer enforces this at every StartSpan site).
const (
	spanClassify     = "classify"
	spanNER          = "ner"
	spanDisambiguate = "disambiguate"
)

// Service is the IE module.
type Service struct {
	kb       *kb.KB
	gaz      *gazetteer.Gazetteer
	ont      *ontology.Ontology
	ner      *ner.Extractor
	resolver *disambig.Resolver
	typer    *classify.NaiveBayes
}

// NewService wires the IE service and trains its message-type classifier
// from the knowledge base's seed corpus.
func NewService(k *kb.KB, g *gazetteer.Gazetteer, o *ontology.Ontology) (*Service, error) {
	if k == nil || g == nil || o == nil {
		return nil, fmt.Errorf("extract: nil dependency")
	}
	typer, err := k.TrainTypeClassifier()
	if err != nil {
		return nil, fmt.Errorf("extract: training type classifier: %w", err)
	}
	return &Service{
		kb:       k,
		gaz:      g,
		ont:      o,
		ner:      ner.NewExtractor(g, o),
		resolver: disambig.NewResolver(g, o),
		typer:    typer,
	}, nil
}

// Resolver exposes the geographic disambiguation resolver so the system
// can attach shared state (the feedback-learned Priors) at construction.
func (s *Service) Resolver() *disambig.Resolver { return s.resolver }

// MessageType is the IE service's first decision per message.
type MessageType string

// Message types, mirroring the paper's workflow rules.
const (
	TypeInformative MessageType = "informative"
	TypeRequest     MessageType = "request"
)

// ClassifyType labels a message informative or request with a posterior
// probability.
func (s *Service) ClassifyType(msg string) (MessageType, float64) {
	label, p := s.typer.PredictLabel(kb.TypeFeatures(msg))
	if label == kb.LabelRequest {
		return TypeRequest, p
	}
	return TypeInformative, p
}

// FieldValue is one filled template slot.
type FieldValue struct {
	Kind kb.FieldKind
	Text string
	Num  float64
	// Dist carries distribution-valued fields (Country, User_Attitude,
	// Condition, Topic).
	Dist *uncertain.Dist
	// CF is the slot-level extraction certainty.
	CF uncertain.CF
}

// Template is one filled extraction template (the paper's Template 1-3
// table).
type Template struct {
	Domain    string
	RecordTag string
	Fields    map[string]FieldValue
	// Certainty is the template-level confidence the DI service starts
	// from.
	Certainty uncertain.CF
	// Location is the resolved position when a Location field resolved.
	Location *geo.Point
	// LocationName is the surface name of the resolved location.
	LocationName string
	// Source is the contributing user, for trust accounting.
	Source string
	// Extracted is the extraction timestamp.
	Extracted time.Time
}

// Extraction is the full output for one message.
type Extraction struct {
	Message   string
	Type      MessageType
	TypeP     float64
	Domain    string
	Entities  []ner.Entity
	Relations []ner.Relation
	Templates []Template
	// Keywords supports the request workflow ("the IE extracts the
	// keywords of the request").
	Keywords []string
}

// Extract runs the full IE pipeline on one message. When ctx carries a
// recording span, each stage (classify, NER, disambiguate) shows up as
// a child on the request's timeline.
func (s *Service) Extract(ctx context.Context, msg, source string, now time.Time) (*Extraction, error) {
	if strings.TrimSpace(msg) == "" {
		return nil, fmt.Errorf("extract: empty message")
	}
	_, clsSpan := obs.StartSpan(ctx, spanClassify)
	clsStart := time.Now()
	mtype, p := s.ClassifyType(msg)
	ieClassify.Since(clsStart)
	clsSpan.SetAttr("type", string(mtype))
	clsSpan.End()
	out := &Extraction{Message: msg, Type: mtype, TypeP: p}
	tokens := text.Tokenize(msg)
	_, nerSpan := obs.StartSpan(ctx, spanNER)
	nerStart := time.Now()
	out.Entities = s.ner.ExtractInformalTokens(tokens)
	out.Relations = ner.ParseRelations(tokens)
	ieNER.Since(nerStart)
	nerSpan.SetInt("entities", len(out.Entities))
	nerSpan.End()
	out.Domain = s.detectDomain(msg, out.Entities)
	out.Keywords = s.keywords(msg, out.Entities)
	if mtype == TypeRequest {
		return out, nil
	}
	domain, ok := s.kb.Domain(out.Domain)
	if !ok {
		return out, nil // no template for undetected domains
	}
	tpls, err := s.fillTemplates(ctx, domain, msg, source, now, out)
	if err != nil {
		return nil, err
	}
	out.Templates = tpls
	return out, nil
}

// detectDomain picks the domain whose anchor concepts the message evokes,
// scoring by cue count. Facility entities strongly indicate tourism.
func (s *Service) detectDomain(msg string, entities []ner.Entity) string {
	scores := map[string]int{}
	words := text.Words(text.Tokenize(text.Normalize(msg)))
	for _, d := range s.kb.Domains() {
		for _, w := range words {
			c, ok := s.ont.ConceptOf(w)
			if !ok {
				continue
			}
			for _, anchor := range d.AnchorConcepts {
				if s.ont.IsA(c, anchor) {
					scores[d.Name]++
				}
			}
		}
	}
	for _, e := range entities {
		if e.Type == ner.TypeFacility && (e.Concept == "hotel" || e.Concept == "hostel" || e.Concept == "restaurant" || e.Concept == "bar") {
			scores["tourism"] += 2
		}
	}
	best, bestScore := "", 0
	for _, d := range s.kb.Domains() {
		if sc := scores[d.Name]; sc > bestScore {
			best, bestScore = d.Name, sc
		}
	}
	return best
}

// keywords extracts the request keywords: content words plus entity names.
func (s *Service) keywords(msg string, entities []ner.Entity) []string {
	seen := map[string]bool{}
	var out []string
	add := func(w string) {
		if w != "" && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	for _, e := range entities {
		add(e.Norm)
	}
	for _, w := range text.ContentWords(text.Words(text.Tokenize(text.Normalize(msg)))) {
		add(w)
	}
	return out
}

// fillTemplates builds one template per anchor entity (facility for
// tourism) or one per message for event-style domains.
func (s *Service) fillTemplates(ctx context.Context, domain kb.Domain, msg, source string, now time.Time, ex *Extraction) ([]Template, error) {
	switch domain.Name {
	case "tourism":
		return s.fillTourism(ctx, domain, msg, source, now, ex)
	default:
		tpl, ok, err := s.fillEvent(ctx, domain, msg, source, now, ex)
		if err != nil || !ok {
			return nil, err
		}
		return []Template{tpl}, nil
	}
}

func (s *Service) fillTourism(ctx context.Context, domain kb.Domain, msg, source string, now time.Time, ex *Extraction) ([]Template, error) {
	att := sentiment.Analyze(msg)
	var out []Template
	for _, e := range ex.Entities {
		if e.Type != ner.TypeFacility {
			continue
		}
		tpl := Template{
			Domain:    domain.Name,
			RecordTag: domain.RecordTag,
			Fields:    make(map[string]FieldValue),
			Source:    source,
			Extracted: now,
		}
		nameCF := uncertain.Attenuate(e.Confidence, float64(uncertain.ToProbability(s.kb.RuleCF("facility-cue"))))
		tpl.Fields["Hotel_Name"] = FieldValue{Kind: kb.FieldText, Text: e.Text, CF: nameCF}

		loc := s.locationFor(e, ex)
		cf := nameCF
		if loc != nil {
			res, err := s.resolveLocation(ctx, loc, ex)
			if err != nil {
				return nil, err
			}
			tpl.Fields["Location"] = FieldValue{Kind: kb.FieldLocation, Text: loc.Text, CF: loc.Confidence}
			tpl.LocationName = loc.Text
			if best, ok := res.Best(); ok {
				p := best.Entry.Location
				tpl.Location = &p
				tpl.Fields["Country"] = FieldValue{Kind: kb.FieldDist, Dist: res.Country, CF: uncertain.FromProbability(best.P)}
				// Canonical city name ("berlin" written lowercase still
				// yields City=Berlin) — the field the paper's QA query
				// filters on.
				tpl.Fields["City"] = FieldValue{Kind: kb.FieldText, Text: best.Entry.Name, CF: loc.Confidence}
			}
			cf = uncertain.Combine(cf, uncertain.Attenuate(loc.Confidence, 0.8))
		}
		if att.Hits > 0 {
			tpl.Fields["User_Attitude"] = FieldValue{
				Kind: kb.FieldAttitude,
				Dist: att.Attitude,
				CF:   uncertain.FromProbability(topP(att.Attitude)),
			}
		}
		if price, ok := extractPrice(msg); ok {
			tpl.Fields["Price"] = FieldValue{Kind: kb.FieldNumber, Num: price, CF: 0.6}
		}
		tpl.Certainty = uncertain.Attenuate(cf, s.kb.Trust().Reliability(source))
		out = append(out, tpl)
	}
	return out, nil
}

// fillEvent builds the single-template extraction for traffic and farming
// messages.
func (s *Service) fillEvent(ctx context.Context, domain kb.Domain, msg, source string, now time.Time, ex *Extraction) (Template, bool, error) {
	tpl := Template{
		Domain:    domain.Name,
		RecordTag: domain.RecordTag,
		Fields:    make(map[string]FieldValue),
		Source:    source,
		Extracted: now,
	}
	// The "when" of W4: a temporal expression in the message ("flooded
	// this morning", "accident 2 hours ago") dates the observation itself,
	// not its arrival — newest-wins integration compares observation
	// times, so a late-arriving stale report cannot clobber fresh state.
	if tr, ok := text.ParseTemporal(msg, now); ok && !tr.Instant().After(now) {
		tpl.Extracted = tr.Instant()
	}
	// Place/Region: the first location entity, else a relation object.
	var locEnt *ner.Entity
	for i := range ex.Entities {
		if ex.Entities[i].Type == ner.TypeLocation {
			locEnt = &ex.Entities[i]
			break
		}
	}
	keyName := domain.KeyField
	placeText := ""
	var placeCF uncertain.CF = 0.3
	switch {
	case locEnt != nil:
		placeText = locEnt.Text
		placeCF = locEnt.Confidence
	case len(ex.Relations) > 0 && ex.Relations[0].Object != "":
		placeText = ex.Relations[0].Object
	default:
		// Fall back to a facility mention ("market", "station" …).
		for _, e := range ex.Entities {
			if e.Type == ner.TypeFacility {
				placeText = e.Text
				placeCF = e.Confidence
				break
			}
		}
	}
	if placeText == "" {
		return Template{}, false, nil // required key missing: no template
	}
	tpl.Fields[keyName] = FieldValue{Kind: kb.FieldText, Text: placeText, CF: placeCF}

	if locEnt != nil {
		res, err := s.resolveLocation(ctx, locEnt, ex)
		if err != nil {
			return Template{}, false, err
		}
		if best, ok := res.Best(); ok {
			p := best.Entry.Location
			tpl.Location = &p
			tpl.LocationName = locEnt.Text
		}
	}

	// Topic/Condition distribution from ontology concepts in the message.
	dist := uncertain.NewDist()
	words := text.Words(text.Tokenize(text.Normalize(msg)))
	for _, w := range words {
		if c, ok := s.ont.ConceptOf(w); ok {
			for _, anchor := range domain.AnchorConcepts {
				if s.ont.IsA(c, anchor) {
					_ = dist.Add(c, 1)
				}
			}
		}
	}
	if dist.Len() == 0 {
		return Template{}, false, nil
	}
	distField := "Topic"
	if domain.Name == "traffic" {
		distField = "Condition"
	}
	tpl.Fields[distField] = FieldValue{
		Kind: kb.FieldDist,
		Dist: dist,
		CF:   uncertain.FromProbability(topP(dist)),
	}
	if domain.Name == "farming" {
		tpl.Fields["Observation"] = FieldValue{Kind: kb.FieldText, Text: text.Normalize(msg), CF: 0.5}
	}
	att := sentiment.Analyze(msg)
	if att.Hits > 0 {
		tpl.Fields["User_Attitude"] = FieldValue{Kind: kb.FieldAttitude, Dist: att.Attitude, CF: uncertain.FromProbability(topP(att.Attitude))}
	}
	tpl.Certainty = uncertain.Attenuate(uncertain.Combine(placeCF, 0.3), s.kb.Trust().Reliability(source))
	return tpl, true, nil
}

// locationFor picks the location entity associated with a facility: a
// nested location, else the nearest location mention in token distance.
func (s *Service) locationFor(fac ner.Entity, ex *Extraction) *ner.Entity {
	var best *ner.Entity
	bestDist := 1 << 30
	for i := range ex.Entities {
		e := &ex.Entities[i]
		if e.Type != ner.TypeLocation {
			continue
		}
		// Nested inside the facility span: immediate winner (the paper's
		// "Berlin hotel" case).
		if e.Start >= fac.Start && e.End <= fac.End {
			return e
		}
		d := tokenDistance(fac, *e)
		if d < bestDist {
			best, bestDist = e, d
		}
	}
	return best
}

func tokenDistance(a, b ner.Entity) int {
	switch {
	case b.Start >= a.End:
		return b.Start - a.End
	case a.Start >= b.End:
		return a.Start - b.End
	default:
		return 0
	}
}

// resolveLocation disambiguates a location entity using the other location
// mentions as coherence context.
func (s *Service) resolveLocation(ctx context.Context, loc *ner.Entity, ex *Extraction) (disambig.Resolution, error) {
	_, sp := obs.StartSpan(ctx, spanDisambiguate)
	defer sp.End()
	defer ieDisambiguate.Since(time.Now())
	var co [][]*gazetteer.Entry
	for i := range ex.Entities {
		e := &ex.Entities[i]
		if e.Type != ner.TypeLocation || e == loc || e.Norm == loc.Norm {
			continue
		}
		var cands []*gazetteer.Entry
		for _, id := range e.GazetteerIDs {
			if g, ok := s.gaz.Get(id); ok {
				cands = append(cands, g)
			}
		}
		if len(cands) > 0 {
			co = append(co, cands)
		}
	}
	return s.resolver.ResolveEntries(loc.Norm, loc.GazetteerIDs, disambig.Context{
		CoToponyms:   co,
		PreferCities: true,
	})
}

func topP(d *uncertain.Dist) float64 {
	if top, ok := d.Top(); ok {
		return top.P
	}
	return 0
}

// extractPrice finds a currency amount ("from $154 USD") in the message.
func extractPrice(msg string) (float64, bool) {
	for _, tok := range text.Tokenize(msg) {
		if tok.Kind != text.KindNumber {
			continue
		}
		t := tok.Text
		cur := strings.HasPrefix(t, "$") || strings.HasPrefix(t, "€") || strings.HasPrefix(t, "£")
		if !cur && !strings.HasSuffix(strings.ToLower(t), "usd") && !strings.HasSuffix(strings.ToLower(t), "eur") {
			continue
		}
		num := strings.TrimLeft(t, "$€£")
		num = strings.TrimSuffix(strings.TrimSuffix(strings.ToLower(num), "usd"), "eur")
		var v float64
		if _, err := fmt.Sscanf(strings.ReplaceAll(num, ",", ""), "%f", &v); err == nil && v > 0 {
			return v, true
		}
	}
	return 0, false
}
