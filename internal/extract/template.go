package extract

import (
	"fmt"
	"strconv"

	"repro/internal/kb"
	"repro/internal/pxml"
	"repro/internal/uncertain"
)

// ToDoc renders a filled template as a probabilistic XML record ready for
// the XMLDB: plain fields become certain elements, distribution fields
// become mux nodes — exactly the representation of the paper's worked
// templates ("Country: P(Germany) > P(USA) > …").
func (t Template) ToDoc() (*pxml.Node, error) {
	if t.RecordTag == "" {
		return nil, fmt.Errorf("extract: template has no record tag")
	}
	root := pxml.Elem(t.RecordTag)
	for _, name := range t.fieldOrder() {
		fv := t.Fields[name]
		switch fv.Kind {
		case kb.FieldText, kb.FieldLocation:
			root.Add(pxml.ElemText(name, fv.Text))
		case kb.FieldNumber:
			root.Add(pxml.ElemText(name, strconv.FormatFloat(fv.Num, 'g', -1, 64)))
		case kb.FieldDist, kb.FieldAttitude:
			mux, err := DistToMux(fv.Dist)
			if err != nil {
				return nil, fmt.Errorf("extract: field %s: %w", name, err)
			}
			root.Add(pxml.Elem(name, mux))
		default:
			return nil, fmt.Errorf("extract: field %s has unknown kind %d", name, fv.Kind)
		}
	}
	if t.Location != nil {
		root.Add(pxml.Elem("Geo",
			pxml.ElemText("Lat", strconv.FormatFloat(t.Location.Lat, 'f', 5, 64)),
			pxml.ElemText("Lon", strconv.FormatFloat(t.Location.Lon, 'f', 5, 64)),
		))
	}
	if err := root.Validate(); err != nil {
		return nil, fmt.Errorf("extract: built invalid record: %w", err)
	}
	return root, nil
}

// fieldOrder returns field names in the domain-schema order when possible
// (Fields is a map; deterministic output matters for serialisation and
// tests). Unknown fields sort last alphabetically.
func (t Template) fieldOrder() []string {
	known := []string{"Hotel_Name", "Place", "Region", "Location", "City",
		"Country", "Condition", "Topic", "Observation", "User_Attitude", "Price"}
	var out []string
	seen := map[string]bool{}
	for _, n := range known {
		if _, ok := t.Fields[n]; ok {
			out = append(out, n)
			seen[n] = true
		}
	}
	var rest []string
	for n := range t.Fields {
		if !seen[n] {
			rest = append(rest, n)
		}
	}
	for i := 0; i < len(rest); i++ {
		for j := i + 1; j < len(rest); j++ {
			if rest[j] < rest[i] {
				rest[i], rest[j] = rest[j], rest[i]
			}
		}
	}
	return append(out, rest...)
}

// DistToMux converts a normalised distribution into a mux node over text
// alternatives.
func DistToMux(d *uncertain.Dist) (*pxml.Node, error) {
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("empty distribution")
	}
	mux := pxml.Mux()
	for _, alt := range d.Normalized() {
		if alt.P <= 0 {
			continue
		}
		mux.Add(pxml.Text(alt.Name).WithProb(alt.P))
	}
	if len(mux.Children) == 0 {
		return nil, fmt.Errorf("distribution has no positive-probability alternatives")
	}
	return mux, nil
}

// MuxToDist is the inverse of DistToMux, reading a field's distribution
// back out of a stored record.
func MuxToDist(field *pxml.Node) *uncertain.Dist {
	d := uncertain.NewDist()
	for _, c := range field.Children {
		if c.Kind == pxml.KindMux || c.Kind == pxml.KindInd {
			for _, gc := range c.Children {
				if gc.Kind == pxml.KindText {
					_ = d.Add(gc.Text, gc.Prob)
				}
			}
		}
		if c.Kind == pxml.KindText {
			_ = d.Add(c.Text, 1)
		}
	}
	return d
}
