// Package core assembles the full neogeography system of the paper's
// Figure 3: message queue, modules coordinator with workflow rules,
// information-extraction, data-integration and question-answering
// services, knowledge base, geo-ontology (Open Linked Data stand-in),
// gazetteer and the probabilistic spatial XML database — optionally
// partitioned into spatially routed shards.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/coordinator"
	"repro/internal/disambig"
	"repro/internal/extract"
	"repro/internal/feedback"
	"repro/internal/gazetteer"
	"repro/internal/integrate"
	"repro/internal/kb"
	"repro/internal/mq"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/persist"
	"repro/internal/qa"
	"repro/internal/readpath"
	"repro/internal/shard"
	"repro/internal/uncertain"
	"repro/internal/xmldb"
)

// ErrNoDataDir reports a Checkpoint on a system built without a data
// directory — there is nowhere durable to write the image.
var ErrNoDataDir = errors.New("core: no data directory configured")

// Span names on the core surface (bounded constants; the metriclabels
// analyzer enforces this at every StartSpan site).
const (
	spanAsk         = "ask"
	spanCacheLookup = "cache_lookup"
)

// The sharded integrator is the pipeline's multi-lane integration sink.
var _ coordinator.Integrator = (*shard.Integrator)(nil)

// Config parameterises system construction.
type Config struct {
	// Gazetteer supplies the toponym database. Nil synthesises one with
	// GazetteerNames/GazetteerSeed.
	Gazetteer *gazetteer.Gazetteer
	// GazetteerNames is the synthetic gazetteer size when Gazetteer is
	// nil (default 2000 distinct names; the experiment harness uses
	// 20000).
	GazetteerNames int
	// GazetteerSeed seeds synthesis (default 2011).
	GazetteerSeed int64
	// QueueWAL, when non-empty, persists the message queue to this file.
	QueueWAL string
	// DataDir, when non-empty, makes the store durable: checkpoints of
	// the (possibly sharded) database land here as an atomic, rotated
	// file set, and construction restores the newest valid one before
	// the queue WAL replays — messages acknowledged after that image
	// come back as pending and re-integrate idempotently.
	DataDir string
	// CheckpointInterval is the cadence the serving layer's background
	// loop checkpoints at (0: no periodic checkpoints; explicit
	// Checkpoint calls still work). The system itself runs no loop.
	CheckpointInterval time.Duration
	// CheckpointRetain keeps this many checkpoint files after each
	// write (default 3).
	CheckpointRetain int
	// Workers sets the concurrency of the coordinator's stream-processing
	// pipeline: Process and ProcessConcurrent run classification and
	// extraction on this many goroutines while per-shard integration
	// lanes serialize database writes. 0 defaults to GOMAXPROCS; 1 keeps
	// the pipeline but with a single extraction worker.
	Workers int
	// Shards partitions the probabilistic spatial XML database into this
	// many independently locked shards, routed spatially (gazetteer-grid
	// cells of the record's resolved location, with an entity-key hash
	// fallback), with one pipeline integration lane per shard. 0 or 1
	// keeps today's single-store behavior.
	Shards int
	// ShardRouter overrides record placement (default: shard.NewGridRouter
	// over Shards shards). Ignored when Shards <= 1.
	ShardRouter shard.Router
	// IntegrateBatch caps how many messages a pipeline integration lane
	// folds into one amortized database batch (default 16).
	IntegrateBatch int
	// FeedbackBatch is the per-shard verdict count that triggers an
	// automatic feedback apply (default 16); the serving layer's loop
	// also flushes whatever is buffered every drain interval.
	FeedbackBatch int
	// AnswerCache bounds the hot read path's answer cache (entries of
	// Ask results keyed by normalized question + the version vector of
	// the shards the query plan touched). 0 disables caching: every Ask
	// re-runs classification, extraction and the fan-out store query.
	AnswerCache int
	// TraceRecorder enables span tracing: completed request/pipeline
	// traces land in a flight recorder ring of this many traces,
	// installed process-wide (the newest system owns it, like the
	// GaugeFuncs). 0 — the default — leaves tracing off, and the span
	// hot path costs one atomic load.
	TraceRecorder int
	// TraceSlow is the recorder's always-keep latency threshold
	// (default 1s): any trace at least this slow is retained regardless
	// of sampling, as is any errored or explain-forced trace.
	TraceSlow time.Duration
	// TraceSampleN keeps one in N traces that no always-keep rule
	// matched; 0 disables sampling so only slow/errored/forced traces
	// are kept.
	TraceSampleN int
	// Clock overrides the time source (tests).
	Clock func() time.Time
}

// System is the assembled pipeline.
type System struct {
	Gaz *gazetteer.Gazetteer
	Ont *ontology.Ontology
	KB  *kb.KB
	// Store is the (possibly sharded) probabilistic spatial XML store;
	// with Shards <= 1 it wraps the single database. All reads that must
	// see the whole system go through it.
	Store *shard.Store
	// DB is the single database in the unsharded configuration, nil when
	// Shards > 1 (use Store, or Store.Shard(i) for one partition).
	DB    *xmldb.DB
	Queue *mq.Queue
	IE    *extract.Service
	// DI is the integration service of shard 0 — the whole store's
	// service in the unsharded configuration. DIs holds one service per
	// shard.
	DI  *integrate.Service
	DIs []*integrate.Service
	QA  *qa.Service
	MC  *coordinator.Coordinator
	// Integrator is the coordinator's integration sink (one lane per
	// shard).
	Integrator *shard.Integrator
	// Persist is the durability subsystem's checkpoint manager, nil
	// without a data directory.
	Persist *persist.Manager
	// Priors is the disambiguation reinforcement memory shared by the
	// extraction resolver and the feedback engine.
	Priors *disambig.Priors
	// Feedback is the user-feedback engine: verdicts on answer results
	// route to their record's home shard and apply in batches.
	Feedback *feedback.Engine
	// Cache is the hot read path's answer cache, nil when disabled
	// (Config.AnswerCache == 0).
	Cache *readpath.Cache
	// Broker is the standing-query broadcaster — the system's single
	// fan-out point between the write lanes and subscribers. Always
	// built; idle until something subscribes.
	Broker *readpath.Broker
	// Recorder is the flight recorder this system installed, nil when
	// tracing is off (Config.TraceRecorder == 0).
	Recorder *obs.Recorder
	clock    func() time.Time
	// workers is the configured pipeline width (0 = GOMAXPROCS).
	workers int
	// ckptInterval is the configured checkpoint cadence the serving
	// layer reads.
	ckptInterval time.Duration
	// decayMu guards the cumulative decay counters.
	decayMu    sync.Mutex
	decayStats DecayStats
}

// DecayStats accumulates the certainty-ageing totals across explicit
// and loop-driven decay runs.
type DecayStats struct {
	// Runs counts DecayAll invocations.
	Runs int64
	// Decayed and Deleted total the records aged and dropped.
	Decayed int64
	Deleted int64
}

// New builds a system.
func New(cfg Config) (*System, error) {
	s := &System{clock: cfg.Clock}
	if s.clock == nil {
		s.clock = time.Now
	}
	var err error
	s.Gaz = cfg.Gazetteer
	if s.Gaz == nil {
		names := cfg.GazetteerNames
		if names == 0 {
			names = 2000
		}
		seed := cfg.GazetteerSeed
		if seed == 0 {
			seed = 2011
		}
		s.Gaz, err = gazetteer.Synthesize(gazetteer.Config{Names: names, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("core: synthesising gazetteer: %w", err)
		}
	}
	s.Ont = ontology.New()
	s.Ont.LoadContainment(s.Gaz)
	s.KB = kb.New()
	s.Priors = disambig.NewPriors()

	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	router := cfg.ShardRouter
	if shards <= 1 {
		router = nil
	}
	s.Store, err = shard.New(shards, router)
	if err != nil {
		return nil, fmt.Errorf("core: building sharded store: %w", err)
	}
	if s.Store.NumShards() == 1 {
		s.DB = s.Store.Shard(0)
	}
	if cfg.Clock != nil {
		s.Store.SetClock(cfg.Clock)
	}
	// The hot read path: the broker always exists (idle until something
	// subscribes); the answer cache only when sized.
	s.Broker = readpath.NewBroker(s.Store)
	if cfg.AnswerCache > 0 {
		s.Cache = readpath.NewCache(cfg.AnswerCache)
	}

	// Durability: restore the newest valid checkpoint into the store
	// BEFORE the queue WAL replays, so messages acknowledged after the
	// image (its recorded LSN) re-enter the queue and re-integrate into
	// the restored state instead of an empty one. The composite image
	// carries the learned auxiliary state too — source trust, the
	// disambiguation priors, and the feedback engine's applied watermark
	// — so none of it silently resets to defaults on restart.
	var recoveredLSN int64
	var recoveredFB recoveredFeedback
	if cfg.DataDir != "" {
		popts := []persist.Option{persist.WithClock(s.clock)}
		if cfg.CheckpointRetain > 0 {
			popts = append(popts, persist.WithRetain(cfg.CheckpointRetain))
		}
		s.Persist, err = persist.NewManager(cfg.DataDir, popts...)
		if err != nil {
			return nil, fmt.Errorf("core: opening data directory: %w", err)
		}
		info, err := s.Persist.Recover(image{
			store:     s.Store,
			trust:     s.KB.Trust(),
			priors:    s.Priors,
			recovered: &recoveredFB,
		})
		if err != nil {
			return nil, fmt.Errorf("core: recovering checkpoint: %w", err)
		}
		if info != nil {
			recoveredLSN = info.LSN
		}
	}
	s.ckptInterval = cfg.CheckpointInterval

	// The feedback ledger replays independently of the queue WAL:
	// verdicts accepted after the restored image's watermark are parked
	// and re-applied once their records exist again (deferring past the
	// WAL replay that re-integrates them).
	var ledger feedback.Ledger
	var replay []feedback.Entry
	if cfg.DataDir != "" {
		ledger, replay, err = feedback.OpenFileLedger(filepath.Join(cfg.DataDir, "feedback.log"))
		if err != nil {
			return nil, fmt.Errorf("core: opening feedback ledger: %w", err)
		}
	} else {
		ledger = feedback.NewMemLedger()
	}
	// Any construction failure past this point must release the ledger's
	// file handle (Close on a built System does it via the engine).
	built := false
	defer func() {
		if !built {
			_ = ledger.Close()
		}
	}()
	s.Feedback, err = feedback.NewEngine(feedback.Config{
		Store:       s.Store,
		KB:          s.KB,
		Gaz:         s.Gaz,
		Priors:      s.Priors,
		Ledger:      ledger,
		Batch:       cfg.FeedbackBatch,
		Clock:       s.clock,
		AppliedSeq:  recoveredFB.seq,
		AppliedDone: recoveredFB.done,
		OnApplied: func(lane int, applied []feedback.Applied) {
			if !s.Broker.ActiveOn(lane) {
				return
			}
			now := s.clock()
			for _, a := range applied {
				if rec, ok := s.Store.Shard(lane).Get(a.Collection, a.RecordID); ok {
					s.Broker.Publish(lane, a.Action, a.Collection, rec, now)
				}
			}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("core: building feedback engine: %w", err)
	}
	s.Feedback.Park(replay)

	if cfg.QueueWAL != "" {
		qopts := []mq.Option{mq.WithClock(s.clock)}
		if s.Persist != nil {
			qopts = append(qopts, mq.WithReplayAckedAfter(recoveredLSN))
		}
		s.Queue, err = mq.Open(cfg.QueueWAL, qopts...)
		if err != nil {
			return nil, fmt.Errorf("core: opening queue: %w", err)
		}
	} else {
		s.Queue = mq.New(mq.WithClock(s.clock))
	}
	if s.IE, err = extract.NewService(s.KB, s.Gaz, s.Ont); err != nil {
		return nil, err
	}
	// Close the loop: the extraction resolver consults the reinforcement
	// priors the feedback engine feeds, so confirmed interpretations
	// change how future ambiguous mentions resolve.
	s.IE.Resolver().Priors = s.Priors
	if s.Integrator, err = shard.NewIntegrator(s.KB, s.Store); err != nil {
		return nil, err
	}
	// Standing queries see integration commits as they land: the hook
	// runs on the lane goroutine after the batch's writes (and the
	// shard's version bump), publishes the records' post-write state,
	// and is skipped entirely while the lane has no subscribers.
	s.Integrator.OnCommit(func(lane int, commits []shard.Commit) {
		if !s.Broker.ActiveOn(lane) {
			return
		}
		now := s.clock()
		for _, c := range commits {
			if rec, ok := s.Store.Shard(lane).Get(c.Collection, c.RecordID); ok {
				s.Broker.Publish(lane, string(c.Action), c.Collection, rec, now)
			}
		}
	})
	s.DIs = s.Integrator.Services()
	s.DI = s.DIs[0]
	if s.QA, err = qa.NewService(s.Store, s.KB, s.Gaz, s.Ont); err != nil {
		return nil, err
	}
	if s.MC, err = coordinator.New(s.Queue, s.IE, s.Integrator, s.QA, nil); err != nil {
		return nil, err
	}
	s.MC.SetWorkers(cfg.Workers)
	s.MC.SetBatchSize(cfg.IntegrateBatch)
	s.workers = cfg.Workers
	if cfg.Clock != nil {
		s.MC.SetClock(cfg.Clock)
	}
	// Queue depth is sampled from the live queue at scrape time;
	// GaugeFunc replaces on re-register, so the newest system owns the
	// process-wide series (a daemon builds exactly one).
	q := s.Queue
	obs.Default().GaugeFunc("neogeo_mq_pending",
		"Undelivered messages waiting in the queue.",
		func() float64 { return float64(q.Len()) })
	obs.Default().GaugeFunc("neogeo_mq_in_flight",
		"Leased, unacknowledged messages.",
		func() float64 { return float64(q.InFlight()) })
	// Span tracing is opt-in; like the GaugeFuncs, the newest system
	// that asks for a recorder owns the process-wide one. With
	// TraceRecorder == 0 whatever is installed (normally nothing) is
	// left alone.
	if cfg.TraceRecorder > 0 {
		s.Recorder = obs.NewRecorder(obs.RecorderConfig{
			Capacity: cfg.TraceRecorder,
			Slow:     cfg.TraceSlow,
			SampleN:  cfg.TraceSampleN,
		})
		obs.SetDefaultRecorder(s.Recorder)
	}
	built = true
	return s, nil
}

// Close releases resources (the queue WAL, the feedback ledger and the
// standing-query broadcaster).
func (s *System) Close() error {
	s.Broker.Close()
	err := s.Queue.Close()
	if ferr := s.Feedback.Close(); err == nil {
		err = ferr
	}
	return err
}

// Submit enqueues a raw user message for asynchronous processing. A
// trace ID carried by ctx (obs.WithTrace) is persisted in the message
// envelope.
func (s *System) Submit(ctx context.Context, body, source string) (int64, error) {
	return s.MC.Submit(ctx, body, source)
}

// Process drains the queue (up to limit messages; 0 = all) and returns the
// outcomes. When Workers was explicitly configured above 1 it runs the
// concurrent pipeline (outcomes in completion order, stopping early if
// ctx is cancelled); otherwise it keeps the deterministic sequential
// drain in queue order, so existing callers' ordering does not silently
// become machine-dependent. Use ProcessConcurrent to opt in regardless
// of configuration.
func (s *System) Process(ctx context.Context, limit int) ([]*coordinator.Outcome, []error) {
	if s.workers > 1 {
		return s.MC.DrainConcurrent(ctx, limit)
	}
	return s.MC.Drain(limit)
}

// ProcessConcurrent drains the queue through the coordinator's concurrent
// worker-pool pipeline (width Workers, default GOMAXPROCS) into one
// integration lane per shard, stopping early when ctx is cancelled.
// Outcomes arrive in completion order.
func (s *System) ProcessConcurrent(ctx context.Context, limit int) ([]*coordinator.Outcome, []error) {
	return s.MC.DrainConcurrent(ctx, limit)
}

// ProcessEach drains the queue through the concurrent pipeline, streaming
// each outcome or error to emit as it completes instead of buffering the
// whole drain — the facade's iterator and the serving layer's drain loop
// sit on this. Calls to emit are serialised.
func (s *System) ProcessEach(ctx context.Context, limit int, emit func(*coordinator.Outcome, error)) {
	s.MC.DrainEach(ctx, limit, emit)
}

// Ingest submits and fully processes one informative message, returning
// its outcome. It processes the queue's next message — its own
// submission only while no concurrent drain is leasing messages; serving
// deployments use Submit + a drain for contributions and Ask for
// questions.
func (s *System) Ingest(ctx context.Context, body, source string) (*coordinator.Outcome, error) {
	if _, err := s.Submit(ctx, body, source); err != nil {
		return nil, err
	}
	out, ok, err := s.MC.ProcessOne()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("core: message vanished from queue")
	}
	return out, nil
}

// Ask answers a question synchronously through the coordinator's
// read-only QA path — classification, extraction and query execution run
// inline, nothing is enqueued — and returns the QA service's structured
// answer. A message classified informative returns a
// *coordinator.NotAQuestionError carrying what the classifier saw (type,
// probability), so callers can branch on the condition and report the
// classification instead of parsing an error string. Because the queue is
// untouched, Ask is safe to call while a concurrent drain integrates
// pending informative messages.
func (s *System) Ask(ctx context.Context, question, source string) (*qa.Answer, error) {
	ctx, sp := obs.StartSpan(ctx, spanAsk)
	defer sp.End()
	if s.Cache == nil {
		ans, err := s.MC.AskDirect(ctx, question, source)
		sp.SetError(err)
		return ans, err
	}
	// The version vector and drift epoch are read BEFORE the question
	// runs: a write that lands during execution moves a version past the
	// one recorded here, so the entry is born stale and the next Get
	// recomputes — racing writes cost a recompute, never a stale hit.
	// The cache key is the normalized question alone, which is sound
	// because the QA path never consults source or the clock for
	// requests (extraction returns before touching either, and place
	// resolution ranks by gazetteer population only).
	//
	// The lookup span brackets Get from outside — the recorder must
	// never be touched under Cache.mu (lockdiscipline pins this).
	q := readpath.NormalizeQuestion(question)
	_, lookup := obs.StartSpan(ctx, spanCacheLookup)
	versions := s.Store.Versions()
	drift := s.Store.Drift()
	ans, hit := s.Cache.Get(q, versions, drift)
	if lookup != nil {
		lookup.SetAttr("hit", strconv.FormatBool(hit))
		lookup.SetAttr("shard_versions", fmt.Sprint(versions))
		lookup.End()
	}
	if hit {
		sp.SetAttr("cache", "hit")
		return ans, nil
	}
	sp.SetAttr("cache", "miss")
	ans, err := s.MC.AskDirect(ctx, question, source)
	if err != nil {
		sp.SetError(err)
		return nil, err
	}
	touched := readpath.TouchedShards(ans.Query, s.Store)
	sp.SetAttr("touched_shards", fmt.Sprint(touched))
	s.Cache.Put(q, ans, touched, versions, drift)
	return ans, nil
}

// DecayAll applies temporal certainty decay to every collection on every
// shard, dropping records below floor, and accumulates the totals the
// stats endpoint reports.
func (s *System) DecayAll(now time.Time, floor uncertain.CF) (decayed, deleted int, err error) {
	for i, di := range s.DIs {
		for _, coll := range s.Store.Shard(i).Collections() {
			d, x, err := di.Decay(coll, now, floor)
			if err != nil {
				return decayed, deleted, err
			}
			decayed += d
			deleted += x
		}
	}
	s.decayMu.Lock()
	s.decayStats.Runs++
	s.decayStats.Decayed += int64(decayed)
	s.decayStats.Deleted += int64(deleted)
	s.decayMu.Unlock()
	return decayed, deleted, nil
}

// DecayStats returns the cumulative certainty-ageing totals.
func (s *System) DecayStats() DecayStats {
	s.decayMu.Lock()
	defer s.decayMu.Unlock()
	return s.decayStats
}

// SubmitFeedback validates a user verdict about an answer result,
// appends it durably to the feedback ledger and buffers it on its
// record's home-shard lane; the apply happens asynchronously in batches
// (FlushFeedback, or automatically once a lane holds a full batch). The
// returned sequence number identifies the verdict in the ledger.
func (s *System) SubmitFeedback(v feedback.Verdict) (int64, error) {
	return s.Feedback.Submit(v)
}

// FlushFeedback applies every buffered verdict — one amortized database
// batch per home shard, shards in parallel — and returns how many were
// applied. The serving layer calls it from its background loop.
func (s *System) FlushFeedback() int {
	return s.Feedback.Flush()
}

// FeedbackStats returns the feedback engine's counters.
func (s *System) FeedbackStats() feedback.Stats {
	return s.Feedback.Stats()
}

// Subscribe registers a standing query with the broadcaster and returns
// its ID. The subscription starts matching immediately; attach a
// consumer with AttachSubscription to receive events.
func (s *System) Subscribe(spec readpath.Subscription) (string, error) {
	return s.Broker.Subscribe(spec)
}

// Unsubscribe removes a standing query and closes its event channel.
func (s *System) Unsubscribe(id string) error {
	return s.Broker.Unsubscribe(id)
}

// AttachSubscription claims a subscription's event stream for a single
// consumer. The release function must be called when the consumer is
// done so a later attach can claim it.
func (s *System) AttachSubscription(id string) (<-chan readpath.Event, func(), error) {
	return s.Broker.Attach(id)
}

// SubscriptionInfo describes one registered standing query.
func (s *System) SubscriptionInfo(id string) (readpath.SubscriptionInfo, error) {
	return s.Broker.Info(id)
}

// Stats is a system snapshot.
type Stats struct {
	GazetteerEntries int
	GazetteerNames   int
	QueuePending     int
	QueueInFlight    int
	// Collections counts records per collection across all shards.
	Collections map[string]int
	// Shards is the store's partition count; ShardRecords the total
	// record count per shard (the balance benchmarks report).
	Shards       int
	ShardRecords []int
	// Feedback is the user-feedback engine's counters.
	Feedback feedback.Stats
	// Decay is the cumulative certainty-ageing totals.
	Decay DecayStats
	// CacheEnabled says whether the answer cache is configured; Cache
	// holds its counters (zero value when disabled).
	CacheEnabled bool
	Cache        readpath.CacheStats
	// Subscriptions is the standing-query broadcaster's snapshot.
	Subscriptions readpath.BrokerStats
	// TracesEnabled says whether this system installed a flight
	// recorder; Traces holds its counters (zero value when disabled).
	TracesEnabled bool
	Traces        obs.RecorderStats
}

// Stats returns a snapshot of the system's stores.
func (s *System) Stats() Stats {
	st := Stats{
		GazetteerEntries: s.Gaz.Len(),
		GazetteerNames:   s.Gaz.NameCount(),
		QueuePending:     s.Queue.Len(),
		QueueInFlight:    s.Queue.InFlight(),
		Collections:      make(map[string]int),
		Shards:           s.Store.NumShards(),
		ShardRecords:     s.Store.Balance(),
		Feedback:         s.Feedback.Stats(),
		Decay:            s.DecayStats(),
		Subscriptions:    s.Broker.Stats(),
	}
	if s.Cache != nil {
		st.CacheEnabled = true
		st.Cache = s.Cache.Stats()
	}
	if s.Recorder != nil {
		st.TracesEnabled = true
		st.Traces = s.Recorder.Stats()
	}
	for _, c := range s.Store.Collections() {
		st.Collections[c] = s.Store.Len(c)
	}
	return st
}

// Checkpoint writes one durable checkpoint of the store to the data
// directory and returns its Info. The queue's WAL sequence number is
// captured before the snapshot, so every message acknowledged up to
// that point is covered by the image and every later one will be
// re-integrated at recovery — a message integrated while the snapshot
// runs may land in both, which the integrator's find-dup+merge absorbs.
// Without a data directory it fails with ErrNoDataDir.
func (s *System) Checkpoint(ctx context.Context) (persist.Info, error) {
	if s.Persist == nil {
		return persist.Info{}, ErrNoDataDir
	}
	if err := ctx.Err(); err != nil {
		return persist.Info{}, err
	}
	return s.Persist.CheckpointContext(ctx, s.image(), s.Queue.LSN())
}

// image assembles the composite durable state: store bytes plus the
// learned auxiliary state (trust, priors, feedback watermark).
func (s *System) image() image {
	return image{store: s.Store, trust: s.KB.Trust(), priors: s.Priors, eng: s.Feedback}
}

// CheckpointInterval returns the configured periodic-checkpoint cadence
// (0: none) — what the serving layer's background loop runs at.
func (s *System) CheckpointInterval() time.Duration {
	return s.ckptInterval
}

// CheckpointStats is the durability subsystem's health snapshot.
type CheckpointStats struct {
	// Enabled says whether a data directory is configured.
	Enabled bool
	// Count is the number of checkpoints written since construction.
	Count int
	// LastSeq, LastBytes and LastAge describe the newest valid
	// checkpoint (written or recovered); zero values when none exists.
	LastSeq   uint64
	LastBytes int64
	LastAge   time.Duration
	// LastError is the failure message of the most recent checkpoint
	// attempt, empty when it succeeded — the health endpoint's
	// checkpoint_stale signal watches it so a silently failing
	// durability loop degrades /healthz instead of surfacing only as
	// restart-time data loss.
	LastError string
}

// CheckpointStats reports the durability subsystem's state, measuring
// the newest checkpoint's age against the system clock.
func (s *System) CheckpointStats() CheckpointStats {
	if s.Persist == nil {
		return CheckpointStats{}
	}
	st := s.Persist.Stats()
	out := CheckpointStats{Enabled: true, Count: st.Count, LastError: st.LastError}
	if st.Last != nil {
		out.LastSeq = st.Last.Seq
		out.LastBytes = st.Last.Size
		out.LastAge = s.clock().Sub(st.Last.Created)
	}
	return out
}

// Snapshot writes a composite image of the system's durable state to w:
// the (possibly sharded) probabilistic spatial XML database plus the
// learned auxiliary state — source trust, disambiguation priors and the
// feedback watermark. Together with the message queue's WAL and the
// feedback ledger this covers everything a restart must not lose; the
// gazetteer, ontology and KB schemas are rebuilt from configuration.
// Store shards snapshot one at a time, so writes racing a multi-shard
// snapshot can land in a later section only — quiesce the drain first
// for a point-in-time image of the whole store (feedback applies are
// excluded automatically for the duration).
func (s *System) Snapshot(w io.Writer) error {
	return s.image().Snapshot(w)
}

// Restore replaces the database contents and learned state with a
// snapshot produced by Snapshot (a legacy bare store snapshot is also
// accepted; it resets the learned state, which such images never
// carried). On error the database is unchanged.
func (s *System) Restore(r io.Reader) error {
	return s.image().Restore(r)
}
