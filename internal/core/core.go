// Package core assembles the full neogeography system of the paper's
// Figure 3: message queue, modules coordinator with workflow rules,
// information-extraction, data-integration and question-answering
// services, knowledge base, geo-ontology (Open Linked Data stand-in),
// gazetteer and the probabilistic spatial XML database.
package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/coordinator"
	"repro/internal/extract"
	"repro/internal/gazetteer"
	"repro/internal/integrate"
	"repro/internal/kb"
	"repro/internal/mq"
	"repro/internal/ontology"
	"repro/internal/qa"
	"repro/internal/uncertain"
	"repro/internal/xmldb"
)

// Config parameterises system construction.
type Config struct {
	// Gazetteer supplies the toponym database. Nil synthesises one with
	// GazetteerNames/GazetteerSeed.
	Gazetteer *gazetteer.Gazetteer
	// GazetteerNames is the synthetic gazetteer size when Gazetteer is
	// nil (default 2000 distinct names; the experiment harness uses
	// 20000).
	GazetteerNames int
	// GazetteerSeed seeds synthesis (default 2011).
	GazetteerSeed int64
	// QueueWAL, when non-empty, persists the message queue to this file.
	QueueWAL string
	// Workers sets the concurrency of the coordinator's stream-processing
	// pipeline: Process and ProcessConcurrent run classification and
	// extraction on this many goroutines while a batching stage serializes
	// database integration. 0 defaults to GOMAXPROCS; 1 keeps the
	// pipeline but with a single extraction worker.
	Workers int
	// IntegrateBatch caps how many messages the pipeline's integration
	// stage folds into one amortized database batch (default 16).
	IntegrateBatch int
	// Clock overrides the time source (tests).
	Clock func() time.Time
}

// System is the assembled pipeline.
type System struct {
	Gaz   *gazetteer.Gazetteer
	Ont   *ontology.Ontology
	KB    *kb.KB
	DB    *xmldb.DB
	Queue *mq.Queue
	IE    *extract.Service
	DI    *integrate.Service
	QA    *qa.Service
	MC    *coordinator.Coordinator
	clock func() time.Time
	// workers is the configured pipeline width (0 = GOMAXPROCS).
	workers int
}

// New builds a system.
func New(cfg Config) (*System, error) {
	s := &System{clock: cfg.Clock}
	if s.clock == nil {
		s.clock = time.Now
	}
	var err error
	s.Gaz = cfg.Gazetteer
	if s.Gaz == nil {
		names := cfg.GazetteerNames
		if names == 0 {
			names = 2000
		}
		seed := cfg.GazetteerSeed
		if seed == 0 {
			seed = 2011
		}
		s.Gaz, err = gazetteer.Synthesize(gazetteer.Config{Names: names, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("core: synthesising gazetteer: %w", err)
		}
	}
	s.Ont = ontology.New()
	s.Ont.LoadContainment(s.Gaz)
	s.KB = kb.New()
	s.DB = xmldb.New()
	if cfg.Clock != nil {
		s.DB.SetClock(cfg.Clock)
	}
	if cfg.QueueWAL != "" {
		s.Queue, err = mq.Open(cfg.QueueWAL, mq.WithClock(s.clock))
		if err != nil {
			return nil, fmt.Errorf("core: opening queue: %w", err)
		}
	} else {
		s.Queue = mq.New(mq.WithClock(s.clock))
	}
	if s.IE, err = extract.NewService(s.KB, s.Gaz, s.Ont); err != nil {
		return nil, err
	}
	if s.DI, err = integrate.NewService(s.KB, s.DB); err != nil {
		return nil, err
	}
	if s.QA, err = qa.NewService(s.DB, s.KB, s.Gaz, s.Ont); err != nil {
		return nil, err
	}
	if s.MC, err = coordinator.New(s.Queue, s.IE, s.DI, s.QA, nil); err != nil {
		return nil, err
	}
	s.MC.SetWorkers(cfg.Workers)
	s.MC.SetBatchSize(cfg.IntegrateBatch)
	s.workers = cfg.Workers
	if cfg.Clock != nil {
		s.MC.SetClock(cfg.Clock)
	}
	return s, nil
}

// Close releases resources (the queue WAL).
func (s *System) Close() error {
	return s.Queue.Close()
}

// Submit enqueues a raw user message for asynchronous processing.
func (s *System) Submit(body, source string) (int64, error) {
	return s.MC.Submit(body, source)
}

// Process drains the queue (up to limit messages; 0 = all) and returns the
// outcomes. When Workers was explicitly configured above 1 it runs the
// concurrent pipeline (outcomes in completion order); otherwise it keeps
// the deterministic sequential drain in queue order, so existing callers'
// ordering does not silently become machine-dependent. Use
// ProcessConcurrent to opt in regardless of configuration.
func (s *System) Process(limit int) ([]*coordinator.Outcome, []error) {
	if s.workers > 1 {
		return s.MC.DrainConcurrent(context.Background(), limit)
	}
	return s.MC.Drain(limit)
}

// ProcessConcurrent drains the queue through the coordinator's concurrent
// worker-pool pipeline (width Workers, default GOMAXPROCS), stopping
// early when ctx is cancelled. Outcomes arrive in completion order.
func (s *System) ProcessConcurrent(ctx context.Context, limit int) ([]*coordinator.Outcome, []error) {
	return s.MC.DrainConcurrent(ctx, limit)
}

// Ingest submits and fully processes one informative message, returning
// its outcome.
func (s *System) Ingest(body, source string) (*coordinator.Outcome, error) {
	if _, err := s.Submit(body, source); err != nil {
		return nil, err
	}
	out, ok, err := s.MC.ProcessOne()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("core: message vanished from queue")
	}
	return out, nil
}

// Ask submits a question, processes it, and returns the generated answer.
func (s *System) Ask(question, source string) (string, error) {
	out, err := s.Ingest(question, source)
	if err != nil {
		return "", err
	}
	if out.Type != extract.TypeRequest {
		return "", fmt.Errorf("core: %q was understood as an informative message, not a question", question)
	}
	return out.Answer, nil
}

// DecayAll applies temporal certainty decay to every collection, dropping
// records below floor.
func (s *System) DecayAll(now time.Time, floor uncertain.CF) (decayed, deleted int, err error) {
	for _, coll := range s.DB.Collections() {
		d, x, err := s.DI.Decay(coll, now, floor)
		if err != nil {
			return decayed, deleted, err
		}
		decayed += d
		deleted += x
	}
	return decayed, deleted, nil
}

// Stats is a system snapshot.
type Stats struct {
	GazetteerEntries int
	GazetteerNames   int
	QueuePending     int
	QueueInFlight    int
	Collections      map[string]int
}

// Stats returns a snapshot of the system's stores.
func (s *System) Stats() Stats {
	st := Stats{
		GazetteerEntries: s.Gaz.Len(),
		GazetteerNames:   s.Gaz.NameCount(),
		QueuePending:     s.Queue.Len(),
		QueueInFlight:    s.Queue.InFlight(),
		Collections:      make(map[string]int),
	}
	for _, c := range s.DB.Collections() {
		st.Collections[c] = s.DB.Len(c)
	}
	return st
}

// Snapshot writes a consistent image of the probabilistic spatial XML
// database to w; Restore replaces the database contents from a snapshot.
// Together with the message queue's WAL this covers the system's durable
// state — the gazetteer, ontology and KB are rebuilt from configuration.
func (s *System) Snapshot(w io.Writer) error {
	return s.DB.Snapshot(w)
}

// Restore replaces the database contents with a snapshot produced by
// Snapshot. On error the database is unchanged.
func (s *System) Restore(r io.Reader) error {
	return s.DB.Restore(r)
}
