package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/feedback"
	"repro/internal/geo"
	"repro/internal/qa"
	"repro/internal/readpath"
)

// renderAnswer serialises an answer deterministically so two systems'
// replies can be compared byte for byte: text, query, and every ranked
// record's identity and scores.
func renderAnswer(ans *qa.Answer) string {
	var b strings.Builder
	fmt.Fprintf(&b, "text=%s\nquery=%s\n", ans.Text, ans.Query)
	for _, r := range ans.Results {
		fmt.Fprintf(&b, "id=%d score=%.9f condp=%.9f\n", r.Record.ID, r.Score, r.CondP)
	}
	return b.String()
}

// TestCachedAskMatchesUncached is the hot read path's differential
// acceptance test: a cached system must answer byte-identically to an
// uncached twin at every point of an interleaved write / feedback /
// decay history — a cache hit is allowed to save work, never to change
// an answer.
func TestCachedAskMatchesUncached(t *testing.T) {
	newSys := func(cache int) *System {
		s, err := New(Config{
			GazetteerNames: 300,
			GazetteerSeed:  2011,
			Shards:         4,
			AnswerCache:    cache,
			Clock:          func() time.Time { return t0 },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		return s
	}
	plain, cached := newSys(0), newSys(64)
	if plain.Cache != nil || cached.Cache == nil {
		t.Fatalf("cache wiring: plain=%v cached=%v", plain.Cache, cached.Cache)
	}

	stream := shardScenarioStream()
	feed := func(msgs []string) {
		for i, m := range msgs {
			src := fmt.Sprintf("user%d", i%7)
			for _, s := range []*System{plain, cached} {
				if _, err := s.Submit(context.Background(), m, src); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, s := range []*System{plain, cached} {
			if _, errs := s.Process(context.Background(), 0); len(errs) != 0 {
				t.Fatalf("drain errors: %v", errs)
			}
		}
	}
	// compare asks every question on both systems — the cached one
	// twice, so both the fill path and the hit path are checked against
	// the uncached truth.
	compare := func(phase string) {
		t.Helper()
		for _, q := range shardScenarioQuestions {
			want, err := plain.Ask(context.Background(), q, "asker")
			if err != nil {
				t.Fatal(err)
			}
			for pass := 0; pass < 2; pass++ {
				got, err := cached.Ask(context.Background(), q, "asker")
				if err != nil {
					t.Fatal(err)
				}
				if g, w := renderAnswer(got), renderAnswer(want); g != w {
					t.Fatalf("%s pass %d: cached answer diverges for %q:\n--- cached ---\n%s--- uncached ---\n%s",
						phase, pass, q, g, w)
				}
			}
		}
	}

	// Phase 1: half the stream, then asks (second pass hits the cache).
	feed(stream[:len(stream)/2])
	compare("after first half")

	// Phase 2: the rest of the writes — every cached answer whose plan
	// touches a written shard must invalidate, not serve the old state.
	feed(stream[len(stream)/2:])
	compare("after second half")

	// Phase 3: feedback. Reject the top Berlin result on both systems;
	// the apply mutates certainty out of band of integration.
	ans, err := plain.Ask(context.Background(), shardScenarioQuestions[0], "asker")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Results) == 0 {
		t.Fatal("no results to give feedback on")
	}
	rec := ans.Results[0].Record.ID
	for _, s := range []*System{plain, cached} {
		if _, err := s.SubmitFeedback(feedback.Verdict{RecordID: rec, Kind: feedback.KindReject, Source: "carol"}); err != nil {
			t.Fatal(err)
		}
		if n := s.FlushFeedback(); n != 1 {
			t.Fatalf("flush applied %d verdicts, want 1", n)
		}
	}
	compare("after feedback")

	// Phase 4: decay, the ageing loop's out-of-band certainty mutation.
	later := t0.Add(90 * 24 * time.Hour)
	for _, s := range []*System{plain, cached} {
		if _, _, err := s.DecayAll(later, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	compare("after decay")

	st := cached.Cache.Stats()
	if st.Hits == 0 {
		t.Errorf("cache never hit: %+v", st)
	}
	if st.Invalidations == 0 {
		t.Errorf("cache never invalidated despite interleaved writes: %+v", st)
	}
}

// TestDecayInvalidatesCachedAnswer pins the ageing-loop regression: the
// decay path mutates certainty (and deletes records) outside the
// integration lanes, and a cached answer must never survive a decay
// that removed its records.
func TestDecayInvalidatesCachedAnswer(t *testing.T) {
	sys, err := New(Config{
		GazetteerNames: 300,
		GazetteerSeed:  2011,
		AnswerCache:    16,
		Clock:          func() time.Time { return t0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	if _, err := sys.Ingest(context.Background(), "wonderful stay at the Axel Hotel in Berlin, lovely place", "alice"); err != nil {
		t.Fatal(err)
	}
	const q = "can anyone recommend a good hotel in Berlin?"
	ans, err := sys.Ask(context.Background(), q, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Results) == 0 {
		t.Fatalf("expected the hotel in the answer, got %q", ans.Text)
	}
	// Second ask is served from the cache.
	if _, err := sys.Ask(context.Background(), q, "bob"); err != nil {
		t.Fatal(err)
	}
	if st := sys.Cache.Stats(); st.Hits == 0 {
		t.Fatalf("second ask did not hit the cache: %+v", st)
	}

	// Decay far into the future with a floor above anything a single
	// unconfirmed report can retain: the record is deleted.
	if _, deleted, err := sys.DecayAll(t0.Add(10*365*24*time.Hour), 0.99); err != nil {
		t.Fatal(err)
	} else if deleted == 0 {
		t.Fatal("decay deleted nothing; the scenario no longer exercises the regression")
	}
	if n := sys.Store.Len("Hotels"); n != 0 {
		t.Fatalf("store still holds %d hotels after decay", n)
	}

	// The cached answer's shard moved: this ask MUST recompute and see
	// the empty store, not replay the pre-decay reply.
	after, err := sys.Ask(context.Background(), q, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Results) != 0 {
		t.Fatalf("ask after decay served a stale cached answer: %q (%d results)", after.Text, len(after.Results))
	}
	if st := sys.Cache.Stats(); st.Invalidations == 0 {
		t.Fatalf("decay did not invalidate the cached answer: %+v", st)
	}
}

// TestStandingQueryStreamsCommits drives the full standing-query loop
// at the core layer: a key subscription observes its entity's insert,
// its merge, and a feedback confirmation, and nothing from other
// entities.
func TestStandingQueryStreamsCommits(t *testing.T) {
	sys, err := New(Config{
		GazetteerNames: 300,
		GazetteerSeed:  2011,
		Shards:         4,
		Clock:          func() time.Time { return t0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	id, err := sys.Subscribe(readpath.Subscription{Collection: "Hotels", Key: "Axel Hotel"})
	if err != nil {
		t.Fatal(err)
	}
	events, release, err := sys.AttachSubscription(id)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	next := func(wantAction string) readpath.Event {
		t.Helper()
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("event stream closed early")
			}
			if ev.Action != wantAction {
				t.Fatalf("event action = %q, want %q (event %+v)", ev.Action, wantAction, ev)
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatalf("no %q event arrived", wantAction)
		}
		return readpath.Event{}
	}

	if _, err := sys.Ingest(context.Background(), "wonderful stay at the Axel Hotel in Berlin, lovely place", "alice"); err != nil {
		t.Fatal(err)
	}
	ins := next("inserted")
	if ins.Collection != "Hotels" || ins.RecordID == 0 {
		t.Fatalf("bad insert event: %+v", ins)
	}
	if ins.Fields["Hotel_Name"] != "Axel Hotel" {
		t.Fatalf("insert event fields = %v", ins.Fields)
	}

	// A report about a different entity must not reach this stream; the
	// following merge event proves it was not just delayed.
	if _, err := sys.Ingest(context.Background(), "lovely dinner at the Movenpick Hotel in Berlin", "carol"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Ingest(context.Background(), "the Axel Hotel in Berlin was great value", "dave"); err != nil {
		t.Fatal(err)
	}
	mrg := next("merged")
	if mrg.RecordID != ins.RecordID {
		t.Fatalf("merge event record %d, want %d", mrg.RecordID, ins.RecordID)
	}

	if _, err := sys.SubmitFeedback(feedback.Verdict{RecordID: ins.RecordID, Kind: feedback.KindConfirm, Source: "erin"}); err != nil {
		t.Fatal(err)
	}
	if n := sys.FlushFeedback(); n != 1 {
		t.Fatalf("flush applied %d, want 1", n)
	}
	conf := next("confirmed")
	if conf.Certainty <= mrg.Certainty {
		t.Errorf("confirmation did not raise certainty: %v -> %v", mrg.Certainty, conf.Certainty)
	}

	if err := sys.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-events; ok {
		t.Fatal("stream still open after unsubscribe")
	}
}

// TestSubscribeWhileDrainingRace hammers subscription churn against a
// live concurrent drain (run with -race): registrations, cancellations
// and stream reads race integration publishes without tripping the
// detector or deadlocking a lane.
func TestSubscribeWhileDrainingRace(t *testing.T) {
	sys, err := New(Config{
		GazetteerNames: 300,
		GazetteerSeed:  2011,
		Shards:         4,
		Workers:        4,
		Clock:          func() time.Time { return t0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	stream := shardScenarioStream()
	for round := 0; round < 6; round++ {
		for i, m := range stream {
			if _, err := sys.Submit(context.Background(), m, fmt.Sprintf("user%d", i%7)); err != nil {
				t.Fatal(err)
			}
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				spec := readpath.Subscription{Collection: "Hotels", Key: "Axel Hotel"}
				if w%2 == 1 {
					spec = readpath.Subscription{Center: &geo.Point{Lat: 52.5, Lon: 13.4}, RadiusMeters: 250_000}
				}
				id, err := sys.Subscribe(spec)
				if err != nil {
					t.Error(err)
					return
				}
				if events, release, err := sys.AttachSubscription(id); err == nil {
					// Drain whatever arrived, then let go.
					for i := 0; i < 4; i++ {
						select {
						case <-events:
						default:
						}
					}
					release()
				}
				if err := sys.Unsubscribe(id); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	if _, errs := sys.ProcessConcurrent(context.Background(), 0); len(errs) != 0 {
		t.Fatalf("drain errors: %v", errs)
	}
	close(stop)
	wg.Wait()

	if got := sys.Broker.Stats().Active; got != 0 {
		t.Fatalf("subscriptions leaked: %d still active", got)
	}
}
