package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/coordinator"
	"repro/internal/extract"
	"repro/internal/xmldb"
)

var t0 = time.Date(2011, 4, 1, 9, 0, 0, 0, time.UTC)

func newSystem(t *testing.T) *System {
	t.Helper()
	s, err := New(Config{
		GazetteerNames: 300,
		GazetteerSeed:  2011,
		Clock:          func() time.Time { return t0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// TestPaperScenarioEndToEnd replays the paper's §"Example of a possible
// scenario" through the whole Figure 3 architecture.
func TestPaperScenarioEndToEnd(t *testing.T) {
	s := newSystem(t)
	messages := []string{
		"berlin has some nice hotels i just loved the hetero friendly love that word Axel Hotel in Berlin.",
		"Good morning Berlin. The sun is out!!!! Very impressed by the customer service at #movenpick hotel in berlin. Well done guys!",
		"In Berlin hotel room, nice enough, weather grim however",
	}
	for i, m := range messages {
		out, err := s.Ingest(context.Background(), m, "user"+string(rune('1'+i)))
		if err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		if out.Type != "informative" {
			t.Fatalf("message %d classified %s", i, out.Type)
		}
		if out.Inserted+out.Merged == 0 {
			t.Fatalf("message %d produced no integration", i)
		}
	}
	if got := s.DB.Len("Hotels"); got != 3 {
		t.Fatalf("Hotels records = %d, want 3 distinct hotels", got)
	}
	answer, err := s.Ask(context.Background(), "Can anyone recommend a good, but not ridiculously expensive hotel right in the middle of Berlin?", "asker")
	if err != nil {
		t.Fatal(err)
	}
	// The paper's expected answer: "Some good hotels in Berlin are Axel
	// Hotel, movenpick hotel, Berlin hotel."
	low := strings.ToLower(answer.Text)
	for _, h := range []string{"axel hotel", "movenpick hotel", "berlin hotel"} {
		if !strings.Contains(low, h) {
			t.Errorf("answer missing %q: %s", h, answer.Text)
		}
	}
	if !strings.HasPrefix(answer.Text, "Some good ") {
		t.Errorf("answer phrasing: %s", answer.Text)
	}
	if answer.Query == "" || len(answer.Results) == 0 {
		t.Errorf("structured answer incomplete: query=%q results=%d", answer.Query, len(answer.Results))
	}
}

func TestAskOnInformative(t *testing.T) {
	s := newSystem(t)
	_, err := s.Ask(context.Background(), "loved the Axel Hotel in Berlin", "x")
	if err == nil {
		t.Fatal("informative message accepted as question")
	}
	var naq *coordinator.NotAQuestionError
	if !errors.As(err, &naq) {
		t.Fatalf("error is %T, want *coordinator.NotAQuestionError", err)
	}
	if naq.Type != extract.TypeInformative {
		t.Errorf("classified type = %s", naq.Type)
	}
	if naq.TypeP <= 0 || naq.TypeP > 1 {
		t.Errorf("classification probability = %v", naq.TypeP)
	}
	// The ask path is read-only: nothing may have been enqueued or stored.
	if s.Queue.Len() != 0 || s.Queue.InFlight() != 0 {
		t.Errorf("ask touched the queue: len=%d inflight=%d", s.Queue.Len(), s.Queue.InFlight())
	}
}

func TestSubmitProcessBatch(t *testing.T) {
	s := newSystem(t)
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(context.Background(), "great stay at the Royal Gate Hotel in Paris", "u"); err != nil {
			t.Fatal(err)
		}
	}
	outs, errs := s.Process(context.Background(), 0)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(outs) != 4 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	// All four messages merged into one hotel record.
	if got := s.DB.Len("Hotels"); got != 1 {
		t.Errorf("Hotels = %d, want 1 merged record", got)
	}
}

func TestStats(t *testing.T) {
	s := newSystem(t)
	if _, err := s.Ingest(context.Background(), "lovely stay at hotel Sonne in Berlin", "u"); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.GazetteerEntries == 0 || st.GazetteerNames == 0 {
		t.Error("empty gazetteer stats")
	}
	if st.Collections["Hotels"] != 1 {
		t.Errorf("collections = %v", st.Collections)
	}
	if st.QueuePending != 0 || st.QueueInFlight != 0 {
		t.Errorf("queue stats = %+v", st)
	}
}

func TestDecayAll(t *testing.T) {
	s := newSystem(t)
	if _, err := s.Ingest(context.Background(), "nice stay at the Garden Rose Inn in Rome", "u"); err != nil {
		t.Fatal(err)
	}
	later := t0.Add(400 * 24 * time.Hour)
	s.DB.SetClock(func() time.Time { return later })
	decayed, deleted, err := s.DecayAll(later, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if decayed != 1 || deleted != 0 {
		t.Errorf("decayed=%d deleted=%d", decayed, deleted)
	}
}

func TestQueueWALPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.wal")
	s, err := New(Config{GazetteerNames: 100, QueueWAL: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), "unprocessed message about the Star Crown Hotel in Madrid", "u"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A restarted system picks the message back up.
	s2, err := New(Config{GazetteerNames: 100, QueueWAL: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Queue.Len() != 1 {
		t.Fatalf("recovered queue len = %d", s2.Queue.Len())
	}
	outs, errs := s2.Process(context.Background(), 0)
	if len(errs) != 0 || len(outs) != 1 {
		t.Fatalf("recovered processing: %d outs, %v", len(outs), errs)
	}
}

func TestTrafficAndFarmingFlows(t *testing.T) {
	s := newSystem(t)
	if _, err := s.Ingest(context.Background(), "huge traffic jam in Nairobi after the accident, road blocked", "driver"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(context.Background(), "locust swarm near Cairo moving south, maize fields at risk", "farmer"); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Collections["RoadReports"] != 1 {
		t.Errorf("RoadReports = %d", st.Collections["RoadReports"])
	}
	if st.Collections["FarmReports"] != 1 {
		t.Errorf("FarmReports = %d", st.Collections["FarmReports"])
	}
	ans, err := s.Ask(context.Background(), "any traffic in Nairobi this morning?", "asker")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(ans.Text), "nairobi") {
		t.Errorf("traffic answer = %q", ans.Text)
	}
}

// TestSystemSnapshotRestore: knowledge accumulated in one system survives
// into a fresh one via Snapshot/Restore, and the QA service answers from
// the restored state.
func TestSystemSnapshotRestore(t *testing.T) {
	sys, err := New(Config{GazetteerNames: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for _, m := range []string{
		"loved the Axel Hotel in Berlin, great stay",
		"Very impressed by the movenpick hotel in berlin!",
	} {
		if _, err := sys.Ingest(context.Background(), m, "u"); err != nil {
			t.Fatal(err)
		}
	}

	var img bytes.Buffer
	if err := sys.Snapshot(&img); err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	fresh, err := New(Config{Gazetteer: sys.Gaz})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if err := fresh.Restore(bytes.NewReader(img.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got, want := fresh.Stats().Collections["Hotels"], sys.Stats().Collections["Hotels"]; got != want {
		t.Fatalf("restored %d hotel records, want %d", got, want)
	}
	answer, err := fresh.Ask(context.Background(), "can anyone recommend a good hotel in Berlin?", "asker")
	if err != nil {
		t.Fatal(err)
	}
	low := strings.ToLower(answer.Text)
	if !strings.Contains(low, "axel hotel") || !strings.Contains(low, "movenpick") {
		t.Errorf("restored system answer = %q", answer.Text)
	}
}

// TestEssexHousePriceConflict replays the paper's §Q2 uncertainty
// discussion verbatim: two tweets naming the same hotel with different
// surface forms and contradicting minimum prices. The system must resolve
// them to one record (duplicate detection across name variants) and settle
// the Price conflict rather than storing both.
func TestEssexHousePriceConflict(t *testing.T) {
	sys := newSystem(t)
	defer sys.Close()

	out1, err := sys.Ingest(context.Background(), "Essex House Hotel and Suites from $154 USD", "pricebot1")
	if err != nil {
		t.Fatal(err)
	}
	if out1 == nil || out1.Inserted != 1 {
		t.Fatalf("first tweet: outcome %+v, want one insert", out1)
	}
	out2, err := sys.Ingest(context.Background(), "Essex House Hotel and Suites from $123 USD: Surrounded by clubs and designer", "pricebot2")
	if err != nil {
		t.Fatal(err)
	}
	if out2 == nil || out2.Merged != 1 {
		t.Fatalf("second tweet: outcome %+v, want a merge into the existing record", out2)
	}
	if n := sys.Stats().Collections["Hotels"]; n != 1 {
		t.Fatalf("expected one merged Essex House record, got %d", n)
	}

	// The stored record carries exactly one resolved price — the
	// contradiction must be settled, not duplicated.
	var price string
	sys.DB.Each("Hotels", func(rec *xmldb.Record) bool {
		if n, _ := rec.Doc.FirstChild("Price"); n != nil {
			price = n.TextContent()
		}
		return true
	})
	if price != "154" && price != "123" {
		t.Errorf("stored price = %q, want one of the two reported values", price)
	}
}

// TestConcurrentIngestAsk hammers the system from multiple goroutines —
// contributions and questions interleaved — relying on the race detector
// to catch unsynchronised access anywhere in the pipeline.
func TestConcurrentIngestAsk(t *testing.T) {
	sys := newSystem(t)
	defer sys.Close()

	msgs := []string{
		"loved the Axel Hotel in Berlin, great stay",
		"the movenpick hotel in berlin was wonderful",
		"terrible service at the Spree Hotel in Berlin",
		"Essex House Hotel and Suites from $154 USD",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := sys.Ingest(context.Background(), msgs[(w+i)%len(msgs)], fmt.Sprintf("w%d", w)); err != nil {
					errs <- fmt.Errorf("ingest: %w", err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := sys.Ask(context.Background(), "any good hotels in Berlin?", "asker"); err != nil {
					errs <- fmt.Errorf("ask: %w", err)
					return
				}
				_ = sys.Stats()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
