package core

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// The concurrent pipeline reaches the same stored state as the sequential
// path for the same stream: every message processed exactly once, entity
// merging unchanged. Run with -race.
func TestProcessConcurrentMatchesSequential(t *testing.T) {
	stream := make([]string, 0, 30)
	for i := 0; i < 30; i++ {
		switch i % 3 {
		case 0:
			stream = append(stream, "wonderful stay at the Axel Hotel in Berlin")
		case 1:
			stream = append(stream, "the Royal Gate Hotel in Paris was dirty and overpriced")
		default:
			stream = append(stream, "can anyone recommend a good hotel in Berlin?")
		}
	}

	seq, err := New(Config{GazetteerNames: 300, Workers: 1, Clock: func() time.Time { return t0 }})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	conc, err := New(Config{GazetteerNames: 300, Workers: 4, IntegrateBatch: 8, Clock: func() time.Time { return t0 }})
	if err != nil {
		t.Fatal(err)
	}
	defer conc.Close()

	for i, m := range stream {
		src := fmt.Sprintf("user%d", i%5)
		if _, err := seq.Submit(context.Background(), m, src); err != nil {
			t.Fatal(err)
		}
		if _, err := conc.Submit(context.Background(), m, src); err != nil {
			t.Fatal(err)
		}
	}

	seqOuts, seqErrs := seq.Process(context.Background(), 0)
	concOuts, concErrs := conc.ProcessConcurrent(context.Background(), 0)
	if len(seqErrs) != 0 || len(concErrs) != 0 {
		t.Fatalf("errors: seq=%v conc=%v", seqErrs, concErrs)
	}
	if len(concOuts) != len(seqOuts) {
		t.Fatalf("outcomes: conc=%d seq=%d", len(concOuts), len(seqOuts))
	}
	if got, want := conc.DB.Len("Hotels"), seq.DB.Len("Hotels"); got != want {
		t.Fatalf("Hotels: conc=%d seq=%d", got, want)
	}
	if conc.Queue.Len() != 0 || conc.Queue.InFlight() != 0 {
		t.Fatalf("concurrent queue not drained: len=%d inflight=%d",
			conc.Queue.Len(), conc.Queue.InFlight())
	}
}
