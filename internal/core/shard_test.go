package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

// shardScenarioStream is a tourism stream over distinct hotels with
// different report counts, so every record ends at a distinct certainty
// and answer ranking has no score ties to hide behind.
func shardScenarioStream() []string {
	hotels := []struct {
		name, city string
		reports    int
	}{
		{"Axel Hotel", "Berlin", 4},
		{"Movenpick Hotel", "Berlin", 3},
		{"Royal Gate Hotel", "Paris", 2},
		{"Essex House Hotel", "Paris", 5},
		{"Harbour Lodge Hotel", "Nairobi", 1},
		{"Kestrel Springs Hotel", "Nairobi", 6},
		{"Opal Terrace Hotel", "Tokyo", 2},
		{"Paragon Villa Hotel", "Tokyo", 3},
	}
	var stream []string
	for _, h := range hotels {
		for r := 0; r < h.reports; r++ {
			stream = append(stream, fmt.Sprintf(
				"wonderful stay at the %s in %s, lovely place", h.name, h.city))
		}
	}
	return stream
}

var shardScenarioQuestions = []string{
	"can anyone recommend a good hotel in Berlin?",
	"can anyone recommend a good hotel in Paris?",
	"can anyone recommend a good hotel in Nairobi?",
	"any good hotel in Tokyo?",
}

// TestShardedAskMatchesSingleStore is the differential acceptance test:
// the same tourism stream channelled into a 1-shard and a 4-shard
// system, drained deterministically, must produce byte-identical QA
// answers — sharding is a throughput decision, never a semantics one.
func TestShardedAskMatchesSingleStore(t *testing.T) {
	newSys := func(shards int) *System {
		s, err := New(Config{
			GazetteerNames: 300,
			GazetteerSeed:  2011,
			Shards:         shards,
			Clock:          func() time.Time { return t0 },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		return s
	}
	single, sharded := newSys(1), newSys(4)
	if sharded.Store.NumShards() != 4 {
		t.Fatalf("sharded store has %d shards", sharded.Store.NumShards())
	}

	for i, m := range shardScenarioStream() {
		src := fmt.Sprintf("user%d", i%7)
		if _, err := single.Submit(m, src); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.Submit(m, src); err != nil {
			t.Fatal(err)
		}
	}
	if _, errs := single.Process(0); len(errs) != 0 {
		t.Fatalf("single drain errors: %v", errs)
	}
	if _, errs := sharded.Process(0); len(errs) != 0 {
		t.Fatalf("sharded drain errors: %v", errs)
	}

	if got, want := sharded.Store.Len("Hotels"), single.Store.Len("Hotels"); got != want {
		t.Fatalf("Hotels: sharded=%d single=%d", got, want)
	}
	balance := sharded.Store.Balance()
	spread := 0
	for _, n := range balance {
		if n > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("degenerate placement, balance = %v", balance)
	}

	for _, q := range shardScenarioQuestions {
		wantAns, err := single.Ask(q, "asker")
		if err != nil {
			t.Fatal(err)
		}
		gotAns, err := sharded.Ask(q, "asker")
		if err != nil {
			t.Fatal(err)
		}
		if gotAns != wantAns {
			t.Errorf("answers diverge for %q:\n single: %s\nsharded: %s", q, wantAns, gotAns)
		}
		if !strings.Contains(gotAns, "Hotel") {
			t.Errorf("uninformative answer for %q: %s", q, gotAns)
		}
	}
}

// TestShardedConcurrentDrain runs the full concurrent pipeline with
// per-shard integration lanes (run with -race): same stored state as the
// single-store drain, queue fully drained, every lane's shard reachable
// through the fan-out reads.
func TestShardedConcurrentDrain(t *testing.T) {
	stream := shardScenarioStream()
	for i := 0; i < 10; i++ {
		stream = append(stream, "can anyone recommend a good hotel?")
	}

	single, err := New(Config{GazetteerNames: 300, Workers: 1, Clock: func() time.Time { return t0 }})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	sharded, err := New(Config{
		GazetteerNames: 300,
		Workers:        4,
		Shards:         4,
		IntegrateBatch: 8,
		Clock:          func() time.Time { return t0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	for i, m := range stream {
		src := fmt.Sprintf("user%d", i%5)
		if _, err := single.Submit(m, src); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.Submit(m, src); err != nil {
			t.Fatal(err)
		}
	}
	wantOuts, errs := single.Process(0)
	if len(errs) != 0 {
		t.Fatalf("single drain errors: %v", errs)
	}
	gotOuts, errs := sharded.ProcessConcurrent(context.Background(), 0)
	if len(errs) != 0 {
		t.Fatalf("sharded drain errors: %v", errs)
	}
	if len(gotOuts) != len(wantOuts) {
		t.Fatalf("outcomes: sharded=%d single=%d", len(gotOuts), len(wantOuts))
	}
	if got, want := sharded.Store.Len("Hotels"), single.Store.Len("Hotels"); got != want {
		t.Fatalf("Hotels: sharded=%d single=%d", got, want)
	}
	if sharded.Queue.Len() != 0 || sharded.Queue.InFlight() != 0 {
		t.Fatalf("queue not drained: len=%d inflight=%d", sharded.Queue.Len(), sharded.Queue.InFlight())
	}
	qs := sharded.Queue.Stats()
	if qs.Acked != len(stream) || qs.DeadLettered != 0 {
		t.Fatalf("queue stats = %+v, want %d acked", qs, len(stream))
	}

	st := sharded.Stats()
	if st.Shards != 4 || len(st.ShardRecords) != 4 {
		t.Fatalf("stats shards = %d (%v)", st.Shards, st.ShardRecords)
	}
	total := 0
	for _, n := range st.ShardRecords {
		total += n
	}
	if total != sharded.Store.Len("Hotels") {
		t.Fatalf("shard records %v sum to %d, store has %d", st.ShardRecords, total, sharded.Store.Len("Hotels"))
	}
}

// TestShardedSnapshotUnsupported pins the documented limitation.
func TestShardedSnapshotUnsupported(t *testing.T) {
	s, err := New(Config{GazetteerNames: 300, Shards: 2, Clock: func() time.Time { return t0 }})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.DB != nil {
		t.Error("System.DB should be nil in a sharded configuration")
	}
	if err := s.Snapshot(&strings.Builder{}); err == nil {
		t.Error("sharded snapshot accepted")
	}
	if err := s.Restore(strings.NewReader("")); err == nil {
		t.Error("sharded restore accepted")
	}
}
