package core

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/xmldb"
)

// shardScenarioStream is a tourism stream over distinct hotels with
// different report counts, so every record ends at a distinct certainty
// and answer ranking has no score ties to hide behind.
func shardScenarioStream() []string {
	hotels := []struct {
		name, city string
		reports    int
	}{
		{"Axel Hotel", "Berlin", 4},
		{"Movenpick Hotel", "Berlin", 3},
		{"Royal Gate Hotel", "Paris", 2},
		{"Essex House Hotel", "Paris", 5},
		{"Harbour Lodge Hotel", "Nairobi", 1},
		{"Kestrel Springs Hotel", "Nairobi", 6},
		{"Opal Terrace Hotel", "Tokyo", 2},
		{"Paragon Villa Hotel", "Tokyo", 3},
	}
	var stream []string
	for _, h := range hotels {
		for r := 0; r < h.reports; r++ {
			stream = append(stream, fmt.Sprintf(
				"wonderful stay at the %s in %s, lovely place", h.name, h.city))
		}
	}
	return stream
}

var shardScenarioQuestions = []string{
	"can anyone recommend a good hotel in Berlin?",
	"can anyone recommend a good hotel in Paris?",
	"can anyone recommend a good hotel in Nairobi?",
	"any good hotel in Tokyo?",
}

// TestShardedAskMatchesSingleStore is the differential acceptance test:
// the same tourism stream channelled into a 1-shard and a 4-shard
// system, drained deterministically, must produce byte-identical QA
// answers — sharding is a throughput decision, never a semantics one.
func TestShardedAskMatchesSingleStore(t *testing.T) {
	newSys := func(shards int) *System {
		s, err := New(Config{
			GazetteerNames: 300,
			GazetteerSeed:  2011,
			Shards:         shards,
			Clock:          func() time.Time { return t0 },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		return s
	}
	single, sharded := newSys(1), newSys(4)
	if sharded.Store.NumShards() != 4 {
		t.Fatalf("sharded store has %d shards", sharded.Store.NumShards())
	}

	for i, m := range shardScenarioStream() {
		src := fmt.Sprintf("user%d", i%7)
		if _, err := single.Submit(context.Background(), m, src); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.Submit(context.Background(), m, src); err != nil {
			t.Fatal(err)
		}
	}
	if _, errs := single.Process(context.Background(), 0); len(errs) != 0 {
		t.Fatalf("single drain errors: %v", errs)
	}
	if _, errs := sharded.Process(context.Background(), 0); len(errs) != 0 {
		t.Fatalf("sharded drain errors: %v", errs)
	}

	if got, want := sharded.Store.Len("Hotels"), single.Store.Len("Hotels"); got != want {
		t.Fatalf("Hotels: sharded=%d single=%d", got, want)
	}
	balance := sharded.Store.Balance()
	spread := 0
	for _, n := range balance {
		if n > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("degenerate placement, balance = %v", balance)
	}

	for _, q := range shardScenarioQuestions {
		wantAns, err := single.Ask(context.Background(), q, "asker")
		if err != nil {
			t.Fatal(err)
		}
		gotAns, err := sharded.Ask(context.Background(), q, "asker")
		if err != nil {
			t.Fatal(err)
		}
		if gotAns.Text != wantAns.Text {
			t.Errorf("answers diverge for %q:\n single: %s\nsharded: %s", q, wantAns.Text, gotAns.Text)
		}
		if !strings.Contains(gotAns.Text, "Hotel") {
			t.Errorf("uninformative answer for %q: %s", q, gotAns.Text)
		}
	}
}

// TestShardedConcurrentDrain runs the full concurrent pipeline with
// per-shard integration lanes (run with -race): same stored state as the
// single-store drain, queue fully drained, every lane's shard reachable
// through the fan-out reads.
func TestShardedConcurrentDrain(t *testing.T) {
	stream := shardScenarioStream()
	for i := 0; i < 10; i++ {
		stream = append(stream, "can anyone recommend a good hotel?")
	}

	single, err := New(Config{GazetteerNames: 300, Workers: 1, Clock: func() time.Time { return t0 }})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	sharded, err := New(Config{
		GazetteerNames: 300,
		Workers:        4,
		Shards:         4,
		IntegrateBatch: 8,
		Clock:          func() time.Time { return t0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	for i, m := range stream {
		src := fmt.Sprintf("user%d", i%5)
		if _, err := single.Submit(context.Background(), m, src); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.Submit(context.Background(), m, src); err != nil {
			t.Fatal(err)
		}
	}
	wantOuts, errs := single.Process(context.Background(), 0)
	if len(errs) != 0 {
		t.Fatalf("single drain errors: %v", errs)
	}
	gotOuts, errs := sharded.ProcessConcurrent(context.Background(), 0)
	if len(errs) != 0 {
		t.Fatalf("sharded drain errors: %v", errs)
	}
	if len(gotOuts) != len(wantOuts) {
		t.Fatalf("outcomes: sharded=%d single=%d", len(gotOuts), len(wantOuts))
	}
	if got, want := sharded.Store.Len("Hotels"), single.Store.Len("Hotels"); got != want {
		t.Fatalf("Hotels: sharded=%d single=%d", got, want)
	}
	if sharded.Queue.Len() != 0 || sharded.Queue.InFlight() != 0 {
		t.Fatalf("queue not drained: len=%d inflight=%d", sharded.Queue.Len(), sharded.Queue.InFlight())
	}
	qs := sharded.Queue.Stats()
	if qs.Acked != len(stream) || qs.DeadLettered != 0 {
		t.Fatalf("queue stats = %+v, want %d acked", qs, len(stream))
	}

	st := sharded.Stats()
	if st.Shards != 4 || len(st.ShardRecords) != 4 {
		t.Fatalf("stats shards = %d (%v)", st.Shards, st.ShardRecords)
	}
	total := 0
	for _, n := range st.ShardRecords {
		total += n
	}
	if total != sharded.Store.Len("Hotels") {
		t.Fatalf("shard records %v sum to %d, store has %d", st.ShardRecords, total, sharded.Store.Len("Hotels"))
	}
}

// TestShardedSnapshotRoundTrip: a 4-shard tourism store survives
// Snapshot/Restore into a fresh 4-shard system with byte-identical Ask
// answers, a matching per-shard balance, and working post-restore
// inserts (the ID sequences stay strided). Restoring into a mismatched
// shard count is refused before any shard is touched.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	newSys := func(shards int) *System {
		s, err := New(Config{GazetteerNames: 300, Shards: shards, Clock: func() time.Time { return t0 }})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		return s
	}
	sys := newSys(4)
	for i, m := range shardScenarioStream() {
		if _, err := sys.Ingest(context.Background(), m, fmt.Sprintf("user%d", i%7)); err != nil {
			t.Fatal(err)
		}
	}

	var img bytes.Buffer
	if err := sys.Snapshot(&img); err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	fresh := newSys(4)
	if err := fresh.Restore(bytes.NewReader(img.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got, want := fmt.Sprint(fresh.Store.Balance()), fmt.Sprint(sys.Store.Balance()); got != want {
		t.Fatalf("restored balance %s, want %s", got, want)
	}
	for _, q := range shardScenarioQuestions {
		want, err := sys.Ask(context.Background(), q, "asker")
		if err != nil {
			t.Fatal(err)
		}
		got, err := fresh.Ask(context.Background(), q, "asker")
		if err != nil {
			t.Fatal(err)
		}
		if got.Text != want.Text || got.Query != want.Query {
			t.Errorf("restored answer diverges for %q:\n original: %s\n restored: %s", q, want.Text, got.Text)
		}
	}

	// Post-restore inserts must keep strided, globally unique IDs.
	if _, err := fresh.Ingest(context.Background(), "wonderful stay at the Gilded Manor Hotel in Berlin, lovely place", "late"); err != nil {
		t.Fatalf("post-restore ingest: %v", err)
	}
	seen := make(map[int64]bool)
	for i := 0; i < fresh.Store.NumShards(); i++ {
		db := fresh.Store.Shard(i)
		for _, coll := range db.Collections() {
			db.Each(coll, func(rec *xmldb.Record) bool {
				if seen[rec.ID] {
					t.Errorf("duplicate record ID %d after restore", rec.ID)
				}
				seen[rec.ID] = true
				if fresh.Store.ShardFor(rec.ID) != i {
					t.Errorf("record %d stored on shard %d, home shard %d", rec.ID, i, fresh.Store.ShardFor(rec.ID))
				}
				return true
			})
		}
	}

	mismatched := newSys(2)
	if err := mismatched.Restore(bytes.NewReader(img.Bytes())); err == nil {
		t.Error("restore into a 2-shard store accepted a 4-shard snapshot")
	} else if !strings.Contains(err.Error(), "4 shard") {
		t.Errorf("mismatch error does not name the counts: %v", err)
	}
}
