package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/disambig"
	"repro/internal/feedback"
	"repro/internal/shard"
	"repro/internal/uncertain"
)

// imageMagic heads the composite durable image: the store snapshot plus
// the learned auxiliary state (source trust, disambiguation priors, and
// the feedback engine's applied watermark). Before this format, learned
// source reliability silently reset to its prior on every restart — the
// paper's trust model only matters if it survives the process.
const imageMagic = "neogeo-image v2"

// auxState is the serialized learned state riding alongside the store.
type auxState struct {
	// Trust is the source-trust model's counts.
	Trust uncertain.TrustState `json:"trust"`
	// Priors is the disambiguation reinforcement memory.
	Priors disambig.PriorsState `json:"priors,omitempty"`
	// FeedbackSeq is the feedback engine's applied watermark at snapshot
	// time: ledger entries at or below it are inside the store image,
	// entries above it replay at recovery.
	FeedbackSeq int64 `json:"feedback_seq"`
	// FeedbackDone lists applied sequence numbers above the watermark —
	// entries resolved while an older replay entry was still deferring.
	// Recovery skips them too, keeping replay exactly-once even across a
	// checkpoint taken mid-recovery.
	FeedbackDone []int64 `json:"feedback_done,omitempty"`
}

// image is the composite Snapshotter the durability subsystem
// checkpoints and the facade's Snapshot/Restore serialize: a header
// line, then a length-prefixed store snapshot, then a length-prefixed
// aux JSON section.
type image struct {
	store  *shard.Store
	trust  *uncertain.TrustModel
	priors *disambig.Priors
	// eng freezes applies during Snapshot so the recorded watermark and
	// the store bytes agree; nil during boot recovery (the engine is
	// built after the image restores).
	eng *feedback.Engine
	// recovered, when non-nil, receives the restored watermark and
	// resolved set — boot recovery reads them to know which ledger
	// entries to replay.
	recovered *recoveredFeedback
}

// recoveredFeedback is what boot recovery learns about the feedback
// engine's progress from a restored image.
type recoveredFeedback struct {
	seq  int64
	done []int64
}

// Snapshot writes the composite image. With an engine attached, applies
// are excluded for the duration, so every verdict is either fully
// inside the store bytes and covered by the watermark (or the resolved
// set), or neither.
func (im image) Snapshot(w io.Writer) error {
	if im.eng != nil {
		return im.eng.WithFrozen(func(seq int64, done []int64) error { return im.write(w, seq, done) })
	}
	return im.write(w, 0, nil)
}

func (im image) write(w io.Writer, appliedSeq int64, done []int64) error {
	if _, err := fmt.Fprintf(w, "%s\n", imageMagic); err != nil {
		return fmt.Errorf("core: image header: %w", err)
	}
	var buf bytes.Buffer
	if err := im.store.Snapshot(&buf); err != nil {
		return err
	}
	if err := writeSection(w, buf.Bytes()); err != nil {
		return fmt.Errorf("core: image store section: %w", err)
	}
	aux := auxState{
		Trust:        im.trust.ExportState(),
		Priors:       im.priors.ExportState(),
		FeedbackSeq:  appliedSeq,
		FeedbackDone: done,
	}
	data, err := json.Marshal(aux)
	if err != nil {
		return fmt.Errorf("core: image aux section: %w", err)
	}
	if err := writeSection(w, data); err != nil {
		return fmt.Errorf("core: image aux section: %w", err)
	}
	return nil
}

// Restore replaces the store and the learned state from an image. A
// stream that does not start with the composite header is treated as a
// legacy bare store snapshot: the store restores from it and the
// learned state resets to defaults (exactly what those older images
// meant). The store section is fully validated before any live state is
// touched.
func (im image) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil && (header == "" || err != io.EOF) {
		return fmt.Errorf("core: image header: %w", err)
	}
	if strings.TrimSuffix(header, "\n") != imageMagic {
		// Legacy bare store snapshot (sharded or single-db): no learned
		// state was recorded, so it resets along with the store contents.
		if err := im.store.Restore(io.MultiReader(strings.NewReader(header), br)); err != nil {
			return err
		}
		if err := im.trust.ImportState(uncertain.TrustState{}); err != nil {
			return err
		}
		if err := im.priors.ImportState(nil); err != nil {
			return err
		}
		im.adoptSeq(0, nil)
		return nil
	}
	storeSec, err := readSection(br)
	if err != nil {
		return fmt.Errorf("core: image store section: %w", err)
	}
	auxSec, err := readSection(br)
	if err != nil {
		return fmt.Errorf("core: image aux section: %w", err)
	}
	var aux auxState
	if err := json.Unmarshal(auxSec, &aux); err != nil {
		return fmt.Errorf("core: image aux section: %w", err)
	}
	// Dry-run the aux state against scratch instances before any live
	// state is touched: a malformed aux section must leave the system
	// unchanged, matching the store's own all-or-nothing restore.
	scratchTrust, err := uncertain.NewTrustModel(0.5, 1)
	if err != nil {
		return err
	}
	if err := scratchTrust.ImportState(aux.Trust); err != nil {
		return fmt.Errorf("core: image aux section: %w", err)
	}
	if err := disambig.NewPriors().ImportState(aux.Priors); err != nil {
		return fmt.Errorf("core: image aux section: %w", err)
	}
	if err := im.store.Restore(bytes.NewReader(storeSec)); err != nil {
		return err
	}
	if err := im.trust.ImportState(aux.Trust); err != nil {
		return err
	}
	if err := im.priors.ImportState(aux.Priors); err != nil {
		return err
	}
	im.adoptSeq(aux.FeedbackSeq, aux.FeedbackDone)
	return nil
}

func (im image) adoptSeq(seq int64, done []int64) {
	if im.recovered != nil {
		im.recovered.seq = seq
		im.recovered.done = done
	}
	if im.eng != nil {
		im.eng.AdoptApplied(seq, done)
	}
}

func writeSection(w io.Writer, data []byte) error {
	if err := binary.Write(w, binary.BigEndian, uint64(len(data))); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

func readSection(r io.Reader) ([]byte, error) {
	var n uint64
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, err
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	return data, nil
}
