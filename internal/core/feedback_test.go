package core

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/feedback"
	"repro/internal/xmldb"
)

// findRecordByHotel locates a record's ID by its Hotel_Name text —
// record IDs differ between shard layouts, so cross-layout tests
// identify records semantically.
func findRecordByHotel(t *testing.T, s *System, name string) int64 {
	t.Helper()
	var id int64 = -1
	s.Store.Each("Hotels", func(rec *xmldb.Record) bool {
		n, _ := rec.Doc.FirstChild("Hotel_Name")
		if n != nil && n.TextContent() == name {
			id = rec.ID
			return false
		}
		return true
	})
	if id < 0 {
		t.Fatalf("no record for hotel %q", name)
	}
	return id
}

// TestShardedFeedbackMatchesSingleStore is the feedback counterpart of
// TestShardedAskMatchesSingleStore: the same verdicts applied to the
// same records on a 1-shard and a 4-shard system must produce
// byte-identical QA answers — feedback routing by strided record ID is
// a throughput decision, never a semantics one.
func TestShardedFeedbackMatchesSingleStore(t *testing.T) {
	newSys := func(shards int) *System {
		s, err := New(Config{
			GazetteerNames: 300,
			GazetteerSeed:  2011,
			Shards:         shards,
			Clock:          func() time.Time { return t0 },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		return s
	}
	single, sharded := newSys(1), newSys(4)
	for i, m := range shardScenarioStream() {
		src := fmt.Sprintf("user%d", i%7)
		if _, err := single.Submit(context.Background(), m, src); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.Submit(context.Background(), m, src); err != nil {
			t.Fatal(err)
		}
	}
	if _, errs := single.Process(context.Background(), 0); len(errs) != 0 {
		t.Fatalf("single drain errors: %v", errs)
	}
	if _, errs := sharded.Process(context.Background(), 0); len(errs) != 0 {
		t.Fatalf("sharded drain errors: %v", errs)
	}

	// The same semantic verdicts, addressed per system by record ID.
	verdicts := []struct {
		hotel  string
		kind   feedback.Kind
		field  string
		value  string
		source string
	}{
		{"Essex House Hotel", feedback.KindReject, "", "", "judge1"},
		{"Essex House Hotel", feedback.KindReject, "", "", "judge2"},
		{"Essex House Hotel", feedback.KindReject, "", "", "judge7"},
		{"Royal Gate Hotel", feedback.KindConfirm, "", "", "judge3"},
		{"Royal Gate Hotel", feedback.KindConfirm, "", "", "judge8"},
		{"Harbour Lodge", feedback.KindConfirm, "", "", "judge4"},
		{"Harbour Lodge", feedback.KindConfirm, "", "", "judge5"},
		{"Axel Hotel", feedback.KindCorrect, "Price", "129", "judge6"},
	}
	for _, sys := range []*System{single, sharded} {
		for _, v := range verdicts {
			id := findRecordByHotel(t, sys, v.hotel)
			if _, err := sys.SubmitFeedback(feedback.Verdict{
				RecordID: id, Kind: v.kind, Field: v.field, Value: v.value, Source: v.source,
			}); err != nil {
				t.Fatalf("feedback %q on %q: %v", v.kind, v.hotel, err)
			}
		}
		if n := sys.FlushFeedback(); n != len(verdicts) {
			t.Fatalf("applied %d verdicts, want %d", n, len(verdicts))
		}
	}

	sg, sh := single.FeedbackStats(), sharded.FeedbackStats()
	if sg.Applied != sh.Applied || sg.Confirmed != sh.Confirmed ||
		sg.Rejected != sh.Rejected || sg.Corrected != sh.Corrected {
		t.Fatalf("feedback stats diverge: single %+v, sharded %+v", sg, sh)
	}

	for _, q := range shardScenarioQuestions {
		wantAns, err := single.Ask(context.Background(), q, "asker")
		if err != nil {
			t.Fatal(err)
		}
		gotAns, err := sharded.Ask(context.Background(), q, "asker")
		if err != nil {
			t.Fatal(err)
		}
		if gotAns.Text != wantAns.Text {
			t.Errorf("answers diverge after feedback for %q:\n single: %s\nsharded: %s", q, wantAns.Text, gotAns.Text)
		}
	}

	// The verdicts had observable effect: the rejected Essex House (5
	// reports, previously the Paris leader) no longer tops the Paris
	// ranking in either system.
	ans, err := single.Ask(context.Background(), "can anyone recommend a good hotel in Paris?", "asker")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Results) == 0 {
		t.Fatal("no Paris results after feedback")
	}
	if n, _ := ans.Results[0].Record.Doc.FirstChild("Hotel_Name"); n != nil && n.TextContent() == "Essex House Hotel" {
		t.Errorf("two rejects did not demote the Paris leader: %s", ans.Text)
	}
}

// TestLearnedStateSurvivesRestart pins the satellite bugfix: learned
// source reliability (and the feedback engine's reinforcement priors)
// used to silently reset to defaults on every restart because the
// checkpoint only carried the store. Now the composite image restores
// them at boot.
func TestLearnedStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	dataDir, wal := filepath.Join(dir, "data"), filepath.Join(dir, "queue.wal")
	build := func() *System {
		s, err := New(Config{
			GazetteerNames: 300,
			GazetteerSeed:  2011,
			Workers:        1,
			DataDir:        dataDir,
			QueueWAL:       wal,
			Clock:          func() time.Time { return t0 },
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	sys := build()
	// Trust evolves two ways: duplicate reports corroborate each other
	// (integration feedback), and a user verdict confirms a record
	// (feedback engine).
	report := "wonderful stay at the Axel Hotel in Berlin, lovely place"
	for i, src := range []string{"alice", "bob"} {
		if _, err := sys.Ingest(context.Background(), report, src); err != nil {
			t.Fatalf("ingest #%d: %v", i, err)
		}
	}
	id := findRecordByHotel(t, sys, "Axel Hotel")
	if _, err := sys.SubmitFeedback(feedback.Verdict{RecordID: id, Kind: feedback.KindConfirm, Source: "carol"}); err != nil {
		t.Fatal(err)
	}
	if n := sys.FlushFeedback(); n != 1 {
		t.Fatalf("applied %d, want 1", n)
	}
	wantTrust := sys.KB.Trust().Report()
	if len(wantTrust) == 0 {
		t.Fatal("no trust evolved — the fixture is inert")
	}
	wantPriors := sys.Priors.ExportState()
	if len(wantPriors) == 0 {
		t.Fatal("no priors learned — the confirm did not reinforce")
	}
	wantSeq := sys.FeedbackStats().AppliedSeq
	if _, err := sys.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	restarted := build()
	defer restarted.Close()
	gotTrust := restarted.KB.Trust().Report()
	if !reflect.DeepEqual(gotTrust, wantTrust) {
		t.Errorf("trust after restart = %+v\nwant %+v", gotTrust, wantTrust)
	}
	if got := restarted.Priors.ExportState(); !reflect.DeepEqual(got, wantPriors) {
		t.Errorf("priors after restart = %+v\nwant %+v", got, wantPriors)
	}
	if got := restarted.FeedbackStats().AppliedSeq; got != wantSeq {
		t.Errorf("feedback watermark after restart = %d, want %d", got, wantSeq)
	}
	// And the watermark is honest: the applied verdict does not replay.
	if n := restarted.FlushFeedback(); n != 0 {
		t.Errorf("restart re-applied %d verdicts covered by the checkpoint", n)
	}

	// The legacy (bare store) snapshot path still restores — and resets
	// the learned state those images never carried.
	var legacy strings.Builder
	if err := restarted.Store.Snapshot(&legacy); err != nil {
		t.Fatal(err)
	}
	if err := restarted.Restore(strings.NewReader(legacy.String())); err != nil {
		t.Fatalf("legacy snapshot restore: %v", err)
	}
	if got := restarted.KB.Trust().Report(); len(got) != 0 {
		t.Errorf("legacy restore kept learned trust: %+v", got)
	}
}

// TestRestoreRejectsCorruptAuxAtomically: a composite image whose store
// section is fine but whose aux (learned-state) section is malformed
// must leave the live system completely unchanged — the restore
// contract is all-or-nothing.
func TestRestoreRejectsCorruptAuxAtomically(t *testing.T) {
	build := func() *System {
		s, err := New(Config{GazetteerNames: 300, GazetteerSeed: 2011, Workers: 1, Clock: func() time.Time { return t0 }})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		return s
	}
	donor := build()
	for _, m := range []string{
		"wonderful stay at the Axel Hotel in Berlin, lovely place",
		"wonderful stay at the Movenpick Hotel in Berlin, lovely place",
	} {
		if _, err := donor.Ingest(context.Background(), m, "alice"); err != nil {
			t.Fatal(err)
		}
	}
	var img bytes.Buffer
	if err := donor.Snapshot(&img); err != nil {
		t.Fatal(err)
	}
	// Rebuild the image with the donor's store section but a malformed
	// aux section (trust prior outside (0, 1)).
	br := bufio.NewReader(bytes.NewReader(img.Bytes()))
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	storeSec, err := readSection(br)
	if err != nil {
		t.Fatal(err)
	}
	var bad bytes.Buffer
	fmt.Fprintf(&bad, "%s\n", imageMagic)
	if err := writeSection(&bad, storeSec); err != nil {
		t.Fatal(err)
	}
	if err := writeSection(&bad, []byte(`{"trust":{"prior":1.5,"weight":1}}`)); err != nil {
		t.Fatal(err)
	}

	target := build()
	if _, err := target.Ingest(context.Background(), "great night at the Hotel Elysium Park in Berlin", "bob"); err != nil {
		t.Fatal(err)
	}
	wantTrust := target.KB.Trust().Report()
	if err := target.Restore(bytes.NewReader(bad.Bytes())); err == nil {
		t.Fatal("corrupt aux section restored without error")
	}
	if got := target.Store.Len("Hotels"); got != 1 {
		t.Errorf("failed restore changed the store: %d records, want 1", got)
	}
	if got := target.KB.Trust().Report(); !reflect.DeepEqual(got, wantTrust) {
		t.Errorf("failed restore changed the trust model: %+v", got)
	}
}
