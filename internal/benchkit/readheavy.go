package benchkit

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/gazetteer"
	"repro/internal/tweetgen"
)

// ReadHeavyConfig parameterises the serving-mix benchmark: one tweet
// stream whose request ratio sets the ask:report mix, replayed against a
// cached and an uncached system.
type ReadHeavyConfig struct {
	// Ops is the total operation count (asks + reports together).
	Ops int
	// AskRatio is the fraction of operations that are questions; the
	// remainder are reports that integrate (and so bump shard versions
	// under the cache). 0.9 is the hot-read-path shape.
	AskRatio float64
	// Seed generates the stream deterministically: the cached and
	// uncached runs replay the identical operation sequence.
	Seed int64
	// Noise is the tweet-stream noise level.
	Noise float64
	// GazetteerNames is the synthetic gazetteer size.
	GazetteerNames int
	// Workers is the pipeline worker-pool width for drains.
	Workers int
	// Shards is the probabilistic store shard count.
	Shards int
	// Cache is the answer-cache capacity of the cached run; the baseline
	// run always disables the cache.
	Cache int
	// DrainEvery is how many reports buffer before a drain pass
	// (default 16, the pipeline's integration batch).
	DrainEvery int
}

// ReadHeavy replays one mixed ask/report stream twice — answer cache off,
// then on — and reports throughput, mean ask latency and the cache's hit
// ratio to w. Requests route to Ask (a generated request the classifier
// rejects is counted as skipped, identically in both runs); informative
// messages enqueue and drain in integration-batch-sized groups, so the
// cached run pays realistic version-vector invalidations between bursts
// of asks rather than serving an artificially quiescent store.
func ReadHeavy(ctx context.Context, cfg ReadHeavyConfig, w io.Writer) error {
	if cfg.Ops <= 0 {
		return fmt.Errorf("readheavy: ops %d, want > 0", cfg.Ops)
	}
	if cfg.AskRatio < 0 || cfg.AskRatio > 1 {
		return fmt.Errorf("readheavy: ask ratio %v outside [0, 1]", cfg.AskRatio)
	}
	if cfg.Cache <= 0 {
		return fmt.Errorf("readheavy: cache capacity %d, want > 0 for the cached run", cfg.Cache)
	}
	if cfg.DrainEvery <= 0 {
		cfg.DrainEvery = 16
	}
	gaz, err := gazetteer.Synthesize(gazetteer.Config{Names: cfg.GazetteerNames, Seed: 2011})
	if err != nil {
		return fmt.Errorf("synthesising gazetteer: %w", err)
	}
	gen, err := tweetgen.New(tweetgen.Config{
		Seed: cfg.Seed, Noise: cfg.Noise, Domain: tweetgen.DomainMixed, RequestRatio: cfg.AskRatio,
	})
	if err != nil {
		return fmt.Errorf("tweet stream: %w", err)
	}
	stream := gen.Generate(cfg.Ops)

	fmt.Fprintf(w, "# read-heavy mix: %d ops, ask-ratio=%.2f, seed=%d, noise=%.1f, shards=%d, drain-every=%d\n",
		cfg.Ops, cfg.AskRatio, cfg.Seed, cfg.Noise, cfg.Shards, cfg.DrainEvery)
	fmt.Fprintln(w, "config\tasks\treports\tskipped\tseconds\tops_per_sec\task_avg_us\thits\tmisses\thit_rate")
	for _, cache := range []int{0, cfg.Cache} {
		sys, err := core.New(core.Config{
			Gazetteer: gaz, Workers: cfg.Workers, Shards: cfg.Shards,
			AnswerCache: cache, IntegrateBatch: 16,
		})
		if err != nil {
			return err
		}
		var asks, reports, skipped, pending int
		var askTime time.Duration
		drain := func() error {
			if pending == 0 {
				return nil
			}
			pending = 0
			if _, errs := sys.ProcessConcurrent(ctx, 0); len(errs) != 0 {
				return fmt.Errorf("drain: %w", errs[0])
			}
			return nil
		}
		start := time.Now()
		for _, m := range stream {
			if m.Truth.Type == "request" {
				t := time.Now()
				_, err := sys.Ask(ctx, m.Text, m.Source)
				askTime += time.Since(t)
				if err != nil {
					// Noise can push a generated request below the
					// classifier's question threshold; the stream is
					// shared, so both runs skip the same messages.
					skipped++
					continue
				}
				asks++
				continue
			}
			if _, err := sys.Submit(ctx, m.Text, m.Source); err != nil {
				sys.Close()
				return err
			}
			reports++
			if pending++; pending >= cfg.DrainEvery {
				if err := drain(); err != nil {
					sys.Close()
					return err
				}
			}
		}
		finalErr := drain()
		elapsed := time.Since(start).Seconds()
		label := "cache=off"
		hits, misses := int64(0), int64(0)
		hitRate := 0.0
		if cache > 0 {
			label = fmt.Sprintf("cache=%d", cache)
			st := sys.Cache.Stats()
			hits, misses = st.Hits, st.Misses
			if hits+misses > 0 {
				hitRate = float64(hits) / float64(hits+misses)
			}
		}
		closeErr := sys.Close()
		if finalErr != nil {
			return finalErr
		}
		if closeErr != nil {
			return fmt.Errorf("%s: closing system: %w", label, closeErr)
		}
		avgUS := 0.0
		if asks > 0 {
			avgUS = float64(askTime.Microseconds()) / float64(asks)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.3f\t%.0f\t%.1f\t%d\t%d\t%.3f\n",
			label, asks, reports, skipped, elapsed,
			float64(asks+reports)/elapsed, avgUS, hits, misses, hitRate)
	}
	return nil
}
