package benchkit

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/coordinator"
	"repro/internal/core"
	"repro/internal/gazetteer"
	"repro/internal/tweetgen"
)

// ParallelConfig parameterises the end-to-end pipeline throughput
// benchmark.
type ParallelConfig struct {
	// Messages is the stream length.
	Messages int
	// Seed generates the tweet stream deterministically: every mode and
	// configuration replays the identical stream for one value.
	Seed int64
	// Noise is the tweet-stream noise level.
	Noise float64
	// RequestRatio is the fraction of request messages.
	RequestRatio float64
	// GazetteerNames is the synthetic gazetteer size.
	GazetteerNames int
	// UseWAL backs the queue with a write-ahead log, the production
	// configuration whose per-message fsync the integration lanes
	// amortize via group-committed acknowledgements.
	UseWAL bool
	// Workers is the comma-separated worker counts; 0 = sequential drain.
	Workers string
	// Shards is the comma-separated shard counts for the probabilistic
	// store.
	Shards string
}

// Parallel replays one synthetic tweet stream through the full
// MQ -> MC -> IE -> DI pipeline once per drain configuration and reports
// throughput to w. The stream is generated exactly once from the seed and
// every (workers × shards) configuration gets a fresh system fed that
// same slice (same gazetteer too), so sequential, concurrent and sharded
// runs compare identical inputs; submission is not timed — the
// measurement is the drain, which is where acknowledgement durability,
// integration batching and shard-lane parallelism live. Cancelling ctx
// stops the concurrent drains early.
func Parallel(ctx context.Context, cfg ParallelConfig, w io.Writer) error {
	gaz, err := gazetteer.Synthesize(gazetteer.Config{Names: cfg.GazetteerNames, Seed: 2011})
	if err != nil {
		return fmt.Errorf("synthesising gazetteer: %w", err)
	}
	gen, err := tweetgen.New(tweetgen.Config{
		Seed: cfg.Seed, Noise: cfg.Noise, Domain: tweetgen.DomainMixed, RequestRatio: cfg.RequestRatio,
	})
	if err != nil {
		return fmt.Errorf("tweet stream: %w", err)
	}
	n := cfg.Messages
	stream := gen.Generate(n)

	parseCounts := func(list, flagName string, min int) ([]int, error) {
		var out []int
		for _, f := range strings.Split(list, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < min {
				return nil, fmt.Errorf("bad %s entry %q", flagName, f)
			}
			out = append(out, v)
		}
		return out, nil
	}
	workerCounts, err := parseCounts(cfg.Workers, "-workers", 0)
	if err != nil {
		return err
	}
	shardCounts, err := parseCounts(cfg.Shards, "-shards", 1)
	if err != nil {
		return err
	}

	tmp, err := os.MkdirTemp("", "integbench-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	fmt.Fprintf(w, "# parallel drain: %d msgs, seed=%d, noise=%.1f, requests=%.1f, wal=%v\n",
		n, cfg.Seed, cfg.Noise, cfg.RequestRatio, cfg.UseWAL)
	fmt.Fprintln(w, "config\tmsgs\tseconds\tmsgs_per_sec\tspeedup\tshard_balance")
	var baseline float64
	run := 0
	for _, wk := range workerCounts {
		for _, nshards := range shardCounts {
			sysCfg := core.Config{Gazetteer: gaz, Workers: wk, Shards: nshards, IntegrateBatch: 16}
			if wk == 0 {
				sysCfg.Workers = 1 // sequential drain below; width is unused
			}
			if cfg.UseWAL {
				sysCfg.QueueWAL = filepath.Join(tmp, fmt.Sprintf("queue-%d.wal", run))
			}
			sys, err := core.New(sysCfg)
			if err != nil {
				return err
			}
			for _, m := range stream {
				if _, err := sys.Submit(ctx, m.Text, m.Source); err != nil {
					sys.Close()
					return err
				}
			}
			label := "sequential"
			if wk != 0 {
				label = fmt.Sprintf("workers=%d", wk)
			}
			if nshards > 1 {
				label += fmt.Sprintf("/shards=%d", nshards)
			}
			start := time.Now()
			var outs []*coordinator.Outcome
			var errs []error
			if wk == 0 {
				outs, errs = sys.MC.Drain(0)
			} else {
				outs, errs = sys.ProcessConcurrent(ctx, 0)
			}
			elapsed := time.Since(start).Seconds()
			balance := sys.Store.Balance()
			qstats := sys.Queue.Stats()
			// A failed close means the WAL's final state is suspect: the
			// numbers above would describe a run whose durability story is
			// broken, so it fails the benchmark like any drain error.
			closeErr := sys.Close()
			if len(errs) > 0 {
				return fmt.Errorf("%s: %d drain errors (first: %w)", label, len(errs), errs[0])
			}
			if closeErr != nil {
				return fmt.Errorf("%s: closing system: %w", label, closeErr)
			}
			if len(outs) != n {
				return fmt.Errorf("%s: drained %d of %d messages", label, len(outs), n)
			}
			if qstats.Acked != n || qstats.DeadLettered != 0 {
				return fmt.Errorf("%s: queue health acked=%d dead=%d, want %d acked",
					label, qstats.Acked, qstats.DeadLettered, n)
			}
			rate := float64(n) / elapsed
			// Speedup is relative to the first configuration in the list
			// (conventionally 0 = sequential, but any list works).
			if run == 0 {
				baseline = rate
			}
			run++
			speedup := rate / baseline
			fmt.Fprintf(w, "%s\t%d\t%.3f\t%.0f\t%.2fx\t%s\n",
				label, n, elapsed, rate, speedup, balanceString(balance))
		}
	}
	return nil
}

// balanceString renders per-shard record counts compactly: "512" for a
// single store, "[130 128 125 131]" for a sharded one.
func balanceString(balance []int) string {
	if len(balance) == 1 {
		return strconv.Itoa(balance[0])
	}
	parts := make([]string, len(balance))
	for i, n := range balance {
		parts[i] = strconv.Itoa(n)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
