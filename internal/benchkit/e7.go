// Package benchkit holds the integration benchmarks behind cmd/integbench.
// The command is a thin flag wrapper; the workloads live here, below the
// public facade, because they measure internal services (integration
// strategies, drain configurations) that the stable API deliberately does
// not expose.
package benchkit

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/extract"
	"repro/internal/integrate"
	"repro/internal/kb"
	"repro/internal/pxml"
	"repro/internal/uncertain"
	"repro/internal/xmldb"
)

// E7Config parameterises experiment E7: uncertainty-aware probabilistic
// integration versus naive last-write-wins, measured as fact accuracy
// over stream length on a contradiction-laden report stream.
type E7Config struct {
	// Hotels is the number of distinct entities with a ground-truth
	// attitude.
	Hotels int
	// Messages is the total number of reports in the stream.
	Messages int
	// Step is the measurement interval.
	Step int
	// LiarRate is the fraction of reports from unreliable sources.
	LiarRate float64
	// Seed makes the stream deterministic.
	Seed int64
}

// E7 runs the accuracy experiment, writing a TSV series (stream position,
// probabilistic accuracy, naive accuracy) to w — EXPERIMENTS.md §E7
// records a reference run.
//
// The workload models the paper's core integration challenge ("the
// contradictions between the extracted information and the information
// previously extracted and stored in the probabilistic database"): a
// fixed population of hotels each has a ground-truth user attitude;
// reliable sources report the truth, while a minority of systematically
// unreliable sources report its opposite. The probabilistic DI service
// pools attitude distributions weighted by learned source trust; the
// naive service simply overwrites with each arriving report.
func E7(cfg E7Config, w io.Writer) error {
	names := hotelNames(cfg.Hotels)
	truth := make([]string, cfg.Hotels)
	for i := range truth {
		if i%2 == 0 {
			truth[i] = "Positive"
		} else {
			truth[i] = "Negative"
		}
	}

	probDB, naiveDB := xmldb.New(), xmldb.New()
	prob, err := integrate.NewService(kb.New(), probDB)
	if err != nil {
		return fmt.Errorf("probabilistic DI: %w", err)
	}
	naive, err := integrate.NewService(kb.New(), naiveDB)
	if err != nil {
		return fmt.Errorf("naive DI: %w", err)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	now := time.Unix(1_300_000_000, 0)

	fmt.Fprintln(w, "stream_len\tprobabilistic_acc\tnaive_acc")
	for sent := 1; sent <= cfg.Messages; sent++ {
		h := rng.Intn(cfg.Hotels)
		liar := rng.Float64() < cfg.LiarRate
		reported := truth[h]
		source := fmt.Sprintf("citizen%d", rng.Intn(12))
		if liar {
			reported = opposite(truth[h])
			source = fmt.Sprintf("troll%d", rng.Intn(3))
		}
		tpl := reportTemplate(names[h], reported, source, now.Add(time.Duration(sent)*time.Minute))
		if _, err := prob.Integrate(tpl); err != nil {
			return fmt.Errorf("integrate: %w", err)
		}
		if _, err := naive.IntegrateNaive(tpl); err != nil {
			return fmt.Errorf("integrate naive: %w", err)
		}
		if sent%cfg.Step == 0 {
			fmt.Fprintf(w, "%d\t%.3f\t%.3f\n",
				sent, accuracy(probDB, names, truth), accuracy(naiveDB, names, truth))
		}
	}
	return nil
}

func opposite(att string) string {
	if att == "Positive" {
		return "Negative"
	}
	return "Positive"
}

// reportTemplate builds the extraction template one report would produce:
// the reported attitude carried as a distribution leaning 0.9/0.1 toward
// the reported value, as the sentiment scorer does for a clear opinion.
func reportTemplate(hotel, attitude, source string, at time.Time) extract.Template {
	d := uncertain.NewDist()
	_ = d.Add(attitude, 0.9)
	_ = d.Add(opposite(attitude), 0.1)
	return extract.Template{
		Domain:    "tourism",
		RecordTag: "Hotel",
		Fields: map[string]extract.FieldValue{
			"Hotel_Name":    {Kind: kb.FieldText, Text: hotel, CF: 0.9},
			"City":          {Kind: kb.FieldText, Text: "Berlin", CF: 0.8},
			"User_Attitude": {Kind: kb.FieldAttitude, Dist: d, CF: 0.8},
		},
		Certainty: 0.5,
		Source:    source,
		Extracted: at,
	}
}

// accuracy is the fraction of ground-truth entities whose stored attitude
// distribution ranks the true value first. Entities not yet reported count
// as wrong, so early accuracy climbs as coverage grows.
func accuracy(db *xmldb.DB, names, truth []string) float64 {
	correct := 0
	for i, want := range truth {
		if storedTop(db, names[i]) == want {
			correct++
		}
	}
	return float64(correct) / float64(len(truth))
}

// hotelNames builds n mutually dissimilar entity names, so duplicate
// detection (name similarity >= 0.75) keeps them apart — the experiment
// measures conflict resolution, not entity resolution.
func hotelNames(n int) []string {
	first := []string{"Azure", "Bravado", "Crimson", "Dunmore", "Elysian", "Falcon",
		"Gilded", "Harbour", "Ivory", "Juniper", "Kestrel", "Lakeside",
		"Meridian", "Northgate", "Opal", "Paragon"}
	second := []string{"Palace", "Lodge", "Retreat", "Towers", "Courtyard", "Manor",
		"Pavilion", "Terrace", "Springs", "Villa", "Quarters", "Haven"}
	names := make([]string, 0, n)
	for i := 0; len(names) < n; i++ {
		names = append(names, first[i%len(first)]+" "+second[(i/len(first)+i)%len(second)])
	}
	return names
}

func storedTop(db *xmldb.DB, hotel string) string {
	var top string
	db.Each("Hotels", func(r *xmldb.Record) bool {
		for _, m := range pxml.FindAll(r.Doc, "/Hotel/Hotel_Name") {
			if m.Node.TextContent() != hotel {
				continue
			}
			for _, f := range pxml.FindAll(r.Doc, "/Hotel/User_Attitude") {
				if alt, ok := extract.MuxToDist(f.Node).Top(); ok {
					top = alt.Name
				}
			}
			return false
		}
		return true
	})
	return top
}
