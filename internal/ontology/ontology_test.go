package ontology

import (
	"testing"

	"repro/internal/gazetteer"
	"repro/internal/geo"
)

func TestSeededTaxonomy(t *testing.T) {
	o := New()
	if !o.IsA("hotel", "lodging") {
		t.Error("hotel not a lodging")
	}
	if !o.IsA("hotel", "place") {
		t.Error("hotel not transitively a place")
	}
	if !o.IsA("hotel", "hotel") {
		t.Error("hotel not a hotel (reflexivity)")
	}
	if o.IsA("hotel", "agriculture") {
		t.Error("hotel is agriculture")
	}
	if o.IsA("nonexistent", "place") {
		t.Error("unknown concept matched")
	}
}

func TestLexicon(t *testing.T) {
	o := New()
	cases := []struct {
		word, ancestor string
		want           bool
	}{
		{"inn", "lodging", true},
		{"suites", "lodging", true},
		{"Hotel", "lodging", true}, // case-insensitive
		{"grill", "food", true},
		{"jam", "transport", true},
		{"locusts", "agriculture", true},
		{"maize", "crop", true},
		{"sunny", "weather", true},
		{"inn", "agriculture", false},
		{"xyzzy", "place", false},
	}
	for _, c := range cases {
		if got := o.WordEvokes(c.word, c.ancestor); got != c.want {
			t.Errorf("WordEvokes(%q, %q) = %v, want %v", c.word, c.ancestor, got, c.want)
		}
	}
}

func TestAddConceptValidation(t *testing.T) {
	o := New()
	if err := o.AddConcept("", ""); err == nil {
		t.Error("empty concept accepted")
	}
	if err := o.AddConcept("spa", "nonexistent"); err == nil {
		t.Error("missing parent accepted")
	}
	if err := o.AddConcept("spa", "lodging"); err != nil {
		t.Errorf("valid concept rejected: %v", err)
	}
	if !o.IsA("spa", "place") {
		t.Error("new concept not wired into taxonomy")
	}
}

func TestAddLexemeValidation(t *testing.T) {
	o := New()
	if err := o.AddLexeme("", "hotel"); err == nil {
		t.Error("empty lexeme accepted")
	}
	if err := o.AddLexeme("palace", "castle"); err == nil {
		t.Error("lexeme with unknown concept accepted")
	}
	if err := o.AddLexeme("palace", "hotel"); err != nil {
		t.Errorf("valid lexeme rejected: %v", err)
	}
	if c, ok := o.ConceptOf("Palace"); !ok || c != "hotel" {
		t.Errorf("ConceptOf(Palace) = %q, %v", c, ok)
	}
}

func TestAncestors(t *testing.T) {
	o := New()
	anc := o.Ancestors("hotel")
	if len(anc) != 2 || anc[0] != "lodging" || anc[1] != "place" {
		t.Errorf("Ancestors(hotel) = %v", anc)
	}
	if anc := o.Ancestors("place"); len(anc) != 0 {
		t.Errorf("Ancestors(place) = %v", anc)
	}
	if anc := o.Ancestors("nope"); anc != nil {
		t.Errorf("Ancestors(nope) = %v", anc)
	}
}

func TestContainment(t *testing.T) {
	o := New()
	if err := o.SetContainment("Berlin", "DE"); err != nil {
		t.Fatal(err)
	}
	if c, ok := o.CountryOf("berlin"); !ok || c != "DE" {
		t.Errorf("CountryOf = %q, %v", c, ok)
	}
	if _, ok := o.CountryOf("atlantis"); ok {
		t.Error("unknown place contained")
	}
	if err := o.SetContainment("X", "ZZ"); err == nil {
		t.Error("unknown country accepted")
	}
	if err := o.SetContainment("", "DE"); err == nil {
		t.Error("empty place accepted")
	}
}

func TestLoadContainment(t *testing.T) {
	g := gazetteer.New()
	mustAdd := func(name string, lat, lon float64, country string, pop int64, f gazetteer.FeatureClass) {
		t.Helper()
		_, err := g.Add(gazetteer.Entry{
			Name: name, Location: geo.Point{Lat: lat, Lon: lon},
			Feature: f, Country: country, Population: pop,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("Berlin", 52.52, 13.40, "DE", 3700000, gazetteer.FeatureCity)
	mustAdd("Berlin", 44.47, -71.18, "US", 10000, gazetteer.FeatureCity)
	mustAdd("Mill Creek", 40, -100, "US", 0, gazetteer.FeatureStream)

	o := New()
	o.LoadContainment(g)
	// Most populous Berlin wins.
	if c, ok := o.CountryOf("Berlin"); !ok || c != "DE" {
		t.Errorf("CountryOf(Berlin) = %q, %v", c, ok)
	}
	// Streams are not containment facts.
	if _, ok := o.CountryOf("Mill Creek"); ok {
		t.Error("stream loaded as containment fact")
	}
}

func TestConceptsSorted(t *testing.T) {
	o := New()
	cs := o.Concepts()
	if len(cs) < 10 {
		t.Fatalf("only %d concepts", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Fatalf("concepts unsorted at %d: %q >= %q", i, cs[i-1], cs[i])
		}
	}
}
