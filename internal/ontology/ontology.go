// Package ontology is the in-process stand-in for the paper's "Open Linked
// Data" module: a geo-ontology with a concept taxonomy, a domain lexicon,
// and place-containment facts, consulted by extraction, disambiguation,
// integration and question answering ("All the modules make use of web
// ontologies to enrich and improve the data", paper §Modules description).
package ontology

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/gazetteer"
	"repro/internal/text"
)

// Concept is a node of the taxonomy, identified by a lowercase name.
type Concept struct {
	Name   string
	Parent string // empty for roots
}

// Ontology holds the taxonomy, lexicon and containment facts. Reads are
// safe for concurrent use.
type Ontology struct {
	mu       sync.RWMutex
	concepts map[string]Concept
	// lexicon maps a surface word to the concept it evokes
	// ("inn" -> "hotel").
	lexicon map[string]string
	// contains maps a normalised place name to the code of the country
	// that (most prominently) contains it.
	contains map[string]string
}

// New returns an ontology preloaded with the tourism/traffic/farming
// domain taxonomy the validation scenarios need.
func New() *Ontology {
	o := &Ontology{
		concepts: make(map[string]Concept),
		lexicon:  make(map[string]string),
		contains: make(map[string]string),
	}
	o.seedTaxonomy()
	return o
}

func (o *Ontology) seedTaxonomy() {
	must := func(err error) {
		if err != nil {
			panic(err) // seed data is static; failure is a programming error
		}
	}
	must(o.AddConcept("place", ""))
	must(o.AddConcept("lodging", "place"))
	must(o.AddConcept("hotel", "lodging"))
	must(o.AddConcept("hostel", "lodging"))
	must(o.AddConcept("food", "place"))
	must(o.AddConcept("restaurant", "food"))
	must(o.AddConcept("bar", "food"))
	must(o.AddConcept("transport", "place"))
	must(o.AddConcept("road", "transport"))
	must(o.AddConcept("station", "transport"))
	must(o.AddConcept("agriculture", ""))
	must(o.AddConcept("crop", "agriculture"))
	must(o.AddConcept("pest", "agriculture"))
	must(o.AddConcept("market", "agriculture"))
	must(o.AddConcept("weather", ""))
	must(o.AddConcept("traffic", "transport"))
	// Road states: the Condition alternatives a traffic report can assert.
	// Distinct states make newest-wins integration meaningful — "clear"
	// supersedes "congested" rather than pooling with it.
	must(o.AddConcept("congested", "traffic"))
	must(o.AddConcept("blocked", "traffic"))
	must(o.AddConcept("flooded_road", "traffic"))
	must(o.AddConcept("clear_road", "traffic"))
	must(o.AddConcept("city", "place"))
	must(o.AddConcept("country", "place"))

	lex := map[string]string{
		// Lodging.
		"hotel": "hotel", "hotels": "hotel", "inn": "hotel", "suites": "hotel",
		"resort": "hotel", "motel": "hotel", "hostel": "hostel", "lodge": "hotel",
		"guesthouse": "hotel", "b&b": "hotel",
		// Food.
		"restaurant": "restaurant", "cafe": "restaurant", "grill": "restaurant",
		"bar": "bar", "pub": "bar", "club": "bar", "bistro": "restaurant",
		// Transport / traffic.
		"road": "road", "highway": "road", "street": "road", "bridge": "road",
		"station": "station", "airport": "station", "port": "station",
		"traffic": "traffic", "detour": "traffic",
		"checkpoint": "traffic", "pothole": "traffic",
		"jam": "congested", "congestion": "congested", "gridlock": "congested",
		"accident": "blocked", "roadblock": "blocked", "blocked": "blocked",
		"flooded": "flooded_road", "washout": "flooded_road",
		"clear": "clear_road", "passable": "clear_road", "flowing": "clear_road",
		// Agriculture.
		"crop": "crop", "maize": "crop", "wheat": "crop", "rice": "crop",
		"cassava": "crop", "sorghum": "crop", "beans": "crop", "coffee": "crop",
		"harvest": "crop", "sow": "crop", "sowing": "crop", "planting": "crop",
		"locust": "pest", "locusts": "pest", "blight": "pest", "pest": "pest",
		"swarm": "pest", "fungus": "pest", "aphids": "pest",
		"market": "market", "price": "market", "prices": "market",
		"buyer": "market", "sell": "market", "selling": "market",
		// Weather.
		"rain": "weather", "rains": "weather", "drought": "weather",
		"storm": "weather", "flood": "weather", "frost": "weather",
		"sunny": "weather", "weather": "weather",
	}
	for w, c := range lex {
		must(o.AddLexeme(w, c))
	}
}

// AddConcept inserts a concept under the given parent ("" for a root).
// The parent must already exist.
func (o *Ontology) AddConcept(name, parent string) error {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return fmt.Errorf("ontology: empty concept name")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if parent != "" {
		if _, ok := o.concepts[parent]; !ok {
			return fmt.Errorf("ontology: parent concept %q not found", parent)
		}
	}
	o.concepts[name] = Concept{Name: name, Parent: parent}
	return nil
}

// AddLexeme maps a surface word to a concept, which must exist.
func (o *Ontology) AddLexeme(word, concept string) error {
	word = strings.ToLower(strings.TrimSpace(word))
	if word == "" {
		return fmt.Errorf("ontology: empty lexeme")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.concepts[concept]; !ok {
		return fmt.Errorf("ontology: concept %q not found for lexeme %q", concept, word)
	}
	o.lexicon[word] = concept
	return nil
}

// ConceptOf returns the concept a surface word evokes, if any.
func (o *Ontology) ConceptOf(word string) (string, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	c, ok := o.lexicon[strings.ToLower(word)]
	return c, ok
}

// IsA reports whether concept `name` is (transitively) a kind of
// `ancestor`. A concept is a kind of itself.
func (o *Ontology) IsA(name, ancestor string) bool {
	name = strings.ToLower(name)
	ancestor = strings.ToLower(ancestor)
	o.mu.RLock()
	defer o.mu.RUnlock()
	for name != "" {
		if name == ancestor {
			return true
		}
		c, ok := o.concepts[name]
		if !ok {
			return false
		}
		name = c.Parent
	}
	return false
}

// Ancestors returns the concept chain from name (exclusive) to its root.
func (o *Ontology) Ancestors(name string) []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var out []string
	cur, ok := o.concepts[strings.ToLower(name)]
	if !ok {
		return nil
	}
	for cur.Parent != "" {
		out = append(out, cur.Parent)
		next, ok := o.concepts[cur.Parent]
		if !ok {
			break
		}
		cur = next
	}
	return out
}

// WordEvokes reports whether the word's concept is (a kind of) the given
// ancestor — "does 'inn' talk about lodging?".
func (o *Ontology) WordEvokes(word, ancestor string) bool {
	c, ok := o.ConceptOf(word)
	if !ok {
		return false
	}
	return o.IsA(c, ancestor)
}

// SetContainment records that a place name lies in the given country code.
func (o *Ontology) SetContainment(place, countryCode string) error {
	norm := text.NormalizeName(place)
	if norm == "" {
		return fmt.Errorf("ontology: empty place name")
	}
	if _, ok := gazetteer.CountryByCode(countryCode); !ok {
		return fmt.Errorf("ontology: unknown country code %q", countryCode)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.contains[norm] = countryCode
	return nil
}

// CountryOf returns the containing country code recorded for a place.
func (o *Ontology) CountryOf(place string) (string, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	c, ok := o.contains[text.NormalizeName(place)]
	return c, ok
}

// LoadContainment derives containment facts from a gazetteer: each distinct
// city name maps to the country of its most populous reference, the same
// "prominence" default GeoNames-based resolvers use.
func (o *Ontology) LoadContainment(g *gazetteer.Gazetteer) {
	best := make(map[string]*gazetteer.Entry)
	g.EachEntry(func(e *gazetteer.Entry) bool {
		if e.Feature != gazetteer.FeatureCity {
			return true
		}
		cur, ok := best[e.NormName]
		if !ok || e.Population > cur.Population {
			best[e.NormName] = e
		}
		return true
	})
	o.mu.Lock()
	defer o.mu.Unlock()
	for norm, e := range best {
		o.contains[norm] = e.Country
	}
}

// Concepts returns all concept names, sorted, mainly for diagnostics.
func (o *Ontology) Concepts() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]string, 0, len(o.concepts))
	for name := range o.concepts {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
