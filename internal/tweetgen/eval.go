package tweetgen

import (
	"strings"

	"repro/internal/ner"
	"repro/internal/text"
)

// PR is a precision/recall pair with its raw counts.
type PR struct {
	Precision float64
	Recall    float64
	TP        int
	FP        int
	FN        int
}

// F1 returns the harmonic mean of precision and recall.
func (p PR) F1() float64 {
	if p.Precision+p.Recall == 0 {
		return 0
	}
	return 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
}

// EvaluateNER scores an entity extractor against the gold entities of a
// labelled corpus (experiment E5). A prediction counts as a true positive
// when its normalised text matches a gold entity of the same type
// (location predictions also match via containment, since "Grand Palace
// Hotel" vs "Grand Palace" is a boundary quibble, not a miss).
func EvaluateNER(msgs []Message, recognise func(string) []ner.Entity) PR {
	var pr PR
	for _, m := range msgs {
		preds := recognise(m.Text)
		goldUsed := make([]bool, len(m.Truth.Entities))
		for _, p := range preds {
			matched := false
			for gi, gold := range m.Truth.Entities {
				if goldUsed[gi] {
					continue
				}
				if entityMatches(p, gold) {
					goldUsed[gi] = true
					matched = true
					break
				}
			}
			if matched {
				pr.TP++
			} else {
				pr.FP++
			}
		}
		for gi := range m.Truth.Entities {
			if !goldUsed[gi] {
				pr.FN++
			}
		}
	}
	if pr.TP+pr.FP > 0 {
		pr.Precision = float64(pr.TP) / float64(pr.TP+pr.FP)
	}
	if pr.TP+pr.FN > 0 {
		pr.Recall = float64(pr.TP) / float64(pr.TP+pr.FN)
	}
	return pr
}

func entityMatches(p ner.Entity, gold TruthEntity) bool {
	if string(p.Type) != gold.Type {
		// Traditional NER types unresolvable names as "person"; count a
		// person-typed span with the right text as a boundary-only match
		// for facilities (it found the name, mistyped it) — still wrong.
		return false
	}
	goldNorm := text.NormalizeName(gold.Text)
	if p.Norm == goldNorm {
		return true
	}
	// Tolerate one-edit noise introduced by the generator's misspelling
	// transform, and containment either way for boundary differences.
	if text.WithinDistance(p.Norm, goldNorm, 1) {
		return true
	}
	return strings.Contains(goldNorm, p.Norm) || strings.Contains(p.Norm, goldNorm)
}

// EvaluateTypes scores a message-type classifier (informative vs request)
// returning accuracy.
func EvaluateTypes(msgs []Message, classify func(string) string) float64 {
	if len(msgs) == 0 {
		return 0
	}
	correct := 0
	for _, m := range msgs {
		if classify(m.Text) == m.Truth.Type {
			correct++
		}
	}
	return float64(correct) / float64(len(msgs))
}

// EvaluateAttitude scores sentiment polarity on opinionated messages,
// returning accuracy over messages with a non-zero gold attitude.
func EvaluateAttitude(msgs []Message, polarity func(string) int) float64 {
	total, correct := 0, 0
	for _, m := range msgs {
		if m.Truth.Attitude == 0 {
			continue
		}
		total++
		if polarity(m.Text) == m.Truth.Attitude {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
