// Package tweetgen generates synthetic labelled tweet/SMS streams for the
// three validation scenarios (tourism, traffic, farming). Each message
// carries ground truth — type, domain, entities, attitude — so extraction
// precision/recall is measurable (experiments E5-E7). A noise model
// injects exactly the ill-behaved phenomena the paper enumerates: dropped
// capitalisation, SMS abbreviations, misspellings, elongations, hashtags
// and exclamation runs.
package tweetgen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/text"
)

// Domain selects a generation scenario.
type Domain string

// Domains.
const (
	DomainTourism Domain = "tourism"
	DomainTraffic Domain = "traffic"
	DomainFarming Domain = "farming"
	DomainMixed   Domain = "mixed"
)

// TruthEntity is one gold entity mention.
type TruthEntity struct {
	Text string
	Type string // "facility" or "location"
}

// Truth is the gold label of one generated message.
type Truth struct {
	Type     string // "informative" or "request"
	Domain   Domain
	Entities []TruthEntity
	// Attitude is +1 positive, -1 negative, 0 neutral/none.
	Attitude int
	// City is the gold location name (its clean form).
	City string
	// Facility is the gold facility name, if any (clean form).
	Facility string
}

// Message is a generated message with its gold labels.
type Message struct {
	Text   string
	Source string
	Truth  Truth
}

// Config parameterises generation.
type Config struct {
	Seed int64
	// Noise in [0, 1]: probability that each noise transform applies.
	Noise float64
	// Domain to generate; DomainMixed rotates scenarios.
	Domain Domain
	// RequestRatio is the fraction of request messages (default 0.2).
	RequestRatio float64
}

// Generator produces labelled messages.
type Generator struct {
	rng *rand.Rand
	cfg Config
}

// New returns a generator. Noise and ratios are clamped to [0, 1].
func New(cfg Config) (*Generator, error) {
	if cfg.Noise < 0 || cfg.Noise > 1 {
		return nil, fmt.Errorf("tweetgen: noise %v outside [0, 1]", cfg.Noise)
	}
	if cfg.RequestRatio == 0 {
		cfg.RequestRatio = 0.2
	}
	if cfg.RequestRatio < 0 || cfg.RequestRatio > 1 {
		return nil, fmt.Errorf("tweetgen: request ratio %v outside [0, 1]", cfg.RequestRatio)
	}
	switch cfg.Domain {
	case DomainTourism, DomainTraffic, DomainFarming, DomainMixed, "":
	default:
		return nil, fmt.Errorf("tweetgen: unknown domain %q", cfg.Domain)
	}
	if cfg.Domain == "" {
		cfg.Domain = DomainMixed
	}
	return &Generator{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}, nil
}

// Cities are the clean location names the generator draws from; they match
// the synthetic gazetteer's anchor cities so extraction can resolve them.
var Cities = []string{
	"Berlin", "Paris", "Cairo", "London", "Amsterdam", "Madrid", "Rome",
	"Nairobi", "Lagos", "Sydney", "Toronto", "Mumbai", "Manila",
}

// Generate returns n labelled messages.
func (g *Generator) Generate(n int) []Message {
	out := make([]Message, 0, n)
	for i := 0; i < n; i++ {
		domain := g.cfg.Domain
		if domain == DomainMixed {
			domain = []Domain{DomainTourism, DomainTraffic, DomainFarming}[i%3]
		}
		var m Message
		isRequest := g.rng.Float64() < g.cfg.RequestRatio
		switch domain {
		case DomainTourism:
			m = g.tourism(isRequest)
		case DomainTraffic:
			m = g.traffic(isRequest)
		default:
			m = g.farming(isRequest)
		}
		m.Source = fmt.Sprintf("user%02d", g.rng.Intn(40))
		m.Text = g.applyNoise(m.Text)
		out = append(out, m)
	}
	return out
}

func (g *Generator) pick(xs []string) string { return xs[g.rng.Intn(len(xs))] }

func (g *Generator) city() string { return g.pick(Cities) }

// hotelName builds a clean facility name ending in a cue word.
func (g *Generator) hotelName() string {
	adj := g.pick([]string{"Grand", "Royal", "Central", "Garden", "Harbour", "Golden", "Park", "Star", "Sunset", "River"})
	noun := g.pick([]string{"Palace", "View", "Plaza", "Crown", "Lion", "Rose", "Gate", "Bridge"})
	cue := g.pick([]string{"Hotel", "Inn", "Hostel", "Resort"})
	return adj + " " + noun + " " + cue
}

func (g *Generator) tourism(isRequest bool) Message {
	city := g.city()
	if isRequest {
		tmpl := g.pick([]string{
			"can anyone recommend a good hotel in %s?",
			"any cheap hotels near %s?",
			"which hotel has the best breakfast in %s?",
			"looking for a clean hostel in %s, tips?",
		})
		return Message{
			Text: fmt.Sprintf(tmpl, city),
			Truth: Truth{
				Type: "request", Domain: DomainTourism, City: city,
				Entities: []TruthEntity{{Text: city, Type: "location"}},
			},
		}
	}
	hotel := g.hotelName()
	positive := g.rng.Float64() < 0.65
	var tmpl string
	att := 1
	if positive {
		tmpl = g.pick([]string{
			"loved the %s in %s, great stay",
			"very impressed by the service at %s in %s",
			"%s in %s has lovely clean rooms, recommended",
			"wonderful breakfast at the %s in %s",
		})
	} else {
		att = -1
		tmpl = g.pick([]string{
			"terrible night at the %s in %s, dirty room",
			"%s in %s was noisy and overpriced, avoid",
			"rude staff at the %s in %s, disappointed",
		})
	}
	return Message{
		Text: fmt.Sprintf(tmpl, hotel, city),
		Truth: Truth{
			Type: "informative", Domain: DomainTourism,
			City: city, Facility: hotel, Attitude: att,
			Entities: []TruthEntity{
				{Text: hotel, Type: "facility"},
				{Text: city, Type: "location"},
			},
		},
	}
}

func (g *Generator) traffic(isRequest bool) Message {
	city := g.city()
	if isRequest {
		tmpl := g.pick([]string{
			"any traffic in %s this morning?",
			"is the road to %s open?",
			"how bad is the jam near %s?",
		})
		return Message{
			Text: fmt.Sprintf(tmpl, city),
			Truth: Truth{
				Type: "request", Domain: DomainTraffic, City: city,
				Entities: []TruthEntity{{Text: city, Type: "location"}},
			},
		}
	}
	tmpl := g.pick([]string{
		"huge traffic jam in %s after the accident",
		"road near %s flooded, take the detour",
		"traffic moving slowly past the checkpoint in %s",
		"accident at the bridge in %s, road blocked",
	})
	return Message{
		Text: fmt.Sprintf(tmpl, city),
		Truth: Truth{
			Type: "informative", Domain: DomainTraffic, City: city, Attitude: -1,
			Entities: []TruthEntity{{Text: city, Type: "location"}},
		},
	}
}

func (g *Generator) farming(isRequest bool) Message {
	city := g.city()
	crop := g.pick([]string{"maize", "wheat", "cassava", "beans", "coffee", "sorghum"})
	if isRequest {
		tmpl := g.pick([]string{
			"how are %s prices at the market in %s?",
			"when should i sow %s near %s?",
			"any locust sightings around %s?",
		})
		txt := fmt.Sprintf(tmpl, crop, city)
		if strings.Count(tmpl, "%s") == 1 {
			txt = fmt.Sprintf(tmpl, city)
		}
		return Message{
			Text: txt,
			Truth: Truth{
				Type: "request", Domain: DomainFarming, City: city,
				Entities: []TruthEntity{{Text: city, Type: "location"}},
			},
		}
	}
	tmpl := g.pick([]string{
		"%s prices up at the market in %s today",
		"blight spotted on %s fields near %s",
		"good rains in %s, sowing %s tomorrow",
		"locust swarm moving towards %s, protect your %s",
	})
	var txt string
	if strings.Index(tmpl, "%s") < strings.LastIndex(tmpl, "%s") &&
		(strings.HasPrefix(tmpl, "good rains") || strings.HasPrefix(tmpl, "locust")) {
		txt = fmt.Sprintf(tmpl, city, crop)
	} else {
		txt = fmt.Sprintf(tmpl, crop, city)
	}
	return Message{
		Text: txt,
		Truth: Truth{
			Type: "informative", Domain: DomainFarming, City: city,
			Entities: []TruthEntity{{Text: city, Type: "location"}},
		},
	}
}

// sms abbreviation substitutions applied by the noise model (forward
// direction of the normaliser's table).
var smsSubs = [][2]string{
	{"be", "b"}, {"you", "u"}, {"your", "ur"}, {"are", "r"},
	{"great", "gr8"}, {"tonight", "2nite"}, {"today", "2day"},
	{"please", "pls"}, {"good", "gd"}, {"very", "vry"}, {"love", "luv"},
	{"near", "nr"}, {"tomorrow", "2moro"},
}

// applyNoise makes a clean message ill-behaved.
func (g *Generator) applyNoise(s string) string {
	noise := g.cfg.Noise
	if noise == 0 {
		return s
	}
	// Lowercase everything: the capitalisation-cue killer.
	if g.rng.Float64() < noise {
		s = strings.ToLower(s)
	}
	// SMS abbreviations.
	if g.rng.Float64() < noise {
		for _, sub := range smsSubs {
			s = replaceWord(s, sub[0], sub[1])
		}
	}
	// Misspell one mid-length word (adjacent transposition).
	if g.rng.Float64() < noise {
		s = g.transposeOneWord(s)
	}
	// Elongate a sentiment-ish word.
	if g.rng.Float64() < noise {
		for _, w := range []string{"love", "loved", "nice", "so", "great", "bad"} {
			if containsWord(s, w) {
				s = replaceWord(s, w, w+strings.Repeat(string(w[len(w)-1]), 3))
				break
			}
		}
	}
	// Trailing exclamations or a hashtag.
	if g.rng.Float64() < noise/2 {
		s += " !!!"
	}
	if g.rng.Float64() < noise/2 {
		s += " #" + strings.ToLower(strings.Fields(s)[0])
	}
	return s
}

// transposeOneWord swaps two adjacent letters inside one word of length
// >= 5 that is not an entity-looking capitalised word.
func (g *Generator) transposeOneWord(s string) string {
	words := strings.Fields(s)
	idxs := g.rng.Perm(len(words))
	for _, i := range idxs {
		w := words[i]
		if len(w) < 5 || strings.ToLower(w) != w {
			continue
		}
		if !text.IsStopword(w) && isAlpha(w) {
			p := 1 + g.rng.Intn(len(w)-2)
			b := []byte(w)
			b[p], b[p+1] = b[p+1], b[p]
			words[i] = string(b)
			return strings.Join(words, " ")
		}
	}
	return s
}

func isAlpha(s string) bool {
	for _, r := range s {
		if r < 'a' || r > 'z' {
			return false
		}
	}
	return true
}

func containsWord(s, w string) bool {
	for _, f := range strings.Fields(strings.ToLower(s)) {
		if strings.Trim(f, ".,!?") == w {
			return true
		}
	}
	return false
}

func replaceWord(s, from, to string) string {
	fields := strings.Fields(s)
	for i, f := range fields {
		trimmed := strings.Trim(f, ".,!?")
		if strings.EqualFold(trimmed, from) {
			fields[i] = strings.Replace(f, trimmed, to, 1)
		}
	}
	return strings.Join(fields, " ")
}
