package tweetgen

import (
	"strings"
	"testing"

	"repro/internal/gazetteer"
	"repro/internal/ner"
	"repro/internal/ontology"
	"repro/internal/sentiment"
)

func TestGeneratorDeterministic(t *testing.T) {
	g1, err := New(Config{Seed: 5, Noise: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(Config{Seed: 5, Noise: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	a := g1.Generate(50)
	b := g2.Generate(50)
	for i := range a {
		if a[i].Text != b[i].Text {
			t.Fatalf("message %d differs: %q vs %q", i, a[i].Text, b[i].Text)
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := New(Config{Noise: -0.1}); err == nil {
		t.Error("negative noise accepted")
	}
	if _, err := New(Config{Noise: 1.1}); err == nil {
		t.Error("noise > 1 accepted")
	}
	if _, err := New(Config{Domain: "cooking"}); err == nil {
		t.Error("unknown domain accepted")
	}
	if _, err := New(Config{RequestRatio: 2}); err == nil {
		t.Error("ratio > 1 accepted")
	}
}

func TestGeneratorLabels(t *testing.T) {
	g, err := New(Config{Seed: 7, Domain: DomainMixed, RequestRatio: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	msgs := g.Generate(300)
	if len(msgs) != 300 {
		t.Fatalf("generated %d", len(msgs))
	}
	var requests, informatives int
	domains := map[Domain]int{}
	for _, m := range msgs {
		switch m.Truth.Type {
		case "request":
			requests++
		case "informative":
			informatives++
		default:
			t.Fatalf("bad type %q", m.Truth.Type)
		}
		domains[m.Truth.Domain]++
		if m.Text == "" || m.Source == "" {
			t.Fatal("empty text or source")
		}
		if len(m.Truth.Entities) == 0 {
			t.Fatalf("no gold entities for %q", m.Text)
		}
		if m.Truth.City == "" {
			t.Fatalf("no gold city for %q", m.Text)
		}
	}
	if requests < 50 || requests > 150 {
		t.Errorf("requests = %d of 300 at ratio 0.3", requests)
	}
	for _, d := range []Domain{DomainTourism, DomainTraffic, DomainFarming} {
		if domains[d] < 50 {
			t.Errorf("domain %s underrepresented: %d", d, domains[d])
		}
	}
}

func TestNoiseZeroKeepsClean(t *testing.T) {
	g, err := New(Config{Seed: 3, Noise: 0, Domain: DomainTourism})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range g.Generate(50) {
		if m.Truth.Facility != "" && !strings.Contains(m.Text, m.Truth.Facility) {
			t.Errorf("clean message lost facility: %q vs %q", m.Text, m.Truth.Facility)
		}
		if strings.Contains(m.Text, "gr8") || strings.Contains(m.Text, "!!!") {
			t.Errorf("noise in clean message: %q", m.Text)
		}
	}
}

func TestNoiseFullDisturbs(t *testing.T) {
	g, err := New(Config{Seed: 3, Noise: 1, Domain: DomainTourism, RequestRatio: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	msgs := g.Generate(50)
	lowercased := 0
	for _, m := range msgs {
		if strings.ToLower(m.Text) == m.Text {
			lowercased++
		}
	}
	// At noise 1 the lowercase transform always applies.
	if lowercased != len(msgs) {
		t.Errorf("only %d/%d messages lowercased at noise 1", lowercased, len(msgs))
	}
}

func newEvalExtractor(t *testing.T) *ner.Extractor {
	t.Helper()
	gaz, err := gazetteer.Synthesize(gazetteer.Config{Names: 500, Seed: 2011})
	if err != nil {
		t.Fatal(err)
	}
	ont := ontology.New()
	ont.LoadContainment(gaz)
	return ner.NewExtractor(gaz, ont)
}

func TestEvaluateNERInformalBeatsTraditionalOnNoise(t *testing.T) {
	// The headline claim (E5): on noisy text, the informal recogniser
	// retains recall while the traditional one collapses.
	x := newEvalExtractor(t)
	g, err := New(Config{Seed: 11, Noise: 1, Domain: DomainTourism, RequestRatio: 0})
	if err != nil {
		t.Fatal(err)
	}
	msgs := g.Generate(150)
	informal := EvaluateNER(msgs, x.ExtractInformal)
	traditional := EvaluateNER(msgs, x.ExtractTraditional)
	if informal.Recall <= traditional.Recall {
		t.Errorf("informal recall %.3f <= traditional %.3f on noisy text",
			informal.Recall, traditional.Recall)
	}
	if traditional.Recall > 0.2 {
		t.Errorf("traditional recall %.3f on fully-noisy text; expected collapse", traditional.Recall)
	}
	if informal.Recall < 0.5 {
		t.Errorf("informal recall %.3f too low on noisy text", informal.Recall)
	}
}

func TestEvaluateNEROnCleanText(t *testing.T) {
	x := newEvalExtractor(t)
	g, err := New(Config{Seed: 11, Noise: 0, Domain: DomainTourism, RequestRatio: 0})
	if err != nil {
		t.Fatal(err)
	}
	msgs := g.Generate(150)
	traditional := EvaluateNER(msgs, x.ExtractTraditional)
	if traditional.Recall < 0.6 {
		t.Errorf("traditional recall %.3f on clean text; should be respectable", traditional.Recall)
	}
	informal := EvaluateNER(msgs, x.ExtractInformal)
	if informal.F1() < 0.6 {
		t.Errorf("informal F1 %.3f on clean text", informal.F1())
	}
}

func TestEvaluateTypesAndAttitude(t *testing.T) {
	g, err := New(Config{Seed: 13, Noise: 0.3, Domain: DomainTourism, RequestRatio: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	msgs := g.Generate(100)
	// A trivial classifier keyed on the question mark scores well above
	// chance, confirming labels are coherent.
	acc := EvaluateTypes(msgs, func(s string) string {
		if strings.Contains(s, "?") {
			return "request"
		}
		return "informative"
	})
	if acc < 0.9 {
		t.Errorf("question-mark classifier accuracy = %v", acc)
	}
	att := EvaluateAttitude(msgs, sentiment.Polarity)
	if att < 0.8 {
		t.Errorf("sentiment accuracy = %v on generated opinions", att)
	}
	if got := EvaluateTypes(nil, nil); got != 0 {
		t.Errorf("empty corpus accuracy = %v", got)
	}
}

func TestPRF1(t *testing.T) {
	pr := PR{Precision: 0.5, Recall: 1}
	if f := pr.F1(); f < 0.66 || f > 0.67 {
		t.Errorf("F1 = %v", f)
	}
	if (PR{}).F1() != 0 {
		t.Error("zero PR F1 != 0")
	}
}
