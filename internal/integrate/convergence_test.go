package integrate

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/extract"
	"repro/internal/kb"
	"repro/internal/pxml"
	"repro/internal/uncertain"
	"repro/internal/xmldb"
)

// TestIntegrationConvergence is experiment E7 in miniature: on a stream
// where 30% of reports come from systematically unreliable sources,
// uncertainty-aware integration must converge to the ground truth while
// naive last-write-wins stays pinned near the contradiction rate.
func TestIntegrationConvergence(t *testing.T) {
	names := []string{"Azure Palace", "Crimson Lodge", "Elysian Retreat",
		"Falcon Towers", "Gilded Courtyard", "Harbour Manor",
		"Ivory Pavilion", "Juniper Terrace", "Kestrel Springs", "Lakeside Villa"}
	truth := make([]string, len(names))
	for i := range truth {
		if i%2 == 0 {
			truth[i] = "Positive"
		} else {
			truth[i] = "Negative"
		}
	}

	probDB, naiveDB := xmldb.New(), xmldb.New()
	prob, err := NewService(kb.New(), probDB)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewService(kb.New(), naiveDB)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(2011))
	base := time.Unix(1_300_000_000, 0)
	const stream = 600
	for sent := 1; sent <= stream; sent++ {
		h := rng.Intn(len(names))
		reported, source := truth[h], fmt.Sprintf("citizen%d", rng.Intn(8))
		if rng.Float64() < 0.3 {
			reported, source = oppositeAttitude(truth[h]), fmt.Sprintf("troll%d", rng.Intn(3))
		}
		tpl := attitudeTemplate(names[h], reported, source, base.Add(time.Duration(sent)*time.Minute))
		if _, err := prob.Integrate(tpl); err != nil {
			t.Fatalf("integrate #%d: %v", sent, err)
		}
		if _, err := naive.IntegrateNaive(tpl); err != nil {
			t.Fatalf("integrate naive #%d: %v", sent, err)
		}
	}

	probAcc := attitudeAccuracy(t, probDB, names, truth)
	naiveAcc := attitudeAccuracy(t, naiveDB, names, truth)
	if probAcc < 0.9 {
		t.Errorf("probabilistic integration accuracy = %.2f, want >= 0.9", probAcc)
	}
	// Naive overwrite tracks the last report per entity; with a 30%
	// contradiction rate it cannot be reliably correct. Guard the gap,
	// not an exact value, to keep the test robust to stream reshuffles.
	if naiveAcc >= probAcc {
		t.Errorf("naive accuracy %.2f >= probabilistic %.2f; expected a gap", naiveAcc, probAcc)
	}
}

func oppositeAttitude(att string) string {
	if att == "Positive" {
		return "Negative"
	}
	return "Positive"
}

func attitudeTemplate(hotel, attitude, source string, at time.Time) extract.Template {
	d := uncertain.NewDist()
	if err := d.Add(attitude, 0.9); err != nil {
		panic(err)
	}
	if err := d.Add(oppositeAttitude(attitude), 0.1); err != nil {
		panic(err)
	}
	return extract.Template{
		Domain:    "tourism",
		RecordTag: "Hotel",
		Fields: map[string]extract.FieldValue{
			"Hotel_Name":    {Kind: kb.FieldText, Text: hotel, CF: 0.9},
			"User_Attitude": {Kind: kb.FieldAttitude, Dist: d, CF: 0.8},
		},
		Certainty: 0.5,
		Source:    source,
		Extracted: at,
	}
}

func attitudeAccuracy(t *testing.T, db *xmldb.DB, names, truth []string) float64 {
	t.Helper()
	correct := 0
	for i := range names {
		var top string
		db.Each("Hotels", func(r *xmldb.Record) bool {
			for _, m := range pxml.FindAll(r.Doc, "/Hotel/Hotel_Name") {
				if m.Node.TextContent() != names[i] {
					continue
				}
				for _, f := range pxml.FindAll(r.Doc, "/Hotel/User_Attitude") {
					if alt, ok := extract.MuxToDist(f.Node).Top(); ok {
						top = alt.Name
					}
				}
				return false
			}
			return true
		})
		if top == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(names))
}

// conditionTemplate builds a traffic report with an explicit Condition
// distribution and observation time — the shape fillEvent produces when a
// message carries a temporal expression ("flooded this morning").
func conditionTemplate(place, condition, source string, observed time.Time) extract.Template {
	d := uncertain.NewDist()
	if err := d.Add(condition, 0.9); err != nil {
		panic(err)
	}
	return extract.Template{
		Domain:    "traffic",
		RecordTag: "RoadReport",
		Fields: map[string]extract.FieldValue{
			"Place":     {Kind: kb.FieldText, Text: place, CF: 0.9},
			"Condition": {Kind: kb.FieldDist, Dist: d, CF: 0.8},
		},
		Certainty: 0.6,
		Source:    source,
		Extracted: observed,
	}
}

func topCondition(t *testing.T, db *xmldb.DB, id int64) string {
	t.Helper()
	rec, ok := db.Get("RoadReports", id)
	if !ok {
		t.Fatalf("record %d missing", id)
	}
	n, _ := rec.Doc.FirstChild("Condition")
	if n == nil {
		t.Fatal("no Condition field")
	}
	top, ok := extract.MuxToDist(n).Top()
	if !ok {
		t.Fatal("empty Condition distribution")
	}
	return top.Name
}

// TestNewestWinsByObservationTime: under the newest-wins policy the report
// with the LATER observation time wins, independent of arrival order —
// "the validation of the information over time" (paper §uncertainty).
func TestNewestWinsByObservationTime(t *testing.T) {
	base := time.Date(2011, 4, 1, 8, 0, 0, 0, time.UTC)

	t.Run("fresh report supersedes", func(t *testing.T) {
		db := xmldb.New()
		s, err := NewService(kb.New(), db)
		if err != nil {
			t.Fatal(err)
		}
		first, err := s.Integrate(conditionTemplate("Nairobi station", "jam", "a", base))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Integrate(conditionTemplate("Nairobi station", "clear", "b", base.Add(4*time.Hour)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Action != ActionMerged || res.RecordID != first.RecordID {
			t.Fatalf("second report: %+v, want merge into %d", res, first.RecordID)
		}
		if got := topCondition(t, db, first.RecordID); got != "clear" {
			t.Errorf("condition = %q, want the fresher \"clear\"", got)
		}
	})

	t.Run("stale report is ignored", func(t *testing.T) {
		db := xmldb.New()
		s, err := NewService(kb.New(), db)
		if err != nil {
			t.Fatal(err)
		}
		first, err := s.Integrate(conditionTemplate("Nairobi station", "clear", "a", base.Add(4*time.Hour)))
		if err != nil {
			t.Fatal(err)
		}
		// This morning's jam arrives late; the road is clear now.
		if _, err := s.Integrate(conditionTemplate("Nairobi station", "jam", "b", base)); err != nil {
			t.Fatal(err)
		}
		if got := topCondition(t, db, first.RecordID); got != "clear" {
			t.Errorf("condition = %q, stale report clobbered fresh state", got)
		}
	})
}

// TestObservedAtStamping: records carry the latest observation time.
func TestObservedAtStamping(t *testing.T) {
	base := time.Date(2011, 4, 1, 8, 0, 0, 0, time.UTC)
	db := xmldb.New()
	s, err := NewService(kb.New(), db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Integrate(conditionTemplate("Mombasa road", "jam", "a", base))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Integrate(conditionTemplate("Mombasa road", "clear", "b", base.Add(time.Hour))); err != nil {
		t.Fatal(err)
	}
	rec, _ := db.Get("RoadReports", res.RecordID)
	if got := observedAt(rec.Doc); !got.Equal(base.Add(time.Hour)) {
		t.Errorf("Observed_At = %v, want %v", got, base.Add(time.Hour))
	}
}
