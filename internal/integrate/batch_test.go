package integrate

import (
	"testing"
	"time"

	"repro/internal/extract"
	"repro/internal/kb"
	"repro/internal/uncertain"
	"repro/internal/xmldb"
)

func batchTemplate(name, attitude, source string, at time.Time) extract.Template {
	d := uncertain.NewDist()
	_ = d.Add(attitude, 0.9)
	return extract.Template{
		Domain:    "tourism",
		RecordTag: "Hotel",
		Fields: map[string]extract.FieldValue{
			"Hotel_Name":    {Kind: kb.FieldText, Text: name, CF: 0.9},
			"User_Attitude": {Kind: kb.FieldAttitude, Dist: d, CF: 0.8},
		},
		Certainty: 0.5,
		Source:    source,
		Extracted: at,
	}
}

// IntegrateBatch must match per-call Integrate semantics: same entity
// merges, distinct entities insert, and a bad template fails alone without
// poisoning the rest of the batch.
func TestIntegrateBatchMatchesSequential(t *testing.T) {
	now := time.Unix(1_300_000_000, 0)
	tpls := []extract.Template{
		batchTemplate("Azure Palace", "Positive", "alice", now),
		batchTemplate("Crimson Lodge", "Negative", "bob", now.Add(time.Minute)),
		batchTemplate("Azure Palace", "Positive", "carol", now.Add(2*time.Minute)),
		{Domain: "no-such-domain"},
	}

	db := xmldb.New()
	svc, err := NewService(kb.New(), db)
	if err != nil {
		t.Fatal(err)
	}
	results := svc.IntegrateBatch(tpls)
	if len(results) != len(tpls) {
		t.Fatalf("got %d results, want %d", len(results), len(tpls))
	}
	wantActions := []Action{ActionInserted, ActionInserted, ActionMerged}
	for i, want := range wantActions {
		if results[i].Err != nil {
			t.Fatalf("template %d: %v", i, results[i].Err)
		}
		if results[i].Result.Action != want {
			t.Fatalf("template %d action = %s, want %s", i, results[i].Result.Action, want)
		}
	}
	if results[3].Err == nil {
		t.Fatal("bad template integrated without error")
	}
	if got := db.Len("Hotels"); got != 2 {
		t.Fatalf("Hotels len = %d, want 2", got)
	}

	// The same stream integrated one call at a time lands in the same state.
	seqDB := xmldb.New()
	seq, err := NewService(kb.New(), seqDB)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range wantActions {
		res, err := seq.Integrate(tpls[i])
		if err != nil {
			t.Fatalf("sequential template %d: %v", i, err)
		}
		if res.Action != want {
			t.Fatalf("sequential template %d action = %s, want %s", i, res.Action, want)
		}
	}
	if got := seqDB.Len("Hotels"); got != db.Len("Hotels") {
		t.Fatalf("sequential len = %d, batch len = %d", got, db.Len("Hotels"))
	}
}
