// Package integrate is the paper's Data Integration (DI) service: it
// merges freshly extracted templates with the information already in the
// probabilistic spatial XML database, "finds the conflicting facts, and
// tries to resolve such conflicts using the knowledgebase independently of
// the user by assigning several levels of certainty to each new piece of
// information".
//
// Duplicate detection matches the template's key field against stored
// records (normalised, misspelling-tolerant, optionally location-blocked);
// field-level conflicts resolve per the KB's policies (distribution
// pooling, trust-weighted choice, newest-wins); record certainty evolves
// by MYCIN combination of trust-attenuated evidence; and source trust is
// fed back from agreement and contradiction.
package integrate

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/extract"
	"repro/internal/geo"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/pxml"
	"repro/internal/text"
	"repro/internal/uncertain"
	"repro/internal/xmldb"
)

// Integration outcome counters: inserts create records, merges fold a
// report into an existing one — their ratio is the live view of the
// duplicate-detection behavior the EXPERIMENTS tables measure offline.
var (
	mActionsTotal = obs.Default().Counter("neogeo_integrate_actions_total",
		"Template integrations by action.", "action")
	actInserted = mActionsTotal.With("inserted")
	actMerged   = mActionsTotal.With("merged")
	actErrored  = mActionsTotal.With("error")
)

// Service is the DI module. Integrate, IntegrateNaive, IntegrateBatch and
// Decay are safe for concurrent use: each runs as one atomic database
// batch, so find-duplicate-then-update sequences cannot interleave.
type Service struct {
	kb *kb.KB
	db *xmldb.DB
	// MatchThreshold is the minimum name similarity treated as the same
	// entity (default 0.75).
	MatchThreshold float64
	// BlockRadiusMeters restricts duplicate candidates to this distance
	// when both sides have locations (default 50 km).
	BlockRadiusMeters float64
}

// Store is the slice of the database API integration needs; *xmldb.DB,
// the batched *xmldb.Tx and the sharded shard.Store all satisfy it, so
// the same merge logic runs per-call, amortized under one lock
// acquisition, or routed across partitions.
type Store interface {
	Insert(collection string, doc *pxml.Node, certainty uncertain.CF, loc *geo.Point) (*xmldb.Record, error)
	Update(collection string, id int64, doc *pxml.Node, certainty uncertain.CF, newLoc *geo.Point) error
	Get(collection string, id int64) (*xmldb.Record, bool)
	Each(collection string, fn func(*xmldb.Record) bool)
	Near(collection string, p geo.Point, radiusMeters float64) []int64
	Delete(collection string, id int64) error
}

// NewService wires the DI service.
func NewService(k *kb.KB, db *xmldb.DB) (*Service, error) {
	if k == nil || db == nil {
		return nil, fmt.Errorf("integrate: nil dependency")
	}
	return &Service{
		kb:                k,
		db:                db,
		MatchThreshold:    0.75,
		BlockRadiusMeters: 50000,
	}, nil
}

// Action says what integration did with a template.
type Action string

// Actions.
const (
	ActionInserted Action = "inserted"
	ActionMerged   Action = "merged"
)

// Conflict records one field-level disagreement that integration resolved.
type Conflict struct {
	Field    string
	Stored   string
	Incoming string
	Kept     string
}

// Result reports one integration.
type Result struct {
	Action    Action
	RecordID  int64
	Conflicts []Conflict
}

// Integrate merges one extracted template into the database.
func (s *Service) Integrate(tpl extract.Template) (*Result, error) {
	var res *Result
	err := s.db.Batch(func(tx *xmldb.Tx) error {
		var err error
		res, err = s.integrateIn(tx, tpl)
		return err
	})
	return res, err
}

// BatchResult pairs one template's integration outcome with its error.
type BatchResult struct {
	Result *Result
	Err    error
}

// IntegrateBatch merges a run of independent templates under a single
// database lock acquisition. Each template integrates independently; one
// failing template does not stop the rest. (The coordinator's pipeline
// uses IntegrateGroups instead, which preserves per-message ordering.)
func (s *Service) IntegrateBatch(tpls []extract.Template) []BatchResult {
	groups := make([][]extract.Template, len(tpls))
	for i, tpl := range tpls {
		groups[i] = []extract.Template{tpl}
	}
	out := make([]BatchResult, len(tpls))
	for i, group := range s.IntegrateGroups(groups) {
		out[i] = group[0]
	}
	return out
}

// IntegrateGroups merges several independent template groups (one group
// per source message) under a single database lock acquisition. Within a
// group templates integrate in order and the group stops at its first
// error — the same partial-application semantics as integrating a
// message's templates one call at a time — while a failing group never
// stops the others. Results are positionally parallel to groups, short
// where a group stopped early.
func (s *Service) IntegrateGroups(groups [][]extract.Template) [][]BatchResult {
	out := make([][]BatchResult, len(groups))
	_ = s.db.Batch(func(tx *xmldb.Tx) error {
		for gi, group := range groups {
			results := make([]BatchResult, 0, len(group))
			for _, tpl := range group {
				res, err := s.integrateIn(tx, tpl)
				results = append(results, BatchResult{Result: res, Err: err})
				if err != nil {
					break
				}
			}
			out[gi] = results
		}
		return nil
	})
	return out
}

func (s *Service) integrateIn(st Store, tpl extract.Template) (*Result, error) {
	res, err := s.integrateOne(st, tpl)
	switch {
	case err != nil:
		actErrored.Inc()
	case res.Action == ActionInserted:
		actInserted.Inc()
	case res.Action == ActionMerged:
		actMerged.Inc()
	}
	return res, err
}

func (s *Service) integrateOne(st Store, tpl extract.Template) (*Result, error) {
	domain, ok := s.kb.Domain(tpl.Domain)
	if !ok {
		return nil, fmt.Errorf("integrate: unknown domain %q", tpl.Domain)
	}
	key, ok := tpl.Fields[domain.KeyField]
	if !ok || key.Text == "" {
		return nil, fmt.Errorf("integrate: template missing key field %s", domain.KeyField)
	}
	existing := s.findDuplicate(st, domain, tpl)
	if existing == nil {
		return s.insert(st, domain, tpl)
	}
	return s.merge(st, domain, existing, tpl)
}

// IntegrateNaive is the last-write-wins baseline for experiment E7: no
// duplicate merging beyond key equality, no distribution pooling, no
// trust — the incoming template simply replaces the stored record.
func (s *Service) IntegrateNaive(tpl extract.Template) (*Result, error) {
	var res *Result
	err := s.db.Batch(func(tx *xmldb.Tx) error {
		var err error
		res, err = s.integrateNaiveIn(tx, tpl)
		return err
	})
	return res, err
}

func (s *Service) integrateNaiveIn(st Store, tpl extract.Template) (*Result, error) {
	domain, ok := s.kb.Domain(tpl.Domain)
	if !ok {
		return nil, fmt.Errorf("integrate: unknown domain %q", tpl.Domain)
	}
	existing := s.findDuplicate(st, domain, tpl)
	doc, err := tpl.ToDoc()
	if err != nil {
		return nil, err
	}
	if existing == nil {
		rec, err := st.Insert(domain.Collection, doc, tpl.Certainty, tpl.Location)
		if err != nil {
			return nil, err
		}
		return &Result{Action: ActionInserted, RecordID: rec.ID}, nil
	}
	if err := st.Update(domain.Collection, existing.ID, doc, tpl.Certainty, tpl.Location); err != nil {
		return nil, err
	}
	return &Result{Action: ActionMerged, RecordID: existing.ID}, nil
}

// findDuplicate scans the domain collection for a record whose key field
// names the same entity, using location blocking when available.
func (s *Service) findDuplicate(st Store, domain kb.Domain, tpl extract.Template) *xmldb.Record {
	keyText := text.NormalizeName(tpl.Fields[domain.KeyField].Text)
	var best *xmldb.Record
	bestSim := s.MatchThreshold
	consider := func(rec *xmldb.Record) {
		stored, ok := recordKey(rec, domain.KeyField)
		if !ok {
			return
		}
		sim := nameSimilarity(keyText, stored)
		if sim >= bestSim {
			// Location veto: same name far away is a different entity.
			if tpl.Location != nil && rec.Location != nil &&
				tpl.Location.DistanceMeters(*rec.Location) > s.BlockRadiusMeters {
				return
			}
			best, bestSim = rec, sim
		}
	}
	if tpl.Location != nil {
		for _, id := range st.Near(domain.Collection, *tpl.Location, s.BlockRadiusMeters) {
			if rec, ok := st.Get(domain.Collection, id); ok {
				consider(rec)
			}
		}
		// Also consider location-less records by name.
		st.Each(domain.Collection, func(rec *xmldb.Record) bool {
			if rec.Location == nil {
				consider(rec)
			}
			return true
		})
		return best
	}
	st.Each(domain.Collection, func(rec *xmldb.Record) bool {
		consider(rec)
		return true
	})
	return best
}

// nameSimilarity blends token-set and edit similarity, so both "Hotel
// Essex House"/"Essex House Hotel" and "movenpick"/"movenpik" match.
func nameSimilarity(a, b string) float64 {
	if a == b {
		return 1
	}
	return math.Max(text.JaccardTokens(a, b), text.Similarity(a, b))
}

// recordKey reads the normalised key field of a stored record.
func recordKey(rec *xmldb.Record, field string) (string, bool) {
	n, _ := rec.Doc.FirstChild(field)
	if n == nil {
		return "", false
	}
	v := n.TextContent()
	if v == "" {
		return "", false
	}
	return text.NormalizeName(v), true
}

func (s *Service) insert(st Store, domain kb.Domain, tpl extract.Template) (*Result, error) {
	doc, err := tpl.ToDoc()
	if err != nil {
		return nil, err
	}
	setObservedAt(doc, tpl.Extracted)
	addSourceTrace(doc, tpl.Source)
	cf := uncertain.Attenuate(tpl.Certainty, s.kb.Trust().Reliability(tpl.Source))
	rec, err := st.Insert(domain.Collection, doc, cf, tpl.Location)
	if err != nil {
		return nil, err
	}
	return &Result{Action: ActionInserted, RecordID: rec.ID}, nil
}

// merge folds the template into an existing record field by field.
func (s *Service) merge(st Store, domain kb.Domain, rec *xmldb.Record, tpl extract.Template) (*Result, error) {
	res := &Result{Action: ActionMerged, RecordID: rec.ID}
	trust := s.kb.Trust().Reliability(tpl.Source)
	doc := rec.Doc.Clone()
	agreed, contradicted := 0, 0
	// newest-wins compares observation times (the "when" of W4), so a
	// late-arriving report about an older state cannot clobber fresher
	// information. Records integrated before observation stamping exist
	// only in tests; their zero time makes any incoming report newer.
	storedObs := observedAt(doc)
	incomingNewer := !tpl.Extracted.Before(storedObs)

	for _, spec := range domain.Fields {
		fv, ok := tpl.Fields[spec.Name]
		if !ok {
			continue
		}
		// Key-field agreement is how the duplicate was found; it carries
		// no corroboration signal.
		trivial := spec.Name == domain.KeyField
		node, _ := doc.FirstChild(spec.Name)
		switch spec.Kind {
		case kb.FieldDist, kb.FieldAttitude:
			if fv.Dist == nil {
				continue
			}
			if node == nil {
				mux, err := extract.DistToMux(fv.Dist)
				if err != nil {
					continue
				}
				doc.Add(pxml.Elem(spec.Name, mux))
				continue
			}
			stored := extract.MuxToDist(node)
			storedTop, _ := stored.Top()
			newTop, _ := fv.Dist.Top()
			if storedTop.Name != "" && newTop.Name != "" {
				if storedTop.Name == newTop.Name {
					if !trivial {
						agreed++
					}
				} else {
					contradicted++
					res.Conflicts = append(res.Conflicts, Conflict{
						Field: spec.Name, Stored: storedTop.Name,
						Incoming: newTop.Name,
					})
				}
			}
			// State-like distributions (traffic Condition) replace under
			// newest-wins: the road being clear *now* supersedes this
			// morning's jam rather than pooling with it. Stale incoming
			// reports leave the stored state untouched.
			var merged *uncertain.Dist
			if spec.Policy == kb.PolicyNewest {
				if incomingNewer {
					merged = fv.Dist.Clone()
				} else {
					merged = stored.Clone()
				}
			} else {
				merged = stored.Clone()
				if err := merged.Merge(fv.Dist, trust); err != nil {
					return nil, err
				}
			}
			mux, err := extract.DistToMux(merged)
			if err != nil {
				return nil, err
			}
			node.Children = []*pxml.Node{mux}
			if len(res.Conflicts) > 0 {
				c := &res.Conflicts[len(res.Conflicts)-1]
				if c.Field == spec.Name && c.Kept == "" {
					if top, ok := merged.Top(); ok {
						c.Kept = top.Name
					}
				}
			}
		case kb.FieldText, kb.FieldLocation, kb.FieldNumber:
			incoming := fv.Text
			if spec.Kind == kb.FieldNumber {
				incoming = strconv.FormatFloat(fv.Num, 'g', -1, 64)
			}
			if node == nil {
				doc.Add(pxml.ElemText(spec.Name, incoming))
				continue
			}
			stored := node.TextContent()
			if valuesEqual(spec.Kind, stored, incoming) {
				if !trivial {
					agreed++
				}
				continue
			}
			contradicted++
			kept := stored
			switch spec.Policy {
			case kb.PolicyNewest:
				if incomingNewer {
					kept = incoming
				}
			case kb.PolicyTrustWeighted:
				// Replace only when the incoming trust-weighted certainty
				// beats the record's standing certainty.
				incomingCF := uncertain.Attenuate(fv.CF, trust)
				if float64(incomingCF) > float64(rec.Certainty) {
					kept = incoming
				}
			}
			if kept != stored {
				node.Children = []*pxml.Node{pxml.Text(kept)}
			}
			res.Conflicts = append(res.Conflicts, Conflict{
				Field: spec.Name, Stored: stored, Incoming: incoming, Kept: kept,
			})
		}
	}

	// Trust feedback: contradicting an established fact is the rarer,
	// more diagnostic event, so any contradiction counts against the
	// source; corroboration counts for it only on conflict-free merges.
	if contradicted > 0 {
		s.kb.Trust().Contradict(tpl.Source)
	} else if agreed > 0 {
		s.kb.Trust().Confirm(tpl.Source)
	}

	// Record certainty: MYCIN-combine the standing certainty with the new
	// trust-attenuated evidence. Contradictory messages contribute
	// (weak) negative evidence.
	evidence := uncertain.Attenuate(tpl.Certainty, trust)
	if contradicted > agreed {
		evidence = uncertain.Attenuate(-evidence, 0.5)
	}
	newCF := uncertain.Combine(rec.Certainty, evidence)

	if incomingNewer {
		setObservedAt(doc, tpl.Extracted)
	}
	addSourceTrace(doc, tpl.Source)

	// A nil location leaves the stored one untouched (xmldb semantics).
	if err := st.Update(domain.Collection, rec.ID, doc, newCF, tpl.Location); err != nil {
		return nil, err
	}
	return res, nil
}

func valuesEqual(kind kb.FieldKind, a, b string) bool {
	if kind == kb.FieldNumber {
		fa, errA := strconv.ParseFloat(a, 64)
		fb, errB := strconv.ParseFloat(b, 64)
		if errA == nil && errB == nil {
			return fa == fb
		}
	}
	return text.NormalizeName(a) == text.NormalizeName(b)
}

// Decay ages a collection's certainty factors: each record's CF is scaled
// by decayPerDay^(days since update), implementing "the validation of the
// information over time. Geographical information is dynamic … always
// changing over time". Records whose certainty drops below floor are
// deleted. It returns (decayed, deleted).
func (s *Service) Decay(collection string, now time.Time, floor uncertain.CF) (int, int, error) {
	type change struct {
		id  int64
		doc *pxml.Node
		cf  uncertain.CF
		loc *geo.Point
		del bool
	}
	var changes []change
	rate := s.kb.DecayPerDay()
	decayed, deleted := 0, 0
	err := s.db.Batch(func(tx *xmldb.Tx) error {
		tx.Each(collection, func(rec *xmldb.Record) bool {
			days := now.Sub(rec.Updated).Hours() / 24
			if days <= 0 {
				return true
			}
			factor := math.Pow(rate, days)
			cf := uncertain.Attenuate(rec.Certainty, factor)
			changes = append(changes, change{
				id: rec.ID, doc: rec.Doc, cf: cf, loc: rec.Location,
				del: float64(cf) < float64(floor),
			})
			return true
		})
		for _, c := range changes {
			if c.del {
				if err := tx.Delete(collection, c.id); err != nil {
					return err
				}
				deleted++
				continue
			}
			if err := tx.Update(collection, c.id, c.doc, c.cf, c.loc); err != nil {
				return err
			}
			decayed++
		}
		return nil
	})
	return decayed, deleted, err
}

// observedAtField is the document element carrying the record's
// observation timestamp (the latest "when" integrated into it).
const observedAtField = "Observed_At"

// setObservedAt stamps (or replaces) the document's observation time.
func setObservedAt(doc *pxml.Node, t time.Time) {
	stamp := t.UTC().Format(time.RFC3339Nano)
	if n, _ := doc.FirstChild(observedAtField); n != nil {
		n.Children = []*pxml.Node{pxml.Text(stamp)}
		return
	}
	doc.Add(pxml.ElemText(observedAtField, stamp))
}

// SourceTraceField is the document element recording which sources
// contributed evidence to the record — the per-record provenance the
// feedback subsystem needs to credit or blame the right users when a
// human verdict arrives about an answer. Stored as a comma-joined
// sorted set, capped so a viral entity cannot grow its record without
// bound.
const SourceTraceField = "Source_Trace"

// maxTraceSources caps the per-record provenance set.
const maxTraceSources = 16

// addSourceTrace folds one contributing source into the document's
// provenance set.
func addSourceTrace(doc *pxml.Node, source string) {
	source = strings.TrimSpace(source)
	if source == "" {
		return
	}
	existing := TraceSources(doc)
	for _, s := range existing {
		if s == source {
			return
		}
	}
	if len(existing) >= maxTraceSources {
		return
	}
	existing = append(existing, source)
	sort.Strings(existing)
	joined := strings.Join(existing, ",")
	if n, _ := doc.FirstChild(SourceTraceField); n != nil {
		n.Children = []*pxml.Node{pxml.Text(joined)}
		return
	}
	doc.Add(pxml.ElemText(SourceTraceField, joined))
}

// TraceSources reads a record's contributing sources (empty for records
// integrated before provenance stamping existed).
func TraceSources(doc *pxml.Node) []string {
	n, _ := doc.FirstChild(SourceTraceField)
	if n == nil {
		return nil
	}
	raw := strings.Split(n.TextContent(), ",")
	out := make([]string, 0, len(raw))
	for _, s := range raw {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// observedAt reads the document's observation time; the zero time when the
// document carries none or it fails to parse.
func observedAt(doc *pxml.Node) time.Time {
	n, _ := doc.FirstChild(observedAtField)
	if n == nil {
		return time.Time{}
	}
	t, err := time.Parse(time.RFC3339Nano, n.TextContent())
	if err != nil {
		return time.Time{}
	}
	return t
}
