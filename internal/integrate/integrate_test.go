package integrate

import (
	"testing"
	"time"

	"repro/internal/extract"
	"repro/internal/geo"
	"repro/internal/kb"
	"repro/internal/pxml"
	"repro/internal/uncertain"
	"repro/internal/xmldb"
)

var (
	berlinPt = geo.Point{Lat: 52.52, Lon: 13.405}
	t0       = time.Date(2011, 4, 1, 9, 0, 0, 0, time.UTC)
)

func hotelTemplate(name, source string, pGermany, pPositive float64, cf uncertain.CF) extract.Template {
	country := uncertain.NewDist()
	_ = country.Set("Germany", pGermany)
	_ = country.Set("United States", 1-pGermany)
	att := uncertain.NewDist()
	_ = att.Set("Positive", pPositive)
	_ = att.Set("Negative", 1-pPositive)
	loc := berlinPt
	return extract.Template{
		Domain:    "tourism",
		RecordTag: "Hotel",
		Source:    source,
		Extracted: t0,
		Certainty: cf,
		Location:  &loc,
		Fields: map[string]extract.FieldValue{
			"Hotel_Name":    {Kind: kb.FieldText, Text: name, CF: 0.7},
			"Location":      {Kind: kb.FieldLocation, Text: "Berlin", CF: 0.7},
			"Country":       {Kind: kb.FieldDist, Dist: country, CF: 0.6},
			"User_Attitude": {Kind: kb.FieldAttitude, Dist: att, CF: 0.5},
		},
	}
}

func newService(t *testing.T) (*Service, *xmldb.DB, *kb.KB) {
	t.Helper()
	k := kb.New()
	db := xmldb.New()
	s, err := NewService(k, db)
	if err != nil {
		t.Fatal(err)
	}
	return s, db, k
}

func TestIntegrateInsertsNovel(t *testing.T) {
	s, db, _ := newService(t)
	res, err := s.Integrate(hotelTemplate("Axel Hotel", "alice", 0.8, 0.9, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionInserted {
		t.Fatalf("action = %s", res.Action)
	}
	if db.Len("Hotels") != 1 {
		t.Fatalf("records = %d", db.Len("Hotels"))
	}
	rec, _ := db.Get("Hotels", res.RecordID)
	if rec.Certainty <= 0 {
		t.Errorf("certainty = %v", rec.Certainty)
	}
	if rec.Location == nil {
		t.Error("location not stored")
	}
}

func TestIntegrateMergesDuplicate(t *testing.T) {
	s, db, _ := newService(t)
	first, err := s.Integrate(hotelTemplate("Axel Hotel", "alice", 0.8, 0.9, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	// Word-order variant + agreement strengthens the record.
	recBefore, _ := db.Get("Hotels", first.RecordID)
	cfBefore := recBefore.Certainty
	res, err := s.Integrate(hotelTemplate("Hotel Axel", "bob", 0.85, 0.95, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionMerged {
		t.Fatalf("action = %s", res.Action)
	}
	if res.RecordID != first.RecordID {
		t.Error("merged into a different record")
	}
	if db.Len("Hotels") != 1 {
		t.Fatalf("records = %d after merge", db.Len("Hotels"))
	}
	rec, _ := db.Get("Hotels", first.RecordID)
	if rec.Certainty <= cfBefore {
		t.Errorf("agreement did not raise certainty: %v -> %v", cfBefore, rec.Certainty)
	}
}

func TestIntegrateDistinctHotelsStaySeparate(t *testing.T) {
	s, db, _ := newService(t)
	if _, err := s.Integrate(hotelTemplate("Axel Hotel", "alice", 0.8, 0.9, 0.6)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Integrate(hotelTemplate("Movenpick Hotel", "bob", 0.8, 0.9, 0.6)); err != nil {
		t.Fatal(err)
	}
	if db.Len("Hotels") != 2 {
		t.Fatalf("records = %d, want 2", db.Len("Hotels"))
	}
}

func TestIntegrateSameNameFarAwayStaysSeparate(t *testing.T) {
	s, db, _ := newService(t)
	if _, err := s.Integrate(hotelTemplate("Grand Hotel", "alice", 0.8, 0.9, 0.6)); err != nil {
		t.Fatal(err)
	}
	far := hotelTemplate("Grand Hotel", "bob", 0.2, 0.9, 0.6)
	sydney := geo.Point{Lat: -33.87, Lon: 151.21}
	far.Location = &sydney
	res, err := s.Integrate(far)
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionInserted {
		t.Errorf("far-away same-name hotel merged")
	}
	if db.Len("Hotels") != 2 {
		t.Errorf("records = %d, want 2", db.Len("Hotels"))
	}
}

func TestIntegrateConflictPoolsDistribution(t *testing.T) {
	s, db, _ := newService(t)
	first, err := s.Integrate(hotelTemplate("Essex House", "alice", 0.9, 0.9, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	// Bob claims the attitude is negative: conflict recorded, both pooled.
	res, err := s.Integrate(hotelTemplate("Essex House", "bob", 0.9, 0.1, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	foundConflict := false
	for _, c := range res.Conflicts {
		if c.Field == "User_Attitude" {
			foundConflict = true
		}
	}
	if !foundConflict {
		t.Errorf("attitude conflict not recorded: %+v", res.Conflicts)
	}
	rec, _ := db.Get("Hotels", first.RecordID)
	attNode, _ := rec.Doc.FirstChild("User_Attitude")
	dist := extract.MuxToDist(attNode)
	pPos := dist.P("Positive")
	if pPos <= 0.4 || pPos >= 0.95 {
		t.Errorf("pooled P(Positive) = %v, want softened but still majority", pPos)
	}
}

func TestIntegrateTrustFeedback(t *testing.T) {
	s, _, k := newService(t)
	// Establish the positive view with several independent reports, so a
	// lone dissenter cannot flip the pooled majority.
	for i, src := range []string{"alice", "carol", "dave", "alice", "carol"} {
		if _, err := s.Integrate(hotelTemplate("Axel Hotel", src, 0.9, 0.9, 0.7)); err != nil {
			t.Fatalf("setup %d: %v", i, err)
		}
	}
	base := k.Trust().Reliability("troll")
	// The troll repeatedly contradicts the established attitude.
	for i := 0; i < 3; i++ {
		if _, err := s.Integrate(hotelTemplate("Axel Hotel", "troll", 0.9, 0.05, 0.7)); err != nil {
			t.Fatal(err)
		}
	}
	if got := k.Trust().Reliability("troll"); got >= base {
		t.Errorf("contradicting source kept reliability %v >= %v", got, base)
	}
	// An agreeing source gains trust.
	baseBob := k.Trust().Reliability("bob")
	for i := 0; i < 3; i++ {
		if _, err := s.Integrate(hotelTemplate("Axel Hotel", "bob", 0.9, 0.95, 0.7)); err != nil {
			t.Fatal(err)
		}
	}
	if got := k.Trust().Reliability("bob"); got <= baseBob {
		t.Errorf("agreeing source kept reliability %v <= %v", got, baseBob)
	}
}

func TestIntegrateTrustWeightedText(t *testing.T) {
	s, db, _ := newService(t)
	// Price is trust-weighted: a low-certainty newcomer must not replace a
	// confident stored price.
	tpl := hotelTemplate("Essex House", "alice", 0.9, 0.9, 0.9)
	tpl.Fields["Price"] = extract.FieldValue{Kind: kb.FieldNumber, Num: 154, CF: 0.9}
	first, err := s.Integrate(tpl)
	if err != nil {
		t.Fatal(err)
	}
	weak := hotelTemplate("Essex House", "mallory", 0.9, 0.9, 0.1)
	weak.Fields["Price"] = extract.FieldValue{Kind: kb.FieldNumber, Num: 123, CF: 0.1}
	res, err := s.Integrate(weak)
	if err != nil {
		t.Fatal(err)
	}
	conflicted := false
	for _, c := range res.Conflicts {
		if c.Field == "Price" {
			conflicted = true
			if c.Kept != "154" {
				t.Errorf("weak evidence replaced price: kept %q", c.Kept)
			}
		}
	}
	if !conflicted {
		t.Error("price conflict not recorded")
	}
	rec, _ := db.Get("Hotels", first.RecordID)
	if p := pxml.ValueProb(rec.Doc, "Hotel/Price", "154"); p != 1 {
		t.Errorf("stored price changed: P(154) = %v", p)
	}
}

func TestIntegrateMissingKey(t *testing.T) {
	s, _, _ := newService(t)
	tpl := hotelTemplate("X", "a", 0.5, 0.5, 0.5)
	delete(tpl.Fields, "Hotel_Name")
	if _, err := s.Integrate(tpl); err == nil {
		t.Error("missing key accepted")
	}
	tpl2 := hotelTemplate("X", "a", 0.5, 0.5, 0.5)
	tpl2.Domain = "unknown"
	if _, err := s.Integrate(tpl2); err == nil {
		t.Error("unknown domain accepted")
	}
}

func TestIntegrateNaiveOverwrites(t *testing.T) {
	s, db, _ := newService(t)
	if _, err := s.IntegrateNaive(hotelTemplate("Axel Hotel", "alice", 0.9, 0.9, 0.8)); err != nil {
		t.Fatal(err)
	}
	res, err := s.IntegrateNaive(hotelTemplate("Axel Hotel", "troll", 0.9, 0.05, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := db.Get("Hotels", res.RecordID)
	attNode, _ := rec.Doc.FirstChild("User_Attitude")
	dist := extract.MuxToDist(attNode)
	// Naive integration lost the positive majority entirely.
	if dist.P("Positive") > dist.P("Negative") {
		t.Error("naive overwrite unexpectedly preserved the majority view")
	}
	if rec.Certainty != 0.3 {
		t.Errorf("naive certainty = %v, want raw 0.3", rec.Certainty)
	}
}

func TestDecay(t *testing.T) {
	s, db, _ := newService(t)
	db.SetClock(func() time.Time { return t0 })
	res, err := s.Integrate(hotelTemplate("Axel Hotel", "alice", 0.9, 0.9, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	recBefore, _ := db.Get("Hotels", res.RecordID)
	cfBefore := recBefore.Certainty

	// 100 days later, the certainty has decayed.
	later := t0.Add(100 * 24 * time.Hour)
	db.SetClock(func() time.Time { return later })
	decayed, deleted, err := s.Decay("Hotels", later, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if decayed != 1 || deleted != 0 {
		t.Fatalf("decayed=%d deleted=%d", decayed, deleted)
	}
	rec, _ := db.Get("Hotels", res.RecordID)
	if rec.Certainty >= cfBefore {
		t.Errorf("certainty did not decay: %v -> %v", cfBefore, rec.Certainty)
	}

	// After years, the record falls below the floor and is deleted.
	years := later.Add(5 * 365 * 24 * time.Hour)
	db.SetClock(func() time.Time { return years })
	_, deleted, err = s.Decay("Hotels", years, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 1 {
		t.Errorf("stale record not deleted (deleted=%d)", deleted)
	}
	if db.Len("Hotels") != 0 {
		t.Errorf("records = %d after decay delete", db.Len("Hotels"))
	}
}

func TestNameSimilarity(t *testing.T) {
	cases := []struct {
		a, b string
		min  float64
	}{
		{"axel hotel", "axel hotel", 1},
		{"axel hotel", "hotel axel", 1},
		{"movenpick hotel", "movenpik hotel", 0.85},
		{"essex house hotel", "essex house hotel and suites", 0.5},
	}
	for _, c := range cases {
		if got := nameSimilarity(c.a, c.b); got < c.min {
			t.Errorf("nameSimilarity(%q, %q) = %v, want >= %v", c.a, c.b, got, c.min)
		}
	}
	if got := nameSimilarity("axel hotel", "central station"); got > 0.4 {
		t.Errorf("unrelated names similarity = %v", got)
	}
}
