package server

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/obs"
)

// Span names on the serving layer. Names are metric-grade identifiers
// drawn from this bounded set (the metriclabels analyzer enforces it);
// per-request data rides in span attributes instead.
const (
	spanHTTPRequest = "http_request"
	spanAskExplain  = "ask_explain"
)

// tracesPath parses /v1/traces/{id}; the ID segment is opaque (it is
// whatever X-Request-Id the trace ran under).
func tracesPath(path string) (id string, ok bool) {
	const prefix = "/v1/traces/"
	if !strings.HasPrefix(path, prefix) {
		return "", false
	}
	id = path[len(prefix):]
	if id == "" || strings.ContainsRune(id, '/') {
		return "", false
	}
	return id, true
}

// handleTrace serves GET /v1/traces/{id}: the recorded span tree of
// one request, straight from the flight recorder.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request, id string) {
	view, ok := obs.DefaultRecorder().Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "trace_not_found",
			fmt.Sprintf("no recorded trace %q — it was never kept by the recorder or has been evicted", id), nil)
		return
	}
	s.writeJSON(w, http.StatusOK, view)
}

// explainBreakdown extracts the subtree rooted at the explain span
// from its trace snapshot — when the HTTP middleware also traced the
// request, the snapshot's root is the (still-open) http_request span
// and the Ask subtree hangs under it.
func explainBreakdown(sp *obs.Span) *obs.SpanView {
	view := sp.Snapshot()
	if view == nil || view.Root == nil {
		return nil
	}
	return findSpanView(view.Root, sp)
}

func findSpanView(v *obs.SpanView, sp *obs.Span) *obs.SpanView {
	if v.ID == sp.SpanID() {
		return v
	}
	for _, c := range v.Children {
		if found := findSpanView(c, sp); found != nil {
			return found
		}
	}
	return nil
}
