package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	neogeo "repro"
)

// TestMetricsEndpoint: GET /metrics serves the Prometheus text format
// and contains the HTTP middleware's own families once traffic exists.
func TestMetricsEndpoint(t *testing.T) {
	fake := &fakeSystem{}
	srv := New(fake, WithLogger(t.Logf))

	// Generate one observed request first: the middleware records after
	// the handler runs, so a scrape never sees itself.
	if w := doJSON(t, srv, http.MethodGet, "/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("healthz = %d", w.Code)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics = %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE neogeo_http_requests_total counter",
		`route="/healthz"`,
		"# TYPE neogeo_http_request_seconds histogram",
		"neogeo_http_request_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body missing %q\n%s", want, body)
		}
	}
}

// TestRequestIDHandling: a well-formed X-Request-Id is echoed and a
// missing or junk one is replaced with a minted hex ID.
func TestRequestIDHandling(t *testing.T) {
	fake := &fakeSystem{}
	srv := New(fake, WithLogger(t.Logf))
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)

	do := func(id string) string {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		if id != "" {
			req.Header.Set("X-Request-Id", id)
		}
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		return w.Header().Get("X-Request-Id")
	}

	if got := do("trace-abc-123"); got != "trace-abc-123" {
		t.Errorf("well-formed id not echoed: got %q", got)
	}
	if got := do(""); !hex16.MatchString(got) {
		t.Errorf("missing id: minted %q, want 16 hex chars", got)
	}
	if got := do("bad id with \x01 control"); !hex16.MatchString(got) {
		t.Errorf("junk id: got %q, want a minted replacement", got)
	}
	if got := do(strings.Repeat("x", 65)); !hex16.MatchString(got) {
		t.Errorf("oversized id: got %q, want a minted replacement", got)
	}
}

// TestHealthzCheckpointStale: /healthz degrades when the last checkpoint
// attempt failed, or when periodic checkpoints have stopped making
// progress (newest image older than twice the interval).
func TestHealthzCheckpointStale(t *testing.T) {
	cases := []struct {
		name  string
		ck    neogeo.CheckpointStats
		opts  []Option
		stale bool
	}{
		{name: "healthy", ck: neogeo.CheckpointStats{Enabled: true, LastSeq: 1, LastAge: time.Second},
			opts: []Option{WithCheckpointInterval(time.Minute)}, stale: false},
		{name: "last attempt failed", ck: neogeo.CheckpointStats{Enabled: true, LastError: "disk full"}, stale: true},
		{name: "image overdue", ck: neogeo.CheckpointStats{Enabled: true, LastSeq: 3, LastAge: 3 * time.Minute},
			opts: []Option{WithCheckpointInterval(time.Minute)}, stale: true},
		{name: "no data dir", ck: neogeo.CheckpointStats{Enabled: false, LastError: "ignored"}, stale: false},
		{name: "on-demand only never late", ck: neogeo.CheckpointStats{Enabled: true, LastSeq: 3, LastAge: time.Hour}, stale: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fake := &fakeSystem{stats: neogeo.Stats{Checkpoint: tc.ck}}
			srv := New(fake, append([]Option{WithLogger(t.Logf)}, tc.opts...)...)
			w := doJSON(t, srv, http.MethodGet, "/healthz", "")
			body := w.Body.String()
			gotStale := strings.Contains(body, "checkpoint_stale")
			if gotStale != tc.stale {
				t.Errorf("checkpoint_stale = %v, want %v: %s", gotStale, tc.stale, body)
			}
			wantCode := http.StatusOK
			if tc.stale {
				wantCode = http.StatusServiceUnavailable
			}
			if w.Code != wantCode {
				t.Errorf("status = %d, want %d: %s", w.Code, wantCode, body)
			}
		})
	}
}

// TestTraceRoundTripThroughRestart: a trace ID accepted from
// X-Request-Id at submit survives the queue WAL across a restart and
// comes back on the drained outcome — the property that makes a user
// report ("my request xyz never showed up") greppable end to end.
func TestTraceRoundTripThroughRestart(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "queue.wal")
	const trace = "trace-e2e-0001"

	sys1, err := neogeo.New(neogeo.WithQueueWAL(wal), neogeo.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(sys1, WithLogger(t.Logf))
	req := httptest.NewRequest(http.MethodPost, "/v1/messages",
		strings.NewReader(`{"text":"the Axel Hotel in Berlin is lovely","source":"alice"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", trace)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", w.Code, w.Body.String())
	}
	// Close without draining: the message survives only in the WAL.
	if err := sys1.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := neogeo.New(neogeo.WithQueueWAL(wal), neogeo.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	found := false
	for out, err := range sys2.Drain(context.Background(), 0) {
		if err != nil {
			t.Fatal(err)
		}
		if out.Trace == trace {
			found = true
		}
	}
	if !found {
		t.Errorf("no drained outcome carried trace %q after restart", trace)
	}
}
