package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	neogeo "repro"
)

// -update regenerates the golden response files under testdata/.
var update = flag.Bool("update", false, "rewrite golden files")

// tourismMessages is the paper's worked Berlin scenario.
var tourismMessages = []string{
	"berlin has some nice hotels i just loved the hetero friendly love that word Axel Hotel in Berlin.",
	"Good morning Berlin. The sun is out!!!! Very impressed by the customer service at #movenpick hotel in berlin. Well done guys!",
	"In Berlin hotel room, nice enough, weather grim however",
}

const tourismQuestion = "Can anyone recommend a good, but not ridiculously expensive hotel right in the middle of Berlin?"

// newTestSystem builds the deterministic tourism system golden responses
// are pinned against: default gazetteer, one worker so drains process in
// queue order and record IDs are stable.
func newTestSystem(t *testing.T) *neogeo.System {
	t.Helper()
	sys, err := neogeo.New(
		neogeo.WithGazetteerNames(2000),
		neogeo.WithGazetteerSeed(2011),
		neogeo.WithWorkers(1),
		neogeo.WithClock(func() time.Time { return time.Date(2011, 4, 1, 9, 0, 0, 0, time.UTC) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	return sys
}

func doJSON(t *testing.T, srv http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body == "" {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader([]byte(body))
	}
	req := httptest.NewRequest(method, path, rd)
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: response diverges from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenTourismScenario pins the exact JSON the API serves for the
// paper's worked scenario: submit acknowledgements, the structured ask
// answer, the stats snapshot, and healthz.
func TestGoldenTourismScenario(t *testing.T) {
	sys := newTestSystem(t)
	srv := New(sys, WithLogger(t.Logf))

	for i, m := range tourismMessages {
		body, err := json.Marshal(map[string]string{"text": m, "source": fmt.Sprintf("user%d", i+1)})
		if err != nil {
			t.Fatal(err)
		}
		w := doJSON(t, srv, http.MethodPost, "/v1/messages", string(body))
		if w.Code != http.StatusAccepted {
			t.Fatalf("submit #%d: status %d: %s", i+1, w.Code, w.Body.String())
		}
		if i == 0 {
			checkGolden(t, "submit.json", w.Body.Bytes())
		}
	}

	// Integrate what was submitted — the synchronous stand-in for the
	// background drain loop, so the golden answer is deterministic.
	for _, err := range sys.Drain(context.Background(), 0) {
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	}

	body, err := json.Marshal(map[string]string{"question": tourismQuestion, "source": "asker"})
	if err != nil {
		t.Fatal(err)
	}
	w := doJSON(t, srv, http.MethodPost, "/v1/ask", string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("ask: status %d: %s", w.Code, w.Body.String())
	}
	checkGolden(t, "ask.json", w.Body.Bytes())
	if !strings.Contains(strings.ToLower(w.Body.String()), "axel hotel") {
		t.Errorf("answer does not recommend Axel Hotel: %s", w.Body.String())
	}

	w = doJSON(t, srv, http.MethodGet, "/v1/stats", "")
	if w.Code != http.StatusOK {
		t.Fatalf("stats: status %d", w.Code)
	}
	checkGolden(t, "stats.json", w.Body.Bytes())

	w = doJSON(t, srv, http.MethodGet, "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", w.Code)
	}
	checkGolden(t, "healthz.json", w.Body.Bytes())
}

// TestErrorMapping is the table of every error the API can serve: wrong
// paths, wrong methods, malformed bodies, and semantically rejected
// inputs — each with its JSON error code.
func TestErrorMapping(t *testing.T) {
	sys := newTestSystem(t)
	srv := New(sys, WithLogger(t.Logf))

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"unknown path", http.MethodGet, "/v1/nope", "", http.StatusNotFound, "not_found"},
		{"root path", http.MethodGet, "/", "", http.StatusNotFound, "not_found"},
		{"ask with GET", http.MethodGet, "/v1/ask", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"messages with DELETE", http.MethodDelete, "/v1/messages", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"stats with POST", http.MethodPost, "/v1/stats", "{}", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"checkpoint with GET", http.MethodGet, "/v1/checkpoint", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"checkpoint without data dir", http.MethodPost, "/v1/checkpoint", "", http.StatusUnprocessableEntity, "checkpoint_unconfigured"},
		{"malformed submit body", http.MethodPost, "/v1/messages", "{not json", http.StatusBadRequest, "bad_request"},
		{"unknown submit field", http.MethodPost, "/v1/messages", `{"txt":"hi"}`, http.StatusBadRequest, "bad_request"},
		{"empty submit text", http.MethodPost, "/v1/messages", `{"text":"  ","source":"a"}`, http.StatusUnprocessableEntity, "empty_message"},
		{"malformed ask body", http.MethodPost, "/v1/ask", "[", http.StatusBadRequest, "bad_request"},
		{"empty question", http.MethodPost, "/v1/ask", `{"question":"","source":"a"}`, http.StatusUnprocessableEntity, "empty_question"},
		{"informative ask", http.MethodPost, "/v1/ask", `{"question":"loved the Axel Hotel in Berlin, great stay","source":"a"}`, http.StatusUnprocessableEntity, "not_a_question"},
		{"feedback with GET", http.MethodGet, "/v1/feedback", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"malformed feedback body", http.MethodPost, "/v1/feedback", "{oops", http.StatusBadRequest, "bad_request"},
		{"feedback unknown verdict", http.MethodPost, "/v1/feedback", `{"record_id":1,"verdict":"praise"}`, http.StatusUnprocessableEntity, "invalid_feedback"},
		{"feedback unknown record", http.MethodPost, "/v1/feedback", `{"record_id":424242,"verdict":"confirm"}`, http.StatusNotFound, "unknown_record"},
		{"decay with GET", http.MethodGet, "/v1/decay", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"decay floor out of range", http.MethodPost, "/v1/decay", `{"floor": 7}`, http.StatusUnprocessableEntity, "invalid_floor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := doJSON(t, srv, tc.method, tc.path, tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (%s)", w.Code, tc.wantStatus, w.Body.String())
			}
			var resp errorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("error body is not the JSON envelope: %v: %s", err, w.Body.String())
			}
			if resp.Error.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", resp.Error.Code, tc.wantCode)
			}
			if tc.wantStatus == http.StatusMethodNotAllowed && w.Header().Get("Allow") == "" {
				t.Error("405 without an Allow header")
			}
		})
	}

	// The not_a_question rejection carries the classification.
	w := doJSON(t, srv, http.MethodPost, "/v1/ask", `{"question":"loved the Axel Hotel in Berlin, great stay","source":"a"}`)
	var resp errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error.Detail["type"] != "informative" {
		t.Errorf("detail.type = %v", resp.Error.Detail["type"])
	}
	if p, ok := resp.Error.Detail["probability"].(float64); !ok || p <= 0 || p > 1 {
		t.Errorf("detail.probability = %v", resp.Error.Detail["probability"])
	}
}

// TestEndToEndSubmitDrainAsk: a report submitted over HTTP and drained by
// the background loop is reflected in a subsequent ask answer and in the
// stats record counts — the daemon's core promise, asserted in-process.
func TestEndToEndSubmitDrainAsk(t *testing.T) {
	sys := newTestSystem(t)
	srv := New(sys, WithDrainInterval(5*time.Millisecond), WithLogger(t.Logf))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Run(ctx)
	}()

	w := doJSON(t, srv, http.MethodPost, "/v1/messages",
		`{"text":"loved the Axel Hotel in Berlin, great stay","source":"alice"}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", w.Code, w.Body.String())
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		w := doJSON(t, srv, http.MethodGet, "/v1/stats", "")
		var st statsResponse
		if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.Collections["Hotels"] >= 1 && st.Queue.Acked >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain loop never integrated the report: %s", w.Body.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	w = doJSON(t, srv, http.MethodPost, "/v1/ask",
		`{"question":"can anyone recommend a good hotel in Berlin?","source":"bob"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("ask: %d: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(strings.ToLower(w.Body.String()), "axel hotel") {
		t.Errorf("answer does not reflect the drained report: %s", w.Body.String())
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("drain loop did not stop on cancel")
	}
}

// TestConcurrentAskWhileDraining serves concurrent POST /v1/ask while the
// background drain loop integrates a stream of informative messages —
// run with -race; the ask path is read-only and must never interfere
// with integration.
func TestConcurrentAskWhileDraining(t *testing.T) {
	sys, err := neogeo.New(
		neogeo.WithGazetteerNames(500),
		neogeo.WithWorkers(4),
		neogeo.WithShards(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv := New(sys, WithDrainInterval(time.Millisecond), WithLogger(t.Logf))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		srv.Run(ctx)
	}()

	ts := httptest.NewServer(srv)
	defer ts.Close()

	const (
		writers  = 4
		askers   = 3
		perGoro  = 10
		totalSub = writers * perGoro
	)
	var wg sync.WaitGroup
	errCh := make(chan error, writers+askers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				body := fmt.Sprintf(`{"text":"wonderful stay at the Hotel Writer %d Number %d in Berlin, lovely place","source":"w%d"}`, w, i, w)
				resp, err := http.Post(ts.URL+"/v1/messages", "application/json", strings.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					errCh <- fmt.Errorf("submit status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	for a := 0; a < askers; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				resp, err := http.Post(ts.URL+"/v1/ask", "application/json",
					strings.NewReader(`{"question":"any good hotels in Berlin?","source":"asker"}`))
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("ask status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Every submitted report must eventually integrate.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := sys.Stats()
		if st.Queue.Acked == totalSub && st.Queue.Pending == 0 && st.Queue.InFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never drained: %+v", st.Queue)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-drainDone
}
