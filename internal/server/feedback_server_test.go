package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	neogeo "repro"
)

// askJSON posts a question and decodes the structured answer.
func askJSON(t *testing.T, srv http.Handler, question string) askResponse {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"question": question, "source": "asker"})
	w := doJSON(t, srv, http.MethodPost, "/v1/ask", string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("ask: status %d: %s", w.Code, w.Body.String())
	}
	var resp askResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestFeedbackEndpointClosesTheLoop drives the whole loop over HTTP:
// submit two tied reports, ask, reject the leader through POST
// /v1/feedback, and watch the ranking flip — with the verdict counted
// in /v1/stats.
func TestFeedbackEndpointClosesTheLoop(t *testing.T) {
	sys := newTestSystem(t)
	srv := New(sys, WithLogger(t.Logf))

	for i, txt := range []string{
		"wonderful stay at the Hotel Kilo in Berlin, lovely place",
		"wonderful stay at the Hotel Lima in Berlin, lovely place",
	} {
		body, _ := json.Marshal(map[string]string{"text": txt, "source": fmt.Sprintf("rep%d", i)})
		if w := doJSON(t, srv, http.MethodPost, "/v1/messages", string(body)); w.Code != http.StatusAccepted {
			t.Fatalf("submit: %d: %s", w.Code, w.Body.String())
		}
	}
	for _, err := range sys.Drain(context.Background(), 0) {
		if err != nil {
			t.Fatal(err)
		}
	}

	question := "can anyone recommend a good hotel in Berlin?"
	ans := askJSON(t, srv, question)
	if len(ans.Answer.Results) < 2 {
		t.Fatalf("want 2 results, got %d", len(ans.Answer.Results))
	}
	leader := ans.Answer.Results[0]
	if leader.Fields["Hotel_Name"] != "Hotel Kilo" {
		t.Fatalf("pre-feedback leader = %+v", leader.Fields)
	}

	fb, _ := json.Marshal(map[string]any{"record_id": leader.ID, "verdict": "reject", "source": "critic"})
	w := doJSON(t, srv, http.MethodPost, "/v1/feedback", string(fb))
	if w.Code != http.StatusAccepted {
		t.Fatalf("feedback: status %d: %s", w.Code, w.Body.String())
	}
	var accepted feedbackResponse
	if err := json.Unmarshal(w.Body.Bytes(), &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Seq != 1 || accepted.Status != "accepted" {
		t.Fatalf("feedback response = %+v", accepted)
	}

	// The apply is asynchronous; the serving layer's loop flushes every
	// drain interval — stand in for it synchronously.
	if n, err := sys.FlushFeedback(context.Background()); err != nil || n != 1 {
		t.Fatalf("flush = (%d, %v)", n, err)
	}

	ans = askJSON(t, srv, question)
	if got := ans.Answer.Results[0].Fields["Hotel_Name"]; got != "Hotel Lima" {
		t.Errorf("post-reject leader = %q, want Hotel Lima", got)
	}

	w = doJSON(t, srv, http.MethodGet, "/v1/stats", "")
	var st statsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Feedback.Accepted != 1 || st.Feedback.Applied != 1 || st.Feedback.Rejected != 1 {
		t.Errorf("stats feedback = %+v", st.Feedback)
	}
}

// TestDecayEndpoint: the admin decay pass reports its counts and
// accumulates them into /v1/stats.
func TestDecayEndpoint(t *testing.T) {
	sys := newTestSystem(t)
	srv := New(sys, WithLogger(t.Logf))

	body, _ := json.Marshal(map[string]string{"text": "loved the Axel Hotel in Berlin, great stay", "source": "alice"})
	if w := doJSON(t, srv, http.MethodPost, "/v1/messages", string(body)); w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", w.Code)
	}
	for _, err := range sys.Drain(context.Background(), 0) {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The decay endpoint ages against the wall clock while the test
	// system's records are stamped with a fixed 2011 clock, so every
	// record has years of decay to apply. A floor of -1 ages without
	// deleting (no certainty can fall below -1).
	w := doJSON(t, srv, http.MethodPost, "/v1/decay", `{"floor": -1}`)
	if w.Code != http.StatusOK {
		t.Fatalf("decay: status %d: %s", w.Code, w.Body.String())
	}
	var resp decayResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Decayed != 1 || resp.Deleted != 0 || resp.Floor != -1 {
		t.Errorf("ageing pass = %+v, want 1 decayed, 0 deleted", resp)
	}

	// A floor of 1.0 deletes everything that has decayed at all.
	w = doJSON(t, srv, http.MethodPost, "/v1/decay", `{"floor": 1.0}`)
	if w.Code != http.StatusOK {
		t.Fatalf("decay with floor: status %d: %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Deleted != 1 {
		t.Errorf("floor 1.0 pass = %+v, want 1 deleted", resp)
	}

	w = doJSON(t, srv, http.MethodGet, "/v1/stats", "")
	var st statsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Decay.Runs != 2 || st.Decay.Decayed != 1 || st.Decay.Deleted != 1 {
		t.Errorf("stats decay = %+v, want 2 runs, 1 decayed, 1 deleted", st.Decay)
	}
	if st.Collections["Hotels"] != 0 {
		t.Errorf("record survived the floor-1.0 decay: %v", st.Collections)
	}
}

// TestFeedbackErrorStatuses maps each typed feedback failure onto its
// HTTP status through the fake system (the stale condition needs a
// scripted store state).
func TestFeedbackErrorStatuses(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		wantStatus int
		wantCode   string
	}{
		{"unknown record", neogeo.ErrUnknownRecord, http.StatusNotFound, "unknown_record"},
		{"stale answer", neogeo.ErrStaleAnswer, http.StatusGone, "stale_answer"},
		{"invalid verdict", neogeo.ErrInvalidFeedback, http.StatusUnprocessableEntity, "invalid_feedback"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fake := &fakeSystem{feedbackErr: tc.err}
			srv := New(fake, WithLogger(t.Logf))
			w := doJSON(t, srv, http.MethodPost, "/v1/feedback", `{"record_id": 7, "verdict": "confirm"}`)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (%s)", w.Code, tc.wantStatus, w.Body.String())
			}
			var resp errorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Error.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", resp.Error.Code, tc.wantCode)
			}
		})
	}
}

// TestRunLoopFlushesFeedback: the background loop applies buffered
// verdicts on the drain cadence without any explicit flush call.
func TestRunLoopFlushesFeedback(t *testing.T) {
	fake := &fakeSystem{}
	srv := New(fake, WithDrainInterval(2*time.Millisecond), WithLogger(t.Logf))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Run(ctx)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		fake.mu.Lock()
		flushed := fake.flushCalls
		fake.mu.Unlock()
		if flushed > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Run loop never flushed feedback")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	<-done
}
