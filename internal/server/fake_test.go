package server

import (
	"context"
	"iter"
	"sync"
	"time"

	neogeo "repro"
)

// fakeSystem scripts the System surface so handler tests can pin
// operational states the real pipeline reaches only under failure —
// dead-lettered messages, wedged queues, checkpoint errors — and record
// what the background loops invoked.
type fakeSystem struct {
	mu          sync.Mutex
	stats       neogeo.Stats
	submitErr   error
	askErr      error
	askPanic    bool
	ckptErr     error
	feedbackErr error
	ckptSeq     uint64
	ckptCalls   int
	decayCalls  int
	drainCalls  int
	flushCalls  int
	feedbackSeq int64

	subscribeErr error
	openErr      error
	unsubErr     error
	subIDs       []string
	unsubIDs     []string
}

func (f *fakeSystem) Submit(ctx context.Context, body, source string) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.submitErr != nil {
		return 0, f.submitErr
	}
	return 1, nil
}

func (f *fakeSystem) Ask(ctx context.Context, question, source string) (*neogeo.Answer, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.askPanic {
		panic("fakeSystem: scripted Ask panic")
	}
	if f.askErr != nil {
		return nil, f.askErr
	}
	return &neogeo.Answer{Text: "ok"}, nil
}

func (f *fakeSystem) Stats() neogeo.Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

func (f *fakeSystem) Drain(ctx context.Context, limit int) iter.Seq2[*neogeo.Outcome, error] {
	f.mu.Lock()
	f.drainCalls++
	f.mu.Unlock()
	return func(yield func(*neogeo.Outcome, error) bool) {}
}

func (f *fakeSystem) Checkpoint(ctx context.Context) (neogeo.CheckpointInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ckptErr != nil {
		return neogeo.CheckpointInfo{}, f.ckptErr
	}
	f.ckptCalls++
	f.ckptSeq++
	return neogeo.CheckpointInfo{Seq: f.ckptSeq, Bytes: 128}, nil
}

func (f *fakeSystem) CheckpointInterval() time.Duration { return 0 }

func (f *fakeSystem) Decay(now time.Time, floor float64) (int, int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.decayCalls++
	return 1, 0, nil
}

func (f *fakeSystem) Feedback(ctx context.Context, fb neogeo.Feedback) (neogeo.FeedbackReceipt, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.feedbackErr != nil {
		return neogeo.FeedbackReceipt{}, f.feedbackErr
	}
	f.feedbackSeq++
	return neogeo.FeedbackReceipt{Seq: f.feedbackSeq}, nil
}

func (f *fakeSystem) FlushFeedback(ctx context.Context) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flushCalls++
	return 0, nil
}

func (f *fakeSystem) Subscribe(ctx context.Context, sub neogeo.Subscription) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.subscribeErr != nil {
		return "", f.subscribeErr
	}
	id := "sub1"
	f.subIDs = append(f.subIDs, id)
	return id, nil
}

func (f *fakeSystem) Unsubscribe(ctx context.Context, id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.unsubErr != nil {
		return f.unsubErr
	}
	f.unsubIDs = append(f.unsubIDs, id)
	return nil
}

// OpenSubscription returns a zero-value stream on success: its nil
// channel never yields, so Next always runs into the caller's timeout —
// exactly the shape a heartbeat test needs.
func (f *fakeSystem) OpenSubscription(ctx context.Context, id string) (*neogeo.SubscriptionStream, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.openErr != nil {
		return nil, f.openErr
	}
	return &neogeo.SubscriptionStream{}, nil
}

func (f *fakeSystem) counts() (ckpt, decay, drain int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ckptCalls, f.decayCalls, f.drainCalls
}
