package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	neogeo "repro"
)

func decodeHealth(t *testing.T, body []byte) healthResponse {
	t.Helper()
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("healthz body: %v: %s", err, body)
	}
	return h
}

// TestHealthzDegradedOnDeadLetters: dead-lettered messages mean user
// contributions were dropped — /healthz must stop saying "ok".
func TestHealthzDegradedOnDeadLetters(t *testing.T) {
	fake := &fakeSystem{stats: neogeo.Stats{Queue: neogeo.QueueStats{Acked: 7, DeadLettered: 2}}}
	srv := New(fake, WithLogger(t.Logf))

	w := doJSON(t, srv, http.MethodGet, "/healthz", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %s", w.Code, w.Body.String())
	}
	h := decodeHealth(t, w.Body.Bytes())
	if h.Status != "degraded" {
		t.Errorf("status = %q, want degraded", h.Status)
	}
	if len(h.Reasons) != 1 || h.Reasons[0] != "dead_letters" {
		t.Errorf("reasons = %v, want [dead_letters]", h.Reasons)
	}
	if h.Queue.DeadLettered != 2 {
		t.Errorf("queue = %+v", h.Queue)
	}
}

// TestHealthzDegradedOnWALAppendErrors: a diverged queue WAL is an
// operator problem even with nothing dead-lettered in memory yet.
func TestHealthzDegradedOnWALAppendErrors(t *testing.T) {
	fake := &fakeSystem{stats: neogeo.Stats{Queue: neogeo.QueueStats{WALAppendErrors: 1}}}
	srv := New(fake, WithLogger(t.Logf))
	w := doJSON(t, srv, http.MethodGet, "/healthz", "")
	h := decodeHealth(t, w.Body.Bytes())
	if w.Code != http.StatusServiceUnavailable || h.Status != "degraded" {
		t.Fatalf("code %d status %q, want 503 degraded", w.Code, h.Status)
	}
	if len(h.Reasons) != 1 || h.Reasons[0] != "wal_append_errors" {
		t.Errorf("reasons = %v", h.Reasons)
	}
}

// TestHealthzDegradedOnStalledQueue: pending messages with no
// acknowledgement progress past the stall window mean the drain loop is
// wedged or absent; once the queue moves (or empties) health recovers.
func TestHealthzDegradedOnStalledQueue(t *testing.T) {
	fake := &fakeSystem{stats: neogeo.Stats{Queue: neogeo.QueueStats{Pending: 5, Acked: 3}}}
	srv := New(fake, WithLogger(t.Logf), WithDrainInterval(time.Millisecond), WithStallAfter(time.Millisecond))

	// First observation arms the watermark; the backlog is not yet stale.
	w := doJSON(t, srv, http.MethodGet, "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("fresh backlog already degraded: %s", w.Body.String())
	}

	// Same backlog, no ack progress, past the (floored, 10ms) window.
	time.Sleep(30 * time.Millisecond)
	w = doJSON(t, srv, http.MethodGet, "/healthz", "")
	h := decodeHealth(t, w.Body.Bytes())
	if w.Code != http.StatusServiceUnavailable || h.Status != "degraded" {
		t.Fatalf("stalled queue: code %d status %q, want 503 degraded", w.Code, h.Status)
	}
	if len(h.Reasons) != 1 || h.Reasons[0] != "queue_stalled" {
		t.Errorf("reasons = %v, want [queue_stalled]", h.Reasons)
	}

	// Acks advance: the same pending depth is a moving queue, not a stall.
	fake.mu.Lock()
	fake.stats.Queue.Acked = 4
	fake.mu.Unlock()
	w = doJSON(t, srv, http.MethodGet, "/healthz", "")
	if h := decodeHealth(t, w.Body.Bytes()); w.Code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("after progress: code %d status %q, want 200 ok", w.Code, h.Status)
	}
}

// TestInternalErrorsAreGeneric: a pipeline failure's real error goes to
// the log; the wire gets the uniform envelope with no internal detail.
func TestInternalErrorsAreGeneric(t *testing.T) {
	const secret = "shard 3 exploded at /var/lib/neogeo/shard3"
	var logged []string
	fake := &fakeSystem{submitErr: errors.New(secret), askErr: errors.New(secret)}
	srv := New(fake, WithLogger(func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}))

	cases := []struct {
		method, path, body string
	}{
		{http.MethodPost, "/v1/messages", `{"text":"hello berlin","source":"a"}`},
		{http.MethodPost, "/v1/ask", `{"question":"any hotels?","source":"a"}`},
	}
	for _, tc := range cases {
		w := doJSON(t, srv, tc.method, tc.path, tc.body)
		if w.Code != http.StatusInternalServerError {
			t.Fatalf("%s: status = %d: %s", tc.path, w.Code, w.Body.String())
		}
		if strings.Contains(w.Body.String(), "shard 3") {
			t.Errorf("%s: internal detail leaked onto the wire: %s", tc.path, w.Body.String())
		}
		var resp errorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Error.Code != "internal" || resp.Error.Message != "internal error" {
			t.Errorf("%s: envelope = %+v", tc.path, resp.Error)
		}
	}
	found := false
	for _, line := range logged {
		if strings.Contains(line, secret) {
			found = true
		}
	}
	if !found {
		t.Errorf("real error never reached the log: %v", logged)
	}
}

// TestCheckpointEndpoint: the admin trigger writes one checkpoint and
// reports it; without a data directory it maps the facade's sentinel.
func TestCheckpointEndpoint(t *testing.T) {
	fake := &fakeSystem{}
	srv := New(fake, WithLogger(t.Logf))
	w := doJSON(t, srv, http.MethodPost, "/v1/checkpoint", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp checkpointResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 1 || resp.Status != "written" || resp.Bytes == 0 {
		t.Errorf("response = %+v", resp)
	}

	fake.mu.Lock()
	fake.ckptErr = neogeo.ErrNoDataDir
	fake.mu.Unlock()
	w = doJSON(t, srv, http.MethodPost, "/v1/checkpoint", "")
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("unconfigured: status = %d: %s", w.Code, w.Body.String())
	}
	var er errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != "checkpoint_unconfigured" {
		t.Errorf("code = %q", er.Error.Code)
	}
}

// TestCheckpointEndpointRealSystem drives the whole stack: a durable
// system checkpoints over HTTP, the image lands on disk, and the stats
// endpoint reports it.
func TestCheckpointEndpointRealSystem(t *testing.T) {
	dataDir := t.TempDir()
	sys, err := neogeo.New(
		neogeo.WithGazetteerNames(300),
		neogeo.WithWorkers(1),
		neogeo.WithDataDir(dataDir),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv := New(sys, WithLogger(t.Logf))

	w := doJSON(t, srv, http.MethodPost, "/v1/messages", `{"text":"loved the Axel Hotel in Berlin, great stay","source":"alice"}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %s", w.Body.String())
	}
	for range sys.Drain(context.Background(), 0) {
	}

	w = doJSON(t, srv, http.MethodPost, "/v1/checkpoint", "")
	if w.Code != http.StatusOK {
		t.Fatalf("checkpoint: status %d: %s", w.Code, w.Body.String())
	}
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) < 2 { // checkpoint file + MANIFEST
		t.Fatalf("data dir after checkpoint: %v", names)
	}

	w = doJSON(t, srv, http.MethodGet, "/v1/stats", "")
	var st statsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Checkpoint.Enabled || st.Checkpoint.Count != 1 || st.Checkpoint.LastSeq != 1 {
		t.Errorf("stats checkpoint = %+v", st.Checkpoint)
	}
	if st.Checkpoint.LastAgeSeconds == nil {
		t.Error("stats checkpoint age missing")
	}
}

// TestRunBackgroundLoops: Run hosts the periodic checkpoint and decay
// loops next to the drain loop, each on its own cadence.
func TestRunBackgroundLoops(t *testing.T) {
	fake := &fakeSystem{}
	srv := New(fake,
		WithLogger(t.Logf),
		WithDrainInterval(2*time.Millisecond),
		WithCheckpointInterval(5*time.Millisecond),
		WithDecayInterval(5*time.Millisecond),
	)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Run(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ckpt, decay, drain := fake.counts()
		if ckpt >= 2 && decay >= 2 && drain >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("loops never all ran: checkpoints=%d decays=%d drains=%d", ckpt, decay, drain)
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

// TestRunWithoutOptionalLoops: with no checkpoint or decay interval the
// loops stay off — only draining happens.
func TestRunWithoutOptionalLoops(t *testing.T) {
	fake := &fakeSystem{}
	srv := New(fake, WithLogger(t.Logf), WithDrainInterval(time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Run(ctx)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	<-done
	ckpt, decay, drain := fake.counts()
	if ckpt != 0 || decay != 0 {
		t.Errorf("optional loops ran unconfigured: checkpoints=%d decays=%d", ckpt, decay)
	}
	if drain == 0 {
		t.Error("drain loop never ran")
	}
}
