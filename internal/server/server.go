// Package server exposes the neogeo facade as a JSON HTTP API — the
// network surface of the paper's deployment story, where user
// contributions and requests arrive as web traffic instead of a terminal
// stream. It is a serving layer over the public facade only: handlers
// speak neogeo.System, neogeo.Answer and the facade's sentinel errors,
// never the internal pipeline, so everything the HTTP surface can do is
// by construction available to library callers too.
//
// Endpoints (see docs/API.md for the full contract):
//
//	POST   /v1/messages              submit a contribution for asynchronous integration
//	POST   /v1/ask                   answer a question synchronously
//	POST   /v1/feedback              return a verdict on an answer result
//	POST   /v1/subscribe             register a standing query (entity key or geofence)
//	GET    /v1/subscribe/{id}/stream stream the standing query's matches (SSE)
//	DELETE /v1/subscribe/{id}        cancel a standing query
//	POST   /v1/decay                 age stored certainties now (admin)
//	POST   /v1/checkpoint            write one durable checkpoint now (admin)
//	GET    /v1/stats                 store, shard, queue, feedback and durability stats
//	GET    /healthz                  liveness + queue/durability health
//	GET    /metrics                  Prometheus text exposition of the whole pipeline
//
// Submitted messages are integrated by a background drain loop (Run)
// that periodically drains the queue through the concurrent pipeline via
// the facade's streaming iterator; accepted feedback verdicts apply in
// batches on the same cadence. Run also hosts the durability loop —
// periodic checkpoints of the integrated store when the system was built
// with a data directory — and an optional certainty-decay loop ageing
// stored records.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"iter"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	neogeo "repro"
	"repro/internal/obs"
)

// System is the slice of the neogeo facade the server drives;
// *neogeo.System implements it. It is an interface so handler tests can
// pin rare operational states — dead-lettered messages, stalled queues,
// checkpoint failures — without forcing the real pipeline into them.
type System interface {
	Submit(ctx context.Context, body, source string) (int64, error)
	Ask(ctx context.Context, question, source string) (*neogeo.Answer, error)
	Stats() neogeo.Stats
	Drain(ctx context.Context, limit int) iter.Seq2[*neogeo.Outcome, error]
	Checkpoint(ctx context.Context) (neogeo.CheckpointInfo, error)
	CheckpointInterval() time.Duration
	Decay(now time.Time, floor float64) (decayed, deleted int, err error)
	Feedback(ctx context.Context, fb neogeo.Feedback) (neogeo.FeedbackReceipt, error)
	FlushFeedback(ctx context.Context) (int, error)
	Subscribe(ctx context.Context, sub neogeo.Subscription) (string, error)
	Unsubscribe(ctx context.Context, id string) error
	OpenSubscription(ctx context.Context, id string) (*neogeo.SubscriptionStream, error)
}

// Server serves a neogeo System over HTTP.
type Server struct {
	sys           System
	drainInterval time.Duration
	drainBatch    int
	// ckptInterval is the periodic-checkpoint cadence (0: none). It
	// defaults to what the system was built with (WithCheckpointInterval
	// on the facade) and can be overridden per server.
	ckptInterval time.Duration
	// decayInterval/decayFloor run the certainty-ageing loop (0: off).
	decayInterval time.Duration
	decayFloor    float64
	// stallAfter is how long the queue may hold pending messages without
	// any acknowledgement progress before /healthz degrades.
	stallAfter time.Duration
	// heartbeat is the SSE comment-line cadence on quiet subscription
	// streams.
	heartbeat time.Duration
	log       *slog.Logger
	// routes is the path -> method -> handler table, built once in New;
	// everything off it is a JSON 404/405.
	routes map[string]map[string]http.HandlerFunc

	// progressMu guards the drain-progress watermark behind the
	// stalled-queue health signal.
	progressMu     sync.Mutex
	progressSeen   bool
	progressCount  int
	progressMarkAt time.Time
}

// Option configures a Server.
type Option func(*Server)

// WithDrainInterval sets how often the background drain loop empties the
// queue (default 250ms).
func WithDrainInterval(d time.Duration) Option {
	return func(s *Server) { s.drainInterval = d }
}

// WithDrainBatch caps how many messages one drain pass dispatches
// (default 0: drain until empty).
func WithDrainBatch(n int) Option {
	return func(s *Server) { s.drainBatch = n }
}

// WithCheckpointInterval overrides the periodic-checkpoint cadence Run
// uses (default: the system's own CheckpointInterval; 0 disables the
// loop, leaving only POST /v1/checkpoint and shutdown checkpoints).
func WithCheckpointInterval(d time.Duration) Option {
	return func(s *Server) { s.ckptInterval = d }
}

// WithDecayInterval makes Run age stored certainties every d
// (default 0: no decay loop).
func WithDecayInterval(d time.Duration) Option {
	return func(s *Server) { s.decayInterval = d }
}

// WithDecayFloor sets the certainty below which a decayed record is
// deleted (default 0.05).
func WithDecayFloor(f float64) Option {
	return func(s *Server) { s.decayFloor = f }
}

// WithStallAfter sets how long pending messages may sit without any
// acknowledgement progress before /healthz reports the queue stalled
// (default 5s, floored at 10 drain intervals).
func WithStallAfter(d time.Duration) Option {
	return func(s *Server) { s.stallAfter = d }
}

// WithHeartbeatInterval sets how often a quiet subscription stream
// emits an SSE comment line so intermediaries keep the connection open
// (default 15s).
func WithHeartbeatInterval(d time.Duration) Option {
	return func(s *Server) { s.heartbeat = d }
}

// WithLogger routes the server's diagnostics (drain/checkpoint/decay
// errors, masked 500 causes) to logf (default: the process slog
// logger). The printf-shaped signature is kept for compatibility;
// structured records render onto it as "msg key=value ..." lines.
func WithLogger(logf func(format string, args ...any)) Option {
	return func(s *Server) { s.log = slog.New(obs.NewLogfHandler(logf)) }
}

// WithSlog routes the server's diagnostics to a structured logger
// directly (the daemon passes its -log-format/-log-level logger here).
func WithSlog(l *slog.Logger) Option {
	return func(s *Server) { s.log = l }
}

// New wires a server around a built system.
func New(sys System, opts ...Option) *Server {
	s := &Server{
		sys:           sys,
		drainInterval: 250 * time.Millisecond,
		ckptInterval:  sys.CheckpointInterval(),
		decayFloor:    0.05,
		stallAfter:    5 * time.Second,
		heartbeat:     15 * time.Second,
		log:           slog.Default(),
	}
	for _, opt := range opts {
		opt(s)
	}
	if min := 10 * s.drainInterval; s.stallAfter < min {
		s.stallAfter = min
	}
	s.routes = map[string]map[string]http.HandlerFunc{
		"/v1/messages":   {http.MethodPost: s.handleSubmit},
		"/v1/ask":        {http.MethodPost: s.handleAsk},
		"/v1/feedback":   {http.MethodPost: s.handleFeedback},
		"/v1/subscribe":  {http.MethodPost: s.handleSubscribe},
		"/v1/decay":      {http.MethodPost: s.handleDecay},
		"/v1/checkpoint": {http.MethodPost: s.handleCheckpoint},
		"/v1/stats":      {http.MethodGet: s.handleStats},
		"/healthz":       {http.MethodGet: s.handleHealthz},
		"/metrics":       {http.MethodGet: obs.Handler(obs.Default()).ServeHTTP},
	}
	return s
}

// Run is the serving layer's background half: it drains the queue
// through the concurrent pipeline every drain interval (integrating
// what POST /v1/messages enqueued), checkpoints the store every
// checkpoint interval when durability is configured, and ages record
// certainties every decay interval when enabled. It returns when ctx is
// done and the in-flight pass has wound down; the final shutdown
// checkpoint is the daemon's, ordered after Run returns and before the
// queue WAL closes.
func (s *Server) Run(ctx context.Context) {
	drain := time.NewTicker(s.drainInterval)
	defer drain.Stop()
	var ckptC, decayC <-chan time.Time
	if s.ckptInterval > 0 {
		t := time.NewTicker(s.ckptInterval)
		defer t.Stop()
		ckptC = t.C
	}
	if s.decayInterval > 0 {
		t := time.NewTicker(s.decayInterval)
		defer t.Stop()
		decayC = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-drain.C:
			for _, err := range s.sys.Drain(ctx, s.drainBatch) {
				if err != nil {
					s.log.Error("server: drain failed", "err", err)
				}
			}
			// Apply buffered feedback on the drain cadence, after the
			// pass: verdicts parked at recovery wait for the drain to
			// re-integrate their records, so this ordering converges.
			if _, err := s.sys.FlushFeedback(ctx); err != nil && ctx.Err() == nil {
				s.log.Error("server: feedback flush failed", "err", err)
			}
		case <-ckptC:
			if info, err := s.sys.Checkpoint(ctx); err != nil {
				if ctx.Err() == nil {
					s.log.Error("server: checkpoint failed", "err", err)
				}
			} else {
				s.log.Info("server: checkpoint written", "seq", info.Seq, "bytes", info.Bytes)
			}
		case <-decayC:
			decayed, deleted, err := s.sys.Decay(time.Now(), s.decayFloor)
			if err != nil {
				s.log.Error("server: decay failed", "err", err)
			} else if decayed+deleted > 0 {
				s.log.Info("server: decay pass", "aged", decayed, "dropped", deleted, "floor", s.decayFloor)
			}
		}
	}
}

// ServeHTTP routes requests with uniform JSON error mapping: unknown
// paths are 404 not_found, known paths with the wrong method are 405
// method_not_allowed (with an Allow header), malformed bodies are 400
// bad_request, and semantically rejected inputs are 422.
//
// Every request passes through the observability middleware first: a
// trace ID is accepted from X-Request-Id (or minted), echoed back on
// the response, and carried in the request context so handlers thread
// it into the pipeline; the route's count and latency are recorded
// with the route label bounded to the server's own table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	route := s.routeLabel(r.URL.Path)
	trace := sanitizeRequestID(r.Header.Get("X-Request-Id"))
	if trace == "" {
		trace = obs.NewTraceID()
	}
	w.Header().Set("X-Request-Id", trace)
	ctx, sp := obs.StartSpan(obs.WithTrace(r.Context(), trace), spanHTTPRequest)
	sp.SetAttr("route", route)
	sp.SetAttr("method", methodLabel(r.Method))
	r = r.WithContext(ctx)
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	// Deferred so a handler panic (net/http recovers it per connection)
	// still completes the root span — an unclosed root would pin the
	// trace in the recorder's active set forever. The panic is re-raised
	// after flagging the trace errored so the recorder always keeps it.
	defer func() {
		if rec := recover(); rec != nil {
			sp.SetError(fmt.Errorf("panic: %v", rec))
			sp.SetInt("status", sw.code)
			sp.End()
			panic(rec)
		}
		sp.SetInt("status", sw.code)
		sp.End()
		// The exemplar ties this route's latency bucket to the recorded
		// timeline; with tracing off the trace ID is "" and this is a plain
		// Observe.
		mHTTPSeconds.With(route).ObserveExemplar(time.Since(start).Seconds(), sp.TraceID())
		mHTTPRequests.With(route, methodLabel(r.Method), strconv.Itoa(sw.code/100)+"xx").Inc()
	}()
	s.route(sw, r)
}

// routeLabel collapses an arbitrary request path onto the server's
// fixed route vocabulary so the metric label stays bounded.
// Subscription sub-resources carry an ID in the path and collapse to a
// template; everything unknown is "other".
func (s *Server) routeLabel(path string) string {
	if _, known := s.routes[path]; known {
		return path
	}
	if _, stream, ok := subscribePath(path); ok {
		if stream {
			return "/v1/subscribe/{id}/stream"
		}
		return "/v1/subscribe/{id}"
	}
	if _, ok := tracesPath(path); ok {
		return "/v1/traces/{id}"
	}
	return "other"
}

// methodLabel collapses the request method onto the handful the API
// serves; arbitrary client-supplied methods must not mint series.
func methodLabel(m string) string {
	switch m {
	case http.MethodGet, http.MethodPost, http.MethodPut, http.MethodDelete, http.MethodHead:
		return m
	}
	return "other"
}

// route is the dispatch half of ServeHTTP, after the middleware.
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	byMethod, ok := s.routes[r.URL.Path]
	if !ok {
		if id, stream, subOK := subscribePath(r.URL.Path); subOK {
			switch {
			case stream && r.Method == http.MethodGet:
				s.handleStream(w, r, id)
			case !stream && r.Method == http.MethodDelete:
				s.handleUnsubscribe(w, r, id)
			default:
				allow := http.MethodDelete
				if stream {
					allow = http.MethodGet
				}
				w.Header().Set("Allow", allow)
				s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
					fmt.Sprintf("%s does not accept %s", r.URL.Path, r.Method), nil)
			}
			return
		}
		if id, traceOK := tracesPath(r.URL.Path); traceOK {
			if r.Method == http.MethodGet {
				s.handleTrace(w, r, id)
			} else {
				w.Header().Set("Allow", http.MethodGet)
				s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
					fmt.Sprintf("%s does not accept %s", r.URL.Path, r.Method), nil)
			}
			return
		}
		s.writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no such endpoint: %s", r.URL.Path), nil)
		return
	}
	h, ok := byMethod[r.Method]
	if !ok {
		allowed := make([]string, 0, len(byMethod))
		for m := range byMethod {
			allowed = append(allowed, m)
		}
		w.Header().Set("Allow", strings.Join(allowed, ", "))
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("%s does not accept %s", r.URL.Path, r.Method), nil)
		return
	}
	h(w, r)
}

// statusWriter records the status code ServeHTTP's metrics need; a
// handler that never calls WriteHeader implies 200.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the wrapped writer so streaming handlers can reach the
// connection's Flusher through the metrics middleware.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// sanitizeRequestID bounds a caller-supplied trace ID: at most 64 bytes
// of printable ASCII with no spaces or quotes, so arbitrary header
// junk cannot wreck log lines. Anything else is discarded (a fresh ID
// is minted instead).
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' {
			return ""
		}
	}
	return id
}

// submitRequest is the POST /v1/messages body.
type submitRequest struct {
	Text   string `json:"text"`
	Source string `json:"source"`
}

// submitResponse acknowledges an enqueued message.
type submitResponse struct {
	ID     int64  `json:"id"`
	Status string `json:"status"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		s.writeError(w, http.StatusUnprocessableEntity, "empty_message", "text must not be empty", nil)
		return
	}
	id, err := s.sys.Submit(r.Context(), req.Text, req.Source)
	if err != nil {
		if errors.Is(err, neogeo.ErrQueueClosed) {
			s.writeError(w, http.StatusServiceUnavailable, "queue_closed", "the system is shutting down", nil)
			return
		}
		s.internalError(w, r, "submit", err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, submitResponse{ID: id, Status: "queued"})
}

// askRequest is the POST /v1/ask body. Explain asks for the answer's
// own span breakdown alongside the answer — same computation, same
// bytes, plus a "trace" field.
type askRequest struct {
	Question string `json:"question"`
	Source   string `json:"source"`
	Explain  bool   `json:"explain,omitempty"`
}

// askResponse wraps the structured answer; Trace is present only in
// explain mode, so a plain response's bytes never change.
type askResponse struct {
	Answer answerJSON `json:"answer"`
	Trace  *traceJSON `json:"trace,omitempty"`
}

// traceJSON is the explain-mode breakdown: the trace ID (fetchable via
// GET /v1/traces/{id} while the recorder holds it), whether a recorder
// is installed, and the span subtree of this very Ask.
type traceJSON struct {
	TraceID   string        `json:"trace_id"`
	Recorded  bool          `json:"recorded"`
	Breakdown *obs.SpanView `json:"breakdown"`
}

// answerJSON mirrors neogeo.Answer on the wire.
type answerJSON struct {
	Text    string       `json:"text"`
	Query   string       `json:"query"`
	Results []resultJSON `json:"results"`
}

type resultJSON struct {
	ID        int64             `json:"id"`
	Certainty float64           `json:"certainty"`
	CondP     float64           `json:"cond_p"`
	Location  *locationJSON     `json:"location,omitempty"`
	Fields    map[string]string `json:"fields"`
}

type locationJSON struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req askRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Question) == "" {
		s.writeError(w, http.StatusUnprocessableEntity, "empty_question", "question must not be empty", nil)
		return
	}
	ctx := r.Context()
	var explain *obs.Span
	if req.Explain {
		// ForceSpan records even with no recorder installed and marks
		// the trace force-kept, so the returned trace ID stays
		// fetchable when one is. The Ask call itself is identical to
		// the plain path — explain must never perturb the answer.
		ctx, explain = obs.ForceSpan(ctx, spanAskExplain)
	}
	ans, err := s.sys.Ask(ctx, req.Question, req.Source)
	if explain != nil {
		explain.SetError(err)
		explain.End()
	}
	if err != nil {
		var naq *neogeo.NotAQuestionError
		if errors.As(err, &naq) {
			s.writeError(w, http.StatusUnprocessableEntity, "not_a_question",
				"the message was classified as a contribution, not a question; submit it to /v1/messages instead",
				map[string]any{
					"type":        string(naq.Type),
					"probability": naq.Probability,
				})
			return
		}
		s.internalError(w, r, "ask", err)
		return
	}
	resp := askResponse{Answer: answerJSON{Text: ans.Text, Query: ans.Query, Results: []resultJSON{}}}
	for _, res := range ans.Results {
		rj := resultJSON{ID: res.ID, Certainty: res.Certainty, CondP: res.CondP, Fields: res.Fields}
		if res.Location != nil {
			rj.Location = &locationJSON{Lat: res.Location.Lat, Lon: res.Location.Lon}
		}
		resp.Answer.Results = append(resp.Answer.Results, rj)
	}
	if explain != nil {
		resp.Trace = &traceJSON{
			TraceID:   explain.TraceID(),
			Recorded:  obs.DefaultRecorder() != nil,
			Breakdown: explainBreakdown(explain),
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// feedbackRequest is the POST /v1/feedback body.
type feedbackRequest struct {
	RecordID int64         `json:"record_id"`
	Verdict  string        `json:"verdict"`
	Field    string        `json:"field,omitempty"`
	Value    string        `json:"value,omitempty"`
	Location *locationJSON `json:"location,omitempty"`
	Source   string        `json:"source,omitempty"`
}

// feedbackResponse acknowledges an accepted verdict. Status "accepted"
// says the verdict is durably logged and will apply within one drain
// interval; the effects are not yet visible.
type feedbackResponse struct {
	Seq    int64  `json:"seq"`
	Status string `json:"status"`
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req feedbackRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	fb := neogeo.Feedback{
		RecordID: req.RecordID,
		Verdict:  neogeo.Verdict(req.Verdict),
		Field:    req.Field,
		Value:    req.Value,
		Source:   req.Source,
	}
	if req.Location != nil {
		fb.Location = &neogeo.Location{Lat: req.Location.Lat, Lon: req.Location.Lon}
	}
	receipt, err := s.sys.Feedback(r.Context(), fb)
	if err != nil {
		switch {
		case errors.Is(err, neogeo.ErrInvalidFeedback):
			s.writeError(w, http.StatusUnprocessableEntity, "invalid_feedback", err.Error(), nil)
		case errors.Is(err, neogeo.ErrUnknownRecord):
			s.writeError(w, http.StatusNotFound, "unknown_record",
				fmt.Sprintf("no record %d exists; feedback must reference a result id from an answer", req.RecordID), nil)
		case errors.Is(err, neogeo.ErrStaleAnswer):
			s.writeError(w, http.StatusGone, "stale_answer",
				fmt.Sprintf("record %d no longer exists (it decayed or was corrected away); ask again for a fresh answer", req.RecordID), nil)
		default:
			s.internalError(w, r, "feedback", err)
		}
		return
	}
	s.writeJSON(w, http.StatusAccepted, feedbackResponse{Seq: receipt.Seq, Status: "accepted"})
}

// decayRequest is the POST /v1/decay body; an empty body uses the
// server's configured floor.
type decayRequest struct {
	Floor *float64 `json:"floor,omitempty"`
}

// decayResponse reports one certainty-ageing pass.
type decayResponse struct {
	Decayed int     `json:"decayed"`
	Deleted int     `json:"deleted"`
	Floor   float64 `json:"floor"`
}

func (s *Server) handleDecay(w http.ResponseWriter, r *http.Request) {
	var req decayRequest
	if r.ContentLength != 0 {
		if !s.decodeJSON(w, r, &req) {
			return
		}
	}
	floor := s.decayFloor
	if req.Floor != nil {
		floor = *req.Floor
		if floor < -1 || floor > 1 {
			s.writeError(w, http.StatusUnprocessableEntity, "invalid_floor",
				fmt.Sprintf("floor %v outside [-1, 1]", floor), nil)
			return
		}
	}
	decayed, deleted, err := s.sys.Decay(time.Now(), floor)
	if err != nil {
		s.internalError(w, r, "decay", err)
		return
	}
	s.writeJSON(w, http.StatusOK, decayResponse{Decayed: decayed, Deleted: deleted, Floor: floor})
}

// checkpointResponse acknowledges an admin-triggered checkpoint.
type checkpointResponse struct {
	Seq    uint64 `json:"seq"`
	Bytes  int64  `json:"bytes"`
	Status string `json:"status"`
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	info, err := s.sys.Checkpoint(r.Context())
	if err != nil {
		if errors.Is(err, neogeo.ErrNoDataDir) {
			s.writeError(w, http.StatusUnprocessableEntity, "checkpoint_unconfigured",
				"the system has no data directory; start it with -data-dir to enable checkpoints", nil)
			return
		}
		s.internalError(w, r, "checkpoint", err)
		return
	}
	s.writeJSON(w, http.StatusOK, checkpointResponse{Seq: info.Seq, Bytes: info.Bytes, Status: "written"})
}

// statsResponse is the GET /v1/stats body.
type statsResponse struct {
	Gazetteer   gazetteerJSON  `json:"gazetteer"`
	Queue       queueJSON      `json:"queue"`
	Collections map[string]int `json:"collections"`
	Shards      shardsJSON     `json:"shards"`
	Checkpoint  checkpointJSON `json:"checkpoint"`
	Feedback    feedbackJSON   `json:"feedback"`
	Decay       decayJSON      `json:"decay"`
	Cache       cacheJSON      `json:"cache"`
	Subs        subsJSON       `json:"subscriptions"`
	Traces      tracesJSON     `json:"traces"`
}

// tracesJSON is the span flight recorder's snapshot: configured or
// not, fill level, and the keep/drop/evict counters.
type tracesJSON struct {
	Enabled              bool    `json:"enabled"`
	Capacity             int     `json:"capacity"`
	Kept                 int     `json:"kept"`
	Active               int     `json:"active"`
	Completed            uint64  `json:"completed"`
	KeptTotal            uint64  `json:"kept_total"`
	Dropped              uint64  `json:"dropped"`
	Evicted              uint64  `json:"evicted"`
	SlowThresholdSeconds float64 `json:"slow_threshold_seconds"`
	SampleN              int     `json:"sample_n"`
}

// cacheJSON is the answer cache's snapshot: configured or not, fill
// level, and the hit/miss/eviction/invalidation counters behind the
// hit rate.
type cacheJSON struct {
	Enabled       bool    `json:"enabled"`
	Entries       int     `json:"entries"`
	Capacity      int     `json:"capacity"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	HitRate       float64 `json:"hit_rate"`
	Evictions     int64   `json:"evictions"`
	Invalidations int64   `json:"invalidations"`
}

// subsJSON is the standing-query broadcaster's snapshot.
type subsJSON struct {
	Active    int   `json:"active"`
	Delivered int64 `json:"delivered"`
	Dropped   int64 `json:"dropped"`
}

// feedbackJSON is the feedback subsystem's counters: how many verdicts
// arrived, how many have applied (by kind), and how many are buffered
// (deferred = parked by recovery until their record re-integrates).
type feedbackJSON struct {
	Accepted     int64 `json:"accepted"`
	Replayed     int64 `json:"replayed"`
	Applied      int64 `json:"applied"`
	Confirmed    int64 `json:"confirmed"`
	Rejected     int64 `json:"rejected"`
	Corrected    int64 `json:"corrected"`
	Pending      int   `json:"pending"`
	Deferred     int   `json:"deferred"`
	DroppedStale int64 `json:"dropped_stale"`
}

// decayJSON is the certainty-ageing totals across loop and admin runs.
type decayJSON struct {
	Runs    int64 `json:"runs"`
	Decayed int64 `json:"decayed"`
	Deleted int64 `json:"deleted"`
}

func feedbackBody(st neogeo.FeedbackStats) feedbackJSON {
	return feedbackJSON{
		Accepted:     st.Accepted,
		Replayed:     st.Replayed,
		Applied:      st.Applied,
		Confirmed:    st.Confirmed,
		Rejected:     st.Rejected,
		Corrected:    st.Corrected,
		Pending:      st.Pending,
		Deferred:     st.Deferred,
		DroppedStale: st.DroppedStale,
	}
}

type gazetteerJSON struct {
	Entries int `json:"entries"`
	Names   int `json:"names"`
}

type queueJSON struct {
	Pending         int `json:"pending"`
	InFlight        int `json:"in_flight"`
	Acked           int `json:"acked"`
	DeadLettered    int `json:"dead_lettered"`
	WALAppendErrors int `json:"wal_append_errors"`
}

type shardsJSON struct {
	Count   int   `json:"count"`
	Records []int `json:"records"`
}

// checkpointJSON is the durability snapshot: whether checkpointing is
// configured, how many images this process wrote, and the newest
// image's identity and age (null until one exists).
type checkpointJSON struct {
	Enabled        bool     `json:"enabled"`
	Count          int      `json:"count"`
	LastSeq        uint64   `json:"last_seq"`
	LastBytes      int64    `json:"last_bytes"`
	LastAgeSeconds *float64 `json:"last_age_seconds"`
}

func checkpointBody(st neogeo.CheckpointStats) checkpointJSON {
	out := checkpointJSON{
		Enabled:   st.Enabled,
		Count:     st.Count,
		LastSeq:   st.LastSeq,
		LastBytes: st.LastBytes,
	}
	if st.LastSeq > 0 {
		age := st.LastAge.Seconds()
		out.LastAgeSeconds = &age
	}
	return out
}

func queueBody(st neogeo.QueueStats) queueJSON {
	return queueJSON{
		Pending:         st.Pending,
		InFlight:        st.InFlight,
		Acked:           st.Acked,
		DeadLettered:    st.DeadLettered,
		WALAppendErrors: st.WALAppendErrors,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.sys.Stats()
	s.writeJSON(w, http.StatusOK, statsResponse{
		Gazetteer:   gazetteerJSON{Entries: st.GazetteerEntries, Names: st.GazetteerNames},
		Queue:       queueBody(st.Queue),
		Collections: st.Collections,
		Shards:      shardsJSON{Count: st.Shards, Records: st.ShardRecords},
		Checkpoint:  checkpointBody(st.Checkpoint),
		Feedback:    feedbackBody(st.Feedback),
		Decay:       decayJSON{Runs: st.Decay.Runs, Decayed: st.Decay.Decayed, Deleted: st.Decay.Deleted},
		Cache: cacheJSON{
			Enabled:       st.Cache.Enabled,
			Entries:       st.Cache.Entries,
			Capacity:      st.Cache.Capacity,
			Hits:          st.Cache.Hits,
			Misses:        st.Cache.Misses,
			HitRate:       st.Cache.HitRate,
			Evictions:     st.Cache.Evictions,
			Invalidations: st.Cache.Invalidations,
		},
		Subs: subsJSON{
			Active:    st.Subscriptions.Active,
			Delivered: st.Subscriptions.Delivered,
			Dropped:   st.Subscriptions.Dropped,
		},
		Traces: tracesJSON{
			Enabled:              st.Traces.Enabled,
			Capacity:             st.Traces.Capacity,
			Kept:                 st.Traces.Kept,
			Active:               st.Traces.Active,
			Completed:            st.Traces.Completed,
			KeptTotal:            st.Traces.KeptTotal,
			Dropped:              st.Traces.Dropped,
			Evicted:              st.Traces.Evicted,
			SlowThresholdSeconds: st.Traces.SlowThresholdSeconds,
			SampleN:              st.Traces.SampleN,
		},
	})
}

// healthResponse is the GET /healthz body: liveness plus the signals an
// orchestrator acts on — queue health, shard balance, durability state,
// and the reasons behind a degraded status.
type healthResponse struct {
	Status     string         `json:"status"`
	Reasons    []string       `json:"reasons,omitempty"`
	Queue      queueJSON      `json:"queue"`
	Shards     []int          `json:"shards"`
	Checkpoint checkpointJSON `json:"checkpoint"`
}

// health decides the service's status from a stats snapshot: degraded
// when messages have dead-lettered (contributions were dropped), when
// the queue-WAL diverged on the dead-letter path, when pending
// messages have sat without any acknowledgement progress for longer
// than the stall window (the drain loop is wedged or not running), or
// when durability has gone stale — the last checkpoint attempt failed,
// or the newest image is more than twice the checkpoint interval old
// (the loop stopped making progress).
func (s *Server) health(st neogeo.Stats, now time.Time) (status string, reasons []string) {
	s.progressMu.Lock()
	progress := st.Queue.Acked + st.Queue.DeadLettered
	if !s.progressSeen || progress != s.progressCount || st.Queue.Pending == 0 {
		s.progressSeen = true
		s.progressCount = progress
		s.progressMarkAt = now
	}
	stalled := st.Queue.Pending > 0 && now.Sub(s.progressMarkAt) >= s.stallAfter
	s.progressMu.Unlock()

	if st.Queue.DeadLettered > 0 {
		reasons = append(reasons, "dead_letters")
	}
	if st.Queue.WALAppendErrors > 0 {
		reasons = append(reasons, "wal_append_errors")
	}
	if stalled {
		reasons = append(reasons, "queue_stalled")
	}
	if s.checkpointStale(st.Checkpoint) {
		reasons = append(reasons, "checkpoint_stale")
	}
	if len(reasons) > 0 {
		return "degraded", reasons
	}
	return "ok", nil
}

// checkpointStale reports whether the durability subsystem has fallen
// behind: the most recent checkpoint attempt failed, or periodic
// checkpoints are configured, at least one image exists, and the
// newest one is more than twice the interval old. Staleness by age is
// only judged against this server's own loop cadence — a system built
// without an interval checkpoints on demand and is never "late".
func (s *Server) checkpointStale(ck neogeo.CheckpointStats) bool {
	if !ck.Enabled {
		return false
	}
	if ck.LastError != "" {
		return true
	}
	return s.ckptInterval > 0 && ck.LastSeq > 0 && ck.LastAge > 2*s.ckptInterval
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.sys.Stats()
	status, reasons := s.health(st, time.Now())
	code := http.StatusOK
	if status != "ok" {
		// 503 so orchestrators keying on the status code act without
		// parsing the body.
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, healthResponse{
		Status:     status,
		Reasons:    reasons,
		Queue:      queueBody(st.Queue),
		Shards:     st.ShardRecords,
		Checkpoint: checkpointBody(st.Checkpoint),
	})
}

// errorResponse is the uniform error envelope.
type errorResponse struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Detail carries condition-specific fields (the classification for
	// not_a_question).
	Detail map[string]any `json:"detail,omitempty"`
}

// internalError logs the real failure and serves a generic envelope:
// internal error strings name pipeline paths and shard layouts, which
// belong in the operator's log, not on the wire.
func (s *Server) internalError(w http.ResponseWriter, r *http.Request, op string, err error) {
	s.log.Error("server: request failed", "op", op, "trace", obs.Trace(r.Context()), "err", err)
	s.writeError(w, http.StatusInternalServerError, "internal", "internal error", nil)
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, message string, detail map[string]any) {
	s.writeJSON(w, status, errorResponse{Error: errorBody{Code: code, Message: message, Detail: detail}})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The status line is gone; all that's left is to record why the
		// body broke off (usually the client hanging up mid-response).
		s.log.Warn("server: writing response", "err", err)
	}
}

// decodeJSON reads a JSON body strictly (unknown fields rejected, at most
// 1 MiB), writing a 400 and returning false on failure.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("malformed JSON body: %v", err), nil)
		return false
	}
	return true
}
