// Package server exposes the neogeo facade as a JSON HTTP API — the
// network surface of the paper's deployment story, where user
// contributions and requests arrive as web traffic instead of a terminal
// stream. It is a serving layer over the public facade only: handlers
// speak neogeo.System, neogeo.Answer and the facade's sentinel errors,
// never the internal pipeline, so everything the HTTP surface can do is
// by construction available to library callers too.
//
// Endpoints (see docs/API.md for the full contract):
//
//	POST /v1/messages  submit a contribution for asynchronous integration
//	POST /v1/ask       answer a question synchronously
//	GET  /v1/stats     store, shard and queue statistics
//	GET  /healthz      liveness + queue health
//
// Submitted messages are integrated by a background drain loop (Run)
// that periodically drains the queue through the concurrent pipeline via
// the facade's streaming iterator.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	neogeo "repro"
)

// Server serves a neogeo System over HTTP.
type Server struct {
	sys           *neogeo.System
	drainInterval time.Duration
	drainBatch    int
	logf          func(format string, args ...any)
	// routes is the path -> method -> handler table, built once in New;
	// everything off it is a JSON 404/405.
	routes map[string]map[string]http.HandlerFunc
}

// Option configures a Server.
type Option func(*Server)

// WithDrainInterval sets how often the background drain loop empties the
// queue (default 250ms).
func WithDrainInterval(d time.Duration) Option {
	return func(s *Server) { s.drainInterval = d }
}

// WithDrainBatch caps how many messages one drain pass dispatches
// (default 0: drain until empty).
func WithDrainBatch(n int) Option {
	return func(s *Server) { s.drainBatch = n }
}

// WithLogger routes the server's diagnostics (drain errors) to logf
// (default log.Printf).
func WithLogger(logf func(format string, args ...any)) Option {
	return func(s *Server) { s.logf = logf }
}

// New wires a server around a built system.
func New(sys *neogeo.System, opts ...Option) *Server {
	s := &Server{
		sys:           sys,
		drainInterval: 250 * time.Millisecond,
		logf:          log.Printf,
	}
	for _, opt := range opts {
		opt(s)
	}
	s.routes = map[string]map[string]http.HandlerFunc{
		"/v1/messages": {http.MethodPost: s.handleSubmit},
		"/v1/ask":      {http.MethodPost: s.handleAsk},
		"/v1/stats":    {http.MethodGet: s.handleStats},
		"/healthz":     {http.MethodGet: s.handleHealthz},
	}
	return s
}

// Run drains the queue through the concurrent pipeline every drain
// interval until ctx is cancelled — the background half of the serving
// layer, integrating what POST /v1/messages enqueued. It returns when
// ctx is done and the in-flight drain pass has wound down.
func (s *Server) Run(ctx context.Context) {
	ticker := time.NewTicker(s.drainInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			for _, err := range s.sys.Drain(ctx, s.drainBatch) {
				if err != nil {
					s.logf("server: drain: %v", err)
				}
			}
		}
	}
}

// ServeHTTP routes requests with uniform JSON error mapping: unknown
// paths are 404 not_found, known paths with the wrong method are 405
// method_not_allowed (with an Allow header), malformed bodies are 400
// bad_request, and semantically rejected inputs are 422.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	byMethod, ok := s.routes[r.URL.Path]
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no such endpoint: %s", r.URL.Path), nil)
		return
	}
	h, ok := byMethod[r.Method]
	if !ok {
		allowed := make([]string, 0, len(byMethod))
		for m := range byMethod {
			allowed = append(allowed, m)
		}
		w.Header().Set("Allow", strings.Join(allowed, ", "))
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("%s does not accept %s", r.URL.Path, r.Method), nil)
		return
	}
	h(w, r)
}

// submitRequest is the POST /v1/messages body.
type submitRequest struct {
	Text   string `json:"text"`
	Source string `json:"source"`
}

// submitResponse acknowledges an enqueued message.
type submitResponse struct {
	ID     int64  `json:"id"`
	Status string `json:"status"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		writeError(w, http.StatusUnprocessableEntity, "empty_message", "text must not be empty", nil)
		return
	}
	id, err := s.sys.Submit(r.Context(), req.Text, req.Source)
	if err != nil {
		if errors.Is(err, neogeo.ErrQueueClosed) {
			writeError(w, http.StatusServiceUnavailable, "queue_closed", "the system is shutting down", nil)
			return
		}
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{ID: id, Status: "queued"})
}

// askRequest is the POST /v1/ask body.
type askRequest struct {
	Question string `json:"question"`
	Source   string `json:"source"`
}

// askResponse wraps the structured answer.
type askResponse struct {
	Answer answerJSON `json:"answer"`
}

// answerJSON mirrors neogeo.Answer on the wire.
type answerJSON struct {
	Text    string       `json:"text"`
	Query   string       `json:"query"`
	Results []resultJSON `json:"results"`
}

type resultJSON struct {
	ID        int64             `json:"id"`
	Certainty float64           `json:"certainty"`
	CondP     float64           `json:"cond_p"`
	Location  *locationJSON     `json:"location,omitempty"`
	Fields    map[string]string `json:"fields"`
}

type locationJSON struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req askRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Question) == "" {
		writeError(w, http.StatusUnprocessableEntity, "empty_question", "question must not be empty", nil)
		return
	}
	ans, err := s.sys.Ask(r.Context(), req.Question, req.Source)
	if err != nil {
		var naq *neogeo.NotAQuestionError
		if errors.As(err, &naq) {
			writeError(w, http.StatusUnprocessableEntity, "not_a_question",
				"the message was classified as a contribution, not a question; submit it to /v1/messages instead",
				map[string]any{
					"type":        string(naq.Type),
					"probability": naq.Probability,
				})
			return
		}
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), nil)
		return
	}
	resp := askResponse{Answer: answerJSON{Text: ans.Text, Query: ans.Query, Results: []resultJSON{}}}
	for _, res := range ans.Results {
		rj := resultJSON{ID: res.ID, Certainty: res.Certainty, CondP: res.CondP, Fields: res.Fields}
		if res.Location != nil {
			rj.Location = &locationJSON{Lat: res.Location.Lat, Lon: res.Location.Lon}
		}
		resp.Answer.Results = append(resp.Answer.Results, rj)
	}
	writeJSON(w, http.StatusOK, resp)
}

// statsResponse is the GET /v1/stats body.
type statsResponse struct {
	Gazetteer   gazetteerJSON  `json:"gazetteer"`
	Queue       queueJSON      `json:"queue"`
	Collections map[string]int `json:"collections"`
	Shards      shardsJSON     `json:"shards"`
}

type gazetteerJSON struct {
	Entries int `json:"entries"`
	Names   int `json:"names"`
}

type queueJSON struct {
	Pending      int `json:"pending"`
	InFlight     int `json:"in_flight"`
	Acked        int `json:"acked"`
	DeadLettered int `json:"dead_lettered"`
}

type shardsJSON struct {
	Count   int   `json:"count"`
	Records []int `json:"records"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.sys.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		Gazetteer:   gazetteerJSON{Entries: st.GazetteerEntries, Names: st.GazetteerNames},
		Queue:       queueJSON{Pending: st.Queue.Pending, InFlight: st.Queue.InFlight, Acked: st.Queue.Acked, DeadLettered: st.Queue.DeadLettered},
		Collections: st.Collections,
		Shards:      shardsJSON{Count: st.Shards, Records: st.ShardRecords},
	})
}

// healthResponse is the GET /healthz body: liveness plus the two signals
// an operator watches — queue health and shard balance.
type healthResponse struct {
	Status string    `json:"status"`
	Queue  queueJSON `json:"queue"`
	Shards []int     `json:"shards"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.sys.Stats()
	writeJSON(w, http.StatusOK, healthResponse{
		Status: "ok",
		Queue:  queueJSON{Pending: st.Queue.Pending, InFlight: st.Queue.InFlight, Acked: st.Queue.Acked, DeadLettered: st.Queue.DeadLettered},
		Shards: st.ShardRecords,
	})
}

// errorResponse is the uniform error envelope.
type errorResponse struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Detail carries condition-specific fields (the classification for
	// not_a_question).
	Detail map[string]any `json:"detail,omitempty"`
}

func writeError(w http.ResponseWriter, status int, code, message string, detail map[string]any) {
	writeJSON(w, status, errorResponse{Error: errorBody{Code: code, Message: message, Detail: detail}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// decodeJSON reads a JSON body strictly (unknown fields rejected, at most
// 1 MiB), writing a 400 and returning false on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("malformed JSON body: %v", err), nil)
		return false
	}
	return true
}
