package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	neogeo "repro"
)

// subscribeRequest is the POST /v1/subscribe body: a standing query.
// Exactly one of key or center selects the matching axis.
type subscribeRequest struct {
	Collection   string        `json:"collection,omitempty"`
	Key          string        `json:"key,omitempty"`
	Center       *locationJSON `json:"center,omitempty"`
	RadiusMeters float64       `json:"radius_meters,omitempty"`
}

// subscribeResponse acknowledges a registered standing query and tells
// the caller where its event stream lives.
type subscribeResponse struct {
	ID     string `json:"id"`
	Stream string `json:"stream"`
	Status string `json:"status"`
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req subscribeRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	sub := neogeo.Subscription{
		Collection:   req.Collection,
		Key:          req.Key,
		RadiusMeters: req.RadiusMeters,
	}
	if req.Center != nil {
		sub.Center = &neogeo.Location{Lat: req.Center.Lat, Lon: req.Center.Lon}
	}
	id, err := s.sys.Subscribe(r.Context(), sub)
	if err != nil {
		switch {
		case errors.Is(err, neogeo.ErrInvalidSubscription):
			s.writeError(w, http.StatusUnprocessableEntity, "invalid_subscription", err.Error(), nil)
		case errors.Is(err, neogeo.ErrSubscriptionClosed):
			s.writeError(w, http.StatusServiceUnavailable, "subscriptions_closed", "the system is shutting down", nil)
		default:
			s.internalError(w, r, "subscribe", err)
		}
		return
	}
	s.writeJSON(w, http.StatusCreated, subscribeResponse{
		ID:     id,
		Stream: "/v1/subscribe/" + id + "/stream",
		Status: "registered",
	})
}

// unsubscribeResponse acknowledges a cancelled standing query.
type unsubscribeResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"`
}

func (s *Server) handleUnsubscribe(w http.ResponseWriter, r *http.Request, id string) {
	if err := s.sys.Unsubscribe(r.Context(), id); err != nil {
		if errors.Is(err, neogeo.ErrUnknownSubscription) {
			s.writeError(w, http.StatusNotFound, "unknown_subscription",
				fmt.Sprintf("no subscription %q exists", id), nil)
			return
		}
		s.internalError(w, r, "unsubscribe", err)
		return
	}
	s.writeJSON(w, http.StatusOK, unsubscribeResponse{ID: id, Status: "cancelled"})
}

// eventJSON mirrors neogeo.SubscriptionEvent on the SSE wire.
type eventJSON struct {
	Seq        int64             `json:"seq"`
	Action     string            `json:"action"`
	Collection string            `json:"collection"`
	RecordID   int64             `json:"record_id"`
	Certainty  float64           `json:"certainty"`
	Location   *locationJSON     `json:"location,omitempty"`
	Fields     map[string]string `json:"fields"`
	At         string            `json:"at"`
}

// handleStream serves GET /v1/subscribe/{id}/stream as Server-Sent
// Events: each matching write is one "record" event with a JSON payload,
// and comment-line heartbeats keep intermediaries from timing the
// connection out while the subscription is quiet. The stream runs until
// the client disconnects, the subscription is cancelled, or the system
// shuts down; each subscription feeds one stream at a time.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, id string) {
	flusher, ok := sseFlusher(w)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "streaming_unsupported",
			"the connection does not support streaming responses", nil)
		return
	}
	stream, err := s.sys.OpenSubscription(r.Context(), id)
	if err != nil {
		switch {
		case errors.Is(err, neogeo.ErrUnknownSubscription):
			s.writeError(w, http.StatusNotFound, "unknown_subscription",
				fmt.Sprintf("no subscription %q exists", id), nil)
		case errors.Is(err, neogeo.ErrStreamBusy):
			s.writeError(w, http.StatusConflict, "stream_busy",
				"another consumer already holds this subscription's stream", nil)
		default:
			s.internalError(w, r, "subscribe_stream", err)
		}
		return
	}
	defer stream.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		// A bounded wait per event interleaves heartbeats with data: the
		// facade's Next returns the context error on expiry, which is the
		// cue to emit a comment line and wait again.
		ctx, cancel := context.WithTimeout(r.Context(), s.heartbeat)
		ev, err := stream.Next(ctx)
		cancel()
		switch {
		case err == nil:
			if !s.writeEvent(w, flusher, ev) {
				return
			}
		case errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil:
			if _, werr := fmt.Fprint(w, ": heartbeat\n\n"); werr != nil {
				return
			}
			flusher.Flush()
		default:
			// Client gone or subscription cancelled/shut down; either way
			// the stream is over.
			return
		}
	}
}

// writeEvent emits one SSE frame; false means the client hung up.
func (s *Server) writeEvent(w http.ResponseWriter, flusher http.Flusher, ev neogeo.SubscriptionEvent) bool {
	body := eventJSON{
		Seq:        ev.Seq,
		Action:     ev.Action,
		Collection: ev.Collection,
		RecordID:   ev.RecordID,
		Certainty:  ev.Certainty,
		Fields:     ev.Fields,
		At:         ev.At.UTC().Format(time.RFC3339Nano),
	}
	if ev.Location != nil {
		body.Location = &locationJSON{Lat: ev.Location.Lat, Lon: ev.Location.Lon}
	}
	data, err := json.Marshal(body)
	if err != nil {
		s.log.Warn("server: marshalling subscription event", "err", err)
		return true
	}
	if _, err := fmt.Fprintf(w, "event: record\nid: %d\ndata: %s\n\n", ev.Seq, data); err != nil {
		return false
	}
	flusher.Flush()
	return true
}

// sseFlusher finds the connection's Flusher through any middleware
// wrapper that exposes Unwrap (the metrics statusWriter does), the same
// chain http.ResponseController walks.
func sseFlusher(w http.ResponseWriter) (http.Flusher, bool) {
	for {
		if f, ok := w.(http.Flusher); ok {
			return f, true
		}
		u, ok := w.(interface{ Unwrap() http.ResponseWriter })
		if !ok {
			return nil, false
		}
		w = u.Unwrap()
	}
}

// subscribePath parses the subscription sub-resource paths:
// /v1/subscribe/{id} and /v1/subscribe/{id}/stream.
func subscribePath(path string) (id string, stream, ok bool) {
	rest, found := strings.CutPrefix(path, "/v1/subscribe/")
	if !found || rest == "" {
		return "", false, false
	}
	if tail, isStream := strings.CutSuffix(rest, "/stream"); isStream {
		rest, stream = tail, true
	}
	if rest == "" || strings.Contains(rest, "/") {
		return "", false, false
	}
	return rest, stream, true
}
