package server

import "repro/internal/obs"

// HTTP surface metrics. The route label is bounded to the server's own
// route table (everything else observes as "other") so scrapes cannot be
// used to mint unbounded series from attacker-chosen paths.
var (
	mHTTPRequests = obs.Default().Counter("neogeo_http_requests_total",
		"HTTP requests served, by route, method and status-code class.",
		"route", "method", "code_class")
	mHTTPSeconds = obs.Default().Histogram("neogeo_http_request_seconds",
		"HTTP request wall time by route.", nil, "route")
)
