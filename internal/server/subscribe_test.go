package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	neogeo "repro"
)

func TestSubscribePathParsing(t *testing.T) {
	cases := []struct {
		path       string
		id         string
		stream, ok bool
	}{
		{"/v1/subscribe/abc123", "abc123", false, true},
		{"/v1/subscribe/abc123/stream", "abc123", true, true},
		{"/v1/subscribe/", "", false, false},
		{"/v1/subscribe//stream", "", false, false},
		{"/v1/subscribe/a/b", "", false, false},
		{"/v1/subscribe/a/b/stream", "", false, false},
		{"/v1/ask", "", false, false},
	}
	for _, tc := range cases {
		id, stream, ok := subscribePath(tc.path)
		if id != tc.id || stream != tc.stream || ok != tc.ok {
			t.Errorf("subscribePath(%q) = (%q, %v, %v), want (%q, %v, %v)",
				tc.path, id, stream, ok, tc.id, tc.stream, tc.ok)
		}
	}
}

// TestSubscribeHandlers pins the status-code contract of the standing
// query endpoints against a scripted system.
func TestSubscribeHandlers(t *testing.T) {
	t.Run("register", func(t *testing.T) {
		fake := &fakeSystem{}
		srv := New(fake, WithLogger(t.Logf))
		w := doJSON(t, srv, http.MethodPost, "/v1/subscribe", `{"collection":"Hotels","key":"Axel Hotel"}`)
		if w.Code != http.StatusCreated {
			t.Fatalf("status = %d: %s", w.Code, w.Body.String())
		}
		var resp subscribeResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.ID == "" || resp.Stream != "/v1/subscribe/"+resp.ID+"/stream" || resp.Status != "registered" {
			t.Fatalf("bad response: %+v", resp)
		}
	})
	t.Run("invalid spec", func(t *testing.T) {
		fake := &fakeSystem{subscribeErr: neogeo.ErrInvalidSubscription}
		srv := New(fake, WithLogger(t.Logf))
		w := doJSON(t, srv, http.MethodPost, "/v1/subscribe", `{}`)
		if w.Code != http.StatusUnprocessableEntity || !strings.Contains(w.Body.String(), "invalid_subscription") {
			t.Fatalf("status = %d: %s", w.Code, w.Body.String())
		}
	})
	t.Run("broker closed", func(t *testing.T) {
		fake := &fakeSystem{subscribeErr: neogeo.ErrSubscriptionClosed}
		srv := New(fake, WithLogger(t.Logf))
		w := doJSON(t, srv, http.MethodPost, "/v1/subscribe", `{"key":"x"}`)
		if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "subscriptions_closed") {
			t.Fatalf("status = %d: %s", w.Code, w.Body.String())
		}
	})
	t.Run("cancel", func(t *testing.T) {
		fake := &fakeSystem{}
		srv := New(fake, WithLogger(t.Logf))
		w := doJSON(t, srv, http.MethodDelete, "/v1/subscribe/sub1", "")
		if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "cancelled") {
			t.Fatalf("status = %d: %s", w.Code, w.Body.String())
		}
		if len(fake.unsubIDs) != 1 || fake.unsubIDs[0] != "sub1" {
			t.Fatalf("unsubscribed %v", fake.unsubIDs)
		}
	})
	t.Run("cancel unknown", func(t *testing.T) {
		fake := &fakeSystem{unsubErr: neogeo.ErrUnknownSubscription}
		srv := New(fake, WithLogger(t.Logf))
		w := doJSON(t, srv, http.MethodDelete, "/v1/subscribe/nope", "")
		if w.Code != http.StatusNotFound || !strings.Contains(w.Body.String(), "unknown_subscription") {
			t.Fatalf("status = %d: %s", w.Code, w.Body.String())
		}
	})
	t.Run("stream unknown", func(t *testing.T) {
		fake := &fakeSystem{openErr: neogeo.ErrUnknownSubscription}
		srv := New(fake, WithLogger(t.Logf))
		w := doJSON(t, srv, http.MethodGet, "/v1/subscribe/nope/stream", "")
		if w.Code != http.StatusNotFound {
			t.Fatalf("status = %d: %s", w.Code, w.Body.String())
		}
	})
	t.Run("stream busy", func(t *testing.T) {
		fake := &fakeSystem{openErr: neogeo.ErrStreamBusy}
		srv := New(fake, WithLogger(t.Logf))
		w := doJSON(t, srv, http.MethodGet, "/v1/subscribe/sub1/stream", "")
		if w.Code != http.StatusConflict || !strings.Contains(w.Body.String(), "stream_busy") {
			t.Fatalf("status = %d: %s", w.Code, w.Body.String())
		}
	})
	t.Run("method table", func(t *testing.T) {
		fake := &fakeSystem{}
		srv := New(fake, WithLogger(t.Logf))
		for _, tc := range []struct {
			method, path, allow string
		}{
			{http.MethodGet, "/v1/subscribe", http.MethodPost},
			{http.MethodGet, "/v1/subscribe/sub1", http.MethodDelete},
			{http.MethodPost, "/v1/subscribe/sub1/stream", http.MethodGet},
		} {
			w := doJSON(t, srv, tc.method, tc.path, "")
			if w.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status = %d", tc.method, tc.path, w.Code)
			}
			if got := w.Header().Get("Allow"); got != tc.allow {
				t.Errorf("%s %s: Allow = %q, want %q", tc.method, tc.path, got, tc.allow)
			}
		}
	})
}

// TestStreamHeartbeat holds a quiet stream open briefly: the handler must
// keep the connection alive with SSE comment lines at the configured
// cadence instead of data it does not have.
func TestStreamHeartbeat(t *testing.T) {
	fake := &fakeSystem{} // zero-value stream: Next never yields an event
	srv := New(fake, WithLogger(t.Logf), WithHeartbeatInterval(10*time.Millisecond))

	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest(http.MethodGet, "/v1/subscribe/sub1/stream", nil).WithContext(ctx)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req) // returns once the request context expires

	if ct := w.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if n := strings.Count(w.Body.String(), ": heartbeat\n\n"); n < 2 {
		t.Fatalf("saw %d heartbeats in %q, want >= 2", n, w.Body.String())
	}
}

// TestSSEEndToEnd is the full loop over real HTTP against a real system:
// register a standing query, open its SSE stream, submit a matching
// report, and watch the background drain's integration surface as an
// event frame on the wire; cancelling the subscription ends the stream.
func TestSSEEndToEnd(t *testing.T) {
	sys := newTestSystem(t)
	srv := New(sys, WithDrainInterval(5*time.Millisecond), WithLogger(t.Logf))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Run(ctx)
	}()
	defer func() { cancel(); <-done }()

	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/subscribe", "application/json",
		strings.NewReader(`{"collection":"Hotels","key":"Axel Hotel"}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub subscribeResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || sub.ID == "" {
		t.Fatalf("subscribe: status %d, body %+v", resp.StatusCode, sub)
	}

	streamResp, err := http.Get(ts.URL + sub.Stream)
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if streamResp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", streamResp.StatusCode)
	}

	// Read frames off the live stream in the background; each complete
	// "event:" block's data line is one delivery.
	events := make(chan eventJSON, 8)
	go func() {
		defer close(events)
		scanner := bufio.NewScanner(streamResp.Body)
		for scanner.Scan() {
			line := scanner.Text()
			if data, ok := strings.CutPrefix(line, "data: "); ok {
				var ev eventJSON
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Errorf("bad event payload %q: %v", data, err)
					return
				}
				events <- ev
			}
		}
	}()

	body, _ := json.Marshal(map[string]string{
		"text":   "wonderful stay at the Axel Hotel in Berlin, lovely place",
		"source": "alice",
	})
	resp, err = http.Post(ts.URL+"/v1/messages", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	select {
	case ev := <-events:
		if ev.Action != "inserted" || ev.Collection != "Hotels" || ev.RecordID == 0 {
			t.Fatalf("bad event: %+v", ev)
		}
		if ev.Fields["Hotel_Name"] != "Axel Hotel" {
			t.Fatalf("event fields = %v", ev.Fields)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no event arrived over the stream")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/subscribe/"+sub.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unsubscribe: status %d", resp.StatusCode)
	}
	// The broker closed the subscription: the server ends the response,
	// the reader goroutine drains to EOF and closes the channel.
	for range events {
	}
}
