package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	neogeo "repro"
	"repro/internal/obs"
)

// newTracingSystem builds a real system with the flight recorder on;
// the recorder installs process-wide, so tear it down with the system.
func newTracingSystem(t *testing.T) *neogeo.System {
	t.Helper()
	sys, err := neogeo.New(
		neogeo.WithGazetteerNames(2000),
		neogeo.WithGazetteerSeed(2011),
		neogeo.WithWorkers(1),
		neogeo.WithTraceRecorder(16),
		neogeo.WithTraceSlowThreshold(time.Hour),
		neogeo.WithClock(func() time.Time { return time.Date(2011, 4, 1, 9, 0, 0, 0, time.UTC) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = sys.Close()
		obs.SetDefaultRecorder(nil)
	})
	return sys
}

// canonical re-marshals a JSON document with sorted keys so two
// responses can be compared structurally but byte-exactly.
func canonical(t *testing.T, raw []byte) string {
	t.Helper()
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("unmarshal %s: %v", raw, err)
	}
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestExplainMatchesPlainAsk is the acceptance pin for explain mode:
// the answer of an explained Ask is byte-identical to the plain Ask —
// explain adds a "trace" key and must never perturb the computation.
func TestExplainMatchesPlainAsk(t *testing.T) {
	sys := newTracingSystem(t)
	ctx := t.Context()
	for _, m := range tourismMessages {
		if _, err := sys.Ingest(ctx, m, "alice"); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	srv := New(sys, WithLogger(t.Logf))

	const q = `{"question":"can anyone recommend a good hotel in Berlin?","source":"bob"`
	plain := doJSON(t, srv, http.MethodPost, "/v1/ask", q+"}")
	if plain.Code != http.StatusOK {
		t.Fatalf("plain ask: %d: %s", plain.Code, plain.Body.String())
	}
	explained := doJSON(t, srv, http.MethodPost, "/v1/ask", q+`,"explain":true}`)
	if explained.Code != http.StatusOK {
		t.Fatalf("explain ask: %d: %s", explained.Code, explained.Body.String())
	}

	var resp map[string]json.RawMessage
	if err := json.Unmarshal(explained.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	trace, ok := resp["trace"]
	if !ok {
		t.Fatalf("explain response has no trace key: %s", explained.Body.String())
	}
	delete(resp, "trace")
	stripped, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonical(t, stripped), canonical(t, plain.Body.Bytes()); got != want {
		t.Errorf("explain answer diverged from plain ask:\n--- explain ---\n%s\n--- plain ---\n%s", got, want)
	}

	// The breakdown is the Ask's own timeline: the explain root with
	// the ask stage under it.
	var tj struct {
		TraceID   string        `json:"trace_id"`
		Recorded  bool          `json:"recorded"`
		Breakdown *obs.SpanView `json:"breakdown"`
	}
	if err := json.Unmarshal(trace, &tj); err != nil {
		t.Fatal(err)
	}
	if tj.TraceID == "" || !tj.Recorded {
		t.Errorf("trace = %+v, want an ID and recorded=true (recorder is installed)", tj)
	}
	if tj.Breakdown == nil || tj.Breakdown.Name != "ask_explain" {
		t.Fatalf("breakdown root = %+v, want ask_explain", tj.Breakdown)
	}
	names := spanNames(tj.Breakdown)
	for _, want := range []string{"ask_explain", "ask", "extract", "answer"} {
		if !names[want] {
			t.Errorf("breakdown missing span %q (have %v)", want, names)
		}
	}
}

// spanNames flattens a view subtree into its set of span names.
func spanNames(v *obs.SpanView) map[string]bool {
	out := map[string]bool{}
	var walk func(*obs.SpanView)
	walk = func(v *obs.SpanView) {
		if v == nil {
			return
		}
		out[v.Name] = true
		for _, c := range v.Children {
			walk(c)
		}
	}
	walk(v)
	return out
}

// TestTraceEndpoint pins GET /v1/traces/{id}: an explained request is
// force-kept and fetchable under its X-Request-Id, an unknown ID is a
// structured 404, and non-GET methods are rejected.
func TestTraceEndpoint(t *testing.T) {
	sys := newTracingSystem(t)
	srv := New(sys, WithLogger(t.Logf))

	req := doJSON(t, srv, http.MethodPost, "/v1/ask",
		`{"question":"any good hotels in Berlin?","source":"bob","explain":true}`)
	if req.Code != http.StatusOK {
		t.Fatalf("explain ask: %d: %s", req.Code, req.Body.String())
	}
	id := req.Header().Get("X-Request-Id")
	if id == "" {
		t.Fatal("no X-Request-Id on the explain response")
	}

	w := doJSON(t, srv, http.MethodGet, "/v1/traces/"+id, "")
	if w.Code != http.StatusOK {
		t.Fatalf("trace fetch: %d: %s", w.Code, w.Body.String())
	}
	var view obs.TraceView
	if err := json.Unmarshal(w.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.TraceID != id || view.KeepReason != "forced" {
		t.Errorf("trace = %s/%s, want %s kept as forced", view.TraceID, view.KeepReason, id)
	}
	if view.Root == nil || view.Root.Name != "http_request" {
		t.Fatalf("trace root = %+v, want the http_request middleware span", view.Root)
	}
	if !spanNames(view.Root)["ask_explain"] {
		t.Errorf("recorded trace missing the ask_explain span: %+v", view.Root)
	}

	w = doJSON(t, srv, http.MethodGet, "/v1/traces/nope", "")
	if w.Code != http.StatusNotFound || !strings.Contains(w.Body.String(), "trace_not_found") {
		t.Errorf("unknown trace: %d: %s, want 404 trace_not_found", w.Code, w.Body.String())
	}

	w = doJSON(t, srv, http.MethodPost, "/v1/traces/"+id, "{}")
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST trace: %d, want 405", w.Code)
	}

	// The flight-recorder debug view never rides the public mux — it is
	// mounted only on the daemon's private debug listener.
	w = doJSON(t, srv, http.MethodGet, "/debug/traces", "")
	if w.Code != http.StatusNotFound {
		t.Errorf("public /debug/traces: %d, want 404", w.Code)
	}
}

// TestPanicEndsRootSpan pins the ServeHTTP deferred span completion: a
// handler panic (which net/http recovers per connection in production)
// must still end the root span, flag the trace errored, and leave
// nothing behind in the recorder's active set — an unclosed root would
// show as in-flight in /debug/traces forever.
func TestPanicEndsRootSpan(t *testing.T) {
	rec := obs.NewRecorder(obs.RecorderConfig{Capacity: 8, Slow: time.Hour})
	obs.SetDefaultRecorder(rec)
	t.Cleanup(func() { obs.SetDefaultRecorder(nil) })

	srv := New(&fakeSystem{askPanic: true}, WithLogger(t.Logf))
	req := httptest.NewRequest(http.MethodPost, "/v1/ask", strings.NewReader(`{"question":"q","source":"s"}`))
	req.Header.Set("X-Request-Id", "panic-trace")
	w := httptest.NewRecorder()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("handler panic did not propagate to the connection handler")
			}
		}()
		srv.ServeHTTP(w, req)
	}()

	if got := rec.Stats().Active; got != 0 {
		t.Errorf("active traces after panic = %d, want 0", got)
	}
	v, ok := rec.Get("panic-trace")
	if !ok {
		t.Fatal("panicked trace not kept by the recorder")
	}
	if !v.Errored {
		t.Error("panicked trace not flagged errored")
	}
}
