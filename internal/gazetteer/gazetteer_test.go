package gazetteer

import (
	"strings"
	"testing"

	"repro/internal/geo"
)

func addTestEntry(t *testing.T, g *Gazetteer, name string, lat, lon float64, feature FeatureClass, country string, pop int64) *Entry {
	t.Helper()
	e, err := g.Add(Entry{
		Name:       name,
		Location:   geo.Point{Lat: lat, Lon: lon},
		Feature:    feature,
		Country:    country,
		Population: pop,
	})
	if err != nil {
		t.Fatalf("Add(%q): %v", name, err)
	}
	return e
}

func TestAddAndLookup(t *testing.T) {
	g := New()
	addTestEntry(t, g, "Berlin", 52.52, 13.405, FeatureCity, "DE", 3700000)
	addTestEntry(t, g, "Berlin", 44.47, -71.18, FeatureCity, "US", 10000)
	addTestEntry(t, g, "Paris", 48.85, 2.35, FeatureCity, "FR", 2100000)

	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	if g.NameCount() != 2 {
		t.Fatalf("NameCount = %d", g.NameCount())
	}
	refs := g.Lookup("berlin") // case-insensitive
	if len(refs) != 2 {
		t.Fatalf("Lookup(berlin) = %d refs", len(refs))
	}
	if refs[0].ID >= refs[1].ID {
		t.Error("lookup results not in ID order")
	}
	if got := g.Lookup("munich"); len(got) != 0 {
		t.Errorf("unknown lookup = %v", got)
	}
}

func TestAddValidation(t *testing.T) {
	g := New()
	if _, err := g.Add(Entry{Name: "", Location: geo.Point{}}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := g.Add(Entry{Name: "X", Location: geo.Point{Lat: 200}}); err == nil {
		t.Error("bad location accepted")
	}
	if _, err := g.Add(Entry{Name: "!!!", Location: geo.Point{}}); err == nil {
		t.Error("name normalising to empty accepted")
	}
}

func TestAltNameLookup(t *testing.T) {
	g := New()
	_, err := g.Add(Entry{
		Name:     "München",
		AltNames: []string{"Munich", "Muenchen"},
		Location: geo.Point{Lat: 48.14, Lon: 11.58},
		Feature:  FeatureCity,
		Country:  "DE",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"München", "Munich", "Muenchen", "munich"} {
		if refs := g.Lookup(q); len(refs) != 1 {
			t.Errorf("Lookup(%q) = %d refs", q, len(refs))
		}
	}
}

func TestLookupFuzzy(t *testing.T) {
	g := New()
	addTestEntry(t, g, "Movenpick Hotel", 52.52, 13.40, FeatureCity, "DE", 0)
	addTestEntry(t, g, "Berlin", 52.52, 13.405, FeatureCity, "DE", 3700000)

	// Transposition within distance 1.
	ms := g.LookupFuzzy("Movenpick Hotle", 2)
	if len(ms) == 0 {
		t.Fatal("fuzzy lookup found nothing")
	}
	if ms[0].Name != "movenpick hotel" {
		t.Errorf("best match = %q", ms[0].Name)
	}
	if ms[0].Distance == 0 {
		t.Error("misspelling matched at distance 0")
	}
	// Exact match ranks first at distance 0.
	ms = g.LookupFuzzy("berlin", 2)
	if len(ms) == 0 || ms[0].Distance != 0 || ms[0].Name != "berlin" {
		t.Errorf("exact-first: %+v", ms)
	}
	// maxDist 0 behaves like exact lookup.
	if ms := g.LookupFuzzy("berlinn", 0); len(ms) != 0 {
		t.Errorf("distance-0 fuzzy found %v", ms)
	}
	if ms := g.LookupFuzzy("", 2); ms != nil {
		t.Errorf("empty query = %v", ms)
	}
}

func TestLookupFuzzyFirstLetterEdit(t *testing.T) {
	g := New()
	addTestEntry(t, g, "Berlin", 52.52, 13.405, FeatureCity, "DE", 0)
	// First letter wrong: "merlin" -> "berlin" needs a cross-bucket scan.
	ms := g.LookupFuzzy("merlin", 1)
	if len(ms) != 1 || ms[0].Name != "berlin" {
		t.Errorf("first-letter edit: %+v", ms)
	}
}

func TestHasName(t *testing.T) {
	g := New()
	addTestEntry(t, g, "Axel Hotel", 52.5, 13.4, FeatureCity, "DE", 0)
	if !g.HasName("axel hotel") || !g.HasName("Axel  Hotel!") {
		t.Error("HasName misses normalised variants")
	}
	if g.HasName("grand hotel") {
		t.Error("HasName false positive")
	}
}

func TestNear(t *testing.T) {
	g := New()
	b := addTestEntry(t, g, "Berlin", 52.52, 13.405, FeatureCity, "DE", 3700000)
	addTestEntry(t, g, "Potsdam", 52.39, 13.06, FeatureCity, "DE", 180000)
	addTestEntry(t, g, "Paris", 48.85, 2.35, FeatureCity, "FR", 2100000)

	near := g.Near(geo.Point{Lat: 52.52, Lon: 13.405}, 50000)
	if len(near) != 2 {
		t.Fatalf("Near 50km = %d entries", len(near))
	}
	if near[0].ID != b.ID {
		t.Error("nearest-first ordering violated")
	}
}

func TestNearestCity(t *testing.T) {
	g := New()
	addTestEntry(t, g, "Mill Creek", 52.50, 13.40, FeatureStream, "DE", 0)
	addTestEntry(t, g, "Berlin", 52.52, 13.405, FeatureCity, "DE", 3700000)
	e, ok := g.NearestCity(geo.Point{Lat: 52.505, Lon: 13.401})
	if !ok {
		t.Fatal("no city found")
	}
	// The stream is closer but must be skipped.
	if e.Name != "Berlin" {
		t.Errorf("NearestCity = %q", e.Name)
	}
	empty := New()
	if _, ok := empty.NearestCity(geo.Point{}); ok {
		t.Error("empty gazetteer returned a city")
	}
}

func TestGet(t *testing.T) {
	g := New()
	e := addTestEntry(t, g, "Berlin", 52.52, 13.405, FeatureCity, "DE", 0)
	got, ok := g.Get(e.ID)
	if !ok || got.Name != "Berlin" {
		t.Errorf("Get = %v, %v", got, ok)
	}
	if _, ok := g.Get(99999); ok {
		t.Error("missing ID found")
	}
}

func TestEachEntryEarlyStop(t *testing.T) {
	g := New()
	for i := 0; i < 10; i++ {
		addTestEntry(t, g, "City"+strings.Repeat("x", i+1), 10, 10, FeatureCity, "US", 0)
	}
	n := 0
	g.EachEntry(func(*Entry) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("visited %d, want 3", n)
	}
}

func TestCountryTables(t *testing.T) {
	c, ok := CountryByCode("DE")
	if !ok || c.Name != "Germany" {
		t.Errorf("CountryByCode(DE) = %+v, %v", c, ok)
	}
	if _, ok := CountryByCode("XX"); ok {
		t.Error("unknown code found")
	}
	c, ok = CountryByName("germany")
	if !ok || c.Code != "DE" {
		t.Errorf("CountryByName = %+v", c)
	}
	c, ok = CountryContaining(geo.Point{Lat: 52.52, Lon: 13.405})
	if !ok || c.Code != "DE" {
		t.Errorf("CountryContaining(Berlin) = %+v", c)
	}
	if _, ok := CountryContaining(geo.Point{Lat: 0, Lon: -150}); ok {
		t.Error("mid-Pacific point contained")
	}
	// Every country box must validate.
	for _, c := range Countries {
		if err := c.Box.Validate(); err != nil {
			t.Errorf("country %s: %v", c.Code, err)
		}
		if c.Weight <= 0 {
			t.Errorf("country %s non-positive weight", c.Code)
		}
	}
}
