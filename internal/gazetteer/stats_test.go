package gazetteer

import (
	"math/rand"
	"strings"
	"testing"
)

func newTestRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func TestTopAmbiguousSmall(t *testing.T) {
	g := New()
	for i := 0; i < 3; i++ {
		addTestEntry(t, g, "Springfield", 40, -90+float64(i), FeatureCity, "US", 0)
	}
	for i := 0; i < 2; i++ {
		addTestEntry(t, g, "Paris", 48, 2+float64(i), FeatureCity, "FR", 0)
	}
	addTestEntry(t, g, "Enschede", 52.2, 6.9, FeatureCity, "NL", 0)

	top := g.TopAmbiguous(10)
	if len(top) != 3 {
		t.Fatalf("TopAmbiguous = %v", top)
	}
	if top[0].Name != "Springfield" || top[0].Count != 3 {
		t.Errorf("top = %+v", top[0])
	}
	if top[1].Name != "Paris" || top[1].Count != 2 {
		t.Errorf("second = %+v", top[1])
	}
	// n smaller than distinct names truncates.
	if got := g.TopAmbiguous(1); len(got) != 1 {
		t.Errorf("truncation: %v", got)
	}
}

func TestAmbiguityHistogramSmall(t *testing.T) {
	g := New()
	for i := 0; i < 3; i++ {
		addTestEntry(t, g, "Springfield", 40, -90+float64(i), FeatureCity, "US", 0)
	}
	addTestEntry(t, g, "Enschede", 52.2, 6.9, FeatureCity, "NL", 0)
	addTestEntry(t, g, "Hengelo", 52.27, 6.79, FeatureCity, "NL", 0)

	hist := g.AmbiguityHistogram()
	if len(hist) != 2 {
		t.Fatalf("histogram = %v", hist)
	}
	if hist[0].Degree != 1 || hist[0].Names != 2 {
		t.Errorf("bucket 1 = %+v", hist[0])
	}
	if hist[1].Degree != 3 || hist[1].Names != 1 {
		t.Errorf("bucket 3 = %+v", hist[1])
	}
}

func TestSharesSmall(t *testing.T) {
	g := New()
	// 2 singles, 1 double, 1 quad -> shares 0.5, 0.25, 0, 0.25.
	addTestEntry(t, g, "A Town", 10, 10, FeatureCity, "US", 0)
	addTestEntry(t, g, "B Town", 11, 10, FeatureCity, "US", 0)
	for i := 0; i < 2; i++ {
		addTestEntry(t, g, "C Town", 12, 10+float64(i), FeatureCity, "US", 0)
	}
	for i := 0; i < 4; i++ {
		addTestEntry(t, g, "D Town", 13, 10+float64(i), FeatureCity, "US", 0)
	}
	s := g.Shares()
	if s.One != 0.5 || s.Two != 0.25 || s.Three != 0 || s.FourOrMore != 0.25 {
		t.Errorf("shares = %+v", s)
	}
	// Empty gazetteer: all zero.
	if z := New().Shares(); z != (ReferenceShares{}) {
		t.Errorf("empty shares = %+v", z)
	}
}

func TestAmbiguityOf(t *testing.T) {
	g := New()
	for i := 0; i < 3; i++ {
		addTestEntry(t, g, "Cairo", 30, 31+float64(i), FeatureCity, "EG", 0)
	}
	if got := g.AmbiguityOf("cairo"); got != 3 {
		t.Errorf("AmbiguityOf = %d", got)
	}
	if got := g.AmbiguityOf("atlantis"); got != 0 {
		t.Errorf("unknown ambiguity = %d", got)
	}
}

func TestWriteTable1AndFigures(t *testing.T) {
	g := New()
	for i := 0; i < 2; i++ {
		addTestEntry(t, g, "Paris", 48, 2+float64(i), FeatureCity, "FR", 0)
	}
	addTestEntry(t, g, "Enschede", 52.2, 6.9, FeatureCity, "NL", 0)

	var sb strings.Builder
	if err := g.WriteTable1(&sb, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Paris") || !strings.Contains(sb.String(), "2") {
		t.Errorf("Table1 output:\n%s", sb.String())
	}

	sb.Reset()
	if err := g.WriteFigure1(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ambiguity_degree") {
		t.Errorf("Figure1 output:\n%s", sb.String())
	}

	sb.Reset()
	if err := g.WriteFigure2(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "1 reference") || !strings.Contains(out, "4 or more references") {
		t.Errorf("Figure2 output:\n%s", out)
	}
}
