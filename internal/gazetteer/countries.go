package gazetteer

import "repro/internal/geo"

// Country describes one country of the synthetic world: a code, a display
// name, a bounding box used for placing synthetic entries and for
// containment reasoning, and a sampling weight proportional to how many
// toponyms it contributes (US-style gazetteers dominate GeoNames, which is
// why Table 1 is full of US church and creek names).
type Country struct {
	Code   string
	Name   string
	Box    geo.BBox
	Weight float64
}

// Countries is the synthetic world's country table. Boxes are rough real
// bounding boxes; exactness is irrelevant, only disjointness of the major
// ones and plausible containment matter.
var Countries = []Country{
	{"US", "United States", geo.BBox{MinLat: 24.5, MinLon: -124.8, MaxLat: 49.4, MaxLon: -66.9}, 40},
	{"DE", "Germany", geo.BBox{MinLat: 47.3, MinLon: 5.9, MaxLat: 55.1, MaxLon: 15.0}, 4},
	{"FR", "France", geo.BBox{MinLat: 41.3, MinLon: -5.1, MaxLat: 51.1, MaxLon: 9.6}, 4},
	{"GB", "United Kingdom", geo.BBox{MinLat: 49.9, MinLon: -8.6, MaxLat: 58.7, MaxLon: 1.8}, 4},
	{"NL", "Netherlands", geo.BBox{MinLat: 50.8, MinLon: 3.4, MaxLat: 53.6, MaxLon: 7.2}, 2},
	{"ES", "Spain", geo.BBox{MinLat: 36.0, MinLon: -9.3, MaxLat: 43.8, MaxLon: 3.3}, 4},
	{"IT", "Italy", geo.BBox{MinLat: 36.6, MinLon: 6.6, MaxLat: 47.1, MaxLon: 18.5}, 3},
	{"EG", "Egypt", geo.BBox{MinLat: 22.0, MinLon: 24.7, MaxLat: 31.7, MaxLon: 36.9}, 2},
	{"TZ", "Tanzania", geo.BBox{MinLat: -11.7, MinLon: 29.3, MaxLat: -0.9, MaxLon: 40.4}, 2},
	{"KE", "Kenya", geo.BBox{MinLat: -4.7, MinLon: 33.9, MaxLat: 5.5, MaxLon: 41.9}, 2},
	{"NG", "Nigeria", geo.BBox{MinLat: 4.3, MinLon: 2.7, MaxLat: 13.9, MaxLon: 14.7}, 2},
	{"ZA", "South Africa", geo.BBox{MinLat: -34.8, MinLon: 16.5, MaxLat: -22.1, MaxLon: 32.9}, 2},
	{"BR", "Brazil", geo.BBox{MinLat: -33.8, MinLon: -73.9, MaxLat: 5.3, MaxLon: -34.8}, 5},
	{"MX", "Mexico", geo.BBox{MinLat: 14.5, MinLon: -118.4, MaxLat: 32.7, MaxLon: -86.7}, 4},
	{"AR", "Argentina", geo.BBox{MinLat: -55.1, MinLon: -73.6, MaxLat: -21.8, MaxLon: -53.6}, 3},
	{"IN", "India", geo.BBox{MinLat: 8.1, MinLon: 68.2, MaxLat: 35.5, MaxLon: 97.4}, 5},
	{"CN", "China", geo.BBox{MinLat: 18.2, MinLon: 73.5, MaxLat: 53.6, MaxLon: 134.8}, 5},
	{"AU", "Australia", geo.BBox{MinLat: -43.6, MinLon: 113.3, MaxLat: -10.7, MaxLon: 153.6}, 3},
	{"CA", "Canada", geo.BBox{MinLat: 41.7, MinLon: -141.0, MaxLat: 74.0, MaxLon: -52.6}, 4},
	{"PH", "Philippines", geo.BBox{MinLat: 4.6, MinLon: 116.9, MaxLat: 19.6, MaxLon: 126.6}, 3},
}

// CountryByCode returns the country with the given code.
func CountryByCode(code string) (Country, bool) {
	for _, c := range Countries {
		if c.Code == code {
			return c, true
		}
	}
	return Country{}, false
}

// CountryByName returns the country with the given display name
// (case-insensitive exact match on the table's names).
func CountryByName(name string) (Country, bool) {
	for _, c := range Countries {
		if equalFold(c.Name, name) {
			return c, true
		}
	}
	return Country{}, false
}

// CountryContaining returns the first country whose box contains p.
// Overlapping boxes resolve in table order.
func CountryContaining(p geo.Point) (Country, bool) {
	for _, c := range Countries {
		if c.Box.Contains(p) {
			return c, true
		}
	}
	return Country{}, false
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
