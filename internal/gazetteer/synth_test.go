package gazetteer

import (
	"math"
	"strings"
	"testing"
)

// testGazetteer builds a small calibrated gazetteer once per test binary.
var testGaz *Gazetteer

func synthForTest(t *testing.T) *Gazetteer {
	t.Helper()
	if testGaz == nil {
		g, err := Synthesize(Config{Names: 4000, Seed: 2011})
		if err != nil {
			t.Fatalf("Synthesize: %v", err)
		}
		testGaz = g
	}
	return testGaz
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, err := Synthesize(Config{Names: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(Config{Names: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() || a.NameCount() != b.NameCount() {
		t.Errorf("same seed differs: %d/%d vs %d/%d", a.Len(), a.NameCount(), b.Len(), b.NameCount())
	}
	c, err := Synthesize(Config{Names: 300, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() == c.Len() && a.TopAmbiguous(50)[20] == c.TopAmbiguous(50)[20] {
		t.Log("different seeds gave identical mid-rank stats; suspicious but not fatal")
	}
}

func TestSynthesizeInvalid(t *testing.T) {
	if _, err := Synthesize(Config{Names: -1}); err == nil {
		t.Error("negative names accepted")
	}
}

func TestTable1Reproduction(t *testing.T) {
	g := synthForTest(t)
	top := g.TopAmbiguous(10)
	if len(top) != 10 {
		t.Fatalf("TopAmbiguous returned %d", len(top))
	}
	for i, seed := range table1Seeds {
		if top[i].Name != seed.name {
			t.Errorf("rank %d: got %q, want %q", i+1, top[i].Name, seed.name)
		}
		if top[i].Count != seed.count {
			t.Errorf("rank %d (%s): count %d, want %d", i+1, seed.name, top[i].Count, seed.count)
		}
	}
}

func TestFigure2Shares(t *testing.T) {
	g := synthForTest(t)
	s := g.Shares()
	// Paper: 54% / 12% / 5% / 29%. Sampling noise at 4k names stays well
	// within 3 percentage points.
	check := func(got, want float64, label string) {
		if math.Abs(got-want) > 0.03 {
			t.Errorf("%s share = %.3f, want %.2f ± 0.03", label, got, want)
		}
	}
	check(s.One, 0.54, "1-reference")
	check(s.Two, 0.12, "2-reference")
	check(s.Three, 0.05, "3-reference")
	check(s.FourOrMore, 0.29, "4+-reference")
	if sum := s.One + s.Two + s.Three + s.FourOrMore; math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v", sum)
	}
}

func TestFigure1LongTail(t *testing.T) {
	g := synthForTest(t)
	hist := g.AmbiguityHistogram()
	if len(hist) < 20 {
		t.Fatalf("histogram has only %d degrees; no long tail", len(hist))
	}
	// Monotone-ish decay: names at degree 1 >> names at degree 10 >> names
	// at degree 100.
	byDegree := map[int]int{}
	maxDegree := 0
	for _, b := range hist {
		byDegree[b.Degree] = b.Names
		if b.Degree > maxDegree {
			maxDegree = b.Degree
		}
	}
	if byDegree[1] < 10*byDegree[10] {
		t.Errorf("tail not steep: %d names at degree 1 vs %d at degree 10", byDegree[1], byDegree[10])
	}
	// The maximum degree must reach the Table 1 ceiling (2382).
	if maxDegree != 2382 {
		t.Errorf("max degree = %d, want 2382 (First Baptist Church)", maxDegree)
	}
}

func TestAnchorCitiesPresent(t *testing.T) {
	g := synthForTest(t)
	// Berlin's most populous reference is the real one in Germany.
	best := mostPopulous(g.Lookup("Berlin"))
	if best == nil || best.Country != "DE" {
		t.Fatalf("dominant Berlin = %+v", best)
	}
	if best.Location.DistanceMeters(berlinPoint()) > 1000 {
		t.Error("Berlin anchored at wrong location")
	}
	// Paris has 62 references, per the paper.
	if n := len(g.Lookup("Paris")); n != 62 {
		t.Errorf("Paris has %d references, want 62", n)
	}
	// Cairo has more than ten, per the paper.
	if n := len(g.Lookup("Cairo")); n <= 10 {
		t.Errorf("Cairo has %d references, want > 10", n)
	}
}

func mostPopulous(entries []*Entry) *Entry {
	var best *Entry
	for _, e := range entries {
		if best == nil || e.Population > best.Population {
			best = e
		}
	}
	return best
}

func berlinPoint() (p struct{ Lat, Lon float64 }) {
	p.Lat, p.Lon = 52.52, 13.405
	return
}

func TestSynthEntriesValid(t *testing.T) {
	g := synthForTest(t)
	count := 0
	g.EachEntry(func(e *Entry) bool {
		count++
		if err := e.Location.Validate(); err != nil {
			t.Errorf("entry %d (%s): %v", e.ID, e.Name, err)
			return false
		}
		if e.NormName == "" || strings.TrimSpace(e.Name) == "" {
			t.Errorf("entry %d has empty name", e.ID)
			return false
		}
		if _, ok := CountryByCode(e.Country); !ok {
			t.Errorf("entry %d has unknown country %q", e.ID, e.Country)
			return false
		}
		if e.Population < 0 {
			t.Errorf("entry %d negative population", e.ID)
			return false
		}
		return true
	})
	if count != g.Len() {
		t.Errorf("visited %d of %d", count, g.Len())
	}
	// Average ambiguity should land near the calibrated expectation
	// (E[degree] ≈ 5-9 with the power-law tail).
	avg := float64(g.Len()) / float64(g.NameCount())
	if avg < 2 || avg > 15 {
		t.Errorf("average ambiguity = %.2f, outside plausible calibration", avg)
	}
}

func TestSampleDegreeCalibration(t *testing.T) {
	// Direct unit check of the degree sampler, independent of Synthesize.
	rng := newTestRand(99)
	n := 200000
	buckets := map[string]int{}
	for i := 0; i < n; i++ {
		switch d := sampleDegree(rng); {
		case d == 1:
			buckets["1"]++
		case d == 2:
			buckets["2"]++
		case d == 3:
			buckets["3"]++
		case d >= 4 && d <= 1000:
			buckets["4+"]++
		default:
			t.Fatalf("degree %d out of range", d)
		}
	}
	checks := []struct {
		key  string
		want float64
	}{{"1", 0.54}, {"2", 0.12}, {"3", 0.05}, {"4+", 0.29}}
	for _, c := range checks {
		got := float64(buckets[c.key]) / float64(n)
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("P(%s) = %.3f, want %.2f", c.key, got, c.want)
		}
	}
}

func TestSamplePowerLawRange(t *testing.T) {
	rng := newTestRand(5)
	for i := 0; i < 10000; i++ {
		d := samplePowerLaw(rng, 4, 1000, 2.2)
		if d < 4 || d > 1000 {
			t.Fatalf("power-law sample %d out of [4, 1000]", d)
		}
	}
}

func TestMisspellNameOneEdit(t *testing.T) {
	rng := newTestRand(13)
	for i := 0; i < 200; i++ {
		name := "Movenpick"
		m := misspellName(rng, name)
		if m == name {
			t.Errorf("misspelling identical: %q", m)
		}
	}
}
