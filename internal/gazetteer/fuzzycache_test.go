package gazetteer

import (
	"sync"
	"testing"

	"repro/internal/geo"
)

// The fuzzy-lookup memo must be invisible to callers: repeated queries
// return equal results, and adding a closer name invalidates the memo.
func TestFuzzyCacheInvalidatedByAdd(t *testing.T) {
	g := New()
	if _, err := g.Add(Entry{Name: "Berlin", Location: geo.Point{Lat: 52.5, Lon: 13.4}, Feature: FeatureCity}); err != nil {
		t.Fatal(err)
	}
	first := g.LookupFuzzy("berlim", 1)
	if len(first) != 1 || first[0].Name != "berlin" {
		t.Fatalf("LookupFuzzy = %+v, want berlin", first)
	}
	again := g.LookupFuzzy("berlim", 1)
	if len(again) != 1 || again[0].Name != first[0].Name {
		t.Fatalf("memoized LookupFuzzy diverged: %+v", again)
	}

	// An exact "berlim" entry must appear in fresh results.
	if _, err := g.Add(Entry{Name: "Berlim", Location: geo.Point{Lat: 10, Lon: 10}, Feature: FeatureCity}); err != nil {
		t.Fatal(err)
	}
	after := g.LookupFuzzy("berlim", 1)
	if len(after) != 2 {
		t.Fatalf("post-Add LookupFuzzy = %+v, want 2 matches", after)
	}
	if after[0].Name != "berlim" || after[0].Distance != 0 {
		t.Fatalf("exact match not first after invalidation: %+v", after)
	}
}

// Concurrent fuzzy lookups sharing the memo are race-free. Run with -race.
func TestFuzzyCacheConcurrent(t *testing.T) {
	g, err := Synthesize(Config{Names: 500, Seed: 2011})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"sprngfield", "oakdale", "rivertonn", "lakevew", "hilcrest"}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = g.LookupFuzzy(queries[(i+w)%len(queries)], 1)
			}
		}(w)
	}
	wg.Wait()
}
