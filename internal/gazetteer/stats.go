package gazetteer

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/text"
)

// NameStat is one distinct name with its reference count (ambiguity
// degree).
type NameStat struct {
	Name  string // canonical (most common display) form
	Count int
}

// nameCounts tallies reference counts per canonical name. Canonical names,
// not normalised keys, are reported; alternate-name index entries are
// excluded so that one entry contributes exactly one reference.
func (g *Gazetteer) nameCounts() map[string]int {
	counts := make(map[string]int)
	g.EachEntry(func(e *Entry) bool {
		counts[e.Name]++
		return true
	})
	return counts
}

// TopAmbiguous returns the n most ambiguous names — the paper's Table 1
// when run on the calibrated synthetic gazetteer (experiment E1). Ties
// break alphabetically for determinism.
func (g *Gazetteer) TopAmbiguous(n int) []NameStat {
	counts := g.nameCounts()
	out := make([]NameStat, 0, len(counts))
	for name, c := range counts {
		out = append(out, NameStat{Name: name, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// DegreeBucket is one point of the ambiguity histogram: how many distinct
// names have exactly Degree references.
type DegreeBucket struct {
	Degree int
	Names  int
}

// AmbiguityHistogram returns the number of distinct names per ambiguity
// degree, ordered by degree — the paper's Figure 1 series (experiment E2).
func (g *Gazetteer) AmbiguityHistogram() []DegreeBucket {
	counts := g.nameCounts()
	hist := make(map[int]int)
	for _, c := range counts {
		hist[c]++
	}
	out := make([]DegreeBucket, 0, len(hist))
	for d, n := range hist {
		out = append(out, DegreeBucket{Degree: d, Names: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Degree < out[j].Degree })
	return out
}

// ReferenceShares is the paper's Figure 2: the share of distinct names
// with exactly 1, 2, 3 and 4-or-more references. Shares sum to 1 for a
// non-empty gazetteer.
type ReferenceShares struct {
	One        float64
	Two        float64
	Three      float64
	FourOrMore float64
}

// Shares computes the Figure 2 pie (experiment E3).
func (g *Gazetteer) Shares() ReferenceShares {
	counts := g.nameCounts()
	if len(counts) == 0 {
		return ReferenceShares{}
	}
	var s ReferenceShares
	total := float64(len(counts))
	for _, c := range counts {
		switch {
		case c == 1:
			s.One++
		case c == 2:
			s.Two++
		case c == 3:
			s.Three++
		default:
			s.FourOrMore++
		}
	}
	s.One /= total
	s.Two /= total
	s.Three /= total
	s.FourOrMore /= total
	return s
}

// AmbiguityOf returns the reference count of a name (0 if unknown),
// counting only primary names, to match the Table 1 semantics.
func (g *Gazetteer) AmbiguityOf(name string) int {
	norm := text.NormalizeName(name)
	n := 0
	g.EachEntry(func(e *Entry) bool {
		if e.NormName == norm {
			n++
		}
		return true
	})
	return n
}

// WriteTable1 renders the Table 1 reproduction to w in the paper's layout.
func (g *Gazetteer) WriteTable1(w io.Writer, n int) error {
	if _, err := fmt.Fprintf(w, "%-50s %s\n", "Geographic name", "Number of references"); err != nil {
		return err
	}
	for _, s := range g.TopAmbiguous(n) {
		if _, err := fmt.Fprintf(w, "%-50s %d\n", s.Name, s.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteFigure1 renders the Figure 1 series (degree, names-at-degree) as
// tab-separated values suitable for log-log plotting.
func (g *Gazetteer) WriteFigure1(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "ambiguity_degree\tnames_at_degree"); err != nil {
		return err
	}
	for _, b := range g.AmbiguityHistogram() {
		if _, err := fmt.Fprintf(w, "%d\t%d\n", b.Degree, b.Names); err != nil {
			return err
		}
	}
	return nil
}

// WriteFigure2 renders the Figure 2 shares as percentages.
func (g *Gazetteer) WriteFigure2(w io.Writer) error {
	s := g.Shares()
	_, err := fmt.Fprintf(w,
		"1 reference\t%.0f%%\n2 references\t%.0f%%\n3 references\t%.0f%%\n4 or more references\t%.0f%%\n",
		s.One*100, s.Two*100, s.Three*100, s.FourOrMore*100)
	return err
}
