package gazetteer

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/geo"
)

// Config parameterises the synthetic gazetteer.
type Config struct {
	// Names is the number of distinct generated names (seeded anchor and
	// Table-1 names come on top). The default used by the experiment
	// harness is 20000, which yields roughly 150k-200k references.
	Names int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultConfig is the configuration used by the experiment harness.
func DefaultConfig() Config {
	return Config{Names: 20000, Seed: 2011} // 2011: the paper's year
}

// table1Seeds reproduces the paper's Table 1 exactly: the ten most
// ambiguous geographic names in GeoNames with their reference counts.
var table1Seeds = []struct {
	name    string
	count   int
	feature FeatureClass
}{
	{"First Baptist Church", 2382, FeatureChurch},
	{"The Church of Jesus Christ of Latter Day Saints", 1893, FeatureChurch},
	{"San Antonio", 1561, FeatureCity},
	{"Church of Christ", 1558, FeatureChurch},
	{"Mill Creek", 1530, FeatureStream},
	{"Spring Creek", 1486, FeatureStream},
	{"San José", 1366, FeatureCity},
	{"Dry Creek", 1271, FeatureStream},
	{"First Presbyterian Church", 1229, FeatureChurch},
	{"Santa Rosa", 1205, FeatureCity},
}

// anchorCity is a real, well-known city seeded with its true location so
// that examples and disambiguation tests behave like the paper's worked
// scenarios (Berlin, Paris, Cairo …).
type anchorCity struct {
	name       string
	lat, lon   float64
	country    string
	population int64
	// extraRefs is how many additional same-named references to scatter
	// (the paper: Paris has 62 references, Cairo more than ten).
	extraRefs int
}

var anchorCities = []anchorCity{
	{"Berlin", 52.5200, 13.4050, "DE", 3_700_000, 8},
	{"Paris", 48.8566, 2.3522, "FR", 2_100_000, 61}, // 62 references in total
	{"Cairo", 30.0444, 31.2357, "EG", 9_500_000, 11},
	{"London", 51.5074, -0.1278, "GB", 8_900_000, 15},
	{"Amsterdam", 52.3676, 4.9041, "NL", 870_000, 6},
	{"Enschede", 52.2215, 6.8937, "NL", 160_000, 0},
	{"Madrid", 40.4168, -3.7038, "ES", 3_200_000, 5},
	{"Rome", 41.9028, 12.4964, "IT", 2_800_000, 9},
	{"Dar es Salaam", -6.7924, 39.2083, "TZ", 4_300_000, 0},
	{"Nairobi", -1.2921, 36.8219, "KE", 4_400_000, 0},
	{"Lagos", 6.5244, 3.3792, "NG", 14_800_000, 2},
	{"Sydney", -33.8688, 151.2093, "AU", 5_300_000, 4},
	{"Toronto", 43.6532, -79.3832, "CA", 2_900_000, 3},
	{"Mumbai", 19.0760, 72.8777, "IN", 12_400_000, 0},
	{"Beijing", 39.9042, 116.4074, "CN", 21_500_000, 0},
	{"São Paulo", -23.5505, -46.6333, "BR", 12_300_000, 1},
	{"Mexico City", 19.4326, -99.1332, "MX", 9_200_000, 0},
	{"Buenos Aires", -34.6037, -58.3816, "AR", 3_100_000, 2},
	{"Manila", 14.5995, 120.9842, "PH", 1_800_000, 1},
	{"New York", 40.7128, -74.0060, "US", 8_400_000, 2},
	{"Springfield", 39.7817, -89.6501, "US", 114_000, 33}, // famously ambiguous
}

// Synthesize builds a calibrated synthetic gazetteer. The generated
// name→reference-count distribution matches the paper's Figure 2 shares
// (54% single-reference, 12% double, 5% triple, 29% four-or-more) with a
// power-law tail (Figure 1), and the paper's Table 1 names are seeded with
// their exact counts.
func Synthesize(cfg Config) (*Gazetteer, error) {
	if cfg.Names < 0 {
		return nil, fmt.Errorf("gazetteer: negative name count %d", cfg.Names)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := New()
	used := make(map[string]bool)

	// 1. Anchor cities with their true locations.
	for _, a := range anchorCities {
		e := Entry{
			Name:       a.name,
			Location:   geo.Point{Lat: a.lat, Lon: a.lon},
			Feature:    FeatureCity,
			Country:    a.country,
			Population: a.population,
		}
		if _, err := g.Add(e); err != nil {
			return nil, err
		}
		used[strings.ToLower(a.name)] = true
		for i := 0; i < a.extraRefs; i++ {
			c := pickCountry(rng)
			if _, err := g.Add(Entry{
				Name:       a.name,
				Location:   randomPointIn(rng, c.Box),
				Feature:    FeatureCity,
				Country:    c.Code,
				Population: int64(rng.Intn(40000)),
			}); err != nil {
				return nil, err
			}
		}
	}

	// 2. Table 1 names with their exact reference counts.
	for _, seed := range table1Seeds {
		used[strings.ToLower(seed.name)] = true
		for i := 0; i < seed.count; i++ {
			// GeoNames' hyper-ambiguous names are overwhelmingly US
			// features; mirror that (~85% US).
			var c Country
			if rng.Float64() < 0.85 {
				c, _ = CountryByCode("US")
			} else {
				c = pickCountry(rng)
			}
			pop := int64(0)
			if seed.feature == FeatureCity {
				pop = int64(rng.Intn(80000))
			}
			if _, err := g.Add(Entry{
				Name:       seed.name,
				Location:   randomPointIn(rng, c.Box),
				Feature:    seed.feature,
				Country:    c.Code,
				Population: pop,
			}); err != nil {
				return nil, err
			}
		}
	}

	// 3. Random names with calibrated ambiguity degrees.
	for n := 0; n < cfg.Names; n++ {
		name, feature := generateName(rng, used)
		degree := sampleDegree(rng)
		var alt []string
		if rng.Float64() < 0.05 {
			alt = []string{misspellName(rng, name)}
		}
		for i := 0; i < degree; i++ {
			c := pickCountry(rng)
			pop := int64(0)
			if feature == FeatureCity {
				pop = zipfPopulation(rng)
			}
			e := Entry{
				Name:       name,
				AltNames:   alt,
				Location:   randomPointIn(rng, c.Box),
				Feature:    feature,
				Country:    c.Code,
				Population: pop,
			}
			if _, err := g.Add(e); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// sampleDegree draws a reference count per the paper's Figure 2:
// P(1)=0.54, P(2)=0.12, P(3)=0.05, P(>=4)=0.29 with a truncated power-law
// tail over [4, 1000] (exponent 2.2). The cap keeps random names below the
// seeded Table 1 counts so the top 10 stay exact.
func sampleDegree(rng *rand.Rand) int {
	u := rng.Float64()
	switch {
	case u < 0.54:
		return 1
	case u < 0.66:
		return 2
	case u < 0.71:
		return 3
	default:
		return samplePowerLaw(rng, 4, 1000, 2.2)
	}
}

// samplePowerLaw draws an integer in [min, max] with P(d) proportional to
// d^-alpha via inverse-CDF sampling of the continuous Pareto and rounding
// down.
func samplePowerLaw(rng *rand.Rand, min, max int, alpha float64) int {
	u := rng.Float64()
	a, b := float64(min), float64(max)+1
	oneMinus := 1 - alpha
	x := math.Pow(math.Pow(a, oneMinus)+u*(math.Pow(b, oneMinus)-math.Pow(a, oneMinus)), 1/oneMinus)
	d := int(x)
	if d < min {
		d = min
	}
	if d > max {
		d = max
	}
	return d
}

func zipfPopulation(rng *rand.Rand) int64 {
	return int64(samplePowerLaw(rng, 200, 2_000_000, 1.8))
}

func pickCountry(rng *rand.Rand) Country {
	var total float64
	for _, c := range Countries {
		total += c.Weight
	}
	u := rng.Float64() * total
	for _, c := range Countries {
		u -= c.Weight
		if u <= 0 {
			return c
		}
	}
	return Countries[len(Countries)-1]
}

func randomPointIn(rng *rand.Rand, b geo.BBox) geo.Point {
	return geo.Point{
		Lat: b.MinLat + rng.Float64()*(b.MaxLat-b.MinLat),
		Lon: b.MinLon + rng.Float64()*(b.MaxLon-b.MinLon),
	}
}

// Name-pattern vocabulary. The patterns intentionally mirror GeoNames'
// most ambiguous families: churches, creeks, saints, plus syllabic town
// names.
var (
	denominations = []string{"Baptist", "Methodist", "Presbyterian", "Lutheran", "Pentecostal", "Episcopal", "Catholic", "Reformed", "Adventist", "Evangelical"}
	ordinals      = []string{"First", "Second", "Third", "New", "Old", "United", "Grace", "Faith", "Trinity", "Zion"}
	hydroSuffix   = []string{"Creek", "Spring", "Lake", "River", "Falls", "Brook", "Pond", "Run"}
	hydroPrefix   = []string{"Mill", "Dry", "Clear", "Rock", "Sand", "Cedar", "Pine", "Oak", "Willow", "Bear", "Wolf", "Eagle", "Deer", "Cold", "Muddy", "Stony", "Long", "Crooked", "Silver", "Turkey"}
	saintPrefix   = []string{"San", "Santa", "Saint", "St"}
	saintNames    = []string{"Antonio", "José", "Rosa", "Maria", "Juan", "Pedro", "Miguel", "Isabel", "Clara", "Francisco", "Carlos", "Rita", "Lucia", "Pablo", "Teresa", "Elena", "Ana", "Luis", "Marta", "Ramon"}
	mountainWords = []string{"Mount", "Peak", "Ridge", "Hill", "Butte", "Mesa"}
	syllOnset     = []string{"b", "br", "d", "dr", "f", "g", "gr", "h", "k", "kl", "l", "m", "n", "p", "pr", "r", "s", "st", "t", "tr", "v", "w", "z", "ch", "sh", "th"}
	syllNucleus   = []string{"a", "e", "i", "o", "u", "ai", "ea", "ou", "ie", "oo"}
	syllCoda      = []string{"", "n", "r", "l", "s", "m", "nd", "rt", "st", "ck", "ng"}
	townSuffix    = []string{"", "", "", "ville", "burg", "ton", "field", "ford", "ham", "stadt", "dorf", "grad", "pur", "abad"}
)

// generateName produces a fresh distinct name and its feature class.
func generateName(rng *rand.Rand, used map[string]bool) (string, FeatureClass) {
	for attempt := 0; ; attempt++ {
		var name string
		var feature FeatureClass
		switch p := rng.Float64(); {
		case p < 0.12: // church family
			switch rng.Intn(3) {
			case 0:
				name = ordinals[rng.Intn(len(ordinals))] + " " + denominations[rng.Intn(len(denominations))] + " Church"
			case 1:
				name = "Church of " + saintNames[rng.Intn(len(saintNames))]
			default:
				name = denominations[rng.Intn(len(denominations))] + " Chapel"
			}
			feature = FeatureChurch
		case p < 0.28: // hydrographic family
			name = hydroPrefix[rng.Intn(len(hydroPrefix))] + " " + hydroSuffix[rng.Intn(len(hydroSuffix))]
			feature = FeatureStream
		case p < 0.38: // saint family
			name = saintPrefix[rng.Intn(len(saintPrefix))] + " " + saintNames[rng.Intn(len(saintNames))]
			feature = FeatureCity
		case p < 0.44: // mountains
			name = mountainWords[rng.Intn(len(mountainWords))] + " " + titleCase(randomSyllabic(rng, 2))
			feature = FeatureMountain
		default: // syllabic towns
			name = titleCase(randomSyllabic(rng, 2+rng.Intn(2))) + townSuffix[rng.Intn(len(townSuffix))]
			feature = FeatureCity
		}
		key := strings.ToLower(name)
		if !used[key] {
			used[key] = true
			return name, feature
		}
		if attempt > 4 {
			// Force uniqueness with an extra syllable.
			name = name + " " + titleCase(randomSyllabic(rng, 2))
			key = strings.ToLower(name)
			if !used[key] {
				used[key] = true
				return name, FeatureCity
			}
		}
	}
}

func randomSyllabic(rng *rand.Rand, syllables int) string {
	var sb strings.Builder
	for i := 0; i < syllables; i++ {
		sb.WriteString(syllOnset[rng.Intn(len(syllOnset))])
		sb.WriteString(syllNucleus[rng.Intn(len(syllNucleus))])
		if i == syllables-1 || rng.Float64() < 0.3 {
			sb.WriteString(syllCoda[rng.Intn(len(syllCoda))])
		}
	}
	return sb.String()
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// misspellName produces a plausible one-edit variant used as an alternate
// name, exercising fuzzy lookup.
func misspellName(rng *rand.Rand, name string) string {
	runes := []rune(name)
	if len(runes) < 4 {
		return name + "e"
	}
	i := 1 + rng.Intn(len(runes)-2)
	switch rng.Intn(3) {
	case 0: // swap adjacent
		runes[i], runes[i+1] = runes[i+1], runes[i]
	case 1: // drop
		runes = append(runes[:i], runes[i+1:]...)
	default: // double
		runes = append(runes[:i+1], runes[i:]...)
	}
	return string(runes)
}
