// Package gazetteer implements a GeoNames-like toponym store: named
// geographic references with coordinates, feature classes, countries and
// populations, indexed for exact, prefix and misspelling-tolerant lookup
// and for spatial queries.
//
// The paper uses the GeoNames database for its ambiguity statistics
// (Table 1, Figures 1 and 2) and as the candidate source for geographic
// name disambiguation. GeoNames itself is not shippable here, so
// synth.go provides a calibrated synthetic generator whose name→reference
// multiplicity distribution matches the paper's published statistics; see
// DESIGN.md §2 for the substitution argument.
package gazetteer

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/geo"
	"repro/internal/text"
)

// FeatureClass is a coarse GeoNames-style feature category.
type FeatureClass string

// Feature classes used by the synthetic gazetteer.
const (
	FeatureCity     FeatureClass = "P" // populated place
	FeatureChurch   FeatureClass = "S" // spot/building (churches etc.)
	FeatureStream   FeatureClass = "H" // hydrographic (creeks, lakes)
	FeatureMountain FeatureClass = "T" // hypsographic
	FeatureRegion   FeatureClass = "A" // administrative region
)

// Entry is one geographic reference: a (name, location) pair with metadata.
// Many entries may share a name — that is precisely the ambiguity the
// paper quantifies ("'Cairo' is the name of more than ten cities …").
type Entry struct {
	ID         int64
	Name       string // canonical display name
	NormName   string // text.NormalizeName(Name)
	AltNames   []string
	Location   geo.Point
	Feature    FeatureClass
	Country    string // ISO-like country code
	Population int64  // 0 for non-populated features
}

// Gazetteer is an in-memory toponym database with name and spatial indexes.
// Reads are safe for concurrent use; Add must not race with readers.
type Gazetteer struct {
	mu      sync.RWMutex
	entries map[int64]*Entry
	byName  map[string][]int64 // normalised name -> entry IDs
	// lenBuckets groups names by (first byte, rune length) so fuzzy lookup
	// only scans names whose length is within the edit-distance budget.
	lenBuckets map[bucketKey][]string
	spatial    *geo.RTree[int64]
	nextID     int64

	// fuzzyMu guards fuzzyCache, the memo of LookupFuzzy results. Noisy
	// streams repeat the same misspellings constantly, and the
	// edit-distance scan dominates the extraction hot path, so memoizing
	// it is the single largest throughput lever. Invalidated by Add.
	fuzzyMu    sync.Mutex
	fuzzyCache map[string][]FuzzyMatch
	// fuzzyGen is bumped by Add so a lookup computed against the old
	// index cannot be memoized after the invalidation (lost-update race).
	fuzzyGen uint64
}

type bucketKey struct {
	first  byte
	length int
}

// maxFuzzyCache bounds the fuzzy-lookup memo; past it the memo resets
// wholesale (streams revisit the same misspellings, so the working set is
// small and a full reset is cheaper than eviction bookkeeping).
const maxFuzzyCache = 8192

// New returns an empty gazetteer.
func New() *Gazetteer {
	return &Gazetteer{
		entries:    make(map[int64]*Entry),
		byName:     make(map[string][]int64),
		lenBuckets: make(map[bucketKey][]string),
		spatial:    geo.NewRTree[int64](),
		nextID:     1,
	}
}

// Add inserts an entry, assigning its ID and normalised name, and returns
// the stored copy.
func (g *Gazetteer) Add(e Entry) (*Entry, error) {
	if strings.TrimSpace(e.Name) == "" {
		return nil, fmt.Errorf("gazetteer: empty name")
	}
	if err := e.Location.Validate(); err != nil {
		return nil, fmt.Errorf("gazetteer: entry %q: %w", e.Name, err)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	stored := e
	stored.ID = g.nextID
	g.nextID++
	stored.NormName = text.NormalizeName(stored.Name)
	if stored.NormName == "" {
		return nil, fmt.Errorf("gazetteer: name %q normalises to empty", e.Name)
	}
	g.entries[stored.ID] = &stored
	g.indexName(stored.NormName, stored.ID)
	for _, alt := range stored.AltNames {
		if norm := text.NormalizeName(alt); norm != "" && norm != stored.NormName {
			g.indexName(norm, stored.ID)
		}
	}
	if err := g.spatial.Insert(geo.BBoxOf(stored.Location), stored.ID); err != nil {
		return nil, fmt.Errorf("gazetteer: spatial index: %w", err)
	}
	// New names can change fuzzy results; drop the memo and bump the
	// generation so in-flight lookups don't re-cache stale results.
	g.fuzzyMu.Lock()
	g.fuzzyCache = nil
	g.fuzzyGen++
	g.fuzzyMu.Unlock()
	return &stored, nil
}

func (g *Gazetteer) indexName(norm string, id int64) {
	ids := g.byName[norm]
	if len(ids) == 0 {
		key := bucketKey{first: norm[0], length: runeCount(norm)}
		g.lenBuckets[key] = append(g.lenBuckets[key], norm)
	}
	g.byName[norm] = append(ids, id)
}

func runeCount(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

// Len returns the number of entries (references).
func (g *Gazetteer) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.entries)
}

// NameCount returns the number of distinct indexed names.
func (g *Gazetteer) NameCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.byName)
}

// Get returns the entry with the given ID.
func (g *Gazetteer) Get(id int64) (*Entry, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e, ok := g.entries[id]
	return e, ok
}

// Lookup returns all entries whose (normalised) name or alternate name
// equals the given name, in ID order. This is the "degree of ambiguity" of
// the name: len(Lookup(name)) is its reference count.
func (g *Gazetteer) Lookup(name string) []*Entry {
	norm := text.NormalizeName(name)
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := g.byName[norm]
	out := make([]*Entry, 0, len(ids))
	for _, id := range ids {
		out = append(out, g.entries[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FuzzyMatch is a fuzzy-lookup result: the matched indexed name, its edit
// distance from the query, and the entries it refers to.
type FuzzyMatch struct {
	Name     string
	Distance int
	Entries  []*Entry
}

// LookupFuzzy returns entries whose names are within maxDist
// Damerau-Levenshtein edits of the query, grouped by matched name and
// ordered by increasing distance then name. Exact matches are included at
// distance 0. Length bucketing keeps the scan to names that could possibly
// match.
//
// The returned slice may be shared with other callers (results are
// memoized): treat it, and the entries it points to, as read-only.
func (g *Gazetteer) LookupFuzzy(name string, maxDist int) []FuzzyMatch {
	norm := text.NormalizeName(name)
	if norm == "" {
		return nil
	}
	if maxDist < 0 {
		maxDist = 0
	}
	key := fmt.Sprintf("%d\x00%s", maxDist, norm)
	g.fuzzyMu.Lock()
	cached, hit := g.fuzzyCache[key]
	gen := g.fuzzyGen
	g.fuzzyMu.Unlock()
	if hit {
		// The memoized slice is shared: callers must treat matches (and
		// the entries they point to) as read-only, which all of ner does.
		return cached
	}
	out := g.lookupFuzzySlow(norm, maxDist)
	g.fuzzyMu.Lock()
	// Only memoize if no Add invalidated the index while we computed.
	if g.fuzzyGen == gen {
		if g.fuzzyCache == nil || len(g.fuzzyCache) >= maxFuzzyCache {
			g.fuzzyCache = make(map[string][]FuzzyMatch)
		}
		g.fuzzyCache[key] = out
	}
	g.fuzzyMu.Unlock()
	return out
}

func (g *Gazetteer) lookupFuzzySlow(norm string, maxDist int) []FuzzyMatch {
	g.mu.RLock()
	defer g.mu.RUnlock()
	qLen := runeCount(norm)
	seen := make(map[string]int) // name -> distance
	// Candidate first bytes: the query's own first byte always; if the
	// budget allows deleting/substituting the first rune, all buckets with
	// matching length must be scanned.
	for key, names := range g.lenBuckets {
		if key.length < qLen-maxDist || key.length > qLen+maxDist {
			continue
		}
		if key.first != norm[0] && maxDist == 0 {
			continue
		}
		for _, cand := range names {
			if _, done := seen[cand]; done {
				continue
			}
			if cand == norm {
				seen[cand] = 0
				continue
			}
			if maxDist == 0 {
				continue
			}
			if text.WithinDistance(norm, cand, maxDist) {
				seen[cand] = text.DamerauLevenshtein(norm, cand)
			}
		}
	}
	out := make([]FuzzyMatch, 0, len(seen))
	for cand, dist := range seen {
		ids := g.byName[cand]
		entries := make([]*Entry, 0, len(ids))
		for _, id := range ids {
			entries = append(entries, g.entries[id])
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
		out = append(out, FuzzyMatch{Name: cand, Distance: dist, Entries: entries})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// HasName reports whether the exact normalised name is indexed.
func (g *Gazetteer) HasName(name string) bool {
	norm := text.NormalizeName(name)
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.byName[norm]) > 0
}

// Near returns the entries within radiusMeters of p ordered by distance.
func (g *Gazetteer) Near(p geo.Point, radiusMeters float64) []*Entry {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ns := g.spatial.Within(p, radiusMeters)
	out := make([]*Entry, 0, len(ns))
	for _, n := range ns {
		out = append(out, g.entries[n.Value])
	}
	return out
}

// NearestCity returns the closest populated place to p, or false when the
// gazetteer holds none.
func (g *Gazetteer) NearestCity(p geo.Point) (*Entry, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	// Over-fetch because the nearest entries may be non-cities.
	for _, k := range []int{8, 64, 512} {
		for _, n := range g.spatial.Nearest(p, k) {
			e := g.entries[n.Value]
			if e.Feature == FeatureCity {
				return e, true
			}
		}
		if k >= g.spatial.Len() {
			break
		}
	}
	return nil, false
}

// EachEntry visits every entry in unspecified order until fn returns false.
func (g *Gazetteer) EachEntry(fn func(*Entry) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, e := range g.entries {
		if !fn(e) {
			return
		}
	}
}
