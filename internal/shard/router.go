// Package shard partitions the probabilistic spatial XML database into N
// independent xmldb shards so unrelated regions never contend on one
// lock. A pluggable Router decides placement — by default spatially, on
// the coarse geographic grid the gazetteer's disambiguation scale
// implies, with a key-hash fallback for location-less records — and the
// Store scatters reads (Query, Near, Each, Len) across all shards and
// merges the results. Integrator gives the coordinator's concurrent
// pipeline one integration lane per shard, so batches for different
// regions commit and group-ack in parallel while each shard keeps the
// single-writer invariant of the unsharded pipeline.
package shard

import (
	"hash/fnv"

	"repro/internal/geo"
	"repro/internal/text"
)

// Router maps a record to its home shard.
type Router interface {
	// Shards is the number of partitions the router spreads over.
	Shards() int
	// Route returns the shard index in [0, Shards()) for a record with
	// the given resolved location (nil when none) and entity key (the
	// domain key-field text; may be empty). Routing must be a pure
	// function of its arguments: the same (location, key) always lands on
	// the same shard, so repeated reports about one entity meet in one
	// partition and duplicate detection keeps working shard-locally.
	Route(loc *geo.Point, key string) int
}

// GridPrecision is the geohash precision of the default spatial routing
// grid. Precision 3 cells are ~156×156 km — comfortably larger than the
// 50 km duplicate-blocking radius of the integration service, so the
// reports that could ever merge almost always share a cell, and the
// cell count is still high enough to spread load evenly.
const GridPrecision = 3

// GridRouter is the default router: records with a resolved location are
// routed by the geohash grid cell containing it (all reports about one
// place share a cell, so they share a shard); location-less records fall
// back to a hash of their normalised entity key, which is exactly the
// identity duplicate detection matches them by.
//
// Known placement gap: when one entity is reported both with and
// without a resolved location, the two routes (cell hash vs key hash)
// usually disagree, so shard-local duplicate detection can keep two
// records where a single store would merge — spatial locality and key
// locality cannot both hold without a global directory. Streams whose
// reports resolve locations consistently (the validation scenarios) are
// unaffected; for heavily mixed streams prefer HashRouter, which always
// co-locates an entity's reports.
type GridRouter struct {
	n         int
	precision int
}

// NewGridRouter returns a spatial router over n shards (n >= 1) at the
// default grid precision.
func NewGridRouter(n int) *GridRouter {
	if n < 1 {
		n = 1
	}
	return &GridRouter{n: n, precision: GridPrecision}
}

// Shards implements Router.
func (r *GridRouter) Shards() int { return r.n }

// Route implements Router.
func (r *GridRouter) Route(loc *geo.Point, key string) int {
	if r.n == 1 {
		return 0
	}
	if loc != nil {
		return int(hashString(geo.EncodeGeohash(*loc, r.precision)) % uint64(r.n))
	}
	return int(hashString("key\x00"+text.NormalizeName(key)) % uint64(r.n))
}

// HashRouter ignores geography and routes purely by entity key — useful
// when the workload has no spatial skew or no locations at all. Records
// with a location still route by key, so a located and a location-less
// report about the same entity always meet.
type HashRouter struct{ n int }

// NewHashRouter returns a key-hash router over n shards (n >= 1).
func NewHashRouter(n int) *HashRouter {
	if n < 1 {
		n = 1
	}
	return &HashRouter{n: n}
}

// Shards implements Router.
func (r *HashRouter) Shards() int { return r.n }

// Route implements Router.
func (r *HashRouter) Route(_ *geo.Point, key string) int {
	if r.n == 1 {
		return 0
	}
	return int(hashString("key\x00"+text.NormalizeName(key)) % uint64(r.n))
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
