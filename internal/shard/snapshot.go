package shard

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"repro/internal/xmldb"
)

// snapshotMagic heads a sharded snapshot stream; the shard count follows
// on the same line so Restore can refuse a mismatched layout before
// reading a single record.
const snapshotMagic = "neogeo-shard-snapshot v1"

// Snapshot writes an image of every shard to w as one stream: a header
// line naming the format and the shard count, then one length-prefixed
// (big-endian uint64) xmldb snapshot section per shard, in shard order.
// Each shard is read-locked only while its own section is produced, so
// the image is consistent per shard but not across shards: a write
// landing between two sections appears in the later shard's section
// only. Quiesce writers (finish the drain) before snapshotting when a
// point-in-time image of the whole store is required.
func (s *Store) Snapshot(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s %d\n", snapshotMagic, len(s.dbs)); err != nil {
		return fmt.Errorf("shard: snapshot header: %w", err)
	}
	var buf bytes.Buffer
	for i, db := range s.dbs {
		buf.Reset()
		if err := db.Snapshot(&buf); err != nil {
			return fmt.Errorf("shard: snapshot shard %d: %w", i, err)
		}
		if err := binary.Write(w, binary.BigEndian, uint64(buf.Len())); err != nil {
			return fmt.Errorf("shard: snapshot shard %d: %w", i, err)
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return fmt.Errorf("shard: snapshot shard %d: %w", i, err)
		}
	}
	return nil
}

// Restore replaces every shard's contents with the sections of a
// snapshot produced by Snapshot. The snapshot's shard count must match
// this store's — sections are placed by position, and record IDs encode
// their home shard, so restoring into a different layout would scatter
// records off their routes. All sections are read and validated against
// scratch databases before any live shard is touched, so a malformed
// snapshot leaves the store unchanged; afterwards each shard's ID
// sequence is re-aligned onto its residue class so new inserts keep
// strided, globally unique IDs.
//
// A single-shard store also accepts a bare xmldb snapshot (the format
// the unsharded system wrote before sections existed), so snapshots
// taken by earlier releases stay restorable.
func (s *Store) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return fmt.Errorf("shard: restore: reading header: %w", err)
	}
	var count int
	if _, err := fmt.Sscanf(header, snapshotMagic+" %d\n", &count); err != nil {
		if len(s.dbs) == 1 {
			// Not a sectioned stream: hand the whole thing — consumed
			// header line included — to the single shard as a legacy
			// bare snapshot.
			return s.dbs[0].Restore(io.MultiReader(strings.NewReader(header), br))
		}
		return fmt.Errorf("shard: restore: not a sharded snapshot (header %q)", header)
	}
	if count != len(s.dbs) {
		return fmt.Errorf("shard: restore: snapshot has %d shard(s), store has %d", count, len(s.dbs))
	}

	sections := make([][]byte, count)
	for i := range sections {
		var n uint64
		if err := binary.Read(br, binary.BigEndian, &n); err != nil {
			return fmt.Errorf("shard: restore: shard %d length: %w", i, err)
		}
		sections[i] = make([]byte, n)
		if _, err := io.ReadFull(br, sections[i]); err != nil {
			return fmt.Errorf("shard: restore: shard %d section: %w", i, err)
		}
		// Full validation pass against a scratch database: the section
		// must restore cleanly before any live shard is replaced.
		if err := xmldb.New().Restore(bytes.NewReader(sections[i])); err != nil {
			return fmt.Errorf("shard: restore: shard %d: %w", i, err)
		}
	}

	n := int64(len(s.dbs))
	for i, db := range s.dbs {
		if err := db.Restore(bytes.NewReader(sections[i])); err != nil {
			return fmt.Errorf("shard: restore: shard %d: %w", i, err)
		}
		if err := db.AlignIDSequence(int64(i)+1, n); err != nil {
			return fmt.Errorf("shard: restore: shard %d: %w", i, err)
		}
	}
	s.auditDrift()
	return nil
}

// auditDrift re-counts placement drift after a restore: a restored
// image can carry records whose location moved off their home shard's
// routing cell in a previous process (the in-memory drift counters do
// not persist). Any such record makes spatial plan narrowing unsound,
// so finding one moves the store's drift epoch.
func (s *Store) auditDrift() {
	if len(s.dbs) == 1 {
		return
	}
	var drifted int64
	for i, db := range s.dbs {
		for _, coll := range db.Collections() {
			db.Each(coll, func(rec *xmldb.Record) bool {
				if rec.Location != nil && s.router.Route(rec.Location, DocKey(rec.Doc)) != i {
					drifted++
				}
				return true
			})
		}
	}
	s.restoreDrift.Add(drifted)
}
