package shard

import (
	"fmt"

	"repro/internal/extract"
	"repro/internal/integrate"
	"repro/internal/kb"
)

// Integrator is the sharded integration sink for the coordinator's
// concurrent pipeline: one integrate.Service per shard, each bound to
// that shard's database. Every lane keeps the unsharded pipeline's
// single-writer invariant — all writes to one shard happen on one lane
// goroutine, so the probabilistic merge path needs no cross-worker
// coordination — while different lanes commit batches and group-ack in
// parallel. Source-trust feedback stays global (the KB's trust model is
// internally synchronised), so a source's reliability is learned across
// shards exactly as in the single-store system.
type Integrator struct {
	store *Store
	kb    *kb.KB
	svcs  []*integrate.Service
	// onCommit, when set, observes every lane commit (see OnCommit).
	onCommit func(lane int, commits []Commit)
}

// Commit describes one record an integration batch wrote, for the
// read path's standing-query broadcaster.
type Commit struct {
	// Collection is the record's collection (from the template's domain).
	Collection string
	// RecordID is the written record.
	RecordID int64
	// Action is what integration did: inserted or merged.
	Action integrate.Action
}

// NewIntegrator builds one integration service per shard of the store.
func NewIntegrator(k *kb.KB, store *Store) (*Integrator, error) {
	if k == nil || store == nil {
		return nil, fmt.Errorf("shard: nil dependency")
	}
	svcs := make([]*integrate.Service, store.NumShards())
	for i := range svcs {
		svc, err := integrate.NewService(k, store.Shard(i))
		if err != nil {
			return nil, err
		}
		svcs[i] = svc
	}
	return &Integrator{store: store, kb: k, svcs: svcs}, nil
}

// Lanes returns the number of independent integration lanes (= shards).
func (in *Integrator) Lanes() int { return len(in.svcs) }

// Services exposes the per-shard integration services (for tuning
// MatchThreshold/BlockRadiusMeters, and for sequential per-shard work
// like temporal decay).
func (in *Integrator) Services() []*integrate.Service { return in.svcs }

// Store returns the sharded store the lanes write to.
func (in *Integrator) Store() *Store { return in.store }

// Route assigns one message's template group to a lane. The group stays
// together (preserving the pipeline's per-message ordering invariant)
// and is routed by its first template — the resolved location when one
// exists, else the domain key field, the same identity duplicate
// detection matches by, so all reports about an entity meet in one
// shard. A message mentioning entities from several routing cells
// therefore places its secondary entities on the primary's shard, and a
// later single-entity report about one of them can miss that record and
// insert anew — the price of keeping a message's templates atomic on
// one lane rather than splitting its ordering and error semantics
// across shards. Messages with no templates (requests) route to lane 0;
// the coordinator spreads their group-acks across lanes itself.
func (in *Integrator) Route(tpls []extract.Template) int {
	for _, tpl := range tpls {
		key := ""
		if d, ok := in.kb.Domain(tpl.Domain); ok {
			key = tpl.Fields[d.KeyField].Text
		}
		return in.store.router.Route(tpl.Location, key)
	}
	return 0
}

// OnCommit installs a hook observing every lane commit, called after
// the batch's database writes with the lane index and the records it
// wrote. The hook runs on the lane goroutine AFTER the shard's version
// counter moved (the writes are done), so a reader woken by it always
// sees the new state; it must be brief and must not call back into the
// integrator. Install before processing starts — the field is not
// synchronised against concurrent IntegrateGroups calls.
func (in *Integrator) OnCommit(fn func(lane int, commits []Commit)) {
	in.onCommit = fn
}

// IntegrateGroups integrates several messages' template groups on one
// lane as a single amortized batch against that lane's shard. The caller
// must serialise calls per lane (the coordinator runs one goroutine per
// lane); calls on different lanes run concurrently.
func (in *Integrator) IntegrateGroups(lane int, groups [][]extract.Template) [][]integrate.BatchResult {
	out := in.svcs[lane].IntegrateGroups(groups)
	if in.onCommit != nil {
		var commits []Commit
		for gi, results := range out {
			group := groups[gi]
			for ti, res := range results {
				if res.Err != nil || res.Result == nil || res.Result.RecordID == 0 || ti >= len(group) {
					continue
				}
				d, ok := in.kb.Domain(group[ti].Domain)
				if !ok {
					continue
				}
				commits = append(commits, Commit{
					Collection: d.Collection,
					RecordID:   res.Result.RecordID,
					Action:     res.Result.Action,
				})
			}
		}
		if len(commits) > 0 {
			in.onCommit(lane, commits)
		}
	}
	return out
}
