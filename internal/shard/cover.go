package shard

import (
	"math"
	"sort"

	"repro/internal/geo"
)

// metersPerDegree understates the great-circle metres spanned by one
// degree of latitude (π·EarthRadius/180 ≈ 111195), so radius→degree
// conversions below always overshoot and a cover never misses a cell.
const metersPerDegree = 110000

// coverCellLimit bounds how many grid cells CoverShards will enumerate
// before giving up and declaring the whole store touched. The QA
// service's proximity radii (tens of km) cover 1–4 of the ~156 km
// precision-3 cells, far below the limit; only a degenerate radius
// (thousands of km) trips it.
const coverCellLimit = 4096

// CoverShards returns the sorted set of shard indexes that can hold a
// located record within radiusMeters of center — the union of the homes
// of every routing-grid cell intersecting the circle. It is a superset
// guarantee, not an exact cover: a returned shard may hold no matching
// record, but a matching located record is never outside the returned
// set, because placement is by the geohash cell of the record's
// location and every cell the circle touches is enumerated (with a
// conservative margin on the degree conversion).
//
// The read path uses this two ways: an answer whose query carries a
// near() predicate is cached against only the covering shards' versions,
// and a geofenced standing query registers on only the covering shards.
// Location-less records route by key hash instead and are invisible to
// spatial predicates, so they cannot invalidate the superset guarantee.
func (r *GridRouter) CoverShards(center geo.Point, radiusMeters float64) []int {
	if r.n == 1 {
		return []int{0}
	}
	if radiusMeters < 0 {
		radiusMeters = 0
	}

	// Geohash cell geometry at this precision: 5 bits per character,
	// alternating starting with longitude, so longitude gets the extra
	// bit on odd totals.
	bits := 5 * r.precision
	lonBits := (bits + 1) / 2
	latBits := bits / 2
	cellLat := 180 / float64(int64(1)<<latBits)
	cellLon := 360 / float64(int64(1)<<lonBits)
	latCells := int64(1) << latBits
	lonCells := int64(1) << lonBits

	latDelta := radiusMeters / metersPerDegree
	latMin := math.Max(center.Lat-latDelta, -90)
	latMax := math.Min(center.Lat+latDelta, 90)

	// Longitude degrees shrink with cos(lat); near the poles the circle
	// wraps most of a parallel and the cover degenerates to everything.
	maxAbsLat := math.Max(math.Abs(latMin), math.Abs(latMax))
	if maxAbsLat > 89 {
		return r.allShards()
	}
	lonDelta := radiusMeters / (metersPerDegree * math.Cos(deg2rad(maxAbsLat)))
	if lonDelta >= 180 {
		return r.allShards()
	}

	i0 := cellIndex(latMin+90, cellLat, latCells)
	i1 := cellIndex(latMax+90, cellLat, latCells)
	// Longitude indexes may run past the antimeridian; enumerate the
	// unclamped range and wrap each index into [0, lonCells).
	j0 := int64(math.Floor((center.Lon - lonDelta + 180) / cellLon))
	j1 := int64(math.Floor((center.Lon + lonDelta + 180) / cellLon))

	if (i1-i0+1)*(j1-j0+1) > coverCellLimit {
		return r.allShards()
	}

	seen := make(map[int]bool)
	for i := i0; i <= i1; i++ {
		lat := -90 + (float64(i)+0.5)*cellLat
		for j := j0; j <= j1; j++ {
			jm := ((j % lonCells) + lonCells) % lonCells
			lon := -180 + (float64(jm)+0.5)*cellLon
			cell := geo.EncodeGeohash(geo.Point{Lat: lat, Lon: lon}, r.precision)
			seen[int(hashString(cell)%uint64(r.n))] = true
		}
		if len(seen) == r.n {
			break
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// cellIndex maps a shifted coordinate (latitude+90 or longitude+180) to
// its grid row, clamped onto the valid index range so the 90/180
// boundary lands in the last cell instead of one past it.
func cellIndex(shifted, cellSize float64, cells int64) int64 {
	i := int64(math.Floor(shifted / cellSize))
	if i < 0 {
		i = 0
	}
	if i >= cells {
		i = cells - 1
	}
	return i
}

func (r *GridRouter) allShards() []int {
	out := make([]int, r.n)
	for i := range out {
		out[i] = i
	}
	return out
}

func deg2rad(d float64) float64 { return d * math.Pi / 180 }

// RoutesByKeyAlone documents that HashRouter placement ignores
// geography entirely: every record, located or not, lands on the shard
// of its entity key. The read path's subscription registrar asserts for
// this to register an entity-keyed standing query on a single shard
// instead of all of them.
func (r *HashRouter) RoutesByKeyAlone() bool { return true }
