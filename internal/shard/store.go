package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/integrate"
	"repro/internal/obs"
	"repro/internal/pxml"
	"repro/internal/uncertain"
	"repro/internal/xmldb"
)

// Store fan-out timings: Run covers the QA service's query path
// (scatter to every shard, merge, re-rank); Near the spatial probe the
// integrator's duplicate-blocking uses.
var (
	mStoreQuerySeconds = obs.Default().Histogram("neogeo_store_query_seconds",
		"Cross-shard store operation wall time.", nil, "op")
	storeRunSeconds  = mStoreQuerySeconds.With("run")
	storeNearSeconds = mStoreQuerySeconds.With("near")
)

// Span names of the per-shard fan-out legs (bounded constants): in a
// partitioned deployment a traced query shows one child span per
// shard, which is exactly the view a future cross-process fan-out
// needs.
const (
	spanShardRun  = "shard_run"
	spanShardNear = "shard_near"
)

// Store partitions records across N independent xmldb databases. Writes
// route to one shard (spatially via the Router for located records, by
// entity-key hash otherwise; updates and deletes by the shard encoded in
// the record ID); reads scatter across all shards in parallel and merge.
//
// Record IDs are globally unique: shard i issues IDs i+1, i+1+N,
// i+1+2N, …, so a record's home shard is recoverable from its ID alone
// and point reads never fan out. A record never migrates — placement is
// decided at insert, and a later location update leaves it on its home
// shard (the router cell and the 50 km duplicate-blocking radius are
// coarse enough that this does not split entities in practice).
//
// Store satisfies the integrate.Store interface, so the unsharded
// integration logic runs against it unchanged; per-shard integration
// (one integrate.Service per shard, see Integrator) is the faster path
// the concurrent pipeline uses.
type Store struct {
	router Router
	dbs    []*xmldb.DB
	// restoreDrift accumulates placement drift found by restore-time
	// audits, on top of the live per-shard counters (see Drift).
	restoreDrift atomic.Int64
}

var _ integrate.Store = (*Store)(nil)

// New returns a store of n empty shards (n >= 1). A nil router installs
// the default spatial GridRouter over n shards; a non-nil router must
// report Shards() == n.
func New(n int, r Router) (*Store, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	if r == nil {
		r = NewGridRouter(n)
	}
	if r.Shards() != n {
		return nil, fmt.Errorf("shard: router spans %d shards, store has %d", r.Shards(), n)
	}
	s := &Store{router: r, dbs: make([]*xmldb.DB, n)}
	for i := range s.dbs {
		db := xmldb.New()
		if err := db.SetIDSequence(int64(i+1), int64(n)); err != nil {
			return nil, err
		}
		s.dbs[i] = db
	}
	return s, nil
}

// NumShards returns the partition count.
func (s *Store) NumShards() int { return len(s.dbs) }

// Shard exposes one partition's database (read-mostly: for per-shard
// integration services, benchmarks and tests).
func (s *Store) Shard(i int) *xmldb.DB { return s.dbs[i] }

// Router returns the placement router.
func (s *Store) Router() Router { return s.router }

// SetClock overrides every shard's timestamp source (tests).
func (s *Store) SetClock(clock func() time.Time) {
	for _, db := range s.dbs {
		db.SetClock(clock)
	}
}

// Versions returns every shard's mutation counter (xmldb.DB.Version) as
// one vector — the read path's invalidation spine. Each element is a
// single atomic load; the call never touches a database lock, so it is
// cheap enough to run on every Ask. Elements are read independently,
// not as one consistent cut: the vector a reader records before a query
// can only under-count concurrent writes, which makes a later
// equality check conservative (a moved version may force a needless
// recompute, never a stale hit).
func (s *Store) Versions() []int64 {
	out := make([]int64, len(s.dbs))
	for i, db := range s.dbs {
		out[i] = db.Version()
	}
	return out
}

// Drift returns the store's placement-drift epoch: how many times a
// record's location has been observed somewhere its home shard's
// routing cell does not cover — location-moving merges and feedback
// corrections in this process (xmldb.DB.LocationDrift) plus drifted
// records found by restore-time audits. While zero, every located
// record lives on the shard its current location routes to, so the
// read path may narrow a spatial query's blast radius to the covering
// shards (GridRouter.CoverShards); once it moves, narrowing is
// permanently disabled — conservative, because a transient drifted
// record may be long deleted, but always sound.
func (s *Store) Drift() int64 {
	d := s.restoreDrift.Load()
	for _, db := range s.dbs {
		d += db.LocationDrift()
	}
	return d
}

// ShardFor returns the home shard index encoded in a record ID.
func (s *Store) ShardFor(id int64) int {
	n := int64(len(s.dbs))
	if n == 1 || id < 1 {
		return 0
	}
	return int((id - 1) % n)
}

// fanOut runs fn once per shard, in parallel when there is more than one.
func (s *Store) fanOut(fn func(i int, db *xmldb.DB)) {
	if len(s.dbs) == 1 {
		fn(0, s.dbs[0])
		return
	}
	var wg sync.WaitGroup
	for i, db := range s.dbs {
		wg.Add(1)
		go func(i int, db *xmldb.DB) {
			defer wg.Done()
			fn(i, db)
		}(i, db)
	}
	wg.Wait()
}

// DocKey derives the routing key of a bare document: the text of its
// first child element that has any — the domain key field for every
// built-in domain, since templates emit the key field first (see
// extract.Template.fieldOrder). It must return the bare field text,
// exactly what Integrator.Route feeds the router, so direct Store
// writes and routed integration lanes agree on placement. The read
// path's entity-keyed standing queries match on the same key, so a
// subscription and the router agree about which records an entity name
// denotes.
func DocKey(doc *pxml.Node) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.Children {
		if c.Tag == "" {
			continue
		}
		if t := c.TextContent(); t != "" {
			return t
		}
	}
	return doc.Tag
}

// Insert stores a document on the shard the router assigns it.
func (s *Store) Insert(collection string, doc *pxml.Node, certainty uncertain.CF, loc *geo.Point) (*xmldb.Record, error) {
	return s.dbs[s.router.Route(loc, DocKey(doc))].Insert(collection, doc, certainty, loc)
}

// Update replaces a record on its home shard (derived from the ID).
func (s *Store) Update(collection string, id int64, doc *pxml.Node, certainty uncertain.CF, newLoc *geo.Point) error {
	return s.dbs[s.ShardFor(id)].Update(collection, id, doc, certainty, newLoc)
}

// Get is a point read against the record's home shard.
func (s *Store) Get(collection string, id int64) (*xmldb.Record, bool) {
	return s.dbs[s.ShardFor(id)].Get(collection, id)
}

// Delete removes a record from its home shard.
func (s *Store) Delete(collection string, id int64) error {
	return s.dbs[s.ShardFor(id)].Delete(collection, id)
}

// Len returns the number of records in a collection across all shards.
func (s *Store) Len(collection string) int {
	counts := make([]int, len(s.dbs))
	s.fanOut(func(i int, db *xmldb.DB) { counts[i] = db.Len(collection) })
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

// Each visits a collection's records shard by shard (shard 0 first, each
// in its own insertion order) until fn returns false. Unlike the
// unsharded database, global insertion order across shards is not
// preserved.
func (s *Store) Each(collection string, fn func(*xmldb.Record) bool) {
	for _, db := range s.dbs {
		stopped := false
		db.Each(collection, func(rec *xmldb.Record) bool {
			if !fn(rec) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// Near scatters the radius query across every shard's spatial index in
// parallel and merges to one nearest-first ID list — a radius that
// straddles shard grid-cell boundaries sees exactly the records a
// single-store query would, because membership is re-checked per shard
// and the merge re-sorts by true distance.
func (s *Store) Near(collection string, p geo.Point, radiusMeters float64) []int64 {
	//lint:ignore ctxflow compat wrapper for ctx-less callers; NearContext is the cancellable path
	return s.NearContext(context.Background(), collection, p, radiusMeters)
}

// NearContext is Near carrying the caller's context: when the request
// is being traced, each shard's probe becomes a child span tagged with
// its shard index.
func (s *Store) NearContext(ctx context.Context, collection string, p geo.Point, radiusMeters float64) []int64 {
	defer storeNearSeconds.Since(time.Now())
	type hit struct {
		id int64
		d  float64
	}
	parts := make([][]hit, len(s.dbs))
	s.fanOut(func(i int, db *xmldb.DB) {
		_, sp := obs.StartSpan(ctx, spanShardNear)
		sp.SetInt("shard", i)
		defer sp.End()
		ids := db.Near(collection, p, radiusMeters)
		hits := make([]hit, 0, len(ids))
		for _, id := range ids {
			rec, ok := db.Get(collection, id)
			if !ok || rec.Location == nil {
				continue
			}
			hits = append(hits, hit{id: id, d: rec.Location.DistanceMeters(p)})
		}
		parts[i] = hits
	})
	var merged []hit
	for _, part := range parts {
		merged = append(merged, part...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].d != merged[j].d {
			return merged[i].d < merged[j].d
		}
		return merged[i].id < merged[j].id
	})
	out := make([]int64, len(merged))
	for i, h := range merged {
		out[i] = h.id
	}
	return out
}

// Query parses and executes a query string, scattering execution across
// all shards in parallel and merging the results.
func (s *Store) Query(query string) ([]xmldb.Result, error) {
	q, err := xmldb.Parse(query)
	if err != nil {
		return nil, err
	}
	return s.Execute(q)
}

// Run is Query under the name *xmldb.DB uses, so the Store is a drop-in
// read replacement wherever a Run-shaped store is expected (the QA
// service).
func (s *Store) Run(query string) ([]xmldb.Result, error) {
	//lint:ignore ctxflow compat wrapper for ctx-less callers; RunContext is the cancellable path
	return s.RunContext(context.Background(), query)
}

// RunContext is Run carrying the caller's context (the qa.ContextStore
// upgrade): a traced Ask records one child span per shard the query
// scatters to.
func (s *Store) RunContext(ctx context.Context, query string) ([]xmldb.Result, error) {
	defer storeRunSeconds.Since(time.Now())
	q, err := xmldb.Parse(query)
	if err != nil {
		return nil, err
	}
	return s.ExecuteContext(ctx, q)
}

// Execute scatters a parsed query across every shard in parallel and
// merges. With orderby score($x) each shard pre-truncates to its local
// top-k and the merge re-ranks by (score desc, record ID asc) before the
// final top-k cut — the global top-k is always contained in the union of
// per-shard top-ks. Without orderby, results keep shard-major order.
func (s *Store) Execute(q *xmldb.Query) ([]xmldb.Result, error) {
	//lint:ignore ctxflow compat wrapper for ctx-less callers; ExecuteContext is the cancellable path
	return s.ExecuteContext(context.Background(), q)
}

// ExecuteContext is Execute carrying the caller's context for per-shard
// span attribution. Spans bracket each shard's Execute from outside the
// shard's lock (the recorder is never touched under db.mu).
func (s *Store) ExecuteContext(ctx context.Context, q *xmldb.Query) ([]xmldb.Result, error) {
	if q == nil {
		return nil, fmt.Errorf("shard: nil query")
	}
	parts := make([][]xmldb.Result, len(s.dbs))
	errs := make([]error, len(s.dbs))
	s.fanOut(func(i int, db *xmldb.DB) {
		_, sp := obs.StartSpan(ctx, spanShardRun)
		sp.SetInt("shard", i)
		parts[i], errs[i] = db.Execute(q)
		sp.SetInt("results", len(parts[i]))
		sp.SetError(errs[i])
		sp.End()
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var merged []xmldb.Result
	for _, part := range parts {
		merged = append(merged, part...)
	}
	if q.OrderByScore {
		sort.SliceStable(merged, func(i, j int) bool {
			if merged[i].Score != merged[j].Score {
				return merged[i].Score > merged[j].Score
			}
			return merged[i].Record.ID < merged[j].Record.ID
		})
	}
	if q.TopK > 0 && len(merged) > q.TopK {
		merged = merged[:q.TopK]
	}
	return merged, nil
}

// Collections returns the union of all shards' collection names, sorted.
func (s *Store) Collections() []string {
	seen := make(map[string]bool)
	for _, db := range s.dbs {
		for _, name := range db.Collections() {
			seen[name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Balance reports the total record count per shard (all collections) —
// the skew metric benchmarks report.
func (s *Store) Balance() []int {
	out := make([]int, len(s.dbs))
	for i, db := range s.dbs {
		for _, name := range db.Collections() {
			out[i] += db.Len(name)
		}
	}
	return out
}
