package shard

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/pxml"
)

func snapshotDoc(t *testing.T, name, city string) *pxml.Node {
	t.Helper()
	doc, err := pxml.Unmarshal(fmt.Sprintf("<Hotel><Hotel_Name>%s</Hotel_Name><City>%s</City></Hotel>", name, city))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestSnapshotRestoreRoundTrip: every record lands back on its original
// shard with its ID, and re-snapshotting the restored store reproduces
// the stream byte-for-byte.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s, err := New(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	cities := []struct {
		name string
		lat  float64
		lon  float64
	}{
		{"Berlin", 52.52, 13.40},
		{"Paris", 48.85, 2.35},
		{"Nairobi", -1.29, 36.82},
		{"Tokyo", 35.68, 139.69},
		{"Lagos", 6.52, 3.37},
	}
	for i, c := range cities {
		p, err := geo.NewPoint(c.lat, c.lon)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Insert("Hotels", snapshotDoc(t, fmt.Sprintf("Hotel %d", i), c.name), 0.8, &p); err != nil {
			t.Fatal(err)
		}
	}

	var img bytes.Buffer
	if err := s.Snapshot(&img); err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	fresh, err := New(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(bytes.NewReader(img.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got, want := fmt.Sprint(fresh.Balance()), fmt.Sprint(s.Balance()); got != want {
		t.Fatalf("balance %s, want %s", got, want)
	}

	var again bytes.Buffer
	if err := fresh.Snapshot(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), img.Bytes()) {
		t.Error("re-snapshot of restored store is not byte-identical")
	}
}

// TestRestoreLegacyBareSnapshot: a single-shard store accepts the bare
// xmldb snapshot format the unsharded system wrote before sections
// existed, so old snapshots stay restorable.
func TestRestoreLegacyBareSnapshot(t *testing.T) {
	src, err := New(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Insert("Hotels", snapshotDoc(t, "Axel Hotel", "Berlin"), 0.8, nil); err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if err := src.Shard(0).Snapshot(&legacy); err != nil { // the pre-section format
		t.Fatal(err)
	}

	dst, err := New(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(bytes.NewReader(legacy.Bytes())); err != nil {
		t.Fatalf("legacy restore: %v", err)
	}
	if dst.Len("Hotels") != 1 {
		t.Errorf("restored %d records, want 1", dst.Len("Hotels"))
	}
}

// TestRestoreValidation: mismatched shard counts and corrupt sections are
// refused without touching the store.
func TestRestoreValidation(t *testing.T) {
	src, err := New(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Insert("Hotels", snapshotDoc(t, "Axel Hotel", "Berlin"), 0.8, nil); err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	if err := src.Snapshot(&img); err != nil {
		t.Fatal(err)
	}

	dst, err := New(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(bytes.NewReader(img.Bytes())); err == nil {
		t.Error("3-shard store accepted a 2-shard snapshot")
	}

	populated, err := New(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := populated.Insert("Hotels", snapshotDoc(t, "Movenpick Hotel", "Berlin"), 0.9, nil); err != nil {
		t.Fatal(err)
	}
	before := populated.Len("Hotels")
	// Truncate the stream mid-section: validation must fail and leave the
	// populated store exactly as it was.
	corrupt := img.Bytes()[:img.Len()-10]
	if err := populated.Restore(bytes.NewReader(corrupt)); err == nil {
		t.Error("truncated snapshot accepted")
	}
	if populated.Len("Hotels") != before {
		t.Errorf("failed restore mutated the store: %d records, want %d", populated.Len("Hotels"), before)
	}

	if err := populated.Restore(strings.NewReader("not a snapshot\n")); err == nil {
		t.Error("garbage stream accepted")
	}
}
