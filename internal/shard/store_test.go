package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geo"
	"repro/internal/pxml"
	"repro/internal/uncertain"
	"repro/internal/xmldb"
)

func hotelDoc(name string) *pxml.Node {
	return pxml.Elem("Hotel", pxml.ElemText("Hotel_Name", name))
}

func mustInsert(t *testing.T, st *Store, name string, loc *geo.Point, cf uncertain.CF) *xmldb.Record {
	t.Helper()
	rec, err := st.Insert("Hotels", hotelDoc(name), cf, loc)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRouterDeterministicAndBounded(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		r := NewGridRouter(n)
		if r.Shards() != n {
			t.Fatalf("Shards() = %d, want %d", r.Shards(), n)
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			p := &geo.Point{Lat: rng.Float64()*170 - 85, Lon: rng.Float64()*360 - 180}
			a := r.Route(p, "")
			b := r.Route(p, "ignored for located records")
			if a != b || a < 0 || a >= n {
				t.Fatalf("n=%d: Route(%v) = %d then %d", n, p, a, b)
			}
			key := fmt.Sprintf("Hotel %d", i)
			ka, kb2 := r.Route(nil, key), r.Route(nil, key)
			if ka != kb2 || ka < 0 || ka >= n {
				t.Fatalf("n=%d: Route(nil, %q) = %d then %d", n, key, ka, kb2)
			}
		}
	}
}

func TestRouterKeyNormalisation(t *testing.T) {
	r := NewGridRouter(8)
	if r.Route(nil, "Essex House Hotel") != r.Route(nil, "essex   house hotel") {
		t.Error("normalised key variants routed to different shards")
	}
}

func TestRouterColocatesNearbyPoints(t *testing.T) {
	// Two reports about the same place (metres apart) must share a shard:
	// that is what keeps duplicate detection shard-local.
	r := NewGridRouter(8)
	a := &geo.Point{Lat: 52.5200, Lon: 13.4050}
	b := &geo.Point{Lat: 52.5201, Lon: 13.4052}
	if r.Route(a, "") != r.Route(b, "") {
		t.Error("points metres apart routed to different shards")
	}
}

func TestRouterSpreadsLoad(t *testing.T) {
	const n = 4
	r := NewGridRouter(n)
	rng := rand.New(rand.NewSource(2011))
	counts := make([]int, n)
	for i := 0; i < 4000; i++ {
		p := &geo.Point{Lat: rng.Float64()*170 - 85, Lon: rng.Float64()*360 - 180}
		counts[r.Route(p, "")]++
	}
	for i, c := range counts {
		if c < 400 {
			t.Fatalf("shard %d got %d of 4000 uniformly random points: %v", i, c, counts)
		}
	}
}

func TestStoreIDsGloballyUniqueAndRoutable(t *testing.T) {
	st, err := New(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	seen := make(map[int64]bool)
	for i := 0; i < 100; i++ {
		p := &geo.Point{Lat: rng.Float64()*170 - 85, Lon: rng.Float64()*360 - 180}
		rec := mustInsert(t, st, fmt.Sprintf("Hotel %d", i), p, 0.5)
		if seen[rec.ID] {
			t.Fatalf("duplicate record ID %d across shards", rec.ID)
		}
		seen[rec.ID] = true
		// The home shard must be recoverable from the ID alone.
		got, ok := st.Get("Hotels", rec.ID)
		if !ok || got.ID != rec.ID {
			t.Fatalf("Get(%d) = %v, %v", rec.ID, got, ok)
		}
		home := st.ShardFor(rec.ID)
		if _, ok := st.Shard(home).Get("Hotels", rec.ID); !ok {
			t.Fatalf("record %d not on its home shard %d", rec.ID, home)
		}
	}
	if got := st.Len("Hotels"); got != 100 {
		t.Fatalf("Len = %d, want 100", got)
	}
}

func TestStoreUpdateDeleteRouteByID(t *testing.T) {
	st, err := New(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := geo.Point{Lat: 52.52, Lon: 13.405}
	rec := mustInsert(t, st, "Axel Hotel", &p, 0.5)
	if err := st.Update("Hotels", rec.ID, hotelDoc("Axel Hotel Berlin"), 0.7, nil); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get("Hotels", rec.ID)
	if !ok || got.Certainty != 0.7 {
		t.Fatalf("after update: %+v, %v", got, ok)
	}
	if err := st.Delete("Hotels", rec.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("Hotels", rec.ID); ok {
		t.Fatal("record survived delete")
	}
	if got := st.Len("Hotels"); got != 0 {
		t.Fatalf("Len after delete = %d", got)
	}
}

func TestStoreEachVisitsAllAndStops(t *testing.T) {
	st, err := New(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	want := make(map[string]bool)
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("Hotel %d", i)
		p := &geo.Point{Lat: rng.Float64()*170 - 85, Lon: rng.Float64()*360 - 180}
		mustInsert(t, st, name, p, 0.5)
		want[name] = true
	}
	got := make(map[string]bool)
	st.Each("Hotels", func(rec *xmldb.Record) bool {
		n, _ := rec.Doc.FirstChild("Hotel_Name")
		got[n.TextContent()] = true
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Each visited %d of %d records", len(got), len(want))
	}
	// Early stop is honoured across shard boundaries.
	visits := 0
	st.Each("Hotels", func(*xmldb.Record) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Fatalf("early stop visited %d records, want 3", visits)
	}
}

// recordNames maps a store's record IDs to hotel names, the cross-store
// identity (IDs differ between sharded and unsharded stores by design).
func nameOf(t *testing.T, g interface {
	Get(string, int64) (*xmldb.Record, bool)
}, id int64) string {
	t.Helper()
	rec, ok := g.Get("Hotels", id)
	if !ok {
		t.Fatalf("record %d vanished", id)
	}
	n, _ := rec.Doc.FirstChild("Hotel_Name")
	return n.TextContent()
}

// TestNearMatchesSingleStore is the shard-boundary property test: random
// points inserted into a 4-shard store and an unsharded database, then
// radius queries — including radii far wider than a routing grid cell,
// so the circle straddles many shard boundaries — must return the same
// set of records, nearest first.
func TestNearMatchesSingleStore(t *testing.T) {
	const points = 300
	st, err := New(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	single := xmldb.New()
	rng := rand.New(rand.NewSource(2011))
	// Cluster the points over Europe so radii actually catch neighbours.
	for i := 0; i < points; i++ {
		p := geo.Point{
			Lat: 42 + rng.Float64()*18, // 42..60
			Lon: -5 + rng.Float64()*30, // -5..25
		}
		name := fmt.Sprintf("Hotel %d", i)
		if _, err := st.Insert("Hotels", hotelDoc(name), 0.5, &p); err != nil {
			t.Fatal(err)
		}
		if _, err := single.Insert("Hotels", hotelDoc(name), 0.5, &p); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 50; trial++ {
		center := geo.Point{Lat: 42 + rng.Float64()*18, Lon: -5 + rng.Float64()*30}
		// From sub-cell (50 km) to continent-straddling (1500 km) radii;
		// grid cells at the default precision are ~156 km.
		radius := 50_000 + rng.Float64()*1_450_000
		gotIDs := st.Near("Hotels", center, radius)
		wantIDs := single.Near("Hotels", center, radius)

		got := make([]string, len(gotIDs))
		for i, id := range gotIDs {
			got[i] = nameOf(t, st, id)
		}
		want := make([]string, len(wantIDs))
		for i, id := range wantIDs {
			want[i] = nameOf(t, single, id)
		}
		sortedGot := append([]string(nil), got...)
		sortedWant := append([]string(nil), want...)
		sort.Strings(sortedGot)
		sort.Strings(sortedWant)
		if len(sortedGot) != len(sortedWant) {
			t.Fatalf("trial %d: sharded Near found %d records, single store %d", trial, len(got), len(want))
		}
		for i := range sortedGot {
			if sortedGot[i] != sortedWant[i] {
				t.Fatalf("trial %d: result sets differ at %q vs %q", trial, sortedGot[i], sortedWant[i])
			}
		}
		// And the sharded merge must be nearest-first, like the single
		// store's spatial index.
		lastD := -1.0
		for _, id := range gotIDs {
			rec, _ := st.Get("Hotels", id)
			d := rec.Location.DistanceMeters(center)
			if d < lastD {
				t.Fatalf("trial %d: merged Near not sorted by distance (%f after %f)", trial, d, lastD)
			}
			if d > radius {
				t.Fatalf("trial %d: record %d at %.0f m outside radius %.0f m", trial, id, d, radius)
			}
			lastD = d
		}
	}
}

func TestQueryFanOutTopKOrdering(t *testing.T) {
	st, err := New(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct certainties so the global top-3 is unambiguous; spread
	// over far-apart locations so records land on several shards.
	locs := []geo.Point{
		{Lat: 52.52, Lon: 13.405}, {Lat: -1.29, Lon: 36.82},
		{Lat: 40.71, Lon: -74.0}, {Lat: 35.68, Lon: 139.69},
		{Lat: -33.87, Lon: 151.21}, {Lat: 55.75, Lon: 37.62},
	}
	for i := range locs {
		cf := uncertain.CF(0.3 + 0.1*float64(i))
		mustInsert(t, st, fmt.Sprintf("Hotel %d", i), &locs[i], cf)
	}
	if st.Balance()[0] == len(locs) {
		t.Fatal("test fixture degenerate: every record landed on shard 0")
	}
	res, err := st.Query("topk(3, for $x in //Hotels orderby score($x) return $x)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("topk(3) returned %d results", len(res))
	}
	for i, want := range []string{"Hotel 5", "Hotel 4", "Hotel 3"} {
		n, _ := res[i].Record.Doc.FirstChild("Hotel_Name")
		if n.TextContent() != want {
			t.Fatalf("rank %d = %q, want %q", i, n.TextContent(), want)
		}
	}
}

func TestStoreCollectionsUnion(t *testing.T) {
	st, err := New(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Force records onto both shards directly to get disjoint collection
	// sets per shard.
	if _, err := st.Shard(0).Insert("Hotels", hotelDoc("A"), 0.5, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Shard(1).Insert("Roads", pxml.Elem("RoadReport", pxml.ElemText("Place", "A2")), 0.5, nil); err != nil {
		t.Fatal(err)
	}
	got := st.Collections()
	if len(got) != 2 || got[0] != "Hotels" || got[1] != "Roads" {
		t.Fatalf("Collections = %v", got)
	}
}

func TestNewRejectsBadShapes(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Error("New(0) accepted")
	}
	if _, err := New(4, NewGridRouter(2)); err == nil {
		t.Error("router/store shard-count mismatch accepted")
	}
}
