package shard

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/extract"
	"repro/internal/geo"
	"repro/internal/integrate"
	"repro/internal/kb"
	"repro/internal/uncertain"
)

func hotelTemplate(name, city string, loc *geo.Point, source string) extract.Template {
	d := uncertain.NewDist()
	_ = d.Add("Positive", 0.9)
	_ = d.Add("Negative", 0.1)
	return extract.Template{
		Domain:    "tourism",
		RecordTag: "Hotel",
		Fields: map[string]extract.FieldValue{
			"Hotel_Name":    {Kind: kb.FieldText, Text: name, CF: 0.9},
			"City":          {Kind: kb.FieldText, Text: city, CF: 0.8},
			"User_Attitude": {Kind: kb.FieldAttitude, Dist: d, CF: 0.8},
		},
		Certainty: 0.5,
		Location:  loc,
		Source:    source,
		Extracted: time.Unix(1_300_000_000, 0),
	}
}

func TestIntegratorRoutesRepeatedReportsToOneLane(t *testing.T) {
	st, err := New(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewIntegrator(kb.New(), st)
	if err != nil {
		t.Fatal(err)
	}
	if in.Lanes() != 4 {
		t.Fatalf("Lanes = %d", in.Lanes())
	}
	berlin := geo.Point{Lat: 52.52, Lon: 13.405}

	// Three reports about the same hotel — two located, one not — must
	// all route to the same lane, so shard-local duplicate detection
	// sees them all... provided located and key-routed records agree.
	located := hotelTemplate("Axel Hotel", "Berlin", &berlin, "alice")
	lane := in.Route([]extract.Template{located})
	if got := in.Route([]extract.Template{hotelTemplate("Axel Hotel", "Berlin", &berlin, "bob")}); got != lane {
		t.Fatalf("second located report routed to lane %d, first to %d", got, lane)
	}

	res := in.IntegrateGroups(lane, [][]extract.Template{
		{located},
		{hotelTemplate("Axel Hotel", "Berlin", &berlin, "bob")},
	})
	if res[0][0].Err != nil || res[1][0].Err != nil {
		t.Fatalf("integration errors: %v, %v", res[0][0].Err, res[1][0].Err)
	}
	if res[0][0].Result.Action != integrate.ActionInserted {
		t.Fatalf("first report: %v", res[0][0].Result.Action)
	}
	if res[1][0].Result.Action != integrate.ActionMerged {
		t.Fatalf("second report should merge, got %v", res[1][0].Result.Action)
	}
	if got := st.Len("Hotels"); got != 1 {
		t.Fatalf("store has %d hotels, want 1 merged record", got)
	}
}

func TestIntegratorLanesAreIndependentStores(t *testing.T) {
	st, err := New(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewIntegrator(kb.New(), st)
	if err != nil {
		t.Fatal(err)
	}
	// Far-apart cities spread over distinct lanes; each lane's shard
	// holds exactly the records routed to it.
	cities := []struct {
		name string
		p    geo.Point
	}{
		{"Berlin", geo.Point{Lat: 52.52, Lon: 13.405}},
		{"Nairobi", geo.Point{Lat: -1.29, Lon: 36.82}},
		{"Tokyo", geo.Point{Lat: 35.68, Lon: 139.69}},
		{"Sydney", geo.Point{Lat: -33.87, Lon: 151.21}},
		{"Moscow", geo.Point{Lat: 55.75, Lon: 37.62}},
		{"Lima", geo.Point{Lat: -12.05, Lon: -77.04}},
	}
	perLane := make(map[int]int)
	for i, c := range cities {
		tpl := hotelTemplate(fmt.Sprintf("Hotel %d", i), c.name, &c.p, "alice")
		lane := in.Route([]extract.Template{tpl})
		res := in.IntegrateGroups(lane, [][]extract.Template{{tpl}})
		if res[0][0].Err != nil {
			t.Fatal(res[0][0].Err)
		}
		perLane[lane]++
	}
	if len(perLane) < 2 {
		t.Fatalf("all %d far-apart cities routed to %d lane(s)", len(cities), len(perLane))
	}
	for lane, want := range perLane {
		if got := st.Shard(lane).Len("Hotels"); got != want {
			t.Fatalf("shard %d has %d records, lane integrated %d", lane, got, want)
		}
	}
	if got := st.Len("Hotels"); got != len(cities) {
		t.Fatalf("store total = %d, want %d", got, len(cities))
	}
}

// TestDirectInsertAgreesWithLaneRouting pins the placement contract
// between the two write paths for location-less records: a document
// inserted through the exported Store.Insert must land on the same
// shard that Integrator.Route sends the corresponding template to, so
// lane-local duplicate detection finds pre-loaded records.
func TestDirectInsertAgreesWithLaneRouting(t *testing.T) {
	st, err := New(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewIntegrator(kb.New(), st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("Paragon Villa Hotel %d", i)
		tpl := hotelTemplate(name, "", nil, "alice")
		doc, err := tpl.ToDoc()
		if err != nil {
			t.Fatal(err)
		}
		rec, err := st.Insert("Hotels", doc, 0.5, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := st.ShardFor(rec.ID), in.Route([]extract.Template{tpl}); got != want {
			t.Fatalf("%q: direct insert placed on shard %d, lanes route to %d", name, got, want)
		}
	}
}
