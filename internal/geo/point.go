// Package geo provides the spatial substrate for the neogeography system:
// geographic points, bounding boxes, great-circle distance, geohashing, an
// R-tree spatial index with range and k-nearest-neighbour search, spatial
// joins, and fuzzy regions used to ground vague spatial relations such as
// "north of" or "in the vicinity of".
//
// All coordinates are WGS84 degrees: latitude in [-90, 90], longitude in
// [-180, 180]. Distances are metres unless stated otherwise.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used for great-circle math.
const EarthRadiusMeters = 6371008.8

// Point is a geographic coordinate in WGS84 degrees.
type Point struct {
	Lat float64 // latitude, degrees north
	Lon float64 // longitude, degrees east
}

// NewPoint returns a Point after validating coordinate ranges.
func NewPoint(lat, lon float64) (Point, error) {
	p := Point{Lat: lat, Lon: lon}
	if err := p.Validate(); err != nil {
		return Point{}, err
	}
	return p, nil
}

// Validate reports whether the point's coordinates are in range.
func (p Point) Validate() error {
	if math.IsNaN(p.Lat) || math.IsNaN(p.Lon) {
		return fmt.Errorf("geo: point has NaN coordinate (%v, %v)", p.Lat, p.Lon)
	}
	if p.Lat < -90 || p.Lat > 90 {
		return fmt.Errorf("geo: latitude %v out of range [-90, 90]", p.Lat)
	}
	if p.Lon < -180 || p.Lon > 180 {
		return fmt.Errorf("geo: longitude %v out of range [-180, 180]", p.Lon)
	}
	return nil
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.5f, %.5f)", p.Lat, p.Lon)
}

// Equal reports whether two points are identical to within eps degrees.
func (p Point) Equal(q Point, eps float64) bool {
	return math.Abs(p.Lat-q.Lat) <= eps && math.Abs(p.Lon-q.Lon) <= eps
}

func deg2rad(d float64) float64 { return d * math.Pi / 180 }
func rad2deg(r float64) float64 { return r * 180 / math.Pi }

// DistanceMeters returns the haversine great-circle distance between p and q.
func (p Point) DistanceMeters(q Point) float64 {
	lat1, lon1 := deg2rad(p.Lat), deg2rad(p.Lon)
	lat2, lon2 := deg2rad(q.Lat), deg2rad(q.Lon)
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	a := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if a > 1 {
		a = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(a))
}

// BearingDegrees returns the initial great-circle bearing from p to q, in
// degrees clockwise from north, normalised to [0, 360).
func (p Point) BearingDegrees(q Point) float64 {
	lat1, lon1 := deg2rad(p.Lat), deg2rad(p.Lon)
	lat2, lon2 := deg2rad(q.Lat), deg2rad(q.Lon)
	dLon := lon2 - lon1
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	b := rad2deg(math.Atan2(y, x))
	return math.Mod(b+360, 360)
}

// Destination returns the point reached by travelling distanceMeters from p
// along the given initial bearing (degrees clockwise from north).
func (p Point) Destination(bearingDeg, distanceMeters float64) Point {
	lat1, lon1 := deg2rad(p.Lat), deg2rad(p.Lon)
	brg := deg2rad(bearingDeg)
	d := distanceMeters / EarthRadiusMeters
	lat2 := math.Asin(math.Sin(lat1)*math.Cos(d) + math.Cos(lat1)*math.Sin(d)*math.Cos(brg))
	lon2 := lon1 + math.Atan2(
		math.Sin(brg)*math.Sin(d)*math.Cos(lat1),
		math.Cos(d)-math.Sin(lat1)*math.Sin(lat2),
	)
	lon2 = math.Mod(lon2+3*math.Pi, 2*math.Pi) - math.Pi
	return Point{Lat: rad2deg(lat2), Lon: rad2deg(lon2)}
}

// Midpoint returns the great-circle midpoint of p and q.
func (p Point) Midpoint(q Point) Point {
	lat1, lon1 := deg2rad(p.Lat), deg2rad(p.Lon)
	lat2, lon2 := deg2rad(q.Lat), deg2rad(q.Lon)
	dLon := lon2 - lon1
	bx := math.Cos(lat2) * math.Cos(dLon)
	by := math.Cos(lat2) * math.Sin(dLon)
	lat3 := math.Atan2(
		math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by),
	)
	lon3 := lon1 + math.Atan2(by, math.Cos(lat1)+bx)
	lon3 = math.Mod(lon3+3*math.Pi, 2*math.Pi) - math.Pi
	return Point{Lat: rad2deg(lat3), Lon: rad2deg(lon3)}
}

// CardinalDirection names the compass octant of the bearing from p to q,
// e.g. "north", "northeast". It is used when generating natural-language
// answers that involve relative directions.
func CardinalDirection(bearingDeg float64) string {
	names := []string{"north", "northeast", "east", "southeast", "south", "southwest", "west", "northwest"}
	idx := int(math.Mod(bearingDeg+22.5, 360) / 45)
	if idx < 0 || idx >= len(names) {
		idx = 0
	}
	return names[idx]
}

// BearingForDirection maps a cardinal-direction word to a bearing in degrees.
// Recognised inputs include abbreviations ("ne", "sw") and full names.
// The second return value reports whether the word was recognised.
func BearingForDirection(word string) (float64, bool) {
	switch word {
	case "north", "n":
		return 0, true
	case "northeast", "north-east", "ne":
		return 45, true
	case "east", "e":
		return 90, true
	case "southeast", "south-east", "se":
		return 135, true
	case "south", "s":
		return 180, true
	case "southwest", "south-west", "sw":
		return 225, true
	case "west", "w":
		return 270, true
	case "northwest", "north-west", "nw":
		return 315, true
	}
	return 0, false
}
