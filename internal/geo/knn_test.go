package geo

import (
	"math/rand"
	"sort"
	"testing"
)

func TestNearestMatchesLinearScan(t *testing.T) {
	pts := randomPoints(1500, 21)
	tr := NewRTree[int]()
	for i, p := range pts {
		if err := tr.Insert(BBoxOf(p), i); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(31))
	for q := 0; q < 25; q++ {
		origin := Point{Lat: rng.Float64()*170 - 85, Lon: rng.Float64()*360 - 180}
		k := 1 + rng.Intn(20)
		got := tr.Nearest(origin, k)
		if len(got) != k {
			t.Fatalf("Nearest returned %d, want %d", len(got), k)
		}
		// Linear-scan reference.
		type distIdx struct {
			d float64
			i int
		}
		ref := make([]distIdx, len(pts))
		for i, p := range pts {
			ref[i] = distIdx{origin.DistanceMeters(p), i}
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i].d < ref[j].d })
		for i := 0; i < k; i++ {
			// Compare distances (values may differ under exact ties).
			if diff := got[i].DistanceMeters - ref[i].d; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("k=%d rank %d: distance %v, want %v", k, i, got[i].DistanceMeters, ref[i].d)
			}
		}
		// Results must be sorted by distance.
		for i := 1; i < len(got); i++ {
			if got[i].DistanceMeters < got[i-1].DistanceMeters {
				t.Fatalf("Nearest results unsorted at %d", i)
			}
		}
	}
}

func TestNearestEdgeCases(t *testing.T) {
	tr := NewRTree[int]()
	if got := tr.Nearest(berlin, 5); got != nil {
		t.Errorf("empty tree Nearest = %v", got)
	}
	if err := tr.Insert(BBoxOf(paris), 1); err != nil {
		t.Fatal(err)
	}
	if got := tr.Nearest(berlin, 0); got != nil {
		t.Errorf("k=0 Nearest = %v", got)
	}
	got := tr.Nearest(berlin, 10)
	if len(got) != 1 || got[0].Value != 1 {
		t.Errorf("k greater than size: %v", got)
	}
}

func TestWithinRadius(t *testing.T) {
	tr := NewRTree[string]()
	cities := map[string]Point{
		"berlin":   berlin,
		"paris":    paris,
		"enschede": enschede,
		"sydney":   sydney,
	}
	for name, p := range cities {
		if err := tr.Insert(BBoxOf(p), name); err != nil {
			t.Fatal(err)
		}
	}
	// 1000 km around Berlin covers Paris (~878 km) and Enschede (~445 km).
	got := tr.Within(berlin, 1000000)
	names := make([]string, len(got))
	for i, n := range got {
		names[i] = n.Value
	}
	if len(names) != 3 || names[0] != "berlin" || names[1] != "enschede" || names[2] != "paris" {
		t.Errorf("Within 1000km of Berlin = %v, want [berlin enschede paris] by distance", names)
	}
	// 100 km finds only Berlin itself.
	got = tr.Within(berlin, 100000)
	if len(got) != 1 || got[0].Value != "berlin" {
		t.Errorf("Within 100km = %v", got)
	}
}

func TestWithinMatchesLinearScan(t *testing.T) {
	pts := randomPoints(800, 55)
	tr := NewRTree[int]()
	for i, p := range pts {
		if err := tr.Insert(BBoxOf(p), i); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(66))
	for q := 0; q < 20; q++ {
		origin := Point{Lat: rng.Float64()*140 - 70, Lon: rng.Float64()*340 - 170}
		radius := 100000 + rng.Float64()*2000000
		got := tr.Within(origin, radius)
		gotSet := make(map[int]bool, len(got))
		for _, n := range got {
			gotSet[n.Value] = true
		}
		for i, p := range pts {
			in := origin.DistanceMeters(p) <= radius
			if in != gotSet[i] {
				t.Fatalf("Within(%v, %.0f): point %d in=%v indexed=%v", origin, radius, i, in, gotSet[i])
			}
		}
	}
}

func TestDistanceJoin(t *testing.T) {
	hotels := NewRTree[string]()
	stations := NewRTree[string]()
	if err := hotels.Insert(BBoxOf(berlin), "hotel-berlin"); err != nil {
		t.Fatal(err)
	}
	if err := hotels.Insert(BBoxOf(sydney), "hotel-sydney"); err != nil {
		t.Fatal(err)
	}
	nearBerlin := berlin.Destination(90, 3000)
	if err := stations.Insert(BBoxOf(nearBerlin), "station-east"); err != nil {
		t.Fatal(err)
	}
	if err := stations.Insert(BBoxOf(paris), "station-paris"); err != nil {
		t.Fatal(err)
	}
	pairs := DistanceJoin(hotels, stations, 5000)
	if len(pairs) != 1 {
		t.Fatalf("DistanceJoin = %v, want 1 pair", pairs)
	}
	if pairs[0].Left != "hotel-berlin" || pairs[0].Right != "station-east" {
		t.Errorf("wrong pair: %+v", pairs[0])
	}
	if pairs[0].DistanceMeters > 5000 {
		t.Errorf("pair distance %v exceeds limit", pairs[0].DistanceMeters)
	}
}

func TestIntersectJoin(t *testing.T) {
	left := NewRTree[string]()
	right := NewRTree[string]()
	if err := left.Insert(NewBBox(Point{0, 0}, Point{10, 10}), "a"); err != nil {
		t.Fatal(err)
	}
	if err := left.Insert(NewBBox(Point{50, 50}, Point{60, 60}), "b"); err != nil {
		t.Fatal(err)
	}
	if err := right.Insert(NewBBox(Point{5, 5}, Point{15, 15}), "x"); err != nil {
		t.Fatal(err)
	}
	if err := right.Insert(NewBBox(Point{-20, -20}, Point{-10, -10}), "y"); err != nil {
		t.Fatal(err)
	}
	pairs := IntersectJoin(left, right)
	if len(pairs) != 1 || pairs[0].Left != "a" || pairs[0].Right != "x" {
		t.Errorf("IntersectJoin = %v", pairs)
	}
}

func TestNearestAfterDeletes(t *testing.T) {
	pts := randomPoints(300, 88)
	tr := NewRTree[int]()
	for i, p := range pts {
		if err := tr.Insert(BBoxOf(p), i); err != nil {
			t.Fatal(err)
		}
	}
	// Remove the true nearest to Berlin, re-query, and confirm the runner-up
	// wins.
	first := tr.Nearest(berlin, 2)
	if len(first) != 2 {
		t.Fatal("need two neighbours")
	}
	if !tr.Delete(BBoxOf(pts[first[0].Value]), first[0].Value) {
		t.Fatal("delete nearest failed")
	}
	second := tr.Nearest(berlin, 1)
	if len(second) != 1 || second[0].Value != first[1].Value {
		t.Errorf("after delete nearest = %v, want %v", second, first[1].Value)
	}
}
