package geo

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// randomPoints returns n deterministic pseudo-random points.
func randomPoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{Lat: rng.Float64()*170 - 85, Lon: rng.Float64()*360 - 180}
	}
	return pts
}

func TestRTreeInsertSearchBasic(t *testing.T) {
	tr := NewRTree[int]()
	pts := []Point{{52, 13}, {48, 2}, {40, -74}, {-33, 151}}
	for i, p := range pts {
		if err := tr.Insert(BBoxOf(p), i); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	got := tr.Search(NewBBox(Point{45, 0}, Point{55, 20}), nil)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Search Europe = %v, want [0 1]", got)
	}
	if got := tr.Search(NewBBox(Point{-10, -10}, Point{-5, -5}), nil); len(got) != 0 {
		t.Errorf("empty region returned %v", got)
	}
}

func TestRTreeInvalidFanout(t *testing.T) {
	for _, c := range []struct{ min, max int }{{1, 10}, {6, 10}, {2, 3}, {0, 0}} {
		if _, err := NewRTreeWithFanout[int](c.min, c.max); err == nil {
			t.Errorf("fanout (%d,%d) accepted", c.min, c.max)
		}
	}
}

func TestRTreeInsertEmptyBox(t *testing.T) {
	tr := NewRTree[int]()
	if err := tr.Insert(EmptyBBox(), 1); err == nil {
		t.Error("empty box insert accepted")
	}
	bad := BBox{MinLat: -95, MinLon: 0, MaxLat: 0, MaxLon: 0}
	if err := tr.Insert(bad, 1); err == nil {
		t.Error("invalid box insert accepted")
	}
}

func TestRTreeMatchesLinearScan(t *testing.T) {
	pts := randomPoints(2000, 42)
	tr := NewRTree[int]()
	for i, p := range pts {
		if err := tr.Insert(BBoxOf(p), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after insert: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	for q := 0; q < 50; q++ {
		a := Point{Lat: rng.Float64()*170 - 85, Lon: rng.Float64()*360 - 180}
		b := Point{Lat: a.Lat + rng.Float64()*30, Lon: a.Lon + rng.Float64()*60}
		if b.Lat > 90 {
			b.Lat = 90
		}
		if b.Lon > 180 {
			b.Lon = 180
		}
		query := NewBBox(a, b)
		got := tr.Search(query, nil)
		sort.Ints(got)
		var want []int
		for i, p := range pts {
			if query.Contains(p) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d results, want %d", query, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %v: result mismatch at %d: %d vs %d", query, i, got[i], want[i])
			}
		}
	}
}

func TestRTreeDelete(t *testing.T) {
	pts := randomPoints(500, 9)
	tr := NewRTree[int]()
	for i, p := range pts {
		if err := tr.Insert(BBoxOf(p), i); err != nil {
			t.Fatal(err)
		}
	}
	// Delete every even-indexed point.
	for i := 0; i < len(pts); i += 2 {
		if !tr.Delete(BBoxOf(pts[i]), i) {
			t.Fatalf("Delete(%d) not found", i)
		}
	}
	if tr.Len() != 250 {
		t.Fatalf("Len after delete = %d, want 250", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after delete: %v", err)
	}
	// Deleted points must be gone; remaining must be findable.
	for i, p := range pts {
		got := tr.Search(BBoxOf(p), nil)
		found := false
		for _, v := range got {
			if v == i {
				found = true
			}
		}
		if i%2 == 0 && found {
			t.Errorf("deleted %d still present", i)
		}
		if i%2 == 1 && !found {
			t.Errorf("surviving %d missing", i)
		}
	}
	// Double delete fails.
	if tr.Delete(BBoxOf(pts[0]), 0) {
		t.Error("second delete of same entry succeeded")
	}
}

func TestRTreeDeleteAll(t *testing.T) {
	pts := randomPoints(200, 3)
	tr := NewRTree[int]()
	for i, p := range pts {
		if err := tr.Insert(BBoxOf(p), i); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range pts {
		if !tr.Delete(BBoxOf(p), i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if got := tr.Search(NewBBox(Point{-90, -180}, Point{90, 180}), nil); len(got) != 0 {
		t.Errorf("empty tree returned %v", got)
	}
	// Tree must be reusable.
	if err := tr.Insert(BBoxOf(pts[0]), 99); err != nil {
		t.Fatal(err)
	}
	if got := tr.Search(BBoxOf(pts[0]), nil); len(got) != 1 || got[0] != 99 {
		t.Errorf("reuse after drain: %v", got)
	}
}

func TestRTreeDuplicatePoints(t *testing.T) {
	tr := NewRTree[int]()
	p := Point{52, 13}
	for i := 0; i < 100; i++ {
		if err := tr.Insert(BBoxOf(p), i); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.Search(BBoxOf(p), nil)
	if len(got) != 100 {
		t.Fatalf("got %d duplicates, want 100", len(got))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants with duplicates: %v", err)
	}
}

func TestRTreeRectEntries(t *testing.T) {
	// Non-point boxes (regions) must also index correctly.
	tr := NewRTree[string]()
	regions := map[string]BBox{
		"germany": NewBBox(Point{47.3, 5.9}, Point{55.1, 15.0}),
		"france":  NewBBox(Point{41.3, -5.1}, Point{51.1, 9.6}),
		"egypt":   NewBBox(Point{22.0, 24.7}, Point{31.7, 36.9}),
	}
	for name, b := range regions {
		if err := tr.Insert(b, name); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.Search(BBoxOf(berlin), nil)
	if len(got) != 1 || got[0] != "germany" {
		t.Errorf("point-in-region search = %v, want [germany]", got)
	}
	// Berlin-to-Paris corridor intersects both Germany and France.
	got = tr.Search(NewBBox(berlin, paris), nil)
	sort.Strings(got)
	if len(got) != 2 || got[0] != "france" || got[1] != "germany" {
		t.Errorf("corridor search = %v", got)
	}
}

func TestRTreeSearchFuncEarlyStop(t *testing.T) {
	tr := NewRTree[int]()
	for i, p := range randomPoints(100, 5) {
		if err := tr.Insert(BBoxOf(p), i); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	tr.SearchFunc(tr.Bounds(), func(BBox, int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop visited %d, want 10", count)
	}
}

func TestRTreeFanoutSweepInvariants(t *testing.T) {
	pts := randomPoints(800, 11)
	for _, fan := range []struct{ min, max int }{{2, 4}, {2, 8}, {4, 16}, {8, 32}, {16, 64}} {
		tr, err := NewRTreeWithFanout[int](fan.min, fan.max)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pts {
			if err := tr.Insert(BBoxOf(p), i); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Errorf("fanout (%d,%d): %v", fan.min, fan.max, err)
		}
		if got := len(tr.Search(tr.Bounds(), nil)); got != len(pts) {
			t.Errorf("fanout (%d,%d): full search returned %d of %d", fan.min, fan.max, got, len(pts))
		}
	}
}

func TestRTreeQuickSearchEquivalence(t *testing.T) {
	// Property: for random point sets and queries, R-tree search equals a
	// linear scan.
	type input struct {
		Seed  int64
		QLat  float64
		QLon  float64
		QSpan float64
	}
	f := func(in input) bool {
		pts := randomPoints(150, in.Seed)
		tr := NewRTree[int]()
		for i, p := range pts {
			if err := tr.Insert(BBoxOf(p), i); err != nil {
				return false
			}
		}
		c := clampPoint(in.QLat, in.QLon)
		span := in.QSpan
		if span < 0 {
			span = -span
		}
		span = 1 + span
		for span > 60 {
			span /= 10
		}
		q := NewBBox(c, clampPoint(c.Lat+span, c.Lon+span))
		got := tr.Search(q, nil)
		sort.Ints(got)
		var want []int
		for i, p := range pts {
			if q.Contains(p) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRTreeDepthGrowth(t *testing.T) {
	tr := NewRTree[int]()
	if d := tr.Depth(); d != 1 {
		t.Errorf("empty depth = %d", d)
	}
	for i, p := range randomPoints(5000, 77) {
		if err := tr.Insert(BBoxOf(p), i); err != nil {
			t.Fatal(err)
		}
	}
	if d := tr.Depth(); d < 3 {
		t.Errorf("depth after 5000 inserts = %d, want >= 3", d)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
