package geo

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeGeohashKnown(t *testing.T) {
	// Reference value widely used in geohash documentation.
	p := Point{Lat: 57.64911, Lon: 10.40744}
	if got := EncodeGeohash(p, 11); got != "u4pruydqqvj" {
		t.Errorf("EncodeGeohash = %q, want u4pruydqqvj", got)
	}
}

func TestGeohashRoundTrip(t *testing.T) {
	f := func(lat, lon float64) bool {
		p := clampPoint(lat, lon)
		h := EncodeGeohash(p, 9)
		box, err := DecodeGeohash(h)
		if err != nil {
			return false
		}
		return box.Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGeohashPrefixProperty(t *testing.T) {
	// A longer hash's cell must be contained in every prefix's cell.
	h := EncodeGeohash(berlin, 10)
	inner, err := DecodeGeohash(h)
	if err != nil {
		t.Fatal(err)
	}
	for l := 1; l < 10; l++ {
		outer, err := DecodeGeohash(h[:l])
		if err != nil {
			t.Fatal(err)
		}
		if !outer.ContainsBBox(inner) {
			t.Errorf("prefix %q cell does not contain full cell", h[:l])
		}
	}
}

func TestDecodeGeohashErrors(t *testing.T) {
	if _, err := DecodeGeohash(""); err == nil {
		t.Error("empty hash accepted")
	}
	if _, err := DecodeGeohash("ab!c"); err == nil {
		t.Error("invalid character accepted")
	}
	// 'a' is not in the geohash alphabet.
	if _, err := DecodeGeohash("aaa"); err == nil {
		t.Error("letter a accepted")
	}
}

func TestDecodeGeohashCaseInsensitive(t *testing.T) {
	lo, err := DecodeGeohash("u4pruy")
	if err != nil {
		t.Fatal(err)
	}
	hi, err := DecodeGeohash("U4PRUY")
	if err != nil {
		t.Fatal(err)
	}
	if lo != hi {
		t.Errorf("case sensitivity: %v vs %v", lo, hi)
	}
}

func TestGeohashPrecisionClamping(t *testing.T) {
	if got := EncodeGeohash(berlin, 0); len(got) != 1 {
		t.Errorf("precision 0 gave %q", got)
	}
	if got := EncodeGeohash(berlin, 99); len(got) != 12 {
		t.Errorf("precision 99 gave length %d", len(got))
	}
}

func TestGeohashNeighbors(t *testing.T) {
	ns, err := GeohashNeighbors("u33db2") // a cell over Berlin
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 8 {
		t.Fatalf("got %d neighbours, want 8: %v", len(ns), ns)
	}
	for _, n := range ns {
		if n == "u33db2" {
			t.Error("neighbours include the centre cell")
		}
		if len(n) != 6 {
			t.Errorf("neighbour %q has wrong precision", n)
		}
	}
}

func TestGeohashCenter(t *testing.T) {
	h := EncodeGeohash(berlin, 8)
	c, err := GeohashCenter(h)
	if err != nil {
		t.Fatal(err)
	}
	if c.DistanceMeters(berlin) > 100 {
		t.Errorf("centre %v too far from original %v", c, berlin)
	}
}

func TestGeohashPrecisionForRadius(t *testing.T) {
	cases := []struct {
		radius float64
		min    int
	}{
		{10000000, 1}, {100000, 3}, {1000, 6}, {1, 10},
	}
	for _, c := range cases {
		p := GeohashPrecisionForRadius(c.radius)
		if p < 1 || p > 12 {
			t.Errorf("precision %d out of range", p)
		}
		if p < c.min {
			t.Errorf("GeohashPrecisionForRadius(%v) = %d, want >= %d", c.radius, p, c.min)
		}
	}
	if GeohashPrecisionForRadius(0.000001) != 12 {
		t.Error("tiny radius should give max precision")
	}
}

func TestGeohashAlphabet(t *testing.T) {
	h := EncodeGeohash(sydney, 12)
	for i := 0; i < len(h); i++ {
		if !strings.ContainsRune(geohashBase32, rune(h[i])) {
			t.Errorf("hash %q contains non-alphabet character %q", h, h[i])
		}
	}
}

func TestGeohashCellShrinks(t *testing.T) {
	prev := math.Inf(1)
	for prec := 1; prec <= 12; prec++ {
		h := EncodeGeohash(berlin, prec)
		box, err := DecodeGeohash(h)
		if err != nil {
			t.Fatal(err)
		}
		if a := box.Area(); a >= prev {
			t.Errorf("precision %d cell area %v did not shrink from %v", prec, a, prev)
		} else {
			prev = a
		}
	}
}
