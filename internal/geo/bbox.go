package geo

import (
	"fmt"
	"math"
)

// BBox is an axis-aligned geographic bounding box. MinLat <= MaxLat and
// MinLon <= MaxLon always hold for boxes produced by this package; boxes
// crossing the antimeridian are not supported and must be split by the
// caller (the synthetic gazetteer never produces them).
type BBox struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// NewBBox returns the bounding box spanning the two corner points in any
// order.
func NewBBox(a, b Point) BBox {
	return BBox{
		MinLat: math.Min(a.Lat, b.Lat),
		MinLon: math.Min(a.Lon, b.Lon),
		MaxLat: math.Max(a.Lat, b.Lat),
		MaxLon: math.Max(a.Lon, b.Lon),
	}
}

// BBoxOf returns the degenerate box containing a single point.
func BBoxOf(p Point) BBox {
	return BBox{MinLat: p.Lat, MinLon: p.Lon, MaxLat: p.Lat, MaxLon: p.Lon}
}

// EmptyBBox returns an inverted box that acts as the identity for Union.
func EmptyBBox() BBox {
	return BBox{
		MinLat: math.Inf(1), MinLon: math.Inf(1),
		MaxLat: math.Inf(-1), MaxLon: math.Inf(-1),
	}
}

// IsEmpty reports whether the box contains no points.
func (b BBox) IsEmpty() bool {
	return b.MinLat > b.MaxLat || b.MinLon > b.MaxLon
}

// Validate reports whether the box corners are in coordinate range.
func (b BBox) Validate() error {
	if b.IsEmpty() {
		return nil
	}
	for _, p := range []Point{{b.MinLat, b.MinLon}, {b.MaxLat, b.MaxLon}} {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("geo: invalid bbox corner: %w", err)
		}
	}
	return nil
}

// String implements fmt.Stringer.
func (b BBox) String() string {
	return fmt.Sprintf("[%.5f,%.5f — %.5f,%.5f]", b.MinLat, b.MinLon, b.MaxLat, b.MaxLon)
}

// Contains reports whether the point lies inside or on the boundary.
func (b BBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// ContainsBBox reports whether o lies fully inside b.
func (b BBox) ContainsBBox(o BBox) bool {
	if o.IsEmpty() {
		return true
	}
	return o.MinLat >= b.MinLat && o.MaxLat <= b.MaxLat &&
		o.MinLon >= b.MinLon && o.MaxLon <= b.MaxLon
}

// Intersects reports whether the two boxes share any point.
func (b BBox) Intersects(o BBox) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	return b.MinLat <= o.MaxLat && b.MaxLat >= o.MinLat &&
		b.MinLon <= o.MaxLon && b.MaxLon >= o.MinLon
}

// Union returns the smallest box containing both b and o.
func (b BBox) Union(o BBox) BBox {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return BBox{
		MinLat: math.Min(b.MinLat, o.MinLat),
		MinLon: math.Min(b.MinLon, o.MinLon),
		MaxLat: math.Max(b.MaxLat, o.MaxLat),
		MaxLon: math.Max(b.MaxLon, o.MaxLon),
	}
}

// Extend returns the smallest box containing b and p.
func (b BBox) Extend(p Point) BBox {
	return b.Union(BBoxOf(p))
}

// Area returns the box area in square degrees. Degrees (not metres) are the
// right unit for R-tree split heuristics, where only relative areas matter.
func (b BBox) Area() float64 {
	if b.IsEmpty() {
		return 0
	}
	return (b.MaxLat - b.MinLat) * (b.MaxLon - b.MinLon)
}

// Margin returns half the box perimeter in degrees (used by R*-style splits).
func (b BBox) Margin() float64 {
	if b.IsEmpty() {
		return 0
	}
	return (b.MaxLat - b.MinLat) + (b.MaxLon - b.MinLon)
}

// Enlargement returns how much b's area grows if extended to cover o.
func (b BBox) Enlargement(o BBox) float64 {
	return b.Union(o).Area() - b.Area()
}

// IntersectionArea returns the overlap area of the two boxes in square
// degrees, zero if disjoint.
func (b BBox) IntersectionArea(o BBox) float64 {
	if !b.Intersects(o) {
		return 0
	}
	h := math.Min(b.MaxLat, o.MaxLat) - math.Max(b.MinLat, o.MinLat)
	w := math.Min(b.MaxLon, o.MaxLon) - math.Max(b.MinLon, o.MinLon)
	return h * w
}

// Center returns the box centre point.
func (b BBox) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}

// MinDistanceMeters returns the minimum great-circle distance from p to any
// point in the box, which best-first kNN search relies on as an exact lower
// bound. When p's longitude falls inside the box's longitude span the
// nearest boundary point lies due north or south; otherwise it lies on one
// of the two meridian edges, at the latitude where the great circle from p
// meets that meridian perpendicularly (clamped into the edge's range).
func (b BBox) MinDistanceMeters(p Point) float64 {
	if b.IsEmpty() {
		return math.Inf(1)
	}
	if b.Contains(p) {
		return 0
	}
	if p.Lon >= b.MinLon && p.Lon <= b.MaxLon {
		var dLat float64
		switch {
		case p.Lat < b.MinLat:
			dLat = b.MinLat - p.Lat
		case p.Lat > b.MaxLat:
			dLat = p.Lat - b.MaxLat
		}
		return deg2rad(dLat) * EarthRadiusMeters
	}
	left := distToMeridianEdge(p, b.MinLon, b.MinLat, b.MaxLat)
	right := distToMeridianEdge(p, b.MaxLon, b.MinLat, b.MaxLat)
	return math.Min(left, right)
}

// distToMeridianEdge returns the minimum great-circle distance from p to the
// meridian segment at longitude lon between latMin and latMax. The foot of
// the perpendicular from p onto the full meridian has latitude
// atan2(tan(lat_p), cos(Δlon)); distance along the meridian grows
// monotonically away from that foot, so clamping it into the segment yields
// the true nearest point.
func distToMeridianEdge(p Point, lon, latMin, latMax float64) float64 {
	dLon := math.Mod(p.Lon-lon+540, 360) - 180
	foot := rad2deg(math.Atan2(math.Tan(deg2rad(p.Lat)), math.Cos(deg2rad(dLon))))
	// The distance to the meridian is monotone between critical latitudes,
	// so the segment minimum is at an in-range critical point or an
	// endpoint. Evaluate every candidate; the foot may fold past a pole
	// when |Δlon| > 90°, hence the ±180° counterparts.
	clamp := func(lat float64) float64 {
		return math.Max(latMin, math.Min(latMax, lat))
	}
	best := math.Inf(1)
	for _, lat := range [...]float64{clamp(foot), clamp(foot - 180), clamp(foot + 180), latMin, latMax} {
		if d := p.DistanceMeters(Point{Lat: lat, Lon: lon}); d < best {
			best = d
		}
	}
	return best
}

// BBoxAround returns a box that contains the circle of the given radius
// around centre. The box may be slightly larger than the circle (it pads the
// longitude span near the poles) but never smaller, so it is safe as a
// pre-filter for radius queries.
func BBoxAround(center Point, radiusMeters float64) BBox {
	if radiusMeters < 0 {
		radiusMeters = 0
	}
	// Pad slightly so floating-point rounding never excludes a point that
	// is exactly on the circle; this box is only ever a pre-filter.
	pad := radiusMeters*1e-7 + 1e-9*EarthRadiusMeters*math.Pi/180
	dLat := rad2deg((radiusMeters + pad) / EarthRadiusMeters)
	cos := math.Cos(deg2rad(center.Lat))
	var dLon float64
	if cos < 1e-9 {
		dLon = 180 // at the poles every longitude is within range
	} else {
		dLon = rad2deg((radiusMeters+pad)/EarthRadiusMeters) / cos
	}
	return BBox{
		MinLat: math.Max(-90, center.Lat-dLat),
		MinLon: math.Max(-180, center.Lon-dLon),
		MaxLat: math.Min(90, center.Lat+dLat),
		MaxLon: math.Min(180, center.Lon+dLon),
	}
}
