package geo

import (
	"fmt"
)

// RTree is an in-memory R-tree over values of comparable type T, using the
// quadratic split of Guttman's original design. It supports insertion,
// deletion, rectangle search, radius search and best-first k-nearest-
// neighbour search. It is the spatial index behind the probabilistic
// spatial XML database ("spatial databases support spatial data types …
// providing spatial indexing and spatial join methods", paper §Problem
// Statement).
//
// RTree is not safe for concurrent mutation; the xmldb layer serialises
// writers and allows concurrent readers under its own lock.
type RTree[T comparable] struct {
	root     *rtreeNode[T]
	minEntry int
	maxEntry int
	size     int
}

type rtreeEntry[T comparable] struct {
	box   BBox
	child *rtreeNode[T] // non-nil for internal entries
	value T             // set for leaf entries
}

type rtreeNode[T comparable] struct {
	leaf    bool
	entries []rtreeEntry[T]
}

// DefaultRTreeMax is the default maximum node fanout.
const DefaultRTreeMax = 16

// NewRTree returns an R-tree with the default fanout.
func NewRTree[T comparable]() *RTree[T] {
	t, err := NewRTreeWithFanout[T](DefaultRTreeMax/2, DefaultRTreeMax)
	if err != nil {
		panic(err) // defaults are always valid
	}
	return t
}

// NewRTreeWithFanout returns an R-tree with the given minimum and maximum
// entries per node. Requires 2 <= min <= max/2.
func NewRTreeWithFanout[T comparable](min, max int) (*RTree[T], error) {
	if min < 2 || max < 4 || min > max/2 {
		return nil, fmt.Errorf("geo: invalid rtree fanout min=%d max=%d (need 2 <= min <= max/2)", min, max)
	}
	return &RTree[T]{
		root:     &rtreeNode[T]{leaf: true},
		minEntry: min,
		maxEntry: max,
	}, nil
}

// Len returns the number of stored values.
func (t *RTree[T]) Len() int { return t.size }

// Bounds returns the bounding box of everything in the tree.
func (t *RTree[T]) Bounds() BBox {
	return nodeBBox(t.root)
}

func nodeBBox[T comparable](n *rtreeNode[T]) BBox {
	b := EmptyBBox()
	for i := range n.entries {
		b = b.Union(n.entries[i].box)
	}
	return b
}

// Insert adds a value with the given bounding box. Point data should use
// BBoxOf(p).
func (t *RTree[T]) Insert(box BBox, value T) error {
	if box.IsEmpty() {
		return fmt.Errorf("geo: cannot insert empty bbox")
	}
	if err := box.Validate(); err != nil {
		return err
	}
	t.insertEntry(rtreeEntry[T]{box: box, value: value})
	t.size++
	return nil
}

func (t *RTree[T]) insertEntry(e rtreeEntry[T]) {
	leafPath := t.chooseLeaf(e.box)
	leaf := leafPath[len(leafPath)-1]
	leaf.entries = append(leaf.entries, e)
	t.adjustPath(leafPath)
}

// chooseLeaf descends from the root picking the child whose box needs the
// least enlargement (ties by smallest area), returning the root-to-leaf path.
func (t *RTree[T]) chooseLeaf(box BBox) []*rtreeNode[T] {
	path := []*rtreeNode[T]{t.root}
	n := t.root
	for !n.leaf {
		bestIdx := 0
		bestEnl := box.Union(n.entries[0].box).Area() - n.entries[0].box.Area()
		bestArea := n.entries[0].box.Area()
		for i := 1; i < len(n.entries); i++ {
			enl := box.Union(n.entries[i].box).Area() - n.entries[i].box.Area()
			area := n.entries[i].box.Area()
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				bestIdx, bestEnl, bestArea = i, enl, area
			}
		}
		n = n.entries[bestIdx].child
		path = append(path, n)
	}
	return path
}

// adjustPath walks back up the path, tightening parent boxes and splitting
// overfull nodes.
func (t *RTree[T]) adjustPath(path []*rtreeNode[T]) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if len(n.entries) <= t.maxEntry {
			// Tighten the parent entry box.
			if i > 0 {
				t.refreshParentBox(path[i-1], n)
			}
			continue
		}
		left, right := t.splitNode(n)
		if i == 0 {
			// Grew the root.
			t.root = &rtreeNode[T]{
				leaf: false,
				entries: []rtreeEntry[T]{
					{box: nodeBBox(left), child: left},
					{box: nodeBBox(right), child: right},
				},
			}
			return
		}
		parent := path[i-1]
		// Replace the parent entry for n with the two split halves.
		for j := range parent.entries {
			if parent.entries[j].child == n {
				parent.entries[j] = rtreeEntry[T]{box: nodeBBox(left), child: left}
				break
			}
		}
		parent.entries = append(parent.entries, rtreeEntry[T]{box: nodeBBox(right), child: right})
	}
}

func (t *RTree[T]) refreshParentBox(parent, child *rtreeNode[T]) {
	for j := range parent.entries {
		if parent.entries[j].child == child {
			parent.entries[j].box = nodeBBox(child)
			return
		}
	}
}

// splitNode performs Guttman's quadratic split, distributing n's entries
// into two new nodes. n's entry slice is consumed.
func (t *RTree[T]) splitNode(n *rtreeNode[T]) (*rtreeNode[T], *rtreeNode[T]) {
	entries := n.entries
	// Pick the pair of seeds wasting the most area if grouped together.
	seedA, seedB := 0, 1
	worst := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			waste := entries[i].box.Union(entries[j].box).Area() -
				entries[i].box.Area() - entries[j].box.Area()
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}
	left := &rtreeNode[T]{leaf: n.leaf, entries: []rtreeEntry[T]{entries[seedA]}}
	right := &rtreeNode[T]{leaf: n.leaf, entries: []rtreeEntry[T]{entries[seedB]}}
	leftBox, rightBox := entries[seedA].box, entries[seedB].box

	rest := make([]rtreeEntry[T], 0, len(entries)-2)
	for i := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, entries[i])
		}
	}
	for len(rest) > 0 {
		// If one side must take everything remaining to reach minEntry, do so.
		if len(left.entries)+len(rest) == t.minEntry {
			left.entries = append(left.entries, rest...)
			for i := range rest {
				leftBox = leftBox.Union(rest[i].box)
			}
			break
		}
		if len(right.entries)+len(rest) == t.minEntry {
			right.entries = append(right.entries, rest...)
			for i := range rest {
				rightBox = rightBox.Union(rest[i].box)
			}
			break
		}
		// Pick the entry with the greatest preference difference.
		bestIdx, bestDiff := 0, -1.0
		for i := range rest {
			dLeft := leftBox.Enlargement(rest[i].box)
			dRight := rightBox.Enlargement(rest[i].box)
			diff := dLeft - dRight
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx = diff, i
			}
		}
		e := rest[bestIdx]
		rest[bestIdx] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		dLeft := leftBox.Enlargement(e.box)
		dRight := rightBox.Enlargement(e.box)
		toLeft := dLeft < dRight ||
			(dLeft == dRight && leftBox.Area() < rightBox.Area()) ||
			(dLeft == dRight && leftBox.Area() == rightBox.Area() && len(left.entries) <= len(right.entries))
		if toLeft {
			left.entries = append(left.entries, e)
			leftBox = leftBox.Union(e.box)
		} else {
			right.entries = append(right.entries, e)
			rightBox = rightBox.Union(e.box)
		}
	}
	return left, right
}

// Search appends to dst every value whose box intersects query, returning
// the extended slice. Results are in no particular order.
func (t *RTree[T]) Search(query BBox, dst []T) []T {
	return t.searchNode(t.root, query, dst)
}

func (t *RTree[T]) searchNode(n *rtreeNode[T], query BBox, dst []T) []T {
	for i := range n.entries {
		if !n.entries[i].box.Intersects(query) {
			continue
		}
		if n.leaf {
			dst = append(dst, n.entries[i].value)
		} else {
			dst = t.searchNode(n.entries[i].child, query, dst)
		}
	}
	return dst
}

// SearchFunc visits every (box, value) pair intersecting query until fn
// returns false.
func (t *RTree[T]) SearchFunc(query BBox, fn func(box BBox, value T) bool) {
	t.searchFuncNode(t.root, query, fn)
}

func (t *RTree[T]) searchFuncNode(n *rtreeNode[T], query BBox, fn func(BBox, T) bool) bool {
	for i := range n.entries {
		if !n.entries[i].box.Intersects(query) {
			continue
		}
		if n.leaf {
			if !fn(n.entries[i].box, n.entries[i].value) {
				return false
			}
		} else if !t.searchFuncNode(n.entries[i].child, query, fn) {
			return false
		}
	}
	return true
}

// Delete removes one occurrence of value stored under the exact box.
// It reports whether a matching entry was found. Underfull nodes are
// condensed by re-inserting their remaining entries, per Guttman.
func (t *RTree[T]) Delete(box BBox, value T) bool {
	var orphans []rtreeEntry[T]
	found := t.deleteFrom(t.root, box, value, &orphans)
	if !found {
		return false
	}
	t.size--
	// Shrink a root with a single internal child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &rtreeNode[T]{leaf: true}
	}
	for _, e := range orphans {
		if e.child != nil {
			t.reinsertSubtree(e.child)
		} else {
			t.insertEntry(e)
		}
	}
	return true
}

func (t *RTree[T]) reinsertSubtree(n *rtreeNode[T]) {
	if n.leaf {
		for _, e := range n.entries {
			t.insertEntry(e)
		}
		return
	}
	for _, e := range n.entries {
		t.reinsertSubtree(e.child)
	}
}

func (t *RTree[T]) deleteFrom(n *rtreeNode[T], box BBox, value T, orphans *[]rtreeEntry[T]) bool {
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].value == value && n.entries[i].box == box {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return true
			}
		}
		return false
	}
	for i := range n.entries {
		if !n.entries[i].box.ContainsBBox(box) && !n.entries[i].box.Intersects(box) {
			continue
		}
		child := n.entries[i].child
		if t.deleteFrom(child, box, value, orphans) {
			if len(child.entries) < t.minEntry {
				// Condense: orphan the whole child for re-insertion.
				*orphans = append(*orphans, child.entries...)
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
			} else {
				n.entries[i].box = nodeBBox(child)
			}
			return true
		}
	}
	return false
}

// depth returns the tree height (leaf = 1); used by invariant tests.
func (t *RTree[T]) depth() int {
	d := 1
	n := t.root
	for !n.leaf {
		d++
		if len(n.entries) == 0 {
			break
		}
		n = n.entries[0].child
	}
	return d
}

// checkInvariants validates structural invariants and returns the first
// violation found: entry counts within [min, max] (root excepted), parent
// boxes covering children, and uniform leaf depth. Exposed to tests via
// export_test.go.
func (t *RTree[T]) checkInvariants() error {
	leafDepth := -1
	var walk func(n *rtreeNode[T], depth int, isRoot bool) error
	walk = func(n *rtreeNode[T], depth int, isRoot bool) error {
		if !isRoot && (len(n.entries) < t.minEntry || len(n.entries) > t.maxEntry) {
			return fmt.Errorf("node at depth %d has %d entries, want [%d,%d]", depth, len(n.entries), t.minEntry, t.maxEntry)
		}
		if len(n.entries) > t.maxEntry {
			return fmt.Errorf("root has %d entries, want <= %d", len(n.entries), t.maxEntry)
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("leaves at depths %d and %d", leafDepth, depth)
			}
			return nil
		}
		for i := range n.entries {
			child := n.entries[i].child
			if child == nil {
				return fmt.Errorf("internal entry %d at depth %d has nil child", i, depth)
			}
			cb := nodeBBox(child)
			if !n.entries[i].box.ContainsBBox(cb) {
				return fmt.Errorf("parent box %v does not cover child %v", n.entries[i].box, cb)
			}
			if err := walk(child, depth+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, 0, true)
}
