package geo

import (
	"fmt"
	"strings"
)

// geohashBase32 is the standard geohash alphabet (no a, i, l, o).
const geohashBase32 = "0123456789bcdefghjkmnpqrstuvwxyz"

var geohashDecode = func() map[byte]int {
	m := make(map[byte]int, len(geohashBase32))
	for i := 0; i < len(geohashBase32); i++ {
		m[geohashBase32[i]] = i
	}
	return m
}()

// EncodeGeohash returns the geohash of p at the given precision (number of
// base-32 characters, 1..12). Geohashes are used as coarse spatial keys for
// duplicate detection in the data-integration service.
func EncodeGeohash(p Point, precision int) string {
	if precision < 1 {
		precision = 1
	}
	if precision > 12 {
		precision = 12
	}
	latMin, latMax := -90.0, 90.0
	lonMin, lonMax := -180.0, 180.0
	var sb strings.Builder
	sb.Grow(precision)
	bit := 0
	ch := 0
	even := true // even bits encode longitude
	for sb.Len() < precision {
		if even {
			mid := (lonMin + lonMax) / 2
			if p.Lon >= mid {
				ch = ch<<1 | 1
				lonMin = mid
			} else {
				ch <<= 1
				lonMax = mid
			}
		} else {
			mid := (latMin + latMax) / 2
			if p.Lat >= mid {
				ch = ch<<1 | 1
				latMin = mid
			} else {
				ch <<= 1
				latMax = mid
			}
		}
		even = !even
		bit++
		if bit == 5 {
			sb.WriteByte(geohashBase32[ch])
			bit, ch = 0, 0
		}
	}
	return sb.String()
}

// DecodeGeohash returns the bounding box a geohash denotes.
func DecodeGeohash(hash string) (BBox, error) {
	if hash == "" {
		return BBox{}, fmt.Errorf("geo: empty geohash")
	}
	latMin, latMax := -90.0, 90.0
	lonMin, lonMax := -180.0, 180.0
	even := true
	for i := 0; i < len(hash); i++ {
		c := hash[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		v, ok := geohashDecode[c]
		if !ok {
			return BBox{}, fmt.Errorf("geo: invalid geohash character %q in %q", hash[i], hash)
		}
		for mask := 16; mask > 0; mask >>= 1 {
			if even {
				mid := (lonMin + lonMax) / 2
				if v&mask != 0 {
					lonMin = mid
				} else {
					lonMax = mid
				}
			} else {
				mid := (latMin + latMax) / 2
				if v&mask != 0 {
					latMin = mid
				} else {
					latMax = mid
				}
			}
			even = !even
		}
	}
	return BBox{MinLat: latMin, MinLon: lonMin, MaxLat: latMax, MaxLon: lonMax}, nil
}

// GeohashCenter decodes a geohash to the centre point of its cell.
func GeohashCenter(hash string) (Point, error) {
	b, err := DecodeGeohash(hash)
	if err != nil {
		return Point{}, err
	}
	return b.Center(), nil
}

// GeohashNeighbors returns the geohashes of the 8 cells surrounding the
// given hash at the same precision. The centre cell is not included.
// Neighbours are computed by decoding to the cell centre and re-encoding a
// point offset by one cell size in each direction.
func GeohashNeighbors(hash string) ([]string, error) {
	box, err := DecodeGeohash(hash)
	if err != nil {
		return nil, err
	}
	c := box.Center()
	dLat := box.MaxLat - box.MinLat
	dLon := box.MaxLon - box.MinLon
	var out []string
	seen := map[string]bool{hash: true}
	for _, dy := range []float64{-1, 0, 1} {
		for _, dx := range []float64{-1, 0, 1} {
			if dy == 0 && dx == 0 {
				continue
			}
			lat := c.Lat + dy*dLat
			lon := c.Lon + dx*dLon
			if lat > 90 || lat < -90 {
				continue
			}
			// Wrap longitude across the antimeridian.
			for lon > 180 {
				lon -= 360
			}
			for lon < -180 {
				lon += 360
			}
			n := EncodeGeohash(Point{Lat: lat, Lon: lon}, len(hash))
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out, nil
}

// GeohashPrecisionForRadius returns a geohash precision whose cell size is
// no larger than roughly the given radius, suitable for blocking keys in
// duplicate detection. Cell heights per precision are approximate.
func GeohashPrecisionForRadius(radiusMeters float64) int {
	// Approximate cell height in metres per precision level.
	heights := []float64{5000000, 1250000, 156000, 39100, 4890, 1220, 153, 38.2, 4.77, 1.19, 0.149, 0.0372}
	for i, h := range heights {
		if h <= radiusMeters {
			return i + 1
		}
	}
	return 12
}
