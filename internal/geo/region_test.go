package geo

import (
	"testing"
	"testing/quick"
)

func TestNearRegionMembership(t *testing.T) {
	r := NewNearRegion(berlin, 1000)
	if m := r.Membership(berlin); m != 1 {
		t.Errorf("membership at anchor = %v, want 1", m)
	}
	if m := r.Membership(berlin.Destination(0, 500)); m != 1 {
		t.Errorf("membership inside core = %v, want 1", m)
	}
	mid := r.Membership(berlin.Destination(0, 1500))
	if mid <= 0 || mid >= 1 {
		t.Errorf("membership in fringe = %v, want in (0,1)", mid)
	}
	if m := r.Membership(berlin.Destination(0, 3000)); m != 0 {
		t.Errorf("membership beyond fringe = %v, want 0", m)
	}
	if m := r.Membership(paris); m != 0 {
		t.Errorf("membership far away = %v, want 0", m)
	}
}

func TestNearRegionMonotone(t *testing.T) {
	r := NewNearRegion(berlin, 2000)
	prev := 1.0
	for d := 0.0; d <= 6000; d += 250 {
		m := r.Membership(berlin.Destination(45, d))
		if m > prev+1e-9 {
			t.Errorf("membership not monotone at %v m: %v > %v", d, m, prev)
		}
		prev = m
	}
}

func TestDirectionRegion(t *testing.T) {
	r := NewDirectionRegion(berlin, 0) // north of Berlin
	if m := r.Membership(berlin.Destination(0, 5000)); m != 1 {
		t.Errorf("due north membership = %v, want 1", m)
	}
	if m := r.Membership(berlin.Destination(180, 5000)); m != 0 {
		t.Errorf("due south membership = %v, want 0", m)
	}
	east := r.Membership(berlin.Destination(90, 5000))
	if east >= 1 || east < 0 {
		t.Errorf("due east membership = %v, want in [0,1)", east)
	}
	if m := r.Membership(berlin); m != 0 {
		t.Errorf("anchor membership = %v, want 0", m)
	}
	// Beyond twice MaxMeters, membership must vanish.
	if m := r.Membership(berlin.Destination(0, 50000)); m != 0 {
		t.Errorf("far north membership = %v, want 0", m)
	}
}

func TestDirectionRegionWrapAround(t *testing.T) {
	// Bearing 350 vs point at bearing 10: deviation is 20 degrees, inside
	// the 45-degree core.
	r := DirectionRegion{Anchor: berlin, Bearing: 350, HalfAngle: 45, MaxMeters: 20000}
	if m := r.Membership(berlin.Destination(10, 5000)); m != 1 {
		t.Errorf("wrap-around membership = %v, want 1", m)
	}
}

func TestDistanceRegion(t *testing.T) {
	r := NewDistanceRegion(berlin, 5000)
	if m := r.Membership(berlin.Destination(123, 5000)); m != 1 {
		t.Errorf("on-ring membership = %v, want 1", m)
	}
	if m := r.Membership(berlin); m != 0 {
		t.Errorf("centre membership = %v, want 0", m)
	}
	if m := r.Membership(berlin.Destination(0, 20000)); m != 0 {
		t.Errorf("far membership = %v, want 0", m)
	}
	band := r.Membership(berlin.Destination(0, 6500))
	if band <= 0 || band >= 1 {
		t.Errorf("tolerance-band membership = %v, want in (0,1)", band)
	}
}

func TestBoxRegion(t *testing.T) {
	r := BoxRegion{Box: NewBBox(Point{50, 10}, Point{55, 15})}
	if m := r.Membership(berlin); m != 1 {
		t.Errorf("inside = %v", m)
	}
	if m := r.Membership(paris); m != 0 {
		t.Errorf("outside = %v", m)
	}
}

func TestIntersectRegions(t *testing.T) {
	// "north of A" and "near B" where B is north of A: intersection peaks
	// between them.
	a := berlin
	b := berlin.Destination(0, 3000)
	rs := IntersectRegions{
		NewDirectionRegion(a, 0),
		NewNearRegion(b, 2000),
	}
	probe := berlin.Destination(0, 2500)
	if m := rs.Membership(probe); m != 1 {
		t.Errorf("intersection membership = %v, want 1", m)
	}
	south := berlin.Destination(180, 2500)
	if m := rs.Membership(south); m != 0 {
		t.Errorf("south membership = %v, want 0", m)
	}
	if m := (IntersectRegions{}).Membership(probe); m != 0 {
		t.Errorf("empty intersection = %v, want 0", m)
	}
}

func TestUnionRegions(t *testing.T) {
	rs := UnionRegions{
		NewNearRegion(berlin, 1000),
		NewNearRegion(paris, 1000),
	}
	if m := rs.Membership(berlin); m != 1 {
		t.Errorf("union at berlin = %v", m)
	}
	if m := rs.Membership(paris); m != 1 {
		t.Errorf("union at paris = %v", m)
	}
	if m := rs.Membership(sydney); m != 0 {
		t.Errorf("union at sydney = %v", m)
	}
}

func TestMembershipBounded(t *testing.T) {
	regions := []FuzzyRegion{
		NewNearRegion(berlin, 1000),
		NewDirectionRegion(berlin, 45),
		NewDistanceRegion(berlin, 5000),
		BoxRegion{Box: NewBBox(Point{50, 10}, Point{55, 15})},
	}
	f := func(lat, lon float64) bool {
		p := clampPoint(lat, lon)
		for _, r := range regions {
			m := r.Membership(p)
			if m < 0 || m > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBoundsCoverSupport(t *testing.T) {
	// Membership outside Bounds() must be zero.
	regions := []FuzzyRegion{
		NewNearRegion(berlin, 1000),
		NewDistanceRegion(berlin, 5000),
	}
	for _, r := range regions {
		b := r.Bounds()
		far := []Point{
			{Lat: b.MaxLat + 1, Lon: berlin.Lon},
			{Lat: b.MinLat - 1, Lon: berlin.Lon},
			{Lat: berlin.Lat, Lon: b.MaxLon + 1},
		}
		for _, p := range far {
			if p.Validate() != nil {
				continue
			}
			if m := r.Membership(p); m != 0 {
				t.Errorf("%T: membership outside bounds = %v at %v", r, m, p)
			}
		}
	}
}

func TestRegionCentroid(t *testing.T) {
	r := NewNearRegion(berlin, 2000)
	c, peak, ok := RegionCentroid(r, 24)
	if !ok {
		t.Fatal("centroid not found")
	}
	if peak != 1 {
		t.Errorf("peak = %v, want 1", peak)
	}
	if c.DistanceMeters(berlin) > 1500 {
		t.Errorf("centroid %v too far from anchor (%.0f m)", c, c.DistanceMeters(berlin))
	}

	// Directional region centroid must sit in the right direction.
	d := NewDirectionRegion(berlin, 0)
	c2, _, ok := RegionCentroid(d, 32)
	if !ok {
		t.Fatal("direction centroid not found")
	}
	if c2.Lat <= berlin.Lat {
		t.Errorf("north-of centroid %v not north of anchor", c2)
	}

	// Empty intersection yields no centroid.
	empty := IntersectRegions{
		NewNearRegion(berlin, 500),
		NewNearRegion(paris, 500),
	}
	if _, _, ok := RegionCentroid(empty, 16); ok {
		t.Error("disjoint intersection produced a centroid")
	}
}

func TestIntersectBoundsDisjoint(t *testing.T) {
	rs := IntersectRegions{
		NewNearRegion(berlin, 100),
		NewNearRegion(sydney, 100),
	}
	if b := rs.Bounds(); !b.IsEmpty() {
		t.Errorf("disjoint intersection bounds = %v, want empty", b)
	}
}
