package geo

import (
	"math"
)

// FuzzyRegion models a vague spatial reference — "near X", "north of X",
// "5 km from X", "in the vicinity of X" — as a membership function over the
// globe. Membership returns a degree in [0, 1]: 1 means the point certainly
// satisfies the description, 0 means it certainly does not. The paper's
// §Problem Statement calls out exactly this vagueness ("terms like 'nearby',
// 'north of', or 'in vicinity of' … imply some degree of uncertainty about
// the referred place").
type FuzzyRegion interface {
	// Membership returns the degree to which p belongs to the region.
	Membership(p Point) float64
	// Bounds returns a box outside of which Membership is (near) zero,
	// enabling index-assisted evaluation.
	Bounds() BBox
}

// trapezoid returns a membership that is 1 for x <= full, falls linearly to
// 0 at zero, and is 0 beyond. Requires full <= zero.
func trapezoid(x, full, zero float64) float64 {
	switch {
	case x <= full:
		return 1
	case x >= zero:
		return 0
	default:
		return (zero - x) / (zero - full)
	}
}

// NearRegion is the fuzzy region "near anchor": full membership within
// CoreMeters, decaying to zero at FringeMeters.
type NearRegion struct {
	Anchor       Point
	CoreMeters   float64
	FringeMeters float64
}

// NewNearRegion builds a NearRegion with a fringe of twice the core radius.
func NewNearRegion(anchor Point, coreMeters float64) NearRegion {
	return NearRegion{Anchor: anchor, CoreMeters: coreMeters, FringeMeters: 2 * coreMeters}
}

// Membership implements FuzzyRegion.
func (r NearRegion) Membership(p Point) float64 {
	return trapezoid(r.Anchor.DistanceMeters(p), r.CoreMeters, r.FringeMeters)
}

// Bounds implements FuzzyRegion.
func (r NearRegion) Bounds() BBox {
	return BBoxAround(r.Anchor, r.FringeMeters)
}

// DirectionRegion is the fuzzy region "<direction> of anchor": a cone whose
// axis follows Bearing, with membership decaying as the angular deviation
// grows past HalfAngle up to twice that, and as distance grows past
// MaxMeters.
type DirectionRegion struct {
	Anchor    Point
	Bearing   float64 // axis, degrees clockwise from north
	HalfAngle float64 // degrees of full membership either side of the axis
	MaxMeters float64 // distance at which membership starts to decay
}

// NewDirectionRegion builds a standard cone for a cardinal-direction word:
// ±45° of full membership and a 20 km reach, suitable for intra-city
// references; callers can scale MaxMeters for country-level references.
func NewDirectionRegion(anchor Point, bearingDeg float64) DirectionRegion {
	return DirectionRegion{Anchor: anchor, Bearing: bearingDeg, HalfAngle: 45, MaxMeters: 20000}
}

// Membership implements FuzzyRegion.
func (r DirectionRegion) Membership(p Point) float64 {
	d := r.Anchor.DistanceMeters(p)
	if d == 0 {
		return 0 // the anchor itself is not "north of" the anchor
	}
	brg := r.Anchor.BearingDegrees(p)
	dev := math.Abs(math.Mod(brg-r.Bearing+540, 360) - 180)
	angular := trapezoid(dev, r.HalfAngle, 2*r.HalfAngle)
	radial := trapezoid(d, r.MaxMeters, 2*r.MaxMeters)
	return angular * radial
}

// Bounds implements FuzzyRegion.
func (r DirectionRegion) Bounds() BBox {
	return BBoxAround(r.Anchor, 2*r.MaxMeters)
}

// DistanceRegion is the fuzzy region "about D metres from anchor": an
// annulus centred on Meters with a tolerance band. Grounds phrases such as
// "5 km of" with the fuzziness the paper attributes to them.
type DistanceRegion struct {
	Anchor          Point
	Meters          float64
	ToleranceMeters float64 // half-width of the full-membership band
}

// NewDistanceRegion builds a DistanceRegion with 25% tolerance.
func NewDistanceRegion(anchor Point, meters float64) DistanceRegion {
	return DistanceRegion{Anchor: anchor, Meters: meters, ToleranceMeters: meters / 4}
}

// Membership implements FuzzyRegion.
func (r DistanceRegion) Membership(p Point) float64 {
	dev := math.Abs(r.Anchor.DistanceMeters(p) - r.Meters)
	return trapezoid(dev, r.ToleranceMeters, 2*r.ToleranceMeters)
}

// Bounds implements FuzzyRegion.
func (r DistanceRegion) Bounds() BBox {
	return BBoxAround(r.Anchor, r.Meters+2*r.ToleranceMeters)
}

// BoxRegion is a crisp region with membership 1 inside the box and 0
// outside; it grounds topological phrases such as "within" or "in".
type BoxRegion struct {
	Box BBox
}

// Membership implements FuzzyRegion.
func (r BoxRegion) Membership(p Point) float64 {
	if r.Box.Contains(p) {
		return 1
	}
	return 0
}

// Bounds implements FuzzyRegion.
func (r BoxRegion) Bounds() BBox { return r.Box }

// IntersectRegions is the fuzzy AND of several regions (minimum membership).
// Used when a message constrains a place with multiple clues, e.g.
// "a few blocks north of your hotel" AND "a few blocks west of McCormick's".
type IntersectRegions []FuzzyRegion

// Membership implements FuzzyRegion.
func (rs IntersectRegions) Membership(p Point) float64 {
	if len(rs) == 0 {
		return 0
	}
	m := 1.0
	for _, r := range rs {
		v := r.Membership(p)
		if v < m {
			m = v
		}
		if m == 0 {
			return 0
		}
	}
	return m
}

// Bounds implements FuzzyRegion.
func (rs IntersectRegions) Bounds() BBox {
	if len(rs) == 0 {
		return EmptyBBox()
	}
	b := rs[0].Bounds()
	for _, r := range rs[1:] {
		o := r.Bounds()
		if !b.Intersects(o) {
			return EmptyBBox()
		}
		b = BBox{
			MinLat: math.Max(b.MinLat, o.MinLat),
			MinLon: math.Max(b.MinLon, o.MinLon),
			MaxLat: math.Min(b.MaxLat, o.MaxLat),
			MaxLon: math.Min(b.MaxLon, o.MaxLon),
		}
	}
	return b
}

// UnionRegions is the fuzzy OR of several regions (maximum membership).
type UnionRegions []FuzzyRegion

// Membership implements FuzzyRegion.
func (rs UnionRegions) Membership(p Point) float64 {
	m := 0.0
	for _, r := range rs {
		if v := r.Membership(p); v > m {
			m = v
		}
		if m == 1 {
			return 1
		}
	}
	return m
}

// Bounds implements FuzzyRegion.
func (rs UnionRegions) Bounds() BBox {
	b := EmptyBBox()
	for _, r := range rs {
		b = b.Union(r.Bounds())
	}
	return b
}

// RegionCentroid estimates the membership-weighted centroid of a region by
// sampling a grid over its bounds. It returns the centroid, the peak
// membership seen, and false if the region is everywhere (near) zero. The
// disambiguation service uses it to turn "a few blocks north of X" into a
// concrete candidate location with an uncertainty radius.
func RegionCentroid(r FuzzyRegion, gridSize int) (Point, float64, bool) {
	if gridSize < 2 {
		gridSize = 2
	}
	b := r.Bounds()
	if b.IsEmpty() {
		return Point{}, 0, false
	}
	var sumLat, sumLon, sumW, peak float64
	for i := 0; i < gridSize; i++ {
		for j := 0; j < gridSize; j++ {
			p := Point{
				Lat: b.MinLat + (b.MaxLat-b.MinLat)*(float64(i)+0.5)/float64(gridSize),
				Lon: b.MinLon + (b.MaxLon-b.MinLon)*(float64(j)+0.5)/float64(gridSize),
			}
			w := r.Membership(p)
			if w > peak {
				peak = w
			}
			sumLat += w * p.Lat
			sumLon += w * p.Lon
			sumW += w
		}
	}
	if sumW < 1e-12 {
		return Point{}, 0, false
	}
	return Point{Lat: sumLat / sumW, Lon: sumLon / sumW}, peak, true
}
