package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBBoxContains(t *testing.T) {
	b := NewBBox(Point{50, 10}, Point{55, 15})
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{52, 12}, true},
		{Point{50, 10}, true}, // boundary
		{Point{55, 15}, true}, // boundary
		{Point{49.999, 12}, false},
		{Point{52, 15.001}, false},
	}
	for _, c := range cases {
		if got := b.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestBBoxCornerOrderIrrelevant(t *testing.T) {
	b1 := NewBBox(Point{50, 10}, Point{55, 15})
	b2 := NewBBox(Point{55, 15}, Point{50, 10})
	if b1 != b2 {
		t.Errorf("corner order changed box: %v vs %v", b1, b2)
	}
}

func TestEmptyBBox(t *testing.T) {
	e := EmptyBBox()
	if !e.IsEmpty() {
		t.Fatal("EmptyBBox not empty")
	}
	if e.Contains(Point{0, 0}) {
		t.Error("empty box contains a point")
	}
	b := NewBBox(Point{1, 1}, Point{2, 2})
	if got := e.Union(b); got != b {
		t.Errorf("empty Union identity failed: %v", got)
	}
	if got := b.Union(e); got != b {
		t.Errorf("Union with empty failed: %v", got)
	}
	if e.Intersects(b) || b.Intersects(e) {
		t.Error("empty box intersects something")
	}
	if e.Area() != 0 {
		t.Errorf("empty area = %v", e.Area())
	}
}

func TestBBoxIntersects(t *testing.T) {
	a := NewBBox(Point{0, 0}, Point{10, 10})
	cases := []struct {
		b    BBox
		want bool
	}{
		{NewBBox(Point{5, 5}, Point{15, 15}), true},
		{NewBBox(Point{10, 10}, Point{20, 20}), true}, // touching corner
		{NewBBox(Point{11, 11}, Point{20, 20}), false},
		{NewBBox(Point{-5, -5}, Point{-1, -1}), false},
		{NewBBox(Point{2, 2}, Point{3, 3}), true}, // contained
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects not symmetric for %v", c.b)
		}
	}
}

func TestBBoxUnionProperties(t *testing.T) {
	f := func(a1, o1, a2, o2, a3, o3, a4, o4 float64) bool {
		a := NewBBox(clampPoint(a1, o1), clampPoint(a2, o2))
		b := NewBBox(clampPoint(a3, o3), clampPoint(a4, o4))
		u := a.Union(b)
		// Union contains both inputs and is commutative.
		return u.ContainsBBox(a) && u.ContainsBBox(b) && u == b.Union(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBBoxIntersectionArea(t *testing.T) {
	a := NewBBox(Point{0, 0}, Point{10, 10})
	b := NewBBox(Point{5, 5}, Point{15, 15})
	if got := a.IntersectionArea(b); math.Abs(got-25) > 1e-9 {
		t.Errorf("IntersectionArea = %v, want 25", got)
	}
	c := NewBBox(Point{20, 20}, Point{30, 30})
	if got := a.IntersectionArea(c); got != 0 {
		t.Errorf("disjoint IntersectionArea = %v, want 0", got)
	}
}

func TestBBoxEnlargement(t *testing.T) {
	a := NewBBox(Point{0, 0}, Point{10, 10})
	if got := a.Enlargement(NewBBox(Point{2, 2}, Point{3, 3})); got != 0 {
		t.Errorf("contained enlargement = %v, want 0", got)
	}
	if got := a.Enlargement(NewBBox(Point{0, 0}, Point{10, 20})); math.Abs(got-100) > 1e-9 {
		t.Errorf("enlargement = %v, want 100", got)
	}
}

func TestMinDistanceMeters(t *testing.T) {
	b := NewBBox(Point{50, 10}, Point{55, 15})
	if d := b.MinDistanceMeters(Point{52, 12}); d != 0 {
		t.Errorf("inside point distance = %v, want 0", d)
	}
	outside := Point{52, 20}
	d := b.MinDistanceMeters(outside)
	// The clamp point (52, 15) gives an upper bound; the true minimum lies
	// slightly poleward on the meridian edge but within 1%.
	upper := outside.DistanceMeters(Point{52, 15})
	if d > upper+1e-6 {
		t.Errorf("MinDistanceMeters = %v exceeds clamp-point distance %v", d, upper)
	}
	if d < upper*0.99 {
		t.Errorf("MinDistanceMeters = %v implausibly far below clamp-point distance %v", d, upper)
	}
}

func TestMinDistanceLowerBound(t *testing.T) {
	// MinDistanceMeters must never exceed the distance to any point in the box.
	f := func(a1, o1, a2, o2, a3, o3, fr1, fr2 float64) bool {
		b := NewBBox(clampPoint(a1, o1), clampPoint(a2, o2))
		p := clampPoint(a3, o3)
		// A point sampled inside the box via fractions in [0, 1).
		u := math.Abs(math.Mod(fr1, 1))
		v := math.Abs(math.Mod(fr2, 1))
		in := Point{
			Lat: b.MinLat + (b.MaxLat-b.MinLat)*u,
			Lon: b.MinLon + (b.MaxLon-b.MinLon)*v,
		}
		d := p.DistanceMeters(in)
		// Relative tolerance: the bound and the haversine to the sampled
		// point are computed along different float paths.
		return b.MinDistanceMeters(p) <= d+d*1e-9+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBBoxAroundContainsCircle(t *testing.T) {
	centers := []Point{berlin, sydney, {Lat: 89, Lon: 0}, {Lat: 0, Lon: 179}}
	for _, c := range centers {
		for _, r := range []float64{100, 10000, 500000} {
			box := BBoxAround(c, r)
			// Sample points on the circle; all must be inside (modulo
			// antimeridian wrap, which we skip).
			for brg := 0.0; brg < 360; brg += 30 {
				p := c.Destination(brg, r)
				if math.Abs(p.Lon-c.Lon) > 180 {
					continue // wrapped across the antimeridian
				}
				if !box.Contains(p) {
					t.Errorf("BBoxAround(%v, %v) misses circle point %v", c, r, p)
				}
			}
		}
	}
}

func TestBBoxValidate(t *testing.T) {
	if err := NewBBox(Point{0, 0}, Point{10, 10}).Validate(); err != nil {
		t.Errorf("valid box: %v", err)
	}
	bad := BBox{MinLat: -100, MinLon: 0, MaxLat: 0, MaxLon: 0}
	if err := bad.Validate(); err == nil {
		t.Error("invalid box passed validation")
	}
	if err := EmptyBBox().Validate(); err != nil {
		t.Errorf("empty box should validate: %v", err)
	}
}
