package geo

import (
	"math"
	"testing"
	"testing/quick"
)

var (
	berlin   = Point{Lat: 52.5200, Lon: 13.4050}
	paris    = Point{Lat: 48.8566, Lon: 2.3522}
	enschede = Point{Lat: 52.2215, Lon: 6.8937}
	sydney   = Point{Lat: -33.8688, Lon: 151.2093}
	cairoEG  = Point{Lat: 30.0444, Lon: 31.2357}
	cairoIL  = Point{Lat: 37.0050, Lon: -89.1763} // Cairo, Illinois
)

func TestNewPointValidation(t *testing.T) {
	cases := []struct {
		lat, lon float64
		wantErr  bool
	}{
		{0, 0, false},
		{90, 180, false},
		{-90, -180, false},
		{90.0001, 0, true},
		{-90.0001, 0, true},
		{0, 180.0001, true},
		{0, -180.0001, true},
		{math.NaN(), 0, true},
		{0, math.NaN(), true},
	}
	for _, c := range cases {
		_, err := NewPoint(c.lat, c.lon)
		if (err != nil) != c.wantErr {
			t.Errorf("NewPoint(%v, %v) err = %v, wantErr %v", c.lat, c.lon, err, c.wantErr)
		}
	}
}

func TestDistanceBerlinParis(t *testing.T) {
	d := berlin.DistanceMeters(paris)
	// Real-world distance is about 878 km.
	if d < 860000 || d > 895000 {
		t.Errorf("Berlin-Paris distance = %.0f m, want about 878 km", d)
	}
}

func TestDistanceZero(t *testing.T) {
	if d := berlin.DistanceMeters(berlin); d != 0 {
		t.Errorf("self distance = %v, want 0", d)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		p := clampPoint(lat1, lon1)
		q := clampPoint(lat2, lon2)
		d1 := p.DistanceMeters(q)
		d2 := q.DistanceMeters(p)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(a1, o1, a2, o2, a3, o3 float64) bool {
		p := clampPoint(a1, o1)
		q := clampPoint(a2, o2)
		r := clampPoint(a3, o3)
		// Allow a tiny epsilon for floating-point error.
		return p.DistanceMeters(r) <= p.DistanceMeters(q)+q.DistanceMeters(r)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistanceNonNegative(t *testing.T) {
	f := func(a1, o1, a2, o2 float64) bool {
		d := clampPoint(a1, o1).DistanceMeters(clampPoint(a2, o2))
		return d >= 0 && d <= math.Pi*EarthRadiusMeters+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampPoint maps arbitrary floats into valid coordinates.
func clampPoint(lat, lon float64) Point {
	if math.IsNaN(lat) || math.IsInf(lat, 0) {
		lat = 0
	}
	if math.IsNaN(lon) || math.IsInf(lon, 0) {
		lon = 0
	}
	lat = math.Mod(lat, 90)
	lon = math.Mod(lon, 180)
	return Point{Lat: lat, Lon: lon}
}

func TestBearing(t *testing.T) {
	north := berlin.Destination(0, 100000)
	if b := berlin.BearingDegrees(north); b > 1 && b < 359 {
		t.Errorf("bearing to due-north point = %v, want about 0", b)
	}
	east := berlin.Destination(90, 100000)
	if b := berlin.BearingDegrees(east); math.Abs(b-90) > 1 {
		t.Errorf("bearing to due-east point = %v, want about 90", b)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	for _, brg := range []float64{0, 45, 90, 135, 180, 225, 270, 315} {
		for _, dist := range []float64{100, 5000, 250000} {
			q := berlin.Destination(brg, dist)
			back := q.DistanceMeters(berlin)
			if math.Abs(back-dist) > dist*0.001+1 {
				t.Errorf("Destination(%v, %v): round-trip distance %v", brg, dist, back)
			}
		}
	}
}

func TestMidpoint(t *testing.T) {
	m := berlin.Midpoint(paris)
	db := m.DistanceMeters(berlin)
	dp := m.DistanceMeters(paris)
	if math.Abs(db-dp) > 1000 {
		t.Errorf("midpoint distances differ: %v vs %v", db, dp)
	}
}

func TestCardinalDirection(t *testing.T) {
	cases := []struct {
		brg  float64
		want string
	}{
		{0, "north"}, {44, "northeast"}, {90, "east"}, {135, "southeast"},
		{180, "south"}, {225, "southwest"}, {270, "west"}, {315, "northwest"},
		{359, "north"}, {22, "north"}, {23, "northeast"},
	}
	for _, c := range cases {
		if got := CardinalDirection(c.brg); got != c.want {
			t.Errorf("CardinalDirection(%v) = %q, want %q", c.brg, got, c.want)
		}
	}
}

func TestBearingForDirection(t *testing.T) {
	for _, c := range []struct {
		word string
		want float64
		ok   bool
	}{
		{"north", 0, true}, {"ne", 45, true}, {"south-west", 225, true},
		{"w", 270, true}, {"upwards", 0, false}, {"", 0, false},
	} {
		got, ok := BearingForDirection(c.word)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("BearingForDirection(%q) = %v, %v; want %v, %v", c.word, got, ok, c.want, c.ok)
		}
	}
}

func TestDirectionRoundTrip(t *testing.T) {
	words := []string{"north", "northeast", "east", "southeast", "south", "southwest", "west", "northwest"}
	for _, w := range words {
		brg, ok := BearingForDirection(w)
		if !ok {
			t.Fatalf("BearingForDirection(%q) not ok", w)
		}
		if got := CardinalDirection(brg); got != w {
			t.Errorf("round trip %q -> %v -> %q", w, brg, got)
		}
	}
}
