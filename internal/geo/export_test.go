package geo

// Test-only accessors for internal invariants.

// CheckInvariants exposes structural validation to tests.
func (t *RTree[T]) CheckInvariants() error { return t.checkInvariants() }

// Depth exposes the tree height to tests.
func (t *RTree[T]) Depth() int { return t.depth() }
