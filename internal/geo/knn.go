package geo

import (
	"container/heap"
	"sort"
)

// Neighbor is one result of a nearest-neighbour query.
type Neighbor[T comparable] struct {
	Value          T
	Box            BBox
	DistanceMeters float64
}

// knnItem is an element of the best-first search priority queue: either an
// internal node or a leaf entry, ordered by minimum possible distance.
type knnItem[T comparable] struct {
	dist  float64
	node  *rtreeNode[T] // non-nil for tree nodes
	box   BBox
	value T
}

type knnHeap[T comparable] []knnItem[T]

func (h knnHeap[T]) Len() int            { return len(h) }
func (h knnHeap[T]) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h knnHeap[T]) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *knnHeap[T]) Push(x interface{}) { *h = append(*h, x.(knnItem[T])) }
func (h *knnHeap[T]) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Nearest returns up to k stored values closest to p, ordered by increasing
// great-circle distance from p to each value's bounding box. Best-first
// traversal guarantees no node is expanded unless it could contain a closer
// result than the kth found so far.
func (t *RTree[T]) Nearest(p Point, k int) []Neighbor[T] {
	if k <= 0 || t.size == 0 {
		return nil
	}
	h := &knnHeap[T]{}
	heap.Init(h)
	heap.Push(h, knnItem[T]{dist: 0, node: t.root})
	out := make([]Neighbor[T], 0, k)
	for h.Len() > 0 {
		it := heap.Pop(h).(knnItem[T])
		if it.node == nil {
			out = append(out, Neighbor[T]{Value: it.value, Box: it.box, DistanceMeters: it.dist})
			if len(out) == k {
				return out
			}
			continue
		}
		for i := range it.node.entries {
			e := it.node.entries[i]
			d := e.box.MinDistanceMeters(p)
			if it.node.leaf {
				heap.Push(h, knnItem[T]{dist: d, box: e.box, value: e.value})
			} else {
				heap.Push(h, knnItem[T]{dist: d, node: e.child})
			}
		}
	}
	return out
}

// Within returns all stored values whose box lies within radiusMeters of p,
// ordered by increasing distance. It pre-filters with a bounding box and
// verifies with exact haversine distance.
func (t *RTree[T]) Within(p Point, radiusMeters float64) []Neighbor[T] {
	pre := BBoxAround(p, radiusMeters)
	var out []Neighbor[T]
	t.SearchFunc(pre, func(box BBox, v T) bool {
		d := box.MinDistanceMeters(p)
		if d <= radiusMeters {
			out = append(out, Neighbor[T]{Value: v, Box: box, DistanceMeters: d})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].DistanceMeters < out[j].DistanceMeters })
	return out
}

// JoinPair is one matched pair produced by a spatial join.
type JoinPair[A, B comparable] struct {
	Left           A
	Right          B
	DistanceMeters float64
}

// DistanceJoin returns every pair (a, b) with a in left and b in right whose
// boxes lie within maxMeters of one another. It iterates the smaller tree's
// leaves and probes the larger tree, the classic index nested-loop spatial
// join.
func DistanceJoin[A, B comparable](left *RTree[A], right *RTree[B], maxMeters float64) []JoinPair[A, B] {
	var out []JoinPair[A, B]
	left.SearchFunc(left.Bounds(), func(aBox BBox, a A) bool {
		pre := BBoxAround(aBox.Center(), maxMeters+aBox.Center().DistanceMeters(Point{aBox.MinLat, aBox.MinLon}))
		right.SearchFunc(pre, func(bBox BBox, b B) bool {
			d := minBoxDistanceMeters(aBox, bBox)
			if d <= maxMeters {
				out = append(out, JoinPair[A, B]{Left: a, Right: b, DistanceMeters: d})
			}
			return true
		})
		return true
	})
	return out
}

// IntersectJoin returns every pair of entries whose boxes intersect.
func IntersectJoin[A, B comparable](left *RTree[A], right *RTree[B]) []JoinPair[A, B] {
	var out []JoinPair[A, B]
	left.SearchFunc(left.Bounds(), func(aBox BBox, a A) bool {
		right.SearchFunc(aBox, func(bBox BBox, b B) bool {
			out = append(out, JoinPair[A, B]{Left: a, Right: b})
			return true
		})
		return true
	})
	return out
}

// minBoxDistanceMeters lower-bounds the distance between two boxes by
// clamping each box's centre into the other box.
func minBoxDistanceMeters(a, b BBox) float64 {
	if a.Intersects(b) {
		return 0
	}
	d1 := a.MinDistanceMeters(b.Center())
	d2 := b.MinDistanceMeters(a.Center())
	if d2 < d1 {
		return d2
	}
	return d1
}
