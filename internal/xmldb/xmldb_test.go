package xmldb

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/pxml"
	"repro/internal/uncertain"
)

func hotelRecord(name, city string, pGermany, pPositive float64) *pxml.Node {
	return pxml.Elem("Hotel",
		pxml.ElemText("Hotel_Name", name),
		pxml.ElemText("City", city),
		pxml.Elem("Country", pxml.Mux(
			pxml.Text("Germany").WithProb(pGermany),
			pxml.Text("USA").WithProb(1-pGermany),
		)),
		pxml.Elem("User_Attitude", pxml.Mux(
			pxml.Text("Positive").WithProb(pPositive),
			pxml.Text("Negative").WithProb(1-pPositive),
		)),
	)
}

func seedDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	berlin := geo.Point{Lat: 52.52, Lon: 13.405}
	paris := geo.Point{Lat: 48.85, Lon: 2.35}
	add := func(doc *pxml.Node, cf uncertain.CF, loc *geo.Point) *Record {
		t.Helper()
		rec, err := db.Insert("Hotels", doc, cf, loc)
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	add(hotelRecord("Axel Hotel", "Berlin", 0.9, 0.85), 0.8, &berlin)
	add(hotelRecord("movenpick hotel", "Berlin", 0.85, 0.9), 0.7, &berlin)
	add(hotelRecord("Berlin hotel", "Berlin", 0.8, 0.6), 0.5, &berlin)
	add(hotelRecord("Grand Paris", "Paris", 0.1, 0.7), 0.6, &paris)
	add(hotelRecord("Sad Inn", "Berlin", 0.9, 0.2), 0.4, &berlin)
	return db
}

func TestInsertValidation(t *testing.T) {
	db := New()
	doc := hotelRecord("A", "B", 0.5, 0.5)
	if _, err := db.Insert("", doc, 0.5, nil); err == nil {
		t.Error("empty collection accepted")
	}
	if _, err := db.Insert("H", nil, 0.5, nil); err == nil {
		t.Error("nil doc accepted")
	}
	if _, err := db.Insert("H", doc, 1.5, nil); err == nil {
		t.Error("invalid certainty accepted")
	}
	bad := geo.Point{Lat: 200}
	if _, err := db.Insert("H", doc, 0.5, &bad); err == nil {
		t.Error("invalid location accepted")
	}
	invalidDoc := pxml.Elem("X", pxml.Elem("Y", pxml.Mux(
		pxml.Text("a").WithProb(0.9), pxml.Text("b").WithProb(0.9))))
	if _, err := db.Insert("H", invalidDoc, 0.5, nil); err == nil {
		t.Error("invalid doc accepted")
	}
}

func TestCRUD(t *testing.T) {
	db := New()
	fixed := time.Date(2011, 4, 1, 0, 0, 0, 0, time.UTC)
	db.SetClock(func() time.Time { return fixed })
	doc := hotelRecord("Axel Hotel", "Berlin", 0.9, 0.8)
	rec, err := db.Insert("Hotels", doc, 0.8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Updated != fixed {
		t.Error("clock not used")
	}
	got, ok := db.Get("Hotels", rec.ID)
	if !ok || got.ID != rec.ID {
		t.Fatal("Get failed")
	}
	// Update.
	doc2 := hotelRecord("Axel Hotel", "Berlin", 0.95, 0.9)
	loc := geo.Point{Lat: 52.52, Lon: 13.405}
	if err := db.Update("Hotels", rec.ID, doc2, 0.9, &loc); err != nil {
		t.Fatal(err)
	}
	got, _ = db.Get("Hotels", rec.ID)
	if got.Certainty != 0.9 || got.Location == nil {
		t.Errorf("update not applied: %+v", got)
	}
	// Spatial index knows the new location.
	if ids := db.Near("Hotels", loc, 1000); len(ids) != 1 || ids[0] != rec.ID {
		t.Errorf("Near after update = %v", ids)
	}
	// Delete.
	if err := db.Delete("Hotels", rec.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Get("Hotels", rec.ID); ok {
		t.Error("record survives delete")
	}
	if ids := db.Near("Hotels", loc, 1000); len(ids) != 0 {
		t.Errorf("spatial ghost after delete: %v", ids)
	}
	if err := db.Delete("Hotels", 999); err == nil {
		t.Error("deleting missing record succeeded")
	}
	if err := db.Update("Nope", 1, doc2, 0.5, nil); err == nil {
		t.Error("updating missing collection succeeded")
	}
}

func TestPaperQuery(t *testing.T) {
	db := seedDB(t)
	// The paper's QA query, verbatim modulo whitespace.
	results, err := db.Run(`topk(3, for $x in //Hotels
		where $x/City == "Berlin" and $x/User_Attitude == "Positive"
		orderby score($x)
		return $x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	// Scores must be descending and the sad hotel must rank below the
	// good ones.
	for i := 1; i < len(results); i++ {
		if results[i].Score > results[i-1].Score {
			t.Error("scores not descending")
		}
	}
	names := make([]string, len(results))
	for i, r := range results {
		n, _ := r.Record.Doc.FirstChild("Hotel_Name")
		names[i] = n.TextContent()
	}
	for _, n := range names {
		if n == "Sad Inn" || n == "Grand Paris" {
			t.Errorf("unexpected hotel in top-3: %v", names)
		}
	}
	// Expected score of the top record: certainty 0.8 -> P 0.9 times
	// P(city)=1 times P(positive)=0.85... compute for Axel.
	axel := results[0]
	wantScore := uncertain.ToProbability(0.8) * 1 * 0.85
	if math.Abs(axel.Score-wantScore) > 1e-9 {
		// movenpick could outrank axel: cert 0.7 -> 0.85 * 0.9 = 0.765 vs
		// axel 0.9*0.85=0.765 — a tie broken by ID, so axel first.
		t.Errorf("top score = %v, want %v", axel.Score, wantScore)
	}
}

func TestQueryNumericComparison(t *testing.T) {
	db := New()
	doc := pxml.Elem("Hotel",
		pxml.ElemText("Hotel_Name", "Essex House"),
		pxml.Elem("Price", pxml.Mux(
			pxml.Text("154").WithProb(0.6),
			pxml.Text("123").WithProb(0.4),
		)),
	)
	if _, err := db.Insert("Hotels", doc, 0.8, nil); err != nil {
		t.Fatal(err)
	}
	results, err := db.Run(`for $x in //Hotels where $x/Price < 150 return $x`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	if math.Abs(results[0].CondP-0.4) > 1e-9 {
		t.Errorf("P(price < 150) = %v, want 0.4", results[0].CondP)
	}
	results, err = db.Run(`for $x in //Hotels where $x/Price >= 150 return $x`)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(results[0].CondP-0.6) > 1e-9 {
		t.Errorf("P(price >= 150) = %v, want 0.6", results[0].CondP)
	}
}

func TestQuerySpatial(t *testing.T) {
	db := seedDB(t)
	// Hotels within 50 km of Berlin centre.
	results, err := db.Run(`for $x in //Hotels where near($x, 52.52, 13.405, 50000) and $x/User_Attitude == "Positive" orderby score($x) return $x`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4 Berlin hotels", len(results))
	}
	for _, r := range results {
		n, _ := r.Record.Doc.FirstChild("Hotel_Name")
		if n.TextContent() == "Grand Paris" {
			t.Error("Paris hotel within Berlin radius")
		}
	}
	// Records without a location never match near().
	noLoc := hotelRecord("Nowhere Inn", "Berlin", 0.5, 0.5)
	if _, err := db.Insert("Hotels", noLoc, 0.5, nil); err != nil {
		t.Fatal(err)
	}
	results, err = db.Run(`for $x in //Hotels where near($x, 52.52, 13.405, 50000) return $x`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		n, _ := r.Record.Doc.FirstChild("Hotel_Name")
		if n.TextContent() == "Nowhere Inn" {
			t.Error("location-less record matched near()")
		}
	}
}

func TestQueryOrNot(t *testing.T) {
	db := seedDB(t)
	results, err := db.Run(`for $x in //Hotels where $x/City == "Paris" or $x/City == "Berlin" return $x`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Errorf("or query = %d results", len(results))
	}
	results, err = db.Run(`for $x in //Hotels where not $x/City == "Paris" return $x`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Errorf("not query = %d results", len(results))
	}
}

func TestQueryNoWhere(t *testing.T) {
	db := seedDB(t)
	results, err := db.Run(`for $x in //Hotels return $x`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Errorf("bare query = %d results", len(results))
	}
	for _, r := range results {
		if r.CondP != 1 {
			t.Errorf("CondP = %v without where", r.CondP)
		}
	}
}

func TestQueryParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select * from hotels",
		"topk(0, for $x in //H return $x)",
		"topk(3, for $x in //H return $y)",
		`for $x in //H where $x/City = = "a" return $x`,
		`for $x in //H where $y/City == "a" return $x`,
		`for $x in //H where $x/City == "a" orderby score($y) return $x`,
		`for $x in //H where near($x, 1, 2) return $x`,
		`for $x in //H where near($x, 1, 2, -5) return $x`,
		`for $x in //H where $x/Price < "abc" return $x`,
		`for $x in //H return $x trailing`,
		`for $x in //H where $x/City == "unterminated return $x`,
	}
	db := New()
	for _, q := range bad {
		if _, err := db.Run(q); err == nil {
			t.Errorf("query accepted: %q", q)
		}
	}
}

func TestQuerySmartQuotes(t *testing.T) {
	// The paper's own example uses typographic quotes; accept them.
	db := seedDB(t)
	results, err := db.Run(`for $x in //Hotels where $x/City == “Berlin” return $x`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Errorf("smart-quote query = %d results", len(results))
	}
}

func TestQueryEmptyCollection(t *testing.T) {
	db := New()
	results, err := db.Run(`for $x in //Nothing return $x`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("results from empty collection: %v", results)
	}
}

func TestCollectionsAndLen(t *testing.T) {
	db := seedDB(t)
	if got := db.Collections(); len(got) != 1 || got[0] != "Hotels" {
		t.Errorf("Collections = %v", got)
	}
	if db.Len("Hotels") != 5 {
		t.Errorf("Len = %d", db.Len("Hotels"))
	}
	if db.Len("Nope") != 0 {
		t.Error("missing collection Len != 0")
	}
}

func TestEachOrderAndEarlyStop(t *testing.T) {
	db := seedDB(t)
	var ids []int64
	db.Each("Hotels", func(r *Record) bool {
		ids = append(ids, r.ID)
		return len(ids) < 3
	})
	if len(ids) != 3 {
		t.Fatalf("visited %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Error("not in insertion order")
		}
	}
}

func TestScoreUsesCertainty(t *testing.T) {
	db := New()
	doc := hotelRecord("A", "Berlin", 0.9, 0.9)
	lo, err := db.Insert("Hotels", doc.Clone(), 0.2, nil)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := db.Insert("Hotels", doc.Clone(), 0.9, nil)
	if err != nil {
		t.Fatal(err)
	}
	results, err := db.Run(`for $x in //Hotels where $x/City == "Berlin" orderby score($x) return $x`)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Record.ID != hi.ID || results[1].Record.ID != lo.ID {
		t.Error("certainty did not order results")
	}
}

func TestSetIDSequence(t *testing.T) {
	db := New()
	if err := db.SetIDSequence(2, 4); err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for i := 0; i < 3; i++ {
		rec, err := db.Insert("Hotels", pxml.Elem("Hotel", pxml.ElemText("Hotel_Name", "X")), 0.5, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	for i, want := range []int64{2, 6, 10} {
		if ids[i] != want {
			t.Fatalf("ids = %v, want stride-4 sequence from 2", ids)
		}
	}
	// Re-seeding a non-empty database must be refused.
	if err := db.SetIDSequence(1, 1); err == nil {
		t.Fatal("re-seed of non-empty database accepted")
	}
	if err := New().SetIDSequence(0, 1); err == nil {
		t.Fatal("start 0 accepted")
	}
	if err := New().SetIDSequence(1, 0); err == nil {
		t.Fatal("stride 0 accepted")
	}
}
