package xmldb

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/pxml"
)

func batchDoc(name string) *pxml.Node {
	return pxml.Elem("Hotel", pxml.ElemText("Hotel_Name", name))
}

func TestBatchAtomicInsertUpdate(t *testing.T) {
	db := New()
	var id int64
	err := db.Batch(func(tx *Tx) error {
		rec, err := tx.Insert("Hotels", batchDoc("Axel"), 0.5, nil)
		if err != nil {
			return err
		}
		id = rec.ID
		if got := tx.Len("Hotels"); got != 1 {
			return fmt.Errorf("Len inside batch = %d, want 1", got)
		}
		return tx.Update("Hotels", id, batchDoc("Axel Hotel"), 0.7, nil)
	})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	rec, ok := db.Get("Hotels", id)
	if !ok {
		t.Fatalf("record %d missing after batch", id)
	}
	if got, _ := rec.Doc.FirstChild("Hotel_Name"); got.TextContent() != "Axel Hotel" {
		t.Fatalf("Hotel_Name = %q, want %q", got.TextContent(), "Axel Hotel")
	}
	if float64(rec.Certainty) != 0.7 {
		t.Fatalf("Certainty = %v, want 0.7", rec.Certainty)
	}
}

func TestBatchErrorPropagates(t *testing.T) {
	db := New()
	wantErr := fmt.Errorf("boom")
	if err := db.Batch(func(tx *Tx) error { return wantErr }); err != wantErr {
		t.Fatalf("Batch error = %v, want %v", err, wantErr)
	}
}

// Update must replace the stored record, not mutate it, so a record
// pointer read before the update remains a stable snapshot — this is what
// makes concurrent readers safe while the integration batcher writes.
func TestUpdateIsCopyOnWrite(t *testing.T) {
	db := New()
	rec, err := db.Insert("Hotels", batchDoc("Axel"), 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := db.Get("Hotels", rec.ID)
	if err := db.Update("Hotels", rec.ID, batchDoc("Movenpick"), 0.9, nil); err != nil {
		t.Fatal(err)
	}
	if got, _ := before.Doc.FirstChild("Hotel_Name"); got.TextContent() != "Axel" {
		t.Fatalf("old snapshot mutated: Hotel_Name = %q", got.TextContent())
	}
	if float64(before.Certainty) != 0.5 {
		t.Fatalf("old snapshot mutated: Certainty = %v", before.Certainty)
	}
	after, _ := db.Get("Hotels", rec.ID)
	if got, _ := after.Doc.FirstChild("Hotel_Name"); got.TextContent() != "Movenpick" {
		t.Fatalf("update lost: Hotel_Name = %q", got.TextContent())
	}
}

// Readers holding record snapshots race-free against concurrent updates:
// run with -race.
func TestConcurrentReadersDuringUpdates(t *testing.T) {
	db := New()
	rec, err := db.Insert("Hotels", batchDoc("Axel"), 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r, ok := db.Get("Hotels", rec.ID)
				if !ok {
					t.Error("record vanished")
					return
				}
				if n, _ := r.Doc.FirstChild("Hotel_Name"); n.TextContent() == "" {
					t.Error("empty name")
					return
				}
				db.Each("Hotels", func(r *Record) bool { _ = r.Certainty; return true })
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if err := db.Update("Hotels", rec.ID, batchDoc(fmt.Sprintf("Hotel %d", i)), 0.6, nil); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
