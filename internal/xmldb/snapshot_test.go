package xmldb

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/pxml"
	"repro/internal/uncertain"
)

func snapClock() func() time.Time {
	t := time.Unix(1_300_000_000, 0).UTC()
	return func() time.Time { t = t.Add(time.Second); return t }
}

func fillSnapshotDB(t *testing.T, seed int64, n int) *DB {
	t.Helper()
	db := New()
	db.SetClock(snapClock())
	rng := rand.New(rand.NewSource(seed))
	colls := []string{"Hotels", "RoadReports", "FarmReports"}
	for i := 0; i < n; i++ {
		coll := colls[rng.Intn(len(colls))]
		a := pxml.ElemText("City", "Berlin")
		a.Prob = 0.7
		b := pxml.ElemText("City", "Paris")
		b.Prob = 0.3
		doc := pxml.Elem("Rec",
			pxml.ElemText("Name", strings.Repeat("x", 1+rng.Intn(8))),
			pxml.Mux(a, b),
		)
		var loc *geo.Point
		if rng.Intn(2) == 0 {
			p, err := geo.NewPoint(rng.Float64()*170-85, rng.Float64()*340-170)
			if err != nil {
				t.Fatal(err)
			}
			loc = &p
		}
		if _, err := db.Insert(coll, doc, uncertain.CF(rng.Float64()), loc); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestSnapshotRoundTrip: restore(snapshot(db)) reproduces every record,
// and a second snapshot is byte-identical (the fixpoint property).
func TestSnapshotRoundTrip(t *testing.T) {
	db := fillSnapshotDB(t, 7, 50)

	var first bytes.Buffer
	if err := db.Snapshot(&first); err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	restored := New()
	if err := restored.Restore(bytes.NewReader(first.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}

	for _, coll := range db.Collections() {
		if got, want := restored.Len(coll), db.Len(coll); got != want {
			t.Errorf("%s: %d records after restore, want %d", coll, got, want)
		}
		db.Each(coll, func(orig *Record) bool {
			got, ok := restored.Get(coll, orig.ID)
			if !ok {
				t.Errorf("%s/%d missing after restore", coll, orig.ID)
				return true
			}
			origXML, _ := pxml.Marshal(orig.Doc)
			gotXML, _ := pxml.Marshal(got.Doc)
			if origXML != gotXML {
				t.Errorf("%s/%d doc mismatch:\n%s\nvs\n%s", coll, orig.ID, origXML, gotXML)
			}
			if got.Certainty != orig.Certainty {
				t.Errorf("%s/%d certainty %v != %v", coll, orig.ID, got.Certainty, orig.Certainty)
			}
			if !got.Updated.Equal(orig.Updated) {
				t.Errorf("%s/%d updated %v != %v", coll, orig.ID, got.Updated, orig.Updated)
			}
			if (got.Location == nil) != (orig.Location == nil) {
				t.Errorf("%s/%d location presence mismatch", coll, orig.ID)
			} else if got.Location != nil && *got.Location != *orig.Location {
				t.Errorf("%s/%d location %v != %v", coll, orig.ID, *got.Location, *orig.Location)
			}
			return true
		})
	}

	var second bytes.Buffer
	if err := restored.Snapshot(&second); err != nil {
		t.Fatalf("re-snapshot: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("snapshot is not a fixpoint: restore+snapshot differs")
	}
}

// TestSnapshotRestoresSpatialIndex: Near must work against restored data.
func TestSnapshotRestoresSpatialIndex(t *testing.T) {
	db := New()
	db.SetClock(snapClock())
	berlin, _ := geo.NewPoint(52.52, 13.405)
	paris, _ := geo.NewPoint(48.8566, 2.3522)
	r1, err := db.Insert("Hotels", pxml.ElemText("Name", "A"), 0.9, &berlin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("Hotels", pxml.ElemText("Name", "B"), 0.9, &paris); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}

	near := restored.Near("Hotels", berlin, 50_000)
	if len(near) != 1 || near[0] != r1.ID {
		t.Errorf("Near(berlin) = %v, want [%d]", near, r1.ID)
	}
}

// TestSnapshotRestorePreservesIDSequence: inserts after restore must not
// collide with restored IDs.
func TestSnapshotRestorePreservesIDSequence(t *testing.T) {
	db := fillSnapshotDB(t, 3, 10)
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	rec, err := restored.Insert("Hotels", pxml.ElemText("Name", "new"), 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The new ID must be fresh across all collections.
	for _, coll := range db.Collections() {
		if _, clash := db.Get(coll, rec.ID); clash {
			t.Fatalf("new id %d collides with restored record in %s", rec.ID, coll)
		}
	}
}

// TestRestoreRejectsCorruption: failure injection — every corrupted image
// must be rejected, and a failed restore must leave the target unchanged.
func TestRestoreRejectsCorruption(t *testing.T) {
	db := fillSnapshotDB(t, 11, 8)
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"truncated":        good[:len(good)/2],
		"empty":            "",
		"not xml":          "this is not a snapshot",
		"bad certainty":    strings.Replace(good, `certainty="`, `certainty="7`, 1),
		"bad timestamp":    strings.Replace(good, `updated="`, `updated="yesterday-`, 1),
		"negative id":      strings.Replace(good, `id="1"`, `id="-1"`, 1),
		"duplicate id":     strings.Replace(good, `id="2"`, `id="1"`, 1),
		"broken doc":       strings.Replace(good, "</Rec>", "</Wrong>", 1),
		"out-of-range lat": strings.Replace(good, `lat="`, `lat="555`, 1),
		"partial location": strings.Replace(good, ` lon="`, ` data-lon="`, 1),
	}
	for name, corrupt := range cases {
		target := New()
		sentinel, err := target.Insert("Keep", pxml.ElemText("Name", "sentinel"), 0.5, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := target.Restore(strings.NewReader(corrupt)); err == nil {
			t.Errorf("%s: restore succeeded, want error", name)
			continue
		}
		if _, ok := target.Get("Keep", sentinel.ID); !ok {
			t.Errorf("%s: failed restore mutated the database", name)
		}
	}
}

// TestSnapshotEmptyDB: an empty database round-trips.
func TestSnapshotEmptyDB(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	restored := New()
	if err := restored.Restore(&buf); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if n := len(restored.Collections()); n != 0 {
		t.Errorf("restored %d collections from empty snapshot", n)
	}
}
