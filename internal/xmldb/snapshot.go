package xmldb

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/pxml"
	"repro/internal/uncertain"
)

// Snapshot format: an XML envelope around the collections, each record
// carrying its metadata as attributes and its probabilistic document
// verbatim as inner XML. The format is self-contained — Restore on an
// empty database reproduces the original byte-for-byte on re-Snapshot
// (modulo map iteration, which the sorted collection order removes).

type snapEnvelope struct {
	XMLName     xml.Name         `xml:"xmldb"`
	NextID      int64            `xml:"next-id,attr"`
	Collections []snapCollection `xml:"collection"`
}

type snapCollection struct {
	Name    string       `xml:"name,attr"`
	Records []snapRecord `xml:"record"`
}

type snapRecord struct {
	ID        int64    `xml:"id,attr"`
	Certainty float64  `xml:"certainty,attr"`
	Lat       *float64 `xml:"lat,attr,omitempty"`
	Lon       *float64 `xml:"lon,attr,omitempty"`
	Updated   string   `xml:"updated,attr"`
	Inner     string   `xml:",innerxml"`
}

// Snapshot writes the entire database to w. The snapshot is a consistent
// point-in-time image: the database is read-locked for the duration.
func (db *DB) Snapshot(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()

	env := snapEnvelope{NextID: db.nextID}
	for _, name := range db.collectionNamesLocked() {
		c := db.collections[name]
		sc := snapCollection{Name: name, Records: make([]snapRecord, 0, len(c.order))}
		for _, id := range c.order {
			rec := c.records[id]
			docXML, err := pxml.Marshal(rec.Doc)
			if err != nil {
				return fmt.Errorf("xmldb: snapshot %s/%d: %w", name, id, err)
			}
			sr := snapRecord{
				ID:        rec.ID,
				Certainty: float64(rec.Certainty),
				Updated:   rec.Updated.UTC().Format(time.RFC3339Nano),
				Inner:     docXML,
			}
			if rec.Location != nil {
				lat, lon := rec.Location.Lat, rec.Location.Lon
				sr.Lat, sr.Lon = &lat, &lon
			}
			sc.Records = append(sc.Records, sr)
		}
		env.Collections = append(env.Collections, sc)
	}

	if _, err := io.WriteString(w, xml.Header); err != nil {
		return fmt.Errorf("xmldb: snapshot: %w", err)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(env); err != nil {
		return fmt.Errorf("xmldb: snapshot: %w", err)
	}
	return nil
}

func (db *DB) collectionNamesLocked() []string {
	out := make([]string, 0, len(db.collections))
	for name := range db.collections {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Restore replaces the database contents with the snapshot read from r.
// On any error the database is left unchanged: the snapshot is fully
// validated (document structure, certainty range, coordinates, duplicate
// IDs) before the swap.
func (db *DB) Restore(r io.Reader) error {
	var env snapEnvelope
	if err := xml.NewDecoder(r).Decode(&env); err != nil {
		return fmt.Errorf("xmldb: restore: %w", err)
	}

	staged := make(map[string]*Collection, len(env.Collections))
	maxID := int64(0)
	seen := make(map[int64]bool)
	for _, sc := range env.Collections {
		if sc.Name == "" {
			return fmt.Errorf("xmldb: restore: collection with empty name")
		}
		if _, dup := staged[sc.Name]; dup {
			return fmt.Errorf("xmldb: restore: duplicate collection %q", sc.Name)
		}
		c := &Collection{
			name:    sc.Name,
			records: make(map[int64]*Record, len(sc.Records)),
			spatial: geo.NewRTree[int64](),
		}
		for _, sr := range sc.Records {
			if sr.ID <= 0 {
				return fmt.Errorf("xmldb: restore: %s: invalid record id %d", sc.Name, sr.ID)
			}
			if seen[sr.ID] {
				return fmt.Errorf("xmldb: restore: duplicate record id %d", sr.ID)
			}
			seen[sr.ID] = true
			cf := uncertain.CF(sr.Certainty)
			if err := cf.Validate(); err != nil {
				return fmt.Errorf("xmldb: restore: %s/%d: %w", sc.Name, sr.ID, err)
			}
			doc, err := pxml.Unmarshal(sr.Inner)
			if err != nil {
				return fmt.Errorf("xmldb: restore: %s/%d: %w", sc.Name, sr.ID, err)
			}
			updated, err := time.Parse(time.RFC3339Nano, sr.Updated)
			if err != nil {
				return fmt.Errorf("xmldb: restore: %s/%d: bad timestamp: %w", sc.Name, sr.ID, err)
			}
			rec := &Record{ID: sr.ID, Doc: doc, Certainty: cf, Updated: updated}
			if (sr.Lat == nil) != (sr.Lon == nil) {
				return fmt.Errorf("xmldb: restore: %s/%d: partial location", sc.Name, sr.ID)
			}
			if sr.Lat != nil {
				p, err := geo.NewPoint(*sr.Lat, *sr.Lon)
				if err != nil {
					return fmt.Errorf("xmldb: restore: %s/%d: %w", sc.Name, sr.ID, err)
				}
				rec.Location = &p
				if err := c.spatial.Insert(geo.BBoxOf(p), rec.ID); err != nil {
					//lint:ignore versionbump mutations land in a staged collection that is only installed by the swap below, which bumps
					return fmt.Errorf("xmldb: restore: %s/%d: spatial index: %w", sc.Name, sr.ID, err)
				}
			}
			c.records[rec.ID] = rec
			c.order = append(c.order, rec.ID)
			if rec.ID > maxID {
				maxID = rec.ID
			}
		}
		staged[sc.Name] = c
	}

	nextID := env.NextID
	if nextID <= maxID {
		nextID = maxID + 1
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	db.collections = staged
	db.nextID = nextID
	// A restore replaces everything the database holds; any cached view
	// keyed to an older version must be invalidated.
	db.version.Add(1)
	return nil
}
