// Package xmldb is the paper's Probabilistic Spatial XML Database: named
// collections of probabilistic XML records, each carrying a certainty
// factor assigned by the data-integration service and an optional indexed
// geographic location. A small XQuery-like language (query.go) supports
// the topk/score queries of the paper's QA scenario plus spatial
// predicates backed by an R-tree.
package xmldb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/pxml"
	"repro/internal/uncertain"
)

// Record is one stored probabilistic document.
//
// Records handed out by Get/Each/Batch are immutable snapshots: Update
// replaces the stored *Record rather than mutating it, so a pointer
// obtained under the lock stays safe to read after the lock is released.
// Callers must not mutate a returned record or its document; to change a
// record, Clone its Doc and call Update.
type Record struct {
	ID int64
	// Doc is the probabilistic XML tree; its root tag is the record type.
	Doc *pxml.Node
	// Certainty is the integration-assigned confidence in the record as a
	// whole ("The information contained in this DB is assigned to some
	// certainty factor", paper §Modules).
	Certainty uncertain.CF
	// Location is the record's resolved position, if any; indexed.
	Location *geo.Point
	// Updated is the last modification time.
	Updated time.Time
}

// Collection is a named set of records with a spatial index.
type Collection struct {
	name    string
	records map[int64]*Record
	order   []int64 // insertion order for deterministic scans
	spatial *geo.RTree[int64]
}

// DB is the database: a set of collections. All methods are safe for
// concurrent use.
type DB struct {
	mu          sync.RWMutex
	collections map[string]*Collection
	nextID      int64
	// idStride is the increment between assigned record IDs (default 1).
	// A sharded deployment gives each shard a distinct residue class
	// (SetIDSequence), so IDs stay globally unique across shards and a
	// record's shard is recoverable from its ID alone.
	idStride int64
	clock    func() time.Time
	// version counts successful mutations (insert, update, delete,
	// restore). It is the database's cache-invalidation spine: any reader
	// that records the version before a query and re-checks it later can
	// tell whether the data the query saw may have changed. The bump
	// happens at the END of each mutation, still under the write lock, so
	// a reader that observes version v is guaranteed to see every
	// mutation that produced v once it acquires the read lock.
	version atomic.Int64
	// locDrift counts updates that changed where a record IS relative to
	// where it LIVES: a record gains a location or its coordinates move,
	// while its home shard (fixed at insert) stays put. While it is zero,
	// "a located record within region R lives on a shard that routes
	// region R" holds, and the read path may narrow spatial cache plans
	// and geofenced subscriptions to the covering shards; once it moves,
	// that inference is unsound and the read path degrades to
	// whole-store invalidation. See shard.Store.Drift.
	locDrift atomic.Int64
}

// New returns an empty database.
func New() *DB {
	return &DB{
		collections: make(map[string]*Collection),
		nextID:      1,
		idStride:    1,
		clock:       time.Now,
	}
}

// SetIDSequence makes the database assign record IDs start, start+stride,
// start+2*stride, … instead of the default 1, 2, 3, …. It must be called
// before any record exists: re-seeding a live sequence could re-issue an
// ID. Shard i of an n-shard store uses SetIDSequence(i+1, n), giving every
// shard a disjoint residue class modulo n.
func (db *DB) SetIDSequence(start, stride int64) error {
	if start < 1 || stride < 1 {
		return fmt.Errorf("xmldb: invalid ID sequence (start %d, stride %d)", start, stride)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for name, c := range db.collections {
		if len(c.records) > 0 {
			return fmt.Errorf("xmldb: cannot re-seed ID sequence: collection %q is not empty", name)
		}
	}
	db.nextID = start
	db.idStride = stride
	return nil
}

// AlignIDSequence moves the ID sequence forward onto the residue class
// start mod stride — the smallest value >= the current next ID that the
// sequence start, start+stride, start+2*stride, … contains. Unlike
// SetIDSequence it is valid on a populated database, because it only ever
// skips IDs, never re-issues one; the restore path uses it to re-align a
// shard's sequence after Restore has set the next ID past the restored
// records.
func (db *DB) AlignIDSequence(start, stride int64) error {
	if start < 1 || stride < 1 {
		return fmt.Errorf("xmldb: invalid ID sequence (start %d, stride %d)", start, stride)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	next := start
	if db.nextID > start {
		steps := (db.nextID - start + stride - 1) / stride
		next = start + steps*stride
	}
	db.nextID = next
	db.idStride = stride
	return nil
}

// NextID returns the next record ID the database would assign — IDs
// strictly below it (on this database's residue class) have been
// allocated at some point, so a missing smaller ID names a record that
// existed and was deleted, while an ID at or past it was never issued.
// The feedback subsystem uses this to tell a stale answer from a bogus
// record reference.
func (db *DB) NextID() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.nextID
}

// SetClock overrides the timestamp source (tests).
func (db *DB) SetClock(clock func() time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.clock = clock
}

func (db *DB) collection(name string) *Collection {
	c, ok := db.collections[name]
	if !ok {
		c = &Collection{
			name:    name,
			records: make(map[int64]*Record),
			spatial: geo.NewRTree[int64](),
		}
		db.collections[name] = c
	}
	return c
}

// Collections returns the collection names, sorted.
func (db *DB) Collections() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.collectionNamesLocked()
}

// Collections is Tx's form of DB.Collections.
func (tx *Tx) Collections() []string {
	return tx.db.collectionNamesLocked()
}

// Tx is a view of the database inside a Batch call: the database lock is
// held once for the whole batch, so a run of reads and writes executes
// atomically and amortizes lock acquisition across the batch. A Tx must
// not escape its Batch function, and Batch must not be nested or call the
// locking DB methods (the lock is not reentrant).
type Tx struct {
	db *DB
}

// Batch runs fn with the database exclusively locked, giving it an
// atomic, amortized view for multi-record work — the data-integration
// service's find-duplicate-then-update sequences and bulk insert paths.
// The error from fn is returned verbatim; there is no rollback, so fn is
// responsible for leaving the database consistent on error (matching the
// per-call semantics of the unbatched methods).
func (db *DB) Batch(fn func(*Tx) error) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return fn(&Tx{db: db})
}

// Insert stores a document in the named collection and returns its record.
func (db *DB) Insert(collection string, doc *pxml.Node, certainty uncertain.CF, loc *geo.Point) (*Record, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.insertLocked(collection, doc, certainty, loc)
}

// Insert is Tx's form of DB.Insert.
func (tx *Tx) Insert(collection string, doc *pxml.Node, certainty uncertain.CF, loc *geo.Point) (*Record, error) {
	return tx.db.insertLocked(collection, doc, certainty, loc)
}

func (db *DB) insertLocked(collection string, doc *pxml.Node, certainty uncertain.CF, loc *geo.Point) (*Record, error) {
	if collection == "" {
		return nil, fmt.Errorf("xmldb: empty collection name")
	}
	if doc == nil {
		return nil, fmt.Errorf("xmldb: nil document")
	}
	if err := doc.Validate(); err != nil {
		return nil, fmt.Errorf("xmldb: %w", err)
	}
	if err := certainty.Validate(); err != nil {
		return nil, fmt.Errorf("xmldb: %w", err)
	}
	if loc != nil {
		if err := loc.Validate(); err != nil {
			return nil, fmt.Errorf("xmldb: %w", err)
		}
	}
	c := db.collection(collection)
	rec := &Record{
		ID:        db.nextID,
		Doc:       doc,
		Certainty: certainty,
		Updated:   db.clock(),
	}
	db.nextID += db.idStride
	if loc != nil {
		p := *loc
		rec.Location = &p
		if err := c.spatial.Insert(geo.BBoxOf(p), rec.ID); err != nil {
			// collection() above may have created the (empty) collection:
			// the store changed even though this insert failed, so cached
			// views keyed to the old version must still be invalidated.
			db.version.Add(1)
			return nil, fmt.Errorf("xmldb: spatial index: %w", err)
		}
	}
	c.records[rec.ID] = rec
	c.order = append(c.order, rec.ID)
	db.version.Add(1)
	return rec, nil
}

// Version returns the database's mutation counter: a monotonic value
// that moves on every successful insert, update, delete and restore —
// including certainty decay and feedback applies, which are updates and
// deletes like any other. Reading it is one atomic load; it never
// blocks on the database lock.
func (db *DB) Version() int64 { return db.version.Load() }

// LocationDrift returns the count of updates that gave a record a
// location or moved its coordinates — see the locDrift field.
func (db *DB) LocationDrift() int64 { return db.locDrift.Load() }

// Get returns the record with the given ID from a collection.
func (db *DB) Get(collection string, id int64) (*Record, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.getLocked(collection, id)
}

// Get is Tx's form of DB.Get.
func (tx *Tx) Get(collection string, id int64) (*Record, bool) {
	return tx.db.getLocked(collection, id)
}

func (db *DB) getLocked(collection string, id int64) (*Record, bool) {
	c, ok := db.collections[collection]
	if !ok {
		return nil, false
	}
	r, ok := c.records[id]
	return r, ok
}

// Update replaces a record's document and certainty (and location when
// newLoc is non-nil). The record must exist. The stored record is
// replaced, not mutated, so previously returned records remain valid
// read-only snapshots.
func (db *DB) Update(collection string, id int64, doc *pxml.Node, certainty uncertain.CF, newLoc *geo.Point) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.updateLocked(collection, id, doc, certainty, newLoc)
}

// Update is Tx's form of DB.Update.
func (tx *Tx) Update(collection string, id int64, doc *pxml.Node, certainty uncertain.CF, newLoc *geo.Point) error {
	return tx.db.updateLocked(collection, id, doc, certainty, newLoc)
}

func (db *DB) updateLocked(collection string, id int64, doc *pxml.Node, certainty uncertain.CF, newLoc *geo.Point) error {
	if doc == nil {
		return fmt.Errorf("xmldb: nil document")
	}
	if err := doc.Validate(); err != nil {
		return fmt.Errorf("xmldb: %w", err)
	}
	if err := certainty.Validate(); err != nil {
		return fmt.Errorf("xmldb: %w", err)
	}
	c, ok := db.collections[collection]
	if !ok {
		return fmt.Errorf("xmldb: collection %q not found", collection)
	}
	rec, ok := c.records[id]
	if !ok {
		return fmt.Errorf("xmldb: record %d not found in %q", id, collection)
	}
	next := &Record{
		ID:        id,
		Doc:       doc,
		Certainty: certainty,
		Location:  rec.Location,
		Updated:   db.clock(),
	}
	if newLoc != nil {
		if err := newLoc.Validate(); err != nil {
			return fmt.Errorf("xmldb: %w", err)
		}
		if rec.Location != nil {
			c.spatial.Delete(geo.BBoxOf(*rec.Location), rec.ID)
		}
		p := *newLoc
		next.Location = &p
		if err := c.spatial.Insert(geo.BBoxOf(p), rec.ID); err != nil {
			// The old location was already deleted from the spatial
			// index above; readers must not keep serving cached views
			// of the pre-delete state.
			db.version.Add(1)
			return fmt.Errorf("xmldb: spatial index: %w", err)
		}
		if rec.Location == nil || *rec.Location != p {
			db.locDrift.Add(1)
		}
	}
	c.records[id] = next
	db.version.Add(1)
	return nil
}

// Delete removes a record.
func (db *DB) Delete(collection string, id int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.deleteLocked(collection, id)
}

// Delete is Tx's form of DB.Delete.
func (tx *Tx) Delete(collection string, id int64) error {
	return tx.db.deleteLocked(collection, id)
}

func (db *DB) deleteLocked(collection string, id int64) error {
	c, ok := db.collections[collection]
	if !ok {
		return fmt.Errorf("xmldb: collection %q not found", collection)
	}
	rec, ok := c.records[id]
	if !ok {
		return fmt.Errorf("xmldb: record %d not found in %q", id, collection)
	}
	if rec.Location != nil {
		c.spatial.Delete(geo.BBoxOf(*rec.Location), rec.ID)
	}
	delete(c.records, id)
	for i, oid := range c.order {
		if oid == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	db.version.Add(1)
	return nil
}

// Len returns the number of records in a collection.
func (db *DB) Len(collection string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.lenLocked(collection)
}

// Len is Tx's form of DB.Len.
func (tx *Tx) Len(collection string) int {
	return tx.db.lenLocked(collection)
}

func (db *DB) lenLocked(collection string) int {
	c, ok := db.collections[collection]
	if !ok {
		return 0
	}
	return len(c.records)
}

// Each visits a collection's records in insertion order until fn returns
// false. The callback must not mutate the database.
func (db *DB) Each(collection string, fn func(*Record) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.eachLocked(collection, fn)
}

// Each is Tx's form of DB.Each. Unlike DB.Each, the callback runs under
// the batch's write lock and may stage IDs for later Tx writes, but must
// not call Tx write methods while iterating.
func (tx *Tx) Each(collection string, fn func(*Record) bool) {
	tx.db.eachLocked(collection, fn)
}

func (db *DB) eachLocked(collection string, fn func(*Record) bool) {
	c, ok := db.collections[collection]
	if !ok {
		return
	}
	for _, id := range c.order {
		if !fn(c.records[id]) {
			return
		}
	}
}

// Near returns the IDs of records within radiusMeters of p, nearest first.
func (db *DB) Near(collection string, p geo.Point, radiusMeters float64) []int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.nearLocked(collection, p, radiusMeters)
}

// Near is Tx's form of DB.Near.
func (tx *Tx) Near(collection string, p geo.Point, radiusMeters float64) []int64 {
	return tx.db.nearLocked(collection, p, radiusMeters)
}

func (db *DB) nearLocked(collection string, p geo.Point, radiusMeters float64) []int64 {
	c, ok := db.collections[collection]
	if !ok {
		return nil
	}
	ns := c.spatial.Within(p, radiusMeters)
	out := make([]int64, len(ns))
	for i, n := range ns {
		out[i] = n.Value
	}
	return out
}
