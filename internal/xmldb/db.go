// Package xmldb is the paper's Probabilistic Spatial XML Database: named
// collections of probabilistic XML records, each carrying a certainty
// factor assigned by the data-integration service and an optional indexed
// geographic location. A small XQuery-like language (query.go) supports
// the topk/score queries of the paper's QA scenario plus spatial
// predicates backed by an R-tree.
package xmldb

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/pxml"
	"repro/internal/uncertain"
)

// Record is one stored probabilistic document.
type Record struct {
	ID int64
	// Doc is the probabilistic XML tree; its root tag is the record type.
	Doc *pxml.Node
	// Certainty is the integration-assigned confidence in the record as a
	// whole ("The information contained in this DB is assigned to some
	// certainty factor", paper §Modules).
	Certainty uncertain.CF
	// Location is the record's resolved position, if any; indexed.
	Location *geo.Point
	// Updated is the last modification time.
	Updated time.Time
}

// Collection is a named set of records with a spatial index.
type Collection struct {
	name    string
	records map[int64]*Record
	order   []int64 // insertion order for deterministic scans
	spatial *geo.RTree[int64]
}

// DB is the database: a set of collections. All methods are safe for
// concurrent use.
type DB struct {
	mu          sync.RWMutex
	collections map[string]*Collection
	nextID      int64
	clock       func() time.Time
}

// New returns an empty database.
func New() *DB {
	return &DB{
		collections: make(map[string]*Collection),
		nextID:      1,
		clock:       time.Now,
	}
}

// SetClock overrides the timestamp source (tests).
func (db *DB) SetClock(clock func() time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.clock = clock
}

func (db *DB) collection(name string) *Collection {
	c, ok := db.collections[name]
	if !ok {
		c = &Collection{
			name:    name,
			records: make(map[int64]*Record),
			spatial: geo.NewRTree[int64](),
		}
		db.collections[name] = c
	}
	return c
}

// Collections returns the collection names, sorted.
func (db *DB) Collections() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.collections))
	for name := range db.collections {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Insert stores a document in the named collection and returns its record.
func (db *DB) Insert(collection string, doc *pxml.Node, certainty uncertain.CF, loc *geo.Point) (*Record, error) {
	if collection == "" {
		return nil, fmt.Errorf("xmldb: empty collection name")
	}
	if doc == nil {
		return nil, fmt.Errorf("xmldb: nil document")
	}
	if err := doc.Validate(); err != nil {
		return nil, fmt.Errorf("xmldb: %w", err)
	}
	if err := certainty.Validate(); err != nil {
		return nil, fmt.Errorf("xmldb: %w", err)
	}
	if loc != nil {
		if err := loc.Validate(); err != nil {
			return nil, fmt.Errorf("xmldb: %w", err)
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	c := db.collection(collection)
	rec := &Record{
		ID:        db.nextID,
		Doc:       doc,
		Certainty: certainty,
		Updated:   db.clock(),
	}
	db.nextID++
	if loc != nil {
		p := *loc
		rec.Location = &p
		if err := c.spatial.Insert(geo.BBoxOf(p), rec.ID); err != nil {
			return nil, fmt.Errorf("xmldb: spatial index: %w", err)
		}
	}
	c.records[rec.ID] = rec
	c.order = append(c.order, rec.ID)
	return rec, nil
}

// Get returns the record with the given ID from a collection.
func (db *DB) Get(collection string, id int64) (*Record, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.collections[collection]
	if !ok {
		return nil, false
	}
	r, ok := c.records[id]
	return r, ok
}

// Update replaces a record's document and certainty (and location when
// newLoc is non-nil). The record must exist.
func (db *DB) Update(collection string, id int64, doc *pxml.Node, certainty uncertain.CF, newLoc *geo.Point) error {
	if doc == nil {
		return fmt.Errorf("xmldb: nil document")
	}
	if err := doc.Validate(); err != nil {
		return fmt.Errorf("xmldb: %w", err)
	}
	if err := certainty.Validate(); err != nil {
		return fmt.Errorf("xmldb: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.collections[collection]
	if !ok {
		return fmt.Errorf("xmldb: collection %q not found", collection)
	}
	rec, ok := c.records[id]
	if !ok {
		return fmt.Errorf("xmldb: record %d not found in %q", id, collection)
	}
	if newLoc != nil {
		if err := newLoc.Validate(); err != nil {
			return fmt.Errorf("xmldb: %w", err)
		}
		if rec.Location != nil {
			c.spatial.Delete(geo.BBoxOf(*rec.Location), rec.ID)
		}
		p := *newLoc
		rec.Location = &p
		if err := c.spatial.Insert(geo.BBoxOf(p), rec.ID); err != nil {
			return fmt.Errorf("xmldb: spatial index: %w", err)
		}
	}
	rec.Doc = doc
	rec.Certainty = certainty
	rec.Updated = db.clock()
	return nil
}

// Delete removes a record.
func (db *DB) Delete(collection string, id int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.collections[collection]
	if !ok {
		return fmt.Errorf("xmldb: collection %q not found", collection)
	}
	rec, ok := c.records[id]
	if !ok {
		return fmt.Errorf("xmldb: record %d not found in %q", id, collection)
	}
	if rec.Location != nil {
		c.spatial.Delete(geo.BBoxOf(*rec.Location), rec.ID)
	}
	delete(c.records, id)
	for i, oid := range c.order {
		if oid == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	return nil
}

// Len returns the number of records in a collection.
func (db *DB) Len(collection string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.collections[collection]
	if !ok {
		return 0
	}
	return len(c.records)
}

// Each visits a collection's records in insertion order until fn returns
// false. The callback must not mutate the database.
func (db *DB) Each(collection string, fn func(*Record) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.collections[collection]
	if !ok {
		return
	}
	for _, id := range c.order {
		if !fn(c.records[id]) {
			return
		}
	}
}

// Near returns the IDs of records within radiusMeters of p, nearest first.
func (db *DB) Near(collection string, p geo.Point, radiusMeters float64) []int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.collections[collection]
	if !ok {
		return nil
	}
	ns := c.spatial.Within(p, radiusMeters)
	out := make([]int64, len(ns))
	for i, n := range ns {
		out[i] = n.Value
	}
	return out
}
