package xmldb

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/geo"
	"repro/internal/pxml"
	"repro/internal/uncertain"
)

// Result is one query answer.
type Result struct {
	Record *Record
	// CondP is the probability that the where-clause holds for this
	// record under possible-world semantics (1 when no where-clause).
	CondP float64
	// Score is CondP weighted by the record's integration certainty —
	// the paper's score($x).
	Score float64
}

// Run parses and executes a query string.
func (db *DB) Run(query string) ([]Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return db.Execute(q)
}

// Execute runs a parsed query. When the where-clause is a conjunction
// containing a Near predicate, the spatial index pre-filters candidates;
// otherwise the collection is scanned.
func (db *DB) Execute(q *Query) ([]Result, error) {
	if q == nil {
		return nil, fmt.Errorf("xmldb: nil query")
	}
	var out []Result
	eval := func(rec *Record) error {
		condP := 1.0
		if q.Where != nil {
			p, err := evalExpr(q.Where, rec)
			if err != nil {
				return err
			}
			condP = p
		}
		if condP <= 0 {
			return nil
		}
		score := condP * uncertain.ToProbability(rec.Certainty)
		out = append(out, Result{Record: rec, CondP: condP, Score: score})
		return nil
	}

	// Spatial fast path: a top-level conjunct Near restricts candidates.
	if near, ok := extractNear(q.Where); ok {
		ids := db.Near(q.Collection, geo.Point{Lat: near.Lat, Lon: near.Lon}, near.RadiusMeters)
		for _, id := range ids {
			rec, ok := db.Get(q.Collection, id)
			if !ok {
				continue
			}
			if err := eval(rec); err != nil {
				return nil, err
			}
		}
	} else {
		var evalErr error
		db.Each(q.Collection, func(rec *Record) bool {
			if err := eval(rec); err != nil {
				evalErr = err
				return false
			}
			return true
		})
		if evalErr != nil {
			return nil, evalErr
		}
	}

	if q.OrderByScore {
		sort.SliceStable(out, func(i, j int) bool {
			if out[i].Score != out[j].Score {
				return out[i].Score > out[j].Score
			}
			return out[i].Record.ID < out[j].Record.ID
		})
	}
	if q.TopK > 0 && len(out) > q.TopK {
		out = out[:q.TopK]
	}
	return out, nil
}

// extractNear finds a Near predicate that is a top-level conjunct of the
// where-clause, safe to use as an index pre-filter (near is crisp, so
// records outside the radius have condP = 0 regardless of other
// conjuncts).
func extractNear(e Expr) (Near, bool) {
	switch x := e.(type) {
	case Near:
		return x, true
	case And:
		if n, ok := extractNear(x.L); ok {
			return n, true
		}
		return extractNear(x.R)
	default:
		return Near{}, false
	}
}

// evalExpr computes P(expr holds) for a record, treating sub-conditions on
// distinct fields as independent (the distribution nodes of the model are
// independent by construction).
func evalExpr(e Expr, rec *Record) (float64, error) {
	switch x := e.(type) {
	case Cmp:
		return evalCmp(x, rec)
	case And:
		l, err := evalExpr(x.L, rec)
		if err != nil {
			return 0, err
		}
		r, err := evalExpr(x.R, rec)
		if err != nil {
			return 0, err
		}
		return l * r, nil
	case Or:
		l, err := evalExpr(x.L, rec)
		if err != nil {
			return 0, err
		}
		r, err := evalExpr(x.R, rec)
		if err != nil {
			return 0, err
		}
		return 1 - (1-l)*(1-r), nil
	case Not:
		p, err := evalExpr(x.E, rec)
		if err != nil {
			return 0, err
		}
		return 1 - p, nil
	case Near:
		if rec.Location == nil {
			return 0, nil
		}
		d := rec.Location.DistanceMeters(geo.Point{Lat: x.Lat, Lon: x.Lon})
		if d <= x.RadiusMeters {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("xmldb: unknown expression %T", e)
	}
}

func evalCmp(c Cmp, rec *Record) (float64, error) {
	root := rec.Doc.Tag
	full := root + "/" + c.Path
	switch c.Op {
	case "==":
		if !c.IsNum {
			return pxml.ValueProb(rec.Doc, full, c.Str), nil
		}
		// Numeric equality: sum alternatives parsing to the same number.
		return sumDist(rec.Doc, full, func(v float64) bool { return v == c.Num }), nil
	case "!=":
		if !c.IsNum {
			return pxml.PathProb(rec.Doc, full) - pxml.ValueProb(rec.Doc, full, c.Str), nil
		}
		return sumDist(rec.Doc, full, func(v float64) bool { return v != c.Num }), nil
	case "<", "<=", ">", ">=":
		if !c.IsNum {
			return 0, fmt.Errorf("xmldb: ordering comparison needs a numeric literal, got %q", c.Str)
		}
		pred := map[string]func(float64) bool{
			"<":  func(v float64) bool { return v < c.Num },
			"<=": func(v float64) bool { return v <= c.Num },
			">":  func(v float64) bool { return v > c.Num },
			">=": func(v float64) bool { return v >= c.Num },
		}[c.Op]
		return sumDist(rec.Doc, full, pred), nil
	default:
		return 0, fmt.Errorf("xmldb: unknown operator %q", c.Op)
	}
}

// sumDist sums the marginal probability of the field's alternatives whose
// numeric value satisfies pred. pxml value distributions accumulate
// absolute branch probabilities as masses, so the raw masses are the
// marginals. Non-numeric alternatives contribute nothing; a value capped
// at probability 1 guards against float drift.
func sumDist(doc *pxml.Node, path string, pred func(float64) bool) float64 {
	dist := pxml.ValueDist(doc, path)
	var p float64
	for _, alt := range dist.Masses() {
		v, err := strconv.ParseFloat(alt.Name, 64)
		if err != nil {
			continue
		}
		if pred(v) {
			p += alt.P
		}
	}
	if p > 1 {
		p = 1
	}
	return p
}
