package xmldb

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// The query language reproduces the paper's QA example:
//
//	topk(3, for $x in //Hotels
//	  where $x/City == "Berlin" and $x/User_Attitude == "Positive"
//	  orderby score($x)
//	  return $x)
//
// Grammar (case-insensitive keywords):
//
//	query     := [ "topk(" INT "," ] flwor [ ")" ]
//	flwor     := "for" VAR "in" "//" IDENT [ "where" expr ]
//	             [ "orderby" "score(" VAR ")" ] "return" VAR
//	expr      := orExpr
//	orExpr    := andExpr { "or" andExpr }
//	andExpr   := unary { "and" unary }
//	unary     := [ "not" ] primary
//	primary   := "(" expr ")" | cmp | near
//	cmp       := VAR "/" path OP literal
//	near      := "near(" VAR "/" path? "," NUM "," NUM "," NUM ")"
//	OP        := "==" | "!=" | "<" | "<=" | ">" | ">="
//	literal   := STRING | NUM
//
// near($x, lat, lon, radiusMeters) matches records whose indexed location
// lies within radiusMeters of (lat, lon) — the spatial extension the paper
// asks of the probabilistic XML database.

// Query is a parsed query.
type Query struct {
	TopK         int // 0 means all results
	Var          string
	Collection   string
	Where        Expr // nil means match everything
	OrderByScore bool
}

// Expr is a boolean/probabilistic condition tree.
type Expr interface{ exprNode() }

// Cmp compares a field path against a literal.
type Cmp struct {
	Path  string // relative to the record root, e.g. "City"
	Op    string // == != < <= > >=
	Str   string // literal as written
	Num   float64
	IsNum bool
}

// And is conjunction, Or disjunction, Not negation.
type And struct{ L, R Expr }

// Or is disjunction.
type Or struct{ L, R Expr }

// Not is negation.
type Not struct{ E Expr }

// Near is the spatial predicate near($x, lat, lon, radius).
type Near struct {
	Lat, Lon     float64
	RadiusMeters float64
}

func (Cmp) exprNode()  {}
func (And) exprNode()  {}
func (Or) exprNode()   {}
func (Not) exprNode()  {}
func (Near) exprNode() {}

type parser struct {
	toks []qtok
	pos  int
}

type qtok struct {
	kind string // ident, var, str, num, punct
	text string
}

// Parse parses a query string.
func Parse(q string) (*Query, error) {
	toks, err := lex(q)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	query, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("xmldb: trailing input at %q", p.peek().text)
	}
	return query, nil
}

func lex(s string) ([]qtok, error) {
	var out []qtok
	i := 0
	runes := []rune(s)
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '$':
			j := i + 1
			for j < len(runes) && (unicode.IsLetter(runes[j]) || unicode.IsDigit(runes[j]) || runes[j] == '_') {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("xmldb: bare $ at offset %d", i)
			}
			out = append(out, qtok{"var", string(runes[i:j])})
			i = j
		case r == '"' || r == '\'' || r == '“' || r == '”':
			quote := r
			closer := quote
			if quote == '“' {
				closer = '”'
			}
			j := i + 1
			for j < len(runes) && runes[j] != closer && !(closer == '”' && runes[j] == '"') && !(quote == '"' && runes[j] == '”') {
				j++
			}
			if j >= len(runes) {
				return nil, fmt.Errorf("xmldb: unterminated string at offset %d", i)
			}
			out = append(out, qtok{"str", string(runes[i+1 : j])})
			i = j + 1
		case unicode.IsDigit(r) || (r == '-' && i+1 < len(runes) && unicode.IsDigit(runes[i+1])):
			j := i + 1
			for j < len(runes) && (unicode.IsDigit(runes[j]) || runes[j] == '.') {
				j++
			}
			out = append(out, qtok{"num", string(runes[i:j])})
			i = j
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(runes) && (unicode.IsLetter(runes[j]) || unicode.IsDigit(runes[j]) || runes[j] == '_') {
				j++
			}
			out = append(out, qtok{"ident", string(runes[i:j])})
			i = j
		case strings.ContainsRune("(),/", r):
			out = append(out, qtok{"punct", string(r)})
			i++
		case r == '=' || r == '!' || r == '<' || r == '>':
			j := i + 1
			if j < len(runes) && runes[j] == '=' {
				j++
			}
			out = append(out, qtok{"punct", string(runes[i:j])})
			i = j
		default:
			return nil, fmt.Errorf("xmldb: unexpected character %q at offset %d", r, i)
		}
	}
	return out, nil
}

func (p *parser) peek() qtok {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return qtok{}
}

func (p *parser) next() qtok {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) acceptIdent(word string) bool {
	t := p.peek()
	if t.kind == "ident" && strings.EqualFold(t.text, word) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectIdent(word string) error {
	if !p.acceptIdent(word) {
		return fmt.Errorf("xmldb: expected %q, got %q", word, p.peek().text)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	t := p.peek()
	if t.kind == "punct" && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return fmt.Errorf("xmldb: expected %q, got %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if p.acceptIdent("topk") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != "num" {
			return nil, fmt.Errorf("xmldb: topk expects a count, got %q", t.text)
		}
		k, err := strconv.Atoi(t.text)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("xmldb: invalid topk count %q", t.text)
		}
		q.TopK = k
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if err := p.parseFLWOR(q); err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return q, nil
	}
	if err := p.parseFLWOR(q); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) parseFLWOR(q *Query) error {
	if err := p.expectIdent("for"); err != nil {
		return err
	}
	v := p.next()
	if v.kind != "var" {
		return fmt.Errorf("xmldb: expected variable, got %q", v.text)
	}
	q.Var = v.text
	if err := p.expectIdent("in"); err != nil {
		return err
	}
	if err := p.expectPunct("/"); err != nil {
		return err
	}
	if err := p.expectPunct("/"); err != nil {
		return err
	}
	coll := p.next()
	if coll.kind != "ident" {
		return fmt.Errorf("xmldb: expected collection name, got %q", coll.text)
	}
	q.Collection = coll.text
	if p.acceptIdent("where") {
		e, err := p.parseOr(q.Var)
		if err != nil {
			return err
		}
		q.Where = e
	}
	if p.acceptIdent("orderby") {
		if err := p.expectIdent("score"); err != nil {
			return err
		}
		if err := p.expectPunct("("); err != nil {
			return err
		}
		sv := p.next()
		if sv.kind != "var" || sv.text != q.Var {
			return fmt.Errorf("xmldb: score() expects %s, got %q", q.Var, sv.text)
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		q.OrderByScore = true
	}
	if err := p.expectIdent("return"); err != nil {
		return err
	}
	rv := p.next()
	if rv.kind != "var" || rv.text != q.Var {
		return fmt.Errorf("xmldb: return expects %s, got %q", q.Var, rv.text)
	}
	return nil
}

func (p *parser) parseOr(v string) (Expr, error) {
	l, err := p.parseAnd(v)
	if err != nil {
		return nil, err
	}
	for p.acceptIdent("or") {
		r, err := p.parseAnd(v)
		if err != nil {
			return nil, err
		}
		l = Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd(v string) (Expr, error) {
	l, err := p.parseUnary(v)
	if err != nil {
		return nil, err
	}
	for p.acceptIdent("and") {
		r, err := p.parseUnary(v)
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary(v string) (Expr, error) {
	if p.acceptIdent("not") {
		e, err := p.parsePrimary(v)
		if err != nil {
			return nil, err
		}
		return Not{E: e}, nil
	}
	return p.parsePrimary(v)
}

func (p *parser) parsePrimary(v string) (Expr, error) {
	if p.acceptPunct("(") {
		e, err := p.parseOr(v)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	if p.acceptIdent("near") {
		return p.parseNear(v)
	}
	// Comparison: $x/Path op literal.
	t := p.next()
	if t.kind != "var" || t.text != v {
		return nil, fmt.Errorf("xmldb: expected %s, got %q", v, t.text)
	}
	if err := p.expectPunct("/"); err != nil {
		return nil, err
	}
	var segs []string
	for {
		seg := p.next()
		if seg.kind != "ident" {
			return nil, fmt.Errorf("xmldb: expected path segment, got %q", seg.text)
		}
		segs = append(segs, seg.text)
		if !p.acceptPunct("/") {
			break
		}
	}
	op := p.next()
	switch op.text {
	case "==", "!=", "<", "<=", ">", ">=":
	case "=":
		op.text = "=="
	default:
		return nil, fmt.Errorf("xmldb: expected comparison operator, got %q", op.text)
	}
	lit := p.next()
	cmp := Cmp{Path: strings.Join(segs, "/"), Op: op.text}
	switch lit.kind {
	case "str":
		cmp.Str = lit.text
	case "num":
		n, err := strconv.ParseFloat(lit.text, 64)
		if err != nil {
			return nil, fmt.Errorf("xmldb: bad number %q", lit.text)
		}
		cmp.Num = n
		cmp.IsNum = true
		cmp.Str = lit.text
	default:
		return nil, fmt.Errorf("xmldb: expected literal, got %q", lit.text)
	}
	if !cmp.IsNum && cmp.Op != "==" && cmp.Op != "!=" {
		return nil, fmt.Errorf("xmldb: operator %q needs a numeric literal, got %q", cmp.Op, cmp.Str)
	}
	return cmp, nil
}

func (p *parser) parseNear(v string) (Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != "var" || t.text != v {
		return nil, fmt.Errorf("xmldb: near() expects %s, got %q", v, t.text)
	}
	var vals [3]float64
	for i := 0; i < 3; i++ {
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		n := p.next()
		if n.kind != "num" {
			return nil, fmt.Errorf("xmldb: near() expects a number, got %q", n.text)
		}
		f, err := strconv.ParseFloat(n.text, 64)
		if err != nil {
			return nil, err
		}
		vals[i] = f
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if vals[2] < 0 {
		return nil, fmt.Errorf("xmldb: negative radius %v", vals[2])
	}
	return Near{Lat: vals[0], Lon: vals[1], RadiusMeters: vals[2]}, nil
}
