// Package pxml implements probabilistic XML trees in the style the paper
// builds on (ProTDB/PEPX lineage, reference [26]): ordinary element and
// text nodes interleaved with distribution nodes. A mux node chooses at
// most one of its children (probabilities sum to <= 1; any remainder is
// the "none" outcome); an ind node includes each child independently with
// its own probability. A probabilistic document denotes a distribution
// over ordinary XML documents — its possible worlds — and queries return
// marginal probabilities over that distribution.
package pxml

import (
	"fmt"
	"math"
	"strings"
)

// Kind discriminates node types.
type Kind int

// Node kinds.
const (
	KindElem Kind = iota // ordinary element, always present given parent
	KindText             // text leaf
	KindMux              // mutually exclusive distribution node
	KindInd              // independent distribution node
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindElem:
		return "elem"
	case KindText:
		return "text"
	case KindMux:
		return "mux"
	case KindInd:
		return "ind"
	default:
		return "unknown"
	}
}

// Node is one node of a probabilistic XML tree.
type Node struct {
	Kind Kind
	// Tag is the element name (KindElem only).
	Tag string
	// Text is the value of a text leaf (KindText only).
	Text string
	// Prob is the probability of this node's edge from its distribution-
	// node parent. It is meaningful only when the parent is KindMux or
	// KindInd; otherwise 1.
	Prob float64
	// Children, in document order.
	Children []*Node
}

// Elem returns a new element node.
func Elem(tag string, children ...*Node) *Node {
	return &Node{Kind: KindElem, Tag: tag, Prob: 1, Children: children}
}

// Text returns a new text leaf.
func Text(value string) *Node {
	return &Node{Kind: KindText, Text: value, Prob: 1}
}

// ElemText returns <tag>value</tag>.
func ElemText(tag, value string) *Node {
	return Elem(tag, Text(value))
}

// Mux returns a mutually-exclusive distribution node over the given
// children; each child's Prob must already be set.
func Mux(children ...*Node) *Node {
	return &Node{Kind: KindMux, Prob: 1, Children: children}
}

// Ind returns an independent distribution node over the given children.
func Ind(children ...*Node) *Node {
	return &Node{Kind: KindInd, Prob: 1, Children: children}
}

// WithProb sets the node's edge probability and returns it (builder
// style): pxml.ElemText("Country", "Germany").WithProb(0.8).
func (n *Node) WithProb(p float64) *Node {
	n.Prob = p
	return n
}

// Add appends children and returns n.
func (n *Node) Add(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// Validate checks structural invariants recursively:
//   - element tags non-empty; text leaves childless
//   - probabilities in [0, 1]; mux children sum to <= 1 (+epsilon)
//   - distribution nodes are not leaves of the document root chain
func (n *Node) Validate() error {
	return n.validate(true)
}

func (n *Node) validate(isRoot bool) error {
	if math.IsNaN(n.Prob) || n.Prob < 0 || n.Prob > 1+1e-9 {
		return fmt.Errorf("pxml: probability %v out of range", n.Prob)
	}
	switch n.Kind {
	case KindElem:
		if strings.TrimSpace(n.Tag) == "" {
			return fmt.Errorf("pxml: element with empty tag")
		}
	case KindText:
		if len(n.Children) != 0 {
			return fmt.Errorf("pxml: text node with children")
		}
	case KindMux:
		var sum float64
		for _, c := range n.Children {
			sum += c.Prob
		}
		if sum > 1+1e-9 {
			return fmt.Errorf("pxml: mux children probabilities sum to %v > 1", sum)
		}
		if isRoot {
			return fmt.Errorf("pxml: distribution node cannot be the root")
		}
	case KindInd:
		if isRoot {
			return fmt.Errorf("pxml: distribution node cannot be the root")
		}
	default:
		return fmt.Errorf("pxml: unknown node kind %d", n.Kind)
	}
	for _, c := range n.Children {
		if c == nil {
			return fmt.Errorf("pxml: nil child under %s", n.Tag)
		}
		if err := c.validate(false); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy.
func (n *Node) Clone() *Node {
	c := &Node{Kind: n.Kind, Tag: n.Tag, Text: n.Text, Prob: n.Prob}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// FirstChild returns the first KindElem child with the given tag that is a
// direct child (looking through distribution nodes), together with the
// probability of the edge path to it.
func (n *Node) FirstChild(tag string) (*Node, float64) {
	for _, c := range n.Children {
		switch c.Kind {
		case KindElem:
			if c.Tag == tag {
				return c, 1
			}
		case KindMux, KindInd:
			for _, gc := range c.Children {
				if gc.Kind == KindElem && gc.Tag == tag {
					return gc, gc.Prob
				}
			}
		}
	}
	return nil, 0
}

// TextContent concatenates the text leaves directly under n (certain
// children only).
func (n *Node) TextContent() string {
	var sb strings.Builder
	for _, c := range n.Children {
		if c.Kind == KindText {
			sb.WriteString(c.Text)
		}
	}
	return sb.String()
}

// IsDeterministic reports whether the subtree contains no distribution
// nodes.
func (n *Node) IsDeterministic() bool {
	if n.Kind == KindMux || n.Kind == KindInd {
		return false
	}
	for _, c := range n.Children {
		if !c.IsDeterministic() {
			return false
		}
	}
	return true
}

// CountNodes returns the subtree size including n.
func (n *Node) CountNodes() int {
	total := 1
	for _, c := range n.Children {
		total += c.CountNodes()
	}
	return total
}
