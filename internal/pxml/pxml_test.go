package pxml

import (
	"math"
	"testing"
)

// hotelDoc builds the paper's Template 1 as a probabilistic document:
// hotel "Axel Hotel" in city Berlin, Country P(Germany)=0.7 > P(USA)=0.3,
// attitude P(Positive)=0.8 > P(Negative)=0.2.
func hotelDoc() *Node {
	return Elem("Hotel",
		ElemText("Hotel_Name", "Axel Hotel"),
		ElemText("City", "Berlin"),
		Elem("Country", Mux(
			Text("Germany").WithProb(0.7),
			Text("USA").WithProb(0.3),
		)),
		Elem("User_Attitude", Mux(
			Text("Positive").WithProb(0.8),
			Text("Negative").WithProb(0.2),
		)),
	)
}

func TestValidate(t *testing.T) {
	if err := hotelDoc().Validate(); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	bad := Elem("X", Elem("Y", Mux(Text("a").WithProb(0.7), Text("b").WithProb(0.5))))
	if err := bad.Validate(); err == nil {
		t.Error("mux sum > 1 accepted")
	}
	if err := (&Node{Kind: KindElem, Tag: "", Prob: 1}).Validate(); err == nil {
		t.Error("empty tag accepted")
	}
	if err := Mux().Validate(); err == nil {
		t.Error("distribution root accepted")
	}
	if err := (&Node{Kind: KindElem, Tag: "x", Prob: 1.5}).Validate(); err == nil {
		t.Error("probability > 1 accepted")
	}
	if err := (&Node{Kind: KindElem, Tag: "x", Prob: math.NaN()}).Validate(); err == nil {
		t.Error("NaN probability accepted")
	}
	withNil := Elem("x")
	withNil.Children = append(withNil.Children, nil)
	if err := withNil.Validate(); err == nil {
		t.Error("nil child accepted")
	}
}

func TestClone(t *testing.T) {
	d := hotelDoc()
	c := d.Clone()
	c.Children[0].Children[0].Text = "Changed"
	if d.Children[0].Children[0].Text != "Axel Hotel" {
		t.Error("clone shares structure with original")
	}
	if c.CountNodes() != d.CountNodes() {
		t.Error("clone size differs")
	}
}

func TestFirstChildAndText(t *testing.T) {
	d := hotelDoc()
	name, p := d.FirstChild("Hotel_Name")
	if name == nil || p != 1 {
		t.Fatalf("FirstChild(Hotel_Name) = %v, %v", name, p)
	}
	if name.TextContent() != "Axel Hotel" {
		t.Errorf("text = %q", name.TextContent())
	}
	if n, _ := d.FirstChild("Nope"); n != nil {
		t.Error("found nonexistent child")
	}
}

func TestIsDeterministic(t *testing.T) {
	if hotelDoc().IsDeterministic() {
		t.Error("probabilistic doc reported deterministic")
	}
	if !Elem("a", ElemText("b", "c")).IsDeterministic() {
		t.Error("plain doc reported probabilistic")
	}
}

func TestEnumerateWorldsSumToOne(t *testing.T) {
	worlds, err := EnumerateWorlds(hotelDoc(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// 2 countries x 2 attitudes = 4 worlds.
	if len(worlds) != 4 {
		t.Fatalf("got %d worlds, want 4", len(worlds))
	}
	var sum float64
	for _, w := range worlds {
		if w.P <= 0 || w.P > 1 {
			t.Errorf("world probability %v", w.P)
		}
		if w.Doc == nil {
			t.Error("nil world doc")
			continue
		}
		if !w.Doc.IsDeterministic() {
			t.Error("world doc still probabilistic")
		}
		sum += w.P
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("world probabilities sum to %v", sum)
	}
	// Sorted by decreasing probability; top world = Germany+Positive = 0.56.
	if math.Abs(worlds[0].P-0.56) > 1e-9 {
		t.Errorf("top world P = %v, want 0.56", worlds[0].P)
	}
}

func TestEnumerateWorldsMuxRemainder(t *testing.T) {
	// Mux summing to 0.9 leaves a 0.1 "value absent" world.
	d := Elem("Place", Elem("Country", Mux(
		Text("Germany").WithProb(0.6),
		Text("USA").WithProb(0.3),
	)))
	worlds, err := EnumerateWorlds(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds) != 3 {
		t.Fatalf("got %d worlds, want 3", len(worlds))
	}
	var sum float64
	for _, w := range worlds {
		sum += w.P
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("worlds sum to %v", sum)
	}
}

func TestEnumerateWorldsInd(t *testing.T) {
	// Two independent optional amenities: 4 worlds.
	d := Elem("Hotel", Ind(
		ElemText("Pool", "yes").WithProb(0.5),
		ElemText("Spa", "yes").WithProb(0.4),
	))
	worlds, err := EnumerateWorlds(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds) != 4 {
		t.Fatalf("got %d worlds, want 4", len(worlds))
	}
	var sum float64
	for _, w := range worlds {
		sum += w.P
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("worlds sum to %v", sum)
	}
}

func TestEnumerateWorldsLimit(t *testing.T) {
	// 2^20 worlds exceeds a limit of 1000.
	ind := Ind()
	for i := 0; i < 20; i++ {
		ind.Add(ElemText("Opt", "x").WithProb(0.5))
	}
	d := Elem("Big", ind)
	if _, err := EnumerateWorlds(d, 1000); err == nil {
		t.Error("limit not enforced")
	}
}

func TestWorldCount(t *testing.T) {
	if got := WorldCount(hotelDoc()); got != 4 {
		t.Errorf("WorldCount = %d, want 4", got)
	}
	d := Elem("Place", Elem("Country", Mux(Text("a").WithProb(0.5))))
	if got := WorldCount(d); got != 2 {
		t.Errorf("WorldCount with remainder = %d, want 2", got)
	}
}

func TestPathProb(t *testing.T) {
	d := hotelDoc()
	if p := PathProb(d, "Hotel/Hotel_Name"); p != 1 {
		t.Errorf("certain path P = %v", p)
	}
	if p := PathProb(d, "Hotel/Country"); p != 1 {
		t.Errorf("Country element P = %v", p)
	}
	if p := PathProb(d, "Hotel/Nope"); p != 0 {
		t.Errorf("missing path P = %v", p)
	}
	if p := PathProb(d, "Wrong/Hotel_Name"); p != 0 {
		t.Errorf("wrong root P = %v", p)
	}
	if p := PathProb(d, ""); p != 0 {
		t.Errorf("empty path P = %v", p)
	}
}

func TestValueProb(t *testing.T) {
	d := hotelDoc()
	if p := ValueProb(d, "Hotel/Country", "Germany"); math.Abs(p-0.7) > 1e-9 {
		t.Errorf("P(Germany) = %v, want 0.7", p)
	}
	if p := ValueProb(d, "Hotel/Country", "USA"); math.Abs(p-0.3) > 1e-9 {
		t.Errorf("P(USA) = %v, want 0.3", p)
	}
	if p := ValueProb(d, "Hotel/Country", "France"); p != 0 {
		t.Errorf("P(France) = %v, want 0", p)
	}
	if p := ValueProb(d, "Hotel/City", "Berlin"); p != 1 {
		t.Errorf("P(City=Berlin) = %v, want 1", p)
	}
	if p := ValueProb(d, "Hotel/City", "Paris"); p != 0 {
		t.Errorf("P(City=Paris) = %v, want 0", p)
	}
}

func TestValueProbMatchesWorldEnumeration(t *testing.T) {
	// The marginal computed directly must equal the sum over worlds —
	// the core correctness property of the query evaluator (E10).
	d := hotelDoc()
	worlds, err := EnumerateWorlds(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ path, value string }{
		{"Hotel/Country", "Germany"},
		{"Hotel/Country", "USA"},
		{"Hotel/User_Attitude", "Positive"},
		{"Hotel/City", "Berlin"},
		{"Hotel/City", "Nowhere"},
	}
	for _, c := range cases {
		var fromWorlds float64
		for _, w := range worlds {
			if w.Doc == nil {
				continue
			}
			if ValueProb(w.Doc, c.path, c.value) == 1 {
				fromWorlds += w.P
			}
		}
		direct := ValueProb(d, c.path, c.value)
		if math.Abs(direct-fromWorlds) > 1e-9 {
			t.Errorf("%s=%s: direct %v vs worlds %v", c.path, c.value, direct, fromWorlds)
		}
	}
}

func TestValueProbIndependentCombination(t *testing.T) {
	// Two independent chances to have a Pool: P = 1-(1-0.5)(1-0.4) = 0.7.
	d := Elem("Hotel",
		Ind(ElemText("Pool", "yes").WithProb(0.5)),
		Ind(ElemText("Pool", "yes").WithProb(0.4)),
	)
	if p := ValueProb(d, "Hotel/Pool", "yes"); math.Abs(p-0.7) > 1e-9 {
		t.Errorf("independent combination = %v, want 0.7", p)
	}
}

func TestValueDist(t *testing.T) {
	d := hotelDoc()
	dist := ValueDist(d, "Hotel/Country")
	alts := dist.Normalized()
	if len(alts) != 2 {
		t.Fatalf("alternatives = %v", alts)
	}
	if alts[0].Name != "Germany" || math.Abs(alts[0].P-0.7) > 1e-9 {
		t.Errorf("top alternative = %+v", alts[0])
	}
	// Missing path yields empty dist.
	if ValueDist(d, "Hotel/Nope").Len() != 0 {
		t.Error("missing path produced alternatives")
	}
}

func TestFindAll(t *testing.T) {
	d := Elem("Hotels",
		Elem("Hotel", ElemText("Name", "A")),
		Elem("Hotel", ElemText("Name", "B")),
		Mux(Elem("Hotel", ElemText("Name", "C")).WithProb(0.4)),
	)
	ms := FindAll(d, "Hotels/Hotel")
	if len(ms) != 3 {
		t.Fatalf("matches = %d", len(ms))
	}
	if ms[0].P != 1 || ms[1].P != 1 {
		t.Error("certain matches lost probability")
	}
	if math.Abs(ms[2].P-0.4) > 1e-9 {
		t.Errorf("mux match P = %v", ms[2].P)
	}
}

func TestNestedDistributionPath(t *testing.T) {
	// Nested uncertainty: hotel exists with p=0.9; its country is Germany
	// with p=0.7 given existence. P(Country=Germany) = 0.63.
	d := Elem("Hotels", Mux(
		Elem("Hotel",
			Elem("Country", Mux(Text("Germany").WithProb(0.7))),
		).WithProb(0.9),
	))
	if p := ValueProb(d, "Hotels/Hotel/Country", "Germany"); math.Abs(p-0.63) > 1e-9 {
		t.Errorf("nested P = %v, want 0.63", p)
	}
	// Cross-check with world enumeration.
	worlds, err := EnumerateWorlds(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	var fromWorlds float64
	for _, w := range worlds {
		if w.Doc != nil && ValueProb(w.Doc, "Hotels/Hotel/Country", "Germany") == 1 {
			fromWorlds += w.P
		}
	}
	if math.Abs(fromWorlds-0.63) > 1e-9 {
		t.Errorf("world sum = %v, want 0.63", fromWorlds)
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{KindElem, KindText, KindMux, KindInd, Kind(99)} {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", k)
		}
	}
}
