package pxml

import (
	"fmt"
	"sort"
)

// World is one possible deterministic document with its probability.
type World struct {
	Doc *Node // deterministic tree (no distribution nodes); nil for the
	// world where the root's existence itself was resolved away
	P float64
}

// DefaultWorldLimit bounds possible-world enumeration; beyond it,
// EnumerateWorlds returns an error rather than exploding.
const DefaultWorldLimit = 1 << 16

// EnumerateWorlds expands a probabilistic document into its possible
// worlds. Worlds with probability 0 are dropped. The returned worlds'
// probabilities sum to 1 (within floating error). limit <= 0 uses
// DefaultWorldLimit.
func EnumerateWorlds(doc *Node, limit int) ([]World, error) {
	if limit <= 0 {
		limit = DefaultWorldLimit
	}
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	worlds, err := expand(doc, limit)
	if err != nil {
		return nil, err
	}
	// Deterministic output order: by decreasing probability, then by
	// serialised form length (cheap stable-ish tiebreak).
	sort.SliceStable(worlds, func(i, j int) bool { return worlds[i].P > worlds[j].P })
	return worlds, nil
}

// expand returns the worlds of the subtree rooted at n. For distribution
// nodes the "world doc" may be a special nil marker meaning "this subtree
// contributes no node".
type subWorld struct {
	nodes []*Node // contributed nodes (0 or more, in order)
	p     float64
}

func expand(n *Node, limit int) ([]World, error) {
	subs, err := expandNode(n, limit)
	if err != nil {
		return nil, err
	}
	out := make([]World, 0, len(subs))
	for _, s := range subs {
		if s.p == 0 {
			continue
		}
		switch len(s.nodes) {
		case 0:
			out = append(out, World{Doc: nil, P: s.p})
		case 1:
			out = append(out, World{Doc: s.nodes[0], P: s.p})
		default:
			return nil, fmt.Errorf("pxml: root expanded to %d nodes", len(s.nodes))
		}
	}
	return out, nil
}

// expandNode returns all deterministic materialisations of the subtree.
func expandNode(n *Node, limit int) ([]subWorld, error) {
	switch n.Kind {
	case KindText:
		return []subWorld{{nodes: []*Node{Text(n.Text)}, p: 1}}, nil
	case KindElem:
		childWorlds, err := expandChildren(n.Children, limit)
		if err != nil {
			return nil, err
		}
		out := make([]subWorld, 0, len(childWorlds))
		for _, cw := range childWorlds {
			e := &Node{Kind: KindElem, Tag: n.Tag, Prob: 1, Children: cw.nodes}
			out = append(out, subWorld{nodes: []*Node{e}, p: cw.p})
		}
		return out, nil
	case KindMux:
		// Exactly one child (or none, with leftover probability).
		var out []subWorld
		var sum float64
		for _, c := range n.Children {
			sum += c.Prob
			cws, err := expandNode(c, limit)
			if err != nil {
				return nil, err
			}
			for _, cw := range cws {
				out = append(out, subWorld{nodes: cw.nodes, p: c.Prob * cw.p})
			}
			if len(out) > limit {
				return nil, fmt.Errorf("pxml: world count exceeds limit %d", limit)
			}
		}
		if rest := 1 - sum; rest > 1e-12 {
			out = append(out, subWorld{nodes: nil, p: rest})
		}
		return out, nil
	case KindInd:
		// Cross product of (include child with p, exclude with 1-p).
		acc := []subWorld{{nodes: nil, p: 1}}
		for _, c := range n.Children {
			cws, err := expandNode(c, limit)
			if err != nil {
				return nil, err
			}
			var next []subWorld
			for _, a := range acc {
				// Exclude.
				if 1-c.Prob > 1e-12 {
					next = append(next, subWorld{nodes: a.nodes, p: a.p * (1 - c.Prob)})
				}
				// Include, in each materialisation.
				for _, cw := range cws {
					nodes := append(append([]*Node(nil), a.nodes...), cw.nodes...)
					next = append(next, subWorld{nodes: nodes, p: a.p * c.Prob * cw.p})
				}
				if len(next) > limit {
					return nil, fmt.Errorf("pxml: world count exceeds limit %d", limit)
				}
			}
			acc = next
		}
		return acc, nil
	default:
		return nil, fmt.Errorf("pxml: unknown node kind %d", n.Kind)
	}
}

// expandChildren expands an ordered child list into combined materialised
// child sequences.
func expandChildren(children []*Node, limit int) ([]subWorld, error) {
	acc := []subWorld{{nodes: nil, p: 1}}
	for _, c := range children {
		cws, err := expandNode(c, limit)
		if err != nil {
			return nil, err
		}
		var next []subWorld
		for _, a := range acc {
			for _, cw := range cws {
				nodes := append(append([]*Node(nil), a.nodes...), cw.nodes...)
				next = append(next, subWorld{nodes: nodes, p: a.p * cw.p})
			}
			if len(next) > limit {
				return nil, fmt.Errorf("pxml: world count exceeds limit %d", limit)
			}
		}
		acc = next
	}
	return acc, nil
}

// WorldCount returns the number of possible worlds without materialising
// them (probability-0 pruning not applied).
func WorldCount(n *Node) int {
	switch n.Kind {
	case KindText:
		return 1
	case KindElem:
		total := 1
		for _, c := range n.Children {
			total *= WorldCount(c)
		}
		return total
	case KindMux:
		total := 0
		var sum float64
		for _, c := range n.Children {
			total += WorldCount(c)
			sum += c.Prob
		}
		if 1-sum > 1e-12 {
			total++ // the "none" world
		}
		return total
	case KindInd:
		total := 1
		for _, c := range n.Children {
			total *= WorldCount(c) + 1 // include-in-each-way or exclude
		}
		return total
	default:
		return 0
	}
}
