package pxml

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Serialisation renders distribution nodes as <p:mux> / <p:ind> elements
// whose children carry p="…" attributes, a common concrete syntax for
// probabilistic XML. Round-tripping Marshal → Unmarshal is lossless.

const (
	muxTag  = "p:mux"
	indTag  = "p:ind"
	probKey = "p"
)

// Marshal renders the tree as indented XML. The root must be an
// element or distribution node: a bare text root would render as
// character data outside any element, a document Unmarshal cannot
// read back.
func Marshal(n *Node) (string, error) {
	if err := n.Validate(); err != nil {
		return "", err
	}
	if n.Kind == KindText {
		return "", fmt.Errorf("pxml: text node cannot be the document root")
	}
	var sb strings.Builder
	enc := xml.NewEncoder(&sb)
	enc.Indent("", "  ")
	if err := encodeNode(enc, n, false); err != nil {
		return "", err
	}
	if err := enc.Flush(); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func encodeNode(enc *xml.Encoder, n *Node, underDist bool) error {
	switch n.Kind {
	case KindText:
		if underDist {
			// A bare text alternative needs a wrapper carrying its
			// probability.
			start := xml.StartElement{
				Name: xml.Name{Local: "p:text"},
				Attr: []xml.Attr{probAttr(n.Prob)},
			}
			if err := enc.EncodeToken(start); err != nil {
				return err
			}
			if err := enc.EncodeToken(xml.CharData(n.Text)); err != nil {
				return err
			}
			return enc.EncodeToken(start.End())
		}
		return enc.EncodeToken(xml.CharData(n.Text))
	case KindElem:
		start := xml.StartElement{Name: xml.Name{Local: n.Tag}}
		if underDist {
			start.Attr = append(start.Attr, probAttr(n.Prob))
		}
		if err := enc.EncodeToken(start); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := encodeNode(enc, c, false); err != nil {
				return err
			}
		}
		return enc.EncodeToken(start.End())
	case KindMux, KindInd:
		tag := muxTag
		if n.Kind == KindInd {
			tag = indTag
		}
		start := xml.StartElement{Name: xml.Name{Local: tag}}
		if err := enc.EncodeToken(start); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := encodeNode(enc, c, true); err != nil {
				return err
			}
		}
		return enc.EncodeToken(start.End())
	default:
		return fmt.Errorf("pxml: cannot encode node kind %d", n.Kind)
	}
}

func probAttr(p float64) xml.Attr {
	return xml.Attr{
		Name:  xml.Name{Local: probKey},
		Value: strconv.FormatFloat(p, 'g', -1, 64),
	}
}

// Unmarshal parses XML produced by Marshal (or hand-written in the same
// dialect) back into a probabilistic tree.
func Unmarshal(s string) (*Node, error) {
	dec := xml.NewDecoder(strings.NewReader(s))
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("pxml: no root element")
		}
		if err != nil {
			return nil, fmt.Errorf("pxml: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		n, err := decodeElement(dec, start)
		if err != nil {
			return nil, err
		}
		if n.Kind == KindText {
			// A <p:text> wrapper is only meaningful as a distribution
			// alternative; as the root it would round-trip to a
			// rootless document.
			return nil, fmt.Errorf("pxml: text node cannot be the document root")
		}
		if err := n.Validate(); err != nil {
			return nil, err
		}
		return n, nil
	}
}

func decodeElement(dec *xml.Decoder, start xml.StartElement) (*Node, error) {
	// Go's decoder maps the undeclared "p:" prefix into Name.Space.
	name := start.Name.Local
	if start.Name.Space == "p" {
		name = "p:" + name
	}
	var n *Node
	switch name {
	case muxTag:
		n = Mux()
	case indTag:
		n = Ind()
	case "p:text":
		n = Text("")
	default:
		n = Elem(start.Name.Local)
	}
	n.Prob = 1
	for _, a := range start.Attr {
		if a.Name.Local == probKey {
			p, err := strconv.ParseFloat(a.Value, 64)
			if err != nil {
				return nil, fmt.Errorf("pxml: bad probability %q: %w", a.Value, err)
			}
			n.Prob = p
		}
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("pxml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			child, err := decodeElement(dec, t)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, child)
		case xml.CharData:
			text := strings.TrimSpace(string(t))
			if text == "" {
				break
			}
			if n.Kind == KindText {
				n.Text += text
			} else {
				n.Children = append(n.Children, Text(text))
			}
		case xml.EndElement:
			return n, nil
		}
	}
}
