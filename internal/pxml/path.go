package pxml

import (
	"strings"

	"repro/internal/uncertain"
)

// Path queries compute marginal probabilities directly on the
// probabilistic tree, without enumerating worlds. Independence of sibling
// distribution nodes (the model's defining property) makes the recursion
// exact: P(path) under an ind node combines by inclusion-exclusion,
// under a mux node by summation.

// PathProb returns the probability that the slash-separated element path
// (e.g. "Hotels/Hotel/City") exists in a random world of doc. The first
// segment must match the root element.
func PathProb(doc *Node, path string) float64 {
	segs := splitPath(path)
	if len(segs) == 0 {
		return 0
	}
	if doc.Kind != KindElem || doc.Tag != segs[0] {
		return 0
	}
	return descend(doc, segs[1:], "")
}

// ValueProb returns the probability that the element path exists AND its
// text content equals value.
func ValueProb(doc *Node, path, value string) float64 {
	segs := splitPath(path)
	if len(segs) == 0 {
		return 0
	}
	if doc.Kind != KindElem || doc.Tag != segs[0] {
		return 0
	}
	return descend(doc, segs[1:], value)
}

// descend computes the probability that, under element n (assumed
// present), the remaining path exists (and, when wantValue != "", its text
// equals wantValue).
func descend(n *Node, segs []string, wantValue string) float64 {
	if len(segs) == 0 {
		if wantValue == "" {
			return 1
		}
		return textEqualsProb(n, wantValue)
	}
	return childrenMatchProb(n.Children, segs, wantValue)
}

// childrenMatchProb computes the probability that at least one child
// branch satisfies the remaining path. Plain element children and ind
// children are independent; mux children are exclusive.
func childrenMatchProb(children []*Node, segs []string, wantValue string) float64 {
	// probability that NO independent branch matches, times handling of
	// mux sums.
	pNone := 1.0
	for _, c := range children {
		switch c.Kind {
		case KindElem:
			if c.Tag == segs[0] {
				pNone *= 1 - descend(c, segs[1:], wantValue)
			}
		case KindInd:
			for _, gc := range c.Children {
				if gc.Kind == KindElem && gc.Tag == segs[0] {
					pNone *= 1 - gc.Prob*descend(gc, segs[1:], wantValue)
				}
			}
		case KindMux:
			// Exactly one alternative occurs: P(match via this mux) =
			// sum over matching alternatives.
			var pMux float64
			for _, gc := range c.Children {
				if gc.Kind == KindElem && gc.Tag == segs[0] {
					pMux += gc.Prob * descend(gc, segs[1:], wantValue)
				}
			}
			pNone *= 1 - pMux
		}
	}
	return 1 - pNone
}

// textEqualsProb returns the probability that n's text content equals
// value, accounting for text leaves hidden behind distribution nodes.
func textEqualsProb(n *Node, value string) float64 {
	// Certain text leaves directly under n.
	if t := n.TextContent(); t != "" {
		if t == value {
			return 1
		}
		return 0
	}
	pNone := 1.0
	for _, c := range n.Children {
		switch c.Kind {
		case KindMux:
			var pMux float64
			for _, gc := range c.Children {
				if gc.Kind == KindText && gc.Text == value {
					pMux += gc.Prob
				}
			}
			pNone *= 1 - pMux
		case KindInd:
			for _, gc := range c.Children {
				if gc.Kind == KindText && gc.Text == value {
					pNone *= 1 - gc.Prob
				}
			}
		}
	}
	return 1 - pNone
}

// ValueDist returns the distribution over the text values reachable at the
// element path — e.g. the Country field's "P(Germany) > P(USA)" — with
// any residual probability (path absent) omitted.
func ValueDist(doc *Node, path string) *uncertain.Dist {
	segs := splitPath(path)
	dist := uncertain.NewDist()
	if len(segs) == 0 || doc.Kind != KindElem || doc.Tag != segs[0] {
		return dist
	}
	collectValues(doc, segs[1:], 1, dist)
	return dist
}

// collectValues walks the path accumulating P(reach leaf with value).
func collectValues(n *Node, segs []string, p float64, dist *uncertain.Dist) {
	if p == 0 {
		return
	}
	if len(segs) == 0 {
		if t := n.TextContent(); t != "" {
			_ = dist.Add(t, p)
			return
		}
		for _, c := range n.Children {
			if c.Kind == KindMux || c.Kind == KindInd {
				for _, gc := range c.Children {
					if gc.Kind == KindText {
						_ = dist.Add(gc.Text, p*gc.Prob)
					}
				}
			}
		}
		return
	}
	for _, c := range n.Children {
		switch c.Kind {
		case KindElem:
			if c.Tag == segs[0] {
				collectValues(c, segs[1:], p, dist)
			}
		case KindMux, KindInd:
			for _, gc := range c.Children {
				if gc.Kind == KindElem && gc.Tag == segs[0] {
					collectValues(gc, segs[1:], p*gc.Prob, dist)
				}
			}
		}
	}
}

// FindAll returns every certain-or-possible element matching the path,
// with the marginal probability of the branch that reaches it.
type Match struct {
	Node *Node
	P    float64
}

// FindAll walks the path and returns matching elements with branch
// probabilities.
func FindAll(doc *Node, path string) []Match {
	segs := splitPath(path)
	if len(segs) == 0 || doc.Kind != KindElem || doc.Tag != segs[0] {
		return nil
	}
	var out []Match
	var walk func(n *Node, rest []string, p float64)
	walk = func(n *Node, rest []string, p float64) {
		if len(rest) == 0 {
			out = append(out, Match{Node: n, P: p})
			return
		}
		for _, c := range n.Children {
			switch c.Kind {
			case KindElem:
				if c.Tag == rest[0] {
					walk(c, rest[1:], p)
				}
			case KindMux, KindInd:
				for _, gc := range c.Children {
					if gc.Kind == KindElem && gc.Tag == rest[0] {
						walk(gc, rest[1:], p*gc.Prob)
					}
				}
			}
		}
	}
	walk(doc, segs[1:], 1)
	return out
}

func splitPath(path string) []string {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil
	}
	return strings.Split(path, "/")
}
