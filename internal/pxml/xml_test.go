package pxml

import (
	"math"
	"strings"
	"testing"
)

func TestMarshalRoundTrip(t *testing.T) {
	d := hotelDoc()
	s, err := Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "p:mux") || !strings.Contains(s, `p="0.7"`) {
		t.Errorf("serialised form missing distribution syntax:\n%s", s)
	}
	back, err := Unmarshal(s)
	if err != nil {
		t.Fatalf("Unmarshal: %v\n%s", err, s)
	}
	// Semantics preserved: same marginals.
	cases := []struct{ path, value string }{
		{"Hotel/Hotel_Name", "Axel Hotel"},
		{"Hotel/Country", "Germany"},
		{"Hotel/Country", "USA"},
		{"Hotel/User_Attitude", "Positive"},
	}
	for _, c := range cases {
		orig := ValueProb(d, c.path, c.value)
		got := ValueProb(back, c.path, c.value)
		if math.Abs(orig-got) > 1e-9 {
			t.Errorf("%s=%s: %v -> %v after round trip", c.path, c.value, orig, got)
		}
	}
}

func TestMarshalIndRoundTrip(t *testing.T) {
	d := Elem("Hotel", Ind(
		ElemText("Pool", "yes").WithProb(0.5),
		ElemText("Spa", "yes").WithProb(0.25),
	))
	s, err := Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if p := ValueProb(back, "Hotel/Pool", "yes"); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("Pool P after round trip = %v", p)
	}
	if p := ValueProb(back, "Hotel/Spa", "yes"); math.Abs(p-0.25) > 1e-9 {
		t.Errorf("Spa P after round trip = %v", p)
	}
}

func TestMarshalInvalid(t *testing.T) {
	bad := Elem("X", Elem("Y", Mux(Text("a").WithProb(0.9), Text("b").WithProb(0.9))))
	if _, err := Marshal(bad); err == nil {
		t.Error("invalid doc marshalled")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"not xml at all <",
		"<a><b p='2'>x</b></a>", // probability out of range fails validation
	} {
		if _, err := Unmarshal(s); err == nil {
			t.Errorf("Unmarshal(%q) succeeded", s)
		}
	}
}

func TestUnmarshalPlainXML(t *testing.T) {
	// Ordinary XML without distribution nodes parses as a certain doc.
	n, err := Unmarshal("<hotel><name>Axel</name><city>Berlin</city></hotel>")
	if err != nil {
		t.Fatal(err)
	}
	if !n.IsDeterministic() {
		t.Error("plain XML parsed as probabilistic")
	}
	if p := ValueProb(n, "hotel/city", "Berlin"); p != 1 {
		t.Errorf("P(city=Berlin) = %v", p)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	d := Elem("a", ElemText("b", "hello"))
	s, err := Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(s, "p:") {
		t.Errorf("deterministic doc has distribution syntax:\n%s", s)
	}
}
