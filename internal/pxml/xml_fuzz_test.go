package pxml

import "testing"

// FuzzUnmarshal throws arbitrary documents at the probabilistic-XML
// parser. The invariants:
//
//  1. Unmarshal never panics, whatever the input;
//  2. any tree Unmarshal accepts that also passes Validate must
//     survive a Marshal → Unmarshal → Marshal round trip with the two
//     marshalled forms byte-identical — Marshal's output is a fixpoint,
//     which is what lets the store treat serialised documents as
//     canonical.
func FuzzUnmarshal(f *testing.F) {
	seeds := []string{
		"<hotel><name>Axel</name><city>Berlin</city></hotel>",
		`<poi><p:mux><name p="0.6">Eiffel Tower</name><name p="0.4">Tour Eiffel</name></p:mux></poi>`,
		`<poi><p:ind><tag p="0.9">landmark</tag><tag p="0.5">museum</tag></p:ind></poi>`,
		`<r><p:mux><p:text p="0.5">flood</p:text><p:text p="0.5">fire</p:text></p:mux></r>`,
		"<a><b/><c>text</c></a>",
		"<a>",                     // unterminated
		"<a><p:mux></p:mux></a>",  // empty distribution
		`<a p="1.5">bad prob</a>`, // probability out of range
		"plain text, no element",
		`<a><p:mux><b p="abc">x</b></p:mux></a>`, // unparseable probability
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n, err := Unmarshal(s)
		if err != nil {
			return
		}
		if err := n.Validate(); err != nil {
			return
		}
		first, err := Marshal(n)
		if err != nil {
			t.Fatalf("Marshal of accepted valid tree failed: %v", err)
		}
		back, err := Unmarshal(first)
		if err != nil {
			t.Fatalf("Unmarshal of own Marshal output failed: %v\ndoc: %s", err, first)
		}
		second, err := Marshal(back)
		if err != nil {
			t.Fatalf("re-Marshal failed: %v\ndoc: %s", err, first)
		}
		if first != second {
			t.Fatalf("Marshal is not a fixpoint:\nfirst:  %s\nsecond: %s", first, second)
		}
	})
}
