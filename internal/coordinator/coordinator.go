// Package coordinator is the paper's Modules Coordinator (MC): "the
// controller of the whole system … responsible for controlling the work
// and data flow between different services. It receives the user
// contributions and requests, and sends activation messages to the
// intended services according to set of workflow rules."
//
// The workflow rules are data, not code: a message type maps to a list of
// named steps, each dispatched to a service. Every activation is recorded
// as a Signal, mirroring the signal-passing protocol the paper describes.
package coordinator

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/extract"
	"repro/internal/integrate"
	"repro/internal/mq"
	"repro/internal/obs"
	"repro/internal/qa"
)

// Step names a workflow action.
type Step string

// Workflow steps.
const (
	StepClassify  Step = "classify"
	StepExtract   Step = "extract"
	StepIntegrate Step = "integrate"
	StepAnswer    Step = "answer"
	// StepTagError records a failed attempt to tag a message on the MQ
	// with its classified type; tagging is advisory, so the workflow
	// continues, but the failure is kept in the signal log.
	StepTagError Step = "tag-error"
)

// Span names of the coordinator's stages (bounded constants; variable
// data — message IDs, lanes, counts — rides in span attributes).
const (
	spanPipelineMessage = "pipeline_message"
	spanExtract         = "extract"
	spanAnswer          = "answer"
	spanIntegrate       = "integrate"
	spanIntegrateBatch  = "integrate_batch"
)

// Rules maps a message type to its step sequence — the paper's Work Flow
// Rules (WFR) module.
type Rules map[extract.MessageType][]Step

// DefaultRules reproduces the paper's two workflows: informative messages
// flow IE → DI; requests flow IE → QA.
func DefaultRules() Rules {
	return Rules{
		extract.TypeInformative: {StepClassify, StepExtract, StepIntegrate},
		extract.TypeRequest:     {StepClassify, StepExtract, StepAnswer},
	}
}

// Signal is one recorded module activation.
type Signal struct {
	MessageID int64
	From, To  string
	Step      Step
	At        time.Time
	// Note carries diagnostic detail for error signals (StepTagError).
	Note string
}

// Outcome summarises the processing of one message.
type Outcome struct {
	MessageID int64
	Type      extract.MessageType
	TypeP     float64
	Domain    string
	// Inserted/Merged count integration actions for informative messages.
	Inserted, Merged int
	// Answer is the QA reply for request messages.
	Answer string
	// Query is the formulated DB query for request messages.
	Query string
	// Response is the QA service's full structured answer for request
	// messages — generated text, formulated query and the ranked results
	// with their certainties — of which Answer/Query are the flattened
	// legacy projection. Nil for informative messages.
	Response *qa.Answer
	// Trace is the observability trace ID the message carried through
	// the queue (empty for untraced submissions).
	Trace string
}

// NotAQuestionError reports that a message handed to the synchronous ask
// path was classified informative rather than as a request, carrying what
// the classifier saw so callers can branch (and surface the probability)
// without parsing error strings.
type NotAQuestionError struct {
	// Type is the classified message type (extract.TypeInformative).
	Type extract.MessageType
	// TypeP is the classifier's confidence in that type.
	TypeP float64
}

func (e *NotAQuestionError) Error() string {
	return fmt.Sprintf("coordinator: message classified %s (p=%.2f), not a question", e.Type, e.TypeP)
}

// Integrator is the integration sink of the coordinator: a set of
// independent lanes, each owning one store. The single-store system has
// one lane (SingleLane); a sharded system has one lane per shard
// (shard.Integrator). The coordinator serialises IntegrateGroups calls
// per lane — in the concurrent pipeline by running exactly one goroutine
// per lane — so implementations never see concurrent writes to the same
// lane, preserving the single-writer probabilistic merge path while
// distinct lanes commit in parallel.
type Integrator interface {
	// Lanes is the number of independent integration lanes.
	Lanes() int
	// Route assigns one message's template group to a lane in
	// [0, Lanes()). It must be deterministic so repeated reports about
	// one entity always integrate in the same lane.
	Route(tpls []extract.Template) int
	// IntegrateGroups merges several messages' template groups (one group
	// per message, order preserved within a group) as one amortized batch
	// on the given lane.
	IntegrateGroups(lane int, groups [][]extract.Template) [][]integrate.BatchResult
}

// singleLane adapts the unsharded integration service to the Integrator
// interface: one lane, everything routed to it.
type singleLane struct{ di *integrate.Service }

// SingleLane wraps a single-store integration service as a one-lane
// Integrator — the unsharded configuration.
func SingleLane(di *integrate.Service) Integrator { return singleLane{di: di} }

func (s singleLane) Lanes() int                   { return 1 }
func (s singleLane) Route([]extract.Template) int { return 0 }
func (s singleLane) IntegrateGroups(_ int, groups [][]extract.Template) [][]integrate.BatchResult {
	return s.di.IntegrateGroups(groups)
}

// Coordinator wires the queue to the services.
type Coordinator struct {
	queue *mq.Queue
	ie    *extract.Service
	di    Integrator
	qa    *qa.Service
	rules Rules
	clock func() time.Time

	mu      sync.Mutex
	signals []Signal
	// maxSignals bounds the in-memory signal log.
	maxSignals int

	// workers is the concurrency of DrainConcurrent (default GOMAXPROCS).
	workers int
	// batchSize caps how many integration jobs the batching stage folds
	// into one amortized database batch (default 16).
	batchSize int

	// log receives per-message structured lines: outcomes at debug, slow
	// transits at warn. Defaults to slog.Default().
	log *slog.Logger
	// slowThreshold is the pipeline-transit duration past which a
	// message's completion logs at warn (default 5s; <= 0 disables).
	slowThreshold time.Duration
}

// New wires a coordinator around an Integrator — SingleLane for the
// single-store system, shard.NewIntegrator for a sharded one. A nil
// rules uses DefaultRules.
func New(queue *mq.Queue, ie *extract.Service, di Integrator, ans *qa.Service, rules Rules) (*Coordinator, error) {
	if queue == nil || ie == nil || di == nil || ans == nil {
		return nil, fmt.Errorf("coordinator: nil dependency")
	}
	if di.Lanes() < 1 {
		return nil, fmt.Errorf("coordinator: integrator has %d lanes", di.Lanes())
	}
	if rules == nil {
		rules = DefaultRules()
	}
	return &Coordinator{
		queue:         queue,
		ie:            ie,
		di:            di,
		qa:            ans,
		rules:         rules,
		clock:         time.Now,
		maxSignals:    10000,
		workers:       runtime.GOMAXPROCS(0),
		batchSize:     16,
		log:           slog.Default(),
		slowThreshold: 5 * time.Second,
	}, nil
}

// SetClock overrides the time source (tests).
func (c *Coordinator) SetClock(clock func() time.Time) { c.clock = clock }

// SetLogger replaces the structured logger for per-message outcome and
// slow-transit lines (nil restores slog.Default()). Not safe to call
// while a drain is running.
func (c *Coordinator) SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.Default()
	}
	c.log = l
}

// SetSlowThreshold sets the pipeline-transit duration past which a
// message's completion is logged at warn; d <= 0 disables the slow log.
// Not safe to call while a drain is running.
func (c *Coordinator) SetSlowThreshold(d time.Duration) { c.slowThreshold = d }

// SetWorkers sets the DrainConcurrent worker-pool size; n <= 0 restores
// the default (GOMAXPROCS). Not safe to call while a drain is running.
func (c *Coordinator) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	c.workers = n
}

// SetBatchSize caps the integration batching stage; n <= 0 restores the
// default (16). Not safe to call while a drain is running.
func (c *Coordinator) SetBatchSize(n int) {
	if n <= 0 {
		n = 16
	}
	c.batchSize = n
}

// Submit enqueues a user message and returns its queue ID ("Once a
// message is received, it is placed in the MQ"). The trace ID carried
// by ctx (obs.WithTrace) — or minted here when the caller brought none
// — rides in the message envelope so observability follows the message
// across the queue hop.
func (c *Coordinator) Submit(ctx context.Context, body, source string) (int64, error) {
	_, trace := obs.EnsureTrace(ctx)
	id, err := c.queue.EnqueueTraced(body, source, trace)
	if err != nil {
		return 0, err
	}
	c.signal(Signal{MessageID: id, From: "user", To: "MC", Step: "submit"})
	return id, nil
}

// ProcessOne handles the next queued message through its workflow. ok is
// false when the queue is empty. Failed messages are negatively
// acknowledged for redelivery; after the queue's attempt limit they land
// in its dead-letter list.
func (c *Coordinator) ProcessOne() (*Outcome, bool, error) {
	m, ok := c.queue.Dequeue()
	if !ok {
		return nil, false, nil
	}
	c.signal(Signal{MessageID: m.ID, From: "MC", To: "IE", Step: StepClassify})
	//lint:ignore ctxflow ProcessOne predates ctx plumbing; the span root is per-message, not cancellable work
	ctx := context.Background()
	if m.Trace != "" {
		ctx = obs.WithTrace(ctx, m.Trace)
	}
	ctx, sp := obs.StartSpan(ctx, spanPipelineMessage)
	sp.SetAttr("msg_id", strconv.FormatInt(m.ID, 10))
	out, err := c.process(ctx, m)
	sp.SetError(err)
	sp.End()
	if err != nil {
		_ = c.queue.Nack(m.ID)
		messagesErr.Inc()
		return nil, true, fmt.Errorf("coordinator: message %d: %w", m.ID, err)
	}
	if err := c.queue.Ack(m.ID); err != nil {
		return nil, true, err
	}
	c.finish(m, out)
	return out, true, nil
}

// finish records a message's pipeline exit: the enqueue→acknowledged
// transit histogram, the ok counter, a debug outcome line, and the warn
// slow line when transit exceeded the threshold. Called after the
// acknowledgement succeeds, on both the sequential and concurrent
// paths.
func (c *Coordinator) finish(m mq.Message, out *Outcome) {
	transit := c.clock().Sub(m.Received)
	mTransitSeconds.Observe(transit.Seconds())
	messagesOK.Inc()
	if c.slowThreshold > 0 && transit > c.slowThreshold {
		c.log.Warn("slow message transit",
			"trace", m.Trace, "msg_id", m.ID, "type", out.Type,
			"transit", transit, "threshold", c.slowThreshold)
		return
	}
	c.log.Debug("message processed",
		"trace", m.Trace, "msg_id", m.ID, "type", out.Type,
		"inserted", out.Inserted, "merged", out.Merged, "transit", transit)
}

// AskDirect answers a question synchronously through the read-only QA
// path, without touching the queue: classification and extraction run
// inline and the request goes straight to the QA service. Because nothing
// is enqueued, AskDirect never races with a concurrent drain over which
// message ProcessOne picks up next — the serving layer's ask endpoint and
// the background drain loop can run side by side. A message classified
// informative returns a *NotAQuestionError carrying the classification.
// The trace ID carried by ctx (obs.WithTrace) labels its log lines.
func (c *Coordinator) AskDirect(ctx context.Context, body, source string) (*qa.Answer, error) {
	askStart := time.Now()
	defer func() {
		// The exemplar links the ask latency bucket to this request's
		// recorded timeline; with tracing off the trace ID is "".
		mAskSeconds.ObserveExemplar(time.Since(askStart).Seconds(), obs.SpanFromContext(ctx).TraceID())
	}()
	exCtx, exSpan := obs.StartSpan(ctx, spanExtract)
	exStart := time.Now()
	ex, err := c.ie.Extract(exCtx, body, source, c.clock())
	stageExtract.Since(exStart)
	exSpan.SetError(err)
	exSpan.End()
	if err != nil {
		return nil, err
	}
	c.signal(Signal{From: "user", To: "IE", Step: StepClassify})
	if ex.Type != extract.TypeRequest {
		return nil, &NotAQuestionError{Type: ex.Type, TypeP: ex.TypeP}
	}
	c.signal(Signal{From: "MC", To: "QA", Step: StepAnswer})
	ansCtx, ansSpan := obs.StartSpan(ctx, spanAnswer)
	ansStart := time.Now()
	ans, err := c.qa.Answer(ansCtx, ex)
	stageAnswer.Since(ansStart)
	ansSpan.SetError(err)
	ansSpan.End()
	if err != nil {
		return nil, err
	}
	if trace := obs.Trace(ctx); trace != "" {
		c.log.Debug("ask answered", "trace", trace, "results", len(ans.Results))
	}
	return &ans, nil
}

func (c *Coordinator) process(ctx context.Context, m mq.Message) (*Outcome, error) {
	out, tpls, err := c.prepare(ctx, m)
	if err != nil {
		return nil, err
	}
	if len(tpls) > 0 {
		if err := c.integrateInto(ctx, out, tpls); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// prepare runs the extraction/classification stages of a message's
// workflow and returns its outcome plus any templates still awaiting
// integration — the parallelizable front half of the pipeline. Request
// messages are answered here (read-only); informative messages hand their
// templates to the caller's integration stage.
func (c *Coordinator) prepare(ctx context.Context, m mq.Message) (*Outcome, []extract.Template, error) {
	now := c.clock()
	exCtx, exSpan := obs.StartSpan(ctx, spanExtract)
	exStart := time.Now()
	ex, err := c.ie.Extract(exCtx, m.Body, m.Source, now)
	stageExtract.Since(exStart)
	exSpan.SetError(err)
	exSpan.End()
	if err != nil {
		return nil, nil, err
	}
	// "A tag is then attached to the message on the MQ indicating its
	// type." Tagging is advisory: a failure (the message vanished from the
	// queue, e.g. after lease expiry and redelivery) is recorded in the
	// signal log rather than aborting the workflow.
	if err := c.queue.Tag(m.ID, string(ex.Type)); err != nil {
		c.signal(Signal{MessageID: m.ID, From: "MQ", To: "MC", Step: StepTagError, Note: err.Error()})
	}

	out := &Outcome{
		MessageID: m.ID,
		Type:      ex.Type,
		TypeP:     ex.TypeP,
		Domain:    ex.Domain,
		Trace:     m.Trace,
	}
	steps, ok := c.rules[ex.Type]
	if !ok {
		return nil, nil, fmt.Errorf("no workflow rule for message type %q", ex.Type)
	}
	var pending []extract.Template
	for _, step := range steps {
		switch step {
		case StepClassify, StepExtract:
			// Already performed by the IE call above; recorded for the
			// signal trail.
			c.signal(Signal{MessageID: m.ID, From: "IE", To: "MC", Step: step})
		case StepIntegrate:
			c.signal(Signal{MessageID: m.ID, From: "MC", To: "DI", Step: step})
			pending = append(pending, ex.Templates...)
		case StepAnswer:
			c.signal(Signal{MessageID: m.ID, From: "MC", To: "QA", Step: step})
			ansCtx, ansSpan := obs.StartSpan(ctx, spanAnswer)
			ansStart := time.Now()
			ans, err := c.qa.Answer(ansCtx, ex)
			stageAnswer.Since(ansStart)
			ansSpan.SetError(err)
			ansSpan.End()
			if err != nil {
				return nil, nil, err
			}
			out.Answer = ans.Text
			out.Query = ans.Query
			out.Response = &ans
		default:
			return nil, nil, fmt.Errorf("unknown workflow step %q", step)
		}
	}
	return out, pending, nil
}

// integrateInto applies a message's templates in order as one amortized
// database batch on their routed lane, stopping at the first integration
// error (templates after a failure are not applied), and folds the
// actions into its outcome.
func (c *Coordinator) integrateInto(ctx context.Context, out *Outcome, tpls []extract.Template) error {
	lane := c.di.Route(tpls)
	_, sp := obs.StartSpan(ctx, spanIntegrate)
	sp.SetInt("lane", lane)
	sp.SetInt("templates", len(tpls))
	defer sp.End()
	defer stageIntegrate.Since(time.Now())
	err := foldGroup(out, c.di.IntegrateGroups(lane, [][]extract.Template{tpls})[0])
	sp.SetError(err)
	return err
}

// foldGroup counts one message's integration actions into its outcome,
// returning the group's error if it stopped early.
func foldGroup(out *Outcome, results []integrate.BatchResult) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
		switch r.Result.Action {
		case integrate.ActionInserted:
			out.Inserted++
		case integrate.ActionMerged:
			out.Merged++
		}
	}
	return nil
}

// Drain processes queued messages until the queue is empty or limit
// messages have been handled (limit <= 0 means no limit). It returns the
// outcomes; messages that errored are skipped after redelivery exhaustion
// and reported in errs.
func (c *Coordinator) Drain(limit int) (outs []*Outcome, errs []error) {
	for limit <= 0 || len(outs)+len(errs) < limit {
		out, ok, err := c.ProcessOne()
		if !ok {
			break
		}
		if err != nil {
			errs = append(errs, err)
			continue
		}
		outs = append(outs, out)
	}
	return outs, errs
}

func (c *Coordinator) signal(s Signal) {
	s.At = c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.signals = append(c.signals, s)
	if len(c.signals) > c.maxSignals {
		c.signals = c.signals[len(c.signals)-c.maxSignals:]
	}
}

// Signals returns a copy of the recorded activation log.
func (c *Coordinator) Signals() []Signal {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Signal(nil), c.signals...)
}

// Queue exposes the underlying message queue (for monitoring).
func (c *Coordinator) Queue() *mq.Queue { return c.queue }
