package coordinator

import "repro/internal/obs"

// Pipeline metric families. Stage timings split where a message's wall
// time goes (the IE front half, the QA answer path, the per-lane
// integration batches); the transit histogram measures the full
// enqueue→acknowledge journey the slow-outcome log thresholds against;
// batch sizes per lane show whether the group commit is actually
// amortizing. Series for the fixed stage labels are created eagerly so
// the facade's latency summaries (and FindHistogram) see them before
// the first message flows.
var (
	mStageSeconds = obs.Default().Histogram("neogeo_pipeline_stage_seconds",
		"Pipeline stage wall time per message (extract includes classify+NER+disambiguate; integrate is per batch).",
		nil, "stage")
	stageExtract   = mStageSeconds.With("extract")
	stageAnswer    = mStageSeconds.With("answer")
	stageIntegrate = mStageSeconds.With("integrate")

	mBatchMessages = obs.Default().Histogram("neogeo_pipeline_batch_messages",
		"Messages folded into one integration batch / group-committed ack, per lane.",
		obs.ExpBuckets(1, 2, 8), "lane")

	mTransitSeconds = obs.Default().Histogram("neogeo_pipeline_transit_seconds",
		"Full pipeline transit per message: enqueue to acknowledged.", nil).With()

	mMessagesTotal = obs.Default().Counter("neogeo_pipeline_messages_total",
		"Messages leaving the pipeline, by result.", "result")
	messagesOK  = mMessagesTotal.With("ok")
	messagesErr = mMessagesTotal.With("error")

	mAskSeconds = obs.Default().Histogram("neogeo_ask_seconds",
		"Synchronous ask-path latency end to end (classify+extract+QA).", nil).With()
)
