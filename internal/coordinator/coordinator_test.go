package coordinator

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/extract"
	"repro/internal/gazetteer"
	"repro/internal/geo"
	"repro/internal/integrate"
	"repro/internal/kb"
	"repro/internal/mq"
	"repro/internal/ontology"
	"repro/internal/qa"
	"repro/internal/xmldb"
)

func newCoordinator(t *testing.T) (*Coordinator, *xmldb.DB) {
	t.Helper()
	c, db := newCoordinatorServices(t, mq.New())
	return c, db
}

// newCoordinatorWithQueue wires the standard test services around a
// caller-supplied queue (e.g. WAL-backed).
func newCoordinatorWithQueue(t *testing.T, q *mq.Queue) *Coordinator {
	t.Helper()
	c, _ := newCoordinatorServices(t, q)
	return c
}

func newCoordinatorServices(t *testing.T, q *mq.Queue) (*Coordinator, *xmldb.DB) {
	t.Helper()
	g := gazetteer.New()
	add := func(name string, lat, lon float64, country string, pop int64) {
		t.Helper()
		if _, err := g.Add(gazetteer.Entry{
			Name: name, Location: geo.Point{Lat: lat, Lon: lon},
			Feature: gazetteer.FeatureCity, Country: country, Population: pop,
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("Berlin", 52.52, 13.405, "DE", 3_700_000)
	add("Nairobi", -1.29, 36.82, "KE", 4_400_000)
	o := ontology.New()
	o.LoadContainment(g)
	k := kb.New()
	db := xmldb.New()
	ie, err := extract.NewService(k, g, o)
	if err != nil {
		t.Fatal(err)
	}
	di, err := integrate.NewService(k, db)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := qa.NewService(db, k, g, o)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(q, ie, SingleLane(di), ans, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetClock(func() time.Time { return time.Date(2011, 4, 1, 9, 0, 0, 0, time.UTC) })
	return c, db
}

func TestWorkflowInformative(t *testing.T) {
	c, db := newCoordinator(t)
	id, err := c.Submit(context.Background(), "loved the Axel Hotel in Berlin, great stay", "alice")
	if err != nil {
		t.Fatal(err)
	}
	out, ok, err := c.ProcessOne()
	if err != nil || !ok {
		t.Fatalf("ProcessOne = %v, %v", ok, err)
	}
	if out.MessageID != id {
		t.Errorf("message id = %d", out.MessageID)
	}
	if out.Type != extract.TypeInformative {
		t.Errorf("type = %s", out.Type)
	}
	if out.Inserted != 1 {
		t.Errorf("inserted = %d", out.Inserted)
	}
	if db.Len("Hotels") != 1 {
		t.Errorf("db records = %d", db.Len("Hotels"))
	}
	// Signal trail includes MC→IE and MC→DI activations.
	var sawIE, sawDI bool
	for _, s := range c.Signals() {
		if s.To == "IE" {
			sawIE = true
		}
		if s.To == "DI" {
			sawDI = true
		}
	}
	if !sawIE || !sawDI {
		t.Errorf("signal trail incomplete: %+v", c.Signals())
	}
}

func TestWorkflowRequest(t *testing.T) {
	c, _ := newCoordinator(t)
	if _, err := c.Submit(context.Background(), "loved the Axel Hotel in Berlin, great stay", "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(context.Background(), "can anyone recommend a good hotel in Berlin?", "bob"); err != nil {
		t.Fatal(err)
	}
	outs, errs := c.Drain(0)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	req := outs[1]
	if req.Type != extract.TypeRequest {
		t.Fatalf("second message type = %s", req.Type)
	}
	if !strings.Contains(strings.ToLower(req.Answer), "axel hotel") {
		t.Errorf("answer = %q", req.Answer)
	}
	if !strings.Contains(req.Query, "topk(") {
		t.Errorf("query = %q", req.Query)
	}
	// Queue fully drained and acknowledged.
	if c.Queue().Len() != 0 || c.Queue().InFlight() != 0 {
		t.Errorf("queue not drained: len=%d inflight=%d", c.Queue().Len(), c.Queue().InFlight())
	}
}

func TestProcessOneEmptyQueue(t *testing.T) {
	c, _ := newCoordinator(t)
	if _, ok, err := c.ProcessOne(); ok || err != nil {
		t.Errorf("empty queue: ok=%v err=%v", ok, err)
	}
}

func TestDrainLimit(t *testing.T) {
	c, _ := newCoordinator(t)
	for i := 0; i < 5; i++ {
		if _, err := c.Submit(context.Background(), "nice stay at the Axel Hotel in Berlin", "u"); err != nil {
			t.Fatal(err)
		}
	}
	outs, errs := c.Drain(2)
	if len(outs) != 2 || len(errs) != 0 {
		t.Fatalf("drain(2) = %d outs, %d errs", len(outs), len(errs))
	}
	if c.Queue().Len() != 3 {
		t.Errorf("remaining = %d", c.Queue().Len())
	}
}

func TestMessageTagging(t *testing.T) {
	c, _ := newCoordinator(t)
	if _, err := c.Submit(context.Background(), "is the road to Nairobi open?", "driver"); err != nil {
		t.Fatal(err)
	}
	out, ok, err := c.ProcessOne()
	if err != nil || !ok {
		t.Fatalf("ProcessOne: %v %v", ok, err)
	}
	if out.Type != extract.TypeRequest {
		t.Errorf("type = %s", out.Type)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, nil, nil, nil); err == nil {
		t.Error("nil deps accepted")
	}
}

func TestCustomRulesUnknownStep(t *testing.T) {
	c, _ := newCoordinator(t)
	c.rules = Rules{
		extract.TypeInformative: {Step("bogus")},
		extract.TypeRequest:     {Step("bogus")},
	}
	if _, err := c.Submit(context.Background(), "lovely Axel Hotel in Berlin", "x"); err != nil {
		t.Fatal(err)
	}
	_, ok, err := c.ProcessOne()
	if !ok {
		t.Fatal("message not processed")
	}
	if err == nil {
		t.Error("unknown step succeeded")
	}
}
