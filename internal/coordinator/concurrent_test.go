package coordinator

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/extract"
	"repro/internal/mq"
)

// DrainConcurrent must process every queued message exactly once: same
// outcome count as the sequential path, queue fully drained, no duplicate
// message IDs among the outcomes. Run with -race.
func TestDrainConcurrentExactlyOnce(t *testing.T) {
	c, db := newCoordinator(t)
	c.SetWorkers(4)
	c.SetBatchSize(8)

	const total = 60
	for i := 0; i < total; i++ {
		body := fmt.Sprintf("stayed at the Axel Hotel in Berlin, visit %d was great", i)
		if i%5 == 0 {
			body = "can anyone recommend a good hotel in Berlin?"
		}
		if _, err := c.Submit(context.Background(), body, fmt.Sprintf("user%d", i%7)); err != nil {
			t.Fatal(err)
		}
	}

	outs, errs := c.DrainConcurrent(context.Background(), 0)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(outs) != total {
		t.Fatalf("outcomes = %d, want %d", len(outs), total)
	}
	seen := make(map[int64]bool)
	for _, out := range outs {
		if seen[out.MessageID] {
			t.Fatalf("message %d processed twice", out.MessageID)
		}
		seen[out.MessageID] = true
	}
	if c.Queue().Len() != 0 || c.Queue().InFlight() != 0 {
		t.Fatalf("queue not drained: len=%d inflight=%d", c.Queue().Len(), c.Queue().InFlight())
	}
	// All informative messages merged into the one Axel Hotel record.
	if db.Len("Hotels") != 1 {
		t.Fatalf("Hotels len = %d, want 1", db.Len("Hotels"))
	}
}

func TestDrainConcurrentLimit(t *testing.T) {
	c, _ := newCoordinator(t)
	c.SetWorkers(3)
	for i := 0; i < 7; i++ {
		if _, err := c.Submit(context.Background(), "nice stay at the Axel Hotel in Berlin", "u"); err != nil {
			t.Fatal(err)
		}
	}
	outs, errs := c.DrainConcurrent(context.Background(), 4)
	if len(outs)+len(errs) != 4 {
		t.Fatalf("limit 4: %d outs, %d errs", len(outs), len(errs))
	}
	if got := c.Queue().Len(); got != 3 {
		t.Fatalf("remaining = %d, want 3", got)
	}
	if c.Queue().InFlight() != 0 {
		t.Fatalf("inflight = %d after limited drain", c.Queue().InFlight())
	}
}

// Messages whose workflow errors are redelivered and ultimately
// dead-lettered without wedging the concurrent drain.
func TestDrainConcurrentErrorsDeadLetter(t *testing.T) {
	c, _ := newCoordinator(t)
	c.SetWorkers(2)
	c.rules = Rules{
		extract.TypeInformative: {Step("bogus")},
		extract.TypeRequest:     {StepClassify, StepExtract, StepAnswer},
	}
	if _, err := c.Submit(context.Background(), "lovely Axel Hotel in Berlin", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(context.Background(), "can anyone recommend a good hotel in Berlin?", "y"); err != nil {
		t.Fatal(err)
	}
	outs, errs := c.DrainConcurrent(context.Background(), 0)
	if len(outs) != 1 {
		t.Fatalf("outs = %d, want 1 (the request)", len(outs))
	}
	if len(errs) == 0 {
		t.Fatal("no errors reported for the poisoned workflow")
	}
	if dead := c.Queue().DeadLetters(); len(dead) != 1 {
		t.Fatalf("dead letters = %d, want 1", len(dead))
	}
	if c.Queue().Len() != 0 || c.Queue().InFlight() != 0 {
		t.Fatalf("queue not drained: len=%d inflight=%d", c.Queue().Len(), c.Queue().InFlight())
	}
}

// Submit and DrainConcurrent hammered from many goroutines at once: the
// drain must absorb concurrent producers without losing or duplicating
// messages. Run with -race.
func TestSubmitDuringDrainConcurrent(t *testing.T) {
	c, _ := newCoordinator(t)
	c.SetWorkers(4)

	const (
		producers   = 3
		perProducer = 20
	)
	// Seed the queue so the drain has work before producers start.
	var ids sync.Map
	for i := 0; i < 5; i++ {
		id, err := c.Submit(context.Background(), "great time at the Axel Hotel in Berlin", "seed")
		if err != nil {
			t.Fatal(err)
		}
		ids.Store(id, true)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				id, err := c.Submit(context.Background(), "lovely Axel Hotel in Berlin", fmt.Sprintf("p%d", p))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ids.Store(id, true)
			}
		}(p)
	}

	var outs []*Outcome
	var errs []error
	// Drain repeatedly until producers are done and the queue is empty —
	// a single drain may observe an empty queue while producers pause.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		o, e := c.DrainConcurrent(context.Background(), 0)
		outs = append(outs, o...)
		errs = append(errs, e...)
		select {
		case <-done:
			if c.Queue().Len() == 0 {
				o, e = c.DrainConcurrent(context.Background(), 0)
				outs = append(outs, o...)
				errs = append(errs, e...)
				goto finished
			}
		default:
		}
	}
finished:
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := 5 + producers*perProducer
	if len(outs) != want {
		t.Fatalf("outcomes = %d, want %d", len(outs), want)
	}
	seen := make(map[int64]bool)
	for _, out := range outs {
		if seen[out.MessageID] {
			t.Fatalf("message %d processed twice", out.MessageID)
		}
		seen[out.MessageID] = true
	}
}

// DrainConcurrent honours context cancellation: it stops dispatching and
// returns without leaking leases forever (nacked messages return to the
// queue).
func TestDrainConcurrentCancel(t *testing.T) {
	c, _ := newCoordinator(t)
	c.SetWorkers(2)
	for i := 0; i < 10; i++ {
		if _, err := c.Submit(context.Background(), "stay at the Axel Hotel in Berlin", "u"); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs, errs := c.DrainConcurrent(ctx, 0)
	if len(outs)+len(errs)+c.Queue().Len()+c.Queue().InFlight() < 10 {
		t.Fatalf("messages lost after cancel: outs=%d errs=%d pending=%d inflight=%d",
			len(outs), len(errs), c.Queue().Len(), c.Queue().InFlight())
	}
}

// A failed batch acknowledgement (e.g. WAL write error) must not wedge
// the drain: the batch is nacked back for redelivery and the drain
// terminates via the dead-letter path instead of waiting forever on
// leases nobody will release (regression: flushBatch used to record the
// outcomes and strand the leases).
func TestDrainConcurrentAckFailureTerminates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	q, err := mq.Open(path, mq.WithMaxAttempts(3))
	if err != nil {
		t.Fatal(err)
	}
	c := newCoordinatorWithQueue(t, q)
	if _, err := c.Submit(context.Background(), "loved the Axel Hotel in Berlin", "alice"); err != nil {
		t.Fatal(err)
	}
	// Closing the WAL makes every subsequent ack append fail.
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var outs []*Outcome
	var errs []error
	go func() {
		outs, errs = c.DrainConcurrent(context.Background(), 0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("DrainConcurrent wedged after ack failure")
	}
	if len(errs) == 0 {
		t.Fatal("ack failure not reported")
	}
	if len(outs) != 0 {
		t.Fatalf("outcomes recorded despite failed acknowledgement: %d", len(outs))
	}
	if dead := q.DeadLetters(); len(dead) != 1 {
		t.Fatalf("dead letters = %d, want 1 (redelivery exhaustion)", len(dead))
	}
	if q.Len() != 0 || q.InFlight() != 0 {
		t.Fatalf("queue not settled: pending=%d inflight=%d", q.Len(), q.InFlight())
	}
}

// A failed MQ tag lands in the signal log instead of being silently
// swallowed (regression: process used to discard the Tag error).
func TestTagFailureRecordedInSignals(t *testing.T) {
	c, _ := newCoordinator(t)
	// A message that was never enqueued cannot be tagged.
	_, _, err := c.prepare(context.Background(), mq.Message{ID: 9999, Body: "loved the Axel Hotel in Berlin", Source: "ghost"})
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	var tagErr *Signal
	for _, s := range c.Signals() {
		if s.Step == StepTagError {
			tagErr = &s
			break
		}
	}
	if tagErr == nil {
		t.Fatal("tag failure not recorded in signal log")
	}
	if tagErr.MessageID != 9999 || tagErr.Note == "" {
		t.Fatalf("tag-error signal incomplete: %+v", *tagErr)
	}
}
