package coordinator

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/extract"
	"repro/internal/mq"
	"repro/internal/obs"
)

// DrainEach processes queued messages through a three-stage concurrent
// pipeline until the queue is empty, limit messages have been dispatched
// (limit <= 0 means no limit), or ctx is cancelled:
//
//	dispatcher -> worker pool -> integration lanes
//
// A single dispatcher leases messages from the queue; the worker pool
// (SetWorkers, default GOMAXPROCS) runs classification, extraction and
// question answering in parallel; and one integration-lane goroutine per
// Integrator lane folds the workers' templates into amortized database
// batches (SetBatchSize), acknowledging each batch with one
// group-committed queue operation. Workers route each message's template
// group to its lane (Integrator.Route), so every store still sees all
// its writes from a single goroutine — the probabilistic integration
// path needs no cross-worker coordination — while lanes for different
// shards commit batches and group-ack in parallel. With a one-lane
// Integrator (SingleLane) this is exactly the single batching-integrator
// pipeline; with shard.Integrator the pipeline's tail scales out with
// the store.
//
// Results stream: emit is called once per finished message — (outcome,
// nil) on success, (nil, err) on failure — as the pipeline completes it,
// so a million-message drain never buffers every outcome in memory.
// Calls to emit are serialised (never concurrent) but arrive in
// completion order, not queue order. Failed messages are negatively
// acknowledged for redelivery; after redelivery exhaustion they
// dead-letter, matching Drain's semantics.
func (c *Coordinator) DrainEach(ctx context.Context, limit int, emit func(*Outcome, error)) {
	sink := &drainSink{emit: emit}
	jobs := make(chan mq.Message)
	// Each lane's buffer must fit a full batch on top of one in-flight
	// job per worker, or the group commit could never amortize past the
	// worker count.
	lanes := make([]chan integrationJob, c.di.Lanes())
	for i := range lanes {
		lanes[i] = make(chan integrationJob, c.workers+c.batchSize)
	}
	// poke wakes the dispatcher after any ack/nack so it can re-check the
	// queue; capacity 1 makes the send non-blocking while never losing the
	// "state changed" edge.
	poke := make(chan struct{}, 1)
	notify := func() {
		select {
		case poke <- struct{}{}:
		default:
		}
	}

	var workersWG sync.WaitGroup
	for i := 0; i < c.workers; i++ {
		workersWG.Add(1)
		go func() {
			defer workersWG.Done()
			for m := range jobs {
				c.workOne(ctx, m, sink, lanes, notify)
			}
		}()
	}

	var lanesWG sync.WaitGroup
	for i := range lanes {
		lanesWG.Add(1)
		go func(lane int, integ <-chan integrationJob) {
			defer lanesWG.Done()
			c.runIntegrator(ctx, lane, integ, sink, notify)
		}(i, lanes[i])
	}

	dispatched := 0
	for (limit <= 0 || dispatched < limit) && ctx.Err() == nil {
		m, ok := c.queue.Dequeue()
		if !ok {
			// Empty queue: done only once nothing is in flight — a leased
			// message may still be nacked back for redelivery.
			if c.queue.InFlight() > 0 {
				select {
				case <-poke:
				case <-ctx.Done():
				}
				continue
			}
			// A nack can land between the empty Dequeue and the InFlight
			// check, moving a message back to pending; with nothing leased
			// any such message is visible to one more Dequeue, so only an
			// empty retry proves the drain is complete.
			m, ok = c.queue.Dequeue()
			if !ok {
				break
			}
		}
		c.signal(Signal{MessageID: m.ID, From: "MC", To: "IE", Step: StepClassify})
		dispatched++
		select {
		case jobs <- m:
		case <-ctx.Done():
			_ = c.queue.Nack(m.ID)
		}
	}
	close(jobs)
	workersWG.Wait()
	for _, integ := range lanes {
		close(integ)
	}
	lanesWG.Wait()
}

// DrainConcurrent is DrainEach collecting the stream into slices —
// outcomes in completion order — for callers whose drains fit in memory.
func (c *Coordinator) DrainConcurrent(ctx context.Context, limit int) (outs []*Outcome, errs []error) {
	c.DrainEach(ctx, limit, func(out *Outcome, err error) {
		if err != nil {
			errs = append(errs, err)
			return
		}
		outs = append(outs, out)
	})
	return outs, errs
}

// drainSink serialises a drain's result stream across pipeline goroutines.
type drainSink struct {
	mu   sync.Mutex
	emit func(*Outcome, error)
}

func (s *drainSink) addOut(out *Outcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.emit(out, nil)
}

func (s *drainSink) addErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.emit(nil, err)
}

// integrationJob is one message handed from a worker to an integration
// lane: its lease, its partially filled outcome, and any templates still
// to integrate (empty for request messages, whose acknowledgement simply
// joins the lane's group commit).
type integrationJob struct {
	msg  mq.Message
	out  *Outcome
	tpls []extract.Template
}

// workOne runs the parallel front half of one message's workflow, then
// routes the message to its integration lane, which owns integration and
// acknowledgement — every successful message is acked by group commit.
// Messages with no templates (requests) only need an acknowledgement;
// they spread across lanes by message ID so no single lane becomes the
// ack bottleneck.
func (c *Coordinator) workOne(ctx context.Context, m mq.Message, sink *drainSink, lanes []chan integrationJob, notify func()) {
	if m.Trace != "" {
		ctx = obs.WithTrace(ctx, m.Trace)
	}
	// The span covers only the front half (extract/answer); integration
	// happens later in a lane batch and is traced as its own
	// integrate_batch timeline.
	ctx, sp := obs.StartSpan(ctx, spanPipelineMessage)
	sp.SetAttr("msg_id", strconv.FormatInt(m.ID, 10))
	out, tpls, err := c.prepare(ctx, m)
	sp.SetError(err)
	sp.End()
	if err != nil {
		_ = c.queue.Nack(m.ID)
		messagesErr.Inc()
		sink.addErr(fmt.Errorf("coordinator: message %d: %w", m.ID, err))
		notify()
		return
	}
	lane := 0
	if len(tpls) > 0 {
		lane = c.di.Route(tpls)
	} else if len(lanes) > 1 && m.ID > 0 {
		lane = int(m.ID % int64(len(lanes)))
	}
	lanes[lane] <- integrationJob{msg: m, out: out, tpls: tpls}
}

// runIntegrator is one lane's single-goroutine batching stage: it
// greedily collects the lane's pending jobs up to the batch cap,
// integrates each batch under one acquisition of the lane's store lock,
// and acknowledges the batch's messages with one group-committed ack.
func (c *Coordinator) runIntegrator(ctx context.Context, lane int, integ <-chan integrationJob, sink *drainSink, notify func()) {
	for {
		job, ok := <-integ
		if !ok {
			return
		}
		batch := []integrationJob{job}
	collect:
		for len(batch) < c.batchSize {
			select {
			case next, ok := <-integ:
				if !ok {
					break collect
				}
				batch = append(batch, next)
			default:
				break collect
			}
		}
		c.flushBatch(ctx, lane, batch, sink)
		notify()
	}
}

func (c *Coordinator) flushBatch(ctx context.Context, lane int, batch []integrationJob, sink *drainSink) {
	_, sp := obs.StartSpan(ctx, spanIntegrateBatch)
	sp.SetInt("lane", lane)
	sp.SetInt("messages", len(batch))
	defer sp.End()
	mBatchMessages.With(strconv.Itoa(lane)).Observe(float64(len(batch)))
	groups := make([][]extract.Template, len(batch))
	for i, job := range batch {
		groups[i] = job.tpls
	}
	intStart := time.Now()
	results := c.di.IntegrateGroups(lane, groups)
	stageIntegrate.Since(intStart)

	ackIDs := make([]int64, 0, len(batch))
	completed := make([]integrationJob, 0, len(batch))
	for i, job := range batch {
		if err := foldGroup(job.out, results[i]); err != nil {
			_ = c.queue.Nack(job.msg.ID)
			messagesErr.Inc()
			sink.addErr(fmt.Errorf("coordinator: message %d: %w", job.msg.ID, err))
			continue
		}
		ackIDs = append(ackIDs, job.msg.ID)
		completed = append(completed, job)
	}
	if len(ackIDs) > 0 {
		acked, err := c.queue.AckBatch(ackIDs)
		if err != nil {
			sink.addErr(err)
		}
		// Record outcomes only for messages the group commit really
		// acknowledged; the rest go back for redelivery (a WAL failure
		// acks nothing) or expired mid-flight and will be redelivered
		// anyway — nacking the leftovers instead of stranding their
		// leases keeps the dispatcher from waiting forever.
		ackedSet := make(map[int64]bool, len(acked))
		for _, id := range acked {
			ackedSet[id] = true
		}
		for i, id := range ackIDs {
			if ackedSet[id] {
				c.finish(completed[i].msg, completed[i].out)
				sink.addOut(completed[i].out)
			} else {
				_ = c.queue.Nack(id)
			}
		}
	}
}
