package classify

import (
	"fmt"
	"sort"
)

// Perceptron is an averaged multi-class perceptron over sparse string
// features. Averaging the weight vector over all updates gives the
// regularisation that makes perceptrons competitive for NLP tagging tasks.
type Perceptron struct {
	weights map[string]map[string]float64 // class -> feature -> weight
	totals  map[string]map[string]float64 // accumulated weights for averaging
	stamps  map[string]map[string]int     // last update step per weight
	step    int
	classes []string
	frozen  bool
}

// NewPerceptron returns an untrained perceptron for the given classes.
func NewPerceptron(classes []string) (*Perceptron, error) {
	if len(classes) < 2 {
		return nil, fmt.Errorf("classify: perceptron needs at least 2 classes, got %d", len(classes))
	}
	p := &Perceptron{
		weights: make(map[string]map[string]float64),
		totals:  make(map[string]map[string]float64),
		stamps:  make(map[string]map[string]int),
		classes: append([]string(nil), classes...),
	}
	sort.Strings(p.classes)
	for _, c := range p.classes {
		p.weights[c] = make(map[string]float64)
		p.totals[c] = make(map[string]float64)
		p.stamps[c] = make(map[string]int)
	}
	return p, nil
}

// scores returns the raw activation per class.
func (p *Perceptron) scores(features []string) map[string]float64 {
	s := make(map[string]float64, len(p.classes))
	for _, c := range p.classes {
		w := p.weights[c]
		var sum float64
		for _, f := range features {
			sum += w[f]
		}
		s[c] = sum
	}
	return s
}

// Predict returns the highest-scoring class (ties break alphabetically,
// so an untrained model is deterministic).
func (p *Perceptron) Predict(features []string) string {
	s := p.scores(features)
	best := p.classes[0]
	for _, c := range p.classes[1:] {
		if s[c] > s[best] {
			best = c
		}
	}
	return best
}

// Train performs one perceptron update for a labelled example and reports
// whether the example was already classified correctly.
func (p *Perceptron) Train(label string, features []string) (bool, error) {
	if p.frozen {
		return false, fmt.Errorf("classify: perceptron already finalised")
	}
	if _, ok := p.weights[label]; !ok {
		return false, fmt.Errorf("classify: unknown label %q", label)
	}
	p.step++
	guess := p.Predict(features)
	if guess == label {
		return true, nil
	}
	for _, f := range features {
		p.update(label, f, 1)
		p.update(guess, f, -1)
	}
	return false, nil
}

func (p *Perceptron) update(class, feature string, delta float64) {
	// Lazily accumulate the averaged total before changing the weight.
	elapsed := float64(p.step - p.stamps[class][feature])
	p.totals[class][feature] += elapsed * p.weights[class][feature]
	p.stamps[class][feature] = p.step
	p.weights[class][feature] += delta
}

// Finalize replaces the weights with their training-time averages. After
// finalising, Train returns an error.
func (p *Perceptron) Finalize() {
	if p.frozen {
		return
	}
	for _, c := range p.classes {
		for f, w := range p.weights[c] {
			elapsed := float64(p.step - p.stamps[c][f])
			total := p.totals[c][f] + elapsed*w
			if p.step > 0 {
				p.weights[c][f] = total / float64(p.step)
			}
		}
	}
	p.frozen = true
}

// TrainEpochs runs multiple passes over a dataset, returning the training
// accuracy of the final epoch. It does not finalise.
func (p *Perceptron) TrainEpochs(labels []string, features [][]string, epochs int) (float64, error) {
	if len(labels) != len(features) {
		return 0, fmt.Errorf("classify: %d labels vs %d feature sets", len(labels), len(features))
	}
	var lastAcc float64
	for e := 0; e < epochs; e++ {
		correct := 0
		for i := range labels {
			ok, err := p.Train(labels[i], features[i])
			if err != nil {
				return 0, err
			}
			if ok {
				correct++
			}
		}
		if len(labels) > 0 {
			lastAcc = float64(correct) / float64(len(labels))
		}
	}
	return lastAcc, nil
}
