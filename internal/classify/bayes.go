// Package classify provides the statistical classifiers behind message
// typing (informative vs request, the IE service's first decision per the
// paper's workflow rules) and token-level entity detection: a multinomial
// Naive Bayes classifier and an averaged perceptron, both over string
// features, stdlib only.
package classify

import (
	"fmt"
	"math"
	"sort"
)

// NaiveBayes is a multinomial Naive Bayes classifier with add-one
// (Laplace) smoothing over string features.
type NaiveBayes struct {
	classes     map[string]*nbClass
	vocabulary  map[string]bool
	totalDocs   int
	smoothAlpha float64
}

type nbClass struct {
	docs       int
	tokenCount int
	counts     map[string]int
}

// NewNaiveBayes returns an untrained classifier with Laplace smoothing.
func NewNaiveBayes() *NaiveBayes {
	return &NaiveBayes{
		classes:     make(map[string]*nbClass),
		vocabulary:  make(map[string]bool),
		smoothAlpha: 1,
	}
}

// Train adds one labelled document (bag of features).
func (nb *NaiveBayes) Train(label string, features []string) error {
	if label == "" {
		return fmt.Errorf("classify: empty label")
	}
	c, ok := nb.classes[label]
	if !ok {
		c = &nbClass{counts: make(map[string]int)}
		nb.classes[label] = c
	}
	c.docs++
	nb.totalDocs++
	for _, f := range features {
		c.counts[f]++
		c.tokenCount++
		nb.vocabulary[f] = true
	}
	return nil
}

// Classes returns the known labels, sorted.
func (nb *NaiveBayes) Classes() []string {
	out := make([]string, 0, len(nb.classes))
	for l := range nb.classes {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Score is a label with its posterior probability.
type Score struct {
	Label string
	P     float64
}

// Predict returns the labels with normalised posterior probabilities,
// most probable first. An untrained classifier returns nil.
func (nb *NaiveBayes) Predict(features []string) []Score {
	if nb.totalDocs == 0 {
		return nil
	}
	v := float64(len(nb.vocabulary))
	type ll struct {
		label string
		logp  float64
	}
	lls := make([]ll, 0, len(nb.classes))
	for label, c := range nb.classes {
		logp := math.Log(float64(c.docs) / float64(nb.totalDocs))
		den := float64(c.tokenCount) + nb.smoothAlpha*v
		for _, f := range features {
			num := float64(c.counts[f]) + nb.smoothAlpha
			logp += math.Log(num / den)
		}
		lls = append(lls, ll{label, logp})
	}
	// Normalise with log-sum-exp.
	maxLog := math.Inf(-1)
	for _, x := range lls {
		if x.logp > maxLog {
			maxLog = x.logp
		}
	}
	var z float64
	for _, x := range lls {
		z += math.Exp(x.logp - maxLog)
	}
	out := make([]Score, len(lls))
	for i, x := range lls {
		out[i] = Score{Label: x.label, P: math.Exp(x.logp-maxLog) / z}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// PredictLabel returns the most probable label and its probability.
func (nb *NaiveBayes) PredictLabel(features []string) (string, float64) {
	scores := nb.Predict(features)
	if len(scores) == 0 {
		return "", 0
	}
	return scores[0].Label, scores[0].P
}
