package classify

import (
	"math"
	"math/rand"
	"testing"
)

func TestNaiveBayesBasic(t *testing.T) {
	nb := NewNaiveBayes()
	// Tiny informative-vs-request corpus.
	info := [][]string{
		{"loved", "the", "hotel", "in", "berlin"},
		{"great", "service", "at", "the", "resort"},
		{"room", "was", "clean", "and", "cheap"},
		{"traffic", "jam", "on", "the", "highway"},
	}
	req := [][]string{
		{"can", "anyone", "recommend", "a", "hotel"},
		{"where", "is", "a", "cheap", "hotel"},
		{"what", "is", "the", "best", "route"},
		{"any", "good", "restaurant", "near", "paris"},
	}
	for _, f := range info {
		if err := nb.Train("informative", f); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range req {
		if err := nb.Train("request", f); err != nil {
			t.Fatal(err)
		}
	}
	label, p := nb.PredictLabel([]string{"can", "you", "recommend", "a", "good", "hotel"})
	if label != "request" {
		t.Errorf("predicted %q, want request", label)
	}
	if p <= 0.5 || p > 1 {
		t.Errorf("posterior = %v", p)
	}
	label, _ = nb.PredictLabel([]string{"loved", "the", "clean", "room"})
	if label != "informative" {
		t.Errorf("predicted %q, want informative", label)
	}
}

func TestNaiveBayesPosteriorsSumToOne(t *testing.T) {
	nb := NewNaiveBayes()
	_ = nb.Train("a", []string{"x", "y"})
	_ = nb.Train("b", []string{"z"})
	_ = nb.Train("c", []string{"w", "x"})
	scores := nb.Predict([]string{"x", "q"})
	var sum float64
	for _, s := range scores {
		if s.P < 0 || s.P > 1 {
			t.Errorf("posterior out of range: %+v", s)
		}
		sum += s.P
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("posteriors sum to %v", sum)
	}
}

func TestNaiveBayesUntrained(t *testing.T) {
	nb := NewNaiveBayes()
	if got := nb.Predict([]string{"x"}); got != nil {
		t.Errorf("untrained Predict = %v", got)
	}
	label, p := nb.PredictLabel([]string{"x"})
	if label != "" || p != 0 {
		t.Errorf("untrained PredictLabel = %q, %v", label, p)
	}
	if err := nb.Train("", []string{"x"}); err == nil {
		t.Error("empty label accepted")
	}
}

func TestNaiveBayesUnseenFeatures(t *testing.T) {
	nb := NewNaiveBayes()
	_ = nb.Train("a", []string{"x"})
	_ = nb.Train("b", []string{"y"})
	// Entirely unseen features: smoothing keeps this finite and the class
	// priors decide (both equal here, so both probabilities ~0.5).
	scores := nb.Predict([]string{"never", "seen"})
	if len(scores) != 2 {
		t.Fatalf("scores = %v", scores)
	}
	if math.Abs(scores[0].P-0.5) > 1e-9 {
		t.Errorf("unseen features should fall back to prior: %v", scores)
	}
}

func TestNaiveBayesClasses(t *testing.T) {
	nb := NewNaiveBayes()
	_ = nb.Train("b", []string{"x"})
	_ = nb.Train("a", []string{"x"})
	got := nb.Classes()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Classes = %v", got)
	}
}

func TestPerceptronValidation(t *testing.T) {
	if _, err := NewPerceptron([]string{"only"}); err == nil {
		t.Error("single class accepted")
	}
	p, err := NewPerceptron([]string{"pos", "neg"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train("unknown", []string{"x"}); err == nil {
		t.Error("unknown label accepted")
	}
}

func TestPerceptronLearnsSeparable(t *testing.T) {
	p, err := NewPerceptron([]string{"loc", "other"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	locFeats := []string{"prev:in", "prev:at", "shape:initcap", "gaz:hit"}
	otherFeats := []string{"prev:the", "shape:alllower", "len:short", "stopword"}
	var labels []string
	var feats [][]string
	for i := 0; i < 200; i++ {
		if rng.Intn(2) == 0 {
			labels = append(labels, "loc")
			feats = append(feats, []string{locFeats[rng.Intn(len(locFeats))], locFeats[rng.Intn(len(locFeats))]})
		} else {
			labels = append(labels, "other")
			feats = append(feats, []string{otherFeats[rng.Intn(len(otherFeats))], otherFeats[rng.Intn(len(otherFeats))]})
		}
	}
	acc, err := p.TrainEpochs(labels, feats, 5)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Errorf("training accuracy = %v, want >= 0.95 on separable data", acc)
	}
	p.Finalize()
	if got := p.Predict([]string{"prev:in", "gaz:hit"}); got != "loc" {
		t.Errorf("Predict loc features = %q", got)
	}
	if got := p.Predict([]string{"stopword", "shape:alllower"}); got != "other" {
		t.Errorf("Predict other features = %q", got)
	}
}

func TestPerceptronFinalizeFreezes(t *testing.T) {
	p, err := NewPerceptron([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train("a", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	p.Finalize()
	if _, err := p.Train("a", []string{"x"}); err == nil {
		t.Error("training after finalise accepted")
	}
	// Double finalise is a no-op.
	p.Finalize()
}

func TestPerceptronMismatchedData(t *testing.T) {
	p, err := NewPerceptron([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.TrainEpochs([]string{"a"}, nil, 1); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestPerceptronDeterministicUntrained(t *testing.T) {
	p, err := NewPerceptron([]string{"zebra", "apple"})
	if err != nil {
		t.Fatal(err)
	}
	// All-zero weights: alphabetically first class wins deterministically.
	if got := p.Predict([]string{"x"}); got != "apple" {
		t.Errorf("untrained Predict = %q", got)
	}
}
