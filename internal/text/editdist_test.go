package text

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"berlin", "berlin", 0},
		{"berlin", "brelin", 2}, // transposition costs 2 in plain Levenshtein
		{"paris", "pariss", 1},
		{"café", "cafe", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDamerauKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"berlin", "brelin", 1}, // adjacent transposition
		{"teh", "the", 1},
		{"kitten", "sitting", 3},
		{"abc", "cba", 2},
		{"", "", 0},
		{"a", "", 1},
	}
	for _, c := range cases {
		if got := DamerauLevenshtein(c.a, c.b); got != c.want {
			t.Errorf("DamerauLevenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceProperties(t *testing.T) {
	// Symmetry and identity for both metrics.
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		if Levenshtein(a, b) != Levenshtein(b, a) {
			return false
		}
		if DamerauLevenshtein(a, b) != DamerauLevenshtein(b, a) {
			return false
		}
		if Levenshtein(a, a) != 0 || DamerauLevenshtein(a, a) != 0 {
			return false
		}
		// Damerau never exceeds Levenshtein.
		return DamerauLevenshtein(a, b) <= Levenshtein(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		if len(c) > 20 {
			c = c[:20]
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSimilarity(t *testing.T) {
	if s := Similarity("", ""); s != 1 {
		t.Errorf("empty similarity = %v", s)
	}
	if s := Similarity("berlin", "berlin"); s != 1 {
		t.Errorf("identical similarity = %v", s)
	}
	if s := Similarity("abc", "xyz"); s != 0 {
		t.Errorf("disjoint similarity = %v", s)
	}
	s := Similarity("movenpick", "movenpik")
	if s <= 0.8 || s >= 1 {
		t.Errorf("near-miss similarity = %v, want in (0.8, 1)", s)
	}
}

func TestSimilarityBounded(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		s := Similarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWithinDistance(t *testing.T) {
	if !WithinDistance("berlin", "brelin", 1) {
		t.Error("transposition should be within 1")
	}
	if WithinDistance("berlin", "munich", 2) {
		t.Error("berlin/munich within 2")
	}
	// Early exit path: length difference alone exceeds k.
	if WithinDistance("a", "abcdef", 2) {
		t.Error("length-gap early exit failed")
	}
}

func TestJaccardTokens(t *testing.T) {
	if j := JaccardTokens("essex house hotel", "hotel essex house"); j != 1 {
		t.Errorf("word-order jaccard = %v, want 1", j)
	}
	if j := JaccardTokens("", ""); j != 1 {
		t.Errorf("empty jaccard = %v", j)
	}
	j := JaccardTokens("essex house hotel", "essex house hotel and suites")
	if j <= 0.5 || j >= 1 {
		t.Errorf("partial jaccard = %v, want in (0.5, 1)", j)
	}
	if j := JaccardTokens("axel hotel", "central station"); j != 0 {
		t.Errorf("disjoint jaccard = %v", j)
	}
}

// TestWithinDistanceMatchesOracle: the fast paths (linear k=1 scan, banded
// DP) must agree with the full Damerau-Levenshtein matrix on random pairs.
func TestWithinDistanceMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2011))
	alphabet := []rune("abcde")
	randWord := func() string {
		n := rng.Intn(12)
		rs := make([]rune, n)
		for i := range rs {
			rs[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(rs)
	}
	for trial := 0; trial < 20000; trial++ {
		a, b := randWord(), randWord()
		k := rng.Intn(4)
		got := WithinDistance(a, b, k)
		want := DamerauLevenshtein(a, b) <= k
		if got != want {
			t.Fatalf("WithinDistance(%q, %q, %d) = %t, oracle %t (dist=%d)",
				a, b, k, got, want, DamerauLevenshtein(a, b))
		}
	}
}

// TestWithinDistanceMutations: systematic single-edit mutations of a word
// must all be within distance 1.
func TestWithinDistanceMutations(t *testing.T) {
	base := "marrakesh"
	rs := []rune(base)
	var muts []string
	for i := range rs {
		// deletion
		muts = append(muts, string(rs[:i])+string(rs[i+1:]))
		// substitution
		sub := append([]rune{}, rs...)
		sub[i] = 'z'
		muts = append(muts, string(sub))
		// insertion
		muts = append(muts, string(rs[:i])+"q"+string(rs[i:]))
		// transposition
		if i+1 < len(rs) {
			tr := append([]rune{}, rs...)
			tr[i], tr[i+1] = tr[i+1], tr[i]
			muts = append(muts, string(tr))
		}
	}
	for _, m := range muts {
		if !WithinDistance(base, m, 1) {
			t.Errorf("WithinDistance(%q, %q, 1) = false", base, m)
		}
		if !WithinDistance(m, base, 1) {
			t.Errorf("WithinDistance(%q, %q, 1) = false (swapped)", m, base)
		}
	}
	for _, far := range []string{"marrqkzsh", "arrakeshm", "", "zzzzzzzzz"} {
		if WithinDistance(base, far, 1) {
			t.Errorf("WithinDistance(%q, %q, 1) = true, want false", base, far)
		}
	}
}
