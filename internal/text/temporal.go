package text

import (
	"strconv"
	"strings"
	"time"
)

// TimeRef is a resolved temporal expression: the "when" of the paper's W4
// (who, where, when, what). Informal time references are vague ("this
// morning", "an hour ago"), so a reference resolves to a window rather
// than an instant, mirroring how spatial vagueness resolves to fuzzy
// regions.
type TimeRef struct {
	// Start and End bound the window the expression refers to,
	// Start <= End always.
	Start, End time.Time
	// Fuzzy marks hedged or inherently vague expressions.
	Fuzzy bool
	// Text is the surface form matched.
	Text string
}

// Instant collapses the window to a single representative instant (its
// midpoint), for callers that need one timestamp.
func (r TimeRef) Instant() time.Time {
	return r.Start.Add(r.End.Sub(r.Start) / 2)
}

// ParseTemporal finds the first temporal expression in an informal message
// and resolves it against the reference time (normally the message's
// receipt time). It recognises the patterns common in short reports:
// "now", "today", "yesterday", "last night", "tonight", "this
// morning/afternoon/evening", "N hours/minutes ago", "an hour ago",
// "at 18:30", "at 6pm". Returns ok=false when the message carries no
// recognisable time reference.
func ParseTemporal(msg string, ref time.Time) (TimeRef, bool) {
	tokens := Tokenize(msg)
	for i := range tokens {
		if r, ok := parseTemporalAt(tokens, i, ref); ok {
			return r, true
		}
	}
	return TimeRef{}, false
}

func parseTemporalAt(tokens []Token, i int, ref time.Time) (TimeRef, bool) {
	low := tokens[i].Lower
	day := func(t time.Time) time.Time {
		return time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, t.Location())
	}
	at := func(t time.Time, h, m int) time.Time {
		return time.Date(t.Year(), t.Month(), t.Day(), h, m, 0, 0, t.Location())
	}

	switch low {
	case "now", "atm":
		return TimeRef{Start: ref, End: ref, Text: tokens[i].Text}, true
	case "today":
		return TimeRef{Start: day(ref), End: ref, Fuzzy: true, Text: tokens[i].Text}, true
	case "yesterday":
		y := day(ref).AddDate(0, 0, -1)
		return TimeRef{Start: y, End: day(ref), Fuzzy: true, Text: tokens[i].Text}, true
	case "tonight":
		return TimeRef{Start: at(ref, 18, 0), End: at(ref, 23, 59), Fuzzy: true, Text: tokens[i].Text}, true
	case "this":
		if i+1 >= len(tokens) {
			return TimeRef{}, false
		}
		switch tokens[i+1].Lower {
		case "morning":
			return TimeRef{Start: at(ref, 6, 0), End: at(ref, 12, 0), Fuzzy: true, Text: "this morning"}, true
		case "afternoon":
			return TimeRef{Start: at(ref, 12, 0), End: at(ref, 18, 0), Fuzzy: true, Text: "this afternoon"}, true
		case "evening":
			return TimeRef{Start: at(ref, 18, 0), End: at(ref, 22, 0), Fuzzy: true, Text: "this evening"}, true
		}
		return TimeRef{}, false
	case "last":
		if i+1 < len(tokens) && tokens[i+1].Lower == "night" {
			prev := day(ref).AddDate(0, 0, -1)
			return TimeRef{
				Start: at(prev, 20, 0), End: day(ref),
				Fuzzy: true, Text: "last night",
			}, true
		}
		return TimeRef{}, false
	case "an", "a":
		// "an hour ago", "a minute ago".
		if i+2 < len(tokens) && tokens[i+2].Lower == "ago" {
			if d, ok := unitDuration(tokens[i+1].Lower); ok {
				return agoRef(ref, d, tokens[i].Text+" "+tokens[i+1].Text+" ago"), true
			}
		}
		return TimeRef{}, false
	case "at":
		if i+1 < len(tokens) {
			if h, m, ok := clockTime(tokens[i+1].Lower); ok {
				t := at(ref, h, m)
				if t.After(ref) {
					t = t.AddDate(0, 0, -1) // "at 18:30" received at 09:00 means yesterday evening
				}
				return TimeRef{Start: t, End: t, Text: "at " + tokens[i+1].Text}, true
			}
		}
		return TimeRef{}, false
	}

	// "<N> hours ago", "<N> mins ago", possibly with the unit attached
	// ("2h ago").
	if tokens[i].Kind == KindNumber {
		n, unit, ok := numberAndUnit(tokens, i)
		if !ok {
			return TimeRef{}, false
		}
		j := i + 1
		if unitAttached(tokens[i].Lower) {
			j = i + 1
		} else {
			j = i + 2
		}
		if j >= len(tokens) || tokens[j].Lower != "ago" {
			return TimeRef{}, false
		}
		d, ok := unitDuration(unit)
		if !ok {
			return TimeRef{}, false
		}
		return agoRef(ref, time.Duration(n*float64(d)), "ago"), true
	}
	return TimeRef{}, false
}

// agoRef builds a fuzzy window around ref-d: informal "ago" statements are
// round numbers, so the window spans ±10% of the stated distance (at least
// a minute).
func agoRef(ref time.Time, d time.Duration, txt string) TimeRef {
	centre := ref.Add(-d)
	slack := d / 10
	if slack < time.Minute {
		slack = time.Minute
	}
	end := centre.Add(slack)
	if end.After(ref) {
		end = ref
	}
	return TimeRef{Start: centre.Add(-slack), End: end, Fuzzy: true, Text: txt}
}

func unitDuration(unit string) (time.Duration, bool) {
	switch strings.TrimSuffix(unit, "s") {
	case "hour", "hr", "h":
		return time.Hour, true
	case "minute", "min", "m":
		return time.Minute, true
	case "day", "d":
		return 24 * time.Hour, true
	case "week", "wk", "w":
		return 7 * 24 * time.Hour, true
	default:
		return 0, false
	}
}

// clockTime parses "18:30", "6pm", "6.30pm", "06:05".
func clockTime(s string) (h, m int, ok bool) {
	pm := strings.HasSuffix(s, "pm")
	am := strings.HasSuffix(s, "am")
	s = strings.TrimSuffix(strings.TrimSuffix(s, "pm"), "am")
	s = strings.ReplaceAll(s, ".", ":")
	hh, mm := s, "0"
	if idx := strings.IndexByte(s, ':'); idx >= 0 {
		hh, mm = s[:idx], s[idx+1:]
	}
	hv, err := strconv.Atoi(hh)
	if err != nil {
		return 0, 0, false
	}
	mv, err := strconv.Atoi(mm)
	if err != nil || mv < 0 || mv > 59 {
		return 0, 0, false
	}
	if pm && hv < 12 {
		hv += 12
	}
	if am && hv == 12 {
		hv = 0
	}
	if hv < 0 || hv > 23 {
		return 0, 0, false
	}
	// A bare number without am/pm or minutes is too ambiguous to be a
	// clock time ("at 5 km", "at 3 we left").
	if !pm && !am && !strings.Contains(s, ":") {
		return 0, 0, false
	}
	return hv, mv, true
}

// numberAndUnit extracts the quantity and unit from "<2> <hours>" or
// "<2h>" token shapes.
func numberAndUnit(tokens []Token, i int) (float64, string, bool) {
	low := tokens[i].Lower
	idx := len(low)
	for k, r := range low {
		if !(r >= '0' && r <= '9' || r == '.') {
			idx = k
			break
		}
	}
	n, err := strconv.ParseFloat(low[:idx], 64)
	if err != nil {
		return 0, "", false
	}
	if idx < len(low) {
		return n, low[idx:], true // attached: "2h"
	}
	if i+1 < len(tokens) {
		return n, tokens[i+1].Lower, true
	}
	return 0, "", false
}

func unitAttached(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			if r == '.' {
				continue
			}
			return true
		}
	}
	return false
}
