package text

import (
	"strings"
	"unicode"
)

// Orthographic captures the surface-shape features of a token that named-
// entity extraction on informal text falls back on once capitalisation is
// unreliable (paper RQ2b: "What features can be used for Named Entities
// extraction in informal short text?").
type Orthographic struct {
	InitialCap   bool // First
	AllCaps      bool // NYC
	AllLower     bool // obama
	MixedCase    bool // McCormick, iPhone
	HasDigit     bool // l8r, 42nd
	AllDigit     bool // 2010
	HasApostro   bool // Schmick's
	HasHyphen    bool // north-east
	IsElongated  bool // sooooo
	IsAbbrev     bool // known SMS shorthand
	SingleLetter bool // b, u
	Length       int  // rune count
}

// Shape returns the orthographic feature vector of a raw token text.
func Shape(token string) Orthographic {
	var o Orthographic
	var upper, lower, digit, letter int
	first := true
	firstUpper := false
	for _, r := range token {
		o.Length++
		switch {
		case unicode.IsUpper(r):
			upper++
			letter++
			if first {
				firstUpper = true
			}
		case unicode.IsLower(r):
			lower++
			letter++
		case unicode.IsDigit(r):
			digit++
		case r == '\'' || r == '’':
			o.HasApostro = true
		case r == '-':
			o.HasHyphen = true
		}
		first = false
	}
	o.InitialCap = firstUpper && lower > 0
	o.AllCaps = letter > 0 && upper == letter
	o.AllLower = letter > 0 && lower == letter
	o.MixedCase = upper > 0 && lower > 0 && !o.InitialCap
	// InitialCap words with a later capital are mixed case too (McCormick).
	if firstUpper && upper > 1 && lower > 0 {
		o.MixedCase = true
	}
	o.HasDigit = digit > 0 && letter > 0
	o.AllDigit = digit > 0 && letter == 0
	o.IsElongated = IsElongated(token)
	_, o.IsAbbrev = ExpandAbbreviation(token)
	o.SingleLetter = o.Length == 1 && letter == 1
	return o
}

// FeatureStrings renders the active features as stable string identifiers
// for use in linear models and Naive Bayes.
func (o Orthographic) FeatureStrings() []string {
	var out []string
	add := func(on bool, name string) {
		if on {
			out = append(out, name)
		}
	}
	add(o.InitialCap, "shape:initcap")
	add(o.AllCaps, "shape:allcaps")
	add(o.AllLower, "shape:alllower")
	add(o.MixedCase, "shape:mixed")
	add(o.HasDigit, "shape:hasdigit")
	add(o.AllDigit, "shape:alldigit")
	add(o.HasApostro, "shape:apostrophe")
	add(o.HasHyphen, "shape:hyphen")
	add(o.IsElongated, "shape:elongated")
	add(o.IsAbbrev, "shape:abbrev")
	add(o.SingleLetter, "shape:single")
	switch {
	case o.Length <= 2:
		out = append(out, "len:short")
	case o.Length <= 6:
		out = append(out, "len:mid")
	default:
		out = append(out, "len:long")
	}
	return out
}

// ContextFeatures returns feature identifiers describing the tokens
// immediately before and after position i — the "external evidence" the
// paper says classic NER uses.
func ContextFeatures(tokens []Token, i int) []string {
	var out []string
	if i > 0 {
		out = append(out, "prev:"+tokens[i-1].Lower)
		if tokens[i-1].Kind == KindPunct {
			out = append(out, "prev:punct")
		}
	} else {
		out = append(out, "prev:<s>")
	}
	if i+1 < len(tokens) {
		out = append(out, "next:"+tokens[i+1].Lower)
		if tokens[i+1].Kind == KindPunct {
			out = append(out, "next:punct")
		}
	} else {
		out = append(out, "next:</s>")
	}
	return out
}

// stopwords are high-frequency function words excluded from keyword
// extraction and entity candidates.
var stopwords = map[string]bool{
	"the": true, "a": true, "an": true, "and": true, "or": true, "but": true,
	"in": true, "on": true, "at": true, "of": true, "to": true, "from": true,
	"by": true, "with": true, "is": true, "are": true, "was": true,
	"were": true, "be": true, "been": true, "am": true, "i": true,
	"you": true, "he": true, "she": true, "it": true, "we": true,
	"they": true, "me": true, "my": true, "your": true, "his": true,
	"her": true, "its": true, "our": true, "their": true, "this": true,
	"that": true, "these": true, "those": true, "there": true, "here": true,
	"what": true, "which": true, "who": true, "whom": true, "when": true,
	"where": true, "why": true, "how": true, "all": true, "any": true,
	"both": true, "each": true, "few": true, "more": true, "most": true,
	"other": true, "some": true, "such": true, "only": true, "own": true,
	"same": true, "so": true, "than": true, "too": true, "very": true,
	"can": true, "will": true, "just": true, "do": true, "does": true,
	"did": true, "have": true, "has": true, "had": true, "not": true,
	"no": true, "nor": true, "as": true, "if": true, "then": true,
	"else": true, "for": true, "about": true, "into": true, "over": true,
	"under": true, "again": true, "once": true, "out": true, "up": true,
	"down": true, "also": true,
}

// IsStopword reports whether the lowercased word is a function word.
func IsStopword(w string) bool {
	return stopwords[strings.ToLower(w)]
}

// ContentWords filters a word list down to non-stopword words of length
// at least 2 (after normalisation).
func ContentWords(words []string) []string {
	var out []string
	for _, w := range words {
		lw := strings.ToLower(w)
		if len(lw) >= 2 && !stopwords[lw] {
			out = append(out, lw)
		}
	}
	return out
}
