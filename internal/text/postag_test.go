package text

import "testing"

func tagOf(t *testing.T, sentence, word string) POSTag {
	t.Helper()
	toks := Tokenize(sentence)
	tags := TagTokens(toks)
	for i, tok := range toks {
		if tok.Text == word {
			return tags[i]
		}
	}
	t.Fatalf("word %q not found in %q", word, sentence)
	return TagUnknown
}

func TestTagClosedClass(t *testing.T) {
	cases := []struct {
		sentence, word string
		want           POSTag
	}{
		{"the hotel is nice", "the", TagDeterminer},
		{"the hotel is nice", "is", TagVerb},
		{"the hotel is nice", "nice", TagAdjective},
		{"we stayed in Berlin", "in", TagPreposition},
		{"we stayed in Berlin", "we", TagPronoun},
		{"good and cheap", "and", TagConjunction},
		{"really lovely view", "really", TagAdverb},
	}
	for _, c := range cases {
		if got := tagOf(t, c.sentence, c.word); got != c.want {
			t.Errorf("tag(%q in %q) = %v, want %v", c.word, c.sentence, got, c.want)
		}
	}
}

func TestTagProperNounMidSentence(t *testing.T) {
	// Capitalised mid-sentence -> proper noun.
	if got := tagOf(t, "we stayed in Berlin", "Berlin"); got != TagProperNoun {
		t.Errorf("Berlin = %v, want PROPN", got)
	}
	// Sentence-initial capital is NOT proper-noun evidence.
	if got := tagOf(t, "Hotels are nice", "Hotels"); got == TagProperNoun {
		t.Error("sentence-initial capital misread as proper noun")
	}
}

func TestTagLowercaseProperNounMissed(t *testing.T) {
	// The paper's core observation: "obama" lowercase defeats the
	// capitalisation cue. The tagger (correctly reproducing the failure
	// mode) does NOT see a proper noun.
	if got := tagOf(t, "i met obama today", "obama"); got == TagProperNoun {
		t.Error("lowercase obama tagged PROPN; the traditional cue should fail here")
	}
}

func TestTagSuffixHeuristics(t *testing.T) {
	cases := []struct {
		sentence, word string
		want           POSTag
	}{
		{"walking around town", "walking", TagVerb},
		{"we booked a room", "booked", TagVerb},
		{"a wonderful celebration", "celebration", TagNoun},
		{"incredibly spacious", "incredibly", TagAdverb},
	}
	for _, c := range cases {
		if got := tagOf(t, c.sentence, c.word); got != c.want {
			t.Errorf("tag(%q) = %v, want %v", c.word, got, c.want)
		}
	}
}

func TestTagNumbersAndNoise(t *testing.T) {
	toks := Tokenize("rooms from $154 :) @guide http://x.io")
	tags := TagTokens(toks)
	for i, tok := range toks {
		switch tok.Kind {
		case KindNumber:
			if tags[i] != TagNumber {
				t.Errorf("number token %q tagged %v", tok.Text, tags[i])
			}
		case KindEmoticon, KindMention, KindURL:
			if tags[i] != TagUnknown {
				t.Errorf("noise token %q tagged %v", tok.Text, tags[i])
			}
		}
	}
}

func TestSentenceBoundaryResets(t *testing.T) {
	toks := Tokenize("great stay. Berlin was sunny")
	tags := TagTokens(toks)
	// "Berlin" follows the period, so it is sentence-initial; it must not be
	// tagged PROPN on capitalisation alone.
	for i, tok := range toks {
		if tok.Text == "Berlin" && tags[i] == TagProperNoun {
			t.Error("sentence-initial Berlin tagged PROPN from capitalisation")
		}
	}
}

func TestPOSTagString(t *testing.T) {
	all := []POSTag{TagUnknown, TagNoun, TagProperNoun, TagVerb, TagAdjective,
		TagAdverb, TagPronoun, TagDeterminer, TagPreposition, TagConjunction,
		TagNumber, TagInterjection}
	seen := map[string]bool{}
	for _, tag := range all {
		s := tag.String()
		if s == "" {
			t.Errorf("empty string for %d", tag)
		}
		if seen[s] {
			t.Errorf("duplicate string %q", s)
		}
		seen[s] = true
	}
}
