package text

import "strings"

// POSTag is a coarse part-of-speech class. The paper's RQ2a asks whether
// NLP tools "perform as adequate as they should on informal text"; this
// rule-based tagger is deliberately representative of the lexicon+suffix
// heuristics such tools rely on, so the degradation on noisy text is
// measurable (experiment E5).
type POSTag int

// Coarse tags.
const (
	TagUnknown POSTag = iota
	TagNoun
	TagProperNoun
	TagVerb
	TagAdjective
	TagAdverb
	TagPronoun
	TagDeterminer
	TagPreposition
	TagConjunction
	TagNumber
	TagInterjection
)

// String implements fmt.Stringer.
func (t POSTag) String() string {
	switch t {
	case TagNoun:
		return "NOUN"
	case TagProperNoun:
		return "PROPN"
	case TagVerb:
		return "VERB"
	case TagAdjective:
		return "ADJ"
	case TagAdverb:
		return "ADV"
	case TagPronoun:
		return "PRON"
	case TagDeterminer:
		return "DET"
	case TagPreposition:
		return "ADP"
	case TagConjunction:
		return "CONJ"
	case TagNumber:
		return "NUM"
	case TagInterjection:
		return "INTJ"
	default:
		return "X"
	}
}

var closedClass = map[string]POSTag{
	// Pronouns.
	"i": TagPronoun, "you": TagPronoun, "he": TagPronoun, "she": TagPronoun,
	"it": TagPronoun, "we": TagPronoun, "they": TagPronoun, "me": TagPronoun,
	"him": TagPronoun, "her": TagPronoun, "us": TagPronoun, "them": TagPronoun,
	"my": TagPronoun, "your": TagPronoun, "his": TagPronoun, "its": TagPronoun,
	"our": TagPronoun, "their": TagPronoun, "anyone": TagPronoun, "someone": TagPronoun,
	// Determiners.
	"the": TagDeterminer, "a": TagDeterminer, "an": TagDeterminer,
	"this": TagDeterminer, "that": TagDeterminer, "these": TagDeterminer,
	"those": TagDeterminer, "some": TagDeterminer, "any": TagDeterminer,
	"no": TagDeterminer, "every": TagDeterminer, "each": TagDeterminer,
	// Prepositions.
	"in": TagPreposition, "on": TagPreposition, "at": TagPreposition,
	"of": TagPreposition, "to": TagPreposition, "from": TagPreposition,
	"by": TagPreposition, "with": TagPreposition, "near": TagPreposition,
	"about": TagPreposition, "into": TagPreposition, "over": TagPreposition,
	"under": TagPreposition, "between": TagPreposition, "around": TagPreposition,
	"through": TagPreposition, "during": TagPreposition,
	// Conjunctions.
	"and": TagConjunction, "or": TagConjunction, "but": TagConjunction,
	"because": TagConjunction, "unless": TagConjunction, "if": TagConjunction,
	"while": TagConjunction, "though": TagConjunction,
	// Common verbs (base + frequent inflections).
	"is": TagVerb, "are": TagVerb, "was": TagVerb, "were": TagVerb,
	"be": TagVerb, "been": TagVerb, "am": TagVerb, "have": TagVerb,
	"has": TagVerb, "had": TagVerb, "do": TagVerb, "does": TagVerb,
	"did": TagVerb, "will": TagVerb, "would": TagVerb, "can": TagVerb,
	"could": TagVerb, "should": TagVerb, "may": TagVerb, "might": TagVerb,
	"go": TagVerb, "went": TagVerb, "get": TagVerb, "got": TagVerb,
	"recommend": TagVerb, "love": TagVerb, "loved": TagVerb, "hate": TagVerb,
	"stay": TagVerb, "stayed": TagVerb, "visit": TagVerb, "told": TagVerb,
	"made": TagVerb, "make": TagVerb, "send": TagVerb, "sent": TagVerb,
	// Adverbs.
	"very": TagAdverb, "really": TagAdverb, "just": TagAdverb,
	"not": TagAdverb, "too": TagAdverb, "so": TagAdverb, "here": TagAdverb,
	"there": TagAdverb, "now": TagAdverb, "never": TagAdverb, "always": TagAdverb,
	"ridiculously": TagAdverb, "right": TagAdverb, "well": TagAdverb,
	// Common adjectives seen in reviews.
	"good": TagAdjective, "bad": TagAdjective, "nice": TagAdjective,
	"great": TagAdjective, "cheap": TagAdjective, "expensive": TagAdjective,
	"clean": TagAdjective, "dirty": TagAdjective, "friendly": TagAdjective,
	"grim": TagAdjective, "sunny": TagAdjective, "new": TagAdjective,
	"old": TagAdjective, "big": TagAdjective, "small": TagAdjective,
	"impressed": TagAdjective, "enough": TagAdjective,
	// Interjections.
	"hi": TagInterjection, "hello": TagInterjection, "wow": TagInterjection,
	"oh": TagInterjection, "yay": TagInterjection, "ugh": TagInterjection,
	"lol": TagInterjection, "omg": TagInterjection,
}

// TagWord assigns a coarse POS tag to a single token given whether it
// appeared sentence-initial (capitalisation at sentence start is not
// evidence of a proper noun).
func TagWord(tok Token, sentenceInitial bool) POSTag {
	if tok.Kind == KindNumber {
		return TagNumber
	}
	if tok.Kind == KindEmoticon || tok.Kind == KindMention || tok.Kind == KindURL {
		return TagUnknown
	}
	w := tok.Lower
	if tag, ok := closedClass[w]; ok {
		return tag
	}
	// Capitalised mid-sentence word: the classic proper-noun cue. This is
	// exactly the cue that informal lowercase text destroys ("obama …").
	if !sentenceInitial && isCapitalized(tok.Text) {
		return TagProperNoun
	}
	// Suffix heuristics.
	switch {
	case strings.HasSuffix(w, "ly"):
		return TagAdverb
	case strings.HasSuffix(w, "ing"), strings.HasSuffix(w, "ed"):
		return TagVerb
	case strings.HasSuffix(w, "ous"), strings.HasSuffix(w, "ful"),
		strings.HasSuffix(w, "ive"), strings.HasSuffix(w, "able"),
		strings.HasSuffix(w, "al"), strings.HasSuffix(w, "ish"):
		return TagAdjective
	case strings.HasSuffix(w, "tion"), strings.HasSuffix(w, "ness"),
		strings.HasSuffix(w, "ment"), strings.HasSuffix(w, "ity"):
		return TagNoun
	}
	if sentenceInitial && isCapitalized(tok.Text) {
		// Ambiguous: could be a proper noun or just sentence case; call it
		// noun and let downstream evidence decide.
		return TagNoun
	}
	return TagNoun
}

// TagTokens tags a full token slice, tracking sentence boundaries.
func TagTokens(tokens []Token) []POSTag {
	tags := make([]POSTag, len(tokens))
	sentenceInitial := true
	for i, tok := range tokens {
		if tok.Kind == KindPunct {
			tags[i] = TagUnknown
			if strings.ContainsAny(tok.Text, ".!?") {
				sentenceInitial = true
			}
			continue
		}
		tags[i] = TagWord(tok, sentenceInitial)
		sentenceInitial = false
	}
	return tags
}

func isCapitalized(s string) bool {
	for _, r := range s {
		return r >= 'A' && r <= 'Z'
	}
	return false
}
