package text

import (
	"reflect"
	"testing"
)

func TestWordNGrams(t *testing.T) {
	words := []string{"axel", "hotel", "berlin"}
	got := WordNGrams(words, 1, 2)
	want := []string{"axel", "hotel", "berlin", "axel hotel", "hotel berlin"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WordNGrams = %v, want %v", got, want)
	}
	if got := WordNGrams(nil, 1, 3); got != nil {
		t.Errorf("empty input = %v", got)
	}
	if got := WordNGrams(words, 0, 1); len(got) != 3 {
		t.Errorf("minN clamp: %v", got)
	}
	if got := WordNGrams(words, 4, 5); got != nil {
		t.Errorf("n beyond length = %v", got)
	}
}

func TestTokenNGramSpans(t *testing.T) {
	toks := Tokenize("loved Axel Hotel in Berlin, great stay")
	spans := TokenNGramSpans(toks, 2, 3)
	found := map[string]bool{}
	for _, s := range spans {
		found[s.Text] = true
	}
	if !found["axel hotel"] {
		t.Errorf("missing 'axel hotel' in %v", spans)
	}
	if !found["axel hotel in"] {
		t.Errorf("missing trigram in %v", spans)
	}
	// Spans must not cross the comma.
	if found["berlin great"] || found["berlin , great"] {
		t.Error("span crossed punctuation boundary")
	}
}

func TestTokenNGramSpanOffsets(t *testing.T) {
	toks := Tokenize("the Axel Hotel rocks")
	for _, s := range TokenNGramSpans(toks, 1, 4) {
		if s.Start < 0 || s.End > len(toks) || s.Start >= s.End {
			t.Fatalf("bad span %+v", s)
		}
	}
}

func TestCharNGrams(t *testing.T) {
	got := CharNGrams("abcd", 2)
	want := []string{"ab", "bc", "cd"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CharNGrams = %v", got)
	}
	if got := CharNGrams("ab", 3); got != nil {
		t.Errorf("short input = %v", got)
	}
	if got := CharNGrams("abc", 0); got != nil {
		t.Errorf("n=0 = %v", got)
	}
	// Unicode-safe.
	got = CharNGrams("café", 2)
	if len(got) != 3 || got[2] != "fé" {
		t.Errorf("unicode ngrams = %v", got)
	}
}
