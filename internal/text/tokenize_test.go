package text

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func tokenTexts(ts []Token) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	ts := Tokenize("Good morning Berlin. The sun is out!!!!")
	want := []string{"Good", "morning", "Berlin", ".", "The", "sun", "is", "out", "!!!!"}
	if got := tokenTexts(ts); !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeHashtagMention(t *testing.T) {
	ts := Tokenize("Very impressed by the customer service at #movenpick hotel @berlinguide")
	var hashtags, mentions []string
	for _, tok := range ts {
		switch tok.Kind {
		case KindHashtag:
			hashtags = append(hashtags, tok.Text)
		case KindMention:
			mentions = append(mentions, tok.Text)
		}
	}
	if !reflect.DeepEqual(hashtags, []string{"#movenpick"}) {
		t.Errorf("hashtags = %v", hashtags)
	}
	if !reflect.DeepEqual(mentions, []string{"@berlinguide"}) {
		t.Errorf("mentions = %v", mentions)
	}
}

func TestTokenizeCurrencyAndUnits(t *testing.T) {
	ts := Tokenize("Essex House Hotel and Suites from $154 USD, 5km from centre, open 18:30")
	var numbers []string
	for _, tok := range ts {
		if tok.Kind == KindNumber {
			numbers = append(numbers, tok.Text)
		}
	}
	want := []string{"$154", "5km", "18:30"}
	if !reflect.DeepEqual(numbers, want) {
		t.Errorf("numbers = %v, want %v", numbers, want)
	}
}

func TestTokenizeAmpersandName(t *testing.T) {
	ts := Tokenize("McCormick & Schmicks is a few blocks west")
	got := tokenTexts(ts)
	if got[0] != "McCormick" {
		t.Errorf("first token %q", got[0])
	}
	// "&" between spaced words stays separate punctuation.
	found := false
	for _, s := range got {
		if s == "&" {
			found = true
		}
	}
	if !found {
		t.Errorf("& not tokenised separately in %v", got)
	}
	// But tight M&S stays together.
	ts2 := Tokenize("shopping at M&S today")
	joined := false
	for _, tok := range ts2 {
		if tok.Text == "M&S" {
			joined = true
		}
	}
	if !joined {
		t.Errorf("M&S split: %v", tokenTexts(ts2))
	}
}

func TestTokenizeApostrophe(t *testing.T) {
	ts := Tokenize("don't miss Schmick's rooftop")
	got := tokenTexts(ts)
	if got[0] != "don't" {
		t.Errorf("got %q, want don't", got[0])
	}
	if got[2] != "Schmick's" {
		t.Errorf("got %q, want Schmick's", got[2])
	}
}

func TestTokenizeEmoticons(t *testing.T) {
	ts := Tokenize("loved it :) but the weather :( was grim")
	var emo []string
	for _, tok := range ts {
		if tok.Kind == KindEmoticon {
			emo = append(emo, tok.Text)
		}
	}
	if !reflect.DeepEqual(emo, []string{":)", ":("}) {
		t.Errorf("emoticons = %v", emo)
	}
	// ":Paris" must not become ":P" + "aris".
	ts2 := Tokenize("next stop :Paris")
	for _, tok := range ts2 {
		if tok.Kind == KindEmoticon {
			t.Errorf("false emoticon %q in :Paris", tok.Text)
		}
	}
}

func TestTokenizeURL(t *testing.T) {
	ts := Tokenize("see https://example.com/x?y=1 and www.maps.net now")
	var urls []string
	for _, tok := range ts {
		if tok.Kind == KindURL {
			urls = append(urls, tok.Text)
		}
	}
	if len(urls) != 2 {
		t.Fatalf("urls = %v", urls)
	}
	if urls[0] != "https://example.com/x?y=1" || urls[1] != "www.maps.net" {
		t.Errorf("urls = %v", urls)
	}
}

func TestTokenizeOffsets(t *testing.T) {
	s := "café near Köln :) #fun"
	for _, tok := range Tokenize(s) {
		if tok.Start < 0 || tok.End > len(s) || tok.Start >= tok.End {
			t.Fatalf("bad offsets %d..%d for %q", tok.Start, tok.End, tok.Text)
		}
		if s[tok.Start:tok.End] != tok.Text {
			t.Errorf("offset slice %q != token %q", s[tok.Start:tok.End], tok.Text)
		}
	}
}

func TestTokenizeOffsetsProperty(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		prevEnd := 0
		for _, tok := range toks {
			if tok.Start < prevEnd || tok.End > len(s) || tok.Start >= tok.End {
				return false
			}
			if s[tok.Start:tok.End] != tok.Text {
				return false
			}
			prevEnd = tok.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTokenizeEmptyAndSpace(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("empty input: %v", got)
	}
	if got := Tokenize("   \t\n "); len(got) != 0 {
		t.Errorf("whitespace input: %v", got)
	}
}

func TestWords(t *testing.T) {
	ts := Tokenize("Good hotels in #Berlin cost $154 :) http://x.io")
	got := Words(ts)
	want := []string{"good", "hotels", "in", "berlin", "cost", "$154"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestSentences(t *testing.T) {
	got := Sentences("Good morning Berlin. The sun is out!!!! Very impressed.")
	if len(got) != 3 {
		t.Fatalf("Sentences = %v", got)
	}
	if !strings.HasPrefix(got[0], "Good morning") {
		t.Errorf("first sentence %q", got[0])
	}
	// No trailing empty sentence from punctuation runs.
	got2 := Sentences("hello!!! ")
	if len(got2) != 1 {
		t.Errorf("Sentences trailing = %v", got2)
	}
	if got3 := Sentences(""); len(got3) != 0 {
		t.Errorf("empty = %v", got3)
	}
}

func TestTokenKindString(t *testing.T) {
	kinds := []TokenKind{KindWord, KindNumber, KindPunct, KindHashtag, KindMention, KindURL, KindEmoticon, TokenKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty String for kind %d", k)
		}
	}
}
