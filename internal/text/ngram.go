package text

import "strings"

// WordNGrams returns all n-grams (as space-joined strings) of the given
// word slice, for n in [minN, maxN]. Multi-word entity candidates ("Axel
// Hotel", "Fox Sports Grill") come from these.
func WordNGrams(words []string, minN, maxN int) []string {
	if minN < 1 {
		minN = 1
	}
	var out []string
	for n := minN; n <= maxN; n++ {
		for i := 0; i+n <= len(words); i++ {
			out = append(out, strings.Join(words[i:i+n], " "))
		}
	}
	return out
}

// Span is a half-open token index range [Start, End) with its joined text.
type Span struct {
	Start, End int
	Text       string
}

// TokenNGramSpans returns spans over a token slice for n in [minN, maxN],
// using the tokens' lowercased surface forms joined with single spaces.
// Only word-like tokens participate; a span never crosses punctuation,
// which keeps entity candidates within phrase boundaries.
func TokenNGramSpans(tokens []Token, minN, maxN int) []Span {
	if minN < 1 {
		minN = 1
	}
	var out []Span
	// Identify maximal runs of word-like tokens.
	i := 0
	for i < len(tokens) {
		if !isEntityRune(tokens[i]) {
			i++
			continue
		}
		j := i
		for j < len(tokens) && isEntityRune(tokens[j]) {
			j++
		}
		// Emit n-grams within the run [i, j).
		for n := minN; n <= maxN; n++ {
			for k := i; k+n <= j; k++ {
				parts := make([]string, n)
				for m := 0; m < n; m++ {
					parts[m] = tokens[k+m].Lower
				}
				out = append(out, Span{Start: k, End: k + n, Text: strings.Join(parts, " ")})
			}
		}
		i = j
	}
	return out
}

func isEntityRune(t Token) bool {
	return t.Kind == KindWord || t.Kind == KindNumber || t.Kind == KindHashtag
}

// CharNGrams returns the character n-grams of a string (runes), used as
// features by the informal-text named-entity classifier.
func CharNGrams(s string, n int) []string {
	runes := []rune(s)
	if n < 1 || len(runes) < n {
		return nil
	}
	out := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		out = append(out, string(runes[i:i+n]))
	}
	return out
}
