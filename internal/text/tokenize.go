// Package text is the language substrate for informal short messages
// (tweets, SMS). It provides a noise-tolerant tokeniser, a normaliser that
// expands the "modern new abbreviations and expressions" the paper blames
// for breaking classic NLP pipelines, string-similarity measures for
// misspelling-tolerant matching, n-gram extraction, orthographic features,
// and a light-weight rule-based part-of-speech tagger.
package text

import (
	"strings"
	"unicode"
)

// TokenKind classifies a token's surface form.
type TokenKind int

// Token kinds.
const (
	KindWord TokenKind = iota
	KindNumber
	KindPunct
	KindHashtag
	KindMention
	KindURL
	KindEmoticon
)

// String implements fmt.Stringer.
func (k TokenKind) String() string {
	switch k {
	case KindWord:
		return "word"
	case KindNumber:
		return "number"
	case KindPunct:
		return "punct"
	case KindHashtag:
		return "hashtag"
	case KindMention:
		return "mention"
	case KindURL:
		return "url"
	case KindEmoticon:
		return "emoticon"
	default:
		return "unknown"
	}
}

// Token is a single lexical unit of an informal message.
type Token struct {
	Text  string    // surface form as written
	Lower string    // lowercased surface form
	Kind  TokenKind // lexical class
	Start int       // byte offset of the token's first byte in the input
	End   int       // byte offset one past the token's last byte
}

// emoticons recognised as single tokens; informal text is full of them and
// they carry sentiment.
var emoticons = map[string]bool{
	":)": true, ":-)": true, ":(": true, ":-(": true, ":D": true, ":-D": true,
	";)": true, ";-)": true, ":P": true, ":-P": true, ":/": true, ":-/": true,
	"<3": true, ":'(": true, "xD": true, "XD": true, "=)": true, "=(": true,
}

// Tokenize splits an informal message into tokens, keeping hashtags,
// mentions, URLs, emoticons, numbers with units or currency, and
// apostrophised words intact. It never fails: any byte sequence yields a
// (possibly empty) token list.
func Tokenize(s string) []Token {
	var out []Token
	runes := []rune(s)
	// byteAt[i] is the byte offset of runes[i]; byteAt[len] = len(s).
	byteAt := make([]int, len(runes)+1)
	{
		off := 0
		for i, r := range runes {
			byteAt[i] = off
			off += runeLen(r)
		}
		byteAt[len(runes)] = len(s)
	}
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '#' && i+1 < len(runes) && isWordRune(runes[i+1]):
			j := i + 1
			for j < len(runes) && isWordRune(runes[j]) {
				j++
			}
			out = append(out, makeToken(string(runes[i:j]), KindHashtag, byteAt[i], byteAt[j]))
			i = j
		case r == '@' && i+1 < len(runes) && isWordRune(runes[i+1]):
			j := i + 1
			for j < len(runes) && isWordRune(runes[j]) {
				j++
			}
			out = append(out, makeToken(string(runes[i:j]), KindMention, byteAt[i], byteAt[j]))
			i = j
		case hasURLPrefix(runes[i:]):
			j := i
			for j < len(runes) && !unicode.IsSpace(runes[j]) {
				j++
			}
			out = append(out, makeToken(string(runes[i:j]), KindURL, byteAt[i], byteAt[j]))
			i = j
		case matchEmoticon(runes[i:]) > 0:
			n := matchEmoticon(runes[i:])
			out = append(out, makeToken(string(runes[i:i+n]), KindEmoticon, byteAt[i], byteAt[i+n]))
			i += n
		case unicode.IsDigit(r) || (r == '$' || r == '€' || r == '£') && i+1 < len(runes) && unicode.IsDigit(runes[i+1]):
			j := i
			if !unicode.IsDigit(runes[j]) {
				j++ // leading currency sign
			}
			for j < len(runes) && (unicode.IsDigit(runes[j]) || runes[j] == '.' || runes[j] == ',' || runes[j] == ':') {
				// Keep separators only between digits ("154.50", "18:30").
				if runes[j] != '.' && runes[j] != ',' && runes[j] != ':' {
					j++
					continue
				}
				if j+1 < len(runes) && unicode.IsDigit(runes[j+1]) {
					j++
					continue
				}
				break
			}
			// Attach trailing unit letters ("5km", "30min", "154USD").
			for j < len(runes) && unicode.IsLetter(runes[j]) {
				j++
			}
			out = append(out, makeToken(string(runes[i:j]), KindNumber, byteAt[i], byteAt[j]))
			i = j
		case unicode.IsLetter(r):
			j := i
			for j < len(runes) && (isWordRune(runes[j]) || isInnerApostrophe(runes, j) || isInnerAmpersand(runes, j)) {
				j++
			}
			out = append(out, makeToken(string(runes[i:j]), KindWord, byteAt[i], byteAt[j]))
			i = j
		default:
			// Group runs of the same punctuation ("!!!!" stays one token; it
			// is an intensity signal for sentiment).
			j := i + 1
			for j < len(runes) && runes[j] == r {
				j++
			}
			out = append(out, makeToken(string(runes[i:j]), KindPunct, byteAt[i], byteAt[j]))
			i = j
		}
	}
	return out
}

func makeToken(s string, kind TokenKind, start, end int) Token {
	return Token{Text: s, Lower: strings.ToLower(s), Kind: kind, Start: start, End: end}
}

func runeLen(r rune) int {
	switch {
	case r < 0x80:
		return 1
	case r < 0x800:
		return 2
	case r < 0x10000:
		return 3
	default:
		return 4
	}
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

// isInnerApostrophe allows "don't", "drivers'" to stay single tokens.
func isInnerApostrophe(runes []rune, j int) bool {
	if runes[j] != '\'' && runes[j] != '’' {
		return false
	}
	return j > 0 && unicode.IsLetter(runes[j-1]) &&
		(j+1 >= len(runes) || unicode.IsLetter(runes[j+1]) || unicode.IsSpace(runes[j+1]))
}

// isInnerAmpersand keeps business names like "McCormick & Schmicks"
// separable but joins "M&S"-style abbreviations.
func isInnerAmpersand(runes []rune, j int) bool {
	return runes[j] == '&' && j > 0 && unicode.IsLetter(runes[j-1]) &&
		j+1 < len(runes) && unicode.IsLetter(runes[j+1])
}

func hasURLPrefix(runes []rune) bool {
	for _, p := range []string{"http://", "https://", "www."} {
		if len(runes) >= len(p) && strings.EqualFold(string(runes[:len(p)]), p) {
			return true
		}
	}
	return false
}

func matchEmoticon(runes []rune) int {
	for n := 3; n >= 2; n-- {
		if len(runes) >= n && emoticons[string(runes[:n])] {
			// An emoticon must be followed by space or end of input so that
			// ":Paris" is not cut into ":P" + "aris".
			if len(runes) == n || unicode.IsSpace(runes[n]) || emoticonSafeFollower(runes[n]) {
				return n
			}
		}
	}
	return 0
}

func emoticonSafeFollower(r rune) bool {
	return r == '.' || r == ',' || r == '!' || r == '?'
}

// Words returns just the word-like token texts (words, hashtags without '#',
// numbers), lowercased — the form most classifiers consume.
func Words(tokens []Token) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		switch t.Kind {
		case KindWord, KindNumber:
			out = append(out, t.Lower)
		case KindHashtag:
			out = append(out, strings.TrimPrefix(t.Lower, "#"))
		}
	}
	return out
}

// Sentences splits a message into rough sentence spans on ., !, ? runs.
// Informal text rarely has clean sentence structure; this is a best-effort
// segmentation used by the extraction rules.
func Sentences(s string) []string {
	var out []string
	var cur strings.Builder
	for _, r := range s {
		cur.WriteRune(r)
		if r == '.' || r == '!' || r == '?' {
			if t := strings.TrimSpace(cur.String()); t != "" && hasLetter(t) {
				out = append(out, t)
			}
			cur.Reset()
		}
	}
	if t := strings.TrimSpace(cur.String()); t != "" && hasLetter(t) {
		out = append(out, t)
	}
	return out
}

func hasLetter(s string) bool {
	for _, r := range s {
		if unicode.IsLetter(r) {
			return true
		}
	}
	return false
}
