package text

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestExpandAbbreviation(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"b", "be", true},
		{"B", "be", true},
		{"u", "you", true},
		{"gr8", "great", true},
		{"hotel", "", false},
		{"", "", false},
	}
	for _, c := range cases {
		got, ok := ExpandAbbreviation(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ExpandAbbreviation(%q) = %q, %v; want %q, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestNormalizePaperTweet(t *testing.T) {
	// The paper's running example: "obama should b told NO vote on tax deal
	// unless omnibus is made public in advance !"
	got := Normalize("obama should b told NO vote on tax deal unless omnibus is made public in advance !")
	if !strings.Contains(got, "should be told") {
		t.Errorf("abbreviation b not expanded: %q", got)
	}
	if strings.Contains(got, " b ") {
		t.Errorf("raw shorthand survived: %q", got)
	}
}

func TestNormalizeElongation(t *testing.T) {
	got := Normalize("the room was sooooo nice!!!!")
	if strings.Contains(got, "sooo") {
		t.Errorf("elongation not collapsed: %q", got)
	}
	if strings.Contains(got, "!!") {
		t.Errorf("punctuation run not collapsed: %q", got)
	}
}

func TestNormalizeDropsURLs(t *testing.T) {
	got := Normalize("book here https://example.com/deal gr8 price")
	if strings.Contains(got, "http") {
		t.Errorf("URL survived: %q", got)
	}
	if !strings.Contains(got, "great price") {
		t.Errorf("gr8 not expanded: %q", got)
	}
}

func TestCollapseElongation(t *testing.T) {
	cases := []struct{ in, want string }{
		{"loooove", "loove"},
		{"good", "good"},
		{"soo", "soo"},
		{"sooo", "soo"},
		{"a", "a"},
		{"", ""},
		{"aaabbbccc", "aabbcc"},
	}
	for _, c := range cases {
		if got := CollapseElongation(c.in); got != c.want {
			t.Errorf("CollapseElongation(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCollapseElongationIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := CollapseElongation(s)
		return CollapseElongation(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIsElongated(t *testing.T) {
	if !IsElongated("sooooo") {
		t.Error("sooooo not detected")
	}
	if IsElongated("good") {
		t.Error("good misdetected")
	}
	if IsElongated("") {
		t.Error("empty misdetected")
	}
}

func TestNormalizeName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Mövenpick  Hotel!", "movenpick hotel"},
		{"McCormick & Schmicks", "mccormick and schmicks"},
		{"  Axel   Hotel ", "axel hotel"},
		{"São-Paulo", "sao paulo"},
		{"Kurfürstendamm", "kurfurstendamm"},
		{"", ""},
		{"!!!", ""},
	}
	for _, c := range cases {
		if got := NormalizeName(c.in); got != c.want {
			t.Errorf("NormalizeName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalizeNameIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := NormalizeName(s)
		return NormalizeName(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
