package text

import (
	"reflect"
	"testing"
)

func TestShape(t *testing.T) {
	cases := []struct {
		in    string
		check func(Orthographic) bool
		desc  string
	}{
		{"First", func(o Orthographic) bool { return o.InitialCap && !o.AllCaps }, "initial cap"},
		{"NYC", func(o Orthographic) bool { return o.AllCaps }, "all caps"},
		{"obama", func(o Orthographic) bool { return o.AllLower }, "all lower"},
		{"McCormick", func(o Orthographic) bool { return o.MixedCase }, "mixed case"},
		{"l8r", func(o Orthographic) bool { return o.HasDigit }, "has digit"},
		{"2010", func(o Orthographic) bool { return o.AllDigit && !o.HasDigit }, "all digit"},
		{"Schmick's", func(o Orthographic) bool { return o.HasApostro }, "apostrophe"},
		{"north-east", func(o Orthographic) bool { return o.HasHyphen }, "hyphen"},
		{"sooooo", func(o Orthographic) bool { return o.IsElongated }, "elongated"},
		{"gr8", func(o Orthographic) bool { return o.IsAbbrev }, "abbrev"},
		{"b", func(o Orthographic) bool { return o.SingleLetter && o.IsAbbrev }, "single letter"},
	}
	for _, c := range cases {
		if o := Shape(c.in); !c.check(o) {
			t.Errorf("Shape(%q) failed %s check: %+v", c.in, c.desc, o)
		}
	}
}

func TestShapeLength(t *testing.T) {
	if o := Shape("café"); o.Length != 4 {
		t.Errorf("rune length = %d, want 4", o.Length)
	}
}

func TestFeatureStrings(t *testing.T) {
	fs := Shape("McCormick").FeatureStrings()
	if len(fs) == 0 {
		t.Fatal("no features")
	}
	want := map[string]bool{"shape:mixed": true, "len:long": true}
	got := map[string]bool{}
	for _, f := range fs {
		got[f] = true
	}
	for f := range want {
		if !got[f] {
			t.Errorf("missing feature %q in %v", f, fs)
		}
	}
}

func TestContextFeatures(t *testing.T) {
	toks := Tokenize("stayed at Axel Hotel")
	// Feature of "Axel" (index 2).
	fs := ContextFeatures(toks, 2)
	got := map[string]bool{}
	for _, f := range fs {
		got[f] = true
	}
	if !got["prev:at"] || !got["next:hotel"] {
		t.Errorf("ContextFeatures = %v", fs)
	}
	// Boundaries.
	first := ContextFeatures(toks, 0)
	if !reflect.DeepEqual(first[0], "prev:<s>") {
		t.Errorf("first features = %v", first)
	}
	last := ContextFeatures(toks, len(toks)-1)
	found := false
	for _, f := range last {
		if f == "next:</s>" {
			found = true
		}
	}
	if !found {
		t.Errorf("last features = %v", last)
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "The", "and", "IS"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false", w)
		}
	}
	for _, w := range []string{"hotel", "berlin", ""} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true", w)
		}
	}
}

func TestContentWords(t *testing.T) {
	got := ContentWords([]string{"the", "Good", "hotels", "in", "Berlin", "a", "x"})
	want := []string{"good", "hotels", "berlin"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentWords = %v, want %v", got, want)
	}
}
