package text

import (
	"strings"
	"unicode"
)

// abbreviations maps SMS/tweet shorthand to standard English. The paper's
// running example is the tweet "obama should b told NO vote …", where "b"
// stands for "be"; informal shorthand like this defeats POS taggers trained
// on edited text, so we expand it before tagging.
var abbreviations = map[string]string{
	"b":     "be",
	"r":     "are",
	"u":     "you",
	"ur":    "your",
	"yr":    "your",
	"n":     "and",
	"nd":    "and",
	"pls":   "please",
	"plz":   "please",
	"thx":   "thanks",
	"ty":    "thanks",
	"gr8":   "great",
	"l8r":   "later",
	"2nite": "tonight",
	"2day":  "today",
	"2moro": "tomorrow",
	"b4":    "before",
	"bc":    "because",
	"cuz":   "because",
	"coz":   "because",
	"w/":    "with",
	"w/o":   "without",
	"abt":   "about",
	"msg":   "message",
	"ppl":   "people",
	"rly":   "really",
	"v":     "very",
	"vry":   "very",
	"gd":    "good",
	"luv":   "love",
	"wanna": "want to",
	"gonna": "going to",
	"gotta": "got to",
	"im":    "i am",
	"ive":   "i have",
	"dont":  "do not",
	"cant":  "cannot",
	"wont":  "will not",
	"didnt": "did not",
	"isnt":  "is not",
	"rec":   "recommend",
	"hr":    "hour",
	"hrs":   "hours",
	"min":   "minute",
	"mins":  "minutes",
	"km":    "kilometre",
	"mi":    "mile",
	"st":    "street",
	"rd":    "road",
	"ave":   "avenue",
	"blvd":  "boulevard",
	"sq":    "square",
	"stn":   "station",
	"apt":   "apartment",
	"nr":    "near",
	"btw":   "by the way",
	"imo":   "in my opinion",
	"imho":  "in my opinion",
	"afaik": "as far as i know",
	"idk":   "i do not know",
	"tho":   "though",
	"thru":  "through",
	"ppl r": "people are",
}

// ExpandAbbreviation returns the standard form of a shorthand word and
// whether an expansion applied. Lookup is case-insensitive.
func ExpandAbbreviation(word string) (string, bool) {
	exp, ok := abbreviations[strings.ToLower(word)]
	return exp, ok
}

// Normalize rewrites an informal message into a more standard form:
// shorthand expanded, character elongations collapsed ("sooooo" → "so"),
// whitespace squeezed. Token positions are NOT preserved; use Normalize for
// classification and sentiment, and raw tokens for span extraction.
func Normalize(s string) string {
	tokens := Tokenize(s)
	parts := make([]string, 0, len(tokens))
	for _, t := range tokens {
		switch t.Kind {
		case KindWord:
			w := CollapseElongation(t.Lower)
			if exp, ok := ExpandAbbreviation(w); ok {
				parts = append(parts, exp)
			} else {
				parts = append(parts, w)
			}
		case KindHashtag:
			parts = append(parts, strings.TrimPrefix(t.Lower, "#"))
		case KindNumber, KindMention, KindEmoticon:
			parts = append(parts, t.Text)
		case KindPunct:
			// Collapse "!!!!" to "!" for normalised text.
			parts = append(parts, t.Text[:1])
		case KindURL:
			// URLs carry no linguistic content for our extractors.
		}
	}
	return strings.Join(parts, " ")
}

// CollapseElongation shrinks runs of 3+ identical letters to 2 and, if the
// doubled form is not a known word pattern, to 1 ("loooove" → "loove" →
// caller may fuzzy-match). Runs of exactly 2 are preserved ("good").
func CollapseElongation(w string) string {
	var sb strings.Builder
	var prev rune
	run := 0
	for _, r := range w {
		if r == prev {
			run++
			if run >= 2 {
				continue
			}
		} else {
			run = 0
			prev = r
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

// IsElongated reports whether the word contains a run of 3+ identical
// letters — a strong informality and intensity signal ("sooooo nice").
func IsElongated(w string) bool {
	var prev rune
	run := 0
	for _, r := range w {
		if r == prev {
			run++
			if run >= 2 {
				return true
			}
		} else {
			run = 0
			prev = r
		}
	}
	return false
}

// NormalizeName canonicalises an entity or place name for index lookup:
// lowercase, diacritics folded for common Latin accents, punctuation
// stripped, whitespace squeezed. "Mövenpick  Hotel!" → "movenpick hotel".
func NormalizeName(s string) string {
	var sb strings.Builder
	prevSpace := true
	for _, r := range strings.ToLower(s) {
		r = foldDiacritic(r)
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			sb.WriteRune(r)
			prevSpace = false
		case r == '&':
			if sb.Len() > 0 {
				if !prevSpace {
					sb.WriteByte(' ')
				}
				sb.WriteString("and ")
				prevSpace = true
			}
		default:
			if !prevSpace {
				sb.WriteByte(' ')
				prevSpace = true
			}
		}
	}
	return strings.TrimSpace(sb.String())
}

// foldDiacritic maps common accented Latin letters to ASCII. A full Unicode
// decomposition is out of scope for stdlib-only code; this table covers the
// European toponyms and hotel names in our corpora.
func foldDiacritic(r rune) rune {
	switch r {
	case 'á', 'à', 'â', 'ä', 'ã', 'å', 'ā':
		return 'a'
	case 'é', 'è', 'ê', 'ë', 'ē':
		return 'e'
	case 'í', 'ì', 'î', 'ï', 'ī':
		return 'i'
	case 'ó', 'ò', 'ô', 'ö', 'õ', 'ø', 'ō':
		return 'o'
	case 'ú', 'ù', 'û', 'ü', 'ū':
		return 'u'
	case 'ñ':
		return 'n'
	case 'ç':
		return 'c'
	case 'ß':
		return 's' // "straße" → "strase"; close enough for fuzzy lookup
	case 'ý', 'ÿ':
		return 'y'
	case 'š':
		return 's'
	case 'ž':
		return 'z'
	}
	return r
}
