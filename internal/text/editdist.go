package text

// Levenshtein returns the edit distance (insert/delete/substitute, unit
// costs) between two strings, comparing runes. It is the misspelling
// tolerance behind gazetteer fuzzy lookup ("language used in short messages
// … sometimes contains misspelling", paper §Problem Statement).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// DamerauLevenshtein additionally counts adjacent transpositions as one
// edit ("teh" → "the"), the most common typing error class.
func DamerauLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Three rows: i-2, i-1, i.
	rows := make([][]int, 3)
	for k := range rows {
		rows[k] = make([]int, len(rb)+1)
	}
	for j := range rows[1] {
		rows[1][j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr := rows[(i+1)%3]
		prev := rows[i%3]
		prev2 := rows[(i+2)%3]
		curr[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d := minInt(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := prev2[j-2] + 1; t < d {
					d = t
				}
			}
			curr[j] = d
		}
	}
	return rows[(len(ra)+1)%3][len(rb)]
}

// Similarity returns a normalised similarity in [0, 1]:
// 1 - distance/maxLen, using Damerau-Levenshtein. Two empty strings are
// fully similar.
func Similarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	max := la
	if lb > max {
		max = lb
	}
	return 1 - float64(DamerauLevenshtein(a, b))/float64(max)
}

// WithinDistance reports whether the edit distance between a and b is at
// most k, with an early exit when the length difference alone exceeds k.
func WithinDistance(a, b string, k int) bool {
	if k == 1 && isASCII(a) && isASCII(b) {
		// The dominant case in gazetteer fuzzy lookup (normalised names
		// are mostly ASCII): byte-wise linear scan, no allocation.
		diff := len(a) - len(b)
		if diff < -1 || diff > 1 {
			return false
		}
		return withinOneASCII(a, b)
	}
	ra, rb := []rune(a), []rune(b)
	diff := len(ra) - len(rb)
	if diff < 0 {
		diff = -diff
	}
	if diff > k {
		return false
	}
	switch {
	case k <= 0:
		return a == b
	case k == 1:
		return withinOne(ra, rb)
	default:
		return withinBanded(ra, rb, k)
	}
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// withinOneASCII is withinOne specialised to byte strings.
func withinOneASCII(a, b string) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	i := 0
	for i < len(a) && a[i] == b[i] {
		i++
	}
	if i == len(a) {
		return true
	}
	if len(a) == len(b) {
		if a[i+1:] == b[i+1:] {
			return true
		}
		return i+1 < len(a) && a[i] == b[i+1] && a[i+1] == b[i] && a[i+2:] == b[i+2:]
	}
	return a[i:] == b[i+1:]
}

// withinOne decides Damerau-Levenshtein distance <= 1 in a single pass:
// after the common prefix, the strings may differ by one substitution, one
// adjacent transposition, or one insertion/deletion.
func withinOne(a, b []rune) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	i := 0
	for i < len(a) && a[i] == b[i] {
		i++
	}
	if i == len(a) {
		return true // equal, or b has one extra trailing rune
	}
	if len(a) == len(b) {
		if equalRunes(a[i+1:], b[i+1:]) {
			return true // one substitution
		}
		return i+1 < len(a) && a[i] == b[i+1] && a[i+1] == b[i] &&
			equalRunes(a[i+2:], b[i+2:]) // one transposition
	}
	return equalRunes(a[i:], b[i+1:]) // one insertion into b
}

func equalRunes(a, b []rune) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// withinBanded runs the Damerau-Levenshtein (optimal string alignment)
// recurrence restricted to the diagonal band |i-j| <= k — cells outside
// the band cannot participate in any alignment of cost <= k — and exits
// early when a whole row exceeds k.
func withinBanded(a, b []rune, k int) bool {
	const inf = 1 << 30
	width := len(b) + 1
	rows := [3][]int{make([]int, width), make([]int, width), make([]int, width)}
	for j := 0; j <= len(b); j++ {
		if j <= k {
			rows[1][j] = j
		} else {
			rows[1][j] = inf
		}
	}
	for i := 1; i <= len(a); i++ {
		curr := rows[(i+1)%3]
		prev := rows[i%3]
		prev2 := rows[(i+2)%3]
		lo, hi := i-k, i+k
		if lo < 1 {
			lo = 1
		}
		if hi > len(b) {
			hi = len(b)
		}
		for j := range curr {
			curr[j] = inf
		}
		if i <= k {
			curr[0] = i
		}
		best := curr[0]
		for j := lo; j <= hi; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			d := prev[j-1] + cost
			if v := prev[j] + 1; v < d {
				d = v
			}
			if v := curr[j-1] + 1; v < d {
				d = v
			}
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if v := prev2[j-2] + 1; v < d {
					d = v
				}
			}
			curr[j] = d
			if d < best {
				best = d
			}
		}
		if best > k {
			return false
		}
	}
	return rows[(len(a)+1)%3][len(b)] <= k
}

// JaccardTokens returns the Jaccard similarity of the token sets of two
// normalised names — the word-order-insensitive complement to edit
// distance, used when matching "Hotel Essex House" to "Essex House Hotel".
func JaccardTokens(a, b string) float64 {
	as := tokenSet(a)
	bs := tokenSet(b)
	if len(as) == 0 && len(bs) == 0 {
		return 1
	}
	inter := 0
	for w := range as {
		if bs[w] {
			inter++
		}
	}
	union := len(as) + len(bs) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func tokenSet(s string) map[string]bool {
	m := make(map[string]bool)
	for _, w := range splitFields(s) {
		m[w] = true
	}
	return m
}

func splitFields(s string) []string {
	var out []string
	start := -1
	for i, r := range s {
		if r == ' ' || r == '\t' || r == '\n' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

func minInt(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
