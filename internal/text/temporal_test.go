package text

import (
	"testing"
	"testing/quick"
	"time"
)

// ref is 2011-04-01 14:30 UTC — a fixed reception time for all cases.
var tempRef = time.Date(2011, 4, 1, 14, 30, 0, 0, time.UTC)

func TestParseTemporalTable(t *testing.T) {
	cases := []struct {
		msg        string
		wantStart  time.Time
		wantEnd    time.Time
		wantFuzzy  bool
		wantInside time.Time // instant that must fall in [Start, End]
	}{
		{
			msg:       "road is flooded now near the bridge",
			wantStart: tempRef, wantEnd: tempRef,
		},
		{
			msg:       "accident on the highway this morning",
			wantStart: time.Date(2011, 4, 1, 6, 0, 0, 0, time.UTC),
			wantEnd:   time.Date(2011, 4, 1, 12, 0, 0, 0, time.UTC),
			wantFuzzy: true,
		},
		{
			msg:       "heavy rain last night damaged the crop",
			wantStart: time.Date(2011, 3, 31, 20, 0, 0, 0, time.UTC),
			wantEnd:   time.Date(2011, 4, 1, 0, 0, 0, 0, time.UTC),
			wantFuzzy: true,
		},
		{
			msg:       "market closed yesterday",
			wantStart: time.Date(2011, 3, 31, 0, 0, 0, 0, time.UTC),
			wantEnd:   time.Date(2011, 4, 1, 0, 0, 0, 0, time.UTC),
			wantFuzzy: true,
		},
		{
			msg:        "pothole reported 2 hours ago on main road",
			wantFuzzy:  true,
			wantInside: tempRef.Add(-2 * time.Hour),
		},
		{
			msg:        "saw the locusts an hour ago",
			wantFuzzy:  true,
			wantInside: tempRef.Add(-time.Hour),
		},
		{
			msg:       "train leaves at 6pm tonight",
			wantStart: time.Date(2011, 3, 31, 18, 0, 0, 0, time.UTC), // 18:00 after 14:30 -> yesterday
			wantEnd:   time.Date(2011, 3, 31, 18, 0, 0, 0, time.UTC),
		},
		{
			msg:       "roadworks started at 08:15",
			wantStart: time.Date(2011, 4, 1, 8, 15, 0, 0, time.UTC),
			wantEnd:   time.Date(2011, 4, 1, 8, 15, 0, 0, time.UTC),
		},
	}
	for _, c := range cases {
		r, ok := ParseTemporal(c.msg, tempRef)
		if !ok {
			t.Errorf("%q: no temporal reference found", c.msg)
			continue
		}
		if r.Fuzzy != c.wantFuzzy {
			t.Errorf("%q: fuzzy = %t, want %t", c.msg, r.Fuzzy, c.wantFuzzy)
		}
		if !c.wantStart.IsZero() {
			if !r.Start.Equal(c.wantStart) || !r.End.Equal(c.wantEnd) {
				t.Errorf("%q: window [%v, %v], want [%v, %v]", c.msg, r.Start, r.End, c.wantStart, c.wantEnd)
			}
		}
		if !c.wantInside.IsZero() {
			if c.wantInside.Before(r.Start) || c.wantInside.After(r.End) {
				t.Errorf("%q: %v outside window [%v, %v]", c.msg, c.wantInside, r.Start, r.End)
			}
		}
	}
}

func TestParseTemporalNone(t *testing.T) {
	for _, msg := range []string{
		"great hotel in Berlin",          // no time reference
		"the market is 5 km from town",   // distance, not time
		"I paid $154 at the Essex House", // "at" + money
		"bus at 3 was late",              // bare ambiguous number
		"this hotel is lovely",           // "this" + non-period
		"last room available",            // "last" + non-period
		"",                               // empty
		"an apple a day",                 // "a <word>" without ago
	} {
		if r, ok := ParseTemporal(msg, tempRef); ok {
			t.Errorf("%q: unexpected temporal %+v", msg, r)
		}
	}
}

// TestTemporalWindowInvariants: for any parse, Start <= End, End <= ref
// for past references, and Instant falls inside the window.
func TestTemporalWindowInvariants(t *testing.T) {
	msgs := []string{
		"flooded now", "this morning", "this afternoon", "this evening",
		"yesterday", "last night", "tonight", "today",
		"3 hours ago", "45 mins ago", "2 days ago", "an hour ago",
		"at 18:30", "at 7pm", "at 6.15am", "1 week ago",
	}
	for _, msg := range msgs {
		r, ok := ParseTemporal(msg, tempRef)
		if !ok {
			t.Errorf("%q: no parse", msg)
			continue
		}
		if r.Start.After(r.End) {
			t.Errorf("%q: Start %v after End %v", msg, r.Start, r.End)
		}
		inst := r.Instant()
		if inst.Before(r.Start) || inst.After(r.End) {
			t.Errorf("%q: Instant %v outside [%v, %v]", msg, inst, r.Start, r.End)
		}
		// "tonight" and "this evening" legitimately refer forward when
		// received in the afternoon.
		if msg != "tonight" && msg != "this evening" && r.Start.After(tempRef) {
			t.Errorf("%q: past reference starts in the future: %v", msg, r.Start)
		}
	}
}

// TestAgoWindowProperty: for arbitrary durations, the "ago" window always
// contains the exact stated instant and never extends past the reference.
func TestAgoWindowProperty(t *testing.T) {
	f := func(mins uint16) bool {
		d := time.Duration(mins%10000+1) * time.Minute
		r := agoRef(tempRef, d, "x")
		centre := tempRef.Add(-d)
		return !r.Start.After(centre) && !r.End.Before(centre) &&
			!r.End.After(tempRef) && !r.Start.After(r.End)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockTime(t *testing.T) {
	cases := map[string][2]int{
		"18:30":  {18, 30},
		"08:15":  {8, 15},
		"6pm":    {18, 0},
		"6.30pm": {18, 30},
		"12am":   {0, 0},
		"12pm":   {12, 0},
		"6am":    {6, 0},
	}
	for in, want := range cases {
		h, m, ok := clockTime(in)
		if !ok || h != want[0] || m != want[1] {
			t.Errorf("clockTime(%q) = %d:%d ok=%t, want %d:%d", in, h, m, ok, want[0], want[1])
		}
	}
	for _, bad := range []string{"3", "25:00", "9:75", "pm", "abc", "154"} {
		if _, _, ok := clockTime(bad); ok {
			t.Errorf("clockTime(%q) parsed, want reject", bad)
		}
	}
}
