package feedback

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/disambig"
	"repro/internal/gazetteer"
	"repro/internal/geo"
	"repro/internal/kb"
	"repro/internal/pxml"
	"repro/internal/shard"
	"repro/internal/uncertain"
)

var t0 = time.Date(2011, 4, 1, 9, 0, 0, 0, time.UTC)

// fixture is the minimal closed loop: a 2-shard store, a gazetteer with
// an ambiguous "Paris", the trust model and the reinforcement priors.
type fixture struct {
	store   *shard.Store
	kb      *kb.KB
	gaz     *gazetteer.Gazetteer
	priors  *disambig.Priors
	ledger  *MemLedger
	eng     *Engine
	parisFR *gazetteer.Entry
	parisTX *gazetteer.Entry
}

func newFixture(t *testing.T, batch int) *fixture {
	t.Helper()
	g := gazetteer.New()
	fr, err := g.Add(gazetteer.Entry{Name: "Paris", Location: geo.Point{Lat: 48.8566, Lon: 2.3522}, Country: "FR", Population: 2_100_000, Feature: gazetteer.FeatureCity})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := g.Add(gazetteer.Entry{Name: "Paris", Location: geo.Point{Lat: 33.6609, Lon: -95.5555}, Country: "US", Population: 25_000, Feature: gazetteer.FeatureCity})
	if err != nil {
		t.Fatal(err)
	}
	store, err := shard.New(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{
		store:   store,
		kb:      kb.New(),
		gaz:     g,
		priors:  disambig.NewPriors(),
		ledger:  NewMemLedger(),
		parisFR: fr,
		parisTX: tx,
	}
	f.eng, err = NewEngine(Config{
		Store:  f.store,
		KB:     f.kb,
		Gaz:    f.gaz,
		Priors: f.priors,
		Ledger: f.ledger,
		Batch:  batch,
		Clock:  func() time.Time { return t0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// hotelDoc builds a stored record document with a provenance trace.
func hotelDoc(name, city, trace string) *pxml.Node {
	doc := pxml.Elem("Hotel",
		pxml.ElemText("Hotel_Name", name),
		pxml.ElemText("City", city),
	)
	if trace != "" {
		doc.Add(pxml.ElemText("Source_Trace", trace))
	}
	return doc
}

func (f *fixture) insert(t *testing.T, doc *pxml.Node, cf uncertain.CF, loc *geo.Point) int64 {
	t.Helper()
	rec, err := f.store.Insert("Hotels", doc, cf, loc)
	if err != nil {
		t.Fatal(err)
	}
	return rec.ID
}

// TestConfirmAppliesAllThreeEffects: one confirm raises the record's
// certainty, credits every traced source, and reinforces the gazetteer
// interpretation nearest the record's location.
func TestConfirmAppliesAllThreeEffects(t *testing.T) {
	f := newFixture(t, 16)
	loc := f.parisFR.Location
	id := f.insert(t, hotelDoc("Axel Hotel", "Paris", "alice,bob"), 0.5, &loc)

	prior := f.kb.Trust().Reliability("alice")
	seq, err := f.eng.Submit(Verdict{RecordID: id, Kind: KindConfirm, Source: "carol"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if seq != 1 {
		t.Fatalf("seq = %d, want 1", seq)
	}
	if got := f.eng.Stats(); got.Pending != 1 || got.Applied != 0 {
		t.Fatalf("pre-flush stats = %+v", got)
	}
	if n := f.eng.Flush(); n != 1 {
		t.Fatalf("Flush applied %d, want 1", n)
	}

	rec, ok := f.store.Get("Hotels", id)
	if !ok {
		t.Fatal("record vanished")
	}
	if rec.Certainty <= 0.5 {
		t.Errorf("certainty after confirm = %v, want > 0.5", rec.Certainty)
	}
	if got := f.kb.Trust().Reliability("alice"); got <= prior {
		t.Errorf("alice reliability after confirm = %v, want > prior %v", got, prior)
	}
	if got := f.kb.Trust().Reliability("bob"); got <= prior {
		t.Errorf("bob reliability after confirm = %v, want > prior %v", got, prior)
	}
	if b := f.priors.Boost("Paris", f.parisFR.ID); b <= 1 {
		t.Errorf("priors boost for Paris(FR) = %v, want > 1", b)
	}
	if b := f.priors.Boost("Paris", f.parisTX.ID); b != 1 {
		t.Errorf("priors boost for Paris(TX) = %v, want exactly 1", b)
	}
	st := f.eng.Stats()
	if st.Applied != 1 || st.Confirmed != 1 || st.Pending != 0 || st.AppliedSeq != 1 {
		t.Errorf("post-flush stats = %+v", st)
	}
}

// TestRejectLowersCertaintyAndTrust: a reject is negative evidence for
// the record and a contradiction for its sources.
func TestRejectLowersCertaintyAndTrust(t *testing.T) {
	f := newFixture(t, 16)
	id := f.insert(t, hotelDoc("Grand Plaza", "Paris", "alice"), 0.7, nil)
	prior := f.kb.Trust().Reliability("alice")

	if _, err := f.eng.Submit(Verdict{RecordID: id, Kind: KindReject, Source: "critic"}); err != nil {
		t.Fatal(err)
	}
	f.eng.Flush()

	rec, _ := f.store.Get("Hotels", id)
	if rec.Certainty >= 0.7 {
		t.Errorf("certainty after reject = %v, want < 0.7", rec.Certainty)
	}
	if got := f.kb.Trust().Reliability("alice"); got >= prior {
		t.Errorf("alice reliability after reject = %v, want < prior %v", got, prior)
	}
	if st := f.eng.Stats(); st.Rejected != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestCorrectReplacesFieldAndLocation: a correction rewrites the field,
// moves the indexed location, and reinforces the interpretation at the
// corrected location — the "Paris meant Paris, TX" loop.
func TestCorrectReplacesFieldAndLocation(t *testing.T) {
	f := newFixture(t, 16)
	loc := f.parisFR.Location
	id := f.insert(t, hotelDoc("Lone Star Inn", "Paris", "alice"), 0.6, &loc)

	lat, lon := f.parisTX.Location.Lat, f.parisTX.Location.Lon
	if _, err := f.eng.Submit(Verdict{
		RecordID: id, Kind: KindCorrect, Source: "local",
		Field: "City", Value: "Paris",
		Lat: &lat, Lon: &lon,
	}); err != nil {
		t.Fatal(err)
	}
	f.eng.Flush()

	rec, _ := f.store.Get("Hotels", id)
	if rec.Location == nil || rec.Location.Lat != lat || rec.Location.Lon != lon {
		t.Fatalf("location after correct = %v, want %v,%v", rec.Location, lat, lon)
	}
	if b := f.priors.Boost("Paris", f.parisTX.ID); b <= 1 {
		t.Errorf("priors boost for Paris(TX) after location correction = %v, want > 1", b)
	}
	// The home shard never changes: the ID still resolves.
	if _, ok := f.store.Get("Hotels", id); !ok {
		t.Error("record not reachable by ID after location correction")
	}
	if st := f.eng.Stats(); st.Corrected != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestTypedErrors pins the engine's failure taxonomy.
func TestTypedErrors(t *testing.T) {
	f := newFixture(t, 16)
	id := f.insert(t, hotelDoc("Doomed Hotel", "Paris", "x"), 0.4, nil)

	cases := []struct {
		name string
		v    Verdict
		want error
	}{
		{"unknown kind", Verdict{RecordID: id, Kind: "praise"}, ErrInvalidVerdict},
		{"correct without payload", Verdict{RecordID: id, Kind: KindCorrect}, ErrInvalidVerdict},
		{"confirm with payload", Verdict{RecordID: id, Kind: KindConfirm, Field: "City", Value: "Rome"}, ErrInvalidVerdict},
		{"partial location", Verdict{RecordID: id, Kind: KindCorrect, Lat: ptr(1.0)}, ErrInvalidVerdict},
		{"zero record", Verdict{RecordID: 0, Kind: KindConfirm}, ErrUnknownRecord},
		{"never allocated", Verdict{RecordID: 99_999, Kind: KindConfirm}, ErrUnknownRecord},
	}
	for _, tc := range cases {
		if _, err := f.eng.Submit(tc.v); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// A deleted record is a stale answer, not an unknown reference.
	if err := f.store.Delete("Hotels", id); err != nil {
		t.Fatal(err)
	}
	if _, err := f.eng.Submit(Verdict{RecordID: id, Kind: KindConfirm}); !errors.Is(err, ErrStaleAnswer) {
		t.Errorf("deleted record: err != ErrStaleAnswer")
	}
}

func ptr(f float64) *float64 { return &f }

// TestAutoApplyOnFullBatch: a lane reaching the batch threshold applies
// without an explicit flush.
func TestAutoApplyOnFullBatch(t *testing.T) {
	f := newFixture(t, 2)
	loc := f.parisFR.Location
	id := f.insert(t, hotelDoc("Batch Hotel", "Paris", "a"), 0.5, &loc)

	if _, err := f.eng.Submit(Verdict{RecordID: id, Kind: KindConfirm, Source: "u1"}); err != nil {
		t.Fatal(err)
	}
	if st := f.eng.Stats(); st.Applied != 0 {
		t.Fatalf("applied before batch full: %+v", st)
	}
	if _, err := f.eng.Submit(Verdict{RecordID: id, Kind: KindConfirm, Source: "u2"}); err != nil {
		t.Fatal(err)
	}
	if st := f.eng.Stats(); st.Applied != 2 || st.Pending != 0 {
		t.Fatalf("stats after auto-apply = %+v", st)
	}
}

// TestStaleBetweenAcceptAndApply: a record deleted after Submit but
// before the flush is dropped with the stale counter, and the watermark
// still advances past it.
func TestStaleBetweenAcceptAndApply(t *testing.T) {
	f := newFixture(t, 16)
	id := f.insert(t, hotelDoc("Ephemeral Hotel", "Paris", "a"), 0.5, nil)
	if _, err := f.eng.Submit(Verdict{RecordID: id, Kind: KindConfirm}); err != nil {
		t.Fatal(err)
	}
	if err := f.store.Delete("Hotels", id); err != nil {
		t.Fatal(err)
	}
	if n := f.eng.Flush(); n != 0 {
		t.Fatalf("Flush applied %d, want 0", n)
	}
	st := f.eng.Stats()
	if st.DroppedStale != 1 || st.Pending != 0 || st.AppliedSeq != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestParkDefersUntilRecordExists: replayed ledger entries whose record
// has not been re-integrated yet stay parked across flushes and apply
// once the record reappears — the recovery ordering contract.
func TestParkDefersUntilRecordExists(t *testing.T) {
	f := newFixture(t, 16)
	loc := f.parisFR.Location
	doc := hotelDoc("Replay Hotel", "Paris", "alice")
	id := f.insert(t, doc.Clone(), 0.5, &loc)

	// A second, empty system: same shard layout, so re-inserting the
	// same document reproduces the same record ID.
	g := newFixture(t, 16)
	g.eng.Park([]Entry{{Seq: 1, At: t0, Verdict: Verdict{RecordID: id, Kind: KindConfirm, Source: "carol"}}})
	if n := g.eng.Flush(); n != 0 {
		t.Fatalf("parked entry applied with no record (%d)", n)
	}
	st := g.eng.Stats()
	if st.Deferred != 1 || st.Replayed != 1 {
		t.Fatalf("stats after deferred flush = %+v", st)
	}

	got := g.insert(t, doc.Clone(), 0.5, &loc)
	if got != id {
		t.Fatalf("re-inserted record ID %d, original %d — fixture routing drifted", got, id)
	}
	if n := g.eng.Flush(); n != 1 {
		t.Fatalf("Flush after re-integration applied %d, want 1", n)
	}
	rec, _ := g.store.Get("Hotels", id)
	if rec.Certainty <= 0.5 {
		t.Errorf("replayed confirm did not raise certainty: %v", rec.Certainty)
	}
	if st := g.eng.Stats(); st.AppliedSeq != 1 || st.Deferred != 0 {
		t.Errorf("stats after replay = %+v", st)
	}
}

// TestParkSkipsCoveredEntries: entries at or below the recovered
// watermark — or named in the image's resolved set above it — are
// inside the restored image and must not re-apply.
func TestParkSkipsCoveredEntries(t *testing.T) {
	f := newFixture(t, 16)
	loc := f.parisFR.Location
	id := f.insert(t, hotelDoc("Covered Hotel", "Paris", "a"), 0.5, &loc)

	// Watermark 3 with seq 5 resolved above it: the checkpoint was
	// taken while seq 4 still deferred, after seq 5 applied.
	eng, err := NewEngine(Config{
		Store: f.store, KB: f.kb, Gaz: f.gaz, Priors: f.priors,
		Ledger: NewMemLedger(), AppliedSeq: 3, AppliedDone: []int64{5},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Park([]Entry{
		{Seq: 2, Verdict: Verdict{RecordID: id, Kind: KindConfirm}},
		{Seq: 3, Verdict: Verdict{RecordID: id, Kind: KindConfirm}},
		{Seq: 4, Verdict: Verdict{RecordID: id, Kind: KindConfirm}},
		{Seq: 5, Verdict: Verdict{RecordID: id, Kind: KindConfirm}},
	})
	if n := eng.Flush(); n != 1 {
		t.Fatalf("Flush applied %d, want only the one uncovered entry", n)
	}
	// Applying seq 4 fills the hole; the resolved seq 5 closes behind it.
	if st := eng.Stats(); st.AppliedSeq != 5 || st.Replayed != 1 {
		t.Errorf("stats = %+v", st)
	}
	// New submissions sequence after the replayed tail.
	seq, err := eng.Submit(Verdict{RecordID: id, Kind: KindConfirm, Source: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Errorf("next seq = %d, want 6", seq)
	}
}

// TestReplayDropsOnKeyMismatch: a replayed verdict whose record ID was
// re-issued to a different entity (nondeterministic re-integration) is
// dropped, never applied to the wrong record.
func TestReplayDropsOnKeyMismatch(t *testing.T) {
	f := newFixture(t, 16)
	loc := f.parisFR.Location
	id := f.insert(t, hotelDoc("Innocent Hotel", "Paris", "alice"), 0.5, &loc)

	f.eng.Park([]Entry{{
		Seq:     1,
		Verdict: Verdict{RecordID: id, Kind: KindReject, Source: "critic"},
		Key:     "Doomed Hotel", // the record this ID named before the crash
	}})
	if n := f.eng.Flush(); n != 0 {
		t.Fatalf("mismatched replay applied %d verdicts", n)
	}
	rec, _ := f.store.Get("Hotels", id)
	if rec.Certainty != 0.5 {
		t.Errorf("wrong record mutated: certainty %v", rec.Certainty)
	}
	st := f.eng.Stats()
	if st.DroppedStale != 1 || st.AppliedSeq != 1 || st.Pending != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestReplayRetryBudget: a replay entry whose record never reappears is
// eventually dropped instead of wedging the applied watermark (and
// therefore the checkpointed replay window) forever.
func TestReplayRetryBudget(t *testing.T) {
	f := newFixture(t, 16)
	f.eng.Park([]Entry{{Seq: 1, Verdict: Verdict{RecordID: 41, Kind: KindConfirm}}})
	for i := 0; i < maxReplayTries; i++ {
		if n := f.eng.Flush(); n != 0 {
			t.Fatalf("flush %d applied %d verdicts", i, n)
		}
	}
	st := f.eng.Stats()
	if st.Pending != 0 || st.DroppedStale != 1 || st.AppliedSeq != 1 {
		t.Errorf("stats after retry budget = %+v", st)
	}
}

// TestFileLedgerRoundTrip: entries survive reopen; a torn trailing line
// (crash mid-append) is truncated away and appends keep working.
func TestFileLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "feedback.log")
	led, entries, err := OpenFileLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh ledger has %d entries", len(entries))
	}
	for i := int64(1); i <= 3; i++ {
		if err := led.Append(Entry{Seq: i, At: t0, Verdict: Verdict{RecordID: i, Kind: KindConfirm, Source: "u"}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: garbage without a trailing newline.
	fh, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.WriteString(`{"seq":4,"verdict":{"record`); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	led2, entries, err := OpenFileLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	defer led2.Close()
	if len(entries) != 3 {
		t.Fatalf("reopened ledger has %d entries, want 3", len(entries))
	}
	for i, e := range entries {
		if e.Seq != int64(i+1) || e.Verdict.RecordID != int64(i+1) {
			t.Errorf("entry %d = %+v", i, e)
		}
	}
	if err := led2.Append(Entry{Seq: 4, At: t0, Verdict: Verdict{RecordID: 4, Kind: KindReject}}); err != nil {
		t.Fatal(err)
	}
	led2.Close()
	_, entries, err = OpenFileLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 || entries[3].Verdict.Kind != KindReject {
		t.Fatalf("after torn-tail truncation + append: %d entries", len(entries))
	}
}
