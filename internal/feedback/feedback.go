// Package feedback closes the paper's loop: it accepts human verdicts
// on query-answer results and feeds them back into the probabilistic
// store at traffic scale. The paper frames the system as a cycle —
// ill-behaved streams are extracted, disambiguated and integrated under
// uncertainty, and "user feedback on query answers" is the mechanism
// that drives that uncertainty down over time. The forward half of the
// cycle is the message pipeline; this package is the backward half, a
// write path that is not message integration:
//
//   - a Verdict (confirm / reject / correct) references a record ID
//     exposed by an answer;
//   - accepted verdicts land in an append-only, replayable Ledger
//     (durable under the system's data directory) and are buffered per
//     home shard — the strided record-ID scheme makes the shard
//     recoverable from the ID alone, so no routing table is needed;
//   - an asynchronous batched apply folds each shard's buffered
//     verdicts into one amortized database batch, mirroring the
//     integration lanes: Bayesian certainty update on the record
//     (uncertain.Combine), reliability updates on the record's traced
//     sources (uncertain.TrustModel), and a reinforcement signal into
//     the disambiguation priors (disambig.Priors) so repeated
//     confirmations of one gazetteer interpretation change how future
//     messages resolve.
//
// Durability: each store checkpoint records the engine's applied
// watermark; on recovery, ledger entries above the watermark are parked
// and re-applied once their records exist again (WAL-replayed messages
// re-integrate under their original IDs), giving exactly-once apply
// across crashes. Verdicts interleaved *between* contributions about
// the same record are re-ordered after them on recovery — quiesce the
// drain before checkpointing when strict interleaving matters, the same
// caveat the store snapshot carries.
package feedback

import (
	"errors"
	"fmt"
	"time"
)

// Kind is the verdict type a user can return about an answer result.
type Kind string

// Verdict kinds.
const (
	// KindConfirm corroborates the record: its certainty rises, its
	// contributing sources gain reliability, and its resolved gazetteer
	// interpretation is reinforced for future disambiguation.
	KindConfirm Kind = "confirm"
	// KindReject disputes the record: certainty falls and contributing
	// sources lose reliability.
	KindReject Kind = "reject"
	// KindCorrect replaces a field value or the record's location; the
	// contributing sources are contradicted on the corrected field while
	// the record itself gains mild support (the corrector affirms the
	// entity exists).
	KindCorrect Kind = "correct"
)

// Verdict is one user's judgement of one answer result.
type Verdict struct {
	// RecordID is the record the answer exposed (Result.ID).
	RecordID int64 `json:"record_id"`
	// Kind is the judgement.
	Kind Kind `json:"kind"`
	// Field and Value carry a correction's replacement field value.
	Field string `json:"field,omitempty"`
	Value string `json:"value,omitempty"`
	// Lat/Lon carry a correction's replacement location.
	Lat *float64 `json:"lat,omitempty"`
	Lon *float64 `json:"lon,omitempty"`
	// Source identifies the user giving feedback; their current
	// reliability weights the evidence their verdict contributes.
	Source string `json:"source,omitempty"`
}

// Entry is one accepted verdict in the ledger, ordered by Seq.
type Entry struct {
	Seq     int64     `json:"seq"`
	At      time.Time `json:"at"`
	Verdict Verdict   `json:"verdict"`
	// Key fingerprints the record the verdict was accepted against (its
	// entity-key text). Replay re-checks it: if crash recovery
	// re-integrated messages in a different order and the ID now names a
	// different record, the verdict is dropped instead of silently
	// applied to the wrong entity.
	Key string `json:"key,omitempty"`
}

// Typed failure conditions callers branch on with errors.Is.
var (
	// ErrUnknownRecord reports a verdict about a record ID that was
	// never allocated — the caller's reference is bogus.
	ErrUnknownRecord = errors.New("feedback: unknown record ID")
	// ErrStaleAnswer reports a verdict about a record that existed when
	// the answer was generated but has since been deleted (certainty
	// decay, correction): the answer is stale, ask again.
	ErrStaleAnswer = errors.New("feedback: answer is stale, record no longer exists")
	// ErrInvalidVerdict reports a verdict whose kind or payload is
	// malformed (unknown kind, correction without a replacement).
	ErrInvalidVerdict = errors.New("feedback: invalid verdict")
)

// validateShape checks the verdict's payload against its kind (the
// record-existence half of validation lives in the engine, which owns
// the store).
func validateShape(v Verdict) error {
	switch v.Kind {
	case KindConfirm, KindReject:
		if v.Field != "" || v.Value != "" || v.Lat != nil || v.Lon != nil {
			return fmt.Errorf("%w: %s carries a correction payload", ErrInvalidVerdict, v.Kind)
		}
	case KindCorrect:
		hasField := v.Field != ""
		hasLoc := v.Lat != nil || v.Lon != nil
		if !hasField && !hasLoc {
			return fmt.Errorf("%w: correct needs a field value or a location", ErrInvalidVerdict)
		}
		if hasField && v.Value == "" {
			return fmt.Errorf("%w: correct of field %q has no replacement value", ErrInvalidVerdict, v.Field)
		}
		if (v.Lat == nil) != (v.Lon == nil) {
			return fmt.Errorf("%w: correct carries a partial location", ErrInvalidVerdict)
		}
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrInvalidVerdict, v.Kind)
	}
	if v.RecordID < 1 {
		return fmt.Errorf("%w: record ID %d", ErrUnknownRecord, v.RecordID)
	}
	return nil
}
