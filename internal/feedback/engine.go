package feedback

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/disambig"
	"repro/internal/gazetteer"
	"repro/internal/geo"
	"repro/internal/integrate"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/pxml"
	"repro/internal/shard"
	"repro/internal/uncertain"
	"repro/internal/xmldb"
)

// Feedback-loop metric families: verdict intake, what each flush
// applied (by kind, plus the stale drops), and how well the per-lane
// batching amortizes.
var (
	mFBAccepted = obs.Default().Counter("neogeo_feedback_accepted_total",
		"Verdicts accepted into the ledger.").With()
	mFBApplied = obs.Default().Counter("neogeo_feedback_applied_total",
		"Verdicts whose effects reached the store, by kind.", "kind")
	fbConfirm = mFBApplied.With("confirm")
	fbReject  = mFBApplied.With("reject")
	fbCorrect = mFBApplied.With("correct")
	fbStale   = mFBApplied.With("dropped_stale")

	mFBFlushSeconds = obs.Default().Histogram("neogeo_feedback_flush_seconds",
		"Wall time of one flush across all selected lanes.", nil).With()
	mFBBatchVerdicts = obs.Default().Histogram("neogeo_feedback_batch_verdicts",
		"Verdicts folded into one per-lane apply batch.",
		obs.ExpBuckets(1, 2, 8)).With()
)

// spanFeedbackFlush names the background timeline one flush records.
const spanFeedbackFlush = "feedback_flush"

// DefaultBatch is how many buffered verdicts trigger an automatic
// per-lane apply (matching the integration lanes' default batch).
const DefaultBatch = 16

// DefaultVerdictCF is the certainty weight of one human verdict before
// attenuation by the submitting user's reliability. Human feedback is
// strong evidence — stronger than one more anonymous report — but not
// absolute: a single confirm must not pin a record at certainty 1.
const DefaultVerdictCF uncertain.CF = 0.6

// Stats is the engine's counters snapshot, surfaced through the
// system's stats endpoint.
type Stats struct {
	// Accepted counts verdicts accepted into the ledger by this process.
	Accepted int64
	// Replayed counts ledger entries parked at boot for re-application.
	Replayed int64
	// Applied counts verdicts whose effects reached the store.
	Applied int64
	// Pending is the number of buffered verdicts awaiting an apply,
	// including deferred replays.
	Pending int
	// Deferred is the subset of Pending parked because their record has
	// not been re-integrated yet (recovery in progress).
	Deferred int
	// DroppedStale counts verdicts whose record vanished between accept
	// and apply (decay deleted it) — acknowledged but unappliable.
	DroppedStale int64
	// Confirmed/Rejected/Corrected break down applied verdicts by kind.
	Confirmed int64
	Rejected  int64
	Corrected int64
	// AppliedSeq is the watermark: every ledger entry at or below it has
	// been applied (or dropped stale). Checkpoints record it so recovery
	// replays exactly the entries above it.
	AppliedSeq int64
}

// pending is one buffered verdict awaiting its lane's batched apply.
type pending struct {
	e Entry
	// replay marks entries parked at boot from the ledger: a missing
	// record defers them (the WAL replay has not re-integrated it yet)
	// instead of dropping them.
	replay bool
	// tries counts flushes that deferred this replay entry; past
	// maxReplayTries it is dropped as stale so a record that never
	// comes back (dead-lettered message, nondeterministic replay) cannot
	// wedge the applied watermark forever.
	tries int
}

// maxReplayTries bounds how many flushes a parked replay entry may
// defer. At the serving layer's default 250ms drain cadence this is
// about a minute — far longer than any recovery drain needs.
const maxReplayTries = 256

// Engine accepts, logs, routes and applies verdicts. All methods are
// safe for concurrent use. Applies serialize with each other and with
// WithFrozen (the checkpoint image writer), so the applied watermark is
// exact with respect to the store image.
type Engine struct {
	store     *shard.Store
	kb        *kb.KB
	gaz       *gazetteer.Gazetteer
	priors    *disambig.Priors
	ledger    Ledger
	clock     func() time.Time
	batch     int
	verdictCF uncertain.CF
	onApplied func(lane int, applied []Applied)

	// applyMu serialises batched applies and checkpoint freezes.
	applyMu sync.Mutex

	// mu guards the buffers, sequence numbers and counters.
	mu      sync.Mutex
	lanes   [][]pending
	nextSeq int64
	applied int64          // watermark: all seqs <= applied resolved
	done    map[int64]bool // resolved seqs above the watermark
	stats   Stats
}

// Config parameterises the engine.
type Config struct {
	// Store is the (possibly sharded) record store verdicts apply to.
	Store *shard.Store
	// KB supplies the source-trust model and domain schemas.
	KB *kb.KB
	// Gaz resolves record place names back to gazetteer entries for the
	// reinforcement signal.
	Gaz *gazetteer.Gazetteer
	// Priors is the disambiguation reinforcement memory to feed.
	Priors *disambig.Priors
	// Ledger is the accepted-verdict log (NewMemLedger when the system
	// is not durable).
	Ledger Ledger
	// Batch is the per-lane auto-apply threshold (default DefaultBatch).
	Batch int
	// VerdictCF overrides the per-verdict evidence weight.
	VerdictCF uncertain.CF
	// Clock overrides the time source (tests).
	Clock func() time.Time
	// AppliedSeq seeds the watermark from a recovered checkpoint: ledger
	// entries at or below it are already inside the restored image.
	AppliedSeq int64
	// AppliedDone seeds the resolved set above the watermark — entries a
	// checkpoint captured while an older replay entry was still
	// deferring. Park skips them, so a watermark hole never causes a
	// double apply across crashes.
	AppliedDone []int64
	// OnApplied, when set, observes every lane's committed applies: it
	// runs on the lane's apply goroutine AFTER the shard's batch
	// committed (and its version counter moved), so a reader woken by it
	// always sees the new state. It must be brief and must not call back
	// into the engine. The read path hooks its standing-query
	// broadcaster here.
	OnApplied func(lane int, applied []Applied)
}

// Applied describes one verdict's committed database effect.
type Applied struct {
	// Collection and RecordID identify the updated record.
	Collection string
	RecordID   int64
	// Action is the verdict's effect: "confirmed", "rejected" or
	// "corrected".
	Action string
}

// NewEngine builds an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Store == nil || cfg.KB == nil || cfg.Gaz == nil || cfg.Priors == nil || cfg.Ledger == nil {
		return nil, fmt.Errorf("feedback: nil dependency")
	}
	e := &Engine{
		store:     cfg.Store,
		kb:        cfg.KB,
		gaz:       cfg.Gaz,
		priors:    cfg.Priors,
		ledger:    cfg.Ledger,
		clock:     cfg.Clock,
		batch:     cfg.Batch,
		verdictCF: cfg.VerdictCF,
		onApplied: cfg.OnApplied,
		lanes:     make([][]pending, cfg.Store.NumShards()),
		nextSeq:   cfg.AppliedSeq + 1,
		applied:   cfg.AppliedSeq,
		done:      make(map[int64]bool),
	}
	if e.clock == nil {
		e.clock = time.Now
	}
	if e.batch <= 0 {
		e.batch = DefaultBatch
	}
	if e.verdictCF == 0 {
		e.verdictCF = DefaultVerdictCF
	}
	if err := e.verdictCF.Validate(); err != nil {
		return nil, err
	}
	for _, seq := range cfg.AppliedDone {
		if seq > e.applied {
			e.done[seq] = true
		}
	}
	e.stats.AppliedSeq = e.applied
	return e, nil
}

// Park buffers ledger entries recovered at boot: entries at or below
// the restored watermark are already in the store image and are
// skipped; the rest await re-application on later flushes (deferring as
// long as their record has not been re-integrated from the queue WAL).
func (e *Engine) Park(entries []Entry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ent := range entries {
		if ent.Seq >= e.nextSeq {
			e.nextSeq = ent.Seq + 1
		}
		if ent.Seq <= e.applied || e.done[ent.Seq] {
			continue
		}
		lane := e.store.ShardFor(ent.Verdict.RecordID)
		e.lanes[lane] = append(e.lanes[lane], pending{e: ent, replay: true})
		e.stats.Replayed++
	}
}

// Submit validates a verdict against the live store, appends it durably
// to the ledger and buffers it on its record's home-shard lane for the
// next batched apply (applying the lane immediately once it holds a
// full batch). It returns the verdict's ledger sequence number.
//
// Typed failures: ErrInvalidVerdict for malformed payloads,
// ErrUnknownRecord for an ID that was never allocated, ErrStaleAnswer
// for a record that existed but has been deleted since the answer
// exposing it was generated.
func (e *Engine) Submit(v Verdict) (int64, error) {
	if err := validateShape(v); err != nil {
		return 0, err
	}
	if v.Lat != nil && v.Lon != nil {
		if _, err := geo.NewPoint(*v.Lat, *v.Lon); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrInvalidVerdict, err)
		}
	}
	lane := e.store.ShardFor(v.RecordID)
	rec, err := e.checkRecord(lane, v.RecordID)
	if err != nil {
		return 0, err
	}

	e.mu.Lock()
	seq := e.nextSeq
	ent := Entry{Seq: seq, At: e.clock().UTC(), Verdict: v, Key: entryKey(rec.Doc)}
	if err := e.ledger.Append(ent); err != nil {
		e.mu.Unlock()
		return 0, err
	}
	e.nextSeq++
	e.lanes[lane] = append(e.lanes[lane], pending{e: ent})
	e.stats.Accepted++
	mFBAccepted.Inc()
	full := len(e.lanes[lane]) >= e.batch
	e.mu.Unlock()

	if full {
		e.flushLanes(map[int]bool{lane: true})
	}
	return seq, nil
}

// checkRecord classifies a record reference against the live store,
// returning the record when it exists.
func (e *Engine) checkRecord(lane int, id int64) (*xmldb.Record, error) {
	db := e.store.Shard(lane)
	for _, coll := range db.Collections() {
		if rec, ok := db.Get(coll, id); ok {
			return rec, nil
		}
	}
	if id < db.NextID() {
		return nil, fmt.Errorf("%w: record %d", ErrStaleAnswer, id)
	}
	return nil, fmt.Errorf("%w: record %d", ErrUnknownRecord, id)
}

// entryKey fingerprints a record's entity identity: the text of its
// first non-metadata child element — the domain key field for every
// built-in domain, since templates emit it first. Replay compares it so
// a record ID that was re-issued to a different entity during crash
// recovery is detected instead of silently mutated.
func entryKey(doc *pxml.Node) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.Children {
		switch c.Tag {
		case "", integrate.SourceTraceField, "Observed_At", "Geo":
			continue
		}
		if t := c.TextContent(); t != "" {
			return t
		}
	}
	return ""
}

// Flush applies every buffered verdict, one amortized database batch
// per home shard with distinct shards applying in parallel — the same
// lane discipline as the integration pipeline. Replay entries whose
// record is still missing stay parked for the next flush. It returns
// how many verdicts were applied.
func (e *Engine) Flush() int {
	return e.flushLanes(nil)
}

// flushLanes applies the buffered verdicts of the selected lanes (nil:
// all lanes).
func (e *Engine) flushLanes(only map[int]bool) int {
	// Flushes run off any request path (timer or explicit call), so the
	// span roots its own trace; applyMu is not in the tracer's hot-lock
	// set, so holding it around span recording is within discipline.
	//lint:ignore ctxflow flushes are background work with no caller deadline; the root only scopes the trace
	_, sp := obs.StartSpan(context.Background(), spanFeedbackFlush)
	defer sp.End()
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	defer mFBFlushSeconds.Since(time.Now())

	e.mu.Lock()
	batches := make([][]pending, len(e.lanes))
	for i := range e.lanes {
		if only != nil && !only[i] {
			continue
		}
		batches[i], e.lanes[i] = e.lanes[i], nil
	}
	e.mu.Unlock()

	type laneResult struct {
		outcomes []outcome
		kept     []pending
	}
	results := make([]laneResult, len(batches))
	var wg sync.WaitGroup
	for i, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		mFBBatchVerdicts.Observe(float64(len(batch)))
		wg.Add(1)
		go func(lane int, batch []pending) {
			defer wg.Done()
			results[lane].outcomes, results[lane].kept = e.applyLane(lane, batch)
		}(i, batch)
	}
	//lint:ignore lockdiscipline applyMu exists to serialize whole flushes; waiting for the lanes is the critical section
	wg.Wait()

	applied := 0
	e.mu.Lock()
	for i, res := range results {
		// Deferred replays go back to the front of their lane so they
		// stay ahead of verdicts accepted meanwhile (seq order per lane).
		if len(res.kept) > 0 {
			e.lanes[i] = append(append([]pending(nil), res.kept...), e.lanes[i]...)
		}
		for _, oc := range res.outcomes {
			e.markDoneLocked(oc.seq)
			switch oc.kind {
			case appliedConfirm:
				e.stats.Applied++
				e.stats.Confirmed++
				fbConfirm.Inc()
				applied++
			case appliedReject:
				e.stats.Applied++
				e.stats.Rejected++
				fbReject.Inc()
				applied++
			case appliedCorrect:
				e.stats.Applied++
				e.stats.Corrected++
				fbCorrect.Inc()
				applied++
			case droppedStale:
				e.stats.DroppedStale++
				fbStale.Inc()
			}
		}
	}
	e.stats.AppliedSeq = e.applied
	e.mu.Unlock()
	sp.SetInt("applied", applied)
	return applied
}

// outcomeKind classifies one apply attempt.
type outcomeKind int

const (
	appliedConfirm outcomeKind = iota
	appliedReject
	appliedCorrect
	droppedStale
)

type outcome struct {
	seq  int64
	kind outcomeKind
}

// applyLane folds one lane's verdicts into its shard under a single
// database lock acquisition. The caller serialises per-lane calls
// (applyMu); the trust model and priors are internally synchronised, so
// cross-lane updates to them are safe.
func (e *Engine) applyLane(lane int, batch []pending) (outcomes []outcome, kept []pending) {
	var applied []Applied
	db := e.store.Shard(lane)
	_ = db.Batch(func(tx *xmldb.Tx) error {
		colls := tx.Collections()
		for _, p := range batch {
			rec, coll := findRecord(tx, colls, p.e.Verdict.RecordID)
			if rec == nil {
				if p.replay && p.tries+1 < maxReplayTries {
					p.tries++
					kept = append(kept, p)
				} else {
					outcomes = append(outcomes, outcome{seq: p.e.Seq, kind: droppedStale})
				}
				continue
			}
			// Replay integrity: if recovery re-issued this ID to a
			// different entity (nondeterministic re-integration), dropping
			// the verdict is safe; applying it to the wrong record is not.
			if p.replay && p.e.Key != "" && entryKey(rec.Doc) != p.e.Key {
				outcomes = append(outcomes, outcome{seq: p.e.Seq, kind: droppedStale})
				continue
			}
			kind, err := e.applyOne(tx, coll, rec, p.e.Verdict)
			if err != nil {
				// An apply error is a store-level invariant failure, not a
				// bad verdict (those were filtered at Submit); count the
				// entry resolved so the watermark cannot wedge.
				outcomes = append(outcomes, outcome{seq: p.e.Seq, kind: droppedStale})
				continue
			}
			outcomes = append(outcomes, outcome{seq: p.e.Seq, kind: kind})
			if e.onApplied != nil {
				applied = append(applied, Applied{
					Collection: coll,
					RecordID:   rec.ID,
					Action:     kind.action(),
				})
			}
		}
		return nil
	})
	// The hook fires outside the batch: the writes (and the shard's
	// version bump) are committed, and a slow observer cannot extend the
	// database lock's hold time.
	if e.onApplied != nil && len(applied) > 0 {
		e.onApplied(lane, applied)
	}
	return outcomes, kept
}

// action names an applied outcome for the read path's events.
func (k outcomeKind) action() string {
	switch k {
	case appliedConfirm:
		return "confirmed"
	case appliedReject:
		return "rejected"
	case appliedCorrect:
		return "corrected"
	}
	return ""
}

// findRecord locates a record by ID across the shard's collections.
func findRecord(tx *xmldb.Tx, colls []string, id int64) (*xmldb.Record, string) {
	for _, coll := range colls {
		if rec, ok := tx.Get(coll, id); ok {
			return rec, coll
		}
	}
	return nil, ""
}

// applyOne applies a single verdict to its record: the Bayesian
// certainty update, the source-reliability feedback, and (for confirms
// and location corrections) the disambiguation reinforcement.
func (e *Engine) applyOne(tx *xmldb.Tx, coll string, rec *xmldb.Record, v Verdict) (outcomeKind, error) {
	rel := e.kb.Trust().Reliability(v.Source)
	trace := integrate.TraceSources(rec.Doc)
	switch v.Kind {
	case KindConfirm:
		// MYCIN-combine the verdict as positive evidence attenuated by
		// the confirming user's own reliability.
		ev := uncertain.Attenuate(e.verdictCF, rel)
		if err := tx.Update(coll, rec.ID, rec.Doc, uncertain.Combine(rec.Certainty, ev), nil); err != nil {
			return 0, err
		}
		for _, src := range trace {
			e.kb.Trust().Confirm(src)
		}
		if rec.Location != nil {
			e.reinforce(rec.Doc, *rec.Location)
		}
		return appliedConfirm, nil

	case KindReject:
		ev := uncertain.Attenuate(-e.verdictCF, rel)
		if err := tx.Update(coll, rec.ID, rec.Doc, uncertain.Combine(rec.Certainty, ev), nil); err != nil {
			return 0, err
		}
		for _, src := range trace {
			e.kb.Trust().Contradict(src)
		}
		return appliedReject, nil

	case KindCorrect:
		doc := rec.Doc.Clone()
		if v.Field != "" {
			if n, _ := doc.FirstChild(v.Field); n != nil {
				n.Children = []*pxml.Node{pxml.Text(v.Value)}
			} else {
				doc.Add(pxml.ElemText(v.Field, v.Value))
			}
		}
		var newLoc *geo.Point
		if v.Lat != nil && v.Lon != nil {
			p, err := geo.NewPoint(*v.Lat, *v.Lon)
			if err != nil {
				return 0, err
			}
			newLoc = &p
			setGeo(doc, p)
		}
		// The corrector affirms the entity exists while disputing a
		// detail: mild positive evidence on the record, contradiction for
		// the sources whose detail was corrected.
		ev := uncertain.Attenuate(e.verdictCF, rel*0.5)
		if err := tx.Update(coll, rec.ID, doc, uncertain.Combine(rec.Certainty, ev), newLoc); err != nil {
			return 0, err
		}
		for _, src := range trace {
			e.kb.Trust().Contradict(src)
		}
		if newLoc != nil {
			// A corrected location is the strongest reinforcement signal:
			// the user told us which interpretation the place name meant.
			e.reinforce(doc, *newLoc)
		}
		return appliedCorrect, nil
	}
	return 0, fmt.Errorf("feedback: unreachable kind %q", v.Kind)
}

// setGeo rewrites the document's Geo element to the corrected point so
// the displayed document agrees with the indexed location.
func setGeo(doc *pxml.Node, p geo.Point) {
	lat := pxml.ElemText("Lat", fmt.Sprintf("%.5f", p.Lat))
	lon := pxml.ElemText("Lon", fmt.Sprintf("%.5f", p.Lon))
	if n, _ := doc.FirstChild("Geo"); n != nil {
		n.Children = []*pxml.Node{lat, lon}
		return
	}
	doc.Add(pxml.Elem("Geo", lat, lon))
}

// reinforce feeds the disambiguation priors: every place name the
// record carries that the gazetteer knows is credited toward the
// gazetteer reference nearest the validated location, so repeated
// confirmations of "Paris → Paris (TX)" change how future "Paris"
// mentions resolve.
func (e *Engine) reinforce(doc *pxml.Node, loc geo.Point) {
	for _, c := range doc.Children {
		switch c.Tag {
		case "", integrate.SourceTraceField, "Observed_At", "Geo":
			continue
		}
		name := c.TextContent()
		if name == "" {
			continue
		}
		entries := e.gaz.Lookup(name)
		if len(entries) == 0 {
			continue
		}
		best := entries[0]
		bestD := best.Location.DistanceMeters(loc)
		for _, cand := range entries[1:] {
			if d := cand.Location.DistanceMeters(loc); d < bestD {
				best, bestD = cand, d
			}
		}
		e.priors.Reinforce(name, best.ID, 1)
	}
}

// markDoneLocked records a resolved sequence number and advances the
// contiguous watermark. Caller holds e.mu.
func (e *Engine) markDoneLocked(seq int64) {
	if seq <= e.applied {
		return
	}
	e.done[seq] = true
	for e.done[e.applied+1] {
		e.applied++
		delete(e.done, e.applied)
	}
}

// Stats returns a counters snapshot.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.Pending, st.Deferred = 0, 0
	for _, lane := range e.lanes {
		st.Pending += len(lane)
		for _, p := range lane {
			if p.replay {
				st.Deferred++
			}
		}
	}
	st.AppliedSeq = e.applied
	return st
}

// WithFrozen runs fn with applies excluded, handing it the exact
// applied watermark plus the resolved sequence numbers above it (holes
// left by still-deferring replay entries) — the checkpoint image
// writer records both so the snapshot can never disagree about which
// verdicts are inside the image, even while a replay entry defers.
func (e *Engine) WithFrozen(fn func(appliedSeq int64, done []int64) error) error {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	e.mu.Lock()
	seq := e.applied
	done := make([]int64, 0, len(e.done))
	for s := range e.done {
		done = append(done, s)
	}
	e.mu.Unlock()
	sort.Slice(done, func(i, j int) bool { return done[i] < done[j] })
	return fn(seq, done)
}

// AdoptApplied raises the watermark (and resolved set) to a restored
// image's recorded values (facade Restore of a newer snapshot),
// discarding buffered entries the image already covers.
func (e *Engine) AdoptApplied(seq int64, done []int64) {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if seq > e.applied {
		e.applied = seq
		if e.nextSeq <= seq {
			e.nextSeq = seq + 1
		}
		for s := range e.done {
			if s <= seq {
				delete(e.done, s)
			}
		}
	}
	covered := make(map[int64]bool, len(done))
	for _, s := range done {
		covered[s] = true
		if s > e.applied {
			e.done[s] = true
		}
	}
	for i, lane := range e.lanes {
		keep := lane[:0]
		for _, p := range lane {
			if p.e.Seq > e.applied && !covered[p.e.Seq] {
				keep = append(keep, p)
			}
		}
		e.lanes[i] = keep
	}
	e.stats.AppliedSeq = e.applied
}

// Close releases the ledger.
func (e *Engine) Close() error {
	return e.ledger.Close()
}
