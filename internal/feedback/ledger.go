package feedback

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Ledger is the append-only verdict log. Appends are durable before
// Submit acknowledges a verdict; the log replays at boot so feedback
// accepted before a crash is never lost.
type Ledger interface {
	// Append writes one entry durably.
	Append(Entry) error
	// Close releases the log.
	Close() error
}

// ledgerMagic heads the ledger file; entries follow as JSON lines.
const ledgerMagic = "neogeo-feedback v1\n"

// FileLedger is the durable ledger: a header line followed by one JSON
// entry per line, fsynced per append. A torn trailing line from a crash
// mid-append is truncated away at open — the verdict was never
// acknowledged, so dropping it is correct.
type FileLedger struct {
	mu sync.Mutex
	f  *os.File
}

// OpenFileLedger opens (creating if needed) the ledger at path and
// returns it along with every complete entry already in it, in order.
func OpenFileLedger(path string) (*FileLedger, []Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("feedback: reading ledger: %w", err)
	}
	var entries []Entry
	valid := 0
	if len(data) > 0 {
		if !bytes.HasPrefix(data, []byte(ledgerMagic)) {
			return nil, nil, fmt.Errorf("feedback: %s is not a feedback ledger", path)
		}
		valid = len(ledgerMagic)
		rest := data[valid:]
		for len(rest) > 0 {
			nl := bytes.IndexByte(rest, '\n')
			if nl < 0 {
				break // torn trailing line: crash mid-append, drop it
			}
			var e Entry
			if err := json.Unmarshal(rest[:nl], &e); err != nil {
				break // corrupt tail: keep the prefix that parses
			}
			entries = append(entries, e)
			valid += nl + 1
			rest = rest[nl+1:]
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("feedback: opening ledger: %w", err)
	}
	if len(data) == 0 {
		if _, err := f.WriteString(ledgerMagic); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("feedback: writing ledger header: %w", err)
		}
	} else if valid < len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("feedback: truncating torn ledger tail: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("feedback: seeking ledger end: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("feedback: syncing ledger: %w", err)
	}
	return &FileLedger{f: f}, entries, nil
}

// Append implements Ledger: one fsynced JSON line per entry.
func (l *FileLedger) Append(e Entry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("feedback: encoding ledger entry %d: %w", e.Seq, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("feedback: ledger closed")
	}
	if _, err := l.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("feedback: appending ledger entry %d: %w", e.Seq, err)
	}
	//lint:ignore lockdiscipline the ledger's contract is one durable append at a time; the mutex exists to order the fsyncs
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("feedback: syncing ledger entry %d: %w", e.Seq, err)
	}
	return nil
}

// Close implements Ledger.
func (l *FileLedger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// MemLedger is the in-memory ledger used when the system has no data
// directory: verdicts still sequence and apply, they just do not
// survive a restart (nothing else does either).
type MemLedger struct {
	mu      sync.Mutex
	entries []Entry
}

// NewMemLedger returns an empty in-memory ledger.
func NewMemLedger() *MemLedger { return &MemLedger{} }

// Append implements Ledger.
func (l *MemLedger) Append(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, e)
	return nil
}

// Entries returns a copy of everything appended (tests).
func (l *MemLedger) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Entry(nil), l.entries...)
}

// Close implements Ledger.
func (l *MemLedger) Close() error { return nil }
