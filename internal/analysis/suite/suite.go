// Package suite is the single registry of the project's analyzers:
// cmd/neogeolint, the vettool path, and the tree-stays-clean guard
// test all draw from it, so an analyzer added here is enforced
// everywhere at once.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/passes/atomicwrite"
	"repro/internal/analysis/passes/ctxflow"
	"repro/internal/analysis/passes/errdiscipline"
	"repro/internal/analysis/passes/importboundary"
	"repro/internal/analysis/passes/lockdiscipline"
	"repro/internal/analysis/passes/metriclabels"
	"repro/internal/analysis/passes/postcommit"
	"repro/internal/analysis/passes/singlewriter"
	"repro/internal/analysis/passes/versionbump"
)

// Analyzers returns the full suite, alphabetical by name. The shared
// inspect and lockspan passes are pulled in through Requires and are
// not listed — they report nothing themselves.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicwrite.Analyzer,
		ctxflow.Analyzer,
		errdiscipline.Analyzer,
		importboundary.Analyzer,
		lockdiscipline.Analyzer,
		metriclabels.Analyzer,
		postcommit.Analyzer,
		singlewriter.Analyzer,
		versionbump.Analyzer,
	}
}
