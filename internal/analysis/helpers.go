package analysis

import (
	"go/ast"
	"go/types"
)

// CalleeFunc resolves the *types.Func a call expression invokes, or
// nil when the callee is not a statically known function or method
// (e.g. a call through a function-typed variable).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsFunc reports whether the call invokes the package-level function
// (or method) with the given fully qualified name, e.g. "os.Rename" or
// "(*os.File).Sync".
func IsFunc(info *types.Info, call *ast.CallExpr, fullName string) bool {
	fn := CalleeFunc(info, call)
	return fn != nil && fn.FullName() == fullName
}

// ErrorType is the universe error interface.
var ErrorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// IsErrorType reports whether t is exactly the error interface or a
// type that implements it (excluding the empty any).
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, ErrorType) || types.Implements(types.NewPointer(t), ErrorType)
}

// ReturnsError reports whether the call produces at least one value of
// type error (last position or anywhere in the result tuple).
func ReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorInterface(t.At(i).Type()) {
				return true
			}
		}
	default:
		return isErrorInterface(t)
	}
	return false
}

// isErrorInterface reports whether t is the error interface itself
// (not merely a concrete type implementing it): discarded values of
// concrete types are for the caller to judge, discarded `error`
// results are what the errdiscipline invariant is about.
func isErrorInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	iface, ok := t.Underlying().(*types.Interface)
	return ok && types.Identical(iface, ErrorType)
}

// NamedType reports the package path and type name behind t,
// dereferencing one level of pointer, or ok=false for unnamed types.
func NamedType(t types.Type) (pkgPath, name string, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), true
}

// WalkStack walks every node in the file, invoking fn with the node
// and the stack of its ancestors (outermost first, node excluded).
func WalkStack(f *ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}
