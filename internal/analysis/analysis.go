// Package analysis is a self-contained static-analysis framework
// modelled on golang.org/x/tools/go/analysis, built only on the
// standard library's go/ast, go/parser and go/types (the x/tools
// module is not vendored here, so the real framework is out of reach
// offline). It provides just the slice the project needs:
//
//   - Analyzer / Pass / Diagnostic mirroring the x/tools API shape, so
//     the project's analyzers port to the real framework mechanically
//     if the dependency ever lands.
//   - A loader that type-checks module packages against compiler
//     export data obtained from `go list -export` (load.go), plus a
//     GOPATH-style testdata loader for golden tests (the analysistest
//     subpackage).
//   - A multichecker driver (multichecker.go) used by cmd/neogeolint,
//     standalone or as a `go vet -vettool`, with //lint:ignore
//     suppression directives (directive.go).
//
// The analyzers themselves live under passes/ and encode the repo's
// hard invariants — import boundaries, single-writer shard discipline,
// temp→fsync→rename durability, error wrapping, context flow — so a
// refactor that silently violates one fails CI instead of corrupting a
// store at runtime. docs/INVARIANTS.md is the human-readable index.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis: a named invariant and the
// function that checks a single package against it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. By convention it is a single
	// lower-case word.
	Name string

	// Doc is the analyzer's documentation: first line a summary, the
	// rest an explanation of the invariant it pins.
	Doc string

	// Run applies the analyzer to one package, reporting diagnostics
	// through pass.Report. The returned value is unused (kept for API
	// symmetry with x/tools); errors abort the whole run.
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer with the type-checked syntax of one
// package plus the Report sink for its diagnostics.
type Pass struct {
	// Analyzer is the analyzer being applied.
	Analyzer *Analyzer

	// Path is the package's import path (e.g. "repro/internal/mq").
	Path string

	// Fset maps token positions to file locations for all Files.
	Fset *token.FileSet

	// Files is the package's parsed syntax, test files excluded.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds the type information recorded while checking
	// Files (definitions, uses, selections, expression types).
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver owns filtering
	// (lint:ignore directives, test files) and formatting.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position and a message. The driver
// stamps the reporting analyzer's name before printing.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the driver
}
