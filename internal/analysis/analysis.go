// Package analysis is a self-contained static-analysis framework
// modelled on golang.org/x/tools/go/analysis, built only on the
// standard library's go/ast, go/parser and go/types (the x/tools
// module is not vendored here, so the real framework is out of reach
// offline). It provides just the slice the project needs:
//
//   - Analyzer / Pass / Diagnostic mirroring the x/tools API shape, so
//     the project's analyzers port to the real framework mechanically
//     if the dependency ever lands.
//   - A loader that type-checks module packages against compiler
//     export data obtained from `go list -export` (load.go), plus a
//     GOPATH-style testdata loader for golden tests (the analysistest
//     subpackage).
//   - A multichecker driver (multichecker.go) used by cmd/neogeolint,
//     standalone or as a `go vet -vettool`, with //lint:ignore
//     suppression directives (directive.go).
//
// The analyzers themselves live under passes/ and encode the repo's
// hard invariants — import boundaries, single-writer shard discipline,
// temp→fsync→rename durability, error wrapping, context flow — so a
// refactor that silently violates one fails CI instead of corrupting a
// store at runtime. docs/INVARIANTS.md is the human-readable index.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis: a named invariant and the
// function that checks a single package against it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. By convention it is a single
	// lower-case word.
	Name string

	// Doc is the analyzer's documentation: first line a summary, the
	// rest an explanation of the invariant it pins.
	Doc string

	// Run applies the analyzer to one package, reporting diagnostics
	// through pass.Report. The returned value is this analyzer's result
	// for the package: dependents declared via Requires receive it in
	// Pass.ResultOf. Errors abort the whole run.
	Run func(*Pass) (any, error)

	// Requires lists analyzers whose results this one consumes. The
	// driver expands the closure, rejects cycles, and runs requirements
	// first; their per-package results appear in Pass.ResultOf. The
	// shared single-walk AST index (passes/inspect) and the locked-region
	// layer (passes/lockspan) are the common requirements — N analyzers
	// requiring them cost one traversal per package, not N.
	Requires []*Analyzer

	// FactTypes lists prototypes of the fact types this analyzer
	// exports (one instance per type). Registration is what lets the
	// vet driver decode facts read back from .vetx files.
	FactTypes []Fact
}

// A Pass provides one analyzer with the type-checked syntax of one
// package plus the Report sink for its diagnostics.
type Pass struct {
	// Analyzer is the analyzer being applied.
	Analyzer *Analyzer

	// Path is the package's import path (e.g. "repro/internal/mq").
	Path string

	// Fset maps token positions to file locations for all Files.
	Fset *token.FileSet

	// Files is the package's parsed syntax, test files excluded.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds the type information recorded while checking
	// Files (definitions, uses, selections, expression types).
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver owns filtering
	// (lint:ignore directives, test files) and formatting.
	Report func(Diagnostic)

	// ResultOf holds the results of this package's analyses by the
	// analyzers named in Analyzer.Requires.
	ResultOf map[*Analyzer]any

	// facts is the run-wide fact store (see facts.go).
	facts *FactSet
}

// ExportFact publishes a fact about fn for later analyses — of this
// package by dependent analyzers, and of downstream packages by any
// analyzer (the driver analyzes packages in import order, and the vet
// driver round-trips facts through .vetx files).
func (p *Pass) ExportFact(fn *types.Func, f Fact) {
	p.facts.export(fn, f)
}

// ImportFact copies the stored fact of dst's type about fn into dst,
// reporting whether one was found. fn may belong to this package or to
// any dependency already analyzed.
func (p *Pass) ImportFact(fn *types.Func, dst Fact) bool {
	return p.facts.imp(fn, dst)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position and a message. The driver
// stamps the reporting analyzer's name before printing.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the driver
}
