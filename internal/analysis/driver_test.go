package analysis

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// calls returns a toy analyzer flagging every call to a function whose
// name is "bad" — enough surface to drive the driver's filtering.
func calls() *Analyzer {
	return &Analyzer{
		Name: "toy",
		Doc:  "flags calls to bad()",
		Run: func(pass *Pass) (any, error) {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
						pass.Reportf(call.Pos(), "call to bad")
					}
					return true
				})
			}
			return nil, nil
		},
	}
}

// writeTree materializes a GOPATH-style src tree under a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, "src", filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func runToy(t *testing.T, src string) []Diagnostic {
	t.Helper()
	root := writeTree(t, map[string]string{"p/p.go": src})
	pkgs, err := LoadTree(root, "p")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunPackages(pkgs, []*Analyzer{calls()})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestDirectiveSuppressesSameLine(t *testing.T) {
	diags := runToy(t, `package p
func bad() {}
func f() {
	bad() //lint:ignore toy justified here
}
`)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", diags)
	}
}

func TestDirectiveSuppressesLineBelow(t *testing.T) {
	diags := runToy(t, `package p
func bad() {}
func f() {
	//lint:ignore toy justified on the line above
	bad()
}
`)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", diags)
	}
}

func TestDirectiveWrongAnalyzerDoesNotSuppress(t *testing.T) {
	diags := runToy(t, `package p
func bad() {}
func f() {
	bad() //lint:ignore other different analyzer
}
`)
	if len(diags) != 1 || diags[0].Analyzer != "toy" {
		t.Fatalf("want the toy diagnostic to survive, got %v", diags)
	}
}

func TestDirectiveStarSuppressesAll(t *testing.T) {
	diags := runToy(t, `package p
func bad() {}
func f() {
	bad() //lint:ignore * everything hushed with a reason
}
`)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", diags)
	}
}

func TestDirectiveWithoutReasonReportsAndDoesNotSuppress(t *testing.T) {
	diags := runToy(t, `package p
func bad() {}
func f() {
	bad() //lint:ignore toy
}
`)
	if len(diags) != 2 {
		t.Fatalf("want the finding plus the lint complaint, got %v", diags)
	}
	byAnalyzer := map[string]bool{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = true
	}
	if !byAnalyzer["toy"] || !byAnalyzer["lint"] {
		t.Fatalf("want one toy and one lint diagnostic, got %v", diags)
	}
}

func TestRangeDirectiveDoesNotLeak(t *testing.T) {
	// A directive two lines up must not suppress — and since it then
	// suppresses nothing, it is itself reported as unused.
	diags := runToy(t, `package p
func bad() {}
func f() {
	//lint:ignore toy too far away
	_ = 1
	bad()
}
`)
	if len(diags) != 2 {
		t.Fatalf("want the surviving finding plus the unused-directive report, got %v", diags)
	}
	byAnalyzer := map[string]bool{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = true
	}
	if !byAnalyzer["toy"] || !byAnalyzer["lint"] {
		t.Fatalf("want one toy and one lint diagnostic, got %v", diags)
	}
}

func TestUnusedDirectiveReported(t *testing.T) {
	// A justified directive with no matching diagnostic is stale and
	// must itself be reported.
	diags := runToy(t, `package p
func fine() {}
func f() {
	fine() //lint:ignore toy nothing here to hush anymore
}
`)
	if len(diags) != 1 || diags[0].Analyzer != "lint" {
		t.Fatalf("want exactly the unused-directive report, got %v", diags)
	}
}

func TestUnusedDirectiveForForeignAnalyzerNotReported(t *testing.T) {
	// A directive naming an analyzer outside this run may be
	// load-bearing for a different invocation — its usage is unknowable
	// here, so it must not be reported.
	diags := runToy(t, `package p
func fine() {}
func f() {
	fine() //lint:ignore other someone else's rule
}
`)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", diags)
	}
}

func TestUnusedStarDirectiveReported(t *testing.T) {
	// "*" matches any analyzer, so any run can decide it is unused.
	diags := runToy(t, `package p
func fine() {}
func f() {
	fine() //lint:ignore * hushing nothing
}
`)
	if len(diags) != 1 || diags[0].Analyzer != "lint" {
		t.Fatalf("want exactly the unused-directive report, got %v", diags)
	}
}

func TestTestFileDiagnosticsDroppedInVetShape(t *testing.T) {
	// Simulate a vet-mode load where _test.go files are part of the
	// package: diagnostics inside them must be dropped by the driver.
	root := writeTree(t, map[string]string{
		"q/q.go":      "package q\nfunc bad() {}\nfunc f() { bad() }\n",
		"q/q_test.go": "package q\nfunc g() { bad() }\n",
	})
	pkg, err := loadWithTests(root, "q")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunPackages([]*Package{pkg}, []*Analyzer{calls()})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want only the non-test finding, got %v", diags)
	}
}

// loadWithTests mimics the vet protocol's file list, which includes
// _test.go files for test variants.
func loadWithTests(root, path string) (*Package, error) {
	dir := filepath.Join(root, "src", path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		files = append(files, e.Name())
	}
	return TypecheckFiles(token.NewFileSet(), path, dir, files, nil)
}
