package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives let a human override an analyzer where the
// code is right and the rule is wrong — but only with a written
// justification, so every exception is greppable and reviewable:
//
//	//lint:ignore atomicwrite scratch file, durability not required
//	//lint:ignore singlewriter,ctxflow migration shim, remove with #42
//	//lint:ignore * generated code
//
// A directive suppresses matching diagnostics on its own line and on
// the line directly below it (covering both end-of-line and
// full-line-above comment placement). A directive with no
// justification suppresses nothing and is itself reported.

const directivePrefix = "//lint:ignore"

// directive is one parsed //lint:ignore comment.
type directive struct {
	file      string
	line      int
	analyzers map[string]bool // nil means all ("*")
	reason    string
	pos       token.Pos
}

// parseDirectives extracts every lint:ignore directive from the
// package's comments.
func parseDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var dirs []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignoreme
				}
				fields := strings.Fields(rest)
				d := directive{
					file: fset.Position(c.Pos()).Filename,
					line: fset.Position(c.Pos()).Line,
					pos:  c.Pos(),
				}
				if len(fields) > 0 {
					if fields[0] != "*" {
						d.analyzers = make(map[string]bool)
						for _, name := range strings.Split(fields[0], ",") {
							d.analyzers[name] = true
						}
					}
					d.reason = strings.Join(fields[1:], " ")
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// matches reports whether the directive suppresses a diagnostic from
// the named analyzer at file:line.
func (d *directive) matches(analyzer, file string, line int) bool {
	if d.reason == "" {
		return false
	}
	if d.file != file || (line != d.line && line != d.line+1) {
		return false
	}
	return d.analyzers == nil || d.analyzers[analyzer]
}
