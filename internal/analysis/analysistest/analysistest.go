// Package analysistest is the golden-test harness for the project's
// analyzers, modelled on golang.org/x/tools/go/analysis/analysistest.
// A test names import paths under testdata/src; every diagnostic the
// analyzer reports must be matched by a `// want` comment on the same
// source line, and every want comment must be matched by a diagnostic:
//
//	f.Close() // want `discards the error`
//	ok()      // no comment: reporting here fails the test
//
// The expectation is a regular expression in a back-quoted or quoted
// Go string. Multiple expectations on one line each need a match.
// Because the harness routes through the same driver as cmd/neogeolint
// (RunPackages), //lint:ignore suppression is testable in golden files
// too: a suppressed line simply carries no want comment.
package analysistest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads each import path from testdata/src, applies the analyzer,
// and reports mismatches between diagnostics and want comments on t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	pkgs, err := analysis.LoadTree(testdata, paths...)
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	diags, err := analysis.RunPackages(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type expectation struct {
		rx      *regexp.Regexp
		raw     string
		matched bool
	}
	expected := make(map[string][]*expectation) // "file:line" -> expectations
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					patterns, perr := wantPatterns(c)
					if perr != nil {
						pos := pkg.Fset.Position(c.Pos())
						t.Fatalf("%s: %v", pos, perr)
					}
					for _, p := range patterns {
						rx, rerr := regexp.Compile(p)
						if rerr != nil {
							pos := pkg.Fset.Position(c.Pos())
							t.Fatalf("%s: bad want pattern %q: %v", pos, p, rerr)
						}
						pos := pkg.Fset.Position(c.Pos())
						key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
						expected[key] = append(expected[key], &expectation{rx: rx, raw: p})
					}
				}
			}
		}
	}

	fset := pkgs[0].Fset
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, exp := range expected[key] {
			if !exp.matched && exp.rx.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	for key, exps := range expected {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: no diagnostic matching %q", key, exp.raw)
			}
		}
	}
}

// wantPatterns extracts the expectation patterns from one comment, nil
// when it is not a want comment.
func wantPatterns(c *ast.Comment) ([]string, error) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "want ") {
		return nil, nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
	var patterns []string
	for rest != "" {
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated ` in want comment")
			}
			patterns = append(patterns, rest[1:1+end])
			rest = strings.TrimSpace(rest[2+end:])
		case '"':
			// Find the closing quote respecting escapes via Unquote.
			end := 1
			for end < len(rest) {
				if rest[end] == '\\' {
					end += 2
					continue
				}
				if rest[end] == '"' {
					break
				}
				end++
			}
			if end >= len(rest) {
				return nil, fmt.Errorf("unterminated \" in want comment")
			}
			s, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad want string %s: %w", rest[:end+1], err)
			}
			patterns = append(patterns, s)
			rest = strings.TrimSpace(rest[end+1:])
		default:
			return nil, fmt.Errorf("want comment: expected quoted pattern, got %q", rest)
		}
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return patterns, nil
}
