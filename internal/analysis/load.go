package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the slice of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// LoadPackages loads and type-checks the packages matching patterns in
// the module rooted at (or containing) dir. Type information for
// dependencies — standard library and intra-module alike — comes from
// compiler export data produced by `go list -export`, so the loader
// never re-type-checks the world from source. Test files are not
// loaded (matching `go list`'s GoFiles).
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %w\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var roots []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			pkg := p
			roots = append(roots, &pkg)
		}
	}

	fset := token.NewFileSet()
	imp := exportDataImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})

	var pkgs []*Package
	for _, lp := range roots {
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s uses cgo, unsupported", lp.ImportPath)
		}
		pkg, err := typecheck(fset, lp.ImportPath, lp.Dir, lp.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadTree loads import paths from a GOPATH-style source tree (root/src
// holds one directory per import path); the analysistest harness feeds
// it testdata trees. Imports resolve first inside the tree (recursively
// type-checked from source) and then against the standard library via
// export data.
func LoadTree(root string, paths ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	tl := &treeLoader{
		root: root,
		fset: fset,
		pkgs: make(map[string]*Package),
	}
	tl.std = exportDataImporter(fset, func(path string) (string, bool) {
		f, err := tl.stdExport(path)
		if err != nil {
			return "", false
		}
		return f, true
	})
	var out []*Package
	for _, p := range paths {
		pkg, err := tl.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

type treeLoader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*Package
	std  types.Importer

	stdMu      sync.Mutex
	stdExports map[string]string
}

func (tl *treeLoader) load(path string) (*Package, error) {
	if pkg, ok := tl.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(tl.root, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: loading %s: %w", path, err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Strings(files)
	pkg, err := typecheck(tl.fset, path, dir, files, importerFunc(func(ipath string) (*types.Package, error) {
		if _, err := os.Stat(filepath.Join(tl.root, "src", filepath.FromSlash(ipath))); err == nil {
			dep, err := tl.load(ipath)
			if err != nil {
				return nil, err
			}
			return dep.Types, nil
		}
		return tl.std.Import(ipath)
	}))
	if err != nil {
		return nil, err
	}
	tl.pkgs[path] = pkg
	return pkg, nil
}

// stdExport resolves one standard-library import path to its export
// data file, shelling out to `go list -export` once per new path set.
func (tl *treeLoader) stdExport(path string) (string, error) {
	tl.stdMu.Lock()
	defer tl.stdMu.Unlock()
	if f, ok := tl.stdExports[path]; ok {
		return f, nil
	}
	cmd := exec.Command("go", "list", "-e", "-export", "-deps", "-json", path)
	cmd.Dir = tl.root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("analysis: go list -export %s: %w\n%s", path, err, stderr.String())
	}
	if tl.stdExports == nil {
		tl.stdExports = make(map[string]string)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return "", err
		}
		if p.Export != "" {
			tl.stdExports[p.ImportPath] = p.Export
		}
	}
	f, ok := tl.stdExports[path]
	if !ok {
		return "", fmt.Errorf("analysis: no export data for %s", path)
	}
	return f, nil
}

// TypecheckFiles parses and type-checks one package whose dependencies
// all resolve through lookup to compiler export data — the shape of
// cmd/go's vettool protocol, where the vet config hands the tool an
// export file per dependency.
func TypecheckFiles(fset *token.FileSet, importPath, dir string, files []string, lookup func(string) (io.ReadCloser, error)) (*Package, error) {
	return typecheck(fset, importPath, dir, files, importer.ForCompiler(fset, "gc", lookup))
}

// typecheck parses files (named relative to dir) and type-checks them
// as the package at importPath, resolving imports through imp.
func typecheck(fset *token.FileSet, importPath, dir string, files []string, imp types.Importer) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Fset:  fset,
		Files: syntax,
		Types: tpkg,
		Info:  info,
	}, nil
}

// exportDataImporter wraps the compiler (gc) importer with a lookup
// that maps import paths to export data files.
func exportDataImporter(fset *token.FileSet, find func(string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := find(path)
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
