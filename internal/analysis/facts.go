package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// A Fact is a package-level summary one analyzer exports about a
// function so that analyses of OTHER packages (and other analyzers, via
// Requires) can reason about calls into it without re-reading its body
// — "this function mutates store state", "this function blocks". Facts
// mirror the x/tools fact model but are keyed by the function's
// types.Func.FullName() rather than object identity, because the
// source-checked package and the export-data view of the same package
// are distinct types.Package instances.
//
// A fact type must be a pointer to a JSON-marshalable struct and
// declare a stable name; analyzers list their fact types in
// Analyzer.FactTypes so the vet driver can decode facts read back from
// .vetx files.
type Fact interface {
	// AFact marks the type as a fact (and keeps casual types out).
	AFact()
	// FactName is the stable serialization name, conventionally
	// "<analyzer>.<Type>".
	FactName() string
}

// factKey addresses one fact: the function's fully qualified name and
// the fact type's name.
type factKey struct {
	Obj  string
	Name string
}

// FactSet is the driver-owned store facts flow through: analyses of
// earlier (dependency) packages export into it, analyses of later
// packages import from it. In vet mode it round-trips through the
// .vetx files cmd/go passes between package units. All methods are
// safe for concurrent use.
type FactSet struct {
	mu sync.Mutex
	m  map[factKey]Fact
}

// NewFactSet returns an empty fact store.
func NewFactSet() *FactSet {
	return &FactSet{m: make(map[factKey]Fact)}
}

// export records one fact about fn, replacing any previous fact of the
// same type.
func (fs *FactSet) export(fn *types.Func, f Fact) {
	if fn == nil || f == nil {
		return
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.m[factKey{Obj: fn.FullName(), Name: f.FactName()}] = f
}

// imp copies the stored fact for (fn, type of dst) into dst, reporting
// whether one existed. dst must be a pointer to the same concrete fact
// type that was exported.
func (fs *FactSet) imp(fn *types.Func, dst Fact) bool {
	if fn == nil || dst == nil {
		return false
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	src, ok := fs.m[factKey{Obj: fn.FullName(), Name: dst.FactName()}]
	if !ok {
		return false
	}
	dv := reflect.ValueOf(dst)
	sv := reflect.ValueOf(src)
	if dv.Type() != sv.Type() || dv.Kind() != reflect.Pointer {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// serializedFact is the on-disk form of one fact (vetx files).
type serializedFact struct {
	Obj  string          `json:"obj"`
	Name string          `json:"name"`
	Data json.RawMessage `json:"data"`
}

// Encode serializes every fact in the set, deterministically ordered,
// for a vetx output file. The format is a JSON array; the leading
// magic line lets cmd/go treat the file as opaque bytes.
func (fs *FactSet) Encode() ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]serializedFact, 0, len(fs.m))
	for k, f := range fs.m {
		data, err := json.Marshal(f)
		if err != nil {
			return nil, fmt.Errorf("analysis: encoding fact %s on %s: %w", k.Name, k.Obj, err)
		}
		out = append(out, serializedFact{Obj: k.Obj, Name: k.Name, Data: data})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Obj != out[j].Obj {
			return out[i].Obj < out[j].Obj
		}
		return out[i].Name < out[j].Name
	})
	return json.MarshalIndent(out, "", "\t")
}

// Decode merges facts serialized by Encode into the set, resolving
// concrete types through the prototypes (an instance per fact type,
// normally gathered from Analyzer.FactTypes). Unknown fact names are
// skipped — a vetx written by a newer tool version must not wedge an
// older one.
func (fs *FactSet) Decode(data []byte, prototypes []Fact) error {
	var in []serializedFact
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("analysis: decoding fact set: %w", err)
	}
	byName := make(map[string]reflect.Type)
	for _, p := range prototypes {
		byName[p.FactName()] = reflect.TypeOf(p)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, sf := range in {
		typ, ok := byName[sf.Name]
		if !ok || typ.Kind() != reflect.Pointer {
			continue
		}
		f := reflect.New(typ.Elem()).Interface().(Fact)
		if err := json.Unmarshal(sf.Data, f); err != nil {
			return fmt.Errorf("analysis: decoding fact %s on %s: %w", sf.Name, sf.Obj, err)
		}
		fs.m[factKey{Obj: sf.Obj, Name: sf.Name}] = f
	}
	return nil
}

// Len returns the number of stored facts (tests, diagnostics).
func (fs *FactSet) Len() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.m)
}
