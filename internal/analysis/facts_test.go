package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// markFact is the toy fact the driver tests trade in.
type markFact struct {
	Marked bool
	Note   string
}

func (*markFact) AFact()           {}
func (*markFact) FactName() string { return "test.mark" }

func TestFactSetEncodeDecodeRoundTrip(t *testing.T) {
	pkg := types.NewPackage("example.com/x", "x")
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	fa := types.NewFunc(token.NoPos, pkg, "A", sig)
	fb := types.NewFunc(token.NoPos, pkg, "B", sig)

	fs := NewFactSet()
	fs.export(fa, &markFact{Marked: true, Note: "a"})
	fs.export(fb, &markFact{Marked: false, Note: "b"})

	data, err := fs.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic: encoding twice yields identical bytes.
	again, err := fs.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatalf("Encode is not deterministic:\n%s\nvs\n%s", data, again)
	}

	back := NewFactSet()
	if err := back.Decode(data, []Fact{(*markFact)(nil)}); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("want 2 facts after decode, got %d", back.Len())
	}
	var got markFact
	if !back.imp(fa, &got) || !got.Marked || got.Note != "a" {
		t.Fatalf("fact on A did not round-trip: %+v", got)
	}

	// Unknown fact names are skipped, not fatal.
	empty := NewFactSet()
	if err := empty.Decode(data, nil); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatalf("decode with no prototypes should skip everything, got %d", empty.Len())
	}
}

func TestRequiresCycleIsAnError(t *testing.T) {
	a := &Analyzer{Name: "a", Run: func(*Pass) (any, error) { return nil, nil }}
	b := &Analyzer{Name: "b", Run: func(*Pass) (any, error) { return nil, nil }}
	a.Requires = []*Analyzer{b}
	b.Requires = []*Analyzer{a}

	_, err := RunPackages(nil, []*Analyzer{a})
	if err == nil {
		t.Fatal("want a cycle error, got nil")
	}
	if !strings.Contains(err.Error(), "requires cycle") {
		t.Fatalf("want a clear cycle error, got: %v", err)
	}
}

// noopPkg loads a one-file package for driver-order tests.
func noopPkg(t *testing.T) []*Package {
	t.Helper()
	root := writeTree(t, map[string]string{"p/p.go": "package p\nfunc f() {}\n"})
	pkgs, err := LoadTree(root, "p")
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

func TestRequiresRunOrderAndResults(t *testing.T) {
	var order []string
	mk := func(name string, reqs ...*Analyzer) *Analyzer {
		a := &Analyzer{Name: name, Requires: reqs}
		a.Run = func(pass *Pass) (any, error) {
			order = append(order, name)
			for _, r := range reqs {
				if pass.ResultOf[r] != "result:"+r.Name {
					return nil, nil
				}
			}
			return "result:" + name, nil
		}
		return a
	}
	c := mk("c")
	b := mk("b", c)
	a := mk("a", b)
	shared := mk("shared")
	d := mk("d", shared)
	e := mk("e", shared)

	pkgs := noopPkg(t)
	for i := 0; i < 3; i++ {
		order = nil
		if _, err := RunPackages(pkgs, []*Analyzer{a, d, e}); err != nil {
			t.Fatal(err)
		}
		want := "c b a shared d e"
		if got := strings.Join(order, " "); got != want {
			t.Fatalf("run %d: want deterministic order %q, got %q", i, want, got)
		}
	}
}

func TestRequiredAnalyzerDiagnosticsNotReported(t *testing.T) {
	noisy := &Analyzer{
		Name: "noisy",
		Run: func(pass *Pass) (any, error) {
			pass.Reportf(pass.Files[0].Pos(), "requirement noise")
			return nil, nil
		},
	}
	quiet := &Analyzer{
		Name:     "quiet",
		Requires: []*Analyzer{noisy},
		Run: func(pass *Pass) (any, error) {
			pass.Reportf(pass.Files[0].Pos(), "requested finding")
			return nil, nil
		},
	}
	diags, err := RunPackages(noopPkg(t), []*Analyzer{quiet})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "quiet" {
		t.Fatalf("want only the requested analyzer's diagnostic, got %v", diags)
	}
}

func TestFactsFlowAcrossPackagesInImportOrder(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/a.go": "package a\nfunc Mut() {}\nfunc Pure() {}\n",
		"b/b.go": "package b\nimport \"a\"\nfunc Use() { a.Mut(); a.Pure() }\n",
	})
	// Load b before a: the driver must reorder so a's facts exist when
	// b is analyzed.
	pkgs, err := LoadTree(root, "b", "a")
	if err != nil {
		t.Fatal(err)
	}

	facter := &Analyzer{
		Name:      "facter",
		FactTypes: []Fact{(*markFact)(nil)},
		Run: func(pass *Pass) (any, error) {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.FuncDecl:
						if n.Name.Name == "Mut" {
							if fn, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok {
								pass.ExportFact(fn, &markFact{Marked: true})
							}
						}
					case *ast.CallExpr:
						if fn := CalleeFunc(pass.TypesInfo, n); fn != nil {
							var m markFact
							if pass.ImportFact(fn, &m) && m.Marked {
								pass.Reportf(n.Pos(), "call to marked function %s", fn.Name())
							}
						}
					}
					return true
				})
			}
			return nil, nil
		},
	}

	diags, err := RunPackages(pkgs, []*Analyzer{facter})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly the a.Mut call flagged in b, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "Mut") {
		t.Fatalf("want the Mut call, got %v", diags[0])
	}
}
