// Package inspector provides the shared single-walk AST index behind
// the inspect pass (modelled on x/tools' ast/inspector): the package's
// files are traversed exactly once at construction into a flat event
// list, and every analyzer then iterates that list — filtered by node
// type — instead of re-walking the syntax trees. With N analyzers over
// P packages this turns N×P traversals into P.
package inspector

import (
	"go/ast"
	"reflect"
)

// event is one push (preorder) or pop (postorder) of a node. For a
// push, sibling is the index of the matching pop, so a filtered
// iteration can skip a whole subtree in O(1); for a pop, it is the
// index of the matching push.
type event struct {
	node    ast.Node
	sibling int
	push    bool
}

// Inspector is the prebuilt traversal of one package's files.
type Inspector struct {
	events []event
}

// New builds the event list with a single walk over files.
func New(files []*ast.File) *Inspector {
	in := &Inspector{}
	var stack []int
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				in.events[top].sibling = len(in.events)
				in.events = append(in.events, event{node: in.events[top].node, sibling: top})
				return true
			}
			stack = append(stack, len(in.events))
			in.events = append(in.events, event{node: n, push: true})
			return true
		})
	}
	return in
}

// typeSet builds the filter for a node-type list; nil/empty means all.
func typeSet(nodeTypes []ast.Node) map[reflect.Type]bool {
	if len(nodeTypes) == 0 {
		return nil
	}
	set := make(map[reflect.Type]bool, len(nodeTypes))
	for _, n := range nodeTypes {
		set[reflect.TypeOf(n)] = true
	}
	return set
}

// Preorder calls f for every node whose type matches nodeTypes (an
// instance per wanted type, e.g. (*ast.CallExpr)(nil); empty matches
// everything), in depth-first preorder.
func (in *Inspector) Preorder(nodeTypes []ast.Node, f func(ast.Node)) {
	set := typeSet(nodeTypes)
	for _, ev := range in.events {
		if !ev.push {
			continue
		}
		if set == nil || set[reflect.TypeOf(ev.node)] {
			f(ev.node)
		}
	}
}

// WithStack is Preorder plus the stack of ancestors: f receives each
// matching node on push (push=true) and again on pop (push=false),
// with stack holding the path from the file down to and including n.
// Returning false from a push call skips the node's subtree (the pop
// call still happens).
func (in *Inspector) WithStack(nodeTypes []ast.Node, f func(n ast.Node, push bool, stack []ast.Node) bool) {
	set := typeSet(nodeTypes)
	var stack []ast.Node
	for i := 0; i < len(in.events); i++ {
		ev := in.events[i]
		if ev.push {
			stack = append(stack, ev.node)
			if set == nil || set[reflect.TypeOf(ev.node)] {
				if !f(ev.node, true, stack) {
					// Skip to the matching pop.
					i = ev.sibling - 1
					continue
				}
			}
		} else {
			if set == nil || set[reflect.TypeOf(ev.node)] {
				f(ev.node, false, stack)
			}
			stack = stack[:len(stack)-1]
		}
	}
}
