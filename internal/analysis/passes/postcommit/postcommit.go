// Package postcommit pins the commit-then-publish ordering of the read
// path: readpath.Broker publishes and the OnCommit/OnApplied hooks tell
// subscribers "this state is now visible", so they must fire only after
// the mutation is complete — never while a mutex is held (a slow or
// wedged subscriber pipeline must not extend a critical section), and
// never before the version bump that makes the commit observable (a
// subscriber that re-queries on the event must not read pre-commit
// state). It also restricts readpath.NewBroker construction to the
// system wiring, keeping the single-broadcaster topology: one broker
// per system is what makes "subscribers see every commit exactly once"
// checkable at all.
package postcommit

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/inspect"
	"repro/internal/analysis/passes/lockspan"
	"repro/internal/analysis/passes/versionbump"
)

const (
	brokerPublish = "(*repro/internal/readpath.Broker).Publish"
	newBroker     = "repro/internal/readpath.NewBroker"
)

// constructors are the packages allowed to call readpath.NewBroker:
// the system wiring in core, and readpath itself.
var constructors = map[string]bool{
	"repro/internal/core":     true,
	"repro/internal/readpath": true,
}

// hookNames are the commit-hook conventions: func-typed fields (or
// variables) whose invocation announces an applied commit. Calling a
// METHOD of these names (the registration setters) is not an
// invocation and is not matched.
var hookNames = map[string]bool{
	"onCommit":  true,
	"onApplied": true,
	"OnCommit":  true,
	"OnApplied": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "postcommit",
	Doc: "broker publishes and commit hooks fire after the commit, outside locks\n\n" +
		"Publishing under a mutex couples subscriber latency to the\n" +
		"critical section; publishing before the version bump announces\n" +
		"state the announced readers cannot yet see.",
	Requires: []*analysis.Analyzer{
		inspect.Analyzer,
		lockspan.Analyzer,
		versionbump.Analyzer, // its facts identify mutating callees
	},
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	in := inspect.Of(pass)

	// Single-broadcaster: construction sites are restricted.
	if !constructors[pass.Path] {
		in.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
			call := n.(*ast.CallExpr)
			if analysis.IsFunc(pass.TypesInfo, call, newBroker) {
				pass.Reportf(call.Pos(),
					"readpath.NewBroker outside the system wiring — the store has one broker, constructed in core")
			}
		})
	}

	// No publish or hook invocation while a lock is held.
	for _, r := range lockspan.Of(pass).Regions {
		lockspan.InspectStmts(r.Stmts, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if analysis.IsFunc(pass.TypesInfo, call, brokerPublish) {
				pass.Reportf(call.Pos(),
					"broker publish inside locked region %s — publish after the commit unlocks", r.Lock.Expr)
			} else if name := hookCall(pass.TypesInfo, call); name != "" {
				pass.Reportf(call.Pos(),
					"commit hook %s invoked inside locked region %s — fire hooks after unlock", name, r.Lock.Expr)
			}
			return true
		})
	}

	// No publish before the commit completes: within one function, a
	// publish lexically followed by a version bump or a call into a
	// mutating function announces state that is not yet committed.
	in.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		}
		if body == nil {
			return
		}
		checkEarlyPublish(pass, n, body)
	})
	return nil, nil
}

// checkEarlyPublish scans one function (nested literals excluded — they
// run elsewhere) for publishes followed by commit activity.
func checkEarlyPublish(pass *analysis.Pass, fn ast.Node, body *ast.BlockStmt) {
	type site struct {
		pos  token.Pos
		what string
	}
	var publishes []site
	var commits []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != fn {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case analysis.IsFunc(pass.TypesInfo, call, brokerPublish):
			publishes = append(publishes, site{call.Pos(), "broker publish"})
		case hookCall(pass.TypesInfo, call) != "":
			publishes = append(publishes, site{call.Pos(), "commit hook " + hookCall(pass.TypesInfo, call)})
		case isVersionBump(pass.TypesInfo, call):
			commits = append(commits, call.Pos())
		default:
			if f := analysis.CalleeFunc(pass.TypesInfo, call); f != nil {
				var mf versionbump.MutFact
				if pass.ImportFact(f, &mf) && (mf.Mutates || mf.Bumps) {
					commits = append(commits, call.Pos())
				}
			}
		}
		return true
	})
	for _, p := range publishes {
		for _, c := range commits {
			if c > p.pos {
				pass.Reportf(p.pos,
					"%s precedes a later commit in the same function — publish only after the mutation and its version bump", p.what)
				break
			}
		}
	}
}

// hookCall reports the hook name when the call invokes a func-typed
// field or variable with a commit-hook name, "" otherwise. Method calls
// (the registration setters share these names) do not match.
func hookCall(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if !hookNames[fun.Sel.Name] {
			return ""
		}
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.FieldVal {
			if _, isSig := sel.Obj().Type().Underlying().(*types.Signature); isSig {
				return fun.Sel.Name
			}
		}
	case *ast.Ident:
		if !hookNames[fun.Name] {
			return ""
		}
		if v, ok := info.Uses[fun].(*types.Var); ok {
			if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
				return fun.Name
			}
		}
	}
	return ""
}

// isVersionBump matches the project's bump convention: an Add call on a
// struct field named "version".
func isVersionBump(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Add" {
		return false
	}
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[field]
	return ok && s.Kind() == types.FieldVal && s.Obj().Name() == "version"
}
