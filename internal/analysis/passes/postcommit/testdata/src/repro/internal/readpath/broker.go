// Golden testdata: a miniature readpath.Broker at the real import path
// so FullName-based matching works as in the production tree.
package readpath

import "sync"

type Broker struct {
	mu sync.RWMutex
}

// NewBroker is legal here: readpath constructs its own broker in tests
// of the real package.
func NewBroker() *Broker { return &Broker{} }

// Publish delivers one event. The broker's internal locking is its own
// business, not a hook invocation.
func (b *Broker) Publish(action string) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_ = action
}
