// Golden testdata for postcommit's three rules: no publish/hook under a
// lock, no publish before the commit completes, no broker construction
// outside the wiring.
package integrate

import (
	"sync"
	"sync/atomic"

	"repro/internal/readpath"
)

type Lane struct {
	mu       sync.Mutex
	version  atomic.Int64
	broker   *readpath.Broker
	onCommit func(int)
}

// BadLockedPublish publishes while holding the lane lock.
func (l *Lane) BadLockedPublish() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.broker.Publish("x") // want `broker publish inside locked region l\.mu`
}

// BadLockedHook fires the commit hook while holding the lane lock.
func (l *Lane) BadLockedHook() {
	l.mu.Lock()
	l.onCommit(1) // want `commit hook onCommit invoked inside locked region l\.mu`
	l.mu.Unlock()
}

// BadEarlyPublish announces the commit before bumping the version.
func (l *Lane) BadEarlyPublish() {
	l.broker.Publish("x") // want `broker publish precedes a later commit`
	l.version.Add(1)
}

// BadConstruct builds a second broker outside the system wiring.
func (l *Lane) BadConstruct() *readpath.Broker {
	return readpath.NewBroker() // want `readpath\.NewBroker outside the system wiring`
}

// GoodPublish: commit under the lock, bump, unlock, then publish.
func (l *Lane) GoodPublish() {
	l.mu.Lock()
	l.version.Add(1)
	l.mu.Unlock()
	l.broker.Publish("x")
}

// SetHook registers the hook; registration is not invocation.
func (l *Lane) SetHook(fn func(int)) {
	l.onCommit = fn
}
