// Golden testdata: core is the system wiring and may construct the one
// broker; publishing from a hook closure with no lock held is the
// canonical clean shape.
package core

import "repro/internal/readpath"

type System struct {
	Broker *readpath.Broker
}

func New() *System {
	return &System{Broker: readpath.NewBroker()}
}

// Wire installs the post-commit publisher: the closure publishes after
// the commit, holding nothing.
func (s *System) Wire(register func(func(string))) {
	register(func(action string) {
		s.Broker.Publish(action)
	})
}
