package postcommit_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/postcommit"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", postcommit.Analyzer,
		"repro/internal/readpath", "repro/internal/core", "repro/internal/integrate")
}
