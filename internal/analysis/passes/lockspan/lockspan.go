// Package lockspan is the intra-procedural locked-region layer the
// concurrency analyzers (versionbump, postcommit, lockdiscipline) are
// built on. For every function it tracks sync.Mutex / sync.RWMutex
// Lock/RLock acquisitions, the statements executed while the lock is
// held (in statement order, flattened through control flow), the
// matching unlocks — direct, deferred, or deferred inside a func
// literal — and the return paths that leave a non-deferred region open.
//
// The model is deliberately lexical, not a full CFG:
//
//   - Branch bodies are scanned with a snapshot of the held set, so an
//     unlock inside one arm does not end the region for the code after
//     the branch. Region.Stmts is the union over paths.
//   - A region opened inside a branch must close (or defer its unlock)
//     inside that branch; conditional locking is reported as
//     NeverReleased.
//   - Func literals are separate functions: a literal's body is never
//     part of the enclosing function's regions (goroutines and deferred
//     closures do not run at their lexical position), and each literal
//     gets its own region scan.
//   - `go` statements and non-unlock `defer` statements are excluded
//     from Stmts — they do not execute under the lock at that point.
//   - In a select with a default clause every comm case is
//     non-blocking, so the comm statements are excluded; without a
//     default the comm statements are recorded (the select blocks).
package lockspan

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/inspect"
)

// A LockRef identifies a mutex as the analyzers reason about it.
type LockRef struct {
	// Expr is the source form of the receiver, e.g. "db.mu". Unlocks
	// are matched to locks by this plus Read.
	Expr string
	// Key is the resolved identity "pkg/path.Type.field" (for struct
	// fields) or "pkg/path.var" (for package-level mutexes), empty when
	// the receiver does not resolve to either. The lock-order table in
	// lockdiscipline is keyed by this.
	Key string
	// Read marks an RLock region.
	Read bool
}

// A Region is one Lock()..Unlock() span within one function.
type Region struct {
	// Fn is the enclosing declared function, nil inside a func literal.
	Fn *types.Func
	// FnNode is the enclosing *ast.FuncDecl or *ast.FuncLit.
	FnNode ast.Node

	Lock    LockRef
	LockPos token.Pos

	// Within lists the locks already held when this one was acquired,
	// outermost first — the input to lock-order checking.
	Within []LockRef

	// Deferred means the unlock is a `defer` (directly or inside a
	// deferred func literal): the region extends to every return.
	Deferred bool

	// Stmts are the leaf statements executed while the lock is held, in
	// source order. Compound statements are flattened: conditions and
	// range/switch operands appear as synthesized ExprStmts at their
	// original positions. Scan them with InspectStmts, which skips
	// nested func literals.
	Stmts []ast.Stmt

	// UnlockPos is the position of the direct unlock (if any).
	UnlockPos token.Pos

	// UnreleasedReturns are returns reached while this non-deferred
	// region is still open.
	UnreleasedReturns []token.Pos

	// NeverReleased marks a non-deferred region with no unlock on the
	// fallthrough path and no recorded return (including the
	// conditional-locking shape the model rejects).
	NeverReleased bool
}

// Info is the analyzer result: every region in the package.
type Info struct {
	Regions []*Region
}

// FuncRegions returns the regions belonging to one *ast.FuncDecl or
// *ast.FuncLit.
func (i *Info) FuncRegions(fn ast.Node) []*Region {
	var out []*Region
	for _, r := range i.Regions {
		if r.FnNode == fn {
			out = append(out, r)
		}
	}
	return out
}

// InspectStmts walks each leaf statement of a region with ast.Inspect,
// skipping func-literal subtrees (their bodies do not run under the
// region's lock at that point).
func InspectStmts(stmts []ast.Stmt, f func(n ast.Node) bool) {
	for _, st := range stmts {
		ast.Inspect(st, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			return f(n)
		})
	}
}

// Analyzer computes lock regions for the package. It reports nothing;
// its value is the *Info result.
var Analyzer = &analysis.Analyzer{
	Name:     "lockspan",
	Doc:      "track mutex lock/unlock spans and the statements inside them",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// Of extracts the lockspan result from a dependent pass.
func Of(pass *analysis.Pass) *Info {
	info, _ := pass.ResultOf[Analyzer].(*Info)
	return info
}

func run(pass *analysis.Pass) (any, error) {
	info := &Info{}
	inspect.Of(pass).Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		var fn *types.Func
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
			fn, _ = pass.TypesInfo.Defs[n.Name].(*types.Func)
		case *ast.FuncLit:
			body = n.Body
		}
		if body == nil {
			return
		}
		s := &scanner{info: pass.TypesInfo, out: info, fn: fn, node: n}
		after := s.block(body.List, nil)
		s.finish(after, nil)
	})
	return info, nil
}

// scanner walks one function body.
type scanner struct {
	info *types.Info
	out  *Info
	fn   *types.Func
	node ast.Node
}

// block scans a statement list, threading the held-region stack
// through, and returns the stack at the end of the list.
func (s *scanner) block(stmts []ast.Stmt, held []*Region) []*Region {
	for _, st := range stmts {
		held = s.stmt(st, held)
	}
	return held
}

// branch scans a control-flow arm with a snapshot of the held stack:
// unlocks inside the arm do not close regions for the code after it,
// and regions opened inside the arm must resolve inside it.
func (s *scanner) branch(stmts []ast.Stmt, held []*Region) {
	snap := make([]*Region, len(held))
	copy(snap, held)
	after := s.block(stmts, snap)
	s.finish(after, held)
}

// finish marks regions opened during a scan (i.e. in after but not in
// before) that are still open with no deferred unlock and no recorded
// return as never released.
func (s *scanner) finish(after, before []*Region) {
	outer := make(map[*Region]bool, len(before))
	for _, r := range before {
		outer[r] = true
	}
	for _, r := range after {
		if !outer[r] && !r.Deferred && len(r.UnreleasedReturns) == 0 {
			r.NeverReleased = true
		}
	}
}

func (s *scanner) stmt(st ast.Stmt, held []*Region) []*Region {
	switch st := st.(type) {
	case *ast.BlockStmt:
		return s.block(st.List, held)
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		s.record(&ast.ExprStmt{X: st.Cond}, held)
		s.branch(st.Body.List, held)
		if st.Else != nil {
			s.branch([]ast.Stmt{st.Else}, held)
		}
		return held
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.record(&ast.ExprStmt{X: st.Cond}, held)
		}
		body := st.Body.List
		if st.Post != nil {
			body = append(append([]ast.Stmt{}, body...), st.Post)
		}
		s.branch(body, held)
		return held
	case *ast.RangeStmt:
		s.record(&ast.ExprStmt{X: st.X}, held)
		s.branch(st.Body.List, held)
		return held
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.record(&ast.ExprStmt{X: st.Tag}, held)
		}
		for _, c := range st.Body.List {
			s.branch(c.(*ast.CaseClause).Body, held)
		}
		return held
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		s.record(st.Assign, held)
		for _, c := range st.Body.List {
			s.branch(c.(*ast.CaseClause).Body, held)
		}
		return held
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil && !hasDefault {
				s.record(cc.Comm, held)
			}
			s.branch(cc.Body, held)
		}
		return held
	case *ast.GoStmt:
		return held // runs off-lock; the literal's body is scanned separately
	case *ast.DeferStmt:
		return s.deferStmt(st, held)
	case *ast.ReturnStmt:
		for _, r := range held {
			if !r.Deferred {
				r.UnreleasedReturns = append(r.UnreleasedReturns, st.Pos())
			}
		}
		s.record(st, held)
		return held
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if op, ref := s.lockOp(call); op != opNone {
				return s.apply(op, ref, call, held)
			}
		}
		s.record(st, held)
		return held
	default:
		s.record(st, held)
		return held
	}
}

// deferStmt handles `defer mu.Unlock()` (directly or anywhere inside a
// deferred func literal), marking the matching open region deferred.
// Other defers are dropped: they run at return time, not here.
func (s *scanner) deferStmt(st *ast.DeferStmt, held []*Region) []*Region {
	if op, ref := s.lockOp(st.Call); op == opUnlock {
		if r := match(held, ref); r != nil {
			r.Deferred = true
		}
		return held
	}
	if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if op, ref := s.lockOp(call); op == opUnlock {
					if r := match(held, ref); r != nil {
						r.Deferred = true
					}
				}
			}
			return true
		})
	}
	return held
}

// apply opens or closes a region for a classified lock/unlock call.
func (s *scanner) apply(op int, ref LockRef, call *ast.CallExpr, held []*Region) []*Region {
	if op == opLock {
		r := &Region{
			Fn:      s.fn,
			FnNode:  s.node,
			Lock:    ref,
			LockPos: call.Pos(),
		}
		for _, h := range held {
			r.Within = append(r.Within, h.Lock)
		}
		s.out.Regions = append(s.out.Regions, r)
		return append(held[:len(held):len(held)], r)
	}
	if r := match(held, ref); r != nil {
		r.UnlockPos = call.Pos()
		out := make([]*Region, 0, len(held)-1)
		for _, h := range held {
			if h != r {
				out = append(out, h)
			}
		}
		return out
	}
	return held
}

// match finds the innermost open region the unlock ref closes.
func match(held []*Region, ref LockRef) *Region {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].Lock.Expr == ref.Expr && held[i].Lock.Read == ref.Read {
			return held[i]
		}
	}
	return nil
}

// record appends a leaf statement to every open region.
func (s *scanner) record(st ast.Stmt, held []*Region) {
	for _, r := range held {
		r.Stmts = append(r.Stmts, st)
	}
}

const (
	opNone = iota
	opLock
	opUnlock
)

// lockOp classifies a call as a mutex lock/unlock and builds the ref.
func (s *scanner) lockOp(call *ast.CallExpr) (int, LockRef) {
	fn := analysis.CalleeFunc(s.info, call)
	if fn == nil {
		return opNone, LockRef{}
	}
	var op int
	var read bool
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock":
		op = opLock
	case "(*sync.RWMutex).RLock":
		op, read = opLock, true
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock":
		op = opUnlock
	case "(*sync.RWMutex).RUnlock":
		op, read = opUnlock, true
	default:
		return opNone, LockRef{}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, LockRef{}
	}
	recv := ast.Unparen(sel.X)
	return op, LockRef{Expr: types.ExprString(recv), Key: s.key(recv), Read: read}
}

// key resolves the receiver expression to a stable lock identity:
// "pkg/path.Type.field" for a struct-field mutex, "pkg/path.var" for a
// package-level one, "" otherwise (e.g. a local variable).
func (s *scanner) key(recv ast.Expr) string {
	switch e := recv.(type) {
	case *ast.SelectorExpr:
		if sel, ok := s.info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if pkgPath, name, ok := analysis.NamedType(sel.Recv()); ok {
				return pkgPath + "." + name + "." + sel.Obj().Name()
			}
			return ""
		}
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := s.info.Uses[id].(*types.PkgName); isPkg {
				if obj := s.info.Uses[e.Sel]; obj != nil && obj.Pkg() != nil {
					return obj.Pkg().Path() + "." + obj.Name()
				}
			}
		}
	case *ast.Ident:
		obj := s.info.Uses[e]
		if obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	return ""
}
