package atomicwrite_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/atomicwrite"
)

func Test(t *testing.T) {
	analysistest.Run(t, "testdata", atomicwrite.Analyzer,
		"repro/internal/persist",
		"scratch",
	)
}
