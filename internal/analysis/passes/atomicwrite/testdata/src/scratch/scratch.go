// Package scratch is not a durable package: os.WriteFile is allowed,
// but rename-without-sync is still the crash-consistency bug.
package scratch

import "os"

func cache(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func swap(a, b string) error {
	return os.Rename(a, b) // want `os.Rename with no preceding sync in swap`
}
