// Package persist is the durable checkpoint path: publication must be
// temp -> fsync -> rename, and os.WriteFile is banned.
package persist

import "os"

func publishGood(tmp, final string) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

func publishViaHelper(tmp, final string) error {
	if err := syncDir(tmp); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// syncDir is recognised as a sync by name.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func publishTorn(tmp, final string) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final) // want `os.Rename with no preceding sync in publishTorn`
}

func writeManifest(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os.WriteFile in durable package repro/internal/persist`
}

func suppressed(tmp, final string) error {
	//lint:ignore atomicwrite target lives on a tmpfs scratch mount
	return os.Rename(tmp, final)
}
