// Package atomicwrite pins the durability subsystem's publication
// protocol: a durable file becomes visible only as temp → fsync →
// rename. An os.Rename that publishes bytes which were never synced
// can surface a zero-length or torn file after a crash — exactly the
// corruption the checkpoint manager's recovery scan exists to refuse.
//
// Two rules:
//
//   - In every package, a function that calls os.Rename must have
//     issued a sync (an (*os.File).Sync call, or a call to a helper
//     whose name says it syncs, e.g. syncDir) earlier in its body.
//     Rename-without-fsync is the classic crash-consistency bug and
//     there is no in-tree reason to do it.
//   - In the durable packages (persist, feedback, mq), os.WriteFile
//     is banned outright: it cannot fsync, so nothing written with it
//     is crash-safe.
package atomicwrite

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/inspect"
)

// durable lists the packages whose files must survive kill -9: the
// checkpoint manager, the feedback ledger, and the queue WAL.
var durable = map[string]bool{
	"repro/internal/persist":  true,
	"repro/internal/feedback": true,
	"repro/internal/mq":       true,
}

var Analyzer = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc: "durable files are published temp → fsync → rename\n\n" +
		"os.Rename must be preceded by a sync in the same function, and\n" +
		"the durability packages may not use os.WriteFile (it cannot\n" +
		"fsync).",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	inspect.Of(pass).Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		if fd := n.(*ast.FuncDecl); fd.Body != nil {
			checkFunc(pass, fd)
		}
	})
	return nil, nil
}

// checkFunc orders every sync-like and rename call in the function
// body (nested closures included — they share the body's source order)
// and reports renames with no earlier sync.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var syncs, renames []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		switch {
		case fn.FullName() == "os.Rename":
			renames = append(renames, call.Pos())
		case isSyncish(fn.Name()):
			syncs = append(syncs, call.Pos())
		case fn.FullName() == "os.WriteFile" && durable[pass.Path]:
			pass.Reportf(call.Pos(),
				"os.WriteFile in durable package %s — it cannot fsync; write temp → fsync → rename instead", pass.Path)
		}
		return true
	})
	if len(renames) == 0 {
		return
	}
	sort.Slice(syncs, func(i, j int) bool { return syncs[i] < syncs[j] })
	for _, r := range renames {
		i := sort.Search(len(syncs), func(i int) bool { return syncs[i] >= r })
		if i == 0 {
			pass.Reportf(r,
				"os.Rename with no preceding sync in %s — publish durable files temp → fsync → rename", fd.Name.Name)
		}
	}
}

// isSyncish reports whether a callee name denotes a sync: the
// (*os.File).Sync method itself, or a helper advertising one
// (syncDir, flushAndSync, ...).
func isSyncish(name string) bool {
	return name == "Sync" || strings.Contains(strings.ToLower(name), "sync")
}
