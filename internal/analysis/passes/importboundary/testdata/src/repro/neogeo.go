// Package neogeo is a stub of the public facade for analyzer tests.
package neogeo

// System stands in for the real facade type.
type System struct{}
