// Command ok builds only against the facade and allow-listed helpers.
package main

import (
	neogeo "repro"
	"repro/internal/benchkit"
)

func main() {
	_ = neogeo.System{}
	benchkit.Run()
}
