// Command ok builds only against the facade and allow-listed helpers.
package main

import (
	neogeo "repro"
	"repro/internal/benchkit"
	"repro/internal/obs"
)

func main() {
	_ = neogeo.System{}
	benchkit.Run()
	_ = obs.Handler()
}
