// Command app reaches into pipeline internals and is flagged.
package main

import (
	_ "repro/internal/core"     // want `repro/cmd/app imports internal package repro/internal/core — use neogeo.New with options`
	_ "repro/internal/readpath" // want `repro/cmd/app imports internal package repro/internal/readpath — use neogeo.WithAnswerCache / neogeo.Subscribe / neogeo.OpenSubscription`
)

func main() {}
