// Package benchkit is a stub allow-listed internal.
package benchkit

// Run stands in for a bench entry point.
func Run() {}
