// Package core is a stub pipeline internal.
package core

// Config stands in for the real config.
type Config struct{}
