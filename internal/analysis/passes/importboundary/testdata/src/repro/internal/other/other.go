// Package other is an internal package: the boundary rule does not
// apply between internals.
package other

import (
	_ "repro/internal/core"
)
