// Package obs stands in for the real observability layer: allow-listed,
// so commands may mount its metrics handler and build loggers from it.
package obs

func Handler() any { return nil }
