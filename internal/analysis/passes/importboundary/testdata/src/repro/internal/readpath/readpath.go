// Package readpath is a stub hot-read-path internal.
package readpath

// Subscription stands in for the real spec.
type Subscription struct{}
