// Example demo is flagged for importing an internal not on the allow
// list (no specific hint is registered for it, so the generic one is
// expected).
package main

import (
	_ "repro/internal/core" // want `use neogeo.New with options`
)

func main() {}
