package importboundary_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/importboundary"
)

func Test(t *testing.T) {
	analysistest.Run(t, "testdata", importboundary.Analyzer,
		"repro/cmd/app",
		"repro/cmd/ok",
		"repro/examples/demo",
		"repro/internal/other",
	)
}
