// Package importboundary pins the facade boundary introduced by the
// API redesign: programs under cmd/ and examples/ build against the
// stable public surface, never against the pipeline internals, so the
// pipeline can be refactored behind the facade without breaking any
// in-tree caller. The rule is default-deny — a new internal package is
// off-limits to cmd/ and examples/ until it is added to the allow list
// here — which is strictly stronger than the original import-graph
// test that only banned three named packages.
package importboundary

import (
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// ModulePath is the module all rules are anchored to.
const ModulePath = "repro"

// allowed names the internal subtrees cmd/ and examples/ may import:
// the bench harness, the serving layer (daemons embed it), the
// observability layer (daemons mount its /metrics handler and build
// their loggers from it), the analysis tooling itself, and the leaf
// research-kit packages that the offline eval binaries (nerbench,
// disambench, geostats) drive directly. Everything else under
// internal/ is pipeline machinery the facade covers.
var allowed = map[string]bool{
	"benchkit":  true,
	"server":    true,
	"obs":       true,
	"analysis":  true,
	"gazetteer": true,
	"ner":       true,
	"ontology":  true,
	"disambig":  true,
	"tweetgen":  true,
	"text":      true,
	"geo":       true,
}

// hints carries per-package guidance for the packages most likely to
// be reached for out of habit.
var hints = map[string]string{
	"repro/internal/coordinator": "use neogeo.Outcome / neogeo.Drain",
	"repro/internal/extract":     "use neogeo.MessageType / neogeo.Answer",
	"repro/internal/core":        "use neogeo.New with options",
	"repro/internal/xmldb":       "use neogeo.Ask / neogeo.Feedback; the store is never touched directly",
	"repro/internal/mq":          "use neogeo.Submit; the queue and its WAL are facade-managed",
	"repro/internal/shard":       "shard routing is internal; configure neogeo.WithShards instead",
	"repro/internal/persist":     "use neogeo.WithDataDir / System.Checkpoint",
	"repro/internal/feedback":    "use neogeo.Feedback / neogeo.FlushFeedback",
	"repro/internal/readpath":    "use neogeo.WithAnswerCache / neogeo.Subscribe / neogeo.OpenSubscription",
}

var Analyzer = &analysis.Analyzer{
	Name: "importboundary",
	Doc: "cmd/ and examples/ may only import the public facade\n\n" +
		"Programs under cmd/ and examples/ must build against the stable\n" +
		"neogeo surface (plus the allow-listed bench/serving/research-kit\n" +
		"packages); importing pipeline internals couples them to details\n" +
		"the facade exists to hide.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !strings.HasPrefix(pass.Path, ModulePath+"/cmd/") &&
		!strings.HasPrefix(pass.Path, ModulePath+"/examples/") {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			rest, ok := strings.CutPrefix(path, ModulePath+"/internal/")
			if !ok {
				continue // the facade itself, std, or sibling commands
			}
			top := rest
			if i := strings.IndexByte(rest, '/'); i >= 0 {
				top = rest[:i]
			}
			if allowed[top] {
				continue
			}
			hint := hints[path]
			if hint == "" {
				hint = "use the neogeo facade instead, or allow-list the package in importboundary with a rationale"
			}
			pass.Reportf(imp.Pos(), "%s imports internal package %s — %s", pass.Path, path, hint)
		}
	}
	return nil, nil
}
