// Package ctxflow pins the cancellation discipline the facade
// promised when every entry point gained a context parameter:
//
//   - Library code never mints its own context.Background() /
//     context.TODO(): a root context on a cancellable path detaches
//     the work under it from the caller's deadline and shutdown. Only
//     package main gets to create roots.
//   - In the entry-point packages (the facade, the serving layer, the
//     coordinator, core), an exported function that accepts a
//     context.Context takes it as its first parameter — the position
//     is the convention that makes call sites skimmable.
//   - In the pipeline packages, a goroutine must be launched with
//     cancellation or join wiring in hand: its body (or call) has to
//     mention a context, a channel, or a WaitGroup. A bare goroutine
//     with none of the three outlives shutdown invisibly — the drain
//     loop's wind-down ordering (outcomes before WAL close) depends on
//     there being no such stragglers.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/inspect"
)

// entryPackages are where the ctx-first convention is enforced.
var entryPackages = map[string]bool{
	"repro":                      true,
	"repro/internal/server":      true,
	"repro/internal/coordinator": true,
	"repro/internal/core":        true,
}

// pipelinePackages are where goroutines must carry cancellation or
// join wiring.
var pipelinePackages = map[string]bool{
	"repro":                      true,
	"repro/internal/server":      true,
	"repro/internal/coordinator": true,
	"repro/internal/core":        true,
	"repro/internal/shard":       true,
	"repro/internal/feedback":    true,
	"repro/internal/integrate":   true,
	"repro/internal/mq":          true,
	"repro/internal/readpath":    true,
}

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "contexts flow from the caller: no library roots, ctx first, wired goroutines\n\n" +
		"Flags context.Background()/TODO() outside package main, exported\n" +
		"entry points whose context parameter is not first, and goroutines\n" +
		"launched without a context, channel or WaitGroup in hand.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	isMain := pass.Pkg.Name() == "main"
	nodeTypes := []ast.Node{(*ast.CallExpr)(nil), (*ast.FuncDecl)(nil), (*ast.GoStmt)(nil)}
	inspect.Of(pass).Preorder(nodeTypes, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isMain {
				return
			}
			if analysis.IsFunc(pass.TypesInfo, n, "context.Background") ||
				analysis.IsFunc(pass.TypesInfo, n, "context.TODO") {
				pass.Reportf(n.Pos(), "new root context on a library path — accept a context.Context from the caller so cancellation reaches this work")
			}
		case *ast.FuncDecl:
			checkCtxFirst(pass, n)
		case *ast.GoStmt:
			checkGoWiring(pass, n)
		}
	})
	return nil, nil
}

// checkCtxFirst enforces ctx-first on exported functions in the entry
// packages.
func checkCtxFirst(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !entryPackages[pass.Path] || !fd.Name.IsExported() || fd.Type.Params == nil {
		return
	}
	pos := 0
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		isCtx := ok && isContextType(tv.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtx && pos != 0 {
			pass.Reportf(field.Pos(), "%s takes context.Context at position %d — entry points take ctx first", fd.Name.Name, pos+1)
		}
		pos += n
	}
}

// checkGoWiring requires a context, channel or WaitGroup somewhere in
// the launched call or its function literal's body.
func checkGoWiring(pass *analysis.Pass, g *ast.GoStmt) {
	if !pipelinePackages[pass.Path] {
		return
	}
	wired := false
	ast.Inspect(g.Call, func(n ast.Node) bool {
		if wired {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[e]; ok && isWiring(tv.Type) {
			wired = true
			return false
		}
		return true
	})
	if !wired {
		pass.Reportf(g.Pos(), "goroutine launched without cancellation or join wiring — pass a ctx, channel, or WaitGroup so shutdown can reach it")
	}
}

// isWiring reports whether t is a context, a channel, or a WaitGroup
// (possibly behind a pointer).
func isWiring(t types.Type) bool {
	if t == nil {
		return false
	}
	if isContextType(t) {
		return true
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	pkgPath, name, ok := analysis.NamedType(t)
	return ok && pkgPath == "sync" && name == "WaitGroup"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	pkgPath, name, ok := analysis.NamedType(t)
	return ok && pkgPath == "context" && name == "Context"
}
