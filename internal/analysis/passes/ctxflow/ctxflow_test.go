package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/ctxflow"
)

func Test(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer,
		"repro/internal/server",
		"repro/internal/text",
		"repro/internal/readpath",
		"repro/cmd/daemon",
	)
}
