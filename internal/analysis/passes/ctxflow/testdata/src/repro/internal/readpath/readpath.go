// Package readpath is a pipeline package: its goroutines fan events out
// to subscribers and must be wired for shutdown.
package readpath

import "context"

// Event stands in for the real broker event.
type Event struct{}

func fanOut(ctx context.Context, events chan Event) {
	go func() { // wired: the body owns a channel
		for range events {
		}
	}()

	go func() { // wired: the body watches ctx
		<-ctx.Done()
	}()

	go func() { // want `goroutine launched without cancellation or join wiring`
		for {
		}
	}()
}

func mint() {
	_ = context.Background() // want `new root context on a library path`
}
