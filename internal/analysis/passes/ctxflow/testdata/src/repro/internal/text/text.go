// Package text is neither an entry nor a pipeline package: the
// ctx-first and goroutine rules do not apply, but minting roots is
// still a library-path violation.
package text

import "context"

// Tokenize declaring ctx second is tolerated outside entry packages.
func Tokenize(s string, ctx context.Context) []string { return nil }

func helper() {
	go func() {}() // goroutine wiring is only enforced in pipeline packages

	_ = context.Background() // want `new root context on a library path`
}
