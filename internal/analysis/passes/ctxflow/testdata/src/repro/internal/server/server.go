// Package server is both an entry package (ctx-first) and a pipeline
// package (wired goroutines).
package server

import (
	"context"
	"sync"
)

// Run takes ctx first: fine.
func Run(ctx context.Context, addr string) error { return nil }

// Ask declares ctx second: flagged.
func Ask(question string, ctx context.Context) error { return nil } // want `Ask takes context\.Context at position 2`

// NoCtx has no context parameter at all, which is legal — the rule is
// about position, not presence.
func NoCtx(addr string) error { return nil }

func drainLoop(ctx context.Context) {
	go func() { // wired: the body watches ctx
		<-ctx.Done()
	}()

	done := make(chan struct{})
	go func() { // wired: the body owns a channel
		close(done)
	}()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // wired: joined by a WaitGroup
		defer wg.Done()
	}()
	wg.Wait()

	go func() { // want `goroutine launched without cancellation or join wiring`
		for {
		}
	}()
}

func mint() error {
	ctx := context.Background() // want `new root context on a library path`
	_ = ctx
	return nil
}

func todo() {
	_ = context.TODO() // want `new root context on a library path`
}
