// Command daemon is package main: the process owns its root context.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
