// Golden testdata for lockdiscipline: blocking ops under lock,
// acquisition order, unlock pairing. The Engine field names match the
// production lock-rank table.
package feedback

import (
	"errors"
	"sync"
	"time"
)

var errFail = errors.New("fail")

type Engine struct {
	applyMu sync.Mutex
	mu      sync.Mutex
	ch      chan int
}

// slowFlush hides the sleep one call away: blocking-ness must
// propagate through the fact.
func slowFlush() {
	time.Sleep(time.Millisecond)
}

// GoodOrder nests applyMu before mu, matching the rank table.
func (e *Engine) GoodOrder() {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}

// BadOrder acquires applyMu while holding mu.
func (e *Engine) BadOrder() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.applyMu.Lock() // want `violates the lock order`
	e.applyMu.Unlock()
}

// BadReentry re-locks a held mutex.
func (e *Engine) BadReentry() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mu.Lock() // want `re-acquires e\.mu, which is already held`
	e.mu.Unlock()
}

// BadSleep blocks under the lock.
func (e *Engine) BadSleep() {
	e.mu.Lock()
	defer e.mu.Unlock()
	time.Sleep(time.Millisecond) // want `blocking operation \(time\.Sleep\) while holding e\.mu`
}

// BadTransitive blocks through the helper.
func (e *Engine) BadTransitive() {
	e.mu.Lock()
	defer e.mu.Unlock()
	slowFlush() // want `blocking operation \(slowFlush -> time\.Sleep\) while holding e\.mu`
}

// GoodAsync: a goroutine does not block the lock holder.
func (e *Engine) GoodAsync() {
	e.mu.Lock()
	defer e.mu.Unlock()
	go slowFlush()
}

// BadWait parks on a WaitGroup under the lock.
func (e *Engine) BadWait(wg *sync.WaitGroup) {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	wg.Wait() // want `blocking operation \(\(\*sync\.WaitGroup\)\.Wait\) while holding e\.applyMu`
}

// BadSend: a bare send blocks until a receiver shows up.
func (e *Engine) BadSend(v int) {
	e.mu.Lock()
	e.ch <- v // want `blocking operation \(channel send\) while holding e\.mu`
	e.mu.Unlock()
}

// BadRecv blocks receiving under the lock.
func (e *Engine) BadRecv() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return <-e.ch // want `blocking operation \(channel receive\) while holding e\.mu`
}

// GoodSend: select with default never blocks — the broker's delivery
// shape.
func (e *Engine) GoodSend(v int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case e.ch <- v:
	default:
	}
}

// BadReturn leaves without unlocking on the error path.
func (e *Engine) BadReturn(fail bool) error {
	e.mu.Lock()
	if fail {
		return errFail // want `return while e\.mu is still locked`
	}
	e.mu.Unlock()
	return nil
}

// GoodBranchUnlock unlocks on both paths without defer.
func (e *Engine) GoodBranchUnlock(fail bool) error {
	e.mu.Lock()
	if fail {
		e.mu.Unlock()
		return errFail
	}
	e.mu.Unlock()
	return nil
}

// BadForever locks and falls off the end.
func (e *Engine) BadForever() {
	e.mu.Lock() // want `e\.mu is locked here and never released`
	e.ch = nil
}
