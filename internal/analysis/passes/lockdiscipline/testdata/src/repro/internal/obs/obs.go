// Mini obs tracing surface for the lockdiscipline golden tests: the
// import path matches production so the analyzer's tracer-call table
// resolves the same FullNames.
package obs

type Span struct{ name string }

func (s *Span) End()                      {}
func (s *Span) SetAttr(key, value string) {}

type Recorder struct{}

func (r *Recorder) Get(id string) (any, bool) { return nil, false }
func (r *Recorder) Recent(n int) []any        { return nil }
func (r *Recorder) Slowest(n int) []any       { return nil }
func (r *Recorder) Active(n int) []any        { return nil }

func StartSpan(ctx any, name string) (any, *Span) { return ctx, &Span{name: name} }

func ForceSpan(ctx any, name string) (any, *Span) { return ctx, &Span{name: name} }
