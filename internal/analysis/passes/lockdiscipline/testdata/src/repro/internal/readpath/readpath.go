// Golden testdata for lockdiscipline's hot-lock tracer rule: no span
// or recorder traffic inside Broker.mu / Cache.mu critical sections.
// The field names match the production lock-rank table.
package readpath

import (
	"sync"

	"repro/internal/obs"
)

type Broker struct {
	mu   sync.Mutex
	subs int
}

type Cache struct {
	mu      sync.Mutex
	entries map[string]string
}

const spanCacheLookup = "cache_lookup"

// GoodBracketed starts and ends the span outside the critical section
// — the production shape.
func (c *Cache) GoodBracketed(key string) (string, bool) {
	_, sp := obs.StartSpan(nil, spanCacheLookup)
	c.mu.Lock()
	v, ok := c.entries[key]
	c.mu.Unlock()
	sp.SetAttr("hit", "true")
	sp.End()
	return v, ok
}

// BadStartUnderLock opens a span while holding the cache lock.
func (c *Cache) BadStartUnderLock(key string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, sp := obs.StartSpan(nil, spanCacheLookup) // want `span recorder call \(StartSpan\) while holding hot lock c\.mu`
	v, ok := c.entries[key]
	sp.End() // want `span recorder call \(End\) while holding hot lock c\.mu`
	return v, ok
}

// BadForceUnderLock forces a trace while holding the broker lock.
func (b *Broker) BadForceUnderLock() {
	b.mu.Lock()
	_, sp := obs.ForceSpan(nil, "deliver") // want `span recorder call \(ForceSpan\) while holding hot lock b\.mu`
	b.subs++
	sp.End() // want `span recorder call \(End\) while holding hot lock b\.mu`
	b.mu.Unlock()
}

// BadRecorderRead queries the recorder's views under the broker lock.
func (b *Broker) BadRecorderRead(r *obs.Recorder) []any {
	b.mu.Lock()
	defer b.mu.Unlock()
	return r.Recent(10) // want `span recorder call \(Recent\) while holding hot lock b\.mu`
}

// GoodDeferredEnd: the deferred End runs at function exit, outside the
// unlocked-by-then region.
func (c *Cache) GoodDeferredEnd(key string) string {
	_, sp := obs.StartSpan(nil, spanCacheLookup)
	defer sp.End()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[key]
}
