// Package lockdiscipline pins the concurrency hygiene of the store's
// hot locks (xmldb, shard, feedback, readpath):
//
//   - No blocking operation while a lock is held: network and HTTP
//     calls, fsync, subprocess waits, WaitGroup/Cond waits, time.Sleep,
//     and bare channel sends/receives (a select with a default clause
//     is non-blocking and allowed — the broker's delivery shape).
//     Blocking-ness propagates through calls via per-function facts, so
//     hiding the sleep in a helper — or another package — still flags.
//   - Consistent acquisition order when one function nests locks:
//     feedback.applyMu → feedback.mu → readpath.Broker.mu →
//     readpath.Cache.mu → xmldb.DB.mu. Acquiring against the order (or
//     re-acquiring a held lock, or double-locking two instances of the
//     same lock class — the cross-shard-lock smell) is flagged.
//   - Unlock pairing: every return path releases what it locked, and no
//     region runs off the end of its function still holding the lock.
//   - No flight-recorder traffic under the read-path hot locks
//     (xmldb.DB.mu, readpath.Broker.mu, readpath.Cache.mu): starting or
//     ending a span takes the recorder's own lock and allocates, so a
//     span call inside one of these critical sections couples recorder
//     contention to every reader and writer queued on the store. Spans
//     bracket the locked call from outside instead.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/inspect"
	"repro/internal/analysis/passes/lockspan"
)

// modulePath scopes fact computation to the project's own packages:
// under `go vet -vettool` the analyzer is driven over every
// dependency, stdlib included, and summarizing runtime internals is
// both slow and meaningless — direct stdlib blocking calls are named
// in blockingFuncs instead.
const modulePath = "repro"

// checked are the packages whose locks the analyzer reports on; facts
// are computed everywhere so blocking-ness crosses package boundaries.
var checked = map[string]bool{
	"repro/internal/xmldb":    true,
	"repro/internal/shard":    true,
	"repro/internal/feedback": true,
	"repro/internal/readpath": true,
}

// blockingFuncs are the directly blocking calls, by FullName.
var blockingFuncs = map[string]bool{
	"time.Sleep":                    true,
	"(*sync.WaitGroup).Wait":        true,
	"(*sync.Cond).Wait":             true,
	"(*os.File).Sync":               true,
	"net.Dial":                      true,
	"net.DialTimeout":               true,
	"(*net.Dialer).Dial":            true,
	"(*net.Dialer).DialContext":     true,
	"(*net/http.Client).Do":         true,
	"(*net/http.Client).Get":        true,
	"(*net/http.Client).Post":       true,
	"(*net/http.Client).PostForm":   true,
	"net/http.Get":                  true,
	"net/http.Post":                 true,
	"net/http.PostForm":             true,
	"net/http.Head":                 true,
	"(*os/exec.Cmd).Run":            true,
	"(*os/exec.Cmd).Output":         true,
	"(*os/exec.Cmd).CombinedOutput": true,
	"(*os/exec.Cmd).Wait":           true,
}

// tracerFuncs are the obs tracing entry points that touch the span
// flight recorder, by FullName.
var tracerFuncs = map[string]bool{
	"repro/internal/obs.StartSpan":           true,
	"repro/internal/obs.ForceSpan":           true,
	"(*repro/internal/obs.Span).End":         true,
	"(*repro/internal/obs.Recorder).Get":     true,
	"(*repro/internal/obs.Recorder).Recent":  true,
	"(*repro/internal/obs.Recorder).Slowest": true,
	"(*repro/internal/obs.Recorder).Active":  true,
}

// hotLocks are the lock classes on the store's serving paths where
// recorder traffic is forbidden outright.
var hotLocks = map[string]bool{
	"repro/internal/xmldb.DB.mu":        true,
	"repro/internal/readpath.Broker.mu": true,
	"repro/internal/readpath.Cache.mu":  true,
}

// lockRank is the project-wide acquisition order, outermost first.
// Nested acquisitions must move to strictly higher ranks.
var lockRank = map[string]int{
	"repro/internal/feedback.Engine.applyMu": 10,
	"repro/internal/feedback.Engine.mu":      20,
	"repro/internal/readpath.Broker.mu":      30,
	"repro/internal/readpath.Cache.mu":       40,
	"repro/internal/xmldb.DB.mu":             50,
}

const rankDoc = "applyMu -> feedback.mu -> broker.mu -> cache.mu -> db.mu"

// BlocksFact marks a function that (transitively) performs a blocking
// operation; What names the root cause.
type BlocksFact struct {
	Blocks bool
	What   string
}

func (*BlocksFact) AFact()           {}
func (*BlocksFact) FactName() string { return "lockdiscipline.BlocksFact" }

var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "no blocking ops under shard/db locks; ordered acquisition; unlock on every path\n\n" +
		"A blocked lock holder stalls every reader and writer behind it;\n" +
		"inconsistent nesting deadlocks; an unpaired return wedges the\n" +
		"store permanently.",
	Requires:  []*analysis.Analyzer{inspect.Analyzer, lockspan.Analyzer},
	FactTypes: []analysis.Fact{(*BlocksFact)(nil)},
	Run:       run,
}

type checker struct {
	pass  *analysis.Pass
	local map[*types.Func]BlocksFact
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Path != modulePath && !strings.HasPrefix(pass.Path, modulePath+"/") {
		return nil, nil
	}
	ck := &checker{pass: pass, local: make(map[*types.Func]BlocksFact)}

	var decls []*ast.FuncDecl
	inspect.Of(pass).Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		if d := n.(*ast.FuncDecl); d.Body != nil {
			decls = append(decls, d)
		}
	})
	// Fixpoint: blocking-ness flows through in-package calls.
	for round := 0; round <= len(decls)+1; round++ {
		changed := false
		for _, d := range decls {
			fn, _ := pass.TypesInfo.Defs[d.Name].(*types.Func)
			if fn == nil {
				continue
			}
			what := ck.findBlocking(d.Body)
			// Store only the root cause: chains stay two hops at the
			// report site and the fixpoint converges even through
			// mutual recursion.
			next := BlocksFact{Blocks: what != "", What: rootCause(what)}
			if prev := ck.local[fn]; prev != next {
				ck.local[fn] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for fn, f := range ck.local {
		if f.Blocks {
			fact := f
			pass.ExportFact(fn, &fact)
		}
	}

	if !checked[pass.Path] {
		return nil, nil
	}
	for _, r := range lockspan.Of(pass).Regions {
		ck.checkRegion(r)
	}
	return nil, nil
}

func (ck *checker) checkRegion(r *lockspan.Region) {
	// Acquisition order against every lock already held (read and
	// write acquisitions alike).
	for _, held := range r.Within {
		if held.Expr == r.Lock.Expr {
			ck.pass.Reportf(r.LockPos, "re-acquires %s, which is already held — immediate deadlock", r.Lock.Expr)
			continue
		}
		hr, hok := lockRank[held.Key]
		nr, nok := lockRank[r.Lock.Key]
		if hok && nok && nr <= hr {
			ck.pass.Reportf(r.LockPos,
				"acquires %s while holding %s — violates the lock order %s", r.Lock.Expr, held.Expr, rankDoc)
		}
	}

	// Unlock pairing.
	for _, pos := range r.UnreleasedReturns {
		ck.pass.Reportf(pos, "return while %s is still locked — unlock on every path or defer the unlock", r.Lock.Expr)
	}
	if r.NeverReleased {
		ck.pass.Reportf(r.LockPos, "%s is locked here and never released in this function", r.Lock.Expr)
	}

	// Blocking operations inside the region.
	for _, st := range r.Stmts {
		if what := ck.findBlocking(st); what != "" {
			ck.pass.Reportf(st.Pos(), "blocking operation (%s) while holding %s", what, r.Lock.Expr)
		}
	}

	// Flight-recorder traffic inside a hot region.
	if hotLocks[r.Lock.Key] {
		for _, st := range r.Stmts {
			ck.findTracer(st, r.Lock.Expr)
		}
	}
}

// findTracer reports every tracer call lexically inside n. Like
// findBlocking, func literals, go statements and defers do not run
// inside the region and are skipped.
func (ck *checker) findTracer(n ast.Node, lockExpr string) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(ck.pass.TypesInfo, n)
			if fn != nil && tracerFuncs[fn.FullName()] {
				ck.pass.Reportf(n.Pos(),
					"span recorder call (%s) while holding hot lock %s — start and end spans outside the critical section", fn.Name(), lockExpr)
			}
		}
		return true
	})
}

// findBlocking returns a description of the first blocking operation
// lexically inside n, or "". Func literals, go statements and defers do
// not run here and are skipped; a select with a default clause is
// non-blocking, so only its case bodies are scanned.
func (ck *checker) findBlocking(n ast.Node) string {
	var what string
	ast.Inspect(n, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if c.(*ast.CommClause).Comm == nil {
					hasDefault = true
				}
			}
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm != nil && !hasDefault && what == "" {
					what = ck.findBlocking(cc.Comm)
				}
				for _, st := range cc.Body {
					if what == "" {
						what = ck.findBlocking(st)
					}
				}
			}
			return false
		case *ast.SendStmt:
			what = "channel send"
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				what = "channel receive"
				return false
			}
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(ck.pass.TypesInfo, n)
			if fn == nil {
				return true
			}
			if blockingFuncs[fn.FullName()] {
				what = fn.FullName()
				return false
			}
			if f, ok := ck.local[fn]; ok && f.Blocks {
				what = fn.Name() + " -> " + f.What
				return false
			}
			var imported BlocksFact
			if ck.pass.ImportFact(fn, &imported) && imported.Blocks {
				what = fn.Name() + " -> " + imported.What
				return false
			}
		}
		return true
	})
	return what
}

// rootCause strips a rendered chain down to its final element.
func rootCause(what string) string {
	if i := strings.LastIndex(what, " -> "); i >= 0 {
		return what[i+len(" -> "):]
	}
	return what
}
