package lockdiscipline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/lockdiscipline"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", lockdiscipline.Analyzer,
		"repro/internal/feedback", "repro/internal/readpath")
}
