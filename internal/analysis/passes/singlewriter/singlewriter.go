// Package singlewriter pins the store's concurrency discipline: every
// xmldb.DB behind the sharded store has exactly one writer — the
// integration lane that owns the shard, or the feedback engine's
// per-shard apply batches — so integration never takes a cross-shard
// lock and a reader can never observe a half-merged record. The
// analyzer flags any call to a mutating DB/Tx method from a package
// outside the small set that implements those write paths; serving,
// QA and command-line code must go through Submit/Feedback instead of
// reaching into the store.
package singlewriter

import (
	"go/ast"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/inspect"
)

// xmldbPath is the package whose DB/Tx mutations are guarded.
const xmldbPath = "repro/internal/xmldb"

// mutators is the write surface of xmldb.DB and xmldb.Tx.
var mutators = map[string]bool{
	"Insert":          true,
	"Update":          true,
	"Delete":          true,
	"Batch":           true,
	"Restore":         true,
	"SetIDSequence":   true,
	"AlignIDSequence": true,
	"SetClock":        true,
}

// writers are the packages that legitimately own a write path:
// xmldb itself, the integration lanes, the feedback apply engine, the
// shard router that fans writes out to lane-owned shards, and core,
// which restores checkpoint images during single-threaded boot.
var writers = map[string]bool{
	"repro/internal/xmldb":     true,
	"repro/internal/integrate": true,
	"repro/internal/feedback":  true,
	"repro/internal/shard":     true,
	"repro/internal/core":      true,
}

var Analyzer = &analysis.Analyzer{
	Name: "singlewriter",
	Doc: "xmldb.DB is mutated only by integration lanes and feedback apply paths\n\n" +
		"Each shard's DB has a single writer; mutating it from serving, QA\n" +
		"or command code bypasses the lane ordering that keeps concurrent\n" +
		"integration linearizable.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	if writers[pass.Path] {
		return nil, nil
	}
	inspect.Of(pass).Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok {
			return // package-qualified call, not a method
		}
		pkgPath, typeName, ok := analysis.NamedType(selection.Recv())
		if !ok || pkgPath != xmldbPath {
			return
		}
		if (typeName != "DB" && typeName != "Tx") || !mutators[sel.Sel.Name] {
			return
		}
		pass.Reportf(call.Pos(),
			"direct xmldb.%s.%s from %s — store writes belong to integration lanes and feedback apply paths (see docs/INVARIANTS.md)",
			typeName, sel.Sel.Name, pass.Path)
	})
	return nil, nil
}
