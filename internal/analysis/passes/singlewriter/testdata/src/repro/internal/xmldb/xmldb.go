// Package xmldb is a stub of the store for analyzer tests: the method
// set matters, the signatures do not.
package xmldb

// DB is the stub store.
type DB struct{}

// Tx is the stub batch transaction.
type Tx struct{}

func New() *DB { return &DB{} }

func (db *DB) Insert(collection string) error           { return nil }
func (db *DB) Update(collection string, id int64) error { return nil }
func (db *DB) Delete(collection string, id int64) error { return nil }
func (db *DB) Batch(fn func(*Tx) error) error           { return fn(&Tx{}) }
func (db *DB) Restore() error                           { return nil }
func (db *DB) SetIDSequence(start, stride int64) error  { return nil }
func (db *DB) Get(collection string, id int64) bool     { return false }
func (db *DB) Len(collection string) int                { return 0 }

func (tx *Tx) Insert(collection string) error { return nil }
func (tx *Tx) Get(collection string) bool     { return false }
