// Package server must not touch the store directly.
package server

import "repro/internal/xmldb"

func handle(db *xmldb.DB) error {
	if db.Get("poi", 1) { // reads are fine from anywhere
		return nil
	}
	db.Insert("poi")                           // want `direct xmldb\.DB\.Insert from repro/internal/server`
	return db.Batch(func(tx *xmldb.Tx) error { // want `direct xmldb\.DB\.Batch from repro/internal/server`
		return tx.Insert("poi") // want `direct xmldb\.Tx\.Insert from repro/internal/server`
	})
}

func restoreShim(db *xmldb.DB) {
	//lint:ignore singlewriter boot-time restore shim exercised by the driver test
	db.Restore()
}

func reseed(db *xmldb.DB) {
	db.SetIDSequence(1, 4) // want `direct xmldb\.DB\.SetIDSequence from repro/internal/server`
}
