// Package integrate owns a write path: mutations are legal here.
package integrate

import "repro/internal/xmldb"

func merge(db *xmldb.DB) error {
	if err := db.Insert("poi"); err != nil {
		return err
	}
	return db.Update("poi", 1)
}
