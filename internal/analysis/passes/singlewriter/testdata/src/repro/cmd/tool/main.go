// Command tool must go through the facade, not the store.
package main

import "repro/internal/xmldb"

func main() {
	db := xmldb.New()
	db.Delete("poi", 1) // want `direct xmldb\.DB\.Delete from repro/cmd/tool`
	_ = db.Len("poi")
}
