package singlewriter_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/singlewriter"
)

func Test(t *testing.T) {
	analysistest.Run(t, "testdata", singlewriter.Analyzer,
		"repro/internal/server",
		"repro/internal/integrate",
		"repro/cmd/tool",
	)
}
