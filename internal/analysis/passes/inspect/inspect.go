// Package inspect provides the shared single-walk AST index as an
// analyzer result. Every traversal-based analyzer declares
//
//	Requires: []*analysis.Analyzer{inspect.Analyzer}
//
// and filters the prebuilt event list via Pass.ResultOf instead of
// calling ast.Inspect itself, so a run of N analyzers walks each
// package's syntax once, not N times.
package inspect

import (
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/analysis/inspector"
)

// Walks counts how many package traversals the pass has performed
// across the process. It exists for the driver test that pins the
// single-traversal property: K analyzers requiring inspect over P
// packages must advance it by exactly P.
var Walks atomic.Int64

// Analyzer builds the package's inspector.Inspector. It reports
// nothing; its value is the result.
var Analyzer = &analysis.Analyzer{
	Name: "inspect",
	Doc:  "build the shared single-walk AST index consumed by other analyzers",
	Run: func(pass *analysis.Pass) (any, error) {
		Walks.Add(1)
		return inspector.New(pass.Files), nil
	},
}

// Of extracts the prebuilt inspector from a dependent pass.
func Of(pass *analysis.Pass) *inspector.Inspector {
	in, _ := pass.ResultOf[Analyzer].(*inspector.Inspector)
	return in
}
