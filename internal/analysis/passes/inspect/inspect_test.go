package inspect_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/inspect"
)

// TestSingleTraversalPerPackage pins the point of the shared inspect
// pass: K analyzers requiring it across P packages perform exactly P
// walks, not K×P.
func TestSingleTraversalPerPackage(t *testing.T) {
	root := t.TempDir()
	files := map[string]string{
		"p/p.go": "package p\nfunc f() { g() }\nfunc g() {}\n",
		"q/q.go": "package q\nfunc h() int { return 1 + 2 }\n",
		"r/r.go": "package r\nvar V = []int{1, 2, 3}\n",
	}
	for name, src := range files {
		path := filepath.Join(root, "src", filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := analysis.LoadTree(root, "p", "q", "r")
	if err != nil {
		t.Fatal(err)
	}

	// Three independent analyzers, all traversal-based, all sharing the
	// one prebuilt index. Each also checks the index actually sees the
	// package's nodes.
	counts := make([]int, 3)
	mk := func(i int, nodes []ast.Node) *analysis.Analyzer {
		return &analysis.Analyzer{
			Name:     "walker" + string(rune('a'+i)),
			Requires: []*analysis.Analyzer{inspect.Analyzer},
			Run: func(pass *analysis.Pass) (any, error) {
				inspect.Of(pass).Preorder(nodes, func(ast.Node) { counts[i]++ })
				return nil, nil
			},
		}
	}
	analyzers := []*analysis.Analyzer{
		mk(0, []ast.Node{(*ast.FuncDecl)(nil)}),
		mk(1, []ast.Node{(*ast.CallExpr)(nil), (*ast.BasicLit)(nil)}),
		mk(2, nil), // unfiltered
	}

	before := inspect.Walks.Load()
	if _, err := analysis.RunPackages(pkgs, analyzers); err != nil {
		t.Fatal(err)
	}
	walks := inspect.Walks.Load() - before

	if want := int64(len(pkgs)); walks != want {
		t.Fatalf("want exactly %d traversals (one per package) for %d analyzers, got %d",
			want, len(analyzers), walks)
	}
	if counts[0] != 3 { // f, g, h
		t.Fatalf("FuncDecl filter saw %d decls, want 3", counts[0])
	}
	if counts[1] == 0 || counts[2] == 0 {
		t.Fatalf("filtered/unfiltered iterations saw nothing: %v", counts)
	}
}

// TestWithStackSkipsSubtree pins the prune contract golden analyzers
// rely on: returning false from a push visit skips the node's subtree.
func TestWithStackSkipsSubtree(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "src", "s", "s.go")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package s\nfunc outer() {\n\tf := func() { inner() }\n\tf()\n}\nfunc inner() {}\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.LoadTree(root, "s")
	if err != nil {
		t.Fatal(err)
	}

	var calls int
	a := &analysis.Analyzer{
		Name:     "pruner",
		Requires: []*analysis.Analyzer{inspect.Analyzer},
		Run: func(pass *analysis.Pass) (any, error) {
			in := inspect.Of(pass)
			in.WithStack([]ast.Node{(*ast.FuncLit)(nil), (*ast.CallExpr)(nil)},
				func(n ast.Node, push bool, stack []ast.Node) bool {
					if !push {
						return true
					}
					if _, isLit := n.(*ast.FuncLit); isLit {
						return false // skip the literal's body
					}
					calls++
					return true
				})
			return nil, nil
		},
	}
	if _, err := analysis.RunPackages(pkgs, []*analysis.Analyzer{a}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 { // only f(), not inner() inside the pruned literal
		t.Fatalf("want 1 call outside the pruned func literal, got %d", calls)
	}
}
