// Package versionbump pins the store's cache-invalidation spine: every
// locked mutation of xmldb state — the collections map, a collection's
// records/order, the spatial index — must be followed by a
// db.version.Add bump before the write lock is released. The version
// counter is what the read path's answer cache and standing queries
// key their invalidation on (docs/INVARIANTS.md); a mutation path that
// reaches unlock without bumping serves stale answers forever. The PR 8
// decay path shipped with exactly this bug.
//
// The analyzer works on the lockspan statement-order layer plus
// per-function facts, so the common project shape — an exported
// locking wrapper delegating to an unexported *Locked helper — is
// analyzed across the call:
//
//   - Each function gets a summary fact: does it mutate tracked state,
//     does it bump, and can it end with a mutation still unbumped
//     ("pending"). Facts flow across packages, so shard code calling
//     into xmldb is checked against xmldb's real summaries.
//   - Inside a function that bumps directly, any return reached while a
//     mutation is pending is flagged (the insertLocked/updateLocked
//     error-path shape).
//   - Inside a write-lock region, a return or region end reached while
//     a mutation is pending — directly or via a callee whose fact says
//     it ends pending — is flagged (the DB.Update-over-updateLocked
//     shape; reverting the decay fix reproduces this finding).
//   - Any tracked mutation under a read lock is flagged outright.
//
// The statement model is lexical (union over branches, in source
// order), matching lockspan; see that package for the approximations.
package versionbump

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/inspect"
	"repro/internal/analysis/passes/lockspan"
)

// checked are the packages whose state carries the version invariant.
// Golden testdata mirrors these import paths.
var checked = map[string]bool{
	"repro/internal/xmldb": true,
	"repro/internal/shard": true,
}

// trackedFields are the struct fields whose mutation must be covered by
// a version bump before unlock.
var trackedFields = map[string]bool{
	"collections": true,
	"records":     true,
	"order":       true,
	"spatial":     true,
}

// spatialMutators are the mutating methods of the spatial index field;
// its query methods are reads and legal under RLock.
var spatialMutators = map[string]bool{
	"Insert": true,
	"Delete": true,
}

// MutFact is the exported per-function summary.
type MutFact struct {
	// Mutates: the function (transitively) mutates tracked state.
	Mutates bool
	// Bumps: the function (transitively) bumps the version counter.
	Bumps bool
	// EndsPending: some path through the function ends with a mutation
	// not yet covered by a bump — the caller owns the bump.
	EndsPending bool
}

func (*MutFact) AFact()           {}
func (*MutFact) FactName() string { return "versionbump.MutFact" }

var Analyzer = &analysis.Analyzer{
	Name: "versionbump",
	Doc: "every locked xmldb/shard mutation path bumps the shard version before unlock\n\n" +
		"The version counter is the read path's only invalidation signal;\n" +
		"a mutation that escapes the write lock without bumping it makes\n" +
		"cached answers permanently stale.",
	Requires:  []*analysis.Analyzer{inspect.Analyzer, lockspan.Analyzer},
	FactTypes: []analysis.Fact{(*MutFact)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (any, error) {
	if !checked[pass.Path] {
		return nil, nil
	}
	ck := &checker{
		pass:  pass,
		local: make(map[*types.Func]*funcInfo),
	}
	var decls []*ast.FuncDecl
	inspect.Of(pass).Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		if d := n.(*ast.FuncDecl); d.Body != nil {
			decls = append(decls, d)
		}
	})

	// Fixpoint over the in-package call graph: summaries feed call
	// effects, which feed summaries. The graph is acyclic in practice;
	// the cap only guards against pathological recursion.
	for round := 0; round <= len(decls)+1; round++ {
		changed := false
		for _, d := range decls {
			fn, _ := pass.TypesInfo.Defs[d.Name].(*types.Func)
			if fn == nil {
				continue
			}
			next := ck.summarize(d)
			if prev, ok := ck.local[fn]; !ok || *prev != *next {
				ck.local[fn] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for fn, info := range ck.local {
		if info.fact.Mutates || info.fact.Bumps {
			f := info.fact
			pass.ExportFact(fn, &f)
		}
	}

	// Reporting passes, with the final facts in hand.
	ck.report = true
	for _, d := range decls {
		ck.checkFunc(d)
	}
	for _, r := range lockspan.Of(pass).Regions {
		ck.checkRegion(r)
	}
	return nil, nil
}

// funcInfo is the per-function summary plus the intra-function detail
// the reporting passes need.
type funcInfo struct {
	fact       MutFact
	directBump bool
}

type checker struct {
	pass   *analysis.Pass
	local  map[*types.Func]*funcInfo
	report bool

	// cur accumulates during one summarize/check walk.
	cur *funcInfo
}

// summarize computes one function's summary without reporting.
func (ck *checker) summarize(d *ast.FuncDecl) *funcInfo {
	report := ck.report
	ck.report = false
	ck.cur = &funcInfo{}
	ck.cur.fact.EndsPending = ck.scan(d.Body.List, false)
	ck.report = report
	return ck.cur
}

// checkFunc flags returns-while-pending inside functions that own a
// direct bump (the *Locked helper shape).
func (ck *checker) checkFunc(d *ast.FuncDecl) {
	fn, _ := ck.pass.TypesInfo.Defs[d.Name].(*types.Func)
	info := ck.local[fn]
	if info == nil || !info.directBump {
		return
	}
	ck.cur = &funcInfo{directBump: true}
	ck.scan(d.Body.List, false)
}

// checkRegion flags pending mutations that escape a write-lock region,
// and any tracked mutation under a read lock.
func (ck *checker) checkRegion(r *lockspan.Region) {
	if r.Lock.Read {
		ck.cur = &funcInfo{}
		for _, st := range r.Stmts {
			ck.eachEvent(st, func(ev event, n ast.Node) {
				if ev == evMutate {
					ck.pass.Reportf(n.Pos(), "mutation of tracked store state under read lock %s", r.Lock.Expr)
				}
			})
		}
		return
	}
	ck.cur = &funcInfo{}
	pending := false
	flagged := false
	for _, st := range r.Stmts {
		pending = ck.leafEvents(st, pending)
		if ret, ok := st.(*ast.ReturnStmt); ok && pending {
			ck.pass.Reportf(ret.Pos(), "return leaves locked region %s with a mutation not covered by a version bump", r.Lock.Expr)
			flagged = true
			pending = false // one finding per escape path
		}
	}
	if pending && !flagged {
		ck.pass.Reportf(r.LockPos, "locked region %s mutates store state with no version bump before unlock", r.Lock.Expr)
	}
}

// scan walks a statement list in source order, threading the pending
// flag (an unbumped mutation) through; branches are scanned with a copy
// and may-merge back.
func (ck *checker) scan(stmts []ast.Stmt, pending bool) bool {
	for _, st := range stmts {
		pending = ck.stmt(st, pending)
	}
	return pending
}

func (ck *checker) branch(stmts []ast.Stmt, pending bool) bool {
	bp := ck.scan(stmts, pending) // always scan: events and reports inside matter
	return pending || bp
}

func (ck *checker) stmt(st ast.Stmt, pending bool) bool {
	switch st := st.(type) {
	case *ast.BlockStmt:
		return ck.scan(st.List, pending)
	case *ast.LabeledStmt:
		return ck.stmt(st.Stmt, pending)
	case *ast.IfStmt:
		if st.Init != nil {
			pending = ck.stmt(st.Init, pending)
		}
		pending = ck.leafEvents(&ast.ExprStmt{X: st.Cond}, pending)
		pending = ck.branch(st.Body.List, pending)
		if st.Else != nil {
			pending = ck.branch([]ast.Stmt{st.Else}, pending)
		}
		return pending
	case *ast.ForStmt:
		if st.Init != nil {
			pending = ck.stmt(st.Init, pending)
		}
		if st.Cond != nil {
			pending = ck.leafEvents(&ast.ExprStmt{X: st.Cond}, pending)
		}
		body := st.Body.List
		if st.Post != nil {
			body = append(append([]ast.Stmt{}, body...), st.Post)
		}
		return ck.branch(body, pending)
	case *ast.RangeStmt:
		pending = ck.leafEvents(&ast.ExprStmt{X: st.X}, pending)
		return ck.branch(st.Body.List, pending)
	case *ast.SwitchStmt:
		if st.Init != nil {
			pending = ck.stmt(st.Init, pending)
		}
		if st.Tag != nil {
			pending = ck.leafEvents(&ast.ExprStmt{X: st.Tag}, pending)
		}
		for _, c := range st.Body.List {
			pending = ck.branch(c.(*ast.CaseClause).Body, pending)
		}
		return pending
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			pending = ck.stmt(st.Init, pending)
		}
		pending = ck.leafEvents(st.Assign, pending)
		for _, c := range st.Body.List {
			pending = ck.branch(c.(*ast.CaseClause).Body, pending)
		}
		return pending
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				pending = ck.leafEvents(cc.Comm, pending)
			}
			pending = ck.branch(cc.Body, pending)
		}
		return pending
	case *ast.GoStmt, *ast.DeferStmt:
		return pending // runs off the current path
	case *ast.ReturnStmt:
		pending = ck.leafEvents(st, pending)
		if ck.report && pending && ck.cur.directBump {
			ck.pass.Reportf(st.Pos(), "return after a tracked mutation with no version bump on this path")
			pending = false // one finding per escape path
		}
		return pending
	default:
		return ck.leafEvents(st, pending)
	}
}

type event int

const (
	evMutate event = iota
	evBump
)

// leafEvents applies one leaf statement's mutation/bump/call events to
// the pending flag, in source order.
func (ck *checker) leafEvents(st ast.Stmt, pending bool) bool {
	ck.eachEvent(st, func(ev event, n ast.Node) {
		switch ev {
		case evMutate:
			pending = true
			ck.cur.fact.Mutates = true
		case evBump:
			pending = false
			ck.cur.fact.Bumps = true
		}
	})
	return pending
}

// eachEvent walks one leaf statement (func literals excluded — they do
// not run here) and emits its events.
func (ck *checker) eachEvent(st ast.Stmt, emit func(event, ast.Node)) {
	ast.Inspect(st, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ck.trackedField(lhs) != "" {
					emit(evMutate, lhs)
				}
			}
		case *ast.IncDecStmt:
			if ck.trackedField(n.X) != "" {
				emit(evMutate, n.X)
			}
		case *ast.CallExpr:
			ck.callEvents(n, emit)
		}
		return true
	})
}

// callEvents classifies one call: version bump, builtin delete of a
// tracked map, spatial-index mutator, or a call whose callee has a
// summary fact.
func (ck *checker) callEvents(call *ast.CallExpr, emit func(event, ast.Node)) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Add" && ck.fieldNamed(sel.X, "version") {
			emit(evBump, call)
			ck.cur.directBump = true
			return
		}
		if spatialMutators[sel.Sel.Name] && ck.fieldNamed(sel.X, "spatial") {
			emit(evMutate, call)
			return
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" {
		if _, isBuiltin := ck.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			if ck.trackedField(call.Args[0]) != "" {
				emit(evMutate, call)
			}
			return
		}
	}
	fn := analysis.CalleeFunc(ck.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	var f MutFact
	if info, ok := ck.local[fn]; ok {
		f = info.fact
	} else if !ck.pass.ImportFact(fn, &f) {
		return
	}
	if f.Mutates {
		ck.cur.fact.Mutates = true
	}
	if f.Bumps {
		ck.cur.fact.Bumps = true
	}
	if f.EndsPending {
		emit(evMutate, call)
	} else if f.Bumps {
		emit(evBump, call)
	}
}

// trackedField resolves expr (through index/star/parens) to a tracked
// struct field selection of a checked-package type, returning the field
// name or "".
func (ck *checker) trackedField(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			sel, ok := ck.pass.TypesInfo.Selections[e]
			if !ok || sel.Kind() != types.FieldVal || !trackedFields[sel.Obj().Name()] {
				return ""
			}
			if pkgPath, _, ok := analysis.NamedType(sel.Recv()); ok && checked[pkgPath] {
				return sel.Obj().Name()
			}
			return ""
		default:
			return ""
		}
	}
}

// fieldNamed reports whether expr selects the named struct field of a
// checked-package type.
func (ck *checker) fieldNamed(expr ast.Expr, name string) bool {
	e, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	sel, ok := ck.pass.TypesInfo.Selections[e]
	if !ok || sel.Kind() != types.FieldVal || sel.Obj().Name() != name {
		return false
	}
	pkgPath, _, ok := analysis.NamedType(sel.Recv())
	return ok && checked[pkgPath]
}
