// Golden testdata for versionbump's cross-package facts: shard code
// holding its own lock while calling into xmldb is checked against the
// summaries exported when xmldb was analyzed.
package shard

import (
	"sync"

	"repro/internal/xmldb"
)

type Store struct {
	mu sync.Mutex
	db *xmldb.DB
}

// Apply goes through the bumping mutator: the imported fact says the
// call ends bumped, so the region is clean.
func (s *Store) Apply(name string, id int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Insert(name, id)
}

// Purge calls the non-bumping mutator and releases the lock: the
// imported fact says the mutation is still pending at unlock.
func (s *Store) Purge(name string) {
	s.mu.Lock() // want `locked region s\.mu mutates store state with no version bump before unlock`
	s.db.UnsafeClear(name)
	s.mu.Unlock()
}
