// Golden testdata for versionbump: a miniature of the real xmldb
// surface. Field names (collections/records/order/spatial/version) and
// the wrapper-over-*Locked-helper shape mirror the production package.
package xmldb

import (
	"errors"
	"sync"
	"sync/atomic"
)

type Index struct{}

func (ix *Index) Insert(id int64) error { return nil }
func (ix *Index) Delete(id int64)       {}
func (ix *Index) Within(id int64) bool  { return false }

type Collection struct {
	records map[int64]int
	order   []int64
	spatial *Index
}

type DB struct {
	mu          sync.RWMutex
	collections map[string]*Collection
	version     atomic.Int64
}

var errBoom = errors.New("boom")

// Insert is the canonical clean shape: wrapper locks, helper mutates
// and bumps on every path that changed state.
func (db *DB) Insert(name string, id int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.insertLocked(name, id)
}

func (db *DB) insertLocked(name string, id int64) error {
	c, ok := db.collections[name]
	if !ok {
		return errBoom // nothing mutated yet: clean early return
	}
	c.records[id] = 1
	c.order = append(c.order, id)
	if err := c.spatial.Insert(id); err != nil {
		db.version.Add(1) // records/order already changed: bump on the error path too
		return err
	}
	db.version.Add(1)
	return nil
}

// Len reads under RLock; reads need no bump.
func (db *DB) Len(name string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.collections[name]
	if !ok {
		return 0
	}
	return len(c.records)
}

// Near uses the spatial index's query method under RLock: only
// Insert/Delete on the index count as mutations.
func (db *DB) Near(name string, id int64) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.collections[name]
	if !ok {
		return false
	}
	return c.spatial.Within(id)
}

// updateLocked reproduces the spatial error-path bug: the index is
// mutated by Delete, then the Insert failure path returns without the
// bump the happy path gets.
func (db *DB) updateLocked(name string, id int64) error {
	c, ok := db.collections[name]
	if !ok {
		return errBoom
	}
	c.spatial.Delete(id)
	if err := c.spatial.Insert(id); err != nil {
		return err // want `return after a tracked mutation with no version bump on this path`
	}
	c.records[id] = 2
	db.version.Add(1)
	return nil
}

// deleteAllLocked legitimately leaves the bump to its callers (the
// *Locked contract): no finding here, but its fact says it ends with a
// pending mutation.
func (db *DB) deleteAllLocked(name string) error {
	delete(db.collections, name)
	return nil
}

// Update reproduces the reverted-decay-bump shape: the locked region
// delegates to a helper that ends pending and never bumps.
func (db *DB) Update(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.deleteAllLocked(name) // want `return leaves locked region db\.mu with a mutation not covered by a version bump`
}

// Touch mutates under a read lock.
func (db *DB) Touch(name string) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.collections[name] = nil // want `mutation of tracked store state under read lock db\.mu`
}

// Clear mutates in a write region with no bump anywhere.
func (db *DB) Clear(name string) {
	db.mu.Lock() // want `locked region db\.mu mutates store state with no version bump before unlock`
	db.collections[name] = nil
	db.mu.Unlock()
}

// UnsafeClear is exported without a bump so the shard testdata can
// check cross-package fact flow; within this package the bump is its
// callers' responsibility, so no finding here.
func (db *DB) UnsafeClear(name string) {
	delete(db.collections, name)
}
