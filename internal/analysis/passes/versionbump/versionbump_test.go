package versionbump_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/versionbump"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", versionbump.Analyzer,
		"repro/internal/xmldb", "repro/internal/shard")
}
