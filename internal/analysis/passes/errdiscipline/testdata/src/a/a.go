// Package a exercises the three errdiscipline rules.
package a

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

var errSentinel = errors.New("sentinel")

func fallible() error { return nil }

// --- discarded error returns ---

func discards(f *os.File, w *bufio.Writer) {
	fallible()     // want `a\.fallible returns an error that is discarded`
	f.Close()      // want `\(\*os\.File\)\.Close returns an error that is discarded`
	w.Flush()      // want `\(\*bufio\.Writer\)\.Flush returns an error that is discarded`
	_ = fallible() // explicit discard: visible, greppable, allowed
	fmt.Println("diagnostic output is exempt")
}

func deferred(f *os.File) {
	defer f.Close() // defers are conventional cleanup
}

func errorPathCleanup(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteString("x"); err != nil {
		f.Close()       // best-effort compensation while already failing
		os.Remove(path) // same
		return err
	}
	return f.Close()
}

func closureCompensation(path string) {
	fail := func(err error) {
		os.Remove(path) // closure received the error: still a failure path
		_ = err
	}
	fail(nil)
}

func infallibleBuffers(b *bytes.Buffer, sb *strings.Builder) {
	b.WriteString("never fails")
	sb.WriteString("never fails")
}

// --- matching on rendered error text ---

func textMatch(err error) bool {
	if strings.Contains(err.Error(), "not found") { // want `matching on rendered error text via strings\.Contains`
		return true
	}
	if err.Error() == "boom" { // want `comparing rendered error text`
		return true
	}
	return errors.Is(err, errSentinel) // identity matching is the point
}

// --- fmt.Errorf without %w ---

func wrap(err error) error {
	return fmt.Errorf("loading config: %w", err)
}

func flatten(err error) error {
	return fmt.Errorf("loading config: %v", err) // want `fmt\.Errorf formats an error without %w`
}

func noErrorArgs(n int) error {
	return fmt.Errorf("count %d out of range", n)
}
