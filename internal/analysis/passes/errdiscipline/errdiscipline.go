// Package errdiscipline pins how errors cross package boundaries:
//
//   - A discarded error return is a swallowed failure. Statement-level
//     calls whose error result is ignored are flagged, with one
//     carve-out: best-effort cleanup (Close / os.Remove) while the
//     surrounding code is already failing — compensation on an error
//     path cannot improve on the error already in flight. Explicit
//     `_ =` discards are visible and greppable, so they pass (pair
//     them with a comment saying why).
//   - Errors must be matched by identity (errors.Is / errors.As /
//     sentinels), never by their rendered text: string-matching breaks
//     the moment a message is reworded and couples callers to wording
//     that is explicitly not API.
//   - fmt.Errorf that formats an underlying error without %w erases
//     the chain — callers can no longer errors.Is/As through the
//     boundary. Flatten deliberately only with a lint:ignore and a
//     reason.
package errdiscipline

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/inspect"
)

var Analyzer = &analysis.Analyzer{
	Name: "errdiscipline",
	Doc: "errors are handled, matched by identity, and wrapped with %w\n\n" +
		"Flags discarded error returns (outside error-path cleanup),\n" +
		"string-matching on rendered error text, and fmt.Errorf calls\n" +
		"that format an error without %w.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// stringMatchers are the functions whose use on rendered error text is
// a boundary violation.
var stringMatchers = map[string]bool{
	"strings.Contains":  true,
	"strings.HasPrefix": true,
	"strings.HasSuffix": true,
	"strings.EqualFold": true,
	"strings.Index":     true,
}

func run(pass *analysis.Pass) (any, error) {
	nodeTypes := []ast.Node{(*ast.ExprStmt)(nil), (*ast.CallExpr)(nil), (*ast.BinaryExpr)(nil)}
	inspect.Of(pass).WithStack(nodeTypes, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		switch n := n.(type) {
		case *ast.ExprStmt:
			checkDiscard(pass, n, stack)
		case *ast.CallExpr:
			checkTextMatch(pass, n)
			checkErrorf(pass, n)
		case *ast.BinaryExpr:
			checkTextCompare(pass, n)
		}
		return true
	})
	return nil, nil
}

// checkDiscard flags statement-level calls whose error result vanishes.
func checkDiscard(pass *analysis.Pass, stmt *ast.ExprStmt, stack []ast.Node) {
	call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
	if !ok || !analysis.ReturnsError(pass.TypesInfo, call) {
		return
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return // dynamic call: the function value's provenance decides, not us
	}
	if isPrint(fn) || isInfallibleBuffer(fn) {
		return
	}
	if isCleanup(fn) && onErrorPath(pass.TypesInfo, stack) {
		return
	}
	pass.Reportf(stmt.Pos(), "%s returns an error that is discarded — handle it, or assign to _ with a comment saying why it cannot matter", fn.FullName())
}

// isCleanup reports whether fn is a best-effort compensation call.
func isCleanup(fn *types.Func) bool {
	return fn.Name() == "Close" || fn.FullName() == "os.Remove"
}

// isPrint exempts fmt's print family: formatted output is
// overwhelmingly diagnostic, and a failing report writer duplicates
// whatever failure it was reporting. The buffered/filed classes that
// actually lose data — Flush, Sync, Close, Append — stay flagged.
func isPrint(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	name := fn.Name()
	return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")
}

// isInfallibleBuffer exempts writers whose errors are documented to
// always be nil.
func isInfallibleBuffer(fn *types.Func) bool {
	recv := fn.Signature().Recv()
	if recv == nil {
		return false
	}
	pkgPath, name, ok := analysis.NamedType(recv.Type())
	if !ok {
		return false
	}
	return (pkgPath == "bytes" && name == "Buffer") || (pkgPath == "strings" && name == "Builder")
}

// onErrorPath reports whether the statement sits in code that is
// already failing: inside an if whose condition involves an error
// value, or inside a function (closure) that received an error
// parameter.
func onErrorPath(info *types.Info, stack []ast.Node) bool {
	for _, n := range stack {
		switch n := n.(type) {
		case *ast.IfStmt:
			if exprMentionsError(info, n.Cond) {
				return true
			}
		case *ast.FuncLit:
			if signatureHasErrorParam(info, n.Type) {
				return true
			}
		}
	}
	return false
}

// exprMentionsError reports whether any identifier in e has type error.
func exprMentionsError(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if obj := info.Uses[id]; obj != nil && analysis.IsErrorType(obj.Type()) {
			found = true
		}
		return !found
	})
	return found
}

// signatureHasErrorParam reports whether the function type declares an
// error-typed parameter.
func signatureHasErrorParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := info.Types[field.Type]; ok && analysis.IsErrorType(tv.Type) {
			return true
		}
	}
	return false
}

// checkTextMatch flags strings.Contains / HasPrefix / ... applied to
// rendered error text.
func checkTextMatch(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || !stringMatchers[fn.FullName()] {
		return
	}
	for _, arg := range call.Args {
		if isErrorText(pass.TypesInfo, arg) {
			pass.Reportf(call.Pos(), "matching on rendered error text via %s — use errors.Is/errors.As against a sentinel instead", fn.FullName())
			return
		}
	}
}

// checkTextCompare flags err.Error() == "..." style comparisons.
func checkTextCompare(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op.String() != "==" && b.Op.String() != "!=" {
		return
	}
	if isErrorText(pass.TypesInfo, b.X) || isErrorText(pass.TypesInfo, b.Y) {
		pass.Reportf(b.Pos(), "comparing rendered error text — use errors.Is/errors.As against a sentinel instead")
	}
}

// isErrorText reports whether e is a call to the Error() string method
// of an error value.
func isErrorText(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	if tv, ok := info.Types[sel.X]; ok && analysis.IsErrorType(tv.Type) {
		return true
	}
	return false
}

// checkErrorf flags fmt.Errorf formatting an error without %w.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if !analysis.IsFunc(pass.TypesInfo, call, "fmt.Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // non-constant format: nothing to prove
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && analysis.IsErrorType(tv.Type) {
			pass.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w — callers cannot errors.Is/As through this boundary")
			return
		}
	}
}
