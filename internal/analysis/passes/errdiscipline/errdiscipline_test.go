package errdiscipline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/errdiscipline"
)

func Test(t *testing.T) {
	analysistest.Run(t, "testdata", errdiscipline.Analyzer, "a")
}
