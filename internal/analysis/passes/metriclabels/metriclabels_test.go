package metriclabels_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/metriclabels"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", metriclabels.Analyzer,
		"repro/internal/obs", "repro/internal/server")
}
