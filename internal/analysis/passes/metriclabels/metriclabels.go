// Package metriclabels prevents cardinality bombs in the obs metrics:
// every label value passed to a metric family's With(...) must come
// from a bounded set — a string literal, a constant, a concatenation of
// bounded parts, a small-int formatter, or a normalizer function (by
// convention named *Label) that collapses request data onto a fixed
// vocabulary. Passing raw request data (r.URL.Path, r.Method, an error
// string) mints a new time series per distinct value, growing the
// registry without bound and flattening scrape performance.
//
// A local variable is accepted when it has exactly one assignment in
// the outermost enclosing function — closures that capture it
// included — and that right-hand side is itself bounded: the
// `route := s.routeLabel(path)` shape, also when the With call sits in
// a deferred closure that observes at function exit.
//
// Span names are labels too: the flight recorder groups and displays
// timelines by span name, so the name argument of obs.StartSpan /
// obs.ForceSpan must be bounded the same way. Request data belongs in
// span attributes (SetAttr/SetInt), never in the name.
package metriclabels

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/inspect"
)

// obsPath is the metrics package whose With methods are guarded.
const obsPath = "repro/internal/obs"

// formatters are std formatting calls that keep int-derived labels
// bounded in practice (status classes, shard indices).
var formatters = map[string]bool{
	"strconv.Itoa":       true,
	"strconv.FormatInt":  true,
	"strconv.FormatUint": true,
}

// spanStarters are the obs package-level functions whose name argument
// (position 1, after ctx) names a span and must stay bounded.
var spanStarters = map[string]bool{
	obsPath + ".StartSpan": true,
	obsPath + ".ForceSpan": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "metriclabels",
	Doc: "obs metric label values and span names come from bounded sets\n\n" +
		"A label minted from raw request data creates a time series per\n" +
		"distinct value; the registry and every scrape grow without bound.\n" +
		"Span names group the flight recorder's timelines the same way, so\n" +
		"StartSpan/ForceSpan names must be bounded too — variable data\n" +
		"rides in span attributes.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Path == obsPath {
		return nil, nil // the family implementation handles raw values by design
	}
	inspect.Of(pass).WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		if isSpanStarter(pass.TypesInfo, call) {
			if len(call.Args) >= 2 && !bounded(pass.TypesInfo, call.Args[1], enclosingBody(stack)) {
				pass.Reportf(call.Args[1].Pos(),
					"span name is not from a bounded set — name spans with constants and put variable data in attributes")
			}
			return true
		}
		if !isObsWith(pass.TypesInfo, call) {
			return true
		}
		for _, arg := range call.Args {
			if !bounded(pass.TypesInfo, arg, enclosingBody(stack)) {
				pass.Reportf(arg.Pos(),
					"metric label value is not from a bounded set — use a literal, a constant, or a *Label normalizer")
			}
		}
		return true
	})
	return nil, nil
}

// isSpanStarter reports whether the call is obs.StartSpan or
// obs.ForceSpan.
func isSpanStarter(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	return fn != nil && spanStarters[fn.FullName()]
}

// isObsWith reports whether the call is a With method on an obs family
// type.
func isObsWith(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "With" {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	pkgPath, _, ok := analysis.NamedType(selection.Recv())
	return ok && pkgPath == obsPath
}

// enclosingBody returns the outermost function body on the stack. The
// outermost body contains every nested closure, so counting a label
// variable's assignments there covers both the declaring scope and any
// capturing closures — a variable bounded in the handler stays bounded
// inside its deferred observation closure, and a reassignment inside
// the closure still counts against it.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for _, n := range stack {
		switch fn := n.(type) {
		case *ast.FuncLit:
			return fn.Body
		case *ast.FuncDecl:
			return fn.Body
		}
	}
	return nil
}

// bounded reports whether the expression's value is drawn from a
// bounded set.
func bounded(info *types.Info, expr ast.Expr, body *ast.BlockStmt) bool {
	expr = ast.Unparen(expr)
	if tv, ok := info.Types[expr]; ok && tv.Value != nil {
		return true // constant, covers literals and const idents/selectors
	}
	switch e := expr.(type) {
	case *ast.BinaryExpr:
		return e.Op == token.ADD && bounded(info, e.X, body) && bounded(info, e.Y, body)
	case *ast.CallExpr:
		fn := analysis.CalleeFunc(info, e)
		if fn == nil {
			return false
		}
		return formatters[fn.FullName()] || strings.HasSuffix(fn.Name(), "Label")
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		if !ok || body == nil {
			return false
		}
		return singleBoundedAssignment(info, v, body)
	}
	return false
}

// singleBoundedAssignment accepts a local with exactly one assignment
// whose right-hand side is bounded. More than one assignment (or a
// range/parameter binding) means the value's provenance is not a single
// bounded expression, so it is rejected.
func singleBoundedAssignment(info *types.Info, v *types.Var, body *ast.BlockStmt) bool {
	var rhs ast.Expr
	count := 0
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != v {
					continue
				}
				count++
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
			}
		case *ast.RangeStmt:
			for _, lhs := range []ast.Expr{n.Key, n.Value} {
				if id, ok := lhs.(*ast.Ident); ok {
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj == v {
						count += 2 // range bindings are never a single bounded source
					}
				}
			}
		}
		return true
	})
	return count == 1 && rhs != nil && bounded(info, rhs, body)
}
