// Golden testdata for metriclabels: label values at obs With(...)
// call sites must come from bounded sets.
package server

import (
	"fmt"
	"strconv"

	"repro/internal/obs"
)

var (
	mRequests = obs.NewCounterFamily("http_requests_total", "route", "method", "class")
	mSeconds  = obs.NewHistogramFamily("http_seconds", nil, "route")
)

const areaLabel = "gazetteer"

type request struct {
	Method string
	Path   string
}

// routeLabel collapses arbitrary paths onto a fixed route vocabulary.
func routeLabel(path string) string {
	switch path {
	case "/query", "/feedback":
		return path
	}
	return "other"
}

// methodLabel collapses methods onto the handful the API serves.
func methodLabel(m string) string {
	switch m {
	case "GET", "POST":
		return m
	}
	return "other"
}

// GoodLiteral uses literals and constants.
func GoodLiteral() {
	mRequests.With("/query", "GET", "2xx").Inc()
	mSeconds.With(areaLabel).Observe(0.1)
}

// GoodNormalized routes raw request data through *Label normalizers
// and bounded formatters.
func GoodNormalized(r *request, code int) {
	route := routeLabel(r.Path)
	mRequests.With(route, methodLabel(r.Method), strconv.Itoa(code/100)+"xx").Inc()
	mSeconds.With(route).Observe(0.2)
}

// BadRawPath mints a series per distinct URL.
func BadRawPath(r *request) {
	mSeconds.With(r.Path).Observe(0.3) // want `metric label value is not from a bounded set`
}

// BadSprintf formats unbounded data into the label.
func BadSprintf(r *request, code int) {
	mRequests.With(
		"/query",
		fmt.Sprintf("%s:%s", r.Method, r.Path), // want `metric label value is not from a bounded set`
		strconv.Itoa(code),
	).Inc()
}

// BadReassigned: the local is overwritten with raw data after the
// normalizer, so its provenance is no longer a single bounded source.
func BadReassigned(r *request) {
	route := routeLabel(r.Path)
	if r.Path == "/debug" {
		route = r.Path
	}
	mSeconds.With(route).Observe(0.4) // want `metric label value is not from a bounded set`
}

// BadParam: a parameter arrives with unknown provenance.
func BadParam(label string) {
	mSeconds.With(label).Observe(0.5) // want `metric label value is not from a bounded set`
}

// GoodDeferredClosure: a bounded local stays bounded when the
// observation is deferred to function exit through a capturing
// closure — the ServeHTTP middleware shape.
func GoodDeferredClosure(r *request, code int) {
	route := routeLabel(r.Path)
	defer func() {
		mRequests.With(route, methodLabel(r.Method), strconv.Itoa(code/100)+"xx").Inc()
		mSeconds.With(route).Observe(0.6)
	}()
}

// BadClosureReassign: overwriting the captured local with raw data
// inside the closure breaks the single-bounded-source provenance.
func BadClosureReassign(r *request) {
	route := routeLabel(r.Path)
	defer func() {
		route = r.Path
		mSeconds.With(route).Observe(0.7) // want `metric label value is not from a bounded set`
	}()
}

// GoodConcat concatenates bounded parts.
func GoodConcat(code int) {
	mRequests.With("/query", "GET", strconv.Itoa(code/100)+"xx").Inc()
}

const spanAsk = "ask"

// GoodSpanConst names spans with constants; request data rides in
// attributes.
func GoodSpanConst(r *request) {
	_, sp := obs.StartSpan(nil, spanAsk)
	sp.SetAttr("path", r.Path)
	sp.End()
	_, fsp := obs.ForceSpan(nil, "ask_explain")
	fsp.End()
}

// GoodSpanLocal: a local with a single bounded assignment is fine.
func GoodSpanLocal() {
	name := spanAsk + "_retry"
	_, sp := obs.StartSpan(nil, name)
	sp.End()
}

// BadSpanRawPath mints a span name (and so a recorder grouping) per
// distinct URL.
func BadSpanRawPath(r *request) {
	_, sp := obs.StartSpan(nil, r.Path) // want `span name is not from a bounded set`
	sp.End()
}

// BadSpanSprintf formats unbounded data into the name.
func BadSpanSprintf(r *request) {
	_, sp := obs.ForceSpan(nil, fmt.Sprintf("ask:%s", r.Path)) // want `span name is not from a bounded set`
	sp.End()
}

// BadSpanParam: a parameter arrives with unknown provenance.
func BadSpanParam(name string) {
	_, sp := obs.StartSpan(nil, name) // want `span name is not from a bounded set`
	sp.End()
}
