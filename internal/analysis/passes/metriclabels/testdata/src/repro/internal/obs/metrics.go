// Mini obs metrics surface for the metriclabels golden tests: the
// import path matches production so the analyzer's package gating
// behaves identically.
package obs

type CounterFamily struct{ name string }

func (f *CounterFamily) With(values ...string) *Counter { return &Counter{} }

type Counter struct{ n int64 }

func (c *Counter) Inc() { c.n++ }

type HistogramFamily struct{ name string }

func (f *HistogramFamily) With(values ...string) *Histogram { return &Histogram{} }

type Histogram struct{ sum float64 }

func (h *Histogram) Observe(v float64) { h.sum += v }

func NewCounterFamily(name string, labels ...string) *CounterFamily {
	return &CounterFamily{name: name}
}

func NewHistogramFamily(name string, buckets []float64, labels ...string) *HistogramFamily {
	return &HistogramFamily{name: name}
}

// unrelated has a With method too, but lives in this package and takes
// no label values; the analyzer skips the obs package itself.
type plain struct{}

func (plain) With(values ...string) {}

var _ = plain{}

// Mini span surface: the analyzer guards the name argument (position
// 1) of these package-level starters.
type Span struct{ name string }

func (s *Span) SetAttr(key, value string) {}
func (s *Span) End()                      {}

type spanCtx any

func StartSpan(ctx spanCtx, name string) (spanCtx, *Span) { return ctx, &Span{name: name} }

func ForceSpan(ctx spanCtx, name string) (spanCtx, *Span) { return ctx, &Span{name: name} }
