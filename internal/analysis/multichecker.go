package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// RunPackages applies every analyzer (plus the closure of its Requires)
// to every package and returns the surviving diagnostics in position
// order. Facts are scoped to this one run; the vet driver, which must
// round-trip facts across cmd/go invocations, uses RunPackagesWithFacts.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunPackagesWithFacts(pkgs, analyzers, NewFactSet())
}

// RunPackagesWithFacts is RunPackages with a caller-owned fact store.
// The driver applies the project-wide policy:
//
//   - Requirements run before their dependents (cycles are an error,
//     not a hang), and their per-package results flow to dependents via
//     Pass.ResultOf. Only the originally requested analyzers report —
//     a shared requirement like lockspan never pollutes a run (or a
//     golden test) aimed at one analyzer.
//   - Packages are analyzed in import order, so facts exported while
//     analyzing a dependency are visible when its importers run.
//   - Diagnostics positioned in _test.go files are dropped — tests
//     exercise failure paths and fakes that deliberately break the
//     production invariants (vet-mode loads include test variants).
//   - Diagnostics matched by a justified //lint:ignore directive are
//     dropped. A directive without a justification is itself reported
//     under the pseudo-analyzer "lint", and so is a justified directive
//     that no longer suppresses anything — a stale suppression hides
//     the next real finding at that site, so the inventory must shrink
//     with the violations.
func RunPackagesWithFacts(pkgs []*Package, analyzers []*Analyzer, facts *FactSet) ([]Diagnostic, error) {
	order, err := expand(analyzers)
	if err != nil {
		return nil, err
	}
	requested := make(map[*Analyzer]bool, len(analyzers))
	runNames := make(map[string]bool, len(order))
	for _, a := range analyzers {
		requested[a] = true
	}
	for _, a := range order {
		runNames[a.Name] = true
	}

	var diags []Diagnostic
	for _, pkg := range sortPackages(pkgs) {
		dirs := parseDirectives(pkg.Fset, pkg.Files)
		used := make([]bool, len(dirs))
		for _, d := range dirs {
			if d.reason == "" {
				diags = append(diags, Diagnostic{
					Pos:      d.pos,
					Analyzer: "lint",
					Message:  "lint:ignore directive without a justification — state why the rule does not apply",
				})
			}
		}
		results := make(map[*Analyzer]any, len(order))
		for _, a := range order {
			pass := &Pass{
				Analyzer:  a,
				Path:      pkg.Path,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				ResultOf:  make(map[*Analyzer]any, len(a.Requires)),
				facts:     facts,
			}
			for _, req := range a.Requires {
				pass.ResultOf[req] = results[req]
			}
			var reported []Diagnostic
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a.Name
				reported = append(reported, d)
			}
			res, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			results[a] = res
			for _, d := range reported {
				p := pkg.Fset.Position(d.Pos)
				if strings.HasSuffix(p.Filename, "_test.go") {
					continue
				}
				suppressed := false
				for i := range dirs {
					if dirs[i].matches(a.Name, p.Filename, p.Line) {
						used[i] = true
						suppressed = true
						break
					}
				}
				if !suppressed && requested[a] {
					diags = append(diags, d)
				}
			}
		}
		for i, d := range dirs {
			if used[i] || d.reason == "" || !d.checkable(runNames) {
				continue
			}
			if strings.HasSuffix(d.file, "_test.go") {
				continue // test-file diagnostics are dropped, so usage is unknowable
			}
			diags = append(diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: "lint",
				Message:  "unused lint:ignore directive — no matching diagnostic at this site, remove it",
			})
		}
	}
	// Sort by file position, then analyzer, for stable output. All
	// packages share one FileSet per load, so positions are comparable
	// within a run; across loads the file name breaks ties first.
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := position(pkgs, diags[i].Pos), position(pkgs, diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// checkable reports whether this run can decide that the directive is
// unused: every analyzer it names must have run (a directive naming an
// analyzer outside the run may be load-bearing for a different tool
// invocation). A "*" directive is checkable against any run.
func (d *directive) checkable(runNames map[string]bool) bool {
	if d.analyzers == nil {
		return true
	}
	for name := range d.analyzers {
		if !runNames[name] {
			return false
		}
	}
	return true
}

// expand returns the requested analyzers plus the transitive closure of
// their Requires, deterministically ordered with every requirement
// before its dependents. A Requires cycle is reported as an error.
func expand(analyzers []*Analyzer) ([]*Analyzer, error) {
	const (
		white = iota // unvisited
		grey         // on the current DFS path
		black        // done
	)
	state := make(map[*Analyzer]int)
	var order []*Analyzer
	var path []string
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		switch state[a] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("analysis: requires cycle: %s -> %s", strings.Join(path, " -> "), a.Name)
		}
		state[a] = grey
		path = append(path, a.Name)
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		path = path[:len(path)-1]
		state[a] = black
		order = append(order, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// sortPackages orders packages so that every package follows the
// packages it imports (restricted to the in-run set): facts exported by
// a dependency's analysis are then in the store before any importer is
// analyzed. Input order breaks ties, so the result is deterministic for
// a deterministic load.
func sortPackages(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, pkg := range pkgs {
		byPath[pkg.Path] = pkg
	}
	done := make(map[*Package]bool, len(pkgs))
	out := make([]*Package, 0, len(pkgs))
	var visit func(pkg *Package)
	visit = func(pkg *Package) {
		if done[pkg] {
			return
		}
		done[pkg] = true // imports are acyclic (the compiler enforces it)
		if pkg.Types != nil {
			for _, imp := range pkg.Types.Imports() {
				if dep, ok := byPath[imp.Path()]; ok {
					visit(dep)
				}
			}
		}
		out = append(out, pkg)
	}
	for _, pkg := range pkgs {
		visit(pkg)
	}
	return out
}

// position resolves pos against whichever package's FileSet knows it.
func position(pkgs []*Package, pos token.Pos) token.Position {
	for _, pkg := range pkgs {
		if p := pkg.Fset.Position(pos); p.IsValid() {
			return p
		}
	}
	return token.Position{}
}

// Format renders one diagnostic the way `go vet` does, with the
// analyzer name appended so the invariant it enforces is identifiable
// (and suppressible by name).
func Format(fset *token.FileSet, d Diagnostic) string {
	return fmt.Sprintf("%s: %s (%s)", fset.Position(d.Pos), d.Message, d.Analyzer)
}
