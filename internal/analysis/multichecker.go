package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// RunPackages applies every analyzer to every package and returns the
// surviving diagnostics in position order. The driver applies the
// project-wide filtering policy:
//
//   - Diagnostics positioned in _test.go files are dropped — tests
//     exercise failure paths and fakes that deliberately break the
//     production invariants (vet-mode loads include test variants).
//   - Diagnostics matched by a justified //lint:ignore directive are
//     dropped; a directive without a justification is itself reported
//     under the pseudo-analyzer "lint".
func RunPackages(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs := parseDirectives(pkg.Fset, pkg.Files)
		for _, d := range dirs {
			if d.reason == "" {
				diags = append(diags, Diagnostic{
					Pos:      d.pos,
					Analyzer: "lint",
					Message:  "lint:ignore directive without a justification — state why the rule does not apply",
				})
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Path:      pkg.Path,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			var reported []Diagnostic
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a.Name
				reported = append(reported, d)
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range reported {
				p := pkg.Fset.Position(d.Pos)
				if strings.HasSuffix(p.Filename, "_test.go") {
					continue
				}
				suppressed := false
				for i := range dirs {
					if dirs[i].matches(a.Name, p.Filename, p.Line) {
						suppressed = true
						break
					}
				}
				if !suppressed {
					diags = append(diags, d)
				}
			}
		}
	}
	// Sort by file position, then analyzer, for stable output. All
	// packages share one FileSet per load, so positions are comparable
	// within a run; across loads the file name breaks ties first.
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := position(pkgs, diags[i].Pos), position(pkgs, diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// position resolves pos against whichever package's FileSet knows it.
func position(pkgs []*Package, pos token.Pos) token.Position {
	for _, pkg := range pkgs {
		if p := pkg.Fset.Position(pos); p.IsValid() {
			return p
		}
	}
	return token.Position{}
}

// Format renders one diagnostic the way `go vet` does, with the
// analyzer name appended so the invariant it enforces is identifiable
// (and suppressible by name).
func Format(fset *token.FileSet, d Diagnostic) string {
	return fmt.Sprintf("%s: %s (%s)", fset.Position(d.Pos), d.Message, d.Analyzer)
}
