package ner

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/text"
)

func parseOne(t *testing.T, msg string) Relation {
	t.Helper()
	rs := ParseRelations(text.Tokenize(msg))
	if len(rs) == 0 {
		t.Fatalf("no relation parsed from %q", msg)
	}
	return rs[0]
}

func TestParseDistanceKm(t *testing.T) {
	r := parseOne(t, "the farm is 5 km from the market")
	if r.Kind != RelDistance {
		t.Fatalf("kind = %v", r.Kind)
	}
	if r.DistanceMeters != 5000 {
		t.Errorf("distance = %v", r.DistanceMeters)
	}
	if r.Object != "market" {
		t.Errorf("object = %q", r.Object)
	}
}

func TestParseDistanceAttachedUnit(t *testing.T) {
	r := parseOne(t, "roadblock 5km from Nairobi")
	if r.Kind != RelDistance || r.DistanceMeters != 5000 {
		t.Errorf("relation = %+v", r)
	}
	if r.Object != "Nairobi" {
		t.Errorf("object = %q", r.Object)
	}
}

func TestParseMinutesRelation(t *testing.T) {
	// "30 min of" from the paper's taxonomy of distance relations.
	r := parseOne(t, "the hotel is 30 min from the airport")
	if r.Kind != RelDistance {
		t.Fatalf("kind = %v", r.Kind)
	}
	if r.DistanceMeters != 30*500 {
		t.Errorf("distance = %v", r.DistanceMeters)
	}
	if !r.Fuzzy {
		t.Error("travel-time distance should be fuzzy")
	}
}

func TestParsePaperBlocksNorth(t *testing.T) {
	// "Fox Sports Grill is a few blocks north of your hotel" (verbatim
	// from the paper).
	r := parseOne(t, "is a few blocks north of your hotel")
	if r.Kind != RelDirectional {
		t.Fatalf("kind = %v", r.Kind)
	}
	if r.Direction != 0 {
		t.Errorf("direction = %v, want 0 (north)", r.Direction)
	}
	if !r.Fuzzy {
		t.Error("'a few blocks' should be fuzzy")
	}
	if r.DistanceMeters != 3*blocksMeters {
		t.Errorf("distance = %v", r.DistanceMeters)
	}
	if r.Object != "hotel" {
		t.Errorf("object = %q", r.Object)
	}
}

func TestParseBlocksWest(t *testing.T) {
	// "McCormick & Schmicks is a few blocks west" (verbatim from the
	// paper): no explicit anchor, so the relation is objectless with an
	// implicit discourse anchor.
	r := parseOne(t, "McCormick & Schmicks is a few blocks west")
	if r.Kind != RelDirectional || r.Direction != 270 {
		t.Fatalf("relation = %+v", r)
	}
	if r.Object != "" {
		t.Errorf("object = %q, want implicit", r.Object)
	}
	if !r.Fuzzy {
		t.Error("should be fuzzy")
	}
}

func TestParseDirectional(t *testing.T) {
	r := parseOne(t, "the village lies north of Cairo")
	if r.Kind != RelDirectional || r.Direction != 0 {
		t.Fatalf("relation = %+v", r)
	}
	if r.Object != "Cairo" {
		t.Errorf("object = %q", r.Object)
	}
	if !r.Fuzzy {
		t.Error("bare directional should be fuzzy")
	}
	r = parseOne(t, "fields to the southwest of Nairobi are flooded")
	if r.Kind != RelDirectional || r.Direction != 225 {
		t.Errorf("relation = %+v", r)
	}
}

func TestParseProximity(t *testing.T) {
	r := parseOne(t, "any good hotels near Paris?")
	if r.Kind != RelProximity || r.Object != "Paris" {
		t.Fatalf("relation = %+v", r)
	}
	r = parseOne(t, "the market is in the vicinity of the station")
	if r.Kind != RelProximity || r.Object != "station" {
		t.Errorf("vicinity relation = %+v", r)
	}
	r = parseOne(t, "there is a pharmacy close to the hotel")
	if r.Kind != RelProximity || r.Object != "hotel" {
		t.Errorf("close-to relation = %+v", r)
	}
	r = parseOne(t, "lots of cafes nearby")
	if r.Kind != RelProximity || r.Object != "" {
		t.Errorf("nearby relation = %+v", r)
	}
}

func TestParseTopological(t *testing.T) {
	r := parseOne(t, "flooding within the city")
	if r.Kind != RelTopological || r.Object != "city" {
		t.Fatalf("relation = %+v", r)
	}
}

func TestParseNoRelations(t *testing.T) {
	if rs := ParseRelations(text.Tokenize("loved the breakfast, staff were great")); len(rs) != 0 {
		t.Errorf("spurious relations: %+v", rs)
	}
	if rs := ParseRelations(nil); len(rs) != 0 {
		t.Errorf("relations from nil: %+v", rs)
	}
}

func TestParsePricesNotRelations(t *testing.T) {
	// "$154 USD" must not parse as a distance.
	rs := ParseRelations(text.Tokenize("Essex House Hotel and Suites from $154 USD"))
	for _, r := range rs {
		if r.Kind == RelDistance {
			t.Errorf("price parsed as distance: %+v", r)
		}
	}
}

func TestRegionFor(t *testing.T) {
	anchor := geo.Point{Lat: 52.52, Lon: 13.405}

	dir := Relation{Kind: RelDirectional, Direction: 0, DistanceMeters: 300}
	reg := dir.RegionFor(anchor)
	north := anchor.Destination(0, 250)
	south := anchor.Destination(180, 250)
	if reg.Membership(north) <= reg.Membership(south) {
		t.Error("directional region does not prefer north")
	}

	dist := Relation{Kind: RelDistance, DistanceMeters: 5000}
	reg = dist.RegionFor(anchor)
	onRing := anchor.Destination(90, 5000)
	if m := reg.Membership(onRing); m != 1 {
		t.Errorf("on-ring membership = %v", m)
	}

	prox := Relation{Kind: RelProximity}
	reg = prox.RegionFor(anchor)
	if m := reg.Membership(anchor); m != 1 {
		t.Errorf("proximity membership at anchor = %v", m)
	}

	topo := Relation{Kind: RelTopological}
	if reg := topo.RegionFor(anchor); reg.Membership(anchor) != 1 {
		t.Error("topological region rejects anchor")
	}
}

func TestSplitNumberUnit(t *testing.T) {
	cases := []struct {
		in   string
		n    float64
		unit string
		ok   bool
	}{
		{"5km", 5, "km", true},
		{"30min", 30, "min", true},
		{"154", 154, "", true},
		{"$154", 154, "", true},
		{"1,500m", 1500, "m", true},
		{"abc", 0, "", false},
		{"", 0, "", false},
	}
	for _, c := range cases {
		n, unit, ok := splitNumberUnit(c.in)
		if ok != c.ok || (ok && (math.Abs(n-c.n) > 1e-9 || unit != c.unit)) {
			t.Errorf("splitNumberUnit(%q) = %v, %q, %v; want %v, %q, %v",
				c.in, n, unit, ok, c.n, c.unit, c.ok)
		}
	}
}

func TestParseNextTo(t *testing.T) {
	// "Lola is next to the restaurant" — verbatim from the paper's RQ2d
	// example message.
	r := parseOne(t, "Lola is next to the restaurant")
	if r.Kind != RelTopological {
		t.Fatalf("kind = %v", r.Kind)
	}
	if r.Object != "restaurant" {
		t.Errorf("object = %q", r.Object)
	}
	if !r.Fuzzy {
		t.Error("adjacency should be fuzzy")
	}
	if r.DistanceMeters <= 0 || r.DistanceMeters > 200 {
		t.Errorf("adjacency scale = %v, want a tight positive bound", r.DistanceMeters)
	}
}

func TestParseAdjacencyVariants(t *testing.T) {
	for _, msg := range []string{
		"the cafe is beside the station",
		"parked adjacent to the market",
		"stall touching the fence",
		"queue in front of the clinic",
	} {
		rs := ParseRelations(text.Tokenize(msg))
		if len(rs) != 1 {
			t.Errorf("%q: parsed %d relations, want 1", msg, len(rs))
			continue
		}
		if rs[0].Kind != RelTopological {
			t.Errorf("%q: kind = %v, want topological", msg, rs[0].Kind)
		}
		if rs[0].Object == "" {
			t.Errorf("%q: empty object", msg)
		}
	}
}

func TestAdjacencyRegionTighterThanContainment(t *testing.T) {
	anchor, err := geo.NewPoint(47.6, -122.3)
	if err != nil {
		t.Fatal(err)
	}
	next := parseOne(t, "next to the restaurant")
	within := parseOne(t, "within the city")
	nb := next.RegionFor(anchor).Bounds()
	wb := within.RegionFor(anchor).Bounds()
	if nb.Area() >= wb.Area() {
		t.Errorf("adjacency bounds area %v >= containment area %v", nb.Area(), wb.Area())
	}
}
