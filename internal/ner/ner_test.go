package ner

import (
	"testing"

	"repro/internal/gazetteer"
	"repro/internal/geo"
	"repro/internal/ontology"
)

func testExtractor(t *testing.T) *Extractor {
	t.Helper()
	g := gazetteer.New()
	add := func(name string, lat, lon float64, country string, pop int64) {
		t.Helper()
		if _, err := g.Add(gazetteer.Entry{
			Name: name, Location: geo.Point{Lat: lat, Lon: lon},
			Feature: gazetteer.FeatureCity, Country: country, Population: pop,
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("Berlin", 52.52, 13.405, "DE", 3700000)
	add("Berlin", 44.47, -71.18, "US", 10000)
	add("Paris", 48.85, 2.35, "FR", 2100000)
	add("Paris", 33.66, -95.55, "US", 25000)
	add("Cairo", 30.04, 31.23, "EG", 9500000)
	add("Amsterdam", 52.36, 4.90, "NL", 870000)
	o := ontology.New()
	return NewExtractor(g, o)
}

func findEntity(ents []Entity, typ Type, norm string) *Entity {
	for i := range ents {
		if ents[i].Type == typ && ents[i].Norm == norm {
			return &ents[i]
		}
	}
	return nil
}

func TestInformalPaperMessage1(t *testing.T) {
	x := testExtractor(t)
	ents := x.ExtractInformal("berlin has some nice hotels i just loved the hetero friendly love that word Axel Hotel in Berlin.")
	hotel := findEntity(ents, TypeFacility, "axel hotel")
	if hotel == nil {
		t.Fatalf("Axel Hotel not found in %+v", ents)
	}
	if hotel.Concept != "hotel" {
		t.Errorf("concept = %q", hotel.Concept)
	}
	loc := findEntity(ents, TypeLocation, "berlin")
	if loc == nil {
		t.Fatalf("Berlin not found in %+v", ents)
	}
	if len(loc.GazetteerIDs) != 2 {
		t.Errorf("Berlin candidates = %d, want 2", len(loc.GazetteerIDs))
	}
	if loc.Confidence <= 0 {
		t.Errorf("location confidence = %v", loc.Confidence)
	}
}

func TestInformalPaperMessage2Hashtag(t *testing.T) {
	x := testExtractor(t)
	// Lowercase "berlin" + hashtag hotel name: exactly the ill-behaved
	// form the informal recogniser must survive.
	ents := x.ExtractInformal("Good morning Berlin. The sun is out!!!! Very impressed by the customer service at #movenpick hotel in berlin. Well done guys!")
	hotel := findEntity(ents, TypeFacility, "movenpick hotel")
	if hotel == nil {
		t.Fatalf("movenpick hotel not found in %+v", ents)
	}
	loc := findEntity(ents, TypeLocation, "berlin")
	if loc == nil {
		t.Fatalf("lowercase berlin not found in %+v", ents)
	}
}

func TestInformalPaperMessage3Nested(t *testing.T) {
	x := testExtractor(t)
	// "In Berlin hotel room": Template 3 extracts hotel "Berlin hotel" AND
	// location "Berlin" — a nested mention.
	ents := x.ExtractInformal("In Berlin hotel room, nice enough, weather grim however")
	hotel := findEntity(ents, TypeFacility, "berlin hotel")
	if hotel == nil {
		t.Fatalf("Berlin hotel not found in %+v", ents)
	}
	loc := findEntity(ents, TypeLocation, "berlin")
	if loc == nil {
		t.Fatalf("nested Berlin not found in %+v", ents)
	}
}

func TestInformalLowercaseToponym(t *testing.T) {
	x := testExtractor(t)
	ents := x.ExtractInformal("heading to cairo tmrw, any tips?")
	loc := findEntity(ents, TypeLocation, "cairo")
	if loc == nil {
		t.Fatalf("lowercase cairo missed: %+v", ents)
	}
}

func TestInformalMisspelledToponym(t *testing.T) {
	x := testExtractor(t)
	ents := x.ExtractInformal("we arrived in amsterdm yesterday")
	loc := findEntity(ents, TypeLocation, "amsterdm")
	if loc == nil {
		t.Fatalf("misspelled amsterdam missed: %+v", ents)
	}
	if len(loc.GazetteerIDs) == 0 {
		t.Error("fuzzy match carried no gazetteer candidates")
	}
	// Fuzzy evidence must score below an exact match.
	exact := x.ExtractInformal("we arrived in amsterdam yesterday")
	exactLoc := findEntity(exact, TypeLocation, "amsterdam")
	if exactLoc == nil {
		t.Fatal("exact amsterdam missed")
	}
	if loc.Confidence >= exactLoc.Confidence {
		t.Errorf("fuzzy cf %v >= exact cf %v", loc.Confidence, exactLoc.Confidence)
	}
}

func TestInformalNoEntities(t *testing.T) {
	x := testExtractor(t)
	if ents := x.ExtractInformal("just had a great day, so happy"); len(ents) != 0 {
		t.Errorf("spurious entities: %+v", ents)
	}
	if ents := x.ExtractInformal(""); len(ents) != 0 {
		t.Errorf("entities from empty input: %+v", ents)
	}
}

func TestFacilityRightExtension(t *testing.T) {
	x := testExtractor(t)
	// "hotel Lola" pattern: the name follows the cue word.
	ents := x.ExtractInformal("we stayed at hotel Lola last week")
	fac := findEntity(ents, TypeFacility, "hotel lola")
	if fac == nil {
		t.Fatalf("hotel Lola missed: %+v", ents)
	}
	// But bare "hotel room" must NOT become a facility name.
	ents = x.ExtractInformal("the hotel room was fine")
	if fac := findEntity(ents, TypeFacility, "hotel room"); fac != nil {
		t.Errorf("'hotel room' misextracted as a facility")
	}
}

func TestFoxSportsGrill(t *testing.T) {
	x := testExtractor(t)
	// From the paper: "Fox Sports Grill is a few blocks north of your hotel".
	ents := x.ExtractInformal("Fox Sports Grill is a few blocks north of your hotel")
	fac := findEntity(ents, TypeFacility, "fox sports grill")
	if fac == nil {
		t.Fatalf("Fox Sports Grill missed: %+v", ents)
	}
	if fac.Concept != "restaurant" {
		t.Errorf("concept = %q, want restaurant", fac.Concept)
	}
}

func TestOverlapResolutionDeterministic(t *testing.T) {
	x := testExtractor(t)
	a := x.ExtractInformal("lovely stay at the Axel Hotel in Berlin near Paris")
	b := x.ExtractInformal("lovely stay at the Axel Hotel in Berlin near Paris")
	if len(a) != len(b) {
		t.Fatalf("non-deterministic extraction: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Norm != b[i].Norm || a[i].Start != b[i].Start {
			t.Errorf("entity %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Entities are ordered by position.
	for i := 1; i < len(a); i++ {
		if a[i].Start < a[i-1].Start {
			t.Error("entities not position-ordered")
		}
	}
}

func TestConfidenceBounds(t *testing.T) {
	x := testExtractor(t)
	msgs := []string{
		"Axel Hotel in Berlin",
		"#movenpick hotel in berlin is gr8",
		"Fox Sports Grill is a few blocks north of your hotel",
		"paris paris paris",
	}
	for _, m := range msgs {
		for _, e := range x.ExtractInformal(m) {
			if err := e.Confidence.Validate(); err != nil {
				t.Errorf("message %q entity %q: %v", m, e.Text, err)
			}
			if e.Confidence <= 0 {
				t.Errorf("message %q entity %q: non-positive confidence", m, e.Text)
			}
		}
	}
}
